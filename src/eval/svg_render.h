// SVG snapshots of engine state: moving clusters (circles + nuclei), object
// positions (dots) and query ranges (rectangles). Invaluable for eyeballing
// clustering quality and debugging join behaviour; the CLI exposes it as
// `scuba_cli render`.

#ifndef SCUBA_EVAL_SVG_RENDER_H_
#define SCUBA_EVAL_SVG_RENDER_H_

#include <string>

#include "cluster/cluster_store.h"
#include "common/status.h"
#include "geometry/rect.h"

namespace scuba {

struct SvgRenderOptions {
  /// Output image width in pixels; height follows the region's aspect ratio.
  double image_width = 1000.0;
  /// Draw cluster circles / nuclei / member positions / query rectangles.
  bool draw_clusters = true;
  bool draw_nuclei = true;
  bool draw_members = true;
  bool draw_query_ranges = true;
};

/// Renders the clusters of `store` within `region` to an SVG document.
/// Fails on an empty region or non-positive image width.
Result<std::string> RenderClustersSvg(const ClusterStore& store,
                                      const Rect& region,
                                      const SvgRenderOptions& options = {});

}  // namespace scuba

#endif  // SCUBA_EVAL_SVG_RENDER_H_
