#include "eval/svg_render.h"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace scuba {

namespace {

/// Maps a data-space point into image coordinates (SVG y grows downward).
struct Projector {
  Rect region;
  double scale;
  double height;

  double X(double x) const { return (x - region.min_x) * scale; }
  double Y(double y) const { return height - (y - region.min_y) * scale; }
};

void Append(std::ostringstream& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out << buf;
}

/// Deterministic per-cluster hue so adjacent clusters differ visually.
int HueOf(ClusterId cid) { return static_cast<int>((cid * 47) % 360); }

}  // namespace

Result<std::string> RenderClustersSvg(const ClusterStore& store,
                                      const Rect& region,
                                      const SvgRenderOptions& options) {
  if (region.Empty() || region.Width() <= 0.0 || region.Height() <= 0.0) {
    return Status::InvalidArgument("render region must have positive area");
  }
  if (options.image_width <= 0.0) {
    return Status::InvalidArgument("image_width must be positive");
  }

  Projector proj;
  proj.region = region;
  proj.scale = options.image_width / region.Width();
  proj.height = region.Height() * proj.scale;

  std::ostringstream out;
  Append(out,
         "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
         "height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n",
         options.image_width, proj.height, options.image_width, proj.height);
  out << "<rect width=\"100%\" height=\"100%\" fill=\"#fafafa\"/>\n";

  for (const auto& [cid, cluster] : store.clusters()) {
    const int hue = HueOf(cid);
    if (options.draw_clusters) {
      Append(out,
             "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" "
             "fill=\"hsla(%d,70%%,50%%,0.08)\" "
             "stroke=\"hsl(%d,70%%,40%%)\" stroke-width=\"1\"/>\n",
             proj.X(cluster.centroid().x), proj.Y(cluster.centroid().y),
             std::max(2.0, cluster.radius() * proj.scale), hue, hue);
    }
    if (options.draw_nuclei && cluster.has_nucleus()) {
      Append(out,
             "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"none\" "
             "stroke=\"hsl(%d,70%%,40%%)\" stroke-width=\"1\" "
             "stroke-dasharray=\"4 3\"/>\n",
             proj.X(cluster.NucleusCenter().x),
             proj.Y(cluster.NucleusCenter().y),
             std::max(1.0, cluster.nucleus_radius() * proj.scale), hue);
    }
    for (const ClusterMember& m : cluster.members()) {
      Point p = cluster.MemberPosition(m);
      if (m.kind == EntityKind::kObject) {
        if (!options.draw_members) continue;
        Append(out,
               "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2\" "
               "fill=\"hsl(%d,70%%,35%%)\"/>\n",
               proj.X(p.x), proj.Y(p.y), hue);
      } else if (options.draw_query_ranges) {
        Rect r = Rect::Centered(p, m.range_width, m.range_height);
        Append(out,
               "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
               "fill=\"none\" stroke=\"hsl(%d,90%%,45%%)\" "
               "stroke-width=\"1\" stroke-dasharray=\"2 2\"/>\n",
               proj.X(r.min_x), proj.Y(r.max_y), r.Width() * proj.scale,
               r.Height() * proj.scale, hue);
      }
    }
  }
  out << "</svg>\n";
  return out.str();
}

}  // namespace scuba
