#include "eval/accuracy.h"

#include <cstdio>

namespace scuba {

double AccuracyReport::Precision() const {
  if (reported_size == 0) return 1.0;
  return static_cast<double>(true_positives) /
         static_cast<double>(reported_size);
}

double AccuracyReport::Recall() const {
  if (truth_size == 0) return 1.0;
  return static_cast<double>(true_positives) / static_cast<double>(truth_size);
}

double AccuracyReport::Accuracy() const {
  size_t denom = true_positives + false_positives + false_negatives;
  if (denom == 0) return 1.0;
  return static_cast<double>(true_positives) / static_cast<double>(denom);
}

double AccuracyReport::F1() const {
  double p = Precision();
  double r = Recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

std::string AccuracyReport::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "truth=%zu reported=%zu tp=%zu fp=%zu fn=%zu "
                "precision=%.4f recall=%.4f accuracy=%.4f",
                truth_size, reported_size, true_positives, false_positives,
                false_negatives, Precision(), Recall(), Accuracy());
  return buf;
}

AccuracyReport CompareResults(const ResultSet& truth,
                              const ResultSet& reported) {
  AccuracyReport r;
  r.truth_size = truth.size();
  r.reported_size = reported.size();
  // Both match vectors are sorted (normalized): one merge pass.
  const auto& t = truth.matches();
  const auto& p = reported.matches();
  size_t i = 0;
  size_t j = 0;
  while (i < t.size() && j < p.size()) {
    if (t[i] == p[j]) {
      ++r.true_positives;
      ++i;
      ++j;
    } else if (t[i] < p[j]) {
      ++r.false_negatives;
      ++i;
    } else {
      ++r.false_positives;
      ++j;
    }
  }
  r.false_negatives += t.size() - i;
  r.false_positives += p.size() - j;
  return r;
}

void AccuracyAccumulator::Add(const AccuracyReport& report) {
  total_.truth_size += report.truth_size;
  total_.reported_size += report.reported_size;
  total_.true_positives += report.true_positives;
  total_.false_positives += report.false_positives;
  total_.false_negatives += report.false_negatives;
  ++rounds_;
}

}  // namespace scuba
