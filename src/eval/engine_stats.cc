#include "eval/engine_stats.h"

#include <cstdio>

namespace scuba {

std::string FormatStats(std::string_view engine_name, const EvalStats& stats) {
  char buf[512];
  int n = std::snprintf(
      buf, sizeof(buf),
      "%-14.*s evals=%llu join=%.4fs maint=%.4fs results=%llu "
      "comparisons=%llu pairs=%llu/%llu",
      static_cast<int>(engine_name.size()), engine_name.data(),
      static_cast<unsigned long long>(stats.evaluations),
      stats.total_join_seconds, stats.total_maintenance_seconds,
      static_cast<unsigned long long>(stats.total_results),
      static_cast<unsigned long long>(stats.comparisons),
      static_cast<unsigned long long>(stats.cluster_pairs_overlapping),
      static_cast<unsigned long long>(stats.cluster_pairs_tested));
  if (stats.join_threads > 1 && n > 0 &&
      static_cast<size_t>(n) < sizeof(buf)) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                       " threads=%u speedup=%.2fx", stats.join_threads,
                       JoinParallelSpeedup(stats));
  }
  // The ingest/post-join split appears only for parallel ingest, so serial
  // configurations keep the historical one-line format byte for byte.
  if (stats.ingest_threads > 1 && n > 0 &&
      static_cast<size_t>(n) < sizeof(buf)) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                       " ingest=%.4fs postjoin=%.4fs ingest-threads=%u "
                       "ingest-speedup=%.2fx",
                       stats.total_ingest_seconds, stats.total_postjoin_seconds,
                       stats.ingest_threads, IngestParallelSpeedup(stats));
  }
  // Hardening counters appear only when something actually happened, so
  // clean serial runs keep the historical one-line format byte for byte.
  if (stats.updates_quarantined > 0 && n > 0 &&
      static_cast<size_t>(n) < sizeof(buf)) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                       " quarantined=%llu",
                       static_cast<unsigned long long>(
                           stats.updates_quarantined));
  }
  if (stats.invariant_audits > 0 && n > 0 &&
      static_cast<size_t>(n) < sizeof(buf)) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                       " audits=%llu violations=%llu repairs=%llu",
                       static_cast<unsigned long long>(stats.invariant_audits),
                       static_cast<unsigned long long>(
                           stats.invariant_violations),
                       static_cast<unsigned long long>(
                           stats.invariant_repairs));
  }
  // Durability counters appear only once a WAL record or snapshot exists, so
  // non-durable runs keep the historical format byte for byte.
  if ((stats.wal_records_appended > 0 || stats.checkpoints_written > 0) &&
      n > 0 && static_cast<size_t>(n) < sizeof(buf)) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                       " wal-records=%llu wal-bytes=%llu checkpoints=%llu",
                       static_cast<unsigned long long>(
                           stats.wal_records_appended),
                       static_cast<unsigned long long>(
                           stats.wal_bytes_appended),
                       static_cast<unsigned long long>(
                           stats.checkpoints_written));
  }
  if (stats.recovery_replay_rounds > 0 && n > 0 &&
      static_cast<size_t>(n) < sizeof(buf)) {
    std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                  " replayed-rounds=%llu",
                  static_cast<unsigned long long>(
                      stats.recovery_replay_rounds));
  }
  return buf;
}

double AvgJoinSeconds(const EvalStats& stats) {
  if (stats.evaluations == 0) return 0.0;
  return stats.total_join_seconds / static_cast<double>(stats.evaluations);
}

double AvgMaintenanceSeconds(const EvalStats& stats) {
  if (stats.evaluations == 0) return 0.0;
  return stats.total_maintenance_seconds /
         static_cast<double>(stats.evaluations);
}

double JoinBetweenSelectivity(const EvalStats& stats) {
  if (stats.cluster_pairs_tested == 0) return 0.0;
  return static_cast<double>(stats.cluster_pairs_overlapping) /
         static_cast<double>(stats.cluster_pairs_tested);
}

double JoinParallelSpeedup(const EvalStats& stats) {
  if (stats.total_join_seconds <= 0.0) return 0.0;
  return stats.total_join_worker_seconds / stats.total_join_seconds;
}

double JoinParallelEfficiency(const EvalStats& stats) {
  if (stats.join_threads == 0) return 0.0;
  return JoinParallelSpeedup(stats) / static_cast<double>(stats.join_threads);
}

double IngestParallelSpeedup(const EvalStats& stats) {
  if (stats.total_ingest_seconds <= 0.0) return 0.0;
  return stats.total_ingest_worker_seconds / stats.total_ingest_seconds;
}

double PostJoinParallelSpeedup(const EvalStats& stats) {
  if (stats.total_postjoin_seconds <= 0.0) return 0.0;
  return stats.total_postjoin_worker_seconds / stats.total_postjoin_seconds;
}

}  // namespace scuba
