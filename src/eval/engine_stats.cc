#include "eval/engine_stats.h"

namespace scuba {

namespace {

// The shims only carry EvalStats; the other snapshot sections stay
// default-initialized, which the methods never read for these figures.
EngineSnapshotStats Wrap(const EvalStats& stats) {
  EngineSnapshotStats snapshot;
  snapshot.eval = stats;
  return snapshot;
}

}  // namespace

std::string FormatStats(std::string_view engine_name, const EvalStats& stats) {
  return Wrap(stats).Format(engine_name);
}

double AvgJoinSeconds(const EvalStats& stats) {
  return Wrap(stats).AvgJoinSeconds();
}

double AvgMaintenanceSeconds(const EvalStats& stats) {
  return Wrap(stats).AvgMaintenanceSeconds();
}

double JoinBetweenSelectivity(const EvalStats& stats) {
  return Wrap(stats).JoinBetweenSelectivity();
}

double JoinParallelSpeedup(const EvalStats& stats) {
  return Wrap(stats).JoinParallelSpeedup();
}

double JoinParallelEfficiency(const EvalStats& stats) {
  return Wrap(stats).JoinParallelEfficiency();
}

double IngestParallelSpeedup(const EvalStats& stats) {
  return Wrap(stats).IngestParallelSpeedup();
}

double PostJoinParallelSpeedup(const EvalStats& stats) {
  return Wrap(stats).PostJoinParallelSpeedup();
}

}  // namespace scuba
