// Experiment driver shared by the benchmark binaries and integration tests.
//
// The paper's methodology (§6.1): generate a road-network workload, stream
// updates into an engine, evaluate every Delta time units, report join time,
// maintenance time and memory. BuildExperimentData materializes the workload
// ONCE as a Trace; RunOnTrace replays the identical tuples into each engine
// under comparison.

#ifndef SCUBA_EVAL_EXPERIMENT_H_
#define SCUBA_EVAL_EXPERIMENT_H_

#include <cstdint>

#include "common/histogram.h"
#include "core/query_processor.h"
#include "gen/trace.h"
#include "gen/workload_generator.h"
#include "network/grid_city.h"
#include "network/road_network.h"

namespace scuba {

struct ExperimentConfig {
  GridCityOptions city;
  WorkloadOptions workload;
  /// Evaluation interval Delta in ticks (paper default: 2).
  Timestamp delta = 2;
  /// Ticks recorded into the trace (evaluations happen every delta-th tick).
  int ticks = 10;
  /// Fraction of entities reporting per tick (paper default: 100%).
  double update_fraction = 1.0;
};

/// Everything engines need to run one experiment.
struct ExperimentData {
  RoadNetwork network;
  Rect region;  ///< Data space for engine grids (network bounds + margin).
  Trace trace;
};

/// Generates the city, the workload and the recorded update trace.
Result<ExperimentData> BuildExperimentData(const ExperimentConfig& config);

/// Network bounding box inflated by a small margin, so border jitter and
/// query ranges never fall outside engine grids.
Rect DataRegion(const RoadNetwork& network, double margin = 250.0);

/// Outcome of replaying a trace into one engine.
struct EngineRunResult {
  EvalStats stats;
  /// Highest EstimateMemoryUsage() observed right after an evaluation.
  size_t peak_memory_bytes = 0;
  /// Results of the final evaluation round (normalized).
  ResultSet final_results;
  /// End-to-end wall time of the replay (ingest + evaluate).
  double wall_seconds = 0.0;
  /// Per-round phase latency distributions (milliseconds), for percentile
  /// reporting in benches.
  Histogram join_ms_per_round;
  Histogram maintenance_ms_per_round;
  Histogram results_per_round;
};

/// Replays `trace` into `engine`, evaluating every `delta` batches.
Result<EngineRunResult> RunOnTrace(QueryProcessor* engine, const Trace& trace,
                                   Timestamp delta);

}  // namespace scuba

#endif  // SCUBA_EVAL_EXPERIMENT_H_
