#include "eval/experiment.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "stream/pipeline.h"

namespace scuba {

Rect DataRegion(const RoadNetwork& network, double margin) {
  Rect box = network.BoundingBox();
  return Rect{box.min_x - margin, box.min_y - margin, box.max_x + margin,
              box.max_y + margin};
}

Result<ExperimentData> BuildExperimentData(const ExperimentConfig& config) {
  if (config.ticks <= 0) {
    return Status::InvalidArgument("experiment needs at least one tick");
  }
  if (config.delta <= 0) {
    return Status::InvalidArgument("delta must be positive");
  }
  Result<RoadNetwork> network = GenerateGridCity(config.city);
  if (!network.ok()) return network.status();

  ExperimentData data;
  data.network = std::move(network).value();
  data.region = DataRegion(data.network);

  Result<ObjectSimulator> sim =
      GenerateWorkload(&data.network, config.workload);
  if (!sim.ok()) return sim.status();
  ObjectSimulator simulator = std::move(sim).value();
  data.trace = RecordTrace(&simulator, config.ticks, config.update_fraction);
  return data;
}

Result<EngineRunResult> RunOnTrace(QueryProcessor* engine, const Trace& trace,
                                   Timestamp delta) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must be non-null");
  }
  EngineRunResult result;
  Stopwatch wall;
  Status s = ReplayTrace(trace, engine, delta,
                         [&](Timestamp now, const ResultSet& results) {
                           (void)now;
                           result.final_results = results;
                           result.peak_memory_bytes =
                               std::max(result.peak_memory_bytes,
                                        engine->EstimateMemoryUsage());
                           const EvalStats& stats = engine->stats();
                           result.join_ms_per_round.Add(
                               stats.last_join_seconds * 1e3);
                           result.maintenance_ms_per_round.Add(
                               stats.last_maintenance_seconds * 1e3);
                           result.results_per_round.Add(
                               static_cast<double>(results.size()));
                         });
  if (!s.ok()) return s;
  result.wall_seconds = wall.ElapsedSeconds();
  result.stats = engine->stats();
  return result;
}

}  // namespace scuba
