// Accuracy measurement for load shedding (paper §6.6): compares a reported
// result set against ground truth, counting false positives and negatives.

#ifndef SCUBA_EVAL_ACCURACY_H_
#define SCUBA_EVAL_ACCURACY_H_

#include <string>

#include "core/result_set.h"

namespace scuba {

struct AccuracyReport {
  size_t truth_size = 0;
  size_t reported_size = 0;
  size_t true_positives = 0;
  size_t false_positives = 0;   ///< Reported but not true.
  size_t false_negatives = 0;   ///< True but not reported.

  /// tp / reported (1 when nothing reported).
  double Precision() const;
  /// tp / truth (1 when truth empty).
  double Recall() const;
  /// Jaccard accuracy tp / (tp + fp + fn) — the headline §6.6 number:
  /// penalizes both error kinds, 1.0 iff the sets are identical.
  double Accuracy() const;
  /// Harmonic mean of precision and recall.
  double F1() const;

  std::string ToString() const;
};

/// Both sets must be normalized (engines normalize before returning).
AccuracyReport CompareResults(const ResultSet& truth, const ResultSet& reported);

/// Accumulates reports across evaluation rounds (micro-average).
class AccuracyAccumulator {
 public:
  void Add(const AccuracyReport& report);
  const AccuracyReport& total() const { return total_; }
  size_t rounds() const { return rounds_; }

 private:
  AccuracyReport total_;
  size_t rounds_ = 0;
};

}  // namespace scuba

#endif  // SCUBA_EVAL_ACCURACY_H_
