// DEPRECATED reporting shims. The real implementations moved to methods on
// EngineSnapshotStats (core/engine_snapshot.h) as part of the unified
// ScubaEngine::StatsSnapshot() surface; these free functions remain for one
// release so out-of-tree callers keep compiling. New code should call the
// methods directly:
//
//   FormatStats(name, stats)      ->  snapshot.Format(name)
//   AvgJoinSeconds(stats)         ->  snapshot.AvgJoinSeconds()
//   JoinParallelSpeedup(stats)    ->  snapshot.JoinParallelSpeedup()   etc.

#ifndef SCUBA_EVAL_ENGINE_STATS_H_
#define SCUBA_EVAL_ENGINE_STATS_H_

#include <string>

#include "core/engine_snapshot.h"
#include "core/query_processor.h"

namespace scuba {

/// One-line summary: join/maintenance seconds, results, comparisons.
std::string FormatStats(std::string_view engine_name, const EvalStats& stats);

/// Average join seconds per evaluation round (0 when no rounds ran).
double AvgJoinSeconds(const EvalStats& stats);

/// Average maintenance seconds per evaluation round.
double AvgMaintenanceSeconds(const EvalStats& stats);

/// Join-between selectivity: fraction of tested cluster pairs that
/// overlapped (SCUBA only; 0 when none tested).
double JoinBetweenSelectivity(const EvalStats& stats);

/// Realized parallel speedup of the join phase: summed worker busy time over
/// join wall time (1.0 = serial, approaches join_threads under perfect
/// scaling; 0 when no join time was recorded).
double JoinParallelSpeedup(const EvalStats& stats);

/// Parallel efficiency in [0, 1]: JoinParallelSpeedup / join_threads.
double JoinParallelEfficiency(const EvalStats& stats);

/// Realized parallel speedup of batched ingestion: summed worker busy time
/// over ingest wall time (0 when no ingest time was recorded).
double IngestParallelSpeedup(const EvalStats& stats);

/// Realized parallel speedup of post-join maintenance: summed worker busy
/// time over post-join wall time (0 when none was recorded).
double PostJoinParallelSpeedup(const EvalStats& stats);

}  // namespace scuba

#endif  // SCUBA_EVAL_ENGINE_STATS_H_
