// TraceSpan / TraceCollector: per-round phase timing trees
// (docs/ARCHITECTURE.md §9).
//
// Each evaluation round owns one tree rooted at "round"; the engine's phases
// hang off it:
//
//   round -> ingest{classify, apply}
//         -> join{between, within, shard[i]}
//         -> postjoin{tighten, shed, expire, translate}
//         -> checkpoint{snapshot, wal}
//
// The collector is single-threaded: spans are created and accumulated only on
// the engine thread (worker-side measurements are summed into task-local
// doubles and attached post-hoc). Re-entering a (parent, name, index) span in
// the same round accumulates into the same node — per-update serial ingest
// becomes one "ingest" span with count == updates.

#ifndef SCUBA_OBS_TRACE_SPAN_H_
#define SCUBA_OBS_TRACE_SPAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/stopwatch.h"

namespace scuba {

struct SpanRecord {
  std::string name;
  int32_t parent = -1;  ///< Index into TraceCollector::spans(); -1 = root.
  int32_t index = -1;   ///< Instance number (e.g. shard id); -1 = none.
  double wall_seconds = 0.0;
  double worker_seconds = 0.0;  ///< Summed task busy time; 0 = serial span.
  uint64_t count = 0;           ///< Times the span was entered this round.
};

class TraceCollector {
 public:
  /// Starts a fresh round tree (drops the previous one) rooted at a "round"
  /// span with id 0.
  void BeginRound(uint64_t round);

  bool active() const { return !spans_.empty(); }
  uint64_t round() const { return round_; }
  int32_t root() const { return spans_.empty() ? -1 : 0; }

  /// Finds or creates the child of `parent` identified by (name, index) and
  /// returns its id. No-op (-1) while no round is active.
  int32_t EnsureSpan(int32_t parent, std::string_view name,
                     int32_t index = -1);

  /// Adds one timed entry into span `id`. Ignored for id < 0.
  void Accumulate(int32_t id, double wall_seconds, double worker_seconds = 0.0,
                  uint64_t count = 1);

  /// Sets the root's wall time to the sum of its direct children (the root
  /// itself is never timed directly). Call once before emitting.
  void FinalizeRoot();

  const std::vector<SpanRecord>& spans() const { return spans_; }

 private:
  std::vector<SpanRecord> spans_;
  uint64_t round_ = 0;
};

/// RAII scoped span: starts timing at construction, accumulates wall (and any
/// worker seconds added) into its collector node at destruction or Stop().
/// A default-constructed or null-collector span is a complete no-op, so
/// instrumented code is unconditional.
class TraceSpan {
 public:
  TraceSpan() = default;
  /// Top-level phase span (child of the round root).
  TraceSpan(TraceCollector* collector, std::string_view name,
            int32_t index = -1);
  /// Nested span (child of `parent`, which must outlive it).
  TraceSpan(TraceSpan& parent, std::string_view name, int32_t index = -1);
  ~TraceSpan() { Stop(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Summed worker busy seconds to attach (parallel phases).
  void AddWorkerSeconds(double seconds) { worker_seconds_ += seconds; }

  /// Stops timing and accumulates into the collector; idempotent.
  void Stop();

  int32_t id() const { return id_; }
  TraceCollector* collector() const { return collector_; }

 private:
  TraceCollector* collector_ = nullptr;
  int32_t id_ = -1;
  double worker_seconds_ = 0.0;
  Stopwatch stopwatch_;
  bool running_ = false;
};

}  // namespace scuba

#endif  // SCUBA_OBS_TRACE_SPAN_H_
