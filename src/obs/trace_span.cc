#include "obs/trace_span.h"

namespace scuba {

void TraceCollector::BeginRound(uint64_t round) {
  spans_.clear();
  round_ = round;
  SpanRecord root;
  root.name = "round";
  root.count = 1;
  spans_.push_back(std::move(root));
}

int32_t TraceCollector::EnsureSpan(int32_t parent, std::string_view name,
                                   int32_t index) {
  if (spans_.empty() || parent < 0 ||
      parent >= static_cast<int32_t>(spans_.size())) {
    return -1;
  }
  // Linear scan: a round tree holds a few dozen spans at most.
  for (size_t i = 0; i < spans_.size(); ++i) {
    const SpanRecord& s = spans_[i];
    if (s.parent == parent && s.index == index && s.name == name) {
      return static_cast<int32_t>(i);
    }
  }
  SpanRecord span;
  span.name = std::string(name);
  span.parent = parent;
  span.index = index;
  spans_.push_back(std::move(span));
  return static_cast<int32_t>(spans_.size() - 1);
}

void TraceCollector::Accumulate(int32_t id, double wall_seconds,
                                double worker_seconds, uint64_t count) {
  if (id < 0 || id >= static_cast<int32_t>(spans_.size())) return;
  SpanRecord& span = spans_[static_cast<size_t>(id)];
  span.wall_seconds += wall_seconds;
  span.worker_seconds += worker_seconds;
  span.count += count;
}

void TraceCollector::FinalizeRoot() {
  if (spans_.empty()) return;
  double total = 0.0;
  for (size_t i = 1; i < spans_.size(); ++i) {
    if (spans_[i].parent == 0) total += spans_[i].wall_seconds;
  }
  spans_[0].wall_seconds = total;
}

TraceSpan::TraceSpan(TraceCollector* collector, std::string_view name,
                     int32_t index)
    : collector_(collector) {
  if (collector_ == nullptr || !collector_->active()) {
    collector_ = nullptr;
    return;
  }
  id_ = collector_->EnsureSpan(collector_->root(), name, index);
  running_ = id_ >= 0;
  stopwatch_.Start();
}

TraceSpan::TraceSpan(TraceSpan& parent, std::string_view name, int32_t index)
    : collector_(parent.collector_) {
  if (collector_ == nullptr || parent.id_ < 0) {
    collector_ = nullptr;
    return;
  }
  id_ = collector_->EnsureSpan(parent.id_, name, index);
  running_ = id_ >= 0;
  stopwatch_.Start();
}

void TraceSpan::Stop() {
  if (!running_) return;
  running_ = false;
  collector_->Accumulate(id_, stopwatch_.ElapsedSeconds(), worker_seconds_, 1);
}

}  // namespace scuba
