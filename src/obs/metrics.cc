#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "common/check.h"

namespace scuba {

namespace {

/// Shortest round-trip-exact decimal for a double (Prometheus/JSON value
/// formatting; deterministic for a given value).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string_view MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "counter";
}

uint32_t ThreadShardIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed) % MetricsRegistry::kShards;
  return index;
}

void Gauge::Set(double value) {
  if (bits_ != nullptr) {
    bits_->store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
  }
}

void HistogramMetric::Observe(double value) {
  if (cells_ == nullptr) return;
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_->begin(), bounds_->end(), value) -
      bounds_->begin());
  MetricCell* shard = cells_ + ThreadShardIndex() * stride_;
  shard[bucket].value.fetch_add(1, std::memory_order_relaxed);
  // Shard sum: CAS loop on the bit pattern. Contention is rare (only threads
  // hashed onto the same shard) and the loop is wait-free in practice.
  std::atomic<uint64_t>& sum_bits = shard[stride_ - 1].value;
  uint64_t old_bits = sum_bits.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t new_bits =
        std::bit_cast<uint64_t>(std::bit_cast<double>(old_bits) + value);
    if (sum_bits.compare_exchange_weak(old_bits, new_bits,
                                       std::memory_order_relaxed)) {
      break;
    }
  }
}

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Metric* MetricsRegistry::FindOrNull(const std::string& name,
                                                     MetricKind kind) {
  auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  Metric* m = metrics_[it->second].get();
  return m->kind == kind ? m : nullptr;
}

Counter MetricsRegistry::RegisterCounter(std::string name, std::string help) {
  if (index_.contains(name)) {
    Metric* existing = FindOrNull(name, MetricKind::kCounter);
    return existing != nullptr ? Counter(existing->cells.get()) : Counter();
  }
  auto metric = std::make_unique<Metric>();
  metric->name = std::move(name);
  metric->help = std::move(help);
  metric->kind = MetricKind::kCounter;
  metric->cells = std::make_unique<MetricCell[]>(kShards);
  Counter handle(metric->cells.get());
  index_.emplace(metric->name, metrics_.size());
  metrics_.push_back(std::move(metric));
  return handle;
}

Gauge MetricsRegistry::RegisterGauge(std::string name, std::string help) {
  if (index_.contains(name)) {
    Metric* existing = FindOrNull(name, MetricKind::kGauge);
    return existing != nullptr ? Gauge(&existing->gauge_bits) : Gauge();
  }
  auto metric = std::make_unique<Metric>();
  metric->name = std::move(name);
  metric->help = std::move(help);
  metric->kind = MetricKind::kGauge;
  metric->gauge_bits.store(std::bit_cast<uint64_t>(0.0),
                           std::memory_order_relaxed);
  Gauge handle(&metric->gauge_bits);
  index_.emplace(metric->name, metrics_.size());
  metrics_.push_back(std::move(metric));
  return handle;
}

Result<HistogramMetric> MetricsRegistry::RegisterHistogram(
    std::string name, std::string help, std::vector<double> upper_bounds) {
  // Validate the layout up front (shares Histogram's rules).
  Result<Histogram> probe = Histogram::WithBuckets(upper_bounds);
  if (!probe.ok()) return probe.status();
  if (index_.contains(name)) {
    Metric* existing = FindOrNull(name, MetricKind::kHistogram);
    if (existing == nullptr) {
      return Status::InvalidArgument("metric '" + name +
                                     "' already registered with another kind");
    }
    if (existing->bounds != upper_bounds) {
      return Status::InvalidArgument(
          "metric '" + name + "' already registered with different buckets");
    }
    return HistogramMetric(existing->cells.get(), &existing->bounds,
                           existing->stride);
  }
  auto metric = std::make_unique<Metric>();
  metric->name = std::move(name);
  metric->help = std::move(help);
  metric->kind = MetricKind::kHistogram;
  metric->bounds = std::move(upper_bounds);
  // Per shard: one cell per finite bucket, one overflow cell, one sum cell.
  metric->stride = static_cast<uint32_t>(metric->bounds.size()) + 2;
  metric->cells = std::make_unique<MetricCell[]>(kShards * metric->stride);
  for (uint32_t i = 0; i < kShards; ++i) {
    metric->cells[i * metric->stride + metric->stride - 1].value.store(
        std::bit_cast<uint64_t>(0.0), std::memory_order_relaxed);
  }
  HistogramMetric handle(metric->cells.get(), &metric->bounds, metric->stride);
  index_.emplace(metric->name, metrics_.size());
  metrics_.push_back(std::move(metric));
  return handle;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  out.reserve(metrics_.size());
  for (const std::unique_ptr<Metric>& m : metrics_) {
    MetricSnapshot snap;
    snap.name = m->name;
    snap.help = m->help;
    snap.kind = m->kind;
    switch (m->kind) {
      case MetricKind::kCounter: {
        uint64_t total = 0;
        for (uint32_t s = 0; s < kShards; ++s) {
          total += m->cells[s].value.load(std::memory_order_relaxed);
        }
        snap.counter = total;
        break;
      }
      case MetricKind::kGauge:
        snap.gauge = std::bit_cast<double>(
            m->gauge_bits.load(std::memory_order_relaxed));
        break;
      case MetricKind::kHistogram: {
        // Reconstruct each shard as a bucketed Histogram and Merge (shards
        // share one layout by construction, so Merge cannot fail).
        Result<Histogram> merged = Histogram::WithBuckets(m->bounds);
        SCUBA_CHECK(merged.ok());
        for (uint32_t s = 0; s < kShards; ++s) {
          const MetricCell* shard = m->cells.get() + s * m->stride;
          std::vector<uint64_t> counts(m->bounds.size() + 1);
          for (size_t b = 0; b < counts.size(); ++b) {
            counts[b] = shard[b].value.load(std::memory_order_relaxed);
          }
          const double sum = std::bit_cast<double>(
              shard[m->stride - 1].value.load(std::memory_order_relaxed));
          Result<Histogram> piece =
              Histogram::FromBucketData(m->bounds, std::move(counts), sum);
          SCUBA_CHECK(piece.ok());
          SCUBA_CHECK(merged->Merge(*piece).ok());
        }
        snap.histogram = std::move(merged).value();
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::string MetricsRegistry::PrometheusExposition() const {
  std::string out;
  for (const MetricSnapshot& snap : Snapshot()) {
    // "name{label="x"}" splits into the base series name and its label set;
    // HELP/TYPE lines apply to the base name.
    std::string base = snap.name;
    std::string labels;
    if (size_t brace = snap.name.find('{'); brace != std::string::npos) {
      base = snap.name.substr(0, brace);
      labels = snap.name.substr(brace + 1,
                                snap.name.size() - brace - 2);  // strip {}
    }
    out += "# HELP " + base + " " + snap.help + "\n";
    out += "# TYPE " + base + " ";
    out += MetricKindName(snap.kind);
    out += "\n";
    switch (snap.kind) {
      case MetricKind::kCounter:
        out += snap.name + " " + std::to_string(snap.counter) + "\n";
        break;
      case MetricKind::kGauge:
        out += snap.name + " " + FormatDouble(snap.gauge) + "\n";
        break;
      case MetricKind::kHistogram: {
        const std::vector<double>& bounds = snap.histogram.bucket_bounds();
        const std::vector<uint64_t>& counts = snap.histogram.bucket_counts();
        uint64_t cumulative = 0;
        for (size_t b = 0; b < counts.size(); ++b) {
          cumulative += counts[b];
          const std::string le =
              b < bounds.size() ? FormatDouble(bounds[b]) : "+Inf";
          std::string series_labels = labels.empty()
                                          ? "le=\"" + le + "\""
                                          : labels + ",le=\"" + le + "\"";
          out += base + "_bucket{" + series_labels + "} " +
                 std::to_string(cumulative) + "\n";
        }
        std::string suffix_labels = labels.empty() ? "" : "{" + labels + "}";
        out += base + "_sum" + suffix_labels + " " +
               FormatDouble(snap.histogram.sum()) + "\n";
        out += base + "_count" + suffix_labels + " " +
               std::to_string(cumulative) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace scuba
