#include "obs/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace scuba {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON number for a double; non-finite values (which valid JSON cannot
/// carry) clamp to 0, but instrumented timings are never non-finite.
std::string JsonDouble(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Status WriteLine(std::ofstream& file, const std::string& line,
                 std::string_view path_kind) {
  file << line << '\n';
  if (!file.good()) {
    return Status::IoError(std::string("telemetry write failed (") +
                           std::string(path_kind) + " stream)");
  }
  return Status::OK();
}

std::string MetaLine(std::string_view stream, std::string_view engine_name) {
  std::string out = "{\"schema_version\":";
  out += std::to_string(kTelemetrySchemaVersion);
  out += ",\"kind\":\"meta\",\"stream\":\"";
  out += JsonEscape(stream);
  out += "\",\"engine\":\"";
  out += JsonEscape(engine_name);
  out += "\"}";
  return out;
}

}  // namespace

Result<std::unique_ptr<RoundTelemetryEmitter>> RoundTelemetryEmitter::Open(
    const TelemetryOptions& options, std::string_view engine_name) {
  std::unique_ptr<RoundTelemetryEmitter> emitter(new RoundTelemetryEmitter());
  if (!options.metrics_out.empty()) {
    emitter->metrics_file_.open(options.metrics_out,
                                std::ios::out | std::ios::trunc);
    if (!emitter->metrics_file_.is_open()) {
      return Status::IoError("cannot open metrics output " +
                             options.metrics_out);
    }
    emitter->metrics_open_ = true;
    SCUBA_RETURN_IF_ERROR(WriteLine(emitter->metrics_file_,
                                    MetaLine("metrics", engine_name),
                                    "metrics"));
  }
  if (!options.trace_out.empty()) {
    emitter->trace_file_.open(options.trace_out,
                              std::ios::out | std::ios::trunc);
    if (!emitter->trace_file_.is_open()) {
      return Status::IoError("cannot open trace output " + options.trace_out);
    }
    emitter->trace_open_ = true;
    SCUBA_RETURN_IF_ERROR(WriteLine(emitter->trace_file_,
                                    MetaLine("trace", engine_name), "trace"));
  }
  return emitter;
}

Status RoundTelemetryEmitter::EmitRound(
    uint64_t round, const std::vector<MetricSnapshot>& metrics,
    const TraceCollector* trace) {
  if (metrics_open_) {
    std::string line = "{\"schema_version\":";
    line += std::to_string(kTelemetrySchemaVersion);
    line += ",\"kind\":\"round\",\"round\":";
    line += std::to_string(round);
    line += ",\"metrics\":[";
    bool first = true;
    for (const MetricSnapshot& m : metrics) {
      std::string entry;
      switch (m.kind) {
        case MetricKind::kCounter: {
          uint64_t& prev = prev_counters_[m.name];
          const uint64_t delta = m.counter - prev;
          prev = m.counter;
          if (delta == 0) continue;  // quiet counters keep lines compact
          entry = "{\"name\":\"" + JsonEscape(m.name) +
                  "\",\"kind\":\"counter\",\"delta\":" +
                  std::to_string(delta) +
                  ",\"total\":" + std::to_string(m.counter) + "}";
          break;
        }
        case MetricKind::kGauge:
          entry = "{\"name\":\"" + JsonEscape(m.name) +
                  "\",\"kind\":\"gauge\",\"value\":" + JsonDouble(m.gauge) +
                  "}";
          break;
        case MetricKind::kHistogram: {
          HistogramBaseline& prev = prev_histograms_[m.name];
          const uint64_t total_count =
              static_cast<uint64_t>(m.histogram.count());
          const uint64_t delta_count = total_count - prev.count;
          const double delta_sum = m.histogram.sum() - prev.sum;
          prev.count = total_count;
          prev.sum = m.histogram.sum();
          if (delta_count == 0) continue;
          entry = "{\"name\":\"" + JsonEscape(m.name) +
                  "\",\"kind\":\"histogram\",\"delta_count\":" +
                  std::to_string(delta_count) +
                  ",\"delta_sum\":" + JsonDouble(delta_sum) +
                  ",\"total_count\":" + std::to_string(total_count) +
                  ",\"total_sum\":" + JsonDouble(m.histogram.sum()) + "}";
          break;
        }
      }
      if (!first) line += ",";
      first = false;
      line += entry;
    }
    line += "]}";
    SCUBA_RETURN_IF_ERROR(WriteLine(metrics_file_, line, "metrics"));
  }

  if (trace_open_ && trace != nullptr && trace->active()) {
    const std::vector<SpanRecord>& spans = trace->spans();
    std::string line = "{\"schema_version\":";
    line += std::to_string(kTelemetrySchemaVersion);
    line += ",\"kind\":\"round\",\"round\":";
    line += std::to_string(round);
    line += ",\"spans\":[";
    int32_t join_id = -1;
    for (size_t i = 0; i < spans.size(); ++i) {
      const SpanRecord& s = spans[i];
      if (s.parent == 0 && s.name == "join") {
        join_id = static_cast<int32_t>(i);
      }
      if (i > 0) line += ",";
      line += "{\"id\":" + std::to_string(i) + ",\"name\":\"" +
              JsonEscape(s.name) + "\",\"parent\":" + std::to_string(s.parent) +
              ",\"wall_seconds\":" + JsonDouble(s.wall_seconds) +
              ",\"count\":" + std::to_string(s.count);
      if (s.index >= 0) line += ",\"index\":" + std::to_string(s.index);
      if (s.worker_seconds > 0.0) {
        line += ",\"worker_seconds\":" + JsonDouble(s.worker_seconds);
      }
      line += "}";
    }
    line += "]";
    // Per-shard load imbalance: max over mean of the join shard busy times
    // (1.0 = perfectly balanced), the signal the distributed range-query
    // literature uses to detect skewed partitions.
    if (join_id >= 0) {
      double max_busy = 0.0;
      double sum_busy = 0.0;
      uint32_t shards = 0;
      for (const SpanRecord& s : spans) {
        if (s.parent != join_id || s.name != "shard") continue;
        ++shards;
        max_busy = std::max(max_busy, s.wall_seconds);
        sum_busy += s.wall_seconds;
      }
      if (shards > 0) {
        const double mean = sum_busy / static_cast<double>(shards);
        const double imbalance = mean > 0.0 ? max_busy / mean : 1.0;
        line += ",\"join\":{\"shards\":" + std::to_string(shards) +
                ",\"imbalance\":" + JsonDouble(imbalance) + "}";
      }
    }
    line += "}";
    SCUBA_RETURN_IF_ERROR(WriteLine(trace_file_, line, "trace"));
  }
  return Status::OK();
}

Status RoundTelemetryEmitter::Finish(const MetricsRegistry& registry) {
  if (metrics_open_) {
    std::string line = "{\"schema_version\":";
    line += std::to_string(kTelemetrySchemaVersion);
    line += ",\"kind\":\"exposition\",\"prometheus\":\"";
    line += JsonEscape(registry.PrometheusExposition());
    line += "\"}";
    SCUBA_RETURN_IF_ERROR(WriteLine(metrics_file_, line, "metrics"));
    metrics_file_.flush();
    metrics_file_.close();
    metrics_open_ = false;
  }
  if (trace_open_) {
    trace_file_.flush();
    trace_file_.close();
    trace_open_ = false;
  }
  return Status::OK();
}

Result<std::unique_ptr<EngineTelemetry>> EngineTelemetry::Create(
    const TelemetryOptions& options, std::string_view engine_name) {
  std::unique_ptr<EngineTelemetry> telemetry(new EngineTelemetry());
  if (!options.metrics_out.empty() || !options.trace_out.empty()) {
    Result<std::unique_ptr<RoundTelemetryEmitter>> emitter =
        RoundTelemetryEmitter::Open(options, engine_name);
    if (!emitter.ok()) return emitter.status();
    telemetry->emitter_ = std::move(emitter).value();
  }
  return telemetry;
}

void EngineTelemetry::EnsureRound(uint64_t round) {
  if (round == current_round_) return;
  FlushCurrentRound();
  current_round_ = round;
  trace_.BeginRound(round);
}

void EngineTelemetry::FlushCurrentRound() {
  if (current_round_ == 0) return;
  if (round_hook_) round_hook_();
  trace_.FinalizeRoot();
  if (emitter_ != nullptr) {
    Status s = emitter_->EmitRound(current_round_, registry_.Snapshot(),
                                   &trace_);
    if (status_.ok() && !s.ok()) status_ = s;
  }
  current_round_ = 0;
}

Status EngineTelemetry::Flush() {
  FlushCurrentRound();
  if (!finished_ && emitter_ != nullptr) {
    Status s = emitter_->Finish(registry_);
    if (status_.ok() && !s.ok()) status_ = s;
  }
  finished_ = true;
  return status_;
}

}  // namespace scuba
