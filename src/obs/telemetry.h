// Round telemetry: JSONL emission of per-round metric deltas and trace-span
// trees, plus a final Prometheus-style exposition dump
// (docs/ARCHITECTURE.md §9).
//
// Output schema (schema_version 3). Every line is one JSON object with
// "schema_version" and "kind":
//
//  metrics file (--metrics-out):
//   {"schema_version":3,"kind":"meta","stream":"metrics","engine":...}
//   {"schema_version":3,"kind":"round","round":N,"metrics":[
//      {"name":..,"kind":"counter","delta":D,"total":T},
//      {"name":..,"kind":"gauge","value":V},
//      {"name":..,"kind":"histogram","delta_count":C,"delta_sum":S,
//       "total_count":TC,"total_sum":TS}]}
//   {"schema_version":3,"kind":"exposition","prometheus":"..."}
//
//  trace file (--trace-out):
//   {"schema_version":3,"kind":"meta","stream":"trace","engine":...}
//   {"schema_version":3,"kind":"round","round":N,"spans":[
//      {"id":0,"name":"round","parent":-1,"wall_seconds":W,"count":1},
//      {"id":..,"name":..,"parent":..,"wall_seconds":..,"count":..,
//       ("index":I,)? ("worker_seconds":S)?}...],
//    ("join":{"shards":K,"imbalance":X})?}
//
// v1 -> v2 migration: the line shapes are unchanged; v2 adds the sharded
// engine's surface (docs/ARCHITECTURE.md §11) — per-shard "engine_shard"
// spans under "join" (indexed by shard id) and a root-level "handoff" span,
// plus the scuba_shard_handoffs_total / scuba_shard_ghosts_total /
// scuba_rebalance_recommendations_total counters and the scuba_shards gauge.
//
// v2 -> v3 migration: line shapes again unchanged; v3 adds the shard fault
// isolation surface (docs/ARCHITECTURE.md §13) — the
// scuba_shard_failures_total / scuba_shard_recoveries_total /
// scuba_shard_evictions_total / scuba_degraded_rounds_total counters, the
// per-stripe scuba_shard_health_<s> gauges (0 healthy, 1 degraded,
// 2 recovering, 3 evicted), and a root-level "recovery" span covering online
// stripe rebuilds. v2 consumers only need to accept the new names;
// tools/check_telemetry.py now validates them (and rejects unknown span
// names).
//
// v3 -> v4 migration: line shapes once more unchanged; v4 adds the serving
// front-end surface (docs/ARCHITECTURE.md §14) — the scuba_serve_* metric
// family (sessions/rounds/batches/deltas/snapshots/coalesces/disconnects/
// errors counters, sessions_active and queue_bytes gauges, and the
// scuba_serve_push_latency_ms histogram), registered on the engine's
// registry when `scuba_cli serve` runs with telemetry enabled so serve
// counters ride the same per-round JSONL stream. No span changes.
//
// Counters with a zero round delta and histograms with no new observations
// are omitted from the round line; gauges are always present. Content is
// deterministic for a fixed workload and thread count except timing fields
// (wall/worker seconds, histogram sums) — determinism digests must exclude
// those.

#ifndef SCUBA_OBS_TELEMETRY_H_
#define SCUBA_OBS_TELEMETRY_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace_span.h"

namespace scuba {

inline constexpr int kTelemetrySchemaVersion = 4;

/// ScubaOptions::telemetry. Purely observational: never changes what the
/// engine computes, and is excluded from the snapshot options fingerprint.
struct TelemetryOptions {
  /// Collect metrics/spans even with no output file (programmatic access via
  /// ScubaEngine::telemetry()). Implied by either output path.
  bool enabled = false;
  /// JSONL path for per-round metric deltas + final exposition ("" = off).
  std::string metrics_out;
  /// JSONL path for per-round span trees ("" = off).
  std::string trace_out;

  bool Enabled() const {
    return enabled || !metrics_out.empty() || !trace_out.empty();
  }
};

/// Appends one JSON line per round to the configured files. Not thread-safe;
/// driven from the engine thread between rounds.
class RoundTelemetryEmitter {
 public:
  /// Opens (truncates) the configured files and writes the meta lines.
  static Result<std::unique_ptr<RoundTelemetryEmitter>> Open(
      const TelemetryOptions& options, std::string_view engine_name);

  /// Emits the round lines: metric deltas against the previous emit, and the
  /// collector's span tree (when a trace file is open and `trace` is active).
  Status EmitRound(uint64_t round, const std::vector<MetricSnapshot>& metrics,
                   const TraceCollector* trace);

  /// Writes the final exposition line and flushes/closes both files.
  Status Finish(const MetricsRegistry& registry);

 private:
  RoundTelemetryEmitter() = default;

  struct HistogramBaseline {
    uint64_t count = 0;
    double sum = 0.0;
  };

  std::ofstream metrics_file_;
  std::ofstream trace_file_;
  bool metrics_open_ = false;
  bool trace_open_ = false;
  std::unordered_map<std::string, uint64_t> prev_counters_;
  std::unordered_map<std::string, HistogramBaseline> prev_histograms_;
};

/// Everything the engine holds when ScubaOptions::telemetry is enabled: the
/// registry, the per-round trace collector, the emitter, and the round
/// lifecycle that flushes a completed round the moment the next one starts
/// (so post-Evaluate checkpoint spans still land in the round they belong
/// to). IO errors are sticky and surfaced by Flush().
class EngineTelemetry {
 public:
  static Result<std::unique_ptr<EngineTelemetry>> Create(
      const TelemetryOptions& options, std::string_view engine_name);

  MetricsRegistry& registry() { return registry_; }
  TraceCollector& trace() { return trace_; }

  /// Invoked just before each round is emitted; the engine uses it to push
  /// cumulative-counter deltas into the registry.
  void SetRoundHook(std::function<void()> hook) { round_hook_ = std::move(hook); }

  /// Declares that activity for `round` is starting (or continuing). The
  /// first call for a new round flushes the previous one.
  void EnsureRound(uint64_t round);

  /// Flushes the in-flight round and the final exposition. Returns the first
  /// IO error encountered anywhere, OK otherwise. Idempotent.
  Status Flush();

 private:
  EngineTelemetry() = default;

  void FlushCurrentRound();

  MetricsRegistry registry_;
  TraceCollector trace_;
  std::unique_ptr<RoundTelemetryEmitter> emitter_;  ///< Null = collect only.
  std::function<void()> round_hook_;
  uint64_t current_round_ = 0;  ///< 0 = no round in flight.
  bool finished_ = false;
  Status status_ = Status::OK();
};

}  // namespace scuba

#endif  // SCUBA_OBS_TELEMETRY_H_
