// MetricsRegistry: named counters, gauges and histograms for engine
// observability (docs/ARCHITECTURE.md §9).
//
// Hot-path contract: a counter increment or histogram observation is one
// relaxed atomic add into a per-thread shard (16 cache-line-padded cells per
// metric, threads hashed onto cells by a thread-local index), so concurrent
// workers never contend on a line. Shards are merged on read (Snapshot), not
// on write. Registration happens single-threaded at setup time; handles are
// trivially copyable value types whose default-constructed state is a no-op,
// so instrumented code needs no null checks and pays nothing when no registry
// is attached.
//
// Determinism contract: counters and gauges must carry *semantic* event
// counts (identical at any thread count); wall-time and other
// scheduling-dependent measurements belong in histograms, whose contents are
// excluded from determinism digests.

#ifndef SCUBA_OBS_METRICS_H_
#define SCUBA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"

namespace scuba {

enum class MetricKind : uint8_t { kCounter = 0, kGauge, kHistogram };

/// Stable lowercase name ("counter", "gauge", "histogram").
std::string_view MetricKindName(MetricKind kind);

/// One cache line per shard cell so concurrent adds from different threads
/// never share a line.
struct alignas(64) MetricCell {
  std::atomic<uint64_t> value{0};
};

/// The shard a calling thread adds into: a thread-local index assigned from a
/// process-wide counter, modulo the shard count.
uint32_t ThreadShardIndex();

/// Monotonic counter handle. Default-constructed = detached no-op.
class Counter {
 public:
  Counter() = default;

  void Increment(uint64_t n = 1) {
    if (cells_ != nullptr) {
      cells_[ThreadShardIndex()].value.fetch_add(n,
                                                 std::memory_order_relaxed);
    }
  }

  explicit operator bool() const { return cells_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(MetricCell* cells) : cells_(cells) {}
  MetricCell* cells_ = nullptr;
};

/// Last-write-wins double gauge. Not sharded: gauges are set from the
/// single-threaded engine loop (between rounds), never from workers.
class Gauge {
 public:
  Gauge() = default;

  void Set(double value);

  explicit operator bool() const { return bits_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<uint64_t>* bits) : bits_(bits) {}
  std::atomic<uint64_t>* bits_ = nullptr;
};

/// Bucketed histogram handle (timings and other scheduling-dependent
/// distributions). Observe is one relaxed add on the bucket cell plus a
/// relaxed CAS loop on the shard's sum cell.
class HistogramMetric {
 public:
  HistogramMetric() = default;

  void Observe(double value);

  explicit operator bool() const { return cells_ != nullptr; }

 private:
  friend class MetricsRegistry;
  HistogramMetric(MetricCell* cells, const std::vector<double>* bounds,
                  uint32_t stride)
      : cells_(cells), bounds_(bounds), stride_(stride) {}
  MetricCell* cells_ = nullptr;
  const std::vector<double>* bounds_ = nullptr;
  uint32_t stride_ = 0;  ///< Cells per shard: bounds + overflow + sum.
};

/// Point-in-time value of one metric, shards merged.
struct MetricSnapshot {
  std::string name;  ///< Full identity, label set included.
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter = 0;
  double gauge = 0.0;
  Histogram histogram;  ///< Bucketed; empty unless kind == kHistogram.
};

class MetricsRegistry {
 public:
  static constexpr uint32_t kShards = 16;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registration is idempotent by name: re-registering an existing metric of
  /// the same kind returns a handle to the same storage. A name collision
  /// with a different kind returns a detached no-op handle (the registry
  /// never aliases storage across kinds). Registration must not race
  /// concurrent adds on the metric being created; adds on *other* metrics
  /// are unaffected (metric storage is stable once created).
  Counter RegisterCounter(std::string name, std::string help);
  Gauge RegisterGauge(std::string name, std::string help);
  /// `upper_bounds` as in Histogram::WithBuckets; kInvalidArgument on bad
  /// bounds, a kind collision, or a bounds mismatch with an existing
  /// histogram of the same name.
  Result<HistogramMetric> RegisterHistogram(std::string name, std::string help,
                                            std::vector<double> upper_bounds);

  /// Merged view of every metric, in registration order (deterministic).
  std::vector<MetricSnapshot> Snapshot() const;

  /// Prometheus text exposition (HELP/TYPE + one line per sample; histograms
  /// expand to cumulative _bucket/_sum/_count series).
  std::string PrometheusExposition() const;

  size_t metric_count() const { return metrics_.size(); }

 private:
  struct Metric {
    std::string name;
    std::string help;
    MetricKind kind;
    std::vector<double> bounds;            ///< Histogram only.
    uint32_t stride = 0;                   ///< Histogram: cells per shard.
    std::unique_ptr<MetricCell[]> cells;   ///< Counter/histogram shards.
    std::atomic<uint64_t> gauge_bits{0};   ///< Gauge only.
  };

  Metric* FindOrNull(const std::string& name, MetricKind kind);

  std::vector<std::unique_ptr<Metric>> metrics_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace scuba

#endif  // SCUBA_OBS_METRICS_H_
