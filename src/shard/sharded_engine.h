// ShardedEngine: spatially sharded multi-engine execution of the SCUBA round
// (docs/ARCHITECTURE.md §11).
//
// The map is carved into N contiguous row stripes (ShardRouter); each stripe
// is an EngineShard with its own ClusterStore slice, GridIndex mirror, load
// shedder and join executor. A round runs the same three phases as
// ScubaEngine:
//
//  1. *Ingest* replays the Leader-Follower procedure serially at the
//     coordinator, with every grid operation mirrored into the shard grids a
//     cluster's registered circle touches (the mirror invariant in
//     engine_shard.h) and cluster ownership assigned by stripe.
//  2. *Join* runs one independent task per shard: the shard publishes
//     read-only ghosts of border-crossing clusters owned by neighbors
//     (serializer round trip — bit-exact), then scans only its own cell
//     window. No cross-shard locking anywhere on this path; the only barrier
//     is the fork/join around the task set. Per-shard ResultSets merge under
//     the owner-cell dedup discipline (each pair's MinCommonCell lies in
//     exactly one stripe), then one Normalize.
//  3. *Post-join* computes per-cluster upkeep as one task per shard and
//     applies dissolutions/re-registrations serially in globally ascending
//     cid order; ownership migration (handoff) then walks the same global
//     cid order serially, moving each cluster to the stripe owning its
//     registered center.
//
// Determinism contract: for identical input streams, a ShardedEngine at any
// (shards, join_threads) produces per-round ResultSets, join counters and
// state hashes bit-identical to a single ScubaEngine — with one documented
// exception: kAdaptive load shedding feeds each shard's shedder shard-local
// memory estimates, so adaptive eta trajectories legitimately diverge.
// kNone/kFixed shedding stay bit-identical.

#ifndef SCUBA_SHARD_SHARDED_ENGINE_H_
#define SCUBA_SHARD_SHARDED_ENGINE_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cluster/cluster_store.h"
#include "cluster/leader_follower.h"
#include "common/thread_pool.h"
#include "core/engine_snapshot.h"
#include "core/query_processor.h"
#include "core/scuba_engine.h"
#include "core/scuba_options.h"
#include "obs/telemetry.h"
#include "shard/engine_shard.h"
#include "shard/shard_router.h"
#include "shard/shard_supervisor.h"

namespace scuba {

class ShardedEngine : public QueryProcessor {
 public:
  /// Validates options and builds a coordinator with options.shards stripes.
  /// shards == 1 is valid (one stripe owning the whole map) and useful as the
  /// determinism matrix's base case.
  static Result<std::unique_ptr<ShardedEngine>> Create(
      const ScubaOptions& options);

  std::string_view name() const override { return "scuba-sharded"; }
  Status IngestObjectUpdate(const LocationUpdate& update) override;
  Status IngestQueryUpdate(const QueryUpdate& update) override;
  /// Batched ingest: validated up front exactly like ScubaEngine::IngestBatch
  /// (strict rejects the batch, quarantine drops the bad tuples), then
  /// replayed serially in delivery order — bit-identical to the per-update
  /// calls by construction.
  Status IngestBatch(std::span<const LocationUpdate> objects,
                     std::span<const QueryUpdate> queries) override;
  Status Evaluate(Timestamp now, ResultSet* results) override;
  size_t EstimateMemoryUsage() const override;

  /// Unified stats aggregate (same shape as ScubaEngine::StatsSnapshot):
  /// join counters are the sum over shards, shedder state is shard 0's.
  EngineSnapshotStats StatsSnapshot() const;

  const ScubaOptions& options() const { return options_; }
  const ShardRouter& router() const { return router_; }
  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }
  const EngineShard& shard(uint32_t s) const { return *shards_[s]; }
  /// Coordinator store: cluster-id allocator + the paper's Objects/Queries
  /// attr tables. Holds no clusters — those live in the shard stores.
  const ClusterStore& meta_store() const { return meta_; }

  /// Total clusters across all shard stores.
  size_t ClusterCount() const;
  /// All cluster ids across all shard stores, ascending (the global
  /// enumeration the serial phases walk).
  std::vector<ClusterId> GlobalSortedClusterIds() const;

  /// Ownership migrations performed by the post-join handoff step so far.
  uint64_t handoffs() const { return handoffs_; }
  /// Ghost copies published across all shards so far.
  uint64_t ghosts_published() const { return ghosts_published_; }
  /// --rebalance=observe: recommendations issued so far, and the latest one
  /// ("" when none yet).
  uint64_t rebalance_recommendations() const { return recommendations_; }
  const std::string& last_recommendation() const {
    return last_recommendation_;
  }

  /// Observability; non-null iff options.telemetry.Enabled().
  EngineTelemetry* telemetry() { return telemetry_.get(); }
  Status FlushTelemetry();

  /// Writes one complete manifest-committed checkpoint of the sharded state
  /// into `dir` (per-shard snapshots first, manifest last). Stand-alone
  /// convenience mirroring ScubaEngine::Checkpoint; runs with a durable
  /// directory should use ShardedDurabilityManager instead. Declared here,
  /// defined in shard_durability.cc.
  Status Checkpoint(const std::string& dir);
  /// Restores from the NEWEST manifest in `dir` only — no silent fallback to
  /// older generations (RecoverShardedEngine implements the explicit-fallback
  /// policy). A checkpoint taken at any shard count restores into this
  /// engine's layout.
  Status Restore(const std::string& dir);

  // --- Shard supervision (docs/ARCHITECTURE.md §13) ---

  /// Non-null iff options.supervision.Enabled() at Create time. Supervised
  /// rounds wrap each shard's join task in a failure barrier, serve degraded
  /// results for quarantined stripes, and run online recovery between rounds.
  ShardSupervisor* supervisor() { return supervisor_.get(); }
  const ShardSupervisor* supervisor() const { return supervisor_.get(); }

  /// Full-engine invariant audit: the union of AuditShardStripe over every
  /// stripe (counters summed, violations concatenated up to the report cap).
  InvariantAuditReport AuditInvariants() const;
  /// Scoped audit of one stripe: the per-cluster store checks of
  /// ScubaEngine::AuditInvariants over the stripe's own clusters, plus the
  /// stripe's grid mirror — every registered cluster (any owner) whose
  /// circle touches the stripe must appear in its grid under the full global
  /// cell list, no cluster that touches it nowhere may, and no key may be an
  /// orphan. Self-blaming: damage to stripe s's grid is reported by
  /// AuditShardStripe(s) regardless of which stripe owns the damaged
  /// cluster. Read-only; safe from worker tasks during the join phase.
  InvariantAuditReport AuditShardStripe(uint32_t shard) const;

  /// Online per-stripe recovery hook, wired by callers owning a durable
  /// directory (the CLI wires RecoverShardStripe). Recovery probes run
  /// without it; only a stripe whose audit stays dirty needs the rebuild —
  /// absent the hook such a stripe fails its attempts and is evicted.
  using StripeRecoveryFn = std::function<Status(ShardedEngine*, uint32_t)>;
  void set_stripe_recovery(StripeRecoveryFn fn) {
    stripe_recovery_ = std::move(fn);
  }
  /// Invoked after a reassign eviction reshards the engine, so the
  /// durability manager can realign its WAL chains and force a checkpoint
  /// under the new layout.
  using LayoutChangedFn = std::function<Status()>;
  void set_on_layout_changed(LayoutChangedFn fn) {
    on_layout_changed_ = std::move(fn);
  }

 private:
  friend struct PersistAccess;
  ShardedEngine(const ScubaOptions& options, ShardRouter router);

  const EvalStats& stats() const override { return stats_; }

  /// Mirror of LeaderFollowerClusterer::ProcessUpdate over the shard set:
  /// same decision sequence, same counters, with HomeOf/GetCluster resolved
  /// across shard stores and grid syncs fanned out to every touched stripe.
  Status ReplayUpdate(EntityKind kind, const LocationUpdate* obj,
                      const QueryUpdate* qry);

  /// Lowest compatible cid near `position` (mirror of the clusterer's
  /// FindCompatibleCluster; identical choice because stripe-local cell entry
  /// sets equal the single grid's). `*owner_out` receives the owning shard.
  ClusterId FindCompatibleCluster(Point position, double speed, NodeId dest,
                                  EngineShard** owner_out);

  /// HomeOf across all shard stores (at most one shard knows any entity).
  ClusterId HomeOfAnywhere(EntityRef ref, EngineShard** owner_out);
  MovingCluster* GetClusterAnywhere(ClusterId cid, EngineShard** owner_out);
  const MovingCluster* GetClusterAnywhere(ClusterId cid) const;
  bool AnyGridContains(ClusterId cid) const;

  /// Mirror of SyncClusterGrid against the union of shard grids: plans with
  /// the exact single-engine float semantics, then registers the padded
  /// circle in every stripe it touches and removes it from the rest.
  Status SyncAllGrids(MovingCluster* cluster);
  /// Applies a planned registration: Insert/Update in touched stripes,
  /// Remove elsewhere.
  Status ApplyRegistration(ClusterId cid, const Circle& padded);
  Status RemoveFromAllGrids(ClusterId cid);

  /// The shard owning a fresh/migrated cluster: the stripe containing its
  /// registered circle's center (always one of its registered cells).
  EngineShard* OwnerShardFor(const MovingCluster& cluster) {
    return shards_[router_.ShardOfPoint(cluster.registered_bounds().center)]
        .get();
  }

  /// One shard's join task: rebuild ghosts, run the scoped join over the
  /// stripe's cell window. Reads neighbor stores (immutable during the join
  /// phase), writes only shard-local state.
  Status RunShardJoin(EngineShard& shard);

  /// Phase 3 across shards: per-shard parallel upkeep compute, serial
  /// cid-ordered apply, serial cid-ordered ownership handoff, per-shard
  /// shedder feedback.
  Status PostJoinMaintenance(Timestamp now, double* worker_seconds);
  Status SplitOversizedClusters();
  Status MigrateOwnership();

  /// --rebalance=observe: compares per-shard load (join comparisons, falling
  /// back to cluster counts) and logs a recommended stripe split when the
  /// max/mean imbalance exceeds the threshold.
  void ObserveBalance();

  /// Serial, pre-join: applies this round's kCorruptState injections by
  /// dropping a border cluster from the victim stripe's grid mirror (caught
  /// by the supervised task's stripe audit; post-join runs unmodified).
  void ApplyInjectedCorruption();
  /// End-of-round: runs every due recovery attempt. A stripe that exhausts
  /// its attempt budget is evicted — under kReassign by resharding the
  /// engine to one fewer stripe, otherwise in place.
  Status RunScheduledRecoveries();
  /// One recovery attempt: injected-failure check, audit probe, then (only
  /// if the audit is dirty) the durable rebuild hook plus a verify audit.
  Status AttemptStripeRecovery(uint32_t shard);
  /// Reassign eviction: restripes the whole engine to shard_count()-1
  /// stripes through the shard-snapshot serializer (the same N->M routing
  /// the reshard-on-restore path uses), then resets supervision state and
  /// fires the layout-changed hook.
  Status EvictShard(uint32_t victim);

  ThreadPool* JoinPool();
  void InstallTelemetry(std::unique_ptr<EngineTelemetry> telemetry);
  void PushTelemetryDeltas();
  void TelemetryEnsureRound() {
    if (telemetry_ != nullptr) telemetry_->EnsureRound(stats_.evaluations + 1);
  }

  ScubaOptions options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<EngineShard>> shards_;
  /// Id allocator + attr tables only; never holds clusters.
  ClusterStore meta_;
  EvalStats stats_;
  ScubaPhaseStats phase_stats_;
  ClustererStats clusterer_stats_;
  uint32_t resolved_join_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;
  double pending_prejoin_seconds_ = 0.0;
  double pending_prejoin_worker_seconds_ = 0.0;
  double last_handoff_seconds_ = 0.0;
  uint64_t handoffs_ = 0;
  uint64_t ghosts_published_ = 0;
  uint64_t recommendations_ = 0;
  std::string last_recommendation_;

  /// Null unless options.supervision.Enabled() at Create time.
  std::unique_ptr<ShardSupervisor> supervisor_;
  StripeRecoveryFn stripe_recovery_;
  LayoutChangedFn on_layout_changed_;

  /// Scratch buffers reused across grid mirror operations.
  std::vector<uint32_t> scratch_cells_;
  std::vector<char> scratch_touched_;

  std::unique_ptr<EngineTelemetry> telemetry_;
  struct ShardMetrics {
    Counter rounds;
    Counter results;
    Counter join_comparisons;
    Counter handoffs;
    Counter ghosts;
    Counter recommendations;
    Counter shard_failures;
    Counter shard_recoveries;
    Counter shard_evictions;
    Counter degraded_rounds;
    Gauge clusters;
    Gauge shards;
    /// One per stripe of the ORIGINAL layout: 0 healthy, 1 degraded,
    /// 2 recovering, 3 evicted. Indices beyond the current layout (after a
    /// reassign reshard) report 3 — that stripe identity is gone.
    std::vector<Gauge> shard_health;
  } metrics_;
  struct TelemetryBaseline {
    uint64_t rounds = 0;
    uint64_t results = 0;
    uint64_t comparisons = 0;
    uint64_t handoffs = 0;
    uint64_t ghosts = 0;
    uint64_t recommendations = 0;
    uint64_t shard_failures = 0;
    uint64_t shard_recoveries = 0;
    uint64_t shard_evictions = 0;
    uint64_t degraded_rounds = 0;
  } pushed_;
};

/// EngineStateHash for the sharded engine: same hash, same byte layout as the
/// single-engine overload (persist/snapshot.h), assembled from the meta store
/// and the per-shard stores/grids. Equal hashes across shard counts are the
/// determinism matrix's acceptance bar.
uint64_t EngineStateHash(const ShardedEngine& engine);

}  // namespace scuba

#endif  // SCUBA_SHARD_SHARDED_ENGINE_H_
