#include "shard/shard_durability.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"
#include "persist/fsio.h"
#include "persist/snapshot.h"

namespace scuba {

namespace {

namespace fs = std::filesystem;

template <typename Id>
void PutSortedAttrTable(ByteWriter* w,
                        const std::unordered_map<Id, uint64_t>& table) {
  std::vector<std::pair<Id, uint64_t>> rows(table.begin(), table.end());
  std::sort(rows.begin(), rows.end());
  w->PutU64(rows.size());
  for (const auto& [id, attrs] : rows) {
    w->PutU32(id);
    w->PutU64(attrs);
  }
}

/// All "shard-<index>" artifact directories under `dir`, ascending index.
/// Includes extinct layouts' directories — recovery reads the union.
Result<std::vector<std::pair<uint32_t, std::string>>> ListShardDirs(
    const std::string& dir) {
  std::vector<std::pair<uint32_t, std::string>> out;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return out;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("cannot list " + dir + ": " + ec.message());
  }
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_directory(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-", 0) != 0) continue;
    const std::string digits = name.substr(6);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    out.emplace_back(
        static_cast<uint32_t>(std::strtoul(digits.c_str(), nullptr, 10)),
        entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string ChainDir(const std::string& root, uint32_t shard_index) {
  return (fs::path(root) / ShardDirName(shard_index)).string();
}

/// One merged cross-chain batch, reassembled from routed sub-records.
struct MergedBatch {
  Timestamp batch_time = 0;
  bool evaluate_after = false;
  std::vector<LocationUpdate> objects;
  std::vector<QueryUpdate> queries;
};

/// Sub-records of one global sequence, accumulated across chains.
struct SeqBucket {
  uint32_t declared_shards = 0;
  uint64_t count = 0;
  Timestamp batch_time = 0;
  bool evaluate_after = false;
  uint64_t total_objects = 0;
  uint64_t total_queries = 0;
  std::vector<std::pair<uint32_t, const WalRecord*>> parts;  // (dir idx, rec)
};

Status AccumulateRouted(uint32_t dir_index, const WalRecord& record,
                        std::map<uint64_t, SeqBucket>* buckets) {
  if (!record.routed) {
    return Status::DataLoss("shard chain " + std::to_string(dir_index) +
                            " holds an unrouted record at seq " +
                            std::to_string(record.seq) +
                            "; sharded chains carry only routed sub-records");
  }
  SeqBucket& b = (*buckets)[record.seq];
  if (b.count == 0) {
    b.declared_shards = record.shard_count;
    b.batch_time = record.batch_time;
    b.evaluate_after = record.evaluate_after;
    b.total_objects = record.total_objects;
    b.total_queries = record.total_queries;
  } else if (b.declared_shards != record.shard_count ||
             b.batch_time != record.batch_time ||
             b.evaluate_after != record.evaluate_after ||
             b.total_objects != record.total_objects ||
             b.total_queries != record.total_queries) {
    return Status::DataLoss("sub-records of seq " + std::to_string(record.seq) +
                            " disagree on their batch header across chains");
  }
  ++b.count;
  b.parts.emplace_back(dir_index, &record);
  return Status::OK();
}

/// Reassembles a complete bucket into the original batch: every tuple lands
/// at its recorded slot, and the slots must form a full permutation.
Status MergeBucket(uint64_t seq, const SeqBucket& b, MergedBatch* out) {
  out->batch_time = b.batch_time;
  out->evaluate_after = b.evaluate_after;
  out->objects.assign(static_cast<size_t>(b.total_objects), LocationUpdate{});
  out->queries.assign(static_cast<size_t>(b.total_queries), QueryUpdate{});
  std::vector<char> obj_seen(static_cast<size_t>(b.total_objects), 0);
  std::vector<char> qry_seen(static_cast<size_t>(b.total_queries), 0);
  for (const auto& [dir_index, record] : b.parts) {
    for (size_t j = 0; j < record->objects.size(); ++j) {
      const uint64_t slot = record->object_slots[j];
      if (slot >= b.total_objects || obj_seen[static_cast<size_t>(slot)]) {
        return Status::DataLoss("seq " + std::to_string(seq) +
                                ": object slot " + std::to_string(slot) +
                                " is out of range or duplicated");
      }
      obj_seen[static_cast<size_t>(slot)] = 1;
      out->objects[static_cast<size_t>(slot)] = record->objects[j];
    }
    for (size_t j = 0; j < record->queries.size(); ++j) {
      const uint64_t slot = record->query_slots[j];
      if (slot >= b.total_queries || qry_seen[static_cast<size_t>(slot)]) {
        return Status::DataLoss("seq " + std::to_string(seq) +
                                ": query slot " + std::to_string(slot) +
                                " is out of range or duplicated");
      }
      qry_seen[static_cast<size_t>(slot)] = 1;
      out->queries[static_cast<size_t>(slot)] = record->queries[j];
    }
  }
  const auto unplaced = [](const std::vector<char>& seen) {
    return std::find(seen.begin(), seen.end(), 0) != seen.end();
  };
  if (unplaced(obj_seen) || unplaced(qry_seen)) {
    return Status::DataLoss("seq " + std::to_string(seq) +
                            ": merged sub-records do not cover every slot of "
                            "the original batch");
  }
  return Status::OK();
}

/// Serializes coordinator + per-shard snapshots and publishes the manifest —
/// the shared write path behind ForceCheckpoint and ShardedEngine::Checkpoint.
Status WriteShardedCheckpoint(const std::string& dir, const ShardedEngine& engine,
                              const UpdateValidator* validator, const Rng* rng,
                              uint64_t generation, uint64_t wal_next_seq,
                              uint64_t rounds, CrashInjector* crash,
                              uint64_t* total_bytes) {
  ManifestInfo info;
  info.fingerprint = OptionsFingerprint(engine.options());
  info.generation = generation;
  info.wal_next_seq = wal_next_seq;
  info.rounds = rounds;
  uint64_t bytes_sum = 0;
  for (uint32_t s = 0; s < engine.shard_count(); ++s) {
    if (s > 0 && crash != nullptr &&
        crash->ShouldCrash(CrashPoint::kBetweenShardSnapshots)) {
      // Earlier shards hold the new generation's snapshot, later ones do not;
      // no manifest references them, so they are orphans.
      return crash->CrashStatus();
    }
    const std::string payload = PersistAccess::SerializeShardSnapshot(
        engine, s, wal_next_seq, rounds);
    const std::string shard_dir = ChainDir(dir, s);
    if (crash != nullptr &&
        crash->ShouldCrash(CrashPoint::kMidShardSnapshotWrite)) {
      std::error_code ec;
      fs::create_directories(shard_dir, ec);
      if (ec) {
        return Status::IoError("cannot create " + shard_dir + ": " +
                               ec.message());
      }
      const std::string tmp_path =
          (fs::path(shard_dir) / (SnapshotFileName(generation) + ".tmp"))
              .string();
      SCUBA_RETURN_IF_ERROR(
          WriteFileDurably(tmp_path, payload, payload.size() / 2));
      return crash->CrashStatus();
    }
    uint64_t bytes = 0;
    SCUBA_RETURN_IF_ERROR(WriteSnapshotFile(shard_dir, generation, payload,
                                            /*crash=*/nullptr, &bytes));
    bytes_sum += bytes;
    info.shards.push_back(ManifestShardEntry{generation, Fnv1a64(payload)});
  }
  ByteWriter coord;
  PersistAccess::SaveShardedCoordinatorState(engine, validator, rng, &coord);
  info.coordinator_state = coord.Release();
  bytes_sum += info.coordinator_state.size();
  // The commit point: shards are durable, now the manifest names them.
  SCUBA_RETURN_IF_ERROR(WriteManifestFile(dir, info, crash));
  if (crash != nullptr &&
      crash->ShouldCrash(CrashPoint::kAfterManifestRename)) {
    // Committed, but the prune step never runs.
    return crash->CrashStatus();
  }
  if (total_bytes != nullptr) *total_bytes = bytes_sum;
  return Status::OK();
}

/// Validates one manifest generation's artifacts and returns the per-shard
/// payloads, or kDataLoss naming the first damaged artifact.
Result<std::vector<std::string>> ReadGenerationPayloads(
    const std::string& dir, const ManifestInfo& info) {
  std::vector<std::string> payloads;
  payloads.reserve(info.shards.size());
  for (uint32_t s = 0; s < info.shards.size(); ++s) {
    const std::string path =
        (fs::path(ChainDir(dir, s)) / SnapshotFileName(info.shards[s].snapshot_seq))
            .string();
    Result<std::string> payload = ReadSnapshotPayload(path);
    if (!payload.ok()) {
      // A missing or torn artifact invalidates the generation either way.
      return Status::DataLoss("generation " + std::to_string(info.generation) +
                              ": " + payload.status().message());
    }
    if (Fnv1a64(*payload) != info.shards[s].state_hash) {
      return Status::DataLoss(
          path + " does not hash to the value its manifest recorded");
    }
    Result<SnapshotMeta> meta = PeekSnapshotMeta(*payload);
    if (!meta.ok()) return meta.status();
    if (meta->wal_next_seq != info.wal_next_seq ||
        meta->options_fingerprint != info.fingerprint) {
      return Status::DataLoss(
          path + " belongs to a different checkpoint than its manifest");
    }
    payloads.push_back(std::move(*payload));
  }
  return payloads;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// --- PersistAccess sharded statics -----------------------------------------

std::string PersistAccess::SerializeShardSnapshot(const ShardedEngine& e,
                                                  uint32_t shard_index,
                                                  uint64_t wal_next_seq,
                                                  uint64_t rounds) {
  const EngineShard& shard = *e.shards_[shard_index];
  ByteWriter w;
  w.PutU64(OptionsFingerprint(e.options()));
  w.PutU64(wal_next_seq);
  w.PutU64(rounds);
  w.PutU32(shard_index);
  w.PutU32(e.shard_count());
  const std::vector<ClusterId> cids = shard.store.SortedClusterIds();
  w.PutU64(cids.size());
  for (ClusterId cid : cids) {
    const MovingCluster* cluster = shard.store.GetCluster(cid);
    SCUBA_CHECK(cluster != nullptr);
    SaveCluster(*cluster, &w);
    w.PutBool(e.AnyGridContains(cid));
  }
  const ClusterJoinExecutor::Counters& jc = shard.join.counters_;
  w.PutU64(jc.comparisons);
  w.PutU64(jc.bounds_checks);
  w.PutU64(jc.pairs_tested);
  w.PutU64(jc.pairs_overlapping);
  w.PutU64(jc.within_joins_single);
  w.PutU64(jc.within_joins_pair);
  w.PutDouble(shard.shedder.eta_);
  w.PutU64(shard.shedder.adjustments_);
  w.PutDouble(shard.nucleus_radius);
  return w.Release();
}

Status PersistAccess::ApplyShardSnapshot(const std::string& payload,
                                         ShardedEngine* e) {
  ByteReader r(payload);
  SnapshotMeta meta;
  SCUBA_RETURN_IF_ERROR(r.GetU64(&meta.options_fingerprint));
  SCUBA_RETURN_IF_ERROR(r.GetU64(&meta.wal_next_seq));
  SCUBA_RETURN_IF_ERROR(r.GetU64(&meta.rounds));
  if (meta.options_fingerprint != OptionsFingerprint(e->options())) {
    return Status::FailedPrecondition(
        "shard snapshot was taken under different engine options; restore "
        "requires semantically identical ScubaOptions");
  }
  uint32_t saved_index = 0, saved_shards = 0;
  SCUBA_RETURN_IF_ERROR(r.GetU32(&saved_index));
  SCUBA_RETURN_IF_ERROR(r.GetU32(&saved_shards));
  if (saved_shards == 0 || saved_index >= saved_shards) {
    return Status::DataLoss("shard snapshot names shard " +
                            std::to_string(saved_index) + " of " +
                            std::to_string(saved_shards));
  }
  uint64_t cluster_count = 0;
  SCUBA_RETURN_IF_ERROR(r.GetU64(&cluster_count));
  for (uint64_t i = 0; i < cluster_count; ++i) {
    Result<MovingCluster> cluster = LoadCluster(&r);
    if (!cluster.ok()) return cluster.status();
    bool registered = false;
    SCUBA_RETURN_IF_ERROR(r.GetBool(&registered));
    const ClusterId cid = cluster->cid();
    const Circle bounds = cluster->registered_bounds();
    // Re-partition on restore: ownership is a pure function of the saved
    // registered center under the CURRENT router, so an N-shard checkpoint
    // lands cleanly in an M-shard engine.
    EngineShard* owner = e->OwnerShardFor(*cluster);
    if (Status s = owner->store.AddCluster(std::move(cluster).value());
        !s.ok()) {
      return Status::DataLoss("shard snapshot cluster " + std::to_string(cid) +
                              " rejected by the store: " + s.message());
    }
    if (registered) {
      if (Status s = e->ApplyRegistration(cid, bounds); !s.ok()) {
        return Status::DataLoss("shard snapshot cluster " +
                                std::to_string(cid) +
                                " rejected by the grid: " + s.message());
      }
    }
  }
  ClusterJoinExecutor::Counters jc;
  SCUBA_RETURN_IF_ERROR(r.GetU64(&jc.comparisons));
  SCUBA_RETURN_IF_ERROR(r.GetU64(&jc.bounds_checks));
  SCUBA_RETURN_IF_ERROR(r.GetU64(&jc.pairs_tested));
  SCUBA_RETURN_IF_ERROR(r.GetU64(&jc.pairs_overlapping));
  SCUBA_RETURN_IF_ERROR(r.GetU64(&jc.within_joins_single));
  SCUBA_RETURN_IF_ERROR(r.GetU64(&jc.within_joins_pair));
  double eta = 0.0, nucleus_radius = 0.0;
  uint64_t adjustments = 0;
  SCUBA_RETURN_IF_ERROR(r.GetDouble(&eta));
  SCUBA_RETURN_IF_ERROR(r.GetU64(&adjustments));
  SCUBA_RETURN_IF_ERROR(r.GetDouble(&nucleus_radius));
  if (saved_shards == e->shard_count()) {
    EngineShard& shard = *e->shards_[saved_index];
    shard.join.counters_ = jc;
    shard.shedder.eta_ = eta;
    shard.shedder.adjustments_ = adjustments;
    shard.nucleus_radius = nucleus_radius;
  } else {
    // Layouts differ: per-stripe attribution is meaningless, but the summed
    // counters (the observable aggregate) must survive — accumulate onto
    // shard 0. Shard 0's saved shedder state seeds every stripe.
    ClusterJoinExecutor::Counters& agg = e->shards_[0]->join.counters_;
    agg.comparisons += jc.comparisons;
    agg.bounds_checks += jc.bounds_checks;
    agg.pairs_tested += jc.pairs_tested;
    agg.pairs_overlapping += jc.pairs_overlapping;
    agg.within_joins_single += jc.within_joins_single;
    agg.within_joins_pair += jc.within_joins_pair;
    if (saved_index == 0) {
      for (auto& sp : e->shards_) {
        sp->shedder.eta_ = eta;
        sp->shedder.adjustments_ = adjustments;
        sp->nucleus_radius = nucleus_radius;
      }
    }
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("shard snapshot payload carries trailing bytes");
  }
  return Status::OK();
}

Status PersistAccess::ReplaceShardStripe(ShardedEngine* e, uint32_t shard,
                                         const std::string& payload) {
  if (e == nullptr) {
    return Status::InvalidArgument("engine must be non-null");
  }
  if (shard >= e->shard_count()) {
    return Status::InvalidArgument("shard index out of range");
  }
  EngineShard& victim = *e->shards_[shard];
  // 1. Drop the stripe's own clusters: from every grid they touch, then from
  // the stripe's store.
  for (ClusterId cid : victim.store.SortedClusterIds()) {
    for (auto& sp : e->shards_) {
      if (!sp->grid.Contains(cid)) continue;
      SCUBA_RETURN_IF_ERROR(sp->grid.Remove(cid));
    }
    SCUBA_RETURN_IF_ERROR(victim.store.RemoveCluster(cid));
  }
  // 2. Wipe the stripe's mirror outright: neighbor-owned border entries come
  // back in step 4; corrupt residue never does. Stale ghosts go with it
  // (they are rebuilt before every join anyway).
  victim.grid.Clear();
  victim.ghosts.Clear();
  // 3. Re-add the stripe's clusters from the twin payload. Same layout, so
  // every cluster routes back to this stripe; each registration fans out to
  // every stripe its circle touches, this one included. The same-layout
  // branch also restores the stripe's join counters and shedder state.
  SCUBA_RETURN_IF_ERROR(ApplyShardSnapshot(payload, e));
  // 4. Restore this stripe's mirror entries for the OTHER stripes' clusters:
  // re-apply every registered cluster's placement (cell placement is pure
  // geometry, so stripes already holding the cluster just recompute the same
  // cells).
  for (auto& sp : e->shards_) {
    if (sp.get() == &victim) continue;
    for (ClusterId cid : sp->store.SortedClusterIds()) {
      const MovingCluster* cluster = sp->store.GetCluster(cid);
      SCUBA_CHECK(cluster != nullptr);
      if (!e->AnyGridContains(cid)) continue;  // unregistered cluster
      SCUBA_RETURN_IF_ERROR(
          e->ApplyRegistration(cid, cluster->registered_bounds()));
    }
  }
  return Status::OK();
}

void PersistAccess::SaveShardedCoordinatorState(const ShardedEngine& e,
                                                const UpdateValidator* validator,
                                                const Rng* rng, ByteWriter* w) {
  w->PutU32(e.meta_.next_cid_);
  PutSortedAttrTable(w, e.meta_.objects_);
  PutSortedAttrTable(w, e.meta_.queries_);
  SaveEvalStats(e.stats_, w);
  w->PutU64(e.phase_stats_.clusters_dissolved_expired);
  w->PutU64(e.phase_stats_.members_shed_maintenance);
  w->PutU64(e.phase_stats_.clusters_split);
  w->PutU64(e.clusterer_stats_.clusters_created);
  w->PutU64(e.clusterer_stats_.members_absorbed);
  w->PutU64(e.clusterer_stats_.members_refreshed);
  w->PutU64(e.clusterer_stats_.members_departed);
  w->PutU64(e.clusterer_stats_.clusters_dissolved_empty);
  w->PutU64(e.clusterer_stats_.members_shed);
  w->PutDouble(e.pending_prejoin_seconds_);
  w->PutDouble(e.pending_prejoin_worker_seconds_);
  w->PutU64(e.handoffs_);
  w->PutU64(e.ghosts_published_);
  w->PutU64(e.recommendations_);
  w->PutString(e.last_recommendation_);
  w->PutBool(validator != nullptr);
  if (validator != nullptr) SaveValidatorState(*validator, w);
  w->PutBool(rng != nullptr);
  if (rng != nullptr) {
    const RngState state = rng->SaveState();
    for (uint64_t word : state.s) w->PutU64(word);
    w->PutBool(state.has_cached_gaussian);
    w->PutDouble(state.cached_gaussian);
  }
}

Status PersistAccess::LoadShardedCoordinatorState(ByteReader* r,
                                                  ShardedEngine* e,
                                                  UpdateValidator* validator,
                                                  Rng* rng) {
  // Wipe the whole engine: the coordinator blob + shard payloads together
  // replace every piece of durable state.
  e->meta_.Clear();
  for (auto& sp : e->shards_) {
    sp->store.Clear();
    sp->ghosts.Clear();
    sp->grid.Clear();
    sp->results.Clear();
    sp->join.counters_ = ClusterJoinExecutor::Counters{};
    sp->shedder.eta_ = e->options_.shedding.eta;
    sp->shedder.adjustments_ = 0;
    sp->nucleus_radius = sp->shedder.nucleus_radius();
  }
  uint32_t next_cid = 0;
  SCUBA_RETURN_IF_ERROR(r->GetU32(&next_cid));
  for (int table = 0; table < 2; ++table) {
    uint64_t rows = 0;
    SCUBA_RETURN_IF_ERROR(r->GetU64(&rows));
    for (uint64_t i = 0; i < rows; ++i) {
      uint32_t id = 0;
      uint64_t attrs = 0;
      SCUBA_RETURN_IF_ERROR(r->GetU32(&id));
      SCUBA_RETURN_IF_ERROR(r->GetU64(&attrs));
      if (table == 0) {
        e->meta_.UpsertObjectAttrs(id, attrs);
      } else {
        e->meta_.UpsertQueryAttrs(id, attrs);
      }
    }
  }
  e->meta_.next_cid_ = next_cid;
  SCUBA_RETURN_IF_ERROR(LoadEvalStats(r, &e->stats_));
  // The restored engine reports its own parallelism (results are identical
  // across thread counts by contract; ingest is the serial coordinator).
  e->stats_.join_threads = e->resolved_join_threads_;
  e->stats_.ingest_threads = 1;
  SCUBA_RETURN_IF_ERROR(
      r->GetU64(&e->phase_stats_.clusters_dissolved_expired));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&e->phase_stats_.members_shed_maintenance));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&e->phase_stats_.clusters_split));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&e->clusterer_stats_.clusters_created));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&e->clusterer_stats_.members_absorbed));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&e->clusterer_stats_.members_refreshed));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&e->clusterer_stats_.members_departed));
  SCUBA_RETURN_IF_ERROR(
      r->GetU64(&e->clusterer_stats_.clusters_dissolved_empty));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&e->clusterer_stats_.members_shed));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&e->pending_prejoin_seconds_));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&e->pending_prejoin_worker_seconds_));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&e->handoffs_));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&e->ghosts_published_));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&e->recommendations_));
  SCUBA_RETURN_IF_ERROR(r->GetString(&e->last_recommendation_));
  bool has_validator = false;
  SCUBA_RETURN_IF_ERROR(r->GetBool(&has_validator));
  if (has_validator) {
    if (validator != nullptr) {
      SCUBA_RETURN_IF_ERROR(LoadValidatorState(r, validator));
    } else {
      UpdateValidator scratch((ValidatorConfig()));
      Status s = LoadValidatorState(r, &scratch);
      if (!s.ok() && !s.IsFailedPrecondition()) return s;
      if (s.IsFailedPrecondition()) {
        return Status::DataLoss(
            "checkpoint carries validator state; pass a validator configured "
            "with the original quarantine capacity to restore it");
      }
    }
  }
  bool has_rng = false;
  SCUBA_RETURN_IF_ERROR(r->GetBool(&has_rng));
  if (has_rng) {
    RngState state;
    for (uint64_t& word : state.s) SCUBA_RETURN_IF_ERROR(r->GetU64(&word));
    SCUBA_RETURN_IF_ERROR(r->GetBool(&state.has_cached_gaussian));
    SCUBA_RETURN_IF_ERROR(r->GetDouble(&state.cached_gaussian));
    if (rng != nullptr) rng->RestoreState(state);
  }
  if (!r->AtEnd()) {
    return Status::DataLoss(
        "coordinator state carries unexpected trailing bytes");
  }
  return Status::OK();
}

EvalStats* PersistAccess::MutableShardedStats(ShardedEngine* e) {
  return &e->stats_;
}

// --- ShardedEngine checkpoint/restore convenience --------------------------

Status ShardedEngine::Checkpoint(const std::string& dir) {
  Stopwatch sw;
  Result<std::vector<std::pair<uint64_t, std::string>>> manifests =
      ListManifests(dir);
  if (!manifests.ok()) return manifests.status();
  const uint64_t generation =
      manifests->empty() ? 1 : manifests->back().first + 1;
  uint64_t bytes = 0;
  SCUBA_RETURN_IF_ERROR(WriteShardedCheckpoint(
      dir, *this, /*validator=*/nullptr, /*rng=*/nullptr, generation,
      /*wal_next_seq=*/0, stats_.evaluations, /*crash=*/nullptr, &bytes));
  ++stats_.checkpoints_written;
  stats_.last_checkpoint_bytes = bytes;
  stats_.last_checkpoint_seconds = sw.ElapsedSeconds();
  stats_.total_checkpoint_seconds += stats_.last_checkpoint_seconds;
  return Status::OK();
}

Status ShardedEngine::Restore(const std::string& dir) {
  Result<std::vector<std::pair<uint64_t, std::string>>> manifests =
      ListManifests(dir);
  if (!manifests.ok()) return manifests.status();
  if (manifests->empty()) {
    return Status::NotFound("no manifest in " + dir);
  }
  // Newest only — no silent fallback to older generations.
  Result<ManifestInfo> info = ReadManifest(manifests->back().second);
  if (!info.ok()) return info.status();
  if (info->fingerprint != OptionsFingerprint(options_)) {
    return Status::FailedPrecondition(
        "checkpoint was taken under different engine options; restore "
        "requires semantically identical ScubaOptions");
  }
  Result<std::vector<std::string>> payloads =
      ReadGenerationPayloads(dir, *info);
  if (!payloads.ok()) return payloads.status();
  ByteReader coord(info->coordinator_state);
  SCUBA_RETURN_IF_ERROR(PersistAccess::LoadShardedCoordinatorState(
      &coord, this, /*validator=*/nullptr, /*rng=*/nullptr));
  for (const std::string& payload : *payloads) {
    SCUBA_RETURN_IF_ERROR(PersistAccess::ApplyShardSnapshot(payload, this));
  }
  return Status::OK();
}

// --- ShardedDurabilityManager ----------------------------------------------

Result<std::unique_ptr<ShardedDurabilityManager>> ShardedDurabilityManager::Open(
    const std::string& dir, const CheckpointPolicy& policy,
    ShardedEngine* engine, UpdateValidator* validator, Rng* rng,
    CrashInjector* crash) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must be non-null");
  }
  if (policy.keep_last_k == 0) {
    return Status::InvalidArgument("keep_last_k must be at least 1");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + dir + ": " + ec.message());
  }
  std::unique_ptr<ShardedDurabilityManager> manager(
      new ShardedDurabilityManager(dir, policy, engine, validator, rng,
                                   crash));
  // The newest COMMITTED generation supplies the base sequence; the newest
  // file name (readable or not) keeps generation numbers monotonic.
  Result<std::vector<std::pair<uint64_t, std::string>>> manifests =
      ListManifests(dir);
  if (!manifests.ok()) return manifests.status();
  manager->next_generation_ =
      manifests->empty() ? 1 : manifests->back().first + 1;
  uint64_t base_seq = 0;
  uint64_t committed_shards = 0;
  for (size_t i = manifests->size(); i-- > 0;) {
    Result<ManifestInfo> info = ReadManifest((*manifests)[i].second);
    if (!info.ok()) {
      if (info.status().IsDataLoss()) continue;  // torn publish residue
      return info.status();
    }
    if (info->fingerprint != OptionsFingerprint(engine->options())) {
      return Status::FailedPrecondition(
          "durable directory belongs to a run with different engine options");
    }
    base_seq = info->wal_next_seq;
    committed_shards = info->shards.size();
    break;
  }
  // Align every chain on one sequence: merge all on-disk chains (current and
  // extinct layouts alike), find the first sequence left incomplete by a
  // crash mid-fanout, and physically drop it everywhere — it was never
  // acknowledged, and every chain must resume on the same number.
  Result<std::vector<std::pair<uint32_t, std::string>>> shard_dirs =
      ListShardDirs(dir);
  if (!shard_dirs.ok()) return shard_dirs.status();
  std::map<uint64_t, SeqBucket> buckets;
  std::vector<std::unique_ptr<WalContents>> keep_alive;
  for (const auto& [index, chain_dir] : *shard_dirs) {
    Result<WalContents> contents =
        ReadWal(chain_dir, /*tolerate_routed_segment_gaps=*/true);
    if (!contents.ok()) return contents.status();
    auto held = std::make_unique<WalContents>(std::move(*contents));
    for (const WalRecord& record : held->records) {
      if (record.seq < base_seq) continue;
      SCUBA_RETURN_IF_ERROR(AccumulateRouted(index, record, &buckets));
    }
    keep_alive.push_back(std::move(held));
  }
  uint64_t aligned = base_seq;
  for (const auto& [seq, bucket] : buckets) {
    if (seq != aligned) {
      return Status::DataLoss("chain records skip from seq " +
                              std::to_string(aligned) + " to " +
                              std::to_string(seq));
    }
    if (bucket.count > bucket.declared_shards) {
      return Status::DataLoss("seq " + std::to_string(seq) + " has " +
                              std::to_string(bucket.count) +
                              " sub-records for a " +
                              std::to_string(bucket.declared_shards) +
                              "-shard fanout");
    }
    if (bucket.count < bucket.declared_shards) {
      // Incomplete: legal only at the very end of the log.
      if (seq != buckets.rbegin()->first) {
        return Status::DataLoss(
            "seq " + std::to_string(seq) +
            " is incomplete across chains but later records exist");
      }
      break;
    }
    ++aligned;
  }
  for (const auto& [index, chain_dir] : *shard_dirs) {
    SCUBA_RETURN_IF_ERROR(TruncateWalAfter(chain_dir, aligned));
  }
  keep_alive.clear();
  for (uint32_t s = 0; s < engine->shard_count(); ++s) {
    Result<std::unique_ptr<WalWriter>> chain = WalWriter::Open(
        ChainDir(dir, s), policy.wal_segment_bytes, aligned, crash);
    if (!chain.ok()) return chain.status();
    manager->chains_.push_back(std::move(chain).value());
  }
  manager->next_seq_ = aligned;
  manager->object_slot_scratch_.resize(engine->shard_count());
  manager->object_scratch_.resize(engine->shard_count());
  manager->query_slot_scratch_.resize(engine->shard_count());
  manager->query_scratch_.resize(engine->shard_count());
  const EvalStats& stats = *PersistAccess::MutableShardedStats(engine);
  manager->base_wal_records_ = stats.wal_records_appended;
  manager->base_wal_fsyncs_ = stats.wal_fsyncs;
  manager->base_wal_bytes_ = stats.wal_bytes_appended;
  if (committed_shards != 0 && committed_shards != engine->shard_count()) {
    // The on-disk layout differs from the engine's (re-partition on
    // recovery): commit the new layout before accepting any append, so every
    // batch logged from here on has a manifest that matches its fanout.
    SCUBA_RETURN_IF_ERROR(manager->ForceCheckpoint());
  }
  return manager;
}

Status ShardedDurabilityManager::LogBatch(
    Timestamp batch_time, bool evaluate_after,
    std::span<const LocationUpdate> objects,
    std::span<const QueryUpdate> queries) {
  const uint32_t n = engine_->shard_count();
  for (uint32_t s = 0; s < n; ++s) {
    object_slot_scratch_[s].clear();
    object_scratch_[s].clear();
    query_slot_scratch_[s].clear();
    query_scratch_[s].clear();
  }
  const ShardRouter& router = engine_->router();
  for (size_t i = 0; i < objects.size(); ++i) {
    const uint32_t s = router.ShardOfPoint(objects[i].position);
    object_slot_scratch_[s].push_back(i);
    object_scratch_[s].push_back(objects[i]);
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    const uint32_t s = router.ShardOfPoint(queries[i].position);
    query_slot_scratch_[s].push_back(i);
    query_scratch_[s].push_back(queries[i]);
  }
  Status status = Status::OK();
  for (uint32_t s = 0; s < n; ++s) {
    if (s > 0 && crash_ != nullptr &&
        crash_->ShouldCrash(CrashPoint::kBetweenShardWalAppends)) {
      // Chains 0..s-1 hold the batch's sub-record, chains s.. have nothing:
      // the incomplete-fanout residue with no torn bytes.
      status = crash_->CrashStatus();
      break;
    }
    status = chains_[s]->AppendRouted(
        batch_time, evaluate_after, s, n, objects.size(), queries.size(),
        object_slot_scratch_[s], object_scratch_[s], query_slot_scratch_[s],
        query_scratch_[s]);
    if (!status.ok()) break;
  }
  if (status.ok()) ++next_seq_;
  MirrorWalCounters();
  return status;
}

void ShardedDurabilityManager::MirrorWalCounters() {
  uint64_t records = 0, fsyncs = 0, bytes = 0;
  for (const auto& chain : chains_) {
    records += chain->stats().records_appended;
    fsyncs += chain->stats().fsyncs;
    bytes += chain->stats().bytes_appended;
  }
  EvalStats* stats = PersistAccess::MutableShardedStats(engine_);
  stats->wal_records_appended = base_wal_records_ + records;
  stats->wal_fsyncs = base_wal_fsyncs_ + fsyncs;
  stats->wal_bytes_appended = base_wal_bytes_ + bytes;
}

Status ShardedDurabilityManager::OnRoundComplete() {
  if (policy_.every_n_rounds == 0) return Status::OK();
  if (++rounds_since_checkpoint_ < policy_.every_n_rounds) return Status::OK();
  return ForceCheckpoint();
}

Status ShardedDurabilityManager::ForceCheckpoint() {
  if (crash_ != nullptr &&
      crash_->ShouldCrash(CrashPoint::kBeforeSnapshotWrite)) {
    return crash_->CrashStatus();
  }
  Stopwatch sw;
  EvalStats* stats = PersistAccess::MutableShardedStats(engine_);
  uint64_t bytes = 0;
  SCUBA_RETURN_IF_ERROR(WriteShardedCheckpoint(
      dir_, *engine_, validator_, rng_, next_generation_, next_seq_,
      stats->evaluations, crash_, &bytes));
  ++next_generation_;
  ++stats->checkpoints_written;
  stats->last_checkpoint_bytes = bytes;
  stats->last_checkpoint_seconds = sw.ElapsedSeconds();
  stats->total_checkpoint_seconds += stats->last_checkpoint_seconds;
  SCUBA_RETURN_IF_ERROR(Prune());
  rounds_since_checkpoint_ = 0;
  return Status::OK();
}

Status ShardedDurabilityManager::OnLayoutChanged() {
  const uint32_t n = engine_->shard_count();
  // Surplus chains close; their on-disk records survive (recovery merges
  // every shard directory, extinct layouts included). Missing chains open at
  // the current global sequence.
  while (chains_.size() > n) chains_.pop_back();
  for (uint32_t s = static_cast<uint32_t>(chains_.size()); s < n; ++s) {
    Result<std::unique_ptr<WalWriter>> chain = WalWriter::Open(
        ChainDir(dir_, s), policy_.wal_segment_bytes, next_seq_, crash_);
    if (!chain.ok()) return chain.status();
    chains_.push_back(std::move(chain).value());
  }
  object_slot_scratch_.resize(n);
  object_scratch_.resize(n);
  query_slot_scratch_.resize(n);
  query_scratch_.resize(n);
  // Commit the new layout before any further append (mirrors Open's
  // layout-change handling): every batch logged from here on has a manifest
  // matching its fanout.
  return ForceCheckpoint();
}

Status ShardedDurabilityManager::Prune() {
  Result<std::vector<std::pair<uint64_t, std::string>>> manifests =
      ListManifests(dir_);
  if (!manifests.ok()) return manifests.status();
  // Retention counts manifest GENERATIONS, not raw snapshots: a shard
  // snapshot or WAL segment stays on disk as long as ANY retained manifest
  // references it, so falling back a generation always finds its artifacts.
  const size_t keep = policy_.keep_last_k;
  std::error_code ec;
  if (manifests->size() > keep) {
    for (size_t i = 0; i + keep < manifests->size(); ++i) {
      fs::remove((*manifests)[i].second, ec);
      if (ec) {
        return Status::IoError("remove " + (*manifests)[i].second + ": " +
                               ec.message());
      }
    }
    manifests->erase(manifests->begin(),
                     manifests->end() - static_cast<ptrdiff_t>(keep));
  }
  if (crash_ != nullptr &&
      crash_->ShouldCrash(CrashPoint::kMidManifestPrune)) {
    // Obsolete manifests are gone, their artifacts linger as orphans.
    return crash_->CrashStatus();
  }
  std::set<uint64_t> retained_generations;
  uint64_t min_wal_seq = next_seq_;
  for (const auto& [generation, path] : *manifests) {
    retained_generations.insert(generation);
    Result<ManifestInfo> info = ReadManifest(path);
    if (!info.ok()) {
      if (info.status().IsDataLoss()) continue;  // torn residue; keep going
      return info.status();
    }
    min_wal_seq = std::min(min_wal_seq, info->wal_next_seq);
  }
  for (uint32_t s = 0; s < static_cast<uint32_t>(chains_.size()); ++s) {
    const std::string shard_dir = ChainDir(dir_, s);
    Result<std::vector<std::pair<uint64_t, std::string>>> snapshots =
        ListSnapshots(shard_dir);
    if (!snapshots.ok()) return snapshots.status();
    for (const auto& [seq, path] : *snapshots) {
      // Shard snapshot file names carry their generation.
      if (retained_generations.count(seq) == 0) {
        fs::remove(path, ec);
        if (ec) {
          return Status::IoError("remove " + path + ": " + ec.message());
        }
      }
    }
    for (const fs::directory_entry& entry :
         fs::directory_iterator(shard_dir, ec)) {
      if (entry.path().extension() == ".tmp") fs::remove(entry.path(), ec);
    }
    Result<size_t> removed = chains_[s]->PruneSegmentsBelow(min_wal_seq);
    if (!removed.ok()) return removed.status();
  }
  // Extinct layouts' shard directories are left untouched: retained older
  // manifests may still reference their artifacts, and once those manifests
  // age out the leftovers are inert (fsck reports them as orphans).
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".tmp") fs::remove(entry.path(), ec);
  }
  return Status::OK();
}

// --- Recovery ---------------------------------------------------------------

std::string ShardedRecoveryReport::ToString() const {
  std::ostringstream out;
  if (manifest_path.empty()) {
    out << "recovered from an empty base (no committed manifest)";
  } else {
    out << "recovered from " << manifest_path << " (generation " << generation
        << ", " << manifest_shards << " shards, seq " << base_seq << ", "
        << snapshot_rounds << " rounds)";
  }
  if (manifest_shards != 0 && manifest_shards != engine_shards) {
    out << ", re-partitioned into " << engine_shards << " shards";
  }
  out << ", replayed " << batches_replayed << " batches (" << rounds_replayed
      << " rounds), next seq " << next_seq;
  if (generations_skipped > 0) {
    out << ", " << generations_skipped << " generation(s) skipped";
  }
  if (any_torn_tail) out << ", torn chain tail discarded";
  if (incomplete_tail_discarded) out << ", incomplete final batch discarded";
  for (const std::string& loss : data_loss) out << "\n  data loss: " << loss;
  return out.str();
}

std::string ShardedRecoveryReport::ToJson() const {
  std::ostringstream out;
  out << "{\"manifest_path\":\"" << JsonEscape(manifest_path) << "\""
      << ",\"generation\":" << generation
      << ",\"manifest_shards\":" << manifest_shards
      << ",\"engine_shards\":" << engine_shards << ",\"base_seq\":" << base_seq
      << ",\"snapshot_rounds\":" << snapshot_rounds
      << ",\"batches_replayed\":" << batches_replayed
      << ",\"rounds_replayed\":" << rounds_replayed
      << ",\"chain_records_replayed\":[";
  for (size_t i = 0; i < chain_records_replayed.size(); ++i) {
    if (i > 0) out << ",";
    out << chain_records_replayed[i];
  }
  out << "],\"next_seq\":" << next_seq
      << ",\"generations_skipped\":" << generations_skipped
      << ",\"any_torn_tail\":" << (any_torn_tail ? "true" : "false")
      << ",\"incomplete_tail_discarded\":"
      << (incomplete_tail_discarded ? "true" : "false") << ",\"data_loss\":[";
  for (size_t i = 0; i < data_loss.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << JsonEscape(data_loss[i]) << "\"";
  }
  out << "]}";
  return out.str();
}

Result<ShardedRecoveryReport> RecoverShardedEngine(
    const std::string& dir, ShardedEngine* engine, UpdateValidator* validator,
    Rng* rng, const ResultSink& sink) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must be non-null");
  }
  ShardedRecoveryReport report;
  report.engine_shards = engine->shard_count();
  Result<std::vector<std::pair<uint64_t, std::string>>> manifests =
      ListManifests(dir);
  if (!manifests.ok()) return manifests.status();
  // Newest committed generation whose every artifact verifies; torn or
  // hash-mismatched generations fall back to the previous one — that is why
  // retention keeps keep_last_k generations.
  uint64_t base_seq = 0;
  for (size_t i = manifests->size(); i-- > 0;) {
    const auto& [generation, path] = (*manifests)[i];
    Result<ManifestInfo> info = ReadManifest(path);
    if (!info.ok()) {
      if (info.status().IsDataLoss()) {
        report.data_loss.push_back(info.status().message());
        ++report.generations_skipped;
        continue;
      }
      return info.status();
    }
    if (info->fingerprint != OptionsFingerprint(engine->options())) {
      return Status::FailedPrecondition(
          "checkpoint was taken under different engine options (manifest " +
          path + "); recovery requires semantically identical ScubaOptions");
    }
    Result<std::vector<std::string>> payloads =
        ReadGenerationPayloads(dir, *info);
    if (!payloads.ok()) {
      if (payloads.status().IsDataLoss()) {
        report.data_loss.push_back(payloads.status().message());
        ++report.generations_skipped;
        continue;
      }
      return payloads.status();
    }
    ByteReader coord(info->coordinator_state);
    SCUBA_RETURN_IF_ERROR(PersistAccess::LoadShardedCoordinatorState(
        &coord, engine, validator, rng));
    for (const std::string& payload : *payloads) {
      SCUBA_RETURN_IF_ERROR(PersistAccess::ApplyShardSnapshot(payload, engine));
    }
    report.manifest_path = path;
    report.generation = generation;
    report.manifest_shards = info->shards.size();
    report.base_seq = info->wal_next_seq;
    report.snapshot_rounds = info->rounds;
    base_seq = info->wal_next_seq;
    break;
  }
  // Merge every chain's routed suffix — current and extinct layouts alike —
  // back into whole batches.
  Result<std::vector<std::pair<uint32_t, std::string>>> shard_dirs =
      ListShardDirs(dir);
  if (!shard_dirs.ok()) return shard_dirs.status();
  std::map<uint64_t, SeqBucket> buckets;
  std::vector<WalContents> chain_contents;
  chain_contents.reserve(shard_dirs->size());
  uint32_t max_dir_index = 0;
  for (const auto& [index, chain_dir] : *shard_dirs) {
    Result<WalContents> contents =
        ReadWal(chain_dir, /*tolerate_routed_segment_gaps=*/true);
    if (!contents.ok()) return contents.status();
    if (contents->torn_tail) {
      report.any_torn_tail = true;
      report.data_loss.push_back(contents->torn_detail);
    }
    for (const std::string& note : contents->route_gap_notes) {
      report.data_loss.push_back(ChainDir(dir, index) + ": " + note);
    }
    max_dir_index = std::max(max_dir_index, index);
    chain_contents.push_back(std::move(*contents));
  }
  report.chain_records_replayed.assign(
      shard_dirs->empty() ? 0 : max_dir_index + 1, 0);
  for (size_t d = 0; d < shard_dirs->size(); ++d) {
    const uint32_t index = (*shard_dirs)[d].first;
    for (const WalRecord& record : chain_contents[d].records) {
      if (record.seq < base_seq) continue;
      SCUBA_RETURN_IF_ERROR(AccumulateRouted(index, record, &buckets));
    }
  }
  report.next_seq = base_seq;
  ResultSet results;
  MergedBatch batch;
  for (const auto& [seq, bucket] : buckets) {
    if (seq != report.next_seq) {
      return Status::DataLoss(
          "chain replay gap: checkpoint is consistent as of seq " +
          std::to_string(report.next_seq) +
          " but the next durable sequence is " + std::to_string(seq));
    }
    if (bucket.count > bucket.declared_shards) {
      return Status::DataLoss("seq " + std::to_string(seq) + " has " +
                              std::to_string(bucket.count) +
                              " sub-records for a " +
                              std::to_string(bucket.declared_shards) +
                              "-shard fanout");
    }
    if (bucket.count < bucket.declared_shards) {
      // A crash mid-fanout left the final batch incomplete: it was never
      // acknowledged as durable, so recovery discards it — but only at the
      // very end of the log.
      if (seq != buckets.rbegin()->first) {
        return Status::DataLoss(
            "seq " + std::to_string(seq) +
            " is incomplete across chains but later records exist");
      }
      report.incomplete_tail_discarded = true;
      report.data_loss.push_back(
          "seq " + std::to_string(seq) + " has " + std::to_string(bucket.count) +
          " of " + std::to_string(bucket.declared_shards) +
          " sub-records (crash mid-fanout); batch discarded");
      break;
    }
    SCUBA_RETURN_IF_ERROR(MergeBucket(seq, bucket, &batch));
    if (validator != nullptr) {
      // Chains hold post-screen tuples; replay advances the validator's
      // per-entity timestamp floors exactly as the original admission did.
      for (const LocationUpdate& u : batch.objects) {
        PersistAccess::NoteAdmitted(validator, EntityKind::kObject, u.oid,
                                    u.time);
      }
      for (const QueryUpdate& u : batch.queries) {
        PersistAccess::NoteAdmitted(validator, EntityKind::kQuery, u.qid,
                                    u.time);
      }
    }
    SCUBA_RETURN_IF_ERROR(engine->IngestBatch(batch.objects, batch.queries));
    if (batch.evaluate_after) {
      SCUBA_RETURN_IF_ERROR(engine->Evaluate(batch.batch_time, &results));
      if (sink) sink(batch.batch_time, results);
      ++report.rounds_replayed;
    }
    for (const auto& [dir_index, record] : bucket.parts) {
      ++report.chain_records_replayed[dir_index];
    }
    ++report.batches_replayed;
    ++report.next_seq;
  }
  PersistAccess::MutableShardedStats(engine)->recovery_replay_rounds +=
      report.rounds_replayed;
  return report;
}

Status RecoverShardStripe(const std::string& dir, ShardedEngine* engine,
                          uint32_t shard,
                          const ValidatorConfig* validator_config) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must be non-null");
  }
  if (shard >= engine->shard_count()) {
    return Status::InvalidArgument("shard index out of range");
  }
  // Recover a pristine twin at the live engine's layout. Supervision and
  // telemetry are stripped (both are fingerprint-excluded, so the twin still
  // passes the recovery fingerprint check) — the twin must replay clean, not
  // re-inject faults or emit telemetry.
  ScubaOptions twin_options = engine->options();
  twin_options.supervision = ShardSupervisionOptions{};
  twin_options.telemetry = TelemetryOptions{};
  Result<std::unique_ptr<ShardedEngine>> twin =
      ShardedEngine::Create(twin_options);
  if (!twin.ok()) return twin.status();
  std::optional<UpdateValidator> scratch_validator;
  UpdateValidator* validator = nullptr;
  if (validator_config != nullptr) {
    scratch_validator.emplace(*validator_config);
    validator = &*scratch_validator;
  }
  Result<ShardedRecoveryReport> replay =
      RecoverShardedEngine(dir, twin->get(), validator, nullptr);
  if (!replay.ok()) return replay.status();
  if (replay->manifest_path.empty() && replay->batches_replayed == 0) {
    // An empty root would "recover" the stripe to empty — data loss, not
    // recovery. Refuse instead.
    return Status::NotFound("durable root " + dir +
                            " holds no recoverable state");
  }
  const uint64_t live_rounds = engine->StatsSnapshot().eval.evaluations;
  const uint64_t twin_rounds = (*twin)->StatsSnapshot().eval.evaluations;
  if (twin_rounds != live_rounds) {
    return Status::FailedPrecondition(
        "durable root replays to round " + std::to_string(twin_rounds) +
        " but the live engine is at round " + std::to_string(live_rounds) +
        "; online stripe recovery needs every round logged");
  }
  const std::string payload =
      PersistAccess::SerializeShardSnapshot(**twin, shard, 0, 0);
  return PersistAccess::ReplaceShardStripe(engine, shard, payload);
}

}  // namespace scuba
