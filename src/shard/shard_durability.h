// Sharded durability: manifest-committed checkpoints, per-shard WAL chains
// and crash-consistent recovery for ShardedEngine (docs/ARCHITECTURE.md §12).
//
// Directory layout under one durable root:
//
//   manifest-<generation>.scubamf      committed checkpoint generations
//   shard-0000/ snapshot-<gen>.scuba   that shard's state at each generation
//               wal-<first_seq>.log    that shard's routed WAL chain
//   shard-0001/ ...
//
// Logging: each admitted batch is split by the router (every tuple goes to
// the stripe owning its position) and appended to every chain as a type-2
// routed record carrying the same global sequence number — empty sub-batches
// included, so chain sequences stay contiguous within a shard layout. A batch
// is durable only when all of its sub-records are; a crash mid-fanout leaves
// the final sequence short of its recorded shard_count and recovery discards
// it (it was never acknowledged).
//
// Checkpointing is two-phase: every shard's snapshot is written and fsynced
// first, the manifest renames into place last. The manifest is the commit
// point — recovery only trusts artifacts a readable manifest references
// (checked by CRC and by the per-shard payload hash recorded in the
// manifest), falling back generation by generation past torn ones.
//
// Re-partition on recovery: a checkpoint taken at N shards restores into an
// M-shard engine — clusters route to the recovering layout's stripes, and
// chain replay merges sub-records shard-count-independently. On the next
// Open, a layout change forces an immediate checkpoint so a new manifest
// commits the M-shard layout before any new batch is logged.

#ifndef SCUBA_SHARD_SHARD_DURABILITY_H_
#define SCUBA_SHARD_SHARD_DURABILITY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "persist/crash.h"
#include "persist/manifest.h"
#include "persist/wal.h"
#include "shard/sharded_engine.h"
#include "stream/pipeline.h"
#include "stream/update_validator.h"

namespace scuba {

/// DurabilityManager's sharded sibling: one durable root, one WAL chain per
/// shard, manifest-committed checkpoints per CheckpointPolicy.
class ShardedDurabilityManager : public DurabilitySink {
 public:
  /// Opens (creating if needed) the durable root for `engine`. Aligns every
  /// chain on the same next sequence — a batch left incomplete across chains
  /// by a crash is physically truncated away — and, when the newest committed
  /// manifest's shard layout differs from the engine's, writes an immediate
  /// checkpoint committing the new layout before any append is accepted.
  /// All pointers are unowned and must outlive the manager; `validator` /
  /// `rng` (nullable) join every checkpoint's coordinator state; `crash`
  /// (nullable) arms injection across the fanout and checkpoint paths.
  static Result<std::unique_ptr<ShardedDurabilityManager>> Open(
      const std::string& dir, const CheckpointPolicy& policy,
      ShardedEngine* engine, UpdateValidator* validator, Rng* rng,
      CrashInjector* crash);

  /// DurabilitySink: routes the batch's tuples by stripe and appends one
  /// fsynced sub-record to every chain (injecting kBetweenShardWalAppends
  /// between chains and kMidShardWalAppend inside a chain append), then
  /// mirrors the summed chain counters into the engine's EvalStats.
  Status LogBatch(Timestamp batch_time, bool evaluate_after,
                  std::span<const LocationUpdate> objects,
                  std::span<const QueryUpdate> queries) override;

  /// DurabilitySink: counts the round and checkpoints on the policy cadence.
  Status OnRoundComplete() override;

  /// Writes a checkpoint generation right now: per-shard snapshots, then the
  /// manifest, then prune (retention counts manifest GENERATIONS; no shard
  /// snapshot or WAL segment a retained manifest references is ever deleted).
  Status ForceCheckpoint();

  /// The engine resharded in place (a reassign eviction dropped a stripe):
  /// realigns the chain set with the new layout — surplus chains close (their
  /// records stay on disk; recovery merges every shard directory), missing
  /// chains open at the current sequence — and forces a checkpoint so a
  /// manifest commits the new layout before any further append. Wired as
  /// ShardedEngine::set_on_layout_changed.
  Status OnLayoutChanged();

  /// Global sequence number the next LogBatch stamps on every chain.
  uint64_t next_seq() const { return next_seq_; }
  const std::string& dir() const { return dir_; }
  /// Generation the next checkpoint will commit.
  uint64_t next_generation() const { return next_generation_; }

 private:
  ShardedDurabilityManager(std::string dir, const CheckpointPolicy& policy,
                           ShardedEngine* engine, UpdateValidator* validator,
                           Rng* rng, CrashInjector* crash)
      : dir_(std::move(dir)),
        policy_(policy),
        engine_(engine),
        validator_(validator),
        rng_(rng),
        crash_(crash) {}

  /// Deletes manifests beyond keep_last_k generations, then every shard
  /// snapshot no retained manifest references, orphaned temp files, and the
  /// chain segments wholly below every retained manifest's wal_next_seq.
  Status Prune();
  void MirrorWalCounters();

  std::string dir_;
  CheckpointPolicy policy_;
  ShardedEngine* engine_;
  UpdateValidator* validator_;  ///< Nullable.
  Rng* rng_;                    ///< Nullable.
  CrashInjector* crash_;        ///< Nullable.
  std::vector<std::unique_ptr<WalWriter>> chains_;  ///< One per shard.
  uint64_t next_seq_ = 0;
  uint64_t next_generation_ = 1;
  /// Engine WAL counters at Open time; chain deltas add onto these.
  uint64_t base_wal_records_ = 0;
  uint64_t base_wal_fsyncs_ = 0;
  uint64_t base_wal_bytes_ = 0;
  uint32_t rounds_since_checkpoint_ = 0;
  /// Per-shard routing scratch, reused across LogBatch calls.
  std::vector<std::vector<uint64_t>> object_slot_scratch_;
  std::vector<std::vector<LocationUpdate>> object_scratch_;
  std::vector<std::vector<uint64_t>> query_slot_scratch_;
  std::vector<std::vector<QueryUpdate>> query_scratch_;
};

/// What RecoverShardedEngine reconstructed and from where.
struct ShardedRecoveryReport {
  std::string manifest_path;  ///< Empty when no manifest was usable.
  uint64_t generation = 0;    ///< Generation recovered from (0 = none).
  uint64_t manifest_shards = 0;  ///< Shard layout the checkpoint was taken at.
  uint64_t engine_shards = 0;    ///< Layout restored into.
  uint64_t base_seq = 0;         ///< Checkpoint's wal_next_seq.
  uint64_t snapshot_rounds = 0;
  uint64_t batches_replayed = 0;  ///< Merged cross-chain batches re-ingested.
  uint64_t rounds_replayed = 0;
  /// Sub-records each on-disk chain contributed to the replay (indexed by the
  /// on-disk shard directory number, which may exceed the engine's layout).
  std::vector<uint64_t> chain_records_replayed;
  /// First global sequence number NOT applied: a trace resumes here.
  uint64_t next_seq = 0;
  /// Manifest generations skipped as unreadable before one committed cleanly.
  uint64_t generations_skipped = 0;
  bool any_torn_tail = false;
  /// True when the final durable sequence was incomplete across chains
  /// (crash mid-fanout) and was discarded.
  bool incomplete_tail_discarded = false;
  /// Damage tolerated along the way (torn manifests, hash-mismatched shard
  /// snapshots, torn chain tails, re-partition seq gaps).
  std::vector<std::string> data_loss;

  std::string ToString() const;
  /// One JSON object (stable key order) for `scuba_cli recover --json`.
  std::string ToJson() const;
};

/// Rebuilds `engine` (and optionally `validator` / `rng`) from a sharded
/// durable root: picks the newest manifest whose every referenced artifact
/// verifies (CRC + recorded payload hash), falling back generation by
/// generation past kDataLoss; routes the chosen generation's clusters into
/// the engine's CURRENT shard layout; then merges every chain's routed
/// records at or past the checkpoint's sequence into whole batches and
/// replays them, re-evaluating at the recorded round boundaries and feeding
/// `sink` (nullable). The engine must be freshly created with the SAME
/// semantic options as the original run (kFailedPrecondition on fingerprint
/// mismatch). An incomplete final sequence (crash mid-fanout) is discarded;
/// complete sequences after an incomplete one are kDataLoss.
Result<ShardedRecoveryReport> RecoverShardedEngine(
    const std::string& dir, ShardedEngine* engine, UpdateValidator* validator,
    Rng* rng, const ResultSink& sink = nullptr);

/// Online per-stripe recovery (docs/ARCHITECTURE.md §13): rebuilds stripe
/// `shard` of the LIVE `engine` from the durable root, between rounds,
/// without touching the other stripes' stores. Recovers a pristine twin
/// engine from `dir` (same semantic options; supervision and telemetry
/// stripped), checks that the twin caught up to the live engine's round count
/// (kFailedPrecondition when the durable root lags — e.g. rounds ran without
/// being logged), then transplants the twin's stripe via
/// PersistAccess::ReplaceShardStripe. `validator_config` (nullable) must echo
/// the run's screening config when the root's checkpoints carry validator
/// state (LoadShardedCoordinatorState rejects a validator-bearing payload
/// otherwise). Wired as ShardedEngine::set_stripe_recovery by callers owning
/// a durable directory.
Status RecoverShardStripe(const std::string& dir, ShardedEngine* engine,
                          uint32_t shard,
                          const ValidatorConfig* validator_config);

}  // namespace scuba

#endif  // SCUBA_SHARD_SHARD_DURABILITY_H_
