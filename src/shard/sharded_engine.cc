#include "shard/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <utility>

#include "cluster/splitter.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "persist/snapshot.h"

namespace scuba {

namespace {

/// Mirrors the single-engine audit tolerance (core/scuba_engine.cc): audits
/// recompute derived quantities in a different floating-point order.
constexpr double kAuditEps = 1e-6;

void AddViolation(InvariantAuditReport* report, std::string msg) {
  ++report->violations_total;
  if (report->violations.size() < InvariantAuditReport::kMaxViolationMessages) {
    report->violations.push_back(std::move(msg));
  }
}

void MergeAuditReports(const InvariantAuditReport& part,
                       InvariantAuditReport* total) {
  total->clusters_checked += part.clusters_checked;
  total->members_checked += part.members_checked;
  total->grid_keys_checked += part.grid_keys_checked;
  total->violations_total += part.violations_total;
  for (const std::string& v : part.violations) {
    if (total->violations.size() <
        InvariantAuditReport::kMaxViolationMessages) {
      total->violations.push_back(v);
    }
  }
}

}  // namespace

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Create(
    const ScubaOptions& options) {
  SCUBA_RETURN_IF_ERROR(options.Validate());
  Result<ShardRouter> router =
      ShardRouter::Create(options.region, options.grid_cells, options.shards);
  if (!router.ok()) return router.status();
  // Not make_unique: the constructor is private.
  std::unique_ptr<ShardedEngine> engine(
      new ShardedEngine(options, std::move(router).value()));
  for (uint32_t s = 0; s < options.shards; ++s) {
    Result<GridIndex> grid =
        GridIndex::Create(options.region, options.grid_cells);
    if (!grid.ok()) return grid.status();
    engine->shards_.push_back(std::make_unique<EngineShard>(
        s, engine->router_.CellBegin(s), engine->router_.CellEnd(s),
        std::move(grid).value(), options));
  }
  if (options.supervision.Enabled()) {
    Result<std::unique_ptr<ShardSupervisor>> supervisor =
        ShardSupervisor::Create(options.supervision, engine->shard_count());
    if (!supervisor.ok()) return supervisor.status();
    engine->supervisor_ = std::move(supervisor).value();
  }
  if (options.telemetry.Enabled()) {
    Result<std::unique_ptr<EngineTelemetry>> telemetry =
        EngineTelemetry::Create(options.telemetry, engine->name());
    if (!telemetry.ok()) return telemetry.status();
    engine->InstallTelemetry(std::move(telemetry).value());
  }
  return engine;
}

ShardedEngine::ShardedEngine(const ScubaOptions& options, ShardRouter router)
    : options_(options),
      router_(std::move(router)),
      resolved_join_threads_(options.join_threads == 0
                                 ? ThreadPool::DefaultThreadCount()
                                 : options.join_threads) {
  stats_.join_threads = resolved_join_threads_;
  // Sharded ingest replays the per-update procedure serially (the shard fan
  // is a join/post-join device); the bit-identity contract does not depend
  // on it.
  stats_.ingest_threads = 1;
}

ThreadPool* ShardedEngine::JoinPool() {
  if (resolved_join_threads_ <= 1) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(
        std::min<uint32_t>(resolved_join_threads_, shard_count()));
  }
  return pool_.get();
}

size_t ShardedEngine::ClusterCount() const {
  size_t total = 0;
  for (const auto& sp : shards_) total += sp->store.ClusterCount();
  return total;
}

std::vector<ClusterId> ShardedEngine::GlobalSortedClusterIds() const {
  std::vector<ClusterId> cids;
  for (const auto& sp : shards_) {
    const std::vector<ClusterId> own = sp->store.SortedClusterIds();
    cids.insert(cids.end(), own.begin(), own.end());
  }
  // Shard stores partition the cluster set, so a plain sort merges them.
  std::sort(cids.begin(), cids.end());
  return cids;
}

ClusterId ShardedEngine::HomeOfAnywhere(EntityRef ref,
                                        EngineShard** owner_out) {
  for (auto& sp : shards_) {
    const ClusterId home = sp->store.HomeOf(ref);
    if (home != kInvalidClusterId) {
      *owner_out = sp.get();
      return home;
    }
  }
  *owner_out = nullptr;
  return kInvalidClusterId;
}

MovingCluster* ShardedEngine::GetClusterAnywhere(ClusterId cid,
                                                 EngineShard** owner_out) {
  for (auto& sp : shards_) {
    if (MovingCluster* cluster = sp->store.GetCluster(cid)) {
      *owner_out = sp.get();
      return cluster;
    }
  }
  *owner_out = nullptr;
  return nullptr;
}

const MovingCluster* ShardedEngine::GetClusterAnywhere(ClusterId cid) const {
  for (const auto& sp : shards_) {
    if (const MovingCluster* cluster = sp->store.GetCluster(cid)) {
      return cluster;
    }
  }
  return nullptr;
}

bool ShardedEngine::AnyGridContains(ClusterId cid) const {
  for (const auto& sp : shards_) {
    if (sp->grid.Contains(cid)) return true;
  }
  return false;
}

Status ShardedEngine::ApplyRegistration(ClusterId cid, const Circle& padded) {
  // Cell placement is pure geometry, identical on every grid; compute it once
  // to learn which stripes the circle touches, then let each touched grid
  // re-derive the same full cell list through its own Insert/Update (the
  // mirror invariant in engine_shard.h).
  scratch_cells_.clear();
  shards_[0]->grid.CellsForCircle(padded, &scratch_cells_);
  scratch_touched_.assign(shards_.size(), 0);
  for (uint32_t cell : scratch_cells_) {
    scratch_touched_[router_.ShardOfCell(cell)] = 1;
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    GridIndex& grid = shards_[s]->grid;
    const bool present = grid.Contains(cid);
    if (scratch_touched_[s]) {
      SCUBA_RETURN_IF_ERROR(present ? grid.Update(cid, padded)
                                    : grid.Insert(cid, padded));
    } else if (present) {
      SCUBA_RETURN_IF_ERROR(grid.Remove(cid));
    }
  }
  return Status::OK();
}

Status ShardedEngine::RemoveFromAllGrids(ClusterId cid) {
  bool removed = false;
  for (auto& sp : shards_) {
    if (sp->grid.Contains(cid)) {
      SCUBA_RETURN_IF_ERROR(sp->grid.Remove(cid));
      removed = true;
    }
  }
  if (!removed) {
    return Status::NotFound("cluster " + std::to_string(cid) +
                            " registered in no shard grid");
  }
  return Status::OK();
}

Status ShardedEngine::SyncAllGrids(MovingCluster* cluster) {
  // PlanClusterGridSync's exact float semantics against the union grid:
  // Contains == registered in any stripe, covered-check on the cluster's own
  // registered_bounds memo.
  const Circle needed = options_.query_reach_aware ? cluster->JoinBounds()
                                                   : cluster->Bounds();
  if (AnyGridContains(cluster->cid()) &&
      ContainsCircle(cluster->registered_bounds(), needed)) {
    return Status::OK();
  }
  const Circle padded{needed.center,
                      needed.radius + options_.grid_sync_padding};
  cluster->set_registered_bounds(padded);
  return ApplyRegistration(cluster->cid(), padded);
}

ClusterId ShardedEngine::FindCompatibleCluster(Point position, double speed,
                                               NodeId dest,
                                               EngineShard** owner_out) {
  auto check = [&](ClusterId cid, EngineShard** own) {
    const MovingCluster* c = GetClusterAnywhere(cid, own);
    return c != nullptr &&
           c->SatisfiesJoinConditions(position, speed, dest, options_.theta_d,
                                      options_.theta_s);
  };

  // The minimum compatible cid wins (the clusterer's rule), which also makes
  // the choice independent of the entry-order differences between a stripe
  // grid and the single grid — their cell entry sets are equal by the mirror
  // invariant.
  ClusterId best = kInvalidClusterId;
  EngineShard* best_owner = nullptr;
  if (!options_.probe_theta_d_disk) {
    const EngineShard& probe = *shards_[router_.ShardOfPoint(position)];
    for (uint32_t cid : probe.grid.EntriesNear(position)) {
      EngineShard* own = nullptr;
      if ((best == kInvalidClusterId || cid < best) && check(cid, &own)) {
        best = cid;
        best_owner = own;
      }
    }
    *owner_out = best_owner;
    return best;
  }

  // Ablation variant: gather candidates from every cell within theta_d, each
  // read from its stripe owner's grid.
  scratch_cells_.clear();
  const Rect probe{position.x - options_.theta_d, position.y - options_.theta_d,
                   position.x + options_.theta_d,
                   position.y + options_.theta_d};
  shards_[0]->grid.CellsForRect(probe, &scratch_cells_);
  for (uint32_t cell : scratch_cells_) {
    const EngineShard& shard = *shards_[router_.ShardOfCell(cell)];
    for (uint32_t cid : shard.grid.CellEntries(cell)) {
      EngineShard* own = nullptr;
      if ((best == kInvalidClusterId || cid < best) && check(cid, &own)) {
        best = cid;
        best_owner = own;
      }
    }
  }
  *owner_out = best_owner;
  return best;
}

Status ShardedEngine::ReplayUpdate(EntityKind kind, const LocationUpdate* obj,
                                   const QueryUpdate* qry) {
  // Line-for-line mirror of LeaderFollowerClusterer::ProcessUpdate with the
  // store/grid operations resolved across the shard set. Any drift here
  // breaks the sharded-vs-single bit-identity contract.
  const Point position =
      (kind == EntityKind::kObject) ? obj->position : qry->position;
  const double speed = (kind == EntityKind::kObject) ? obj->speed : qry->speed;
  const NodeId dest =
      (kind == EntityKind::kObject) ? obj->dest_node : qry->dest_node;
  const uint32_t id = (kind == EntityKind::kObject) ? obj->oid : qry->qid;
  const EntityRef ref{kind, id};

  if (kind == EntityKind::kObject) {
    meta_.UpsertObjectAttrs(obj->oid, obj->attrs);
  } else {
    meta_.UpsertQueryAttrs(qry->qid, qry->attrs);
  }

  EngineShard* owner = nullptr;
  const ClusterId home = HomeOfAnywhere(ref, &owner);
  if (home != kInvalidClusterId) {
    MovingCluster* cluster = owner->store.GetCluster(home);
    SCUBA_CHECK_MSG(cluster != nullptr,
                    "ClusterHome points at a missing cluster");
    if (cluster->SatisfiesJoinConditions(position, speed, dest,
                                         options_.theta_d, options_.theta_s)) {
      Status s = (kind == EntityKind::kObject)
                     ? cluster->UpdateObjectMember(*obj)
                     : cluster->UpdateQueryMember(*qry);
      SCUBA_RETURN_IF_ERROR(s);
      ++clusterer_stats_.members_refreshed;
      if (owner->nucleus_radius > 0.0 &&
          cluster->ShedMemberIfInNucleus(ref, owner->nucleus_radius)) {
        ++clusterer_stats_.members_shed;
      }
      return SyncAllGrids(cluster);
    }
    SCUBA_RETURN_IF_ERROR(cluster->RemoveMember(ref));
    SCUBA_RETURN_IF_ERROR(owner->store.ClearHome(ref));
    ++clusterer_stats_.members_departed;
    if (cluster->size() == 0) {
      SCUBA_RETURN_IF_ERROR(RemoveFromAllGrids(home));
      SCUBA_RETURN_IF_ERROR(owner->store.RemoveCluster(home));
      ++clusterer_stats_.clusters_dissolved_empty;
    } else {
      SCUBA_RETURN_IF_ERROR(SyncAllGrids(cluster));
    }
  }

  EngineShard* target_owner = nullptr;
  const ClusterId target =
      FindCompatibleCluster(position, speed, dest, &target_owner);
  if (target != kInvalidClusterId) {
    MovingCluster* cluster = target_owner->store.GetCluster(target);
    if (kind == EntityKind::kObject) {
      cluster->AbsorbObject(*obj);
    } else {
      cluster->AbsorbQuery(*qry);
    }
    SCUBA_RETURN_IF_ERROR(target_owner->store.SetHome(ref, target));
    ++clusterer_stats_.members_absorbed;
    if (target_owner->nucleus_radius > 0.0 &&
        cluster->ShedMemberIfInNucleus(ref, target_owner->nucleus_radius)) {
      ++clusterer_stats_.members_shed;
    }
    return SyncAllGrids(cluster);
  }

  const ClusterId cid = meta_.NextClusterId();
  MovingCluster fresh = (kind == EntityKind::kObject)
                            ? MovingCluster::FromObject(cid, *obj)
                            : MovingCluster::FromQuery(cid, *qry);
  SCUBA_RETURN_IF_ERROR(SyncAllGrids(&fresh));
  EngineShard* fresh_owner = OwnerShardFor(fresh);
  SCUBA_RETURN_IF_ERROR(fresh_owner->store.AddCluster(std::move(fresh)));
  ++clusterer_stats_.clusters_created;
  return Status::OK();
}

Status ShardedEngine::IngestObjectUpdate(const LocationUpdate& update) {
  if (Status v = ValidateUpdate(update); !v.ok()) {
    if (options_.on_bad_update == BadUpdatePolicy::kStrict) return v;
    ++stats_.updates_quarantined;
    return Status::OK();
  }
  TelemetryEnsureRound();
  Stopwatch sw;
  Status s = ReplayUpdate(EntityKind::kObject, &update, nullptr);
  const double elapsed = sw.ElapsedSeconds();
  pending_prejoin_seconds_ += elapsed;
  pending_prejoin_worker_seconds_ += elapsed;
  if (telemetry_ != nullptr) {
    TraceCollector& tc = telemetry_->trace();
    tc.Accumulate(tc.EnsureSpan(tc.root(), "ingest"), elapsed);
  }
  return s;
}

Status ShardedEngine::IngestQueryUpdate(const QueryUpdate& update) {
  if (Status v = ValidateUpdate(update); !v.ok()) {
    if (options_.on_bad_update == BadUpdatePolicy::kStrict) return v;
    ++stats_.updates_quarantined;
    return Status::OK();
  }
  TelemetryEnsureRound();
  Stopwatch sw;
  Status s = ReplayUpdate(EntityKind::kQuery, nullptr, &update);
  const double elapsed = sw.ElapsedSeconds();
  pending_prejoin_seconds_ += elapsed;
  pending_prejoin_worker_seconds_ += elapsed;
  if (telemetry_ != nullptr) {
    TraceCollector& tc = telemetry_->trace();
    tc.Accumulate(tc.EnsureSpan(tc.root(), "ingest"), elapsed);
  }
  return s;
}

Status ShardedEngine::IngestBatch(std::span<const LocationUpdate> objects,
                                  std::span<const QueryUpdate> queries) {
  // ScubaEngine::IngestBatch's validation contract: the whole batch screens
  // up front; strict rejects on the first offender, quarantine drops exactly
  // the tuples the per-update path would skip.
  size_t bad = 0;
  Status first_bad = Status::OK();
  for (const LocationUpdate& u : objects) {
    if (Status v = ValidateUpdate(u); !v.ok()) {
      if (first_bad.ok()) first_bad = std::move(v);
      ++bad;
    }
  }
  for (const QueryUpdate& u : queries) {
    if (Status v = ValidateUpdate(u); !v.ok()) {
      if (first_bad.ok()) first_bad = std::move(v);
      ++bad;
    }
  }
  std::vector<LocationUpdate> kept_objects;
  std::vector<QueryUpdate> kept_queries;
  if (bad > 0) {
    if (options_.on_bad_update == BadUpdatePolicy::kStrict) return first_bad;
    stats_.updates_quarantined += bad;
    kept_objects.reserve(objects.size());
    for (const LocationUpdate& u : objects) {
      if (ValidateUpdate(u).ok()) kept_objects.push_back(u);
    }
    kept_queries.reserve(queries.size());
    for (const QueryUpdate& u : queries) {
      if (ValidateUpdate(u).ok()) kept_queries.push_back(u);
    }
    objects = kept_objects;
    queries = kept_queries;
  }
  TelemetryEnsureRound();
  Stopwatch sw;
  for (const LocationUpdate& u : objects) {
    SCUBA_RETURN_IF_ERROR(ReplayUpdate(EntityKind::kObject, &u, nullptr));
  }
  for (const QueryUpdate& u : queries) {
    SCUBA_RETURN_IF_ERROR(ReplayUpdate(EntityKind::kQuery, nullptr, &u));
  }
  const double wall = sw.ElapsedSeconds();
  pending_prejoin_seconds_ += wall;
  pending_prejoin_worker_seconds_ += wall;  // serial replay: busy == wall
  if (telemetry_ != nullptr) {
    TraceCollector& tc = telemetry_->trace();
    const int32_t ingest = tc.EnsureSpan(tc.root(), "ingest");
    tc.Accumulate(ingest, wall, wall);
    tc.Accumulate(tc.EnsureSpan(ingest, "apply"), wall);
  }
  return Status::OK();
}

Status ShardedEngine::RunShardJoin(EngineShard& shard) {
  Stopwatch sw;
  shard.results.Clear();
  shard.ghosts.Clear();
  shard.last_ghosts = 0;
  const uint64_t comparisons_before = shard.join.counters().comparisons;

  // Ghost publication: every cluster registered in this stripe but owned by
  // a neighbor is copied through the snapshot serializer (IEEE-754 bit
  // patterns — the copy is bit-exact, LoadCluster rebuilds the member index).
  // Reads only other shards' stores, which are immutable for the whole join
  // phase; writes only shard-local state — no locks anywhere on this path.
  for (uint32_t key : shard.grid.Keys()) {
    if (shard.store.GetCluster(key) != nullptr) continue;
    const MovingCluster* source = nullptr;
    for (const auto& other : shards_) {
      if (other.get() == &shard) continue;
      source = other->store.GetCluster(key);
      if (source != nullptr) break;
    }
    SCUBA_CHECK_MSG(source != nullptr,
                    "shard grid key names no stored cluster");
    ByteWriter w;
    PersistAccess::SaveCluster(*source, &w);
    ByteReader r(w.bytes());
    Result<MovingCluster> ghost = PersistAccess::LoadCluster(&r);
    if (!ghost.ok()) return ghost.status();
    SCUBA_RETURN_IF_ERROR(shard.ghosts.AddCluster(std::move(ghost).value()));
    ++shard.last_ghosts;
  }

  Status s = shard.join.ExecuteScoped(shard.store, &shard.ghosts, shard.grid,
                                      shard.cell_begin, shard.cell_end,
                                      &shard.results);
  shard.last_comparisons =
      shard.join.counters().comparisons - comparisons_before;
  shard.last_busy_seconds = sw.ElapsedSeconds();
  return s;
}

Status ShardedEngine::Evaluate(Timestamp now, ResultSet* results) {
  if (results == nullptr) {
    return Status::InvalidArgument("results must be non-null");
  }
  TelemetryEnsureRound();

  const uint32_t n = shard_count();
  const bool supervised = supervisor_ != nullptr;
  if (supervised) {
    // Rounds count Evaluate calls from 1. The fault schedule is rolled (and
    // any corrupt-state injection applied) serially before workers start, so
    // it is a pure function of (seed, round index, shard count).
    supervisor_->BeginRound(stats_.evaluations + 1);
    ApplyInjectedCorruption();
  }

  results->Reserve(stats_.last_result_count);
  Stopwatch join_sw;
  std::vector<Status> shard_status(n);
  // Stale slices: quarantined before the round, or failed during it under a
  // non-fail policy. Sized before the fan-out so workers never touch
  // supervisor state.
  std::vector<char> stale(n, 0);
  if (supervised) {
    for (uint32_t s = 0; s < n; ++s) {
      if (supervisor_->Quarantined(s)) stale[s] = 1;
    }
  }
  auto run = [&](uint32_t s) {
    if (stale[s]) return;  // quarantined: serves its last-published slice
    if (!supervised) {
      shard_status[s] = RunShardJoin(*shards_[s]);
      return;
    }
    shard_status[s] = supervisor_->SuperviseJoinTask(s, [this, s]() -> Status {
      // Detection half of the barrier: a stripe whose invariants fail must
      // not publish a slice computed over damaged state.
      const InvariantAuditReport audit = AuditShardStripe(s);
      if (!audit.clean()) {
        return Status::DataLoss("shard " + std::to_string(s) +
                                " failed its stripe audit: " +
                                audit.ToString());
      }
      return RunShardJoin(*shards_[s]);
    });
  };
  if (resolved_join_threads_ > 1 && n > 1) {
    SCUBA_RETURN_IF_ERROR(RunTaskSet(JoinPool(), n, run));
  } else {
    for (uint32_t s = 0; s < n; ++s) run(s);
  }
  // Serial triage: injection accounting and quarantine transitions happen
  // only at the coordinator.
  if (supervised) {
    for (uint32_t s = 0; s < n; ++s) {
      if (stale[s] || shard_status[s].ok()) continue;
      const std::optional<ShardFaultClass> fault = supervisor_->PlannedFault(s);
      if (fault == ShardFaultClass::kTaskFailure ||
          fault == ShardFaultClass::kStall) {
        supervisor_->injector()->NoteInjected(*fault);
      }
      supervisor_->NoteJoinFailure(s, shard_status[s]);
      if (options_.supervision.on_failure == ShardFailurePolicy::kFail) {
        return shard_status[s];
      }
      stale[s] = 1;
    }
  } else {
    for (uint32_t s = 0; s < n; ++s) SCUBA_RETURN_IF_ERROR(shard_status[s]);
  }
  double busy = 0.0;
  size_t merged = 0;
  uint64_t round_ghosts = 0;
  uint32_t stale_count = 0;
  for (uint32_t s = 0; s < n; ++s) {
    if (stale[s]) {
      ++stale_count;
      merged += shards_[s]->last_good_results.size();
      continue;
    }
    busy += shards_[s]->last_busy_seconds;
    merged += shards_[s]->results.size();
    round_ghosts += shards_[s]->last_ghosts;
  }
  ghosts_published_ += round_ghosts;
  // The single engine's Execute clears the caller's set every round; a
  // reused ResultSet must not accumulate across rounds here either.
  results->Clear();
  // Owner-cell dedup makes per-shard slices disjoint up to the duplicates
  // Normalize removes in the single engine too; one normalize seals the
  // merged set. A stale slice may overlap fresh ones (its pairs' owner cells
  // can have migrated since it was published) — Normalize covers that too.
  results->Reserve(merged);
  for (uint32_t s = 0; s < n; ++s) {
    if (stale[s]) {
      ResultSet slice = shards_[s]->last_good_results;
      results->AppendFrom(std::move(slice));
      continue;
    }
    if (supervised) shards_[s]->last_good_results = shards_[s]->results;
    results->AppendFrom(std::move(shards_[s]->results));
  }
  results->Normalize();
  for (uint32_t s = 0; s < n; ++s) {
    if (stale[s]) results->MarkDegraded(s);
  }
  if (stale_count > 0) supervisor_->NoteDegradedRound();

  stats_.last_join_seconds = join_sw.ElapsedSeconds();
  stats_.total_join_seconds += stats_.last_join_seconds;
  stats_.last_join_worker_seconds = busy;
  stats_.total_join_worker_seconds += busy;
  stats_.last_result_count = results->size();
  stats_.total_results += results->size();
  ++stats_.evaluations;
  ClusterJoinExecutor::Counters ctr;
  for (const auto& sp : shards_) ctr += sp->join.counters();
  stats_.comparisons = ctr.comparisons;
  stats_.bounds_checks = ctr.bounds_checks;
  stats_.cluster_pairs_tested = ctr.pairs_tested;
  stats_.cluster_pairs_overlapping = ctr.pairs_overlapping;
  if (telemetry_ != nullptr) {
    TraceCollector& tc = telemetry_->trace();
    const int32_t join_span = tc.EnsureSpan(tc.root(), "join");
    tc.Accumulate(join_span, stats_.last_join_seconds, busy);
    for (uint32_t s = 0; s < n; ++s) {
      if (stale[s]) continue;  // no fresh work this round
      tc.Accumulate(
          tc.EnsureSpan(join_span, "engine_shard", static_cast<int32_t>(s)),
          shards_[s]->last_busy_seconds, shards_[s]->last_busy_seconds);
    }
  }

  Stopwatch maint_sw;
  double postjoin_worker = 0.0;
  last_handoff_seconds_ = 0.0;
  Status s = PostJoinMaintenance(now, &postjoin_worker);
  stats_.last_postjoin_seconds = maint_sw.ElapsedSeconds();
  stats_.total_postjoin_seconds += stats_.last_postjoin_seconds;
  stats_.last_postjoin_worker_seconds = postjoin_worker;
  stats_.total_postjoin_worker_seconds += postjoin_worker;
  stats_.last_ingest_seconds = pending_prejoin_seconds_;
  stats_.total_ingest_seconds += pending_prejoin_seconds_;
  stats_.last_ingest_worker_seconds = pending_prejoin_worker_seconds_;
  stats_.total_ingest_worker_seconds += pending_prejoin_worker_seconds_;
  stats_.last_maintenance_seconds =
      stats_.last_ingest_seconds + stats_.last_postjoin_seconds;
  stats_.total_maintenance_seconds += stats_.last_maintenance_seconds;
  pending_prejoin_seconds_ = 0.0;
  pending_prejoin_worker_seconds_ = 0.0;
  if (telemetry_ != nullptr) {
    TraceCollector& tc = telemetry_->trace();
    tc.Accumulate(tc.EnsureSpan(tc.root(), "postjoin"),
                  stats_.last_postjoin_seconds, postjoin_worker);
    tc.Accumulate(tc.EnsureSpan(tc.root(), "handoff"), last_handoff_seconds_);
  }
  if (s.ok() && options_.rebalance == RebalanceMode::kObserve) {
    ObserveBalance();
  }
  if (s.ok() && supervised) {
    // Online recovery between rounds: a failure's first attempt runs here,
    // at the end of the SAME round — no ingest has interleaved, so a
    // successful rebuild converges exactly to the uninterrupted twin.
    SCUBA_RETURN_IF_ERROR(RunScheduledRecoveries());
  }
  return s;
}

Status ShardedEngine::SplitOversizedClusters() {
  const double max_radius = options_.split_radius_factor * options_.theta_d;
  const std::vector<ClusterId> cids = GlobalSortedClusterIds();
  for (ClusterId cid : cids) {
    EngineShard* owner = nullptr;
    MovingCluster* cluster = GetClusterAnywhere(cid, &owner);
    SCUBA_CHECK(cluster != nullptr);
    cluster->RecomputeTightBounds();
    if (!ShouldSplit(*cluster, max_radius)) continue;
    // Named locals: id assignment order must match the single engine's.
    const ClusterId left_id = meta_.NextClusterId();
    const ClusterId right_id = meta_.NextClusterId();
    Result<SplitResult> split = SplitCluster(*cluster, left_id, right_id);
    if (!split.ok()) continue;  // co-located members etc.: keep as-is
    SCUBA_RETURN_IF_ERROR(RemoveFromAllGrids(cid));
    SCUBA_RETURN_IF_ERROR(owner->store.RemoveCluster(cid));
    SCUBA_RETURN_IF_ERROR(SyncAllGrids(&split->left));
    SCUBA_RETURN_IF_ERROR(SyncAllGrids(&split->right));
    EngineShard* left_owner = OwnerShardFor(split->left);
    EngineShard* right_owner = OwnerShardFor(split->right);
    SCUBA_RETURN_IF_ERROR(left_owner->store.AddCluster(std::move(split->left)));
    SCUBA_RETURN_IF_ERROR(
        right_owner->store.AddCluster(std::move(split->right)));
    ++phase_stats_.clusters_split;
  }
  return Status::OK();
}

Status ShardedEngine::MigrateOwnership() {
  // Serial, globally cid-ordered: deterministic regardless of which shard
  // performed the round's upkeep first. Ownership is unobservable to results
  // and state hashes (the serializer round trip is bit-exact and homes move
  // with the cluster), so migration cannot break bit-identity.
  const std::vector<ClusterId> cids = GlobalSortedClusterIds();
  for (ClusterId cid : cids) {
    EngineShard* owner = nullptr;
    MovingCluster* cluster = GetClusterAnywhere(cid, &owner);
    SCUBA_CHECK(cluster != nullptr);
    EngineShard* desired = OwnerShardFor(*cluster);
    if (desired == owner) continue;
    ByteWriter w;
    PersistAccess::SaveCluster(*cluster, &w);
    ByteReader r(w.bytes());
    Result<MovingCluster> copy = PersistAccess::LoadCluster(&r);
    if (!copy.ok()) return copy.status();
    SCUBA_RETURN_IF_ERROR(owner->store.RemoveCluster(cid));
    SCUBA_RETURN_IF_ERROR(desired->store.AddCluster(std::move(copy).value()));
    ++handoffs_;
  }
  return Status::OK();
}

Status ShardedEngine::PostJoinMaintenance(Timestamp now,
                                          double* worker_seconds) {
  *worker_seconds = 0.0;
  if (options_.enable_cluster_splitting) {
    SCUBA_RETURN_IF_ERROR(SplitOversizedClusters());
  }
  // Per-cluster upkeep runs as one task per shard over that shard's own
  // clusters (clusters are store-disjoint; grids are only read); the
  // mutations below apply serially in globally ascending cid order, exactly
  // the single engine's sequence.
  const std::vector<ClusterId> cids = GlobalSortedClusterIds();
  struct Outcome {
    uint64_t shed = 0;
    bool dissolve = false;
    bool resync = false;
    Circle registration;
  };
  std::vector<Outcome> outcomes(cids.size());
  std::vector<EngineShard*> owners(cids.size(), nullptr);
  auto upkeep = [&](uint32_t s) {
    EngineShard& shard = *shards_[s];
    for (ClusterId cid : shard.store.SortedClusterIds()) {
      const size_t slot = static_cast<size_t>(
          std::lower_bound(cids.begin(), cids.end(), cid) - cids.begin());
      owners[slot] = &shard;
      MovingCluster* cluster = shard.store.GetCluster(cid);
      SCUBA_CHECK(cluster != nullptr);
      Outcome& out = outcomes[slot];
      cluster->RecomputeTightBounds();
      if (shard.nucleus_radius > 0.0) {
        out.shed = cluster->ShedPositions(shard.nucleus_radius);
      }
      if (cluster->ComputeExpiryTime(now) <= now + options_.delta) {
        out.dissolve = true;
        continue;
      }
      cluster->Translate(cluster->Velocity() *
                         static_cast<double>(options_.delta));
      const Circle needed = options_.query_reach_aware ? cluster->JoinBounds()
                                                       : cluster->Bounds();
      if (AnyGridContains(cid) &&
          ContainsCircle(cluster->registered_bounds(), needed)) {
        continue;  // still covered by the previous registration
      }
      const Circle padded{needed.center,
                          needed.radius + options_.grid_sync_padding};
      cluster->set_registered_bounds(padded);
      out.resync = true;
      out.registration = padded;
    }
  };
  const uint32_t n = shard_count();
  if (resolved_join_threads_ > 1 && n > 1 && cids.size() > 1) {
    SCUBA_RETURN_IF_ERROR(RunTaskSet(JoinPool(), n, upkeep, worker_seconds));
  } else {
    Stopwatch serial;
    for (uint32_t s = 0; s < n; ++s) upkeep(s);
    *worker_seconds = serial.ElapsedSeconds();
  }
  for (size_t i = 0; i < cids.size(); ++i) {
    phase_stats_.members_shed_maintenance += outcomes[i].shed;
    if (outcomes[i].dissolve) {
      SCUBA_RETURN_IF_ERROR(RemoveFromAllGrids(cids[i]));
      SCUBA_RETURN_IF_ERROR(owners[i]->store.RemoveCluster(cids[i]));
      ++phase_stats_.clusters_dissolved_expired;
    } else if (outcomes[i].resync) {
      SCUBA_RETURN_IF_ERROR(ApplyRegistration(cids[i], outcomes[i].registration));
    }
  }

  Stopwatch handoff_sw;
  SCUBA_RETURN_IF_ERROR(MigrateOwnership());
  last_handoff_seconds_ = handoff_sw.ElapsedSeconds();

  // Per-shard shedder feedback with shard-local memory estimates. kFixed /
  // kNone radii are position-independent constants (bit-identical to the
  // single engine); kAdaptive legitimately diverges — see the class comment.
  for (auto& sp : shards_) {
    sp->shedder.ObserveMemoryUsage(
        sizeof(EngineShard) + sp->store.EstimateMemoryUsage() +
        sp->grid.EstimateMemoryUsage() + sp->join.EstimateMemoryUsage());
    sp->nucleus_radius = sp->shedder.nucleus_radius();
  }
  return Status::OK();
}

void ShardedEngine::ObserveBalance() {
  const uint32_t n = shard_count();
  if (n <= 1) return;
  // Join comparisons are the deterministic load signal (same on every run of
  // a fixed workload); cluster counts stand in when a round compared nothing.
  bool use_comparisons = false;
  for (const auto& sp : shards_) {
    use_comparisons = use_comparisons || sp->last_comparisons > 0;
  }
  double total = 0.0;
  double max_load = -1.0;
  uint32_t max_shard = 0;
  for (uint32_t s = 0; s < n; ++s) {
    const double load =
        use_comparisons ? static_cast<double>(shards_[s]->last_comparisons)
                        : static_cast<double>(shards_[s]->store.ClusterCount());
    total += load;
    if (load > max_load) {
      max_load = load;
      max_shard = s;
    }
  }
  if (total <= 0.0) return;
  const double imbalance = max_load * n / total;
  constexpr double kImbalanceThreshold = 1.5;
  if (imbalance <= kImbalanceThreshold) return;
  // Only a stripe with at least two rows can be split.
  if (router_.RowEnd(max_shard) - router_.RowBegin(max_shard) < 2) return;
  const uint32_t split_row =
      (router_.RowBegin(max_shard) + router_.RowEnd(max_shard)) / 2;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "shard %u carries %.2fx the mean %s load; consider splitting "
                "rows [%u, %u) at row %u",
                max_shard, imbalance,
                use_comparisons ? "join-comparison" : "cluster",
                router_.RowBegin(max_shard), router_.RowEnd(max_shard),
                split_row);
  last_recommendation_ = buf;
  ++recommendations_;
  std::fprintf(stderr, "[rebalance] round %llu: %s\n",
               static_cast<unsigned long long>(stats_.evaluations),
               last_recommendation_.c_str());
}

InvariantAuditReport ShardedEngine::AuditInvariants() const {
  InvariantAuditReport total;
  for (uint32_t s = 0; s < shard_count(); ++s) {
    MergeAuditReports(AuditShardStripe(s), &total);
  }
  return total;
}

InvariantAuditReport ShardedEngine::AuditShardStripe(uint32_t shard) const {
  InvariantAuditReport report;
  const EngineShard& self = *shards_[shard];
  const std::string prefix = "stripe " + std::to_string(shard);

  // Store side: this stripe's own clusters, with the single engine's
  // per-cluster rules (core/scuba_engine.cc AuditInvariants).
  if (Status s = self.store.ValidateConsistency(); !s.ok()) {
    AddViolation(&report, prefix + " store: " + s.message());
  }
  for (ClusterId cid : self.store.SortedClusterIds()) {
    const MovingCluster* cluster = self.store.GetCluster(cid);
    SCUBA_CHECK(cluster != nullptr);
    ++report.clusters_checked;
    const std::string tag = prefix + " cluster " + std::to_string(cid);
    if (Status s = cluster->ValidateMemberIndex(); !s.ok()) {
      AddViolation(&report, tag + ": " + s.message());
    }
    for (const ClusterMember& m : cluster->members()) {
      ++report.members_checked;
      const double d =
          Distance(cluster->centroid(), cluster->MemberPosition(m));
      if (d > cluster->radius() + kAuditEps) {
        AddViolation(&report, tag + ": member (" +
                                  std::to_string(static_cast<int>(m.kind)) +
                                  "," + std::to_string(m.id) + ") lies " +
                                  std::to_string(d - cluster->radius()) +
                                  " outside the radius");
        break;  // one radius violation per cluster is enough signal
      }
    }
    if (!AnyGridContains(cid)) {
      AddViolation(&report, tag + ": missing from every shard grid");
      continue;
    }
    const Circle needed =
        options_.query_reach_aware ? cluster->JoinBounds() : cluster->Bounds();
    const Circle& reg = cluster->registered_bounds();
    if (Distance(reg.center, needed.center) + needed.radius >
        reg.radius + kAuditEps) {
      AddViolation(&report,
                   tag + ": registered bounds no longer cover the cluster");
    }
  }

  // Grid side, self-blaming: this stripe's mirror must hold exactly the
  // registered clusters — whichever stripe owns them — whose circle touches
  // the stripe, each under its full global cell list (the mirror invariant
  // in engine_shard.h). Damage to stripe s's grid is always reported here,
  // by s, never attributed to the owner. Local scratch keeps this const and
  // safe from concurrent worker tasks (stores and grids are immutable for
  // the whole join phase).
  std::vector<uint32_t> expected_cells;
  for (const auto& sp : shards_) {
    for (ClusterId cid : sp->store.SortedClusterIds()) {
      const MovingCluster* cluster = sp->store.GetCluster(cid);
      SCUBA_CHECK(cluster != nullptr);
      if (!AnyGridContains(cid)) continue;  // flagged by the owner's audit
      const std::string tag = prefix + " cluster " + std::to_string(cid);
      expected_cells.clear();
      self.grid.CellsForCircle(cluster->registered_bounds(), &expected_cells);
      bool touches = false;
      for (uint32_t cell : expected_cells) {
        if (cell >= self.cell_begin && cell < self.cell_end) {
          touches = true;
          break;
        }
      }
      if (!touches) {
        if (self.grid.Contains(cid)) {
          AddViolation(&report, tag +
                                    ": registered in the stripe's grid but "
                                    "touches none of its cells");
        }
        continue;
      }
      if (!self.grid.Contains(cid)) {
        AddViolation(
            &report,
            tag + ": touches the stripe but is missing from its grid");
        continue;
      }
      const std::vector<uint32_t>* actual = self.grid.CellsOf(cid);
      SCUBA_CHECK(actual != nullptr);  // Contains(cid) held above
      std::vector<uint32_t> actual_sorted = *actual;
      std::sort(actual_sorted.begin(), actual_sorted.end());
      std::sort(expected_cells.begin(), expected_cells.end());
      if (actual_sorted != expected_cells) {
        AddViolation(&report, tag + ": grid cell placement diverges (" +
                                  std::to_string(actual_sorted.size()) +
                                  " cells occupied, " +
                                  std::to_string(expected_cells.size()) +
                                  " expected)");
      }
    }
  }
  // Reverse direction: every key in the stripe's grid must name a cluster
  // stored somewhere.
  for (uint32_t key : self.grid.Keys()) {
    ++report.grid_keys_checked;
    if (GetClusterAnywhere(key) == nullptr) {
      AddViolation(&report, prefix + " grid: orphan key " +
                                std::to_string(key) +
                                " names no stored cluster");
    }
  }
  return report;
}

void ShardedEngine::ApplyInjectedCorruption() {
  ShardFaultInjector* injector = supervisor_->injector();
  if (injector == nullptr) return;
  for (uint32_t s = 0; s < shard_count(); ++s) {
    if (supervisor_->Quarantined(s)) continue;
    if (injector->FaultFor(s) != ShardFaultClass::kCorruptState) continue;
    // Damage model: drop the lowest-cid border cluster (one also registered
    // in another stripe's grid) from this stripe's mirror. The store stays
    // intact and the other stripes still serve the cluster, so the round's
    // post-join runs unmodified and state stays convergent with an
    // uninterrupted twin; the stripe's own audit catches the hole before its
    // join can publish. A stripe with no border cluster simply doesn't get
    // corrupted this round (the injection is not counted as applied).
    GridIndex& grid = shards_[s]->grid;
    uint32_t victim = 0;
    bool found = false;
    for (uint32_t key : grid.Keys()) {
      if (found && key >= victim) continue;
      bool elsewhere = false;
      for (const auto& other : shards_) {
        if (other.get() == shards_[s].get()) continue;
        if (other->grid.Contains(key)) {
          elsewhere = true;
          break;
        }
      }
      if (elsewhere) {
        victim = key;
        found = true;
      }
    }
    if (!found) continue;
    const Status removed = grid.Remove(victim);
    SCUBA_CHECK_MSG(removed.ok(),
                    "corrupt-state injection failed to remove its victim");
    injector->NoteInjected(ShardFaultClass::kCorruptState);
  }
}

Status ShardedEngine::RunScheduledRecoveries() {
  Stopwatch clock;
  bool attempted = false;
  for (uint32_t s = 0; s < shard_count(); ++s) {
    if (!supervisor_->RecoveryDue(s)) continue;
    attempted = true;
    supervisor_->BeginRecoveryAttempt(s);
    const Status attempt = AttemptStripeRecovery(s);
    if (attempt.ok()) {
      supervisor_->NoteRecoverySuccess(s);
      continue;
    }
    if (!supervisor_->NoteRecoveryFailure(s, attempt)) continue;
    // Attempt budget exhausted: evict. Under kReassign (with a neighbor to
    // take the stripe) the whole engine reshards to one fewer stripe; under
    // kDegrade the stripe stays quarantined in place forever.
    supervisor_->NoteEvicted(s);
    if (options_.supervision.on_failure == ShardFailurePolicy::kReassign &&
        shard_count() > 1) {
      SCUBA_RETURN_IF_ERROR(EvictShard(s));
      break;  // shard indices changed; this sweep is over
    }
  }
  if (attempted && telemetry_ != nullptr) {
    TraceCollector& tc = telemetry_->trace();
    tc.Accumulate(tc.EnsureSpan(tc.root(), "recovery"),
                  clock.ElapsedSeconds());
  }
  return Status::OK();
}

Status ShardedEngine::AttemptStripeRecovery(uint32_t shard) {
  if (ShardFaultInjector* injector = supervisor_->injector()) {
    if (injector->FaultFor(shard) == ShardFaultClass::kRecoveryFailure) {
      injector->NoteInjected(ShardFaultClass::kRecoveryFailure);
      return Status::Internal("injected recovery failure: shard " +
                              std::to_string(shard));
    }
  }
  // Probe first: task failures and stalls leave state intact, so most
  // recoveries are a clean audit away — no durable rebuild, no hook needed.
  const InvariantAuditReport probe = AuditShardStripe(shard);
  if (probe.clean()) return Status::OK();
  if (!stripe_recovery_) {
    return Status::FailedPrecondition(
        "stripe " + std::to_string(shard) +
        " needs a durable rebuild but no recovery hook is attached: " +
        probe.ToString());
  }
  SCUBA_RETURN_IF_ERROR(stripe_recovery_(this, shard));
  const InvariantAuditReport verify = AuditShardStripe(shard);
  if (!verify.clean()) {
    return Status::Corruption(
        "stripe audit still failing after durable rebuild: " +
        verify.ToString());
  }
  return Status::OK();
}

Status ShardedEngine::EvictShard(uint32_t victim) {
  const uint32_t old_count = shard_count();
  SCUBA_CHECK_MSG(old_count >= 2, "cannot evict the last stripe");
  (void)victim;  // every stripe re-routes; the victim's identity dissolves
  // Serialize every stripe through the shard-snapshot path. The victim's
  // STORE is intact even when its grid mirror is damaged, and applying a
  // snapshot re-registers each cluster from its registered_bounds — so the
  // rebuild below also heals whatever corruption got the stripe evicted.
  std::vector<std::string> payloads;
  payloads.reserve(old_count);
  for (uint32_t s = 0; s < old_count; ++s) {
    payloads.push_back(PersistAccess::SerializeShardSnapshot(*this, s, 0, 0));
  }
  const uint32_t new_count = old_count - 1;
  Result<ShardRouter> router =
      ShardRouter::Create(options_.region, options_.grid_cells, new_count);
  if (!router.ok()) return router.status();
  router_ = std::move(router).value();
  std::vector<std::unique_ptr<EngineShard>> fresh;
  fresh.reserve(new_count);
  for (uint32_t s = 0; s < new_count; ++s) {
    Result<GridIndex> grid =
        GridIndex::Create(options_.region, options_.grid_cells);
    if (!grid.ok()) return grid.status();
    fresh.push_back(std::make_unique<EngineShard>(
        s, router_.CellBegin(s), router_.CellEnd(s), std::move(grid).value(),
        options_));
  }
  shards_ = std::move(fresh);
  options_.shards = new_count;  // excluded from the options fingerprint
  pool_.reset();                // JoinPool re-caps itself at the new count
  scratch_touched_.assign(new_count, 0);
  for (const std::string& payload : payloads) {
    SCUBA_RETURN_IF_ERROR(PersistAccess::ApplyShardSnapshot(payload, this));
  }
  supervisor_->OnLayoutChanged(new_count);
  if (on_layout_changed_) {
    SCUBA_RETURN_IF_ERROR(on_layout_changed_());
  }
  return Status::OK();
}

size_t ShardedEngine::EstimateMemoryUsage() const {
  size_t total = sizeof(ShardedEngine) + meta_.EstimateMemoryUsage();
  for (const auto& sp : shards_) {
    total += sizeof(EngineShard) + sp->store.EstimateMemoryUsage() +
             sp->ghosts.EstimateMemoryUsage() + sp->grid.EstimateMemoryUsage() +
             sp->join.EstimateMemoryUsage();
  }
  return total;
}

EngineSnapshotStats ShardedEngine::StatsSnapshot() const {
  EngineSnapshotStats snap;
  snap.eval = stats_;
  snap.phase = phase_stats_;
  snap.clusterer = clusterer_stats_;
  for (const auto& sp : shards_) snap.join += sp->join.counters();
  const LoadShedder& shedder = shards_[0]->shedder;
  snap.shedder = ShedderSnapshotStats{shedder.mode(), shedder.eta(),
                                      shedder.nucleus_radius(),
                                      shedder.adjustments()};
  snap.clusters = ClusterCount();
  return snap;
}

void ShardedEngine::InstallTelemetry(
    std::unique_ptr<EngineTelemetry> telemetry) {
  telemetry_ = std::move(telemetry);
  MetricsRegistry& reg = telemetry_->registry();
  metrics_.rounds =
      reg.RegisterCounter("scuba_rounds_total", "Completed evaluation rounds");
  metrics_.results = reg.RegisterCounter("scuba_results_total",
                                         "Query-object matches produced");
  metrics_.join_comparisons = reg.RegisterCounter(
      "scuba_join_comparisons_total", "Member-level predicate evaluations");
  metrics_.handoffs = reg.RegisterCounter(
      "scuba_shard_handoffs_total",
      "Cluster ownership migrations between shards");
  metrics_.ghosts = reg.RegisterCounter(
      "scuba_shard_ghosts_total",
      "Ghost cluster copies published across shard borders");
  metrics_.recommendations = reg.RegisterCounter(
      "scuba_rebalance_recommendations_total",
      "Stripe-split recommendations issued in observe mode");
  metrics_.shard_failures = reg.RegisterCounter(
      "scuba_shard_failures_total",
      "Supervised shard join tasks that failed (thrown, stalled, or audit)");
  metrics_.shard_recoveries = reg.RegisterCounter(
      "scuba_shard_recoveries_total",
      "Online shard recoveries that verified clean");
  metrics_.shard_evictions = reg.RegisterCounter(
      "scuba_shard_evictions_total",
      "Shards evicted after exhausting their recovery attempts");
  metrics_.degraded_rounds = reg.RegisterCounter(
      "scuba_degraded_rounds_total",
      "Rounds answered with at least one stale shard slice");
  metrics_.clusters =
      reg.RegisterGauge("scuba_clusters", "Live moving clusters");
  metrics_.shards =
      reg.RegisterGauge("scuba_shards", "Engine shards (row stripes)");
  metrics_.shard_health.resize(shard_count());
  for (uint32_t s = 0; s < shard_count(); ++s) {
    metrics_.shard_health[s] = reg.RegisterGauge(
        "scuba_shard_health_" + std::to_string(s),
        "Stripe health: 0 healthy, 1 degraded, 2 recovering, 3 evicted");
    metrics_.shard_health[s].Set(0.0);
  }
  metrics_.shards.Set(static_cast<double>(shard_count()));
  metrics_.clusters.Set(static_cast<double>(ClusterCount()));
  telemetry_->SetRoundHook([this] { PushTelemetryDeltas(); });
}

void ShardedEngine::PushTelemetryDeltas() {
  metrics_.rounds.Increment(stats_.evaluations - pushed_.rounds);
  metrics_.results.Increment(stats_.total_results - pushed_.results);
  metrics_.join_comparisons.Increment(stats_.comparisons -
                                      pushed_.comparisons);
  metrics_.handoffs.Increment(handoffs_ - pushed_.handoffs);
  metrics_.ghosts.Increment(ghosts_published_ - pushed_.ghosts);
  metrics_.recommendations.Increment(recommendations_ -
                                     pushed_.recommendations);
  metrics_.clusters.Set(static_cast<double>(ClusterCount()));
  metrics_.shards.Set(static_cast<double>(shard_count()));
  if (supervisor_ != nullptr) {
    const SupervisionStats& sup = supervisor_->stats();
    metrics_.shard_failures.Increment(sup.shard_failures -
                                      pushed_.shard_failures);
    metrics_.shard_recoveries.Increment(sup.shard_recoveries -
                                        pushed_.shard_recoveries);
    metrics_.shard_evictions.Increment(sup.shard_evictions -
                                       pushed_.shard_evictions);
    metrics_.degraded_rounds.Increment(sup.degraded_rounds -
                                       pushed_.degraded_rounds);
    pushed_.shard_failures = sup.shard_failures;
    pushed_.shard_recoveries = sup.shard_recoveries;
    pushed_.shard_evictions = sup.shard_evictions;
    pushed_.degraded_rounds = sup.degraded_rounds;
  }
  for (size_t s = 0; s < metrics_.shard_health.size(); ++s) {
    // Indices beyond the current layout (after a reassign reshard) report
    // evicted: that stripe identity no longer exists.
    double level = 3.0;
    if (s < shard_count()) {
      level = supervisor_ == nullptr
                  ? 0.0
                  : static_cast<double>(static_cast<int>(
                        supervisor_->record(static_cast<uint32_t>(s)).health));
    }
    metrics_.shard_health[s].Set(level);
  }
  pushed_.rounds = stats_.evaluations;
  pushed_.results = stats_.total_results;
  pushed_.comparisons = stats_.comparisons;
  pushed_.handoffs = handoffs_;
  pushed_.ghosts = ghosts_published_;
  pushed_.recommendations = recommendations_;
}

Status ShardedEngine::FlushTelemetry() {
  if (telemetry_ == nullptr) return Status::OK();
  return telemetry_->Flush();
}

uint64_t EngineStateHash(const ShardedEngine& engine) {
  std::vector<const ClusterStore*> stores;
  std::vector<const GridIndex*> grids;
  stores.reserve(engine.shard_count());
  grids.reserve(engine.shard_count());
  for (uint32_t s = 0; s < engine.shard_count(); ++s) {
    stores.push_back(&engine.shard(s).store);
    grids.push_back(&engine.shard(s).grid);
  }
  return ShardedStateHash(engine.meta_store(), stores, grids);
}

}  // namespace scuba
