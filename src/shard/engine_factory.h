// One place where ScubaOptions become a runnable engine.
//
// scuba_cli run/checkpoint/restore/recover, the serve subcommand, benches,
// and examples all need the same mapping: engine name + options → a
// QueryProcessor (single ScubaEngine, ShardedEngine when opt.shards > 1, or a
// baseline), optionally wrapped with durability (snapshot/WAL sink plus the
// supervised-stripe online-recovery hooks). Before this factory each caller
// hand-assembled that chain and they drifted; now the option-to-engine
// mapping lives here and callers keep only their command-specific I/O.

#ifndef SCUBA_SHARD_ENGINE_FACTORY_H_
#define SCUBA_SHARD_ENGINE_FACTORY_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/query_processor.h"
#include "core/scuba_engine.h"
#include "persist/crash.h"
#include "shard/shard_durability.h"
#include "shard/sharded_engine.h"
#include "stream/update_validator.h"

namespace scuba {

/// An engine plus typed views into it. `engine` owns; the raw pointers alias
/// it (non-null only for the matching concrete type) so callers can reach
/// type-specific surfaces — state hashes, telemetry, shard health — without
/// dynamic_cast.
struct EngineHandle {
  std::unique_ptr<QueryProcessor> engine;
  ScubaEngine* scuba = nullptr;      ///< set when engine is a single ScubaEngine
  ShardedEngine* sharded = nullptr;  ///< set when engine is a ShardedEngine

  /// State hash for determinism checks: engine-snapshot hash for scuba /
  /// sharded engines, 0 for baselines (which define no snapshot form).
  uint64_t StateHash() const;

  /// Flushes buffered telemetry (scuba/sharded only; baselines emit none).
  Status FlushTelemetry() const;
};

/// Builds the engine `name` selects: "scuba" (ShardedEngine when
/// opt.shards > 1, else ScubaEngine), "grid" (GridJoinEngine over opt.region
/// / opt.grid_cells), or "naive". Unknown names → kInvalidArgument.
Result<EngineHandle> MakeEngine(const ScubaOptions& opt,
                                std::string_view name = "scuba");

/// A durability sink bound to an engine, plus the typed sharded view.
struct DurabilityHandle {
  std::unique_ptr<DurabilitySink> sink;  ///< null when no durable dir was given
  ShardedDurabilityManager* sharded = nullptr;
};

/// Opens snapshot/WAL durability under `dir` for `engine` (which must be a
/// scuba or sharded engine — baselines have no snapshot form) and, for a
/// supervised sharded engine, installs the online stripe-recovery hooks that
/// rebuild a failed stripe from `dir` between rounds. `screen` (nullable) is
/// the validator whose state rides the snapshots; `vconfig` must describe it
/// when non-null. `crash` (nullable) arms crash injection. An empty `dir`
/// returns an empty handle, so callers can wire durability unconditionally.
Result<DurabilityHandle> OpenDurability(const std::string& dir,
                                        const ScubaOptions& opt,
                                        EngineHandle* engine,
                                        UpdateValidator* screen,
                                        const ValidatorConfig& vconfig,
                                        CrashInjector* crash = nullptr);

}  // namespace scuba

#endif  // SCUBA_SHARD_ENGINE_FACTORY_H_
