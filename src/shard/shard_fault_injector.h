// ShardFaultInjector: deterministic injection of per-shard failures, for
// proving the shard supervision layer (ShardSupervisor, degraded-mode rounds,
// online per-shard recovery — docs/ARCHITECTURE.md §13) isolates and recovers
// every failure class it claims to.
//
// The injector follows the src/stream/fault_injector discipline: all
// randomness flows through one seeded Rng, so a (seed, plan) pair reproduces
// the exact same fault schedule every run. Faults are rolled SERIALLY at the
// coordinator when a round begins — never inside worker tasks — so the
// schedule depends only on (seed, round order, shard count), not on thread
// interleaving. Exact directives ("round:shard:class") bypass the dice
// entirely for reproducible single-fault drills.

#ifndef SCUBA_SHARD_SHARD_FAULT_INJECTOR_H_
#define SCUBA_SHARD_SHARD_FAULT_INJECTOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace scuba {

/// Every way the injector can fail a shard. The first three strike the
/// shard's supervised join task; kRecoveryFailure strikes the shard's next
/// online recovery attempt instead (exercising the retry/backoff/eviction
/// schedule without real damage).
enum class ShardFaultClass : uint8_t {
  kTaskFailure = 0,  ///< The shard's join task throws -> Status::Internal.
  kCorruptState,     ///< The shard's grid slice is damaged -> audit catches.
  kStall,            ///< The shard's join task misses the round deadline.
  kRecoveryFailure,  ///< The shard's next recovery attempt fails.
};

inline constexpr size_t kShardFaultClassCount = 4;

/// Stable lowercase name ("task-failure", "corrupt-state", "stall",
/// "recovery-failure").
std::string_view ShardFaultClassName(ShardFaultClass fault);

/// Parses a class name; InvalidArgument on anything else.
Result<ShardFaultClass> ParseShardFaultClass(std::string_view name);

/// One exact injection: shard `shard` suffers `fault` in round `round`
/// (rounds count completed Evaluate calls, first round = 1).
struct ShardFaultDirective {
  uint64_t round = 0;
  uint32_t shard = 0;
  ShardFaultClass fault = ShardFaultClass::kTaskFailure;
};

/// Injection plan: per-class probabilities rolled per (round, shard) in enum
/// order with the first hit winning (at most one fault per shard per round),
/// plus exact directives that override the dice for their (round, shard).
struct ShardFaultPlan {
  double task_failure = 0.0;
  double corrupt_state = 0.0;
  double stall = 0.0;
  double recovery_failure = 0.0;
  std::vector<ShardFaultDirective> directives;

  /// Every fault class at probability `p`.
  static ShardFaultPlan AllFaults(double p);

  /// Parses "round:shard:class[,round:shard:class...]", e.g.
  /// "3:1:task-failure,5:0:corrupt-state". Whitespace-free.
  static Result<ShardFaultPlan> ParseSpec(std::string_view spec);
};

struct ShardFaultStats {
  uint64_t rounds_seen = 0;
  uint64_t injected[kShardFaultClassCount] = {};

  uint64_t Injected(ShardFaultClass fault) const {
    return injected[static_cast<size_t>(fault)];
  }
  uint64_t TotalInjected() const;
  /// "rounds=N injected=M task-failure=2 ..." (nonzero classes only).
  std::string ToString() const;
};

class ShardFaultInjector {
 public:
  ShardFaultInjector(const ShardFaultPlan& plan, uint64_t seed);

  /// Rolls this round's fault assignments for `shards` shards. Serial,
  /// coordinator-side; `round` counts Evaluate calls from 1. Directives for
  /// this round override the rolls of their shard.
  void BeginRound(uint64_t round, uint32_t shards);

  /// Fault assigned to `shard` in the round begun last, if any. Pure lookup —
  /// safe to call from worker tasks.
  std::optional<ShardFaultClass> FaultFor(uint32_t shard) const;

  /// Records that the fault assigned to `shard` actually fired (stats count
  /// applied injections, not assignments — a fault assigned to a quarantined
  /// shard never fires).
  void NoteInjected(ShardFaultClass fault);

  const ShardFaultPlan& plan() const { return plan_; }
  const ShardFaultStats& stats() const { return stats_; }

 private:
  ShardFaultPlan plan_;
  ShardFaultStats stats_;
  Rng rng_;
  std::vector<std::optional<ShardFaultClass>> round_faults_;
  uint64_t current_round_ = 0;
};

}  // namespace scuba

#endif  // SCUBA_SHARD_SHARD_FAULT_INJECTOR_H_
