#include "shard/shard_supervisor.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/stopwatch.h"

namespace scuba {

std::string_view ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kDegraded:
      return "degraded";
    case ShardHealth::kRecovering:
      return "recovering";
    case ShardHealth::kEvicted:
      return "evicted";
  }
  return "unknown";
}

Result<std::unique_ptr<ShardSupervisor>> ShardSupervisor::Create(
    const ShardSupervisionOptions& options, uint32_t shards) {
  std::unique_ptr<ShardSupervisor> supervisor(
      new ShardSupervisor(options, shards));
  if (options.FaultsArmed()) {
    ShardFaultPlan plan = ShardFaultPlan::AllFaults(options.fault_rate);
    if (!options.fault_spec.empty()) {
      Result<ShardFaultPlan> parsed =
          ShardFaultPlan::ParseSpec(options.fault_spec);
      if (!parsed.ok()) return parsed.status();
      plan.directives = std::move(parsed.value().directives);
    }
    supervisor->injector_ =
        std::make_unique<ShardFaultInjector>(plan, options.fault_seed);
  }
  return supervisor;
}

void ShardSupervisor::BeginRound(uint64_t round) {
  round_ = round;
  ++stats_.rounds_supervised;
  if (injector_ != nullptr) injector_->BeginRound(round, shard_count());
}

bool ShardSupervisor::AnyQuarantined() const {
  for (const ShardHealthRecord& rec : records_) {
    if (rec.health != ShardHealth::kHealthy) return true;
  }
  return false;
}

Status ShardSupervisor::SuperviseJoinTask(
    uint32_t shard, const std::function<Status()>& body) const {
  const std::optional<ShardFaultClass> fault = PlannedFault(shard);
  Stopwatch clock;
  Status status;
  try {
    if (fault == ShardFaultClass::kTaskFailure) {
      throw std::runtime_error("injected task failure: shard " +
                               std::to_string(shard));
    }
    status = body();
  } catch (const std::exception& e) {
    status = Status::Internal(std::string("shard task threw: ") + e.what());
  } catch (...) {
    status = Status::Internal("shard task threw a non-standard exception");
  }
  if (!status.ok()) return status;
  if (fault == ShardFaultClass::kStall) {
    return Status::Internal("injected stall: shard " + std::to_string(shard) +
                            " missed the round deadline");
  }
  const double elapsed = clock.ElapsedSeconds();
  if (options_.round_deadline_seconds > 0.0 &&
      elapsed > options_.round_deadline_seconds) {
    return Status::Internal(
        "shard " + std::to_string(shard) + " stalled: join task took " +
        std::to_string(elapsed) + "s against a " +
        std::to_string(options_.round_deadline_seconds) + "s round deadline");
  }
  return status;
}

void ShardSupervisor::NoteJoinFailure(uint32_t shard, const Status& error) {
  ShardHealthRecord& rec = records_[shard];
  ++stats_.shard_failures;
  rec.health = ShardHealth::kDegraded;
  ++rec.failures;
  rec.recovery_attempts = 0;
  rec.failed_round = round_;
  // First attempt runs at the end of the same round: no ingest interleaves,
  // so a successful rebuild converges exactly to the uninterrupted twin.
  rec.next_attempt_round = round_;
  rec.last_error = error.ToString();
}

void ShardSupervisor::NoteRecoverySuccess(uint32_t shard) {
  ShardHealthRecord& rec = records_[shard];
  ++stats_.shard_recoveries;
  rec.health = ShardHealth::kHealthy;
  rec.recovery_attempts = 0;
  rec.next_attempt_round = 0;
  rec.last_error.clear();
}

bool ShardSupervisor::NoteRecoveryFailure(uint32_t shard,
                                          const Status& error) {
  ShardHealthRecord& rec = records_[shard];
  rec.health = ShardHealth::kDegraded;
  rec.last_error = error.ToString();
  ++rec.recovery_attempts;
  if (rec.recovery_attempts >= options_.max_recovery_attempts) return true;
  // Exponential round-based backoff: base, 2*base, 4*base, ... (shift capped
  // so a huge attempt budget cannot overflow the round arithmetic).
  const uint32_t shift = std::min<uint32_t>(rec.recovery_attempts - 1, 32);
  rec.next_attempt_round =
      round_ + (static_cast<uint64_t>(options_.backoff_base_rounds) << shift);
  return false;
}

void ShardSupervisor::NoteEvicted(uint32_t shard) {
  ++stats_.shard_evictions;
  records_[shard].health = ShardHealth::kEvicted;
}

void ShardSupervisor::OnLayoutChanged(uint32_t shards) {
  records_.assign(shards, ShardHealthRecord{});
}

std::string ShardSupervisor::HealthDump() const {
  std::string out;
  for (uint32_t s = 0; s < shard_count(); ++s) {
    const ShardHealthRecord& rec = records_[s];
    out += "shard " + std::to_string(s) + ": " +
           std::string(ShardHealthName(rec.health));
    if (rec.failures > 0) {
      out += " failures=" + std::to_string(rec.failures) +
             " attempts=" + std::to_string(rec.recovery_attempts);
      if (rec.health == ShardHealth::kDegraded) {
        out += " next_attempt_round=" + std::to_string(rec.next_attempt_round);
      }
      if (!rec.last_error.empty()) out += " last_error=\"" + rec.last_error + "\"";
    }
    out += "\n";
  }
  out += "supervision: rounds=" + std::to_string(stats_.rounds_supervised) +
         " failures=" + std::to_string(stats_.shard_failures) +
         " recoveries=" + std::to_string(stats_.shard_recoveries) +
         " evictions=" + std::to_string(stats_.shard_evictions) +
         " degraded_rounds=" + std::to_string(stats_.degraded_rounds) + "\n";
  if (injector_ != nullptr) {
    out += "faults: " + injector_->stats().ToString() + "\n";
  }
  return out;
}

}  // namespace scuba
