#include "shard/engine_factory.h"

#include <utility>

#include "baseline/grid_join_engine.h"
#include "baseline/naive_join_engine.h"
#include "persist/durability.h"
#include "persist/snapshot.h"

namespace scuba {

uint64_t EngineHandle::StateHash() const {
  if (sharded != nullptr) return EngineStateHash(*sharded);
  if (scuba != nullptr) return EngineStateHash(*scuba);
  return 0;
}

Status EngineHandle::FlushTelemetry() const {
  if (sharded != nullptr) return sharded->FlushTelemetry();
  if (scuba != nullptr) return scuba->FlushTelemetry();
  return Status::OK();
}

Result<EngineHandle> MakeEngine(const ScubaOptions& opt,
                                std::string_view name) {
  EngineHandle handle;
  if (name == "scuba" && opt.shards > 1) {
    Result<std::unique_ptr<ShardedEngine>> e = ShardedEngine::Create(opt);
    if (!e.ok()) return e.status();
    handle.sharded = e->get();
    handle.engine = std::move(e).value();
    return handle;
  }
  if (name == "scuba") {
    Result<std::unique_ptr<ScubaEngine>> e = ScubaEngine::Create(opt);
    if (!e.ok()) return e.status();
    handle.scuba = e->get();
    handle.engine = std::move(e).value();
    return handle;
  }
  if (name == "grid") {
    GridJoinOptions grid;
    grid.region = opt.region;
    grid.grid_cells = opt.grid_cells;
    Result<std::unique_ptr<GridJoinEngine>> e = GridJoinEngine::Create(grid);
    if (!e.ok()) return e.status();
    handle.engine = std::move(e).value();
    return handle;
  }
  if (name == "naive") {
    handle.engine = std::make_unique<NaiveJoinEngine>();
    return handle;
  }
  return Status::InvalidArgument("unknown engine: " + std::string(name) +
                                 " (scuba|grid|naive)");
}

Result<DurabilityHandle> OpenDurability(const std::string& dir,
                                        const ScubaOptions& opt,
                                        EngineHandle* engine,
                                        UpdateValidator* screen,
                                        const ValidatorConfig& vconfig,
                                        CrashInjector* crash) {
  DurabilityHandle handle;
  if (dir.empty()) return handle;
  if (engine->sharded != nullptr) {
    Result<std::unique_ptr<ShardedDurabilityManager>> d =
        ShardedDurabilityManager::Open(dir, opt.checkpoint, engine->sharded,
                                       screen, /*rng=*/nullptr, crash);
    if (!d.ok()) return d.status();
    handle.sharded = d->get();
    handle.sink = std::move(d).value();
  } else if (engine->scuba != nullptr) {
    Result<std::unique_ptr<DurabilityManager>> d =
        DurabilityManager::Open(dir, opt.checkpoint, engine->scuba, screen,
                                /*rng=*/nullptr, crash);
    if (!d.ok()) return d.status();
    handle.sink = std::move(d).value();
  } else {
    return Status::InvalidArgument(
        "--durable-dir requires --engine scuba (snapshots cover SCUBA "
        "engine state)");
  }
  // A supervised durable sharded run can heal a failed stripe online: the
  // recovery hook rebuilds it from the durable root between rounds, and a
  // reassign eviction realigns the WAL chains with the reduced layout.
  if (engine->sharded != nullptr && engine->sharded->supervisor() != nullptr &&
      handle.sharded != nullptr) {
    // The durable root carries validator state only when the run screens
    // (screen was passed to Open above); the twin must mirror that.
    const bool has_validator = screen != nullptr;
    engine->sharded->set_stripe_recovery(
        [dir, vconfig, has_validator](ShardedEngine* e, uint32_t s) {
          return RecoverShardStripe(dir, e, s,
                                    has_validator ? &vconfig : nullptr);
        });
    ShardedDurabilityManager* sharded = handle.sharded;
    engine->sharded->set_on_layout_changed(
        [sharded] { return sharded->OnLayoutChanged(); });
  }
  return handle;
}

}  // namespace scuba
