// ShardRouter: contiguous row-stripe partitioning of the ClusterGrid's cell
// space across N engine shards (docs/ARCHITECTURE.md §11).
//
// The router reuses the grid's geometry verbatim — the same region, the same
// cells_per_side, the same out-of-region clamping — so "which shard owns this
// point" is exactly "which stripe contains GridIndex::CellIndexOf(point)".
// Stripes are whole grid rows: cells are row-major, so a stripe is one
// contiguous cell range [CellBegin(s), CellEnd(s)), which is what lets each
// shard's join scan a plain index window with no ownership test per cell.
//
// Rows split as evenly as integer division allows: stripe s owns rows
// [s*rows/shards, (s+1)*rows/shards). With more shards than rows, the excess
// stripes are zero-area — legal, they simply own no cells and never receive
// clusters.

#ifndef SCUBA_SHARD_SHARD_ROUTER_H_
#define SCUBA_SHARD_SHARD_ROUTER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geometry/rect.h"
#include "index/grid_index.h"

namespace scuba {

class ShardRouter {
 public:
  /// Builds a router over the grid geometry `(region, cells_per_side)` with
  /// `shards` row stripes. Fails on invalid geometry (empty region, zero
  /// cells) or shards == 0.
  static Result<ShardRouter> Create(const Rect& region, uint32_t cells_per_side,
                                    uint32_t shards);

  uint32_t shard_count() const { return shards_; }
  uint32_t cells_per_side() const { return geometry_.cells_per_side(); }

  /// Row range [RowBegin, RowEnd) owned by `shard`.
  uint32_t RowBegin(uint32_t shard) const { return row_begin_[shard]; }
  uint32_t RowEnd(uint32_t shard) const { return row_begin_[shard + 1]; }

  /// Contiguous cell range [CellBegin, CellEnd) owned by `shard` (rows are
  /// row-major, so a row stripe is one cell interval).
  uint32_t CellBegin(uint32_t shard) const {
    return row_begin_[shard] * geometry_.cells_per_side();
  }
  uint32_t CellEnd(uint32_t shard) const {
    return row_begin_[shard + 1] * geometry_.cells_per_side();
  }

  /// True when the stripe owns no rows (shards > rows).
  bool ZeroArea(uint32_t shard) const {
    return row_begin_[shard] == row_begin_[shard + 1];
  }

  /// Owning shard of a cell index (must be < cells_per_side^2).
  uint32_t ShardOfCell(uint32_t cell) const;

  /// Owning shard of a point, with the grid's exact clamping semantics:
  /// ShardOfCell(GridIndex::CellIndexOf(p)).
  uint32_t ShardOfPoint(Point p) const {
    return ShardOfCell(geometry_.CellIndexOf(p));
  }

 private:
  ShardRouter(GridIndex geometry, uint32_t shards);

  /// Cell-less grid kept purely for its point->cell geometry, so routing and
  /// indexing can never disagree on clamping or cell math.
  GridIndex geometry_;
  uint32_t shards_ = 1;
  /// shards_ + 1 entries; stripe s owns rows [row_begin_[s], row_begin_[s+1]).
  std::vector<uint32_t> row_begin_;
};

}  // namespace scuba

#endif  // SCUBA_SHARD_SHARD_ROUTER_H_
