// ShardSupervisor: the per-shard failure barrier and health state machine
// behind supervised ShardedEngine rounds (docs/ARCHITECTURE.md §13).
//
// The supervisor never touches engine state itself. It wraps each shard's
// join task with an exception barrier, a round-deadline check and the
// deterministic fault injector, and tracks one ShardHealthRecord per stripe:
//
//   healthy ──(task failure / stall / audit violation)──▶ degraded
//   degraded ──(recovery attempt due)──▶ recovering
//   recovering ──(audit clean)──▶ healthy
//   recovering ──(attempt failed)──▶ degraded (backoff), or after
//   max_recovery_attempts failures ──▶ evicted (kDegrade: in place;
//   kReassign: the engine reshards to one fewer stripe first)
//
// All decisions are made serially at the coordinator; the only member safe to
// call from worker tasks is SuperviseJoinTask, which reads the pre-rolled
// fault schedule and mutates nothing shared.

#ifndef SCUBA_SHARD_SHARD_SUPERVISOR_H_
#define SCUBA_SHARD_SHARD_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/scuba_options.h"
#include "shard/shard_fault_injector.h"

namespace scuba {

/// One stripe's position in the supervision state machine.
enum class ShardHealth : uint8_t {
  kHealthy = 0,    ///< Joins run; results are live.
  kDegraded,       ///< Quarantined: serves its last-published results.
  kRecovering,     ///< A recovery attempt is running right now.
  kEvicted,        ///< Attempt budget exhausted; permanently quarantined.
};

/// Stable lowercase name ("healthy", "degraded", "recovering", "evicted").
std::string_view ShardHealthName(ShardHealth health);

struct ShardHealthRecord {
  ShardHealth health = ShardHealth::kHealthy;
  uint32_t failures = 0;           ///< Lifetime supervised-task failures.
  uint32_t recovery_attempts = 0;  ///< Failed attempts since the incident.
  uint64_t failed_round = 0;       ///< Round of the current incident.
  uint64_t next_attempt_round = 0; ///< Recovery due when round >= this.
  std::string last_error;          ///< Most recent failure, human-readable.
};

struct SupervisionStats {
  uint64_t rounds_supervised = 0;
  uint64_t shard_failures = 0;    ///< Supervised join tasks that failed.
  uint64_t shard_recoveries = 0;  ///< Online recoveries that verified clean.
  uint64_t shard_evictions = 0;   ///< Stripes that exhausted their attempts.
  uint64_t degraded_rounds = 0;   ///< Rounds served with >= 1 stale slice.
};

class ShardSupervisor {
 public:
  /// Parses the fault spec (if any) and arms the injector when the options
  /// ask for it. InvalidArgument on a malformed fault_spec.
  static Result<std::unique_ptr<ShardSupervisor>> Create(
      const ShardSupervisionOptions& options, uint32_t shards);

  /// Serial, coordinator-side: opens round `round` (counting Evaluate calls
  /// from 1) and rolls the injector's fault schedule for it.
  void BeginRound(uint64_t round);
  uint64_t round() const { return round_; }

  /// True when the stripe must not run its join this round (any non-healthy
  /// state): its result slice is served from last-published results.
  bool Quarantined(uint32_t shard) const {
    return records_[shard].health != ShardHealth::kHealthy;
  }
  bool AnyQuarantined() const;

  /// Runs one shard's join body under the failure barrier: injects this
  /// round's task-failure/stall fault, converts any escaped exception into
  /// Status::Internal, and enforces the round deadline. Worker-safe: reads
  /// the pre-rolled schedule, mutates nothing shared (injection stats are
  /// counted serially by the coordinator afterwards).
  Status SuperviseJoinTask(uint32_t shard,
                           const std::function<Status()>& body) const;

  /// Fault the injector assigned to `shard` this round (nullopt when the
  /// injector is unarmed or rolled nothing).
  std::optional<ShardFaultClass> PlannedFault(uint32_t shard) const {
    return injector_ == nullptr ? std::nullopt : injector_->FaultFor(shard);
  }
  /// Non-null iff fault injection is armed.
  ShardFaultInjector* injector() { return injector_.get(); }
  const ShardFaultInjector* injector() const { return injector_.get(); }

  /// Serial outcome recording: the shard's supervised join failed this round.
  /// Transitions the stripe to kDegraded with its first recovery attempt due
  /// at the end of the same round.
  void NoteJoinFailure(uint32_t shard, const Status& error);
  /// The round completed with at least one stale slice.
  void NoteDegradedRound() { ++stats_.degraded_rounds; }

  /// True when `shard` has a recovery attempt due this round.
  bool RecoveryDue(uint32_t shard) const {
    const ShardHealthRecord& rec = records_[shard];
    return rec.health == ShardHealth::kDegraded &&
           round_ >= rec.next_attempt_round;
  }
  void BeginRecoveryAttempt(uint32_t shard) {
    records_[shard].health = ShardHealth::kRecovering;
  }
  void NoteRecoverySuccess(uint32_t shard);
  /// Records a failed attempt and schedules the next one with exponential
  /// round-based backoff. Returns true when the attempt budget is exhausted
  /// and the stripe must be evicted.
  bool NoteRecoveryFailure(uint32_t shard, const Status& error);
  /// kDegrade eviction (in place) or the bookkeeping half of a kReassign
  /// eviction (the engine reshards separately).
  void NoteEvicted(uint32_t shard);
  /// The engine restriped to `shards` stripes: every record resets to
  /// healthy — the evicted stripe's identity no longer exists.
  void OnLayoutChanged(uint32_t shards);

  uint32_t shard_count() const {
    return static_cast<uint32_t>(records_.size());
  }
  const ShardHealthRecord& record(uint32_t shard) const {
    return records_[shard];
  }
  const ShardSupervisionOptions& options() const { return options_; }
  const SupervisionStats& stats() const { return stats_; }

  /// Multi-line operator dump: one line per stripe plus the aggregate
  /// counters and (when armed) the injector stats.
  std::string HealthDump() const;

 private:
  ShardSupervisor(const ShardSupervisionOptions& options, uint32_t shards)
      : options_(options), records_(shards) {}

  ShardSupervisionOptions options_;
  std::unique_ptr<ShardFaultInjector> injector_;  ///< Null unless armed.
  std::vector<ShardHealthRecord> records_;
  SupervisionStats stats_;
  uint64_t round_ = 0;
};

}  // namespace scuba

#endif  // SCUBA_SHARD_SHARD_SUPERVISOR_H_
