#include "shard/shard_router.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace scuba {

Result<ShardRouter> ShardRouter::Create(const Rect& region,
                                        uint32_t cells_per_side,
                                        uint32_t shards) {
  if (shards == 0) {
    return Status::InvalidArgument("shard count must be positive");
  }
  Result<GridIndex> geometry = GridIndex::Create(region, cells_per_side);
  if (!geometry.ok()) return geometry.status();
  return ShardRouter(std::move(geometry).value(), shards);
}

ShardRouter::ShardRouter(GridIndex geometry, uint32_t shards)
    : geometry_(std::move(geometry)), shards_(shards) {
  const uint64_t rows = geometry_.cells_per_side();
  row_begin_.reserve(shards_ + 1);
  for (uint32_t s = 0; s <= shards_; ++s) {
    row_begin_.push_back(static_cast<uint32_t>(rows * s / shards_));
  }
}

uint32_t ShardRouter::ShardOfCell(uint32_t cell) const {
  SCUBA_CHECK(cell < geometry_.CellCount());
  const uint32_t row = cell / geometry_.cells_per_side();
  // The last stripe whose first row is <= row; zero-area stripes share their
  // begin with the next stripe and are skipped by upper_bound, so the owner
  // always has row < RowEnd.
  const auto it =
      std::upper_bound(row_begin_.begin(), row_begin_.end(), row);
  return static_cast<uint32_t>(it - row_begin_.begin()) - 1;
}

}  // namespace scuba
