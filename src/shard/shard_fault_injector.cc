#include "shard/shard_fault_injector.h"

#include <cstdlib>

namespace scuba {

std::string_view ShardFaultClassName(ShardFaultClass fault) {
  switch (fault) {
    case ShardFaultClass::kTaskFailure:
      return "task-failure";
    case ShardFaultClass::kCorruptState:
      return "corrupt-state";
    case ShardFaultClass::kStall:
      return "stall";
    case ShardFaultClass::kRecoveryFailure:
      return "recovery-failure";
  }
  return "unknown";
}

Result<ShardFaultClass> ParseShardFaultClass(std::string_view name) {
  for (size_t i = 0; i < kShardFaultClassCount; ++i) {
    const auto fault = static_cast<ShardFaultClass>(i);
    if (name == ShardFaultClassName(fault)) return fault;
  }
  return Status::InvalidArgument(
      "unknown shard fault class: " + std::string(name) +
      " (task-failure|corrupt-state|stall|recovery-failure)");
}

ShardFaultPlan ShardFaultPlan::AllFaults(double p) {
  ShardFaultPlan plan;
  plan.task_failure = p;
  plan.corrupt_state = p;
  plan.stall = p;
  plan.recovery_failure = p;
  return plan;
}

Result<ShardFaultPlan> ShardFaultPlan::ParseSpec(std::string_view spec) {
  ShardFaultPlan plan;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(pos, end - pos);
    pos = end + 1;
    const size_t c1 = entry.find(':');
    const size_t c2 = c1 == std::string_view::npos
                          ? std::string_view::npos
                          : entry.find(':', c1 + 1);
    if (c1 == std::string_view::npos || c2 == std::string_view::npos) {
      return Status::InvalidArgument(
          "shard fault spec entry is not round:shard:class: " +
          std::string(entry));
    }
    ShardFaultDirective d;
    char* parse_end = nullptr;
    const std::string round_str(entry.substr(0, c1));
    const std::string shard_str(entry.substr(c1 + 1, c2 - c1 - 1));
    d.round = std::strtoull(round_str.c_str(), &parse_end, 10);
    if (parse_end == round_str.c_str() || *parse_end != '\0' || d.round == 0) {
      return Status::InvalidArgument("bad round in shard fault spec entry: " +
                                     std::string(entry));
    }
    d.shard =
        static_cast<uint32_t>(std::strtoul(shard_str.c_str(), &parse_end, 10));
    if (parse_end == shard_str.c_str() || *parse_end != '\0') {
      return Status::InvalidArgument("bad shard in shard fault spec entry: " +
                                     std::string(entry));
    }
    Result<ShardFaultClass> fault = ParseShardFaultClass(entry.substr(c2 + 1));
    if (!fault.ok()) return fault.status();
    d.fault = *fault;
    plan.directives.push_back(d);
  }
  return plan;
}

uint64_t ShardFaultStats::TotalInjected() const {
  uint64_t total = 0;
  for (uint64_t n : injected) total += n;
  return total;
}

std::string ShardFaultStats::ToString() const {
  std::string out = "rounds=" + std::to_string(rounds_seen) +
                    " injected=" + std::to_string(TotalInjected());
  for (size_t i = 0; i < kShardFaultClassCount; ++i) {
    if (injected[i] == 0) continue;
    out += " ";
    out += ShardFaultClassName(static_cast<ShardFaultClass>(i));
    out += "=" + std::to_string(injected[i]);
  }
  return out;
}

ShardFaultInjector::ShardFaultInjector(const ShardFaultPlan& plan,
                                       uint64_t seed)
    : plan_(plan), rng_(seed) {}

void ShardFaultInjector::BeginRound(uint64_t round, uint32_t shards) {
  current_round_ = round;
  ++stats_.rounds_seen;
  round_faults_.assign(shards, std::nullopt);
  // Probability rolls first, in (shard, class) order: the rng consumes the
  // same number of draws per round regardless of outcomes only if every class
  // rolls, so roll all four classes for every shard and apply first-hit-wins
  // afterwards — the schedule is a pure function of (seed, round index).
  const double rates[kShardFaultClassCount] = {
      plan_.task_failure, plan_.corrupt_state, plan_.stall,
      plan_.recovery_failure};
  for (uint32_t s = 0; s < shards; ++s) {
    std::optional<ShardFaultClass> hit;
    for (size_t c = 0; c < kShardFaultClassCount; ++c) {
      const bool rolled = rates[c] > 0.0 && rng_.NextDouble() < rates[c];
      if (rolled && !hit.has_value()) hit = static_cast<ShardFaultClass>(c);
    }
    round_faults_[s] = hit;
  }
  // Exact directives override the dice for their shard.
  for (const ShardFaultDirective& d : plan_.directives) {
    if (d.round == round && d.shard < shards) round_faults_[d.shard] = d.fault;
  }
}

std::optional<ShardFaultClass> ShardFaultInjector::FaultFor(
    uint32_t shard) const {
  if (shard >= round_faults_.size()) return std::nullopt;
  return round_faults_[shard];
}

void ShardFaultInjector::NoteInjected(ShardFaultClass fault) {
  ++stats_.injected[static_cast<size_t>(fault)];
}

}  // namespace scuba
