// EngineShard: one spatial stripe's worth of SCUBA engine state
// (docs/ARCHITECTURE.md §11).
//
// Each shard owns a contiguous row stripe of the map — the cell window
// [cell_begin, cell_end) — and the full vertical slice of machinery a round
// needs inside it: an authoritative ClusterStore slice (a cluster lives in
// exactly one shard's store, its members' home entries with it), a GridIndex
// mirror, a LoadShedder, and a ClusterJoinExecutor with its own SoA slab
// arena, so shards share no mutable state on the hot path.
//
// Grid mirror invariant: a cluster is registered in this shard's grid iff its
// registered circle touches the stripe, and always under its FULL global cell
// list (the grid spans the whole map; only the scan window is restricted).
// Consequently, for any cell inside the stripe the entry set equals the
// single-engine grid's, which is what keeps the owner-cell dedup rule and
// min-cid probes bit-identical under sharding.
//
// Ghosts: clusters registered in the stripe but owned by another shard are
// copied into `ghosts` before each join via the snapshot serializer
// (bit-exact round trip), so the scoped join reads them without touching the
// neighbor's store.

#ifndef SCUBA_SHARD_ENGINE_SHARD_H_
#define SCUBA_SHARD_ENGINE_SHARD_H_

#include <cstdint>
#include <utility>

#include "cluster/cluster_store.h"
#include "core/cluster_join.h"
#include "core/load_shedder.h"
#include "core/result_set.h"
#include "core/scuba_options.h"
#include "index/grid_index.h"

namespace scuba {

struct EngineShard {
  EngineShard(uint32_t id, uint32_t cell_begin, uint32_t cell_end,
              GridIndex grid, const ScubaOptions& options)
      : id(id),
        cell_begin(cell_begin),
        cell_end(cell_end),
        grid(std::move(grid)),
        shedder(options.shedding, options.theta_d),
        join(options.query_reach_aware, /*join_threads=*/1),
        nucleus_radius(shedder.nucleus_radius()) {}

  EngineShard(const EngineShard&) = delete;
  EngineShard& operator=(const EngineShard&) = delete;

  uint32_t id = 0;
  uint32_t cell_begin = 0;  ///< First cell of the owned stripe.
  uint32_t cell_end = 0;    ///< One past the last owned cell.

  /// Authoritative clusters owned by this shard (plus their members' homes).
  ClusterStore store;
  /// Read-only copies of border-crossing clusters owned by neighbors,
  /// rebuilt before every join and cleared after.
  ClusterStore ghosts;
  /// Full-map geometry; registers exactly the clusters touching the stripe.
  GridIndex grid;
  LoadShedder shedder;
  /// Per-shard executor (threads=1: parallelism is one task per shard).
  ClusterJoinExecutor join;
  /// This shard's slice of the round's matches, merged by the coordinator.
  ResultSet results;
  /// Last successfully published slice. Maintained only under supervision
  /// (ShardSupervisor): a degraded round serves this copy for a quarantined
  /// stripe so the round still answers, marked via ResultSet::MarkDegraded.
  ResultSet last_good_results;
  /// Shed radius applied to clusters owned by this shard (cached from the
  /// shard's shedder after each maintenance round).
  double nucleus_radius = 0.0;

  // Per-round load figures for --rebalance=observe and telemetry.
  double last_busy_seconds = 0.0;
  uint64_t last_ghosts = 0;       ///< Ghosts published into this shard.
  uint64_t last_comparisons = 0;  ///< Join comparisons delta this round.
};

}  // namespace scuba

#endif  // SCUBA_SHARD_ENGINE_SHARD_H_
