// NaiveJoinEngine: nested-loop oracle.
//
// Keeps only the latest update per entity and evaluates every query against
// every object with the exact point-in-rectangle predicate. O(|O| x |Q|) per
// round — far too slow for the paper's workloads, but it defines ground truth
// for correctness and accuracy comparisons.

#ifndef SCUBA_BASELINE_NAIVE_JOIN_ENGINE_H_
#define SCUBA_BASELINE_NAIVE_JOIN_ENGINE_H_

#include <unordered_map>

#include "core/query_processor.h"

namespace scuba {

class NaiveJoinEngine : public QueryProcessor {
 public:
  NaiveJoinEngine() = default;

  std::string_view name() const override { return "naive"; }
  Status IngestObjectUpdate(const LocationUpdate& update) override;
  Status IngestQueryUpdate(const QueryUpdate& update) override;
  Status Evaluate(Timestamp now, ResultSet* results) override;
  size_t EstimateMemoryUsage() const override;
  const EvalStats& stats() const override { return stats_; }

  size_t ObjectCount() const { return objects_.size(); }
  size_t QueryCount() const { return queries_.size(); }

 private:
  std::unordered_map<ObjectId, LocationUpdate> objects_;
  std::unordered_map<QueryId, QueryUpdate> queries_;
  EvalStats stats_;
};

}  // namespace scuba

#endif  // SCUBA_BASELINE_NAIVE_JOIN_ENGINE_H_
