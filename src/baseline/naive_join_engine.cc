#include "baseline/naive_join_engine.h"

#include "common/memory_usage.h"
#include "common/stopwatch.h"

namespace scuba {

Status NaiveJoinEngine::IngestObjectUpdate(const LocationUpdate& update) {
  SCUBA_RETURN_IF_ERROR(ValidateUpdate(update));
  objects_[update.oid] = update;
  return Status::OK();
}

Status NaiveJoinEngine::IngestQueryUpdate(const QueryUpdate& update) {
  SCUBA_RETURN_IF_ERROR(ValidateUpdate(update));
  queries_[update.qid] = update;
  return Status::OK();
}

Status NaiveJoinEngine::Evaluate(Timestamp now, ResultSet* results) {
  (void)now;
  if (results == nullptr) {
    return Status::InvalidArgument("results must be non-null");
  }
  results->Clear();
  Stopwatch sw;
  for (const auto& [qid, q] : queries_) {
    Rect range = q.Range();
    for (const auto& [oid, o] : objects_) {
      ++stats_.comparisons;
      if (range.Contains(o.position) && q.AttrsMatch(o.attrs)) {
        results->Add(qid, oid);
      }
    }
  }
  results->Normalize();
  stats_.last_join_seconds = sw.ElapsedSeconds();
  stats_.total_join_seconds += stats_.last_join_seconds;
  stats_.last_result_count = results->size();
  stats_.total_results += results->size();
  ++stats_.evaluations;
  return Status::OK();
}

size_t NaiveJoinEngine::EstimateMemoryUsage() const {
  return sizeof(NaiveJoinEngine) + UnorderedMapMemoryUsage(objects_) +
         UnorderedMapMemoryUsage(queries_);
}

}  // namespace scuba
