// QueryIndexEngine: the "Query Indexing" comparator from the paper's related
// work ([29], Prabhakar et al.): index the *queries* in an R-tree and probe it
// with each moving object's position.
//
// Our periodic variant rebuilds the STR-packed tree from the latest query
// rectangles at every evaluation round (queries move, so the index cannot be
// static); every object then probes the tree once. This keeps the comparison
// honest under the paper's workload where queries are as mobile as objects.

#ifndef SCUBA_BASELINE_QUERY_INDEX_ENGINE_H_
#define SCUBA_BASELINE_QUERY_INDEX_ENGINE_H_

#include <unordered_map>

#include "core/query_processor.h"
#include "index/rtree.h"

namespace scuba {

struct QueryIndexOptions {
  /// R-tree node fan-out.
  uint32_t max_node_entries = 16;

  Status Validate() const;
};

class QueryIndexEngine : public QueryProcessor {
 public:
  explicit QueryIndexEngine(const QueryIndexOptions& options = {})
      : options_(options) {}

  std::string_view name() const override { return "query-index"; }
  Status IngestObjectUpdate(const LocationUpdate& update) override;
  Status IngestQueryUpdate(const QueryUpdate& update) override;
  Status Evaluate(Timestamp now, ResultSet* results) override;
  size_t EstimateMemoryUsage() const override;
  const EvalStats& stats() const override { return stats_; }

  size_t ObjectCount() const { return objects_.size(); }
  size_t QueryCount() const { return queries_.size(); }
  /// Height of the query R-tree after the last Evaluate (observability).
  uint32_t LastTreeHeight() const { return tree_.height(); }

 private:
  QueryIndexOptions options_;
  std::unordered_map<ObjectId, LocationUpdate> objects_;
  std::unordered_map<QueryId, QueryUpdate> queries_;
  RTree tree_;
  EvalStats stats_;
};

}  // namespace scuba

#endif  // SCUBA_BASELINE_QUERY_INDEX_ENGINE_H_
