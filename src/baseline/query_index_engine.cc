#include "baseline/query_index_engine.h"

#include "common/memory_usage.h"
#include "common/stopwatch.h"

namespace scuba {

Status QueryIndexOptions::Validate() const {
  if (max_node_entries < 2) {
    return Status::InvalidArgument("max_node_entries must be >= 2");
  }
  return Status::OK();
}

Status QueryIndexEngine::IngestObjectUpdate(const LocationUpdate& update) {
  SCUBA_RETURN_IF_ERROR(ValidateUpdate(update));
  objects_[update.oid] = update;
  return Status::OK();
}

Status QueryIndexEngine::IngestQueryUpdate(const QueryUpdate& update) {
  SCUBA_RETURN_IF_ERROR(ValidateUpdate(update));
  queries_[update.qid] = update;
  return Status::OK();
}

Status QueryIndexEngine::Evaluate(Timestamp now, ResultSet* results) {
  (void)now;
  if (results == nullptr) {
    return Status::InvalidArgument("results must be non-null");
  }
  SCUBA_RETURN_IF_ERROR(options_.Validate());
  results->Clear();

  // Index maintenance: rebuild the STR-packed query tree from the latest
  // query rectangles (queries move every tick, so the index must follow).
  Stopwatch maint_sw;
  std::vector<RTree::Entry> entries;
  entries.reserve(queries_.size());
  for (const auto& [qid, q] : queries_) {
    entries.push_back(RTree::Entry{qid, q.Range()});
  }
  Result<RTree> tree = RTree::BulkLoad(std::move(entries),
                                       options_.max_node_entries);
  if (!tree.ok()) return tree.status();
  tree_ = std::move(tree).value();
  stats_.last_maintenance_seconds = maint_sw.ElapsedSeconds();
  stats_.total_maintenance_seconds += stats_.last_maintenance_seconds;

  // Join: every object probes the query tree once.
  Stopwatch join_sw;
  std::vector<uint32_t> hits;
  for (const auto& [oid, o] : objects_) {
    hits.clear();
    tree_.SearchPoint(o.position, &hits);
    stats_.comparisons += hits.size() + 1;  // probe + verified hits
    for (uint32_t qid : hits) {
      if (queries_.at(qid).AttrsMatch(o.attrs)) {
        results->Add(qid, oid);
      }
    }
  }
  results->Normalize();
  stats_.last_join_seconds = join_sw.ElapsedSeconds();
  stats_.total_join_seconds += stats_.last_join_seconds;
  stats_.last_result_count = results->size();
  stats_.total_results += results->size();
  ++stats_.evaluations;
  return Status::OK();
}

size_t QueryIndexEngine::EstimateMemoryUsage() const {
  return sizeof(QueryIndexEngine) + UnorderedMapMemoryUsage(objects_) +
         UnorderedMapMemoryUsage(queries_) + tree_.EstimateMemoryUsage();
}

}  // namespace scuba
