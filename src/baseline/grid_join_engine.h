// GridJoinEngine: the paper's comparator (§6, "regular execution").
//
// "A traditional grid-based spatio-temporal range algorithm, where objects
// and queries are hashed based on their locations into an index, say a grid.
// Then a cell-by-cell join between moving objects and queries is performed."
//
// Objects are indexed by their point; queries by their monitored rectangle
// (so a query spanning several cells joins against each). Every individual
// update occupies its own grid entry — exactly the memory behaviour Figure 9b
// contrasts with SCUBA's one-entry-per-cluster.

#ifndef SCUBA_BASELINE_GRID_JOIN_ENGINE_H_
#define SCUBA_BASELINE_GRID_JOIN_ENGINE_H_

#include <memory>
#include <unordered_map>

#include "core/query_processor.h"
#include "index/grid_index.h"

namespace scuba {

struct GridJoinOptions {
  /// Grid granularity: cells per side.
  uint32_t grid_cells = 100;
  /// Data space covered by the grid.
  Rect region{0.0, 0.0, 10000.0, 10000.0};

  Status Validate() const;
};

class GridJoinEngine : public QueryProcessor {
 public:
  static Result<std::unique_ptr<GridJoinEngine>> Create(
      const GridJoinOptions& options);

  std::string_view name() const override { return "regular-grid"; }
  Status IngestObjectUpdate(const LocationUpdate& update) override;
  Status IngestQueryUpdate(const QueryUpdate& update) override;
  Status Evaluate(Timestamp now, ResultSet* results) override;
  size_t EstimateMemoryUsage() const override;
  const EvalStats& stats() const override { return stats_; }

  size_t ObjectCount() const { return objects_.size(); }
  size_t QueryCount() const { return queries_.size(); }
  const GridIndex& object_grid() const { return object_grid_; }
  const GridIndex& query_grid() const { return query_grid_; }

 private:
  GridJoinEngine(const GridJoinOptions& options, GridIndex object_grid,
                 GridIndex query_grid);

  /// Accumulates grid-upkeep time (reported as maintenance at Evaluate).
  void AccumulateMaintenance(double seconds) {
    pending_maintenance_seconds_ += seconds;
  }

  GridJoinOptions options_;
  double pending_maintenance_seconds_ = 0.0;
  GridIndex object_grid_;
  GridIndex query_grid_;
  std::unordered_map<ObjectId, LocationUpdate> objects_;
  std::unordered_map<QueryId, QueryUpdate> queries_;
  EvalStats stats_;
};

}  // namespace scuba

#endif  // SCUBA_BASELINE_GRID_JOIN_ENGINE_H_
