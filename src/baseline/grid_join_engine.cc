#include "baseline/grid_join_engine.h"

#include "common/check.h"
#include "common/memory_usage.h"
#include "common/stopwatch.h"

namespace scuba {

Status GridJoinOptions::Validate() const {
  if (grid_cells == 0) {
    return Status::InvalidArgument("grid_cells must be positive");
  }
  if (region.Empty() || region.Width() <= 0.0 || region.Height() <= 0.0) {
    return Status::InvalidArgument("region must have positive area");
  }
  return Status::OK();
}

Result<std::unique_ptr<GridJoinEngine>> GridJoinEngine::Create(
    const GridJoinOptions& options) {
  SCUBA_RETURN_IF_ERROR(options.Validate());
  Result<GridIndex> object_grid =
      GridIndex::Create(options.region, options.grid_cells);
  if (!object_grid.ok()) return object_grid.status();
  Result<GridIndex> query_grid =
      GridIndex::Create(options.region, options.grid_cells);
  if (!query_grid.ok()) return query_grid.status();
  return std::unique_ptr<GridJoinEngine>(
      new GridJoinEngine(options, std::move(object_grid).value(),
                         std::move(query_grid).value()));
}

GridJoinEngine::GridJoinEngine(const GridJoinOptions& options,
                               GridIndex object_grid, GridIndex query_grid)
    : options_(options),
      object_grid_(std::move(object_grid)),
      query_grid_(std::move(query_grid)) {}

Status GridJoinEngine::IngestObjectUpdate(const LocationUpdate& update) {
  SCUBA_RETURN_IF_ERROR(ValidateUpdate(update));
  Stopwatch sw;
  auto [it, inserted] = objects_.insert_or_assign(update.oid, update);
  (void)it;
  Status s = inserted ? object_grid_.Insert(update.oid, update.position)
                      : object_grid_.Update(update.oid, update.position);
  AccumulateMaintenance(sw.ElapsedSeconds());
  return s;
}

Status GridJoinEngine::IngestQueryUpdate(const QueryUpdate& update) {
  SCUBA_RETURN_IF_ERROR(ValidateUpdate(update));
  Stopwatch sw;
  auto [it, inserted] = queries_.insert_or_assign(update.qid, update);
  (void)it;
  Status s = inserted ? query_grid_.Insert(update.qid, update.Range())
                      : query_grid_.Update(update.qid, update.Range());
  AccumulateMaintenance(sw.ElapsedSeconds());
  return s;
}

Status GridJoinEngine::Evaluate(Timestamp now, ResultSet* results) {
  (void)now;
  if (results == nullptr) {
    return Status::InvalidArgument("results must be non-null");
  }
  results->Clear();
  Stopwatch sw;
  // Cell-by-cell join: each object lives in exactly one cell, so a (query,
  // object) pair is tested once per object cell the query overlaps — at most
  // once, since the object has one cell.
  const uint32_t cells = static_cast<uint32_t>(object_grid_.CellCount());
  for (uint32_t cell = 0; cell < cells; ++cell) {
    const std::vector<uint32_t>& cell_queries = query_grid_.CellEntries(cell);
    if (cell_queries.empty()) continue;
    const std::vector<uint32_t>& cell_objects = object_grid_.CellEntries(cell);
    if (cell_objects.empty()) continue;
    for (uint32_t qid : cell_queries) {
      const QueryUpdate& q = queries_.at(qid);
      Rect range = q.Range();
      for (uint32_t oid : cell_objects) {
        ++stats_.comparisons;
        const LocationUpdate& o = objects_.at(oid);
        if (range.Contains(o.position) && q.AttrsMatch(o.attrs)) {
          results->Add(qid, oid);
        }
      }
    }
  }
  results->Normalize();
  stats_.last_join_seconds = sw.ElapsedSeconds();
  stats_.total_join_seconds += stats_.last_join_seconds;
  stats_.last_result_count = results->size();
  stats_.total_results += results->size();
  ++stats_.evaluations;
  stats_.last_maintenance_seconds = pending_maintenance_seconds_;
  stats_.total_maintenance_seconds += pending_maintenance_seconds_;
  pending_maintenance_seconds_ = 0.0;
  return Status::OK();
}

size_t GridJoinEngine::EstimateMemoryUsage() const {
  return sizeof(GridJoinEngine) + object_grid_.EstimateMemoryUsage() +
         query_grid_.EstimateMemoryUsage() +
         UnorderedMapMemoryUsage(objects_) + UnorderedMapMemoryUsage(queries_);
}

}  // namespace scuba
