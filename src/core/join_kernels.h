// Batched member-level kernels for the cluster join hot path.
//
// The join-within step (paper Algorithm 3) evaluates the same tiny predicates
// — point-in-rectangle, attribute-mask subset, rectangle/circle overlap —
// over every member of a cluster pair. The ClusterJoinExecutor lays member
// state out as structure-of-arrays slabs (see cluster_join.h) so these
// kernels can sweep a whole block per call: contiguous loads, no per-member
// branches on the emission path, and loop bodies simple enough for the
// compiler to autovectorize (plain loops by design — no intrinsics; see
// bench/bench_join_kernels.cc for the measured win over the scalar path).
//
// Contract (the bit-identity guarantee the join relies on): every kernel
// evaluates exactly the geometry/bit predicates of the scalar reference —
// Rect::Contains, Intersects(Rect, Circle), (attrs & required) == required —
// on elements in ascending index order, and emits match indices in that
// order. Driving ResultSet::Add from kernel output therefore reproduces the
// pre-SoA scalar loops bit for bit: same comparisons, same emission order.

#ifndef SCUBA_CORE_JOIN_KERNELS_H_
#define SCUBA_CORE_JOIN_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "geometry/circle.h"
#include "geometry/rect.h"

namespace scuba {

/// One cluster's exact (non-shed) object members as SoA spans. Pointers alias
/// the executor's slab arena; `count` elements each.
struct ObjectSlabView {
  const double* xs = nullptr;
  const double* ys = nullptr;
  const uint32_t* oids = nullptr;
  const uint64_t* attrs = nullptr;
  uint32_t count = 0;
};

/// One cluster's exact query members as precomputed range rectangles (the
/// hoisted Rect::Centered of each query), SoA spans into the slab arena.
struct QueryRectSlabView {
  const double* min_xs = nullptr;
  const double* min_ys = nullptr;
  const double* max_xs = nullptr;
  const double* max_ys = nullptr;
  uint32_t count = 0;
};

/// Rect-contains-points kernel: writes the indices i (ascending) whose point
/// (xs[i], ys[i]) lies in the closed rectangle `range` — exactly
/// Rect::Contains — into `out_indices` (capacity >= objects.count).
/// Returns the number of matches.
size_t RectContainsPoints(const Rect& range, const ObjectSlabView& objects,
                          uint32_t* out_indices);

/// Attrs-mask filter kernel: compacts `indices` (in place, order preserved)
/// down to those i with (attrs[i] & required_attrs) == required_attrs.
/// Returns the new count. `required_attrs` of 0 admits everything (callers
/// skip the call).
size_t FilterByAttrs(const uint64_t* attrs, uint64_t required_attrs,
                     uint32_t* indices, size_t count);

/// Circle/rect overlap pre-filter kernel: out_mask[i] = 1 iff rectangle i
/// intersects disk `c` — exactly Intersects(Rect, Circle), empty rectangles
/// excluded. `out_mask` must hold rects.count bytes. This is the per-query
/// fine filter batched over a whole query slab.
void RectCircleOverlap(const QueryRectSlabView& rects, const Circle& c,
                       uint8_t* out_mask);

}  // namespace scuba

#endif  // SCUBA_CORE_JOIN_KERNELS_H_
