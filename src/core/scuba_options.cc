#include "core/scuba_options.h"

namespace scuba {

std::string_view BadUpdatePolicyName(BadUpdatePolicy policy) {
  switch (policy) {
    case BadUpdatePolicy::kStrict:
      return "strict";
    case BadUpdatePolicy::kQuarantine:
      return "quarantine";
    case BadUpdatePolicy::kRepair:
      return "repair";
  }
  return "unknown";
}

Result<BadUpdatePolicy> ParseBadUpdatePolicy(std::string_view name) {
  if (name == "strict") return BadUpdatePolicy::kStrict;
  if (name == "quarantine") return BadUpdatePolicy::kQuarantine;
  if (name == "repair") return BadUpdatePolicy::kRepair;
  return Status::InvalidArgument("unknown bad-update policy: " +
                                 std::string(name) +
                                 " (strict|quarantine|repair)");
}

std::string_view ShardFailurePolicyName(ShardFailurePolicy policy) {
  switch (policy) {
    case ShardFailurePolicy::kFail:
      return "fail";
    case ShardFailurePolicy::kDegrade:
      return "degrade";
    case ShardFailurePolicy::kReassign:
      return "reassign";
  }
  return "unknown";
}

Result<ShardFailurePolicy> ParseShardFailurePolicy(std::string_view name) {
  if (name == "fail") return ShardFailurePolicy::kFail;
  if (name == "degrade") return ShardFailurePolicy::kDegrade;
  if (name == "reassign") return ShardFailurePolicy::kReassign;
  return Status::InvalidArgument("unknown shard-failure policy: " +
                                 std::string(name) +
                                 " (fail|degrade|reassign)");
}

std::string_view RebalanceModeName(RebalanceMode mode) {
  switch (mode) {
    case RebalanceMode::kOff:
      return "off";
    case RebalanceMode::kObserve:
      return "observe";
  }
  return "unknown";
}

Result<RebalanceMode> ParseRebalanceMode(std::string_view name) {
  if (name == "off") return RebalanceMode::kOff;
  if (name == "observe") return RebalanceMode::kObserve;
  return Status::InvalidArgument("unknown rebalance mode: " +
                                 std::string(name) + " (off|observe)");
}

Status ScubaOptions::Validate() const {
  if (theta_d < 0.0) {
    return Status::InvalidArgument("theta_d must be non-negative");
  }
  if (theta_s < 0.0) {
    return Status::InvalidArgument("theta_s must be non-negative");
  }
  if (grid_cells == 0) {
    return Status::InvalidArgument("grid_cells must be positive");
  }
  if (region.Empty() || region.Width() <= 0.0 || region.Height() <= 0.0) {
    return Status::InvalidArgument("region must have positive area");
  }
  if (delta <= 0) {
    return Status::InvalidArgument("delta must be positive");
  }
  if (grid_sync_padding < 0.0) {
    return Status::InvalidArgument("grid_sync_padding must be non-negative");
  }
  if (enable_cluster_splitting && split_radius_factor <= 0.0) {
    return Status::InvalidArgument("split_radius_factor must be positive");
  }
  // 0 means hardware concurrency; the cap catches garbage values (threads
  // beyond any plausible core count would only add scheduling overhead).
  if (join_threads > 1024) {
    return Status::InvalidArgument("join_threads must be in [0, 1024]");
  }
  if (ingest_threads > 1024) {
    return Status::InvalidArgument("ingest_threads must be in [0, 1024]");
  }
  // Stripes beyond the row count are zero-area and legal (they simply own no
  // cells); the cap catches garbage values like the thread counts above.
  if (shards == 0 || shards > 1024) {
    return Status::InvalidArgument("shards must be in [1, 1024]");
  }
  if (supervision.max_recovery_attempts == 0) {
    return Status::InvalidArgument(
        "supervision.max_recovery_attempts must be >= 1");
  }
  if (supervision.backoff_base_rounds == 0) {
    return Status::InvalidArgument(
        "supervision.backoff_base_rounds must be >= 1");
  }
  if (supervision.round_deadline_seconds < 0.0) {
    return Status::InvalidArgument(
        "supervision.round_deadline_seconds must be non-negative");
  }
  if (supervision.fault_rate < 0.0 || supervision.fault_rate > 1.0) {
    return Status::InvalidArgument("supervision.fault_rate must be in [0, 1]");
  }
  if (checkpoint.keep_last_k == 0) {
    return Status::InvalidArgument("checkpoint.keep_last_k must be >= 1");
  }
  if (checkpoint.wal_segment_bytes < 4096) {
    return Status::InvalidArgument(
        "checkpoint.wal_segment_bytes must be >= 4096");
  }
  if (shedding.eta < 0.0 || shedding.eta > 1.0) {
    return Status::InvalidArgument("shedding eta must be in [0, 1]");
  }
  if (shedding.mode == LoadSheddingMode::kAdaptive) {
    if (shedding.memory_budget_bytes == 0) {
      return Status::InvalidArgument(
          "adaptive shedding needs a memory budget");
    }
    if (shedding.eta_step <= 0.0 || shedding.eta_step > 1.0) {
      return Status::InvalidArgument("eta_step must be in (0, 1]");
    }
    if (shedding.relax_fraction <= 0.0 || shedding.relax_fraction >= 1.0) {
      return Status::InvalidArgument("relax_fraction must be in (0, 1)");
    }
  }
  return Status::OK();
}

}  // namespace scuba
