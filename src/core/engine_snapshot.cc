#include "core/engine_snapshot.h"

#include <cstdio>

namespace scuba {

std::string EngineSnapshotStats::Format(std::string_view engine_name) const {
  char buf[512];
  int n = std::snprintf(
      buf, sizeof(buf),
      "%-14.*s evals=%llu join=%.4fs maint=%.4fs results=%llu "
      "comparisons=%llu pairs=%llu/%llu",
      static_cast<int>(engine_name.size()), engine_name.data(),
      static_cast<unsigned long long>(eval.evaluations),
      eval.total_join_seconds, eval.total_maintenance_seconds,
      static_cast<unsigned long long>(eval.total_results),
      static_cast<unsigned long long>(eval.comparisons),
      static_cast<unsigned long long>(eval.cluster_pairs_overlapping),
      static_cast<unsigned long long>(eval.cluster_pairs_tested));
  if (eval.join_threads > 1 && n > 0 && static_cast<size_t>(n) < sizeof(buf)) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                       " threads=%u speedup=%.2fx", eval.join_threads,
                       JoinParallelSpeedup());
  }
  // The ingest/post-join split appears only for parallel ingest, so serial
  // configurations keep the historical one-line format byte for byte.
  if (eval.ingest_threads > 1 && n > 0 &&
      static_cast<size_t>(n) < sizeof(buf)) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                       " ingest=%.4fs postjoin=%.4fs ingest-threads=%u "
                       "ingest-speedup=%.2fx",
                       eval.total_ingest_seconds, eval.total_postjoin_seconds,
                       eval.ingest_threads, IngestParallelSpeedup());
  }
  // Hardening counters appear only when something actually happened, so
  // clean serial runs keep the historical one-line format byte for byte.
  if (eval.updates_quarantined > 0 && n > 0 &&
      static_cast<size_t>(n) < sizeof(buf)) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                       " quarantined=%llu",
                       static_cast<unsigned long long>(
                           eval.updates_quarantined));
  }
  if (eval.invariant_audits > 0 && n > 0 &&
      static_cast<size_t>(n) < sizeof(buf)) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                       " audits=%llu violations=%llu repairs=%llu",
                       static_cast<unsigned long long>(eval.invariant_audits),
                       static_cast<unsigned long long>(
                           eval.invariant_violations),
                       static_cast<unsigned long long>(
                           eval.invariant_repairs));
  }
  // Durability counters appear only once a WAL record or snapshot exists, so
  // non-durable runs keep the historical format byte for byte.
  if ((eval.wal_records_appended > 0 || eval.checkpoints_written > 0) &&
      n > 0 && static_cast<size_t>(n) < sizeof(buf)) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                       " wal-records=%llu wal-bytes=%llu checkpoints=%llu",
                       static_cast<unsigned long long>(
                           eval.wal_records_appended),
                       static_cast<unsigned long long>(
                           eval.wal_bytes_appended),
                       static_cast<unsigned long long>(
                           eval.checkpoints_written));
  }
  if (eval.recovery_replay_rounds > 0 && n > 0 &&
      static_cast<size_t>(n) < sizeof(buf)) {
    std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                  " replayed-rounds=%llu",
                  static_cast<unsigned long long>(
                      eval.recovery_replay_rounds));
  }
  return buf;
}

double EngineSnapshotStats::AvgJoinSeconds() const {
  if (eval.evaluations == 0) return 0.0;
  return eval.total_join_seconds / static_cast<double>(eval.evaluations);
}

double EngineSnapshotStats::AvgMaintenanceSeconds() const {
  if (eval.evaluations == 0) return 0.0;
  return eval.total_maintenance_seconds /
         static_cast<double>(eval.evaluations);
}

double EngineSnapshotStats::JoinBetweenSelectivity() const {
  if (eval.cluster_pairs_tested == 0) return 0.0;
  return static_cast<double>(eval.cluster_pairs_overlapping) /
         static_cast<double>(eval.cluster_pairs_tested);
}

double EngineSnapshotStats::JoinParallelSpeedup() const {
  if (eval.total_join_seconds <= 0.0) return 0.0;
  return eval.total_join_worker_seconds / eval.total_join_seconds;
}

double EngineSnapshotStats::JoinParallelEfficiency() const {
  if (eval.join_threads == 0) return 0.0;
  return JoinParallelSpeedup() / static_cast<double>(eval.join_threads);
}

double EngineSnapshotStats::IngestParallelSpeedup() const {
  if (eval.total_ingest_seconds <= 0.0) return 0.0;
  return eval.total_ingest_worker_seconds / eval.total_ingest_seconds;
}

double EngineSnapshotStats::PostJoinParallelSpeedup() const {
  if (eval.total_postjoin_seconds <= 0.0) return 0.0;
  return eval.total_postjoin_worker_seconds / eval.total_postjoin_seconds;
}

}  // namespace scuba
