#include "core/result_delta.h"

#include <algorithm>

namespace scuba {

ResultDelta DiffResults(const ResultSet& previous, const ResultSet& current) {
  ResultDelta delta;
  const std::vector<Match>& p = previous.matches();
  const std::vector<Match>& c = current.matches();
  size_t i = 0;
  size_t j = 0;
  while (i < p.size() && j < c.size()) {
    if (p[i] == c[j]) {
      ++i;
      ++j;
    } else if (p[i] < c[j]) {
      delta.removed.push_back(p[i++]);
    } else {
      delta.added.push_back(c[j++]);
    }
  }
  delta.removed.insert(delta.removed.end(), p.begin() + static_cast<ptrdiff_t>(i),
                       p.end());
  delta.added.insert(delta.added.end(), c.begin() + static_cast<ptrdiff_t>(j),
                     c.end());
  return delta;
}

ResultSet ApplyDelta(const ResultSet& base, const ResultDelta& delta) {
  // Both inputs are sorted; removed ⊆ base and added ∩ base = ∅, so a single
  // merge produces the (sorted) result.
  ResultSet out;
  const std::vector<Match>& b = base.matches();
  size_t ri = 0;  // removed cursor
  size_t ai = 0;  // added cursor
  for (const Match& m : b) {
    if (ri < delta.removed.size() && delta.removed[ri] == m) {
      ++ri;
      continue;
    }
    while (ai < delta.added.size() && delta.added[ai] < m) {
      out.Add(delta.added[ai].qid, delta.added[ai].oid);
      ++ai;
    }
    out.Add(m.qid, m.oid);
  }
  for (; ai < delta.added.size(); ++ai) {
    out.Add(delta.added[ai].qid, delta.added[ai].oid);
  }
  return out;
}

ResultDelta IncrementalResultTracker::Observe(const ResultSet& current) {
  ResultDelta delta = DiffResults(previous_, current);
  previous_ = current;
  ++rounds_;
  return delta;
}

}  // namespace scuba
