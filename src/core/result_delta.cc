#include "core/result_delta.h"

#include <algorithm>

namespace scuba {
namespace {

/// Ascending + duplicate-free: the ordering contract both delta vectors and
/// the wire decoder enforce.
bool StrictlyAscending(const std::vector<Match>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (!(v[i - 1] < v[i])) return false;
  }
  return true;
}

void SaveMatches(const std::vector<Match>& v, ByteWriter* writer) {
  writer->PutU64(v.size());
  for (const Match& m : v) {
    writer->PutU32(m.qid);
    writer->PutU32(m.oid);
  }
}

Status LoadMatches(ByteReader* reader, const char* what,
                   std::vector<Match>* v) {
  uint64_t n = 0;
  SCUBA_RETURN_IF_ERROR(reader->GetU64(&n));
  // Each match costs 8 payload bytes; a count the remaining bytes cannot
  // cover is truncation (and guards the reserve below against hostile
  // lengths).
  if (n > reader->Remaining() / 8) {
    return Status::DataLoss(std::string(what) + " count " + std::to_string(n) +
                            " overruns the remaining payload");
  }
  v->clear();
  v->reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    Match m;
    SCUBA_RETURN_IF_ERROR(reader->GetU32(&m.qid));
    SCUBA_RETURN_IF_ERROR(reader->GetU32(&m.oid));
    v->push_back(m);
  }
  if (!StrictlyAscending(*v)) {
    return Status::Corruption(std::string(what) +
                              " vector is not ascending/duplicate-free");
  }
  return Status::OK();
}

}  // namespace

void ResultDelta::Save(ByteWriter* writer) const {
  writer->PutU64(round);
  writer->PutI64(time);
  writer->PutU64(degraded_shards.size());
  for (uint32_t s : degraded_shards) writer->PutU32(s);
  SaveMatches(added, writer);
  SaveMatches(removed, writer);
}

Status ResultDelta::Load(ByteReader* reader, ResultDelta* delta) {
  *delta = ResultDelta{};
  SCUBA_RETURN_IF_ERROR(reader->GetU64(&delta->round));
  SCUBA_RETURN_IF_ERROR(reader->GetI64(&delta->time));
  uint64_t shards = 0;
  SCUBA_RETURN_IF_ERROR(reader->GetU64(&shards));
  if (shards > reader->Remaining() / 4) {
    return Status::DataLoss("degraded-shard count " + std::to_string(shards) +
                            " overruns the remaining payload");
  }
  delta->degraded_shards.reserve(static_cast<size_t>(shards));
  for (uint64_t i = 0; i < shards; ++i) {
    uint32_t s = 0;
    SCUBA_RETURN_IF_ERROR(reader->GetU32(&s));
    delta->degraded_shards.push_back(s);
  }
  SCUBA_RETURN_IF_ERROR(LoadMatches(reader, "added", &delta->added));
  SCUBA_RETURN_IF_ERROR(LoadMatches(reader, "removed", &delta->removed));
  // added ∩ removed = ∅ by construction (an element cannot enter and leave in
  // the same round); enforce it so ApplyDelta stays well-defined on decoded
  // bytes.
  std::vector<Match> overlap;
  std::set_intersection(delta->added.begin(), delta->added.end(),
                        delta->removed.begin(), delta->removed.end(),
                        std::back_inserter(overlap));
  if (!overlap.empty()) {
    return Status::Corruption("added and removed sets overlap");
  }
  return Status::OK();
}

ResultDelta DiffResults(const ResultSet& previous, const ResultSet& current) {
  ResultDelta delta;
  delta.degraded_shards = current.degraded_shards();
  const std::vector<Match>& p = previous.matches();
  const std::vector<Match>& c = current.matches();
  size_t i = 0;
  size_t j = 0;
  while (i < p.size() && j < c.size()) {
    if (p[i] == c[j]) {
      ++i;
      ++j;
    } else if (p[i] < c[j]) {
      delta.removed.push_back(p[i++]);
    } else {
      delta.added.push_back(c[j++]);
    }
  }
  delta.removed.insert(delta.removed.end(), p.begin() + static_cast<ptrdiff_t>(i),
                       p.end());
  delta.added.insert(delta.added.end(), c.begin() + static_cast<ptrdiff_t>(j),
                     c.end());
  return delta;
}

ResultSet ApplyDelta(const ResultSet& base, const ResultDelta& delta) {
  // Both inputs are sorted; removed ⊆ base and added ∩ base = ∅, so a single
  // merge produces the (sorted) result.
  ResultSet out;
  const std::vector<Match>& b = base.matches();
  size_t ri = 0;  // removed cursor
  size_t ai = 0;  // added cursor
  for (const Match& m : b) {
    if (ri < delta.removed.size() && delta.removed[ri] == m) {
      ++ri;
      continue;
    }
    while (ai < delta.added.size() && delta.added[ai] < m) {
      out.Add(delta.added[ai].qid, delta.added[ai].oid);
      ++ai;
    }
    out.Add(m.qid, m.oid);
  }
  for (; ai < delta.added.size(); ++ai) {
    out.Add(delta.added[ai].qid, delta.added[ai].oid);
  }
  for (uint32_t s : delta.degraded_shards) out.MarkDegraded(s);
  return out;
}

ResultDelta IncrementalResultTracker::Observe(const ResultSet& current,
                                              Timestamp now) {
  ResultDelta delta = DiffResults(current_, current);
  current_ = current;
  ++rounds_;
  time_ = now;
  delta.round = rounds_;
  delta.time = now;
  return delta;
}

ResultDelta IncrementalResultTracker::DeltaSince(const ResultSet& base) const {
  ResultDelta delta = DiffResults(base, current_);
  delta.round = rounds_;
  delta.time = time_;
  return delta;
}

void IncrementalResultTracker::Reset() {
  current_ = ResultSet{};
  rounds_ = 0;
  time_ = 0;
}

}  // namespace scuba
