// Cluster-based k-nearest-neighbour search (extension).
//
// The paper (§1) notes SCUBA's structures extend beyond range queries: "for
// kNN queries, moving clusters that are not intersecting with other moving
// clusters and contain at least k members can be assumed to contain nearest
// members of the query object". This module implements that idea over the
// engine's ClusterStore/ClusterGrid: an expanding ring search over grid cells
// gathers candidate clusters until the k-th best distance is certainly
// covered, then ranks candidate objects by exact reconstructed distance.
// (Distances of shed members are approximated by their nucleus, so results
// under load shedding are approximate — as intended.)

#ifndef SCUBA_CORE_KNN_H_
#define SCUBA_CORE_KNN_H_

#include <vector>

#include "cluster/cluster_store.h"
#include "common/status.h"
#include "core/result_set.h"
#include "index/grid_index.h"

namespace scuba {

struct KnnNeighbor {
  ObjectId oid = 0;
  double distance = 0.0;

  friend bool operator==(const KnnNeighbor&, const KnnNeighbor&) = default;
};

/// k nearest moving objects to `query` using the cluster grid to prune.
/// Returns fewer than k neighbours when fewer objects exist. Fails on k == 0.
Result<std::vector<KnnNeighbor>> ClusterKnn(const ClusterStore& store,
                                            const GridIndex& cluster_grid,
                                            Point query, size_t k);

/// Exact oracle: scans every object member in the store.
Result<std::vector<KnnNeighbor>> BruteForceKnn(const ClusterStore& store,
                                               Point query, size_t k);

}  // namespace scuba

#endif  // SCUBA_CORE_KNN_H_
