#include "core/join_kernels.h"

#include <algorithm>

namespace scuba {

// The emission loops below use the branchless conditional-append idiom
// (`out[n] = i; n += matched;`): the store always happens, the cursor only
// advances on a match. No branch, no misprediction on random data, and the
// predicate half of the body is a straight-line comparison chain the
// autovectorizer handles. Indices come out ascending by construction.

size_t RectContainsPoints(const Rect& range, const ObjectSlabView& objects,
                          uint32_t* out_indices) {
  const double min_x = range.min_x;
  const double max_x = range.max_x;
  const double min_y = range.min_y;
  const double max_y = range.max_y;
  const double* xs = objects.xs;
  const double* ys = objects.ys;
  size_t n = 0;
  for (uint32_t i = 0; i < objects.count; ++i) {
    // Same comparisons as Rect::Contains(Point), with & in place of && so
    // the body stays branch-free (the operands are plain bools; no
    // side effects to short-circuit away).
    const bool inside = (xs[i] >= min_x) & (xs[i] <= max_x) &
                        (ys[i] >= min_y) & (ys[i] <= max_y);
    out_indices[n] = i;
    n += inside;
  }
  return n;
}

size_t FilterByAttrs(const uint64_t* attrs, uint64_t required_attrs,
                     uint32_t* indices, size_t count) {
  // In-place compaction is safe: the write cursor never passes the read
  // cursor, so indices[n] only overwrites entries already consumed.
  size_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint32_t idx = indices[i];
    indices[n] = idx;
    n += ((attrs[idx] & required_attrs) == required_attrs);
  }
  return n;
}

void RectCircleOverlap(const QueryRectSlabView& rects, const Circle& c,
                       uint8_t* __restrict out_mask) {
  // out_mask is a byte pointer and would otherwise be assumed to alias the
  // coordinate slabs (char types alias everything), serializing the loop;
  // __restrict restores the disjointness the arena layout guarantees.
  const double* __restrict min_xs = rects.min_xs;
  const double* __restrict min_ys = rects.min_ys;
  const double* __restrict max_xs = rects.max_xs;
  const double* __restrict max_ys = rects.max_ys;
  const double cx = c.center.x;
  const double cy = c.center.y;
  const double r2 = c.radius * c.radius;
  for (uint32_t i = 0; i < rects.count; ++i) {
    // Branchless restatement of Intersects(Rect, Circle): min/max produce
    // the same closest point as ClosestPointInRect's std::clamp on every
    // non-empty rectangle, and the same subtraction/square/sum then runs
    // with the same rounding — so hit matches the scalar predicate decision
    // for decision. Empty rectangles (min > max) are masked out by the
    // trailing comparisons instead of an early return, mirroring the
    // Empty() guard without control flow.
    const double lo_x = min_xs[i];
    const double hi_x = max_xs[i];
    const double lo_y = min_ys[i];
    const double hi_y = max_ys[i];
    const double dx = std::min(std::max(cx, lo_x), hi_x) - cx;
    const double dy = std::min(std::max(cy, lo_y), hi_y) - cy;
    const bool hit =
        (dx * dx + dy * dy <= r2) & (lo_x <= hi_x) & (lo_y <= hi_y);
    out_mask[i] = static_cast<uint8_t>(hit);
  }
}

}  // namespace scuba
