// ClusterJoinExecutor: the cluster-based joining phase (paper §4, Algorithms
// 1-3), decoupled from the engine so it can run over any populated
// ClusterStore/ClusterGrid — the engine's incrementally maintained clusters,
// or clusters built offline by K-means (the §6.4 comparison).
//
// Per grid cell, every kind-complementary cluster pair goes through the cheap
// circle-overlap join-between; overlapping pairs (and mixed clusters, against
// themselves) proceed to the member-level join-within. Shed members are
// grouped per nucleus so one predicate covers the whole group (§5).

#ifndef SCUBA_CORE_CLUSTER_JOIN_H_
#define SCUBA_CORE_CLUSTER_JOIN_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cluster_store.h"
#include "common/status.h"
#include "core/result_set.h"
#include "index/grid_index.h"

namespace scuba {

class ClusterJoinExecutor {
 public:
  /// Cumulative counters across Execute() calls.
  struct Counters {
    uint64_t comparisons = 0;           ///< Individual predicate evaluations.
    uint64_t pairs_tested = 0;          ///< Join-between tests.
    uint64_t pairs_overlapping = 0;     ///< Join-between positives.
    uint64_t within_joins_single = 0;   ///< Same-cluster join-within runs.
    uint64_t within_joins_pair = 0;     ///< Cross-cluster join-within runs.
  };

  /// query_reach_aware selects the lossless inflated join-between bounds
  /// (default) versus the paper's pure member circles (ablation).
  explicit ClusterJoinExecutor(bool query_reach_aware = true)
      : query_reach_aware_(query_reach_aware) {}

  /// Runs one full joining phase: every cluster in `grid` must exist in
  /// `store`. Results are normalized.
  Status Execute(const ClusterStore& store, const GridIndex& grid,
                 ResultSet* results);

  const Counters& counters() const { return counters_; }

  /// Scratch-space heap footprint (pair-dedup set + view cache).
  size_t EstimateMemoryUsage() const;

 private:
  /// An exact (non-shed) object member, position precomputed.
  struct ExactObject {
    Point position;
    ObjectId oid;
    uint64_t attrs;  ///< For query attribute predicates.
  };
  /// An exact (non-shed) query member, position precomputed.
  struct ExactQuery {
    Point position;
    double width;
    double height;
    QueryId qid;
    uint64_t required_attrs;  ///< 0 = unfiltered.
  };
  /// A shed object: reconstructs at the nucleus center.
  struct NucleusObject {
    ObjectId oid;
    uint64_t attrs;
  };
  /// Members shed into one nucleus: they reconstruct to the same center with
  /// the same approximation radius, so one predicate covers the group.
  struct NucleusGroup {
    Point center;
    double radius = 0.0;
    std::vector<NucleusObject> objects;
    std::vector<ExactQuery> queries;  ///< Shed queries (center = nucleus).
  };
  /// Per-cluster join-side view, built once per Execute().
  struct JoinView {
    /// The cluster's member circle (covers every member position including
    /// nucleus disks); used as a per-query fine filter: a query whose
    /// rectangle misses this circle cannot match any member, even when the
    /// coarse cluster-pair bounds overlapped.
    Circle bounds;
    std::vector<ExactObject> objects;
    std::vector<ExactQuery> queries;
    std::vector<NucleusGroup> nuclei;
  };

  bool DoBetweenClusterJoin(const MovingCluster& left,
                            const MovingCluster& right);
  const JoinView& ViewOf(const MovingCluster& cluster);
  void JoinObjectsToQueries(const JoinView& objects_view,
                            const JoinView& queries_view, ResultSet* results);

  bool query_reach_aware_;
  Counters counters_;
  std::unordered_set<uint64_t> seen_pairs_;
  std::unordered_map<ClusterId, JoinView> view_cache_;
};

}  // namespace scuba

#endif  // SCUBA_CORE_CLUSTER_JOIN_H_
