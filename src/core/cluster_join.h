// ClusterJoinExecutor: the cluster-based joining phase (paper §4, Algorithms
// 1-3), decoupled from the engine so it can run over any populated
// ClusterStore/ClusterGrid — the engine's incrementally maintained clusters,
// or clusters built offline by K-means (the §6.4 comparison).
//
// Per grid cell, every kind-complementary cluster pair goes through the cheap
// circle-overlap join-between; overlapping pairs (and mixed clusters, against
// themselves) proceed to the member-level join-within. Shed members are
// grouped per nucleus so one predicate covers the whole group (§5).
//
// Member state is laid out as structure-of-arrays slabs: one per-executor
// arena holds every view's exact-object columns (xs/ys/ids/attrs), exact-
// query columns (xs/ys/widths/heights/qids/required_attrs plus the hoisted
// range rectangles) and sorted cell lists as contiguous spans, reused across
// rounds instead of reallocated per view. The member-level predicates run as
// batched kernels over those slabs (core/join_kernels.h) with match indices
// emitted into per-task scratch — same comparisons and emission order as the
// scalar loops they replaced, so results, counters and EngineStateHash stay
// bit-identical at every thread count (docs/ARCHITECTURE.md §10).
//
// Execution is sharded: all JoinViews are precomputed once per round into an
// immutable per-round table, grid cells are carved into contiguous chunks
// pulled by worker tasks off a shared atomic cursor, and each task emits into
// its own ResultSet/Counters, merged (and Normalize()d once) at the end. The
// scan resolves cluster ids through a dense cid→slot table (no hashing) and
// walks a flattened CSR snapshot of the grid's cell entries.
// Cross-cell deduplication needs no shared state: a cluster pair is evaluated
// only in the lowest-numbered grid cell where both clusters co-reside (the
// owner cell); a mixed cluster self-joins only in its own lowest cell. Cells
// are scanned in ascending order by the serial path too, so `threads = 1`
// reproduces the historical single-threaded executor exactly — results,
// counters and evaluation order.

#ifndef SCUBA_CORE_CLUSTER_JOIN_H_
#define SCUBA_CORE_CLUSTER_JOIN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster_store.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/result_set.h"
#include "index/grid_index.h"
#include "obs/metrics.h"

namespace scuba {

class ClusterJoinExecutor {
 public:
  friend struct PersistAccess;  ///< Snapshot serialization (src/persist).
  /// Cumulative counters across Execute() calls. With several worker tasks
  /// each accumulates privately; the merged sums are identical for every
  /// thread count (the owner-cell rule fixes *which* cell counts each event,
  /// independent of scheduling).
  struct Counters {
    uint64_t comparisons = 0;           ///< Individual predicate evaluations.
    uint64_t bounds_checks = 0;         ///< Per-query fine-filter pre-checks.
    uint64_t pairs_tested = 0;          ///< Join-between tests.
    uint64_t pairs_overlapping = 0;     ///< Join-between positives.
    uint64_t within_joins_single = 0;   ///< Same-cluster join-within runs.
    uint64_t within_joins_pair = 0;     ///< Cross-cluster join-within runs.

    Counters& operator+=(const Counters& o) {
      comparisons += o.comparisons;
      bounds_checks += o.bounds_checks;
      pairs_tested += o.pairs_tested;
      pairs_overlapping += o.pairs_overlapping;
      within_joins_single += o.within_joins_single;
      within_joins_pair += o.within_joins_pair;
      return *this;
    }
  };

  /// query_reach_aware selects the lossless inflated join-between bounds
  /// (default) versus the paper's pure member circles (ablation).
  /// threads: worker tasks per round; 0 = hardware concurrency, 1 = serial
  /// execution on the calling thread (no pool is ever created).
  explicit ClusterJoinExecutor(bool query_reach_aware = true,
                               uint32_t threads = 1);
  ~ClusterJoinExecutor();

  /// Runs one full joining phase: every cluster in `grid` must exist in
  /// `store`. Results are normalized.
  Status Execute(const ClusterStore& store, const GridIndex& grid,
                 ResultSet* results);

  /// Sharded-execution entry: like Execute(), but a cluster referenced by the
  /// grid may live in `ghosts` (read-only replicas of clusters owned by
  /// another shard, nullable) when absent from `store`, and only cells in
  /// [cell_begin, cell_end) are scanned. The owner-cell rule still resolves
  /// against each cluster's full cell list, so disjoint windows over the same
  /// geometry partition the pair work exactly — each pair is evaluated by the
  /// one window containing its owner cell.
  Status ExecuteScoped(const ClusterStore& store, const ClusterStore* ghosts,
                       const GridIndex& grid, uint32_t cell_begin,
                       uint32_t cell_end, ResultSet* results);

  const Counters& counters() const { return counters_; }

  /// Rounds whose CSR grid snapshot was reused because the grid's generation
  /// counter had not moved since the previous Execute() against it.
  uint64_t flatten_reuses() const { return flatten_reuses_; }

  /// Worker tasks Execute() fans out to (>= 1).
  uint32_t resolved_threads() const { return resolved_threads_; }

  /// Summed busy time of all worker tasks during the last Execute(). With one
  /// thread this tracks the join wall time; the wall/worker ratio is the
  /// parallel-efficiency figure EngineStats reports.
  double last_worker_seconds() const { return last_worker_seconds_; }

  /// Observability (docs/ARCHITECTURE.md §9): turns on per-task phase
  /// timing (busy time per shard, join-within seconds) and registers the
  /// executor's task-busy histogram in `registry` (may be null to collect
  /// timings without a registry). Off by default — the disabled path takes
  /// no extra clock reads.
  void AttachTelemetry(MetricsRegistry* registry);

  /// Per-task busy seconds of the last Execute() (empty unless telemetry is
  /// attached). Index = task/shard id; feeds the join shard spans and the
  /// per-shard imbalance figure.
  const std::vector<double>& last_task_busy_seconds() const {
    return last_task_busy_seconds_;
  }

  /// Seconds the last Execute() spent inside member-level join-within work,
  /// summed across tasks (0 unless telemetry is attached). The join-between
  /// share is last_worker_seconds() minus this.
  double last_within_seconds() const { return last_within_seconds_; }

  /// Scratch-space heap footprint: the SoA slab arena, view table, dense
  /// cid→slot table, CSR grid snapshot and per-task kernel scratch.
  size_t EstimateMemoryUsage() const;

 private:
  /// An exact (non-shed) query member, position precomputed. Survives only on
  /// the shed path (queries approximated at a nucleus); exact queries live in
  /// the slab arena.
  struct ExactQuery {
    Point position;
    double width;
    double height;
    QueryId qid;
    uint64_t required_attrs;  ///< 0 = unfiltered.
  };
  /// A shed object: reconstructs at the nucleus center.
  struct NucleusObject {
    ObjectId oid;
    uint64_t attrs;
  };
  /// Members shed into one nucleus: they reconstruct to the same center with
  /// the same approximation radius, so one predicate covers the group.
  struct NucleusGroup {
    Point center;
    double radius = 0.0;
    std::vector<NucleusObject> objects;
    std::vector<ExactQuery> queries;  ///< Shed queries (center = nucleus).
  };
  /// Per-cluster join-side view, rebuilt once per Execute() for every cluster
  /// registered in the grid. Immutable during the sharded scan. Member and
  /// cell data live in the executor's slab arena; the view only carries
  /// [begin, begin + count) spans into it. Nucleus groups (load-shedding
  /// only) remain per-view vectors — they are rare and tiny.
  struct JoinView {
    /// The cluster's member circle (covers every member position including
    /// nucleus disks); used as a per-query fine filter: a query whose
    /// rectangle misses this circle cannot match any member, even when the
    /// coarse cluster-pair bounds overlapped.
    Circle bounds;
    /// Join-between bounds, snapshotted so the sharded scan never touches the
    /// MovingCluster: JoinBounds() when query-reach-aware, Bounds() otherwise.
    Circle coarse;
    uint32_t obj_begin = 0;    ///< Exact-object span in the arena.
    uint32_t obj_count = 0;
    uint32_t qry_begin = 0;    ///< Exact-query span in the arena.
    uint32_t qry_count = 0;
    /// The cluster's grid cells (arena span), sorted ascending;
    /// cell 0 of the span owns the self-join, the smallest common cell of a
    /// pair owns the pair join.
    uint32_t cells_begin = 0;
    uint32_t cells_count = 0;
    std::vector<NucleusGroup> nuclei;
    bool mixed = false;       ///< HasMixedKinds(), snapshotted.
    bool has_objects = false;
    bool has_queries = false;
  };
  /// The per-executor slab arena: every view's member columns and cell lists
  /// concatenated. Resized (never shrunk below capacity) once per round in
  /// the serial sizing pass, then filled by the parallel view build — each
  /// view writes only its own disjoint spans.
  struct SlabArena {
    // Exact objects, all views concatenated.
    std::vector<double> obj_xs;
    std::vector<double> obj_ys;
    std::vector<uint32_t> obj_ids;
    std::vector<uint64_t> obj_attrs;
    // Exact queries: raw member state plus the hoisted range rectangles
    // (Rect::Centered computed once per round, not once per view pass).
    std::vector<double> qry_xs;
    std::vector<double> qry_ys;
    std::vector<double> qry_widths;
    std::vector<double> qry_heights;
    std::vector<double> qry_min_xs;
    std::vector<double> qry_min_ys;
    std::vector<double> qry_max_xs;
    std::vector<double> qry_max_ys;
    std::vector<uint32_t> qry_ids;
    std::vector<uint64_t> qry_required;
    // Per-view sorted grid-cell lists.
    std::vector<uint32_t> cells;

    void Resize(size_t objects, size_t queries, size_t cell_slots);
    size_t EstimateMemoryUsage() const;
  };
  /// Per-task kernel scratch, reused across rounds: match-index buffer sized
  /// to the largest object slab, query pre-filter mask sized to the largest
  /// query slab.
  struct JoinScratch {
    std::vector<uint32_t> indices;
    std::vector<uint8_t> mask;
  };

  /// Builds views_[slot] from `cluster` into the pre-sized arena spans.
  void FillView(uint32_t slot, const MovingCluster& cluster);
  void JoinObjectsToQueries(const JoinView& objects_view,
                            const JoinView& queries_view, JoinScratch* scratch,
                            Counters* counters, ResultSet* results) const;
  /// Kernel-driven inner join of one query rectangle against a view's object
  /// slab and object nuclei; emits matches in slab order, nuclei after.
  void EmitObjectMatches(const JoinView& objects_view, const Rect& range,
                         QueryId qid, uint64_t required_attrs,
                         JoinScratch* scratch, Counters* counters,
                         ResultSet* results) const;
  /// One worker task's share of the cell scan: drains contiguous cell chunks
  /// off the shared cursor into task-local buffers. `within_seconds`
  /// (nullable) accumulates time spent in member-level join-within work.
  void ScanCells(std::atomic<uint32_t>* next_chunk, uint32_t chunk_size,
                 uint32_t cell_limit, JoinScratch* scratch, Counters* counters,
                 ResultSet* results, double* within_seconds) const;

  bool query_reach_aware_;
  uint32_t resolved_threads_;
  Counters counters_;
  double last_worker_seconds_ = 0.0;
  /// Telemetry (AttachTelemetry): per-task busy + within timings and the
  /// task-busy histogram workers observe into (a no-op handle when no
  /// registry was attached).
  bool collect_phase_timings_ = false;
  std::vector<double> last_task_busy_seconds_;
  double last_within_seconds_ = 0.0;
  HistogramMetric task_busy_histogram_;
  /// Per-round view table (slot-compacted; cluster ids are sparse after long
  /// runs). Rebuilt each Execute(), kept until the next round so the adaptive
  /// load shedder sees the scratch footprint the join really used.
  std::vector<JoinView> views_;
  SlabArena arena_;
  /// Dense cid→slot table (kNoSlot = absent), rebuilt each round; replaces
  /// the per-entry hash lookup the cell scan used to pay.
  std::vector<uint32_t> slot_by_cid_;
  /// CSR snapshot of the grid's cell entries for the round (FlattenEntries),
  /// keyed by (grid identity, generation): when the same grid arrives with an
  /// unchanged generation counter the previous snapshot is still valid and
  /// the rebuild is skipped.
  std::vector<uint32_t> cell_offsets_;
  std::vector<uint32_t> cell_entries_;
  const GridIndex* cached_grid_ = nullptr;
  uint64_t cached_generation_ = 0;
  uint64_t flatten_reuses_ = 0;
  /// Sizing-pass scratch (slot-indexed), reused across rounds.
  std::vector<const MovingCluster*> cluster_refs_;
  std::vector<const std::vector<uint32_t>*> cell_lists_;
  std::vector<uint32_t> obj_counts_;
  std::vector<uint32_t> qry_counts_;
  /// Largest single-view slab sizes this round (scratch sizing).
  uint32_t max_view_objects_ = 0;
  uint32_t max_view_queries_ = 0;
  std::vector<JoinScratch> scratch_;  ///< One per worker task.
  /// Created on first parallel Execute(); never for resolved_threads_ == 1.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace scuba

#endif  // SCUBA_CORE_CLUSTER_JOIN_H_
