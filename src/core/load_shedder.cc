#include "core/load_shedder.h"

#include <algorithm>

namespace scuba {

LoadShedder::LoadShedder(const LoadSheddingOptions& options, double theta_d)
    : options_(options),
      theta_d_(theta_d),
      eta_(options.mode == LoadSheddingMode::kFixed ? options.eta : 0.0) {}

void LoadShedder::ObserveMemoryUsage(size_t bytes) {
  if (options_.mode != LoadSheddingMode::kAdaptive) return;
  if (bytes > options_.memory_budget_bytes) {
    double next = std::min(1.0, eta_ + options_.eta_step);
    if (next != eta_) {
      eta_ = next;
      ++adjustments_;
    }
  } else if (static_cast<double>(bytes) <
             options_.relax_fraction *
                 static_cast<double>(options_.memory_budget_bytes)) {
    double next = std::max(0.0, eta_ - options_.eta_step);
    if (next != eta_) {
      eta_ = next;
      ++adjustments_;
    }
  }
}

}  // namespace scuba
