#include "core/load_shedder.h"

#include <algorithm>

namespace scuba {

LoadShedder::LoadShedder(const LoadSheddingOptions& options, double theta_d)
    : options_(options),
      theta_d_(theta_d),
      eta_(options.mode == LoadSheddingMode::kFixed ? options.eta : 0.0) {}

void LoadShedder::AttachMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  eta_gauge_ = registry->RegisterGauge(
      "scuba_shed_eta", "Current nucleus fraction eta = Theta_N / Theta_D");
  nucleus_gauge_ = registry->RegisterGauge(
      "scuba_shed_nucleus_radius", "Current nucleus radius Theta_N");
  adjustments_counter_ = registry->RegisterCounter(
      "scuba_shed_adjustments_total", "Adaptive eta adjustments");
  eta_gauge_.Set(eta_);
  nucleus_gauge_.Set(nucleus_radius());
}

void LoadShedder::ObserveMemoryUsage(size_t bytes) {
  if (options_.mode != LoadSheddingMode::kAdaptive) return;
  if (bytes > options_.memory_budget_bytes) {
    double next = std::min(1.0, eta_ + options_.eta_step);
    if (next != eta_) {
      eta_ = next;
      ++adjustments_;
      adjustments_counter_.Increment();
    }
  } else if (static_cast<double>(bytes) <
             options_.relax_fraction *
                 static_cast<double>(options_.memory_budget_bytes)) {
    double next = std::max(0.0, eta_ - options_.eta_step);
    if (next != eta_) {
      eta_ = next;
      ++adjustments_;
      adjustments_counter_.Increment();
    }
  }
  eta_gauge_.Set(eta_);
  nucleus_gauge_.Set(nucleus_radius());
}

}  // namespace scuba
