#include "core/scuba_engine.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <vector>

#include "cluster/splitter.h"
#include "common/check.h"
#include "common/stopwatch.h"

namespace scuba {

Result<std::unique_ptr<ScubaEngine>> ScubaEngine::Create(
    const ScubaOptions& options) {
  SCUBA_RETURN_IF_ERROR(options.Validate());
  Result<GridIndex> grid = GridIndex::Create(options.region, options.grid_cells);
  if (!grid.ok()) return grid.status();
  // Not make_unique: the constructor is private.
  return std::unique_ptr<ScubaEngine>(
      new ScubaEngine(options, std::move(grid).value()));
}

ScubaEngine::ScubaEngine(const ScubaOptions& options, GridIndex grid)
    : options_(options),
      grid_(std::move(grid)),
      clusterer_(
          ClustererOptions{options.theta_d, options.theta_s,
                           options.probe_theta_d_disk,
                           options.query_reach_aware,
                           options.grid_sync_padding},
          &store_, &grid_),
      shedder_(options.shedding, options.theta_d),
      join_executor_(options.query_reach_aware, options.join_threads),
      resolved_ingest_threads_(options.ingest_threads == 0
                                   ? ThreadPool::DefaultThreadCount()
                                   : options.ingest_threads) {
  stats_.join_threads = join_executor_.resolved_threads();
  stats_.ingest_threads = resolved_ingest_threads_;
  clusterer_.set_nucleus_radius(shedder_.nucleus_radius());
}

ThreadPool* ScubaEngine::IngestPool() {
  if (resolved_ingest_threads_ <= 1) return nullptr;
  if (ingest_pool_ == nullptr) {
    ingest_pool_ = std::make_unique<ThreadPool>(resolved_ingest_threads_);
  }
  return ingest_pool_.get();
}

Status ScubaEngine::IngestObjectUpdate(const LocationUpdate& update) {
  SCUBA_RETURN_IF_ERROR(ValidateUpdate(update));
  Stopwatch sw;
  Status s = clusterer_.ProcessObjectUpdate(update);
  const double elapsed = sw.ElapsedSeconds();
  pending_prejoin_seconds_ += elapsed;
  pending_prejoin_worker_seconds_ += elapsed;  // serial: busy == wall
  return s;
}

Status ScubaEngine::IngestQueryUpdate(const QueryUpdate& update) {
  SCUBA_RETURN_IF_ERROR(ValidateUpdate(update));
  Stopwatch sw;
  Status s = clusterer_.ProcessQueryUpdate(update);
  const double elapsed = sw.ElapsedSeconds();
  pending_prejoin_seconds_ += elapsed;
  pending_prejoin_worker_seconds_ += elapsed;  // serial: busy == wall
  return s;
}

Status ScubaEngine::IngestBatch(std::span<const LocationUpdate> objects,
                                std::span<const QueryUpdate> queries) {
  for (const LocationUpdate& u : objects) {
    SCUBA_RETURN_IF_ERROR(ValidateUpdate(u));
  }
  for (const QueryUpdate& u : queries) {
    SCUBA_RETURN_IF_ERROR(ValidateUpdate(u));
  }
  Stopwatch sw;
  double worker = 0.0;
  Status s = clusterer_.ProcessBatch(objects, queries, IngestPool(),
                                     resolved_ingest_threads_, &worker);
  pending_prejoin_seconds_ += sw.ElapsedSeconds();
  pending_prejoin_worker_seconds_ += worker;
  return s;
}

Status ScubaEngine::Evaluate(Timestamp now, ResultSet* results) {
  if (results == nullptr) {
    return Status::InvalidArgument("results must be non-null");
  }

  // *** Phase 2: cluster-based joining (Algorithm 1, lines 8-21). ***
  // Continuous queries change answers incrementally round to round, so the
  // previous match count pre-sizes this round's merge buffer well.
  results->Reserve(stats_.last_result_count);
  Stopwatch join_sw;
  SCUBA_RETURN_IF_ERROR(join_executor_.Execute(store_, grid_, results));
  stats_.last_join_seconds = join_sw.ElapsedSeconds();
  stats_.total_join_seconds += stats_.last_join_seconds;
  stats_.last_join_worker_seconds = join_executor_.last_worker_seconds();
  stats_.total_join_worker_seconds += stats_.last_join_worker_seconds;
  stats_.last_result_count = results->size();
  stats_.total_results += results->size();
  ++stats_.evaluations;
  const ClusterJoinExecutor::Counters& ctr = join_executor_.counters();
  stats_.comparisons = ctr.comparisons;
  stats_.bounds_checks = ctr.bounds_checks;
  stats_.cluster_pairs_tested = ctr.pairs_tested;
  stats_.cluster_pairs_overlapping = ctr.pairs_overlapping;

  // *** Phase 3: cluster post-join maintenance. ***
  Stopwatch maint_sw;
  double postjoin_worker = 0.0;
  Status s = PostJoinMaintenance(now, &postjoin_worker);
  stats_.last_postjoin_seconds = maint_sw.ElapsedSeconds();
  stats_.total_postjoin_seconds += stats_.last_postjoin_seconds;
  stats_.last_postjoin_worker_seconds = postjoin_worker;
  stats_.total_postjoin_worker_seconds += postjoin_worker;
  stats_.last_ingest_seconds = pending_prejoin_seconds_;
  stats_.total_ingest_seconds += pending_prejoin_seconds_;
  stats_.last_ingest_worker_seconds = pending_prejoin_worker_seconds_;
  stats_.total_ingest_worker_seconds += pending_prejoin_worker_seconds_;
  stats_.last_maintenance_seconds =
      stats_.last_ingest_seconds + stats_.last_postjoin_seconds;
  stats_.total_maintenance_seconds += stats_.last_maintenance_seconds;
  pending_prejoin_seconds_ = 0.0;
  pending_prejoin_worker_seconds_ = 0.0;
  return s;
}

Status ScubaEngine::SplitOversizedClusters() {
  const double max_radius = options_.split_radius_factor * options_.theta_d;
  const std::vector<ClusterId> cids = store_.SortedClusterIds();
  for (ClusterId cid : cids) {
    MovingCluster* cluster = store_.GetCluster(cid);
    SCUBA_CHECK(cluster != nullptr);
    cluster->RecomputeTightBounds();
    if (!ShouldSplit(*cluster, max_radius)) continue;
    // Allocated in named locals: as function arguments the two calls could
    // run in either order, leaving left/right id assignment unspecified.
    const ClusterId left_id = store_.NextClusterId();
    const ClusterId right_id = store_.NextClusterId();
    Result<SplitResult> split = SplitCluster(*cluster, left_id, right_id);
    if (!split.ok()) continue;  // co-located members etc.: keep as-is
    SCUBA_RETURN_IF_ERROR(grid_.Remove(cid));
    SCUBA_RETURN_IF_ERROR(store_.RemoveCluster(cid));
    SCUBA_RETURN_IF_ERROR(SyncClusterGrid(&grid_, &split->left,
                                          options_.query_reach_aware,
                                          options_.grid_sync_padding));
    SCUBA_RETURN_IF_ERROR(SyncClusterGrid(&grid_, &split->right,
                                          options_.query_reach_aware,
                                          options_.grid_sync_padding));
    SCUBA_RETURN_IF_ERROR(store_.AddCluster(std::move(split->left)));
    SCUBA_RETURN_IF_ERROR(store_.AddCluster(std::move(split->right)));
    ++phase_stats_.clusters_split;
  }
  return Status::OK();
}

Status ScubaEngine::PostJoinMaintenance(Timestamp now, double* worker_seconds) {
  *worker_seconds = 0.0;
  if (options_.enable_cluster_splitting) {
    SCUBA_RETURN_IF_ERROR(SplitOversizedClusters());
  }
  // Collect ids first; dissolution mutates the store. Sorted so the serial
  // and sharded paths walk the exact same sequence.
  const std::vector<ClusterId> cids = store_.SortedClusterIds();
  const double nucleus = shedder_.nucleus_radius();

  if (resolved_ingest_threads_ <= 1 || cids.size() <= 1) {
    Stopwatch serial;
    for (ClusterId cid : cids) {
      MovingCluster* cluster = store_.GetCluster(cid);
      SCUBA_CHECK(cluster != nullptr);
      cluster->RecomputeTightBounds();
      if (nucleus > 0.0) {
        phase_stats_.members_shed_maintenance +=
            cluster->ShedPositions(nucleus);
      }
      // Dissolve clusters that pass their destination before the next round
      // (paper: "If at time T + Delta the cluster passes its destination
      // node, the cluster gets dissolved."). Members re-cluster with their
      // next updates.
      Timestamp expiry = cluster->ComputeExpiryTime(now);
      if (expiry <= now + options_.delta) {
        SCUBA_RETURN_IF_ERROR(grid_.Remove(cid));
        SCUBA_RETURN_IF_ERROR(store_.RemoveCluster(cid));
        ++phase_stats_.clusters_dissolved_expired;
        continue;
      }
      // Relocate to the expected position at the next evaluation time.
      cluster->Translate(cluster->Velocity() *
                         static_cast<double>(options_.delta));
      SCUBA_RETURN_IF_ERROR(SyncClusterGrid(&grid_, cluster,
                                            options_.query_reach_aware,
                                            options_.grid_sync_padding));
    }
    *worker_seconds = serial.ElapsedSeconds();
  } else {
    // Sharded upkeep: each task pulls cluster chunks and runs the purely
    // per-cluster work (tighten, shed, expiry check, translate, grid-sync
    // planning) on the live cluster — clusters are disjoint, the store and
    // grid are only read. Dissolutions and re-registrations are recorded per
    // cluster and applied below in ascending cid order, which is exactly the
    // serial loop's mutation sequence.
    struct Outcome {
      uint64_t shed = 0;
      bool dissolve = false;
      bool resync = false;
      Circle registration;
    };
    std::vector<Outcome> outcomes(cids.size());
    std::atomic<size_t> cursor{0};
    constexpr size_t kChunk = 16;
    *worker_seconds = RunTaskSet(
        IngestPool(), resolved_ingest_threads_, [&](uint32_t) {
          for (;;) {
            size_t begin = cursor.fetch_add(kChunk, std::memory_order_relaxed);
            if (begin >= cids.size()) break;
            size_t end = std::min(cids.size(), begin + kChunk);
            for (size_t i = begin; i < end; ++i) {
              MovingCluster* cluster = store_.GetCluster(cids[i]);
              SCUBA_CHECK(cluster != nullptr);
              Outcome& out = outcomes[i];
              cluster->RecomputeTightBounds();
              if (nucleus > 0.0) out.shed = cluster->ShedPositions(nucleus);
              if (cluster->ComputeExpiryTime(now) <= now + options_.delta) {
                out.dissolve = true;
                continue;
              }
              cluster->Translate(cluster->Velocity() *
                                 static_cast<double>(options_.delta));
              out.resync = PlanClusterGridSync(
                  grid_, cluster, options_.query_reach_aware,
                  options_.grid_sync_padding, &out.registration);
            }
          }
        });
    for (size_t i = 0; i < cids.size(); ++i) {
      phase_stats_.members_shed_maintenance += outcomes[i].shed;
      if (outcomes[i].dissolve) {
        SCUBA_RETURN_IF_ERROR(grid_.Remove(cids[i]));
        SCUBA_RETURN_IF_ERROR(store_.RemoveCluster(cids[i]));
        ++phase_stats_.clusters_dissolved_expired;
      } else if (outcomes[i].resync) {
        SCUBA_RETURN_IF_ERROR(
            grid_.Contains(cids[i])
                ? grid_.Update(cids[i], outcomes[i].registration)
                : grid_.Insert(cids[i], outcomes[i].registration));
      }
    }
  }

  // Feed the shedder and propagate the (possibly new) nucleus radius to the
  // ingest path for the next interval.
  shedder_.ObserveMemoryUsage(EstimateMemoryUsage());
  clusterer_.set_nucleus_radius(shedder_.nucleus_radius());
  return Status::OK();
}

size_t ScubaEngine::EstimateMemoryUsage() const {
  return sizeof(ScubaEngine) + store_.EstimateMemoryUsage() +
         grid_.EstimateMemoryUsage() + join_executor_.EstimateMemoryUsage();
}

}  // namespace scuba
