#include "core/scuba_engine.h"

#include <vector>

#include "cluster/splitter.h"
#include "common/check.h"
#include "common/stopwatch.h"

namespace scuba {

Result<std::unique_ptr<ScubaEngine>> ScubaEngine::Create(
    const ScubaOptions& options) {
  SCUBA_RETURN_IF_ERROR(options.Validate());
  Result<GridIndex> grid = GridIndex::Create(options.region, options.grid_cells);
  if (!grid.ok()) return grid.status();
  // Not make_unique: the constructor is private.
  return std::unique_ptr<ScubaEngine>(
      new ScubaEngine(options, std::move(grid).value()));
}

ScubaEngine::ScubaEngine(const ScubaOptions& options, GridIndex grid)
    : options_(options),
      grid_(std::move(grid)),
      clusterer_(
          ClustererOptions{options.theta_d, options.theta_s,
                           options.probe_theta_d_disk,
                           options.query_reach_aware,
                           options.grid_sync_padding},
          &store_, &grid_),
      shedder_(options.shedding, options.theta_d),
      join_executor_(options.query_reach_aware, options.join_threads) {
  stats_.join_threads = join_executor_.resolved_threads();
  clusterer_.set_nucleus_radius(shedder_.nucleus_radius());
}

Status ScubaEngine::IngestObjectUpdate(const LocationUpdate& update) {
  SCUBA_RETURN_IF_ERROR(ValidateUpdate(update));
  Stopwatch sw;
  Status s = clusterer_.ProcessObjectUpdate(update);
  pending_prejoin_seconds_ += sw.ElapsedSeconds();
  return s;
}

Status ScubaEngine::IngestQueryUpdate(const QueryUpdate& update) {
  SCUBA_RETURN_IF_ERROR(ValidateUpdate(update));
  Stopwatch sw;
  Status s = clusterer_.ProcessQueryUpdate(update);
  pending_prejoin_seconds_ += sw.ElapsedSeconds();
  return s;
}

Status ScubaEngine::Evaluate(Timestamp now, ResultSet* results) {
  if (results == nullptr) {
    return Status::InvalidArgument("results must be non-null");
  }

  // *** Phase 2: cluster-based joining (Algorithm 1, lines 8-21). ***
  // Continuous queries change answers incrementally round to round, so the
  // previous match count pre-sizes this round's merge buffer well.
  results->Reserve(stats_.last_result_count);
  Stopwatch join_sw;
  SCUBA_RETURN_IF_ERROR(join_executor_.Execute(store_, grid_, results));
  stats_.last_join_seconds = join_sw.ElapsedSeconds();
  stats_.total_join_seconds += stats_.last_join_seconds;
  stats_.last_join_worker_seconds = join_executor_.last_worker_seconds();
  stats_.total_join_worker_seconds += stats_.last_join_worker_seconds;
  stats_.last_result_count = results->size();
  stats_.total_results += results->size();
  ++stats_.evaluations;
  const ClusterJoinExecutor::Counters& ctr = join_executor_.counters();
  stats_.comparisons = ctr.comparisons;
  stats_.bounds_checks = ctr.bounds_checks;
  stats_.cluster_pairs_tested = ctr.pairs_tested;
  stats_.cluster_pairs_overlapping = ctr.pairs_overlapping;

  // *** Phase 3: cluster post-join maintenance. ***
  Stopwatch maint_sw;
  Status s = PostJoinMaintenance(now);
  stats_.last_maintenance_seconds =
      pending_prejoin_seconds_ + maint_sw.ElapsedSeconds();
  stats_.total_maintenance_seconds += stats_.last_maintenance_seconds;
  pending_prejoin_seconds_ = 0.0;
  return s;
}

Status ScubaEngine::SplitOversizedClusters() {
  const double max_radius = options_.split_radius_factor * options_.theta_d;
  std::vector<ClusterId> cids;
  cids.reserve(store_.ClusterCount());
  for (const auto& [cid, cluster] : store_.clusters()) {
    (void)cluster;
    cids.push_back(cid);
  }
  for (ClusterId cid : cids) {
    MovingCluster* cluster = store_.GetCluster(cid);
    SCUBA_CHECK(cluster != nullptr);
    cluster->RecomputeTightBounds();
    if (!ShouldSplit(*cluster, max_radius)) continue;
    Result<SplitResult> split = SplitCluster(*cluster, store_.NextClusterId(),
                                             store_.NextClusterId());
    if (!split.ok()) continue;  // co-located members etc.: keep as-is
    SCUBA_RETURN_IF_ERROR(grid_.Remove(cid));
    SCUBA_RETURN_IF_ERROR(store_.RemoveCluster(cid));
    SCUBA_RETURN_IF_ERROR(SyncClusterGrid(&grid_, &split->left,
                                          options_.query_reach_aware,
                                          options_.grid_sync_padding));
    SCUBA_RETURN_IF_ERROR(SyncClusterGrid(&grid_, &split->right,
                                          options_.query_reach_aware,
                                          options_.grid_sync_padding));
    SCUBA_RETURN_IF_ERROR(store_.AddCluster(std::move(split->left)));
    SCUBA_RETURN_IF_ERROR(store_.AddCluster(std::move(split->right)));
    ++phase_stats_.clusters_split;
  }
  return Status::OK();
}

Status ScubaEngine::PostJoinMaintenance(Timestamp now) {
  if (options_.enable_cluster_splitting) {
    SCUBA_RETURN_IF_ERROR(SplitOversizedClusters());
  }
  // Collect ids first; dissolution mutates the store.
  std::vector<ClusterId> cids;
  cids.reserve(store_.ClusterCount());
  for (const auto& [cid, cluster] : store_.clusters()) {
    (void)cluster;
    cids.push_back(cid);
  }

  const double nucleus = shedder_.nucleus_radius();
  for (ClusterId cid : cids) {
    MovingCluster* cluster = store_.GetCluster(cid);
    SCUBA_CHECK(cluster != nullptr);
    cluster->RecomputeTightBounds();
    if (nucleus > 0.0) {
      phase_stats_.members_shed_maintenance += cluster->ShedPositions(nucleus);
    }
    // Dissolve clusters that pass their destination before the next round
    // (paper: "If at time T + Delta the cluster passes its destination node,
    // the cluster gets dissolved."). Members re-cluster with their next
    // updates.
    Timestamp expiry = cluster->ComputeExpiryTime(now);
    if (expiry <= now + options_.delta) {
      SCUBA_RETURN_IF_ERROR(grid_.Remove(cid));
      SCUBA_RETURN_IF_ERROR(store_.RemoveCluster(cid));
      ++phase_stats_.clusters_dissolved_expired;
      continue;
    }
    // Relocate to the expected position at the next evaluation time.
    cluster->Translate(cluster->Velocity() * static_cast<double>(options_.delta));
    SCUBA_RETURN_IF_ERROR(SyncClusterGrid(&grid_, cluster,
                                          options_.query_reach_aware,
                                          options_.grid_sync_padding));
  }

  // Feed the shedder and propagate the (possibly new) nucleus radius to the
  // ingest path for the next interval.
  shedder_.ObserveMemoryUsage(EstimateMemoryUsage());
  clusterer_.set_nucleus_radius(shedder_.nucleus_radius());
  return Status::OK();
}

size_t ScubaEngine::EstimateMemoryUsage() const {
  return sizeof(ScubaEngine) + store_.EstimateMemoryUsage() +
         grid_.EstimateMemoryUsage() + join_executor_.EstimateMemoryUsage();
}

}  // namespace scuba
