#include "core/scuba_engine.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "cluster/splitter.h"
#include "common/check.h"
#include "common/stopwatch.h"

namespace scuba {

namespace {

/// Absolute slack for the audit's distance comparisons: it re-derives
/// quantities (radii, coverage) that the engine accumulated incrementally in
/// a different floating-point order.
constexpr double kAuditEps = 1e-6;

void AddViolation(InvariantAuditReport* report, std::string msg) {
  ++report->violations_total;
  if (report->violations.size() < InvariantAuditReport::kMaxViolationMessages) {
    report->violations.push_back(std::move(msg));
  }
}

}  // namespace

std::string InvariantAuditReport::ToString() const {
  if (clean()) {
    return "clean (" + std::to_string(clusters_checked) + " clusters, " +
           std::to_string(members_checked) + " members, " +
           std::to_string(grid_keys_checked) + " grid keys)";
  }
  std::string out = std::to_string(violations_total) + " violation(s):";
  for (const std::string& v : violations) {
    out += "\n  ";
    out += v;
  }
  if (violations_total > violations.size()) {
    out += "\n  ... and " +
           std::to_string(violations_total - violations.size()) + " more";
  }
  return out;
}

Result<std::unique_ptr<ScubaEngine>> ScubaEngine::Create(
    const ScubaOptions& options) {
  SCUBA_RETURN_IF_ERROR(options.Validate());
  Result<GridIndex> grid = GridIndex::Create(options.region, options.grid_cells);
  if (!grid.ok()) return grid.status();
  // Not make_unique: the constructor is private.
  return std::unique_ptr<ScubaEngine>(
      new ScubaEngine(options, std::move(grid).value()));
}

ScubaEngine::ScubaEngine(const ScubaOptions& options, GridIndex grid)
    : options_(options),
      grid_(std::move(grid)),
      clusterer_(
          ClustererOptions{options.theta_d, options.theta_s,
                           options.probe_theta_d_disk,
                           options.query_reach_aware,
                           options.grid_sync_padding},
          &store_, &grid_),
      shedder_(options.shedding, options.theta_d),
      join_executor_(options.query_reach_aware, options.join_threads),
      resolved_ingest_threads_(options.ingest_threads == 0
                                   ? ThreadPool::DefaultThreadCount()
                                   : options.ingest_threads) {
  stats_.join_threads = join_executor_.resolved_threads();
  stats_.ingest_threads = resolved_ingest_threads_;
  clusterer_.set_nucleus_radius(shedder_.nucleus_radius());
}

ThreadPool* ScubaEngine::IngestPool() {
  if (resolved_ingest_threads_ <= 1) return nullptr;
  if (ingest_pool_ == nullptr) {
    ingest_pool_ = std::make_unique<ThreadPool>(resolved_ingest_threads_);
  }
  return ingest_pool_.get();
}

Status ScubaEngine::IngestObjectUpdate(const LocationUpdate& update) {
  if (Status v = ValidateUpdate(update); !v.ok()) {
    if (options_.on_bad_update == BadUpdatePolicy::kStrict) return v;
    ++stats_.updates_quarantined;
    return Status::OK();
  }
  Stopwatch sw;
  Status s = clusterer_.ProcessObjectUpdate(update);
  const double elapsed = sw.ElapsedSeconds();
  pending_prejoin_seconds_ += elapsed;
  pending_prejoin_worker_seconds_ += elapsed;  // serial: busy == wall
  return s;
}

Status ScubaEngine::IngestQueryUpdate(const QueryUpdate& update) {
  if (Status v = ValidateUpdate(update); !v.ok()) {
    if (options_.on_bad_update == BadUpdatePolicy::kStrict) return v;
    ++stats_.updates_quarantined;
    return Status::OK();
  }
  Stopwatch sw;
  Status s = clusterer_.ProcessQueryUpdate(update);
  const double elapsed = sw.ElapsedSeconds();
  pending_prejoin_seconds_ += elapsed;
  pending_prejoin_worker_seconds_ += elapsed;  // serial: busy == wall
  return s;
}

Status ScubaEngine::IngestBatch(std::span<const LocationUpdate> objects,
                                std::span<const QueryUpdate> queries) {
  size_t bad = 0;
  Status first_bad = Status::OK();
  for (const LocationUpdate& u : objects) {
    if (Status v = ValidateUpdate(u); !v.ok()) {
      if (first_bad.ok()) first_bad = std::move(v);
      ++bad;
    }
  }
  for (const QueryUpdate& u : queries) {
    if (Status v = ValidateUpdate(u); !v.ok()) {
      if (first_bad.ok()) first_bad = std::move(v);
      ++bad;
    }
  }
  // Under non-strict policies the invalid tuples are dropped before the
  // parallel classification, so the batch quarantines exactly the tuples the
  // per-update path would skip — the bit-identity contract between the two
  // ingest paths extends to dirty streams. The clean-batch fast path keeps
  // working off the caller's spans with no copy.
  std::vector<LocationUpdate> kept_objects;
  std::vector<QueryUpdate> kept_queries;
  if (bad > 0) {
    if (options_.on_bad_update == BadUpdatePolicy::kStrict) return first_bad;
    stats_.updates_quarantined += bad;
    kept_objects.reserve(objects.size());
    for (const LocationUpdate& u : objects) {
      if (ValidateUpdate(u).ok()) kept_objects.push_back(u);
    }
    kept_queries.reserve(queries.size());
    for (const QueryUpdate& u : queries) {
      if (ValidateUpdate(u).ok()) kept_queries.push_back(u);
    }
    objects = kept_objects;
    queries = kept_queries;
  }
  Stopwatch sw;
  double worker = 0.0;
  Status s = clusterer_.ProcessBatch(objects, queries, IngestPool(),
                                     resolved_ingest_threads_, &worker);
  pending_prejoin_seconds_ += sw.ElapsedSeconds();
  pending_prejoin_worker_seconds_ += worker;
  return s;
}

Status ScubaEngine::Evaluate(Timestamp now, ResultSet* results) {
  if (results == nullptr) {
    return Status::InvalidArgument("results must be non-null");
  }

  // *** Phase 2: cluster-based joining (Algorithm 1, lines 8-21). ***
  // Continuous queries change answers incrementally round to round, so the
  // previous match count pre-sizes this round's merge buffer well.
  results->Reserve(stats_.last_result_count);
  Stopwatch join_sw;
  SCUBA_RETURN_IF_ERROR(join_executor_.Execute(store_, grid_, results));
  stats_.last_join_seconds = join_sw.ElapsedSeconds();
  stats_.total_join_seconds += stats_.last_join_seconds;
  stats_.last_join_worker_seconds = join_executor_.last_worker_seconds();
  stats_.total_join_worker_seconds += stats_.last_join_worker_seconds;
  stats_.last_result_count = results->size();
  stats_.total_results += results->size();
  ++stats_.evaluations;
  const ClusterJoinExecutor::Counters& ctr = join_executor_.counters();
  stats_.comparisons = ctr.comparisons;
  stats_.bounds_checks = ctr.bounds_checks;
  stats_.cluster_pairs_tested = ctr.pairs_tested;
  stats_.cluster_pairs_overlapping = ctr.pairs_overlapping;

  // *** Phase 3: cluster post-join maintenance. ***
  Stopwatch maint_sw;
  double postjoin_worker = 0.0;
  Status s = PostJoinMaintenance(now, &postjoin_worker);
  stats_.last_postjoin_seconds = maint_sw.ElapsedSeconds();
  stats_.total_postjoin_seconds += stats_.last_postjoin_seconds;
  stats_.last_postjoin_worker_seconds = postjoin_worker;
  stats_.total_postjoin_worker_seconds += postjoin_worker;
  stats_.last_ingest_seconds = pending_prejoin_seconds_;
  stats_.total_ingest_seconds += pending_prejoin_seconds_;
  stats_.last_ingest_worker_seconds = pending_prejoin_worker_seconds_;
  stats_.total_ingest_worker_seconds += pending_prejoin_worker_seconds_;
  stats_.last_maintenance_seconds =
      stats_.last_ingest_seconds + stats_.last_postjoin_seconds;
  stats_.total_maintenance_seconds += stats_.last_maintenance_seconds;
  pending_prejoin_seconds_ = 0.0;
  pending_prejoin_worker_seconds_ = 0.0;
  if (s.ok() && options_.audit_every_n_rounds > 0 &&
      stats_.evaluations % options_.audit_every_n_rounds == 0) {
    SCUBA_RETURN_IF_ERROR(AuditAndHeal());
  }
  return s;
}

InvariantAuditReport ScubaEngine::AuditInvariants() const {
  InvariantAuditReport report;
  if (Status s = store_.ValidateConsistency(); !s.ok()) {
    AddViolation(&report, "store: " + s.message());
  }
  std::vector<uint32_t> expected_cells;
  for (ClusterId cid : store_.SortedClusterIds()) {
    const MovingCluster* cluster = store_.GetCluster(cid);
    SCUBA_CHECK(cluster != nullptr);
    ++report.clusters_checked;
    const std::string tag = "cluster " + std::to_string(cid);
    if (Status s = cluster->ValidateMemberIndex(); !s.ok()) {
      AddViolation(&report, tag + ": " + s.message());
    }
    // Radius invariant: the bounding circle covers every reconstructed
    // member position (shed members reconstruct at the nucleus center).
    for (const ClusterMember& m : cluster->members()) {
      ++report.members_checked;
      const double d = Distance(cluster->centroid(), cluster->MemberPosition(m));
      if (d > cluster->radius() + kAuditEps) {
        AddViolation(&report, tag + ": member (" +
                                 std::to_string(static_cast<int>(m.kind)) +
                                 "," + std::to_string(m.id) + ") lies " +
                                 std::to_string(d - cluster->radius()) +
                                 " outside the radius");
        break;  // one radius violation per cluster is enough signal
      }
    }
    // Grid side: the cluster must be registered, under bounds that cover its
    // (join) bounds, in exactly the cells its registered circle overlaps.
    if (!grid_.Contains(cid)) {
      AddViolation(&report, tag + ": missing from the cluster grid");
      continue;
    }
    const Circle needed =
        options_.query_reach_aware ? cluster->JoinBounds() : cluster->Bounds();
    const Circle& reg = cluster->registered_bounds();
    if (Distance(reg.center, needed.center) + needed.radius >
        reg.radius + kAuditEps) {
      AddViolation(&report,
                   tag + ": registered bounds no longer cover the cluster");
    }
    expected_cells.clear();
    grid_.CellsForCircle(reg, &expected_cells);
    std::sort(expected_cells.begin(), expected_cells.end());
    const std::vector<uint32_t>* actual = grid_.CellsOf(cid);
    SCUBA_CHECK(actual != nullptr);  // grid_.Contains(cid) held above
    std::vector<uint32_t> actual_sorted = *actual;
    std::sort(actual_sorted.begin(), actual_sorted.end());
    if (actual_sorted != expected_cells) {
      AddViolation(&report, tag + ": grid cell placement diverges (" +
                               std::to_string(actual_sorted.size()) +
                               " cells occupied, " +
                               std::to_string(expected_cells.size()) +
                               " expected)");
    }
  }
  // Reverse direction: every grid key must name a live cluster.
  for (uint32_t key : grid_.Keys()) {
    ++report.grid_keys_checked;
    if (store_.GetCluster(key) == nullptr) {
      AddViolation(&report, "grid: orphan key " + std::to_string(key) +
                                " names no stored cluster");
    }
  }
  return report;
}

Status ScubaEngine::RebuildGridFromStore() {
  grid_.Clear();
  for (ClusterId cid : store_.SortedClusterIds()) {
    MovingCluster* cluster = store_.GetCluster(cid);
    SCUBA_CHECK(cluster != nullptr);
    // Reset the lazy-registration memo so the sync below re-registers from
    // scratch instead of trusting stale bounds.
    cluster->set_registered_bounds(Circle{});
    SCUBA_RETURN_IF_ERROR(SyncClusterGrid(&grid_, cluster,
                                          options_.query_reach_aware,
                                          options_.grid_sync_padding));
  }
  return Status::OK();
}

Status ScubaEngine::AuditAndHeal() {
  ++stats_.invariant_audits;
  const InvariantAuditReport report = AuditInvariants();
  if (report.clean()) return Status::OK();
  stats_.invariant_violations += report.violations_total;
  SCUBA_RETURN_IF_ERROR(RebuildGridFromStore());
  ++stats_.invariant_repairs;
  ++stats_.invariant_audits;
  const InvariantAuditReport recheck = AuditInvariants();
  if (!recheck.clean()) {
    return Status::Corruption(
        "invariant audit still failing after grid rebuild: " +
        recheck.ToString());
  }
  return Status::OK();
}

Status ScubaEngine::SplitOversizedClusters() {
  const double max_radius = options_.split_radius_factor * options_.theta_d;
  const std::vector<ClusterId> cids = store_.SortedClusterIds();
  for (ClusterId cid : cids) {
    MovingCluster* cluster = store_.GetCluster(cid);
    SCUBA_CHECK(cluster != nullptr);
    cluster->RecomputeTightBounds();
    if (!ShouldSplit(*cluster, max_radius)) continue;
    // Allocated in named locals: as function arguments the two calls could
    // run in either order, leaving left/right id assignment unspecified.
    const ClusterId left_id = store_.NextClusterId();
    const ClusterId right_id = store_.NextClusterId();
    Result<SplitResult> split = SplitCluster(*cluster, left_id, right_id);
    if (!split.ok()) continue;  // co-located members etc.: keep as-is
    SCUBA_RETURN_IF_ERROR(grid_.Remove(cid));
    SCUBA_RETURN_IF_ERROR(store_.RemoveCluster(cid));
    SCUBA_RETURN_IF_ERROR(SyncClusterGrid(&grid_, &split->left,
                                          options_.query_reach_aware,
                                          options_.grid_sync_padding));
    SCUBA_RETURN_IF_ERROR(SyncClusterGrid(&grid_, &split->right,
                                          options_.query_reach_aware,
                                          options_.grid_sync_padding));
    SCUBA_RETURN_IF_ERROR(store_.AddCluster(std::move(split->left)));
    SCUBA_RETURN_IF_ERROR(store_.AddCluster(std::move(split->right)));
    ++phase_stats_.clusters_split;
  }
  return Status::OK();
}

Status ScubaEngine::PostJoinMaintenance(Timestamp now, double* worker_seconds) {
  *worker_seconds = 0.0;
  if (options_.enable_cluster_splitting) {
    SCUBA_RETURN_IF_ERROR(SplitOversizedClusters());
  }
  // Collect ids first; dissolution mutates the store. Sorted so the serial
  // and sharded paths walk the exact same sequence.
  const std::vector<ClusterId> cids = store_.SortedClusterIds();
  const double nucleus = shedder_.nucleus_radius();

  if (resolved_ingest_threads_ <= 1 || cids.size() <= 1) {
    Stopwatch serial;
    for (ClusterId cid : cids) {
      MovingCluster* cluster = store_.GetCluster(cid);
      SCUBA_CHECK(cluster != nullptr);
      cluster->RecomputeTightBounds();
      if (nucleus > 0.0) {
        phase_stats_.members_shed_maintenance +=
            cluster->ShedPositions(nucleus);
      }
      // Dissolve clusters that pass their destination before the next round
      // (paper: "If at time T + Delta the cluster passes its destination
      // node, the cluster gets dissolved."). Members re-cluster with their
      // next updates.
      Timestamp expiry = cluster->ComputeExpiryTime(now);
      if (expiry <= now + options_.delta) {
        SCUBA_RETURN_IF_ERROR(grid_.Remove(cid));
        SCUBA_RETURN_IF_ERROR(store_.RemoveCluster(cid));
        ++phase_stats_.clusters_dissolved_expired;
        continue;
      }
      // Relocate to the expected position at the next evaluation time.
      cluster->Translate(cluster->Velocity() *
                         static_cast<double>(options_.delta));
      SCUBA_RETURN_IF_ERROR(SyncClusterGrid(&grid_, cluster,
                                            options_.query_reach_aware,
                                            options_.grid_sync_padding));
    }
    *worker_seconds = serial.ElapsedSeconds();
  } else {
    // Sharded upkeep: each task pulls cluster chunks and runs the purely
    // per-cluster work (tighten, shed, expiry check, translate, grid-sync
    // planning) on the live cluster — clusters are disjoint, the store and
    // grid are only read. Dissolutions and re-registrations are recorded per
    // cluster and applied below in ascending cid order, which is exactly the
    // serial loop's mutation sequence.
    struct Outcome {
      uint64_t shed = 0;
      bool dissolve = false;
      bool resync = false;
      Circle registration;
    };
    std::vector<Outcome> outcomes(cids.size());
    std::atomic<size_t> cursor{0};
    constexpr size_t kChunk = 16;
    *worker_seconds = RunTaskSet(
        IngestPool(), resolved_ingest_threads_, [&](uint32_t) {
          for (;;) {
            size_t begin = cursor.fetch_add(kChunk, std::memory_order_relaxed);
            if (begin >= cids.size()) break;
            size_t end = std::min(cids.size(), begin + kChunk);
            for (size_t i = begin; i < end; ++i) {
              MovingCluster* cluster = store_.GetCluster(cids[i]);
              SCUBA_CHECK(cluster != nullptr);
              Outcome& out = outcomes[i];
              cluster->RecomputeTightBounds();
              if (nucleus > 0.0) out.shed = cluster->ShedPositions(nucleus);
              if (cluster->ComputeExpiryTime(now) <= now + options_.delta) {
                out.dissolve = true;
                continue;
              }
              cluster->Translate(cluster->Velocity() *
                                 static_cast<double>(options_.delta));
              out.resync = PlanClusterGridSync(
                  grid_, cluster, options_.query_reach_aware,
                  options_.grid_sync_padding, &out.registration);
            }
          }
        });
    for (size_t i = 0; i < cids.size(); ++i) {
      phase_stats_.members_shed_maintenance += outcomes[i].shed;
      if (outcomes[i].dissolve) {
        SCUBA_RETURN_IF_ERROR(grid_.Remove(cids[i]));
        SCUBA_RETURN_IF_ERROR(store_.RemoveCluster(cids[i]));
        ++phase_stats_.clusters_dissolved_expired;
      } else if (outcomes[i].resync) {
        SCUBA_RETURN_IF_ERROR(
            grid_.Contains(cids[i])
                ? grid_.Update(cids[i], outcomes[i].registration)
                : grid_.Insert(cids[i], outcomes[i].registration));
      }
    }
  }

  // Feed the shedder and propagate the (possibly new) nucleus radius to the
  // ingest path for the next interval.
  shedder_.ObserveMemoryUsage(EstimateMemoryUsage());
  clusterer_.set_nucleus_radius(shedder_.nucleus_radius());
  return Status::OK();
}

size_t ScubaEngine::EstimateMemoryUsage() const {
  return sizeof(ScubaEngine) + store_.EstimateMemoryUsage() +
         grid_.EstimateMemoryUsage() + join_executor_.EstimateMemoryUsage();
}

}  // namespace scuba
