#include "core/scuba_engine.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "cluster/splitter.h"
#include "common/check.h"
#include "common/stopwatch.h"

namespace scuba {

namespace {

/// Absolute slack for the audit's distance comparisons: it re-derives
/// quantities (radii, coverage) that the engine accumulated incrementally in
/// a different floating-point order.
constexpr double kAuditEps = 1e-6;

void AddViolation(InvariantAuditReport* report, std::string msg) {
  ++report->violations_total;
  if (report->violations.size() < InvariantAuditReport::kMaxViolationMessages) {
    report->violations.push_back(std::move(msg));
  }
}

}  // namespace

std::string InvariantAuditReport::ToString() const {
  if (clean()) {
    return "clean (" + std::to_string(clusters_checked) + " clusters, " +
           std::to_string(members_checked) + " members, " +
           std::to_string(grid_keys_checked) + " grid keys)";
  }
  std::string out = std::to_string(violations_total) + " violation(s):";
  for (const std::string& v : violations) {
    out += "\n  ";
    out += v;
  }
  if (violations_total > violations.size()) {
    out += "\n  ... and " +
           std::to_string(violations_total - violations.size()) + " more";
  }
  return out;
}

Result<std::unique_ptr<ScubaEngine>> ScubaEngine::Create(
    const ScubaOptions& options) {
  SCUBA_RETURN_IF_ERROR(options.Validate());
  Result<GridIndex> grid = GridIndex::Create(options.region, options.grid_cells);
  if (!grid.ok()) return grid.status();
  // Not make_unique: the constructor is private.
  std::unique_ptr<ScubaEngine> engine(
      new ScubaEngine(options, std::move(grid).value()));
  if (options.telemetry.Enabled()) {
    Result<std::unique_ptr<EngineTelemetry>> telemetry =
        EngineTelemetry::Create(options.telemetry, engine->name());
    if (!telemetry.ok()) return telemetry.status();
    engine->InstallTelemetry(std::move(telemetry).value());
  }
  return engine;
}

void ScubaEngine::InstallTelemetry(std::unique_ptr<EngineTelemetry> telemetry) {
  telemetry_ = std::move(telemetry);
  MetricsRegistry& reg = telemetry_->registry();
  metrics_.rounds =
      reg.RegisterCounter("scuba_rounds_total", "Completed evaluation rounds");
  metrics_.results = reg.RegisterCounter("scuba_results_total",
                                         "Query-object matches produced");
  metrics_.join_comparisons = reg.RegisterCounter(
      "scuba_join_comparisons_total", "Member-level predicate evaluations");
  metrics_.join_bounds_checks = reg.RegisterCounter(
      "scuba_join_bounds_checks_total", "Per-query fine-filter pre-checks");
  metrics_.join_pairs_tested = reg.RegisterCounter(
      "scuba_join_pairs_tested_total", "Join-between cluster-pair tests");
  metrics_.join_pairs_overlapping = reg.RegisterCounter(
      "scuba_join_pairs_overlapping_total", "Join-between positives");
  metrics_.join_within_single = reg.RegisterCounter(
      "scuba_join_within_single_total", "Same-cluster join-within runs");
  metrics_.join_within_pair = reg.RegisterCounter(
      "scuba_join_within_pair_total", "Cross-cluster join-within runs");
  metrics_.clusters_created = reg.RegisterCounter(
      "scuba_clusters_created_total", "Moving clusters created");
  metrics_.members_absorbed = reg.RegisterCounter(
      "scuba_members_absorbed_total", "Members absorbed into clusters");
  metrics_.members_refreshed = reg.RegisterCounter(
      "scuba_members_refreshed_total", "Members refreshed in place");
  metrics_.members_departed = reg.RegisterCounter(
      "scuba_members_departed_total", "Members that left their cluster");
  metrics_.clusters_dissolved_empty = reg.RegisterCounter(
      "scuba_clusters_dissolved_empty_total", "Clusters dissolved empty");
  metrics_.members_shed_ingest = reg.RegisterCounter(
      "scuba_members_shed_ingest_total", "Positions shed at ingest");
  metrics_.clusters_dissolved_expired =
      reg.RegisterCounter("scuba_clusters_dissolved_expired_total",
                          "Clusters dissolved at their destination");
  metrics_.members_shed_maintenance = reg.RegisterCounter(
      "scuba_members_shed_maintenance_total", "Positions shed in maintenance");
  metrics_.clusters_split = reg.RegisterCounter(
      "scuba_clusters_split_total", "Oversized clusters split");
  metrics_.updates_quarantined = reg.RegisterCounter(
      "scuba_updates_quarantined_total", "Updates dropped by validation");
  metrics_.invariant_audits = reg.RegisterCounter(
      "scuba_invariant_audits_total", "Invariant audit passes");
  metrics_.invariant_violations = reg.RegisterCounter(
      "scuba_invariant_violations_total", "Invariant violations found");
  metrics_.invariant_repairs = reg.RegisterCounter(
      "scuba_invariant_repairs_total", "Grid rebuilds that healed an audit");
  metrics_.wal_records = reg.RegisterCounter("scuba_wal_records_total",
                                             "WAL records appended");
  metrics_.wal_bytes =
      reg.RegisterCounter("scuba_wal_bytes_total", "WAL bytes appended");
  metrics_.wal_fsyncs =
      reg.RegisterCounter("scuba_wal_fsyncs_total", "WAL fsync calls");
  metrics_.checkpoints = reg.RegisterCounter("scuba_checkpoints_total",
                                             "Snapshot checkpoints written");
  metrics_.clusters =
      reg.RegisterGauge("scuba_clusters", "Live moving clusters");
  const std::vector<double> kTimeBuckets = {1e-5, 1e-4, 1e-3, 1e-2,
                                            1e-1, 1.0,  10.0};
  if (Result<HistogramMetric> h = reg.RegisterHistogram(
          "scuba_join_wall_seconds", "Join phase wall time per round",
          kTimeBuckets);
      h.ok()) {
    metrics_.join_wall_seconds = *h;
  }
  if (Result<HistogramMetric> h = reg.RegisterHistogram(
          "scuba_ingest_wall_seconds", "Pre-join ingest wall time per round",
          kTimeBuckets);
      h.ok()) {
    metrics_.ingest_wall_seconds = *h;
  }
  if (Result<HistogramMetric> h = reg.RegisterHistogram(
          "scuba_postjoin_wall_seconds",
          "Post-join maintenance wall time per round", kTimeBuckets);
      h.ok()) {
    metrics_.postjoin_wall_seconds = *h;
  }
  join_executor_.AttachTelemetry(&reg);
  shedder_.AttachMetrics(&reg);
  metrics_.clusters.Set(static_cast<double>(store_.ClusterCount()));
  telemetry_->SetRoundHook([this] { PushTelemetryDeltas(); });
}

void ScubaEngine::PushTelemetryDeltas() {
  const ClusterJoinExecutor::Counters& join = join_executor_.counters();
  const ClustererStats& clu = clusterer_.stats();
  metrics_.rounds.Increment(stats_.evaluations - pushed_.eval.evaluations);
  metrics_.results.Increment(stats_.total_results -
                             pushed_.eval.total_results);
  metrics_.join_comparisons.Increment(join.comparisons -
                                      pushed_.join.comparisons);
  metrics_.join_bounds_checks.Increment(join.bounds_checks -
                                        pushed_.join.bounds_checks);
  metrics_.join_pairs_tested.Increment(join.pairs_tested -
                                       pushed_.join.pairs_tested);
  metrics_.join_pairs_overlapping.Increment(join.pairs_overlapping -
                                            pushed_.join.pairs_overlapping);
  metrics_.join_within_single.Increment(join.within_joins_single -
                                        pushed_.join.within_joins_single);
  metrics_.join_within_pair.Increment(join.within_joins_pair -
                                      pushed_.join.within_joins_pair);
  metrics_.clusters_created.Increment(clu.clusters_created -
                                      pushed_.clusterer.clusters_created);
  metrics_.members_absorbed.Increment(clu.members_absorbed -
                                      pushed_.clusterer.members_absorbed);
  metrics_.members_refreshed.Increment(clu.members_refreshed -
                                       pushed_.clusterer.members_refreshed);
  metrics_.members_departed.Increment(clu.members_departed -
                                      pushed_.clusterer.members_departed);
  metrics_.clusters_dissolved_empty.Increment(
      clu.clusters_dissolved_empty - pushed_.clusterer.clusters_dissolved_empty);
  metrics_.members_shed_ingest.Increment(clu.members_shed -
                                         pushed_.clusterer.members_shed);
  metrics_.clusters_dissolved_expired.Increment(
      phase_stats_.clusters_dissolved_expired -
      pushed_.phase.clusters_dissolved_expired);
  metrics_.members_shed_maintenance.Increment(
      phase_stats_.members_shed_maintenance -
      pushed_.phase.members_shed_maintenance);
  metrics_.clusters_split.Increment(phase_stats_.clusters_split -
                                    pushed_.phase.clusters_split);
  metrics_.updates_quarantined.Increment(stats_.updates_quarantined -
                                         pushed_.eval.updates_quarantined);
  metrics_.invariant_audits.Increment(stats_.invariant_audits -
                                      pushed_.eval.invariant_audits);
  metrics_.invariant_violations.Increment(stats_.invariant_violations -
                                          pushed_.eval.invariant_violations);
  metrics_.invariant_repairs.Increment(stats_.invariant_repairs -
                                       pushed_.eval.invariant_repairs);
  metrics_.wal_records.Increment(stats_.wal_records_appended -
                                 pushed_.eval.wal_records_appended);
  metrics_.wal_bytes.Increment(stats_.wal_bytes_appended -
                               pushed_.eval.wal_bytes_appended);
  metrics_.wal_fsyncs.Increment(stats_.wal_fsyncs - pushed_.eval.wal_fsyncs);
  metrics_.checkpoints.Increment(stats_.checkpoints_written -
                                 pushed_.eval.checkpoints_written);
  metrics_.clusters.Set(static_cast<double>(store_.ClusterCount()));
  if (stats_.total_join_seconds > pushed_.join_wall) {
    metrics_.join_wall_seconds.Observe(stats_.total_join_seconds -
                                       pushed_.join_wall);
  }
  if (stats_.total_ingest_seconds > pushed_.ingest_wall) {
    metrics_.ingest_wall_seconds.Observe(stats_.total_ingest_seconds -
                                         pushed_.ingest_wall);
  }
  if (stats_.total_postjoin_seconds > pushed_.postjoin_wall) {
    metrics_.postjoin_wall_seconds.Observe(stats_.total_postjoin_seconds -
                                           pushed_.postjoin_wall);
  }
  pushed_.eval = stats_;
  pushed_.phase = phase_stats_;
  pushed_.clusterer = clu;
  pushed_.join = join;
  pushed_.join_wall = stats_.total_join_seconds;
  pushed_.ingest_wall = stats_.total_ingest_seconds;
  pushed_.postjoin_wall = stats_.total_postjoin_seconds;
}

EngineSnapshotStats ScubaEngine::StatsSnapshot() const {
  EngineSnapshotStats snap;
  snap.eval = stats_;
  snap.phase = phase_stats_;
  snap.clusterer = clusterer_.stats();
  snap.join = join_executor_.counters();
  snap.shedder = ShedderSnapshotStats{shedder_.mode(), shedder_.eta(),
                                      shedder_.nucleus_radius(),
                                      shedder_.adjustments()};
  snap.clusters = store_.ClusterCount();
  return snap;
}

Status ScubaEngine::FlushTelemetry() {
  if (telemetry_ == nullptr) return Status::OK();
  return telemetry_->Flush();
}

ScubaEngine::ScubaEngine(const ScubaOptions& options, GridIndex grid)
    : options_(options),
      grid_(std::move(grid)),
      clusterer_(
          ClustererOptions{options.theta_d, options.theta_s,
                           options.probe_theta_d_disk,
                           options.query_reach_aware,
                           options.grid_sync_padding},
          &store_, &grid_),
      shedder_(options.shedding, options.theta_d),
      join_executor_(options.query_reach_aware, options.join_threads),
      resolved_ingest_threads_(options.ingest_threads == 0
                                   ? ThreadPool::DefaultThreadCount()
                                   : options.ingest_threads) {
  stats_.join_threads = join_executor_.resolved_threads();
  stats_.ingest_threads = resolved_ingest_threads_;
  clusterer_.set_nucleus_radius(shedder_.nucleus_radius());
}

ThreadPool* ScubaEngine::IngestPool() {
  if (resolved_ingest_threads_ <= 1) return nullptr;
  if (ingest_pool_ == nullptr) {
    ingest_pool_ = std::make_unique<ThreadPool>(resolved_ingest_threads_);
  }
  return ingest_pool_.get();
}

Status ScubaEngine::IngestObjectUpdate(const LocationUpdate& update) {
  if (Status v = ValidateUpdate(update); !v.ok()) {
    if (options_.on_bad_update == BadUpdatePolicy::kStrict) return v;
    ++stats_.updates_quarantined;
    return Status::OK();
  }
  TelemetryEnsureRound();
  Stopwatch sw;
  Status s = clusterer_.ProcessObjectUpdate(update);
  const double elapsed = sw.ElapsedSeconds();
  pending_prejoin_seconds_ += elapsed;
  pending_prejoin_worker_seconds_ += elapsed;  // serial: busy == wall
  if (telemetry_ != nullptr) {
    TraceCollector& tc = telemetry_->trace();
    tc.Accumulate(tc.EnsureSpan(tc.root(), "ingest"), elapsed);
  }
  return s;
}

Status ScubaEngine::IngestQueryUpdate(const QueryUpdate& update) {
  if (Status v = ValidateUpdate(update); !v.ok()) {
    if (options_.on_bad_update == BadUpdatePolicy::kStrict) return v;
    ++stats_.updates_quarantined;
    return Status::OK();
  }
  TelemetryEnsureRound();
  Stopwatch sw;
  Status s = clusterer_.ProcessQueryUpdate(update);
  const double elapsed = sw.ElapsedSeconds();
  pending_prejoin_seconds_ += elapsed;
  pending_prejoin_worker_seconds_ += elapsed;  // serial: busy == wall
  if (telemetry_ != nullptr) {
    TraceCollector& tc = telemetry_->trace();
    tc.Accumulate(tc.EnsureSpan(tc.root(), "ingest"), elapsed);
  }
  return s;
}

Status ScubaEngine::IngestBatch(std::span<const LocationUpdate> objects,
                                std::span<const QueryUpdate> queries) {
  size_t bad = 0;
  Status first_bad = Status::OK();
  for (const LocationUpdate& u : objects) {
    if (Status v = ValidateUpdate(u); !v.ok()) {
      if (first_bad.ok()) first_bad = std::move(v);
      ++bad;
    }
  }
  for (const QueryUpdate& u : queries) {
    if (Status v = ValidateUpdate(u); !v.ok()) {
      if (first_bad.ok()) first_bad = std::move(v);
      ++bad;
    }
  }
  // Under non-strict policies the invalid tuples are dropped before the
  // parallel classification, so the batch quarantines exactly the tuples the
  // per-update path would skip — the bit-identity contract between the two
  // ingest paths extends to dirty streams. The clean-batch fast path keeps
  // working off the caller's spans with no copy.
  std::vector<LocationUpdate> kept_objects;
  std::vector<QueryUpdate> kept_queries;
  if (bad > 0) {
    if (options_.on_bad_update == BadUpdatePolicy::kStrict) return first_bad;
    stats_.updates_quarantined += bad;
    kept_objects.reserve(objects.size());
    for (const LocationUpdate& u : objects) {
      if (ValidateUpdate(u).ok()) kept_objects.push_back(u);
    }
    kept_queries.reserve(queries.size());
    for (const QueryUpdate& u : queries) {
      if (ValidateUpdate(u).ok()) kept_queries.push_back(u);
    }
    objects = kept_objects;
    queries = kept_queries;
  }
  TelemetryEnsureRound();
  Stopwatch sw;
  double worker = 0.0;
  IngestPhaseTimings phases;
  Status s = clusterer_.ProcessBatch(objects, queries, IngestPool(),
                                     resolved_ingest_threads_, &worker,
                                     telemetry_ != nullptr ? &phases : nullptr);
  const double wall = sw.ElapsedSeconds();
  pending_prejoin_seconds_ += wall;
  pending_prejoin_worker_seconds_ += worker;
  if (telemetry_ != nullptr) {
    TraceCollector& tc = telemetry_->trace();
    const int32_t ingest = tc.EnsureSpan(tc.root(), "ingest");
    tc.Accumulate(ingest, wall, worker);
    tc.Accumulate(tc.EnsureSpan(ingest, "classify"), phases.classify_seconds);
    tc.Accumulate(tc.EnsureSpan(ingest, "apply"), phases.apply_seconds);
  }
  return s;
}

Status ScubaEngine::Evaluate(Timestamp now, ResultSet* results) {
  if (results == nullptr) {
    return Status::InvalidArgument("results must be non-null");
  }
  TelemetryEnsureRound();

  // *** Phase 2: cluster-based joining (Algorithm 1, lines 8-21). ***
  // Continuous queries change answers incrementally round to round, so the
  // previous match count pre-sizes this round's merge buffer well.
  results->Reserve(stats_.last_result_count);
  Stopwatch join_sw;
  SCUBA_RETURN_IF_ERROR(join_executor_.Execute(store_, grid_, results));
  stats_.last_join_seconds = join_sw.ElapsedSeconds();
  stats_.total_join_seconds += stats_.last_join_seconds;
  stats_.last_join_worker_seconds = join_executor_.last_worker_seconds();
  stats_.total_join_worker_seconds += stats_.last_join_worker_seconds;
  stats_.last_result_count = results->size();
  stats_.total_results += results->size();
  ++stats_.evaluations;
  const ClusterJoinExecutor::Counters& ctr = join_executor_.counters();
  stats_.comparisons = ctr.comparisons;
  stats_.bounds_checks = ctr.bounds_checks;
  stats_.cluster_pairs_tested = ctr.pairs_tested;
  stats_.cluster_pairs_overlapping = ctr.pairs_overlapping;
  if (telemetry_ != nullptr) {
    TraceCollector& tc = telemetry_->trace();
    const int32_t join_span = tc.EnsureSpan(tc.root(), "join");
    tc.Accumulate(join_span, stats_.last_join_seconds,
                  stats_.last_join_worker_seconds);
    const double within = join_executor_.last_within_seconds();
    tc.Accumulate(
        tc.EnsureSpan(join_span, "between"),
        std::max(0.0, stats_.last_join_worker_seconds - within));
    tc.Accumulate(tc.EnsureSpan(join_span, "within"), within);
    const std::vector<double>& busy = join_executor_.last_task_busy_seconds();
    for (size_t t = 0; t < busy.size(); ++t) {
      tc.Accumulate(tc.EnsureSpan(join_span, "shard", static_cast<int32_t>(t)),
                    busy[t], busy[t]);
    }
  }

  // *** Phase 3: cluster post-join maintenance. ***
  Stopwatch maint_sw;
  double postjoin_worker = 0.0;
  PostJoinTimings postjoin_timings;
  Status s = PostJoinMaintenance(
      now, &postjoin_worker, telemetry_ != nullptr ? &postjoin_timings : nullptr);
  stats_.last_postjoin_seconds = maint_sw.ElapsedSeconds();
  stats_.total_postjoin_seconds += stats_.last_postjoin_seconds;
  stats_.last_postjoin_worker_seconds = postjoin_worker;
  stats_.total_postjoin_worker_seconds += postjoin_worker;
  stats_.last_ingest_seconds = pending_prejoin_seconds_;
  stats_.total_ingest_seconds += pending_prejoin_seconds_;
  stats_.last_ingest_worker_seconds = pending_prejoin_worker_seconds_;
  stats_.total_ingest_worker_seconds += pending_prejoin_worker_seconds_;
  stats_.last_maintenance_seconds =
      stats_.last_ingest_seconds + stats_.last_postjoin_seconds;
  stats_.total_maintenance_seconds += stats_.last_maintenance_seconds;
  pending_prejoin_seconds_ = 0.0;
  pending_prejoin_worker_seconds_ = 0.0;
  if (telemetry_ != nullptr) {
    TraceCollector& tc = telemetry_->trace();
    const int32_t pj = tc.EnsureSpan(tc.root(), "postjoin");
    tc.Accumulate(pj, stats_.last_postjoin_seconds, postjoin_worker);
    tc.Accumulate(tc.EnsureSpan(pj, "tighten"),
                  postjoin_timings.tighten_seconds);
    tc.Accumulate(tc.EnsureSpan(pj, "shed"), postjoin_timings.shed_seconds);
    tc.Accumulate(tc.EnsureSpan(pj, "expire"), postjoin_timings.expire_seconds);
    tc.Accumulate(tc.EnsureSpan(pj, "translate"),
                  postjoin_timings.translate_seconds);
  }
  if (s.ok() && options_.audit_every_n_rounds > 0 &&
      stats_.evaluations % options_.audit_every_n_rounds == 0) {
    SCUBA_RETURN_IF_ERROR(AuditAndHeal());
  }
  return s;
}

InvariantAuditReport ScubaEngine::AuditInvariants() const {
  InvariantAuditReport report;
  if (Status s = store_.ValidateConsistency(); !s.ok()) {
    AddViolation(&report, "store: " + s.message());
  }
  std::vector<uint32_t> expected_cells;
  for (ClusterId cid : store_.SortedClusterIds()) {
    const MovingCluster* cluster = store_.GetCluster(cid);
    SCUBA_CHECK(cluster != nullptr);
    ++report.clusters_checked;
    const std::string tag = "cluster " + std::to_string(cid);
    if (Status s = cluster->ValidateMemberIndex(); !s.ok()) {
      AddViolation(&report, tag + ": " + s.message());
    }
    // Radius invariant: the bounding circle covers every reconstructed
    // member position (shed members reconstruct at the nucleus center).
    for (const ClusterMember& m : cluster->members()) {
      ++report.members_checked;
      const double d = Distance(cluster->centroid(), cluster->MemberPosition(m));
      if (d > cluster->radius() + kAuditEps) {
        AddViolation(&report, tag + ": member (" +
                                 std::to_string(static_cast<int>(m.kind)) +
                                 "," + std::to_string(m.id) + ") lies " +
                                 std::to_string(d - cluster->radius()) +
                                 " outside the radius");
        break;  // one radius violation per cluster is enough signal
      }
    }
    // Grid side: the cluster must be registered, under bounds that cover its
    // (join) bounds, in exactly the cells its registered circle overlaps.
    if (!grid_.Contains(cid)) {
      AddViolation(&report, tag + ": missing from the cluster grid");
      continue;
    }
    const Circle needed =
        options_.query_reach_aware ? cluster->JoinBounds() : cluster->Bounds();
    const Circle& reg = cluster->registered_bounds();
    if (Distance(reg.center, needed.center) + needed.radius >
        reg.radius + kAuditEps) {
      AddViolation(&report,
                   tag + ": registered bounds no longer cover the cluster");
    }
    expected_cells.clear();
    grid_.CellsForCircle(reg, &expected_cells);
    std::sort(expected_cells.begin(), expected_cells.end());
    const std::vector<uint32_t>* actual = grid_.CellsOf(cid);
    SCUBA_CHECK(actual != nullptr);  // grid_.Contains(cid) held above
    std::vector<uint32_t> actual_sorted = *actual;
    std::sort(actual_sorted.begin(), actual_sorted.end());
    if (actual_sorted != expected_cells) {
      AddViolation(&report, tag + ": grid cell placement diverges (" +
                               std::to_string(actual_sorted.size()) +
                               " cells occupied, " +
                               std::to_string(expected_cells.size()) +
                               " expected)");
    }
  }
  // Reverse direction: every grid key must name a live cluster.
  for (uint32_t key : grid_.Keys()) {
    ++report.grid_keys_checked;
    if (store_.GetCluster(key) == nullptr) {
      AddViolation(&report, "grid: orphan key " + std::to_string(key) +
                                " names no stored cluster");
    }
  }
  return report;
}

Status ScubaEngine::RebuildGridFromStore() {
  grid_.Clear();
  for (ClusterId cid : store_.SortedClusterIds()) {
    MovingCluster* cluster = store_.GetCluster(cid);
    SCUBA_CHECK(cluster != nullptr);
    // Reset the lazy-registration memo so the sync below re-registers from
    // scratch instead of trusting stale bounds.
    cluster->set_registered_bounds(Circle{});
    SCUBA_RETURN_IF_ERROR(SyncClusterGrid(&grid_, cluster,
                                          options_.query_reach_aware,
                                          options_.grid_sync_padding));
  }
  return Status::OK();
}

Status ScubaEngine::AuditAndHeal() {
  ++stats_.invariant_audits;
  const InvariantAuditReport report = AuditInvariants();
  if (report.clean()) return Status::OK();
  stats_.invariant_violations += report.violations_total;
  SCUBA_RETURN_IF_ERROR(RebuildGridFromStore());
  ++stats_.invariant_repairs;
  ++stats_.invariant_audits;
  const InvariantAuditReport recheck = AuditInvariants();
  if (!recheck.clean()) {
    return Status::Corruption(
        "invariant audit still failing after grid rebuild: " +
        recheck.ToString());
  }
  return Status::OK();
}

Status ScubaEngine::SplitOversizedClusters() {
  const double max_radius = options_.split_radius_factor * options_.theta_d;
  const std::vector<ClusterId> cids = store_.SortedClusterIds();
  for (ClusterId cid : cids) {
    MovingCluster* cluster = store_.GetCluster(cid);
    SCUBA_CHECK(cluster != nullptr);
    cluster->RecomputeTightBounds();
    if (!ShouldSplit(*cluster, max_radius)) continue;
    // Allocated in named locals: as function arguments the two calls could
    // run in either order, leaving left/right id assignment unspecified.
    const ClusterId left_id = store_.NextClusterId();
    const ClusterId right_id = store_.NextClusterId();
    Result<SplitResult> split = SplitCluster(*cluster, left_id, right_id);
    if (!split.ok()) continue;  // co-located members etc.: keep as-is
    SCUBA_RETURN_IF_ERROR(grid_.Remove(cid));
    SCUBA_RETURN_IF_ERROR(store_.RemoveCluster(cid));
    SCUBA_RETURN_IF_ERROR(SyncClusterGrid(&grid_, &split->left,
                                          options_.query_reach_aware,
                                          options_.grid_sync_padding));
    SCUBA_RETURN_IF_ERROR(SyncClusterGrid(&grid_, &split->right,
                                          options_.query_reach_aware,
                                          options_.grid_sync_padding));
    SCUBA_RETURN_IF_ERROR(store_.AddCluster(std::move(split->left)));
    SCUBA_RETURN_IF_ERROR(store_.AddCluster(std::move(split->right)));
    ++phase_stats_.clusters_split;
  }
  return Status::OK();
}

Status ScubaEngine::PostJoinMaintenance(Timestamp now, double* worker_seconds,
                                        PostJoinTimings* timings) {
  *worker_seconds = 0.0;
  if (options_.enable_cluster_splitting) {
    SCUBA_RETURN_IF_ERROR(SplitOversizedClusters());
  }
  // Collect ids first; dissolution mutates the store. Sorted so the serial
  // and sharded paths walk the exact same sequence.
  const std::vector<ClusterId> cids = store_.SortedClusterIds();
  const double nucleus = shedder_.nucleus_radius();
  const bool timed = timings != nullptr;

  if (resolved_ingest_threads_ <= 1 || cids.size() <= 1) {
    Stopwatch serial;
    Stopwatch lap;
    auto take_lap = [&](double* into) {
      if (timed) {
        *into += lap.ElapsedSeconds();
        lap.Start();
      }
    };
    for (ClusterId cid : cids) {
      MovingCluster* cluster = store_.GetCluster(cid);
      SCUBA_CHECK(cluster != nullptr);
      if (timed) lap.Start();
      cluster->RecomputeTightBounds();
      take_lap(&timings->tighten_seconds);
      if (nucleus > 0.0) {
        phase_stats_.members_shed_maintenance +=
            cluster->ShedPositions(nucleus);
      }
      take_lap(&timings->shed_seconds);
      // Dissolve clusters that pass their destination before the next round
      // (paper: "If at time T + Delta the cluster passes its destination
      // node, the cluster gets dissolved."). Members re-cluster with their
      // next updates.
      Timestamp expiry = cluster->ComputeExpiryTime(now);
      if (expiry <= now + options_.delta) {
        SCUBA_RETURN_IF_ERROR(grid_.Remove(cid));
        SCUBA_RETURN_IF_ERROR(store_.RemoveCluster(cid));
        ++phase_stats_.clusters_dissolved_expired;
        take_lap(&timings->expire_seconds);
        continue;
      }
      take_lap(&timings->expire_seconds);
      // Relocate to the expected position at the next evaluation time.
      cluster->Translate(cluster->Velocity() *
                         static_cast<double>(options_.delta));
      SCUBA_RETURN_IF_ERROR(SyncClusterGrid(&grid_, cluster,
                                            options_.query_reach_aware,
                                            options_.grid_sync_padding));
      take_lap(&timings->translate_seconds);
    }
    *worker_seconds = serial.ElapsedSeconds();
  } else {
    // Sharded upkeep: each task pulls cluster chunks and runs the purely
    // per-cluster work (tighten, shed, expiry check, translate, grid-sync
    // planning) on the live cluster — clusters are disjoint, the store and
    // grid are only read. Dissolutions and re-registrations are recorded per
    // cluster and applied below in ascending cid order, which is exactly the
    // serial loop's mutation sequence.
    struct Outcome {
      uint64_t shed = 0;
      bool dissolve = false;
      bool resync = false;
      Circle registration;
    };
    std::vector<Outcome> outcomes(cids.size());
    std::vector<PostJoinTimings> task_timings(
        timed ? resolved_ingest_threads_ : 0);
    std::atomic<size_t> cursor{0};
    constexpr size_t kChunk = 16;
    *worker_seconds = 0.0;
    SCUBA_RETURN_IF_ERROR(RunTaskSet(
        IngestPool(), resolved_ingest_threads_, [&](uint32_t task) {
          PostJoinTimings* tt = timed ? &task_timings[task] : nullptr;
          Stopwatch lap;
          for (;;) {
            size_t begin = cursor.fetch_add(kChunk, std::memory_order_relaxed);
            if (begin >= cids.size()) break;
            size_t end = std::min(cids.size(), begin + kChunk);
            for (size_t i = begin; i < end; ++i) {
              MovingCluster* cluster = store_.GetCluster(cids[i]);
              SCUBA_CHECK(cluster != nullptr);
              Outcome& out = outcomes[i];
              if (tt != nullptr) lap.Start();
              cluster->RecomputeTightBounds();
              if (tt != nullptr) {
                tt->tighten_seconds += lap.ElapsedSeconds();
                lap.Start();
              }
              if (nucleus > 0.0) out.shed = cluster->ShedPositions(nucleus);
              if (tt != nullptr) {
                tt->shed_seconds += lap.ElapsedSeconds();
                lap.Start();
              }
              if (cluster->ComputeExpiryTime(now) <= now + options_.delta) {
                out.dissolve = true;
                if (tt != nullptr) tt->expire_seconds += lap.ElapsedSeconds();
                continue;
              }
              if (tt != nullptr) {
                tt->expire_seconds += lap.ElapsedSeconds();
                lap.Start();
              }
              cluster->Translate(cluster->Velocity() *
                                 static_cast<double>(options_.delta));
              out.resync = PlanClusterGridSync(
                  grid_, cluster, options_.query_reach_aware,
                  options_.grid_sync_padding, &out.registration);
              if (tt != nullptr) tt->translate_seconds += lap.ElapsedSeconds();
            }
          }
        }, worker_seconds));
    if (timed) {
      for (const PostJoinTimings& tt : task_timings) {
        timings->tighten_seconds += tt.tighten_seconds;
        timings->shed_seconds += tt.shed_seconds;
        timings->expire_seconds += tt.expire_seconds;
        timings->translate_seconds += tt.translate_seconds;
      }
    }
    for (size_t i = 0; i < cids.size(); ++i) {
      phase_stats_.members_shed_maintenance += outcomes[i].shed;
      if (outcomes[i].dissolve) {
        SCUBA_RETURN_IF_ERROR(grid_.Remove(cids[i]));
        SCUBA_RETURN_IF_ERROR(store_.RemoveCluster(cids[i]));
        ++phase_stats_.clusters_dissolved_expired;
      } else if (outcomes[i].resync) {
        SCUBA_RETURN_IF_ERROR(
            grid_.Contains(cids[i])
                ? grid_.Update(cids[i], outcomes[i].registration)
                : grid_.Insert(cids[i], outcomes[i].registration));
      }
    }
  }

  // Feed the shedder and propagate the (possibly new) nucleus radius to the
  // ingest path for the next interval.
  shedder_.ObserveMemoryUsage(EstimateMemoryUsage());
  clusterer_.set_nucleus_radius(shedder_.nucleus_radius());
  return Status::OK();
}

size_t ScubaEngine::EstimateMemoryUsage() const {
  return sizeof(ScubaEngine) + store_.EstimateMemoryUsage() +
         grid_.EstimateMemoryUsage() + join_executor_.EstimateMemoryUsage();
}

}  // namespace scuba
