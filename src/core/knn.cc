#include "core/knn.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

namespace scuba {

namespace {

/// Collects object-member candidates from a set of clusters into `out`.
void CollectObjects(const ClusterStore& store,
                    const std::vector<uint32_t>& cluster_ids, Point query,
                    std::vector<KnnNeighbor>* out) {
  for (uint32_t cid : cluster_ids) {
    const MovingCluster* c = store.GetCluster(cid);
    if (c == nullptr) continue;
    for (const ClusterMember& m : c->members()) {
      if (m.kind != EntityKind::kObject) continue;
      double d = Distance(query, c->MemberPosition(m));
      // A shed member may be anywhere within its nucleus: report the
      // optimistic (minimum possible) distance.
      if (m.shed) d = std::max(0.0, d - m.approx_radius);
      out->push_back(KnnNeighbor{m.id, d});
    }
  }
}

void RankAndTruncate(std::vector<KnnNeighbor>* neighbors, size_t k) {
  std::sort(neighbors->begin(), neighbors->end(),
            [](const KnnNeighbor& a, const KnnNeighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.oid < b.oid;
            });
  if (neighbors->size() > k) neighbors->resize(k);
}

}  // namespace

Result<std::vector<KnnNeighbor>> ClusterKnn(const ClusterStore& store,
                                            const GridIndex& cluster_grid,
                                            Point query, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");

  // Expand square rings of grid cells around the query until the k-th best
  // candidate distance is within the ring's guaranteed coverage radius.
  const double cell_extent =
      std::min(cluster_grid.region().Width(), cluster_grid.region().Height()) /
      cluster_grid.cells_per_side();
  const double max_extent =
      std::max(cluster_grid.region().Width(), cluster_grid.region().Height());

  std::vector<KnnNeighbor> neighbors;
  std::vector<uint32_t> cluster_ids;
  std::unordered_set<uint32_t> seen;
  for (double reach = cell_extent;; reach *= 2.0) {
    Rect probe{query.x - reach, query.y - reach, query.x + reach,
               query.y + reach};
    cluster_ids.clear();
    cluster_grid.CollectInRect(probe, &cluster_ids);
    std::vector<uint32_t> fresh;
    for (uint32_t cid : cluster_ids) {
      if (seen.insert(cid).second) fresh.push_back(cid);
    }
    CollectObjects(store, fresh, query, &neighbors);
    RankAndTruncate(&neighbors, k);
    // `reach` bounds the covered L-inf radius; any unseen cluster overlapping
    // the probe square is registered in one of its cells, so if we already
    // hold k candidates within `reach`, no farther cluster can beat them.
    bool covered = neighbors.size() >= k && neighbors.back().distance <= reach;
    if (covered || reach > 2.0 * max_extent) break;
  }
  return neighbors;
}

Result<std::vector<KnnNeighbor>> BruteForceKnn(const ClusterStore& store,
                                               Point query, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  std::vector<KnnNeighbor> neighbors;
  for (const auto& [cid, cluster] : store.clusters()) {
    (void)cid;
    for (const ClusterMember& m : cluster.members()) {
      if (m.kind != EntityKind::kObject) continue;
      double d = Distance(query, cluster.MemberPosition(m));
      if (m.shed) d = std::max(0.0, d - m.approx_radius);
      neighbors.push_back(KnnNeighbor{m.id, d});
    }
  }
  RankAndTruncate(&neighbors, k);
  return neighbors;
}

}  // namespace scuba
