// KnnMonitor: continuous k-nearest-neighbour queries over moving clusters.
//
// The paper (§1) sketches kNN applicability: "for kNN queries, moving
// clusters that are not intersecting with other moving clusters and contain
// at least k members can be assumed to contain nearest members of the query
// object". This monitor registers standing kNN queries (a focal point that
// may be re-positioned by updates, plus k) and answers all of them each
// evaluation round from the engine's ClusterStore/ClusterGrid via the
// cluster-pruned search in core/knn.h.

#ifndef SCUBA_CORE_KNN_MONITOR_H_
#define SCUBA_CORE_KNN_MONITOR_H_

#include <unordered_map>
#include <vector>

#include "cluster/cluster_store.h"
#include "common/status.h"
#include "core/knn.h"
#include "index/grid_index.h"

namespace scuba {

/// A standing kNN query: "continuously report the k objects nearest to me".
struct KnnQuery {
  QueryId qid = 0;
  Point position;
  size_t k = 1;
};

/// One round's answer for one standing query.
struct KnnAnswer {
  QueryId qid = 0;
  std::vector<KnnNeighbor> neighbors;  ///< Sorted by distance, at most k.
};

class KnnMonitor {
 public:
  /// Registers or re-positions a standing query. Fails on k == 0.
  Status Upsert(const KnnQuery& query);

  /// Removes a standing query. NotFound if absent.
  Status Remove(QueryId qid);

  size_t QueryCount() const { return queries_.size(); }

  /// Answers every registered query against the current cluster state.
  /// Answers are ordered by qid for determinism.
  Result<std::vector<KnnAnswer>> EvaluateAll(const ClusterStore& store,
                                             const GridIndex& cluster_grid) const;

  size_t EstimateMemoryUsage() const;

 private:
  std::unordered_map<QueryId, KnnQuery> queries_;
};

}  // namespace scuba

#endif  // SCUBA_CORE_KNN_MONITOR_H_
