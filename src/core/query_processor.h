// QueryProcessor: the interface shared by every continuous-query engine in
// this repository (SCUBA, the regular grid operator, the naive oracle).
//
// Contract: updates stream in via Ingest*Update (the paper's pre-join phase);
// every Delta ticks the driver calls Evaluate, which computes the current
// (query, object) matches and performs any engine-internal maintenance.

#ifndef SCUBA_CORE_QUERY_PROCESSOR_H_
#define SCUBA_CORE_QUERY_PROCESSOR_H_

#include <cstdint>
#include <span>
#include <string_view>

#include "common/status.h"
#include "common/types.h"
#include "core/result_set.h"
#include "gen/update.h"

namespace scuba {

/// Uniform per-engine counters the harness reads after a run. Engines fill
/// what applies; cluster-specific fields stay zero elsewhere.
struct EvalStats {
  uint64_t evaluations = 0;
  double total_join_seconds = 0.0;         ///< Time inside the join phase.
  double total_maintenance_seconds = 0.0;  ///< Pre/post-join cluster upkeep.
  double last_join_seconds = 0.0;
  double last_maintenance_seconds = 0.0;
  uint64_t total_results = 0;
  uint64_t last_result_count = 0;
  /// Individual object x query predicate evaluations (join-within work).
  uint64_t comparisons = 0;
  /// Cheap per-query cluster-bounds pre-checks (fine filter), counted apart
  /// from `comparisons` so the member-level predicate work maps cleanly onto
  /// the paper's Fig. 11 cost model.
  uint64_t bounds_checks = 0;
  /// SCUBA only: join-between tests and how many reported overlap.
  uint64_t cluster_pairs_tested = 0;
  uint64_t cluster_pairs_overlapping = 0;
  /// Parallel join: worker tasks the join phase fans out to (1 = serial),
  /// and the summed per-worker busy time. worker/wall is the parallel
  /// speedup actually realized; dividing by join_threads gives efficiency.
  uint32_t join_threads = 1;
  double last_join_worker_seconds = 0.0;
  double total_join_worker_seconds = 0.0;
  /// Parallel ingest/maintenance: worker tasks batched ingestion and
  /// post-join maintenance fan out to (1 = serial). The maintenance total
  /// above is the sum of the ingest and post-join wall components below;
  /// *_worker_seconds are the summed per-task busy times, mirroring the join
  /// accounting.
  uint32_t ingest_threads = 1;
  double last_ingest_seconds = 0.0;
  double total_ingest_seconds = 0.0;
  double last_postjoin_seconds = 0.0;
  double total_postjoin_seconds = 0.0;
  double last_ingest_worker_seconds = 0.0;
  double total_ingest_worker_seconds = 0.0;
  double last_postjoin_worker_seconds = 0.0;
  double total_postjoin_worker_seconds = 0.0;
  /// Stream hardening (docs/ARCHITECTURE.md §7). Updates dropped by the
  /// engine's own ingest screening under BadUpdatePolicy::kQuarantine/kRepair
  /// (tuples an upstream UpdateValidator already removed are not counted
  /// here).
  uint64_t updates_quarantined = 0;
  /// Invariant-audit lifecycle: audits run, violations detected across them,
  /// and grid rebuilds performed to heal a detected divergence.
  uint64_t invariant_audits = 0;
  uint64_t invariant_violations = 0;
  uint64_t invariant_repairs = 0;
  /// Durability (docs/ARCHITECTURE.md §8): snapshot checkpoints written, the
  /// size/latency of the last one, WAL append/fsync accounting, and — after a
  /// RecoverEngine — how many evaluation rounds the WAL replay re-executed.
  /// After a recovery the counters resume from the snapshot's values, so they
  /// are lower bounds on the lifetime totals (work between the snapshot and
  /// the crash that the WAL does not re-execute is not re-counted).
  uint64_t checkpoints_written = 0;
  uint64_t last_checkpoint_bytes = 0;
  double last_checkpoint_seconds = 0.0;
  double total_checkpoint_seconds = 0.0;
  uint64_t wal_records_appended = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t wal_bytes_appended = 0;
  uint64_t recovery_replay_rounds = 0;
};

class QueryProcessor {
 public:
  virtual ~QueryProcessor() = default;

  QueryProcessor() = default;
  QueryProcessor(const QueryProcessor&) = delete;
  QueryProcessor& operator=(const QueryProcessor&) = delete;

  /// Short engine name for reports ("scuba", "regular-grid", "naive").
  virtual std::string_view name() const = 0;

  /// Absorbs one location update from a moving object / query.
  virtual Status IngestObjectUpdate(const LocationUpdate& update) = 0;
  virtual Status IngestQueryUpdate(const QueryUpdate& update) = 0;

  /// Absorbs one tick's worth of updates at once — all objects, then all
  /// queries, semantically equivalent to the per-update calls in that order.
  /// Engines with a parallel ingest path override this; the default just
  /// loops.
  virtual Status IngestBatch(std::span<const LocationUpdate> objects,
                             std::span<const QueryUpdate> queries) {
    for (const LocationUpdate& u : objects) {
      SCUBA_RETURN_IF_ERROR(IngestObjectUpdate(u));
    }
    for (const QueryUpdate& u : queries) {
      SCUBA_RETURN_IF_ERROR(IngestQueryUpdate(u));
    }
    return Status::OK();
  }

  /// Runs one evaluation round at time `now`: fills `results` with the current
  /// matches (normalized) and performs post-round maintenance.
  virtual Status Evaluate(Timestamp now, ResultSet* results) = 0;

  /// Analytic heap footprint of all engine state.
  virtual size_t EstimateMemoryUsage() const = 0;

  virtual const EvalStats& stats() const = 0;
};

}  // namespace scuba

#endif  // SCUBA_CORE_QUERY_PROCESSOR_H_
