// Configuration of the SCUBA engine. Defaults mirror the paper's experimental
// settings (§6.1): Theta_D = 100 spatial units, Theta_S = 10 units/tick,
// a 100x100 ClusterGrid, Delta = 2 time units, no load shedding.

#ifndef SCUBA_CORE_SCUBA_OPTIONS_H_
#define SCUBA_CORE_SCUBA_OPTIONS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/types.h"
#include "geometry/rect.h"
#include "obs/telemetry.h"

namespace scuba {

/// What an ingest surface does with an update that fails validation
/// (stream hardening; see docs/ARCHITECTURE.md §7).
enum class BadUpdatePolicy : uint8_t {
  /// Reject the ingest call with the validation error (the historical
  /// behaviour): the stream stops at the first bad tuple.
  kStrict = 0,
  /// Drop the bad tuple, count it under its rejection reason and keep going.
  /// An UpdateValidator additionally retains dropped tuples in its
  /// QuarantineLog dead-letter buffer.
  kQuarantine,
  /// Clamp what is clampable (off-map positions into bounds, negative speed
  /// to zero, regressed timestamps to the batch time) and admit the repaired
  /// tuple; unrepairable tuples (non-finite fields, unknown destinations)
  /// fall back to quarantine. Only an UpdateValidator repairs; engines treat
  /// kRepair like kQuarantine.
  kRepair,
};

/// Stable lowercase name ("strict", "quarantine", "repair").
std::string_view BadUpdatePolicyName(BadUpdatePolicy policy);

/// Parses a policy name; InvalidArgument on anything else.
Result<BadUpdatePolicy> ParseBadUpdatePolicy(std::string_view name);

/// What a ShardedEngine does with per-shard load observations (see
/// docs/ARCHITECTURE.md §11). Pure observation for now: no mode changes what
/// the engine computes.
enum class RebalanceMode : uint8_t {
  kOff = 0,     ///< Collect per-shard load metrics only.
  /// Additionally log a recommended stripe split whenever the per-shard load
  /// imbalance of a round crosses the advisory threshold.
  kObserve,
};

/// Stable lowercase name ("off", "observe").
std::string_view RebalanceModeName(RebalanceMode mode);

/// Parses a rebalance mode name; InvalidArgument on anything else.
Result<RebalanceMode> ParseRebalanceMode(std::string_view name);

/// What a ShardedEngine round does when one shard's supervised task fails
/// (throws, stalls past the round deadline, or corrupts its state); see
/// docs/ARCHITECTURE.md §13.
enum class ShardFailurePolicy : uint8_t {
  /// Propagate the shard failure as the round's error (the historical
  /// behaviour: one failing shard takes the engine down).
  kFail = 0,
  /// Complete the round in degraded mode — the failed shard contributes its
  /// last-published results and is quarantined — and retry online recovery
  /// between rounds; after max_recovery_attempts failures the shard is
  /// evicted in place and keeps serving its stale slice.
  kDegrade,
  /// Like kDegrade, but after max_recovery_attempts failed recoveries the
  /// evicted shard's stripe is reassigned to its neighbors via the N->M
  /// reshard routing (graceful degradation to one fewer shard).
  kReassign,
};

/// Stable lowercase name ("fail", "degrade", "reassign").
std::string_view ShardFailurePolicyName(ShardFailurePolicy policy);

/// Parses a policy name; InvalidArgument on anything else.
Result<ShardFailurePolicy> ParseShardFailurePolicy(std::string_view name);

/// Shard supervision knobs (ShardedEngine only; docs/ARCHITECTURE.md §13).
/// Like thread counts and telemetry, none of these fields are semantic: a
/// clean run is bit-identical under every setting, so the snapshot options
/// fingerprint excludes them all.
struct ShardSupervisionOptions {
  ShardFailurePolicy on_failure = ShardFailurePolicy::kFail;
  /// Failed recovery attempts before the shard is evicted (kDegrade) or its
  /// stripe reassigned (kReassign).
  uint32_t max_recovery_attempts = 3;
  /// Round-based backoff: after the a-th failed attempt the next one waits
  /// backoff_base_rounds << (a-1) rounds.
  uint32_t backoff_base_rounds = 1;
  /// Wall-clock budget for one shard's join task; a task that finishes past
  /// it counts as stalled and fails the supervised round. 0 (default)
  /// disables the deadline.
  double round_deadline_seconds = 0.0;
  /// Deterministic fault injection (tests / chaos drills). A non-empty spec
  /// ("round:shard:class[,...]") or a positive rate arms the injector; the
  /// seed fixes the rate-based roll sequence.
  uint64_t fault_seed = 0x5C0BA;
  double fault_rate = 0.0;
  std::string fault_spec;

  /// True when fault injection is configured.
  bool FaultsArmed() const { return fault_rate > 0.0 || !fault_spec.empty(); }
  /// True when the engine should build a ShardSupervisor at all: any
  /// non-default failure handling, deadline, or armed injector.
  bool Enabled() const {
    return on_failure != ShardFailurePolicy::kFail ||
           round_deadline_seconds > 0.0 || FaultsArmed();
  }
};

enum class LoadSheddingMode : uint8_t {
  kNone = 0,   ///< Keep every member position (eta = 0).
  kFixed,      ///< Shed with a fixed nucleus fraction eta.
  kAdaptive,   ///< Adjust eta against a memory budget each maintenance round.
};

struct LoadSheddingOptions {
  LoadSheddingMode mode = LoadSheddingMode::kNone;
  /// Nucleus size as a fraction of Theta_D: eta = Theta_N / Theta_D in [0, 1].
  /// eta = 1 is full shedding (the cluster alone represents its members).
  double eta = 0.0;
  /// kAdaptive: shed harder while estimated memory exceeds this budget.
  size_t memory_budget_bytes = 0;
  /// kAdaptive: eta adjustment per maintenance round.
  double eta_step = 0.25;
  /// kAdaptive: relax shedding when memory falls below this fraction of the
  /// budget.
  double relax_fraction = 0.7;
};

/// When and how much durable state a DurabilityManager retains (see
/// docs/ARCHITECTURE.md §8). Orthogonal to query semantics: the checkpoint
/// policy never changes what an engine computes, only what survives a crash.
struct CheckpointPolicy {
  /// Write a snapshot after every N-th completed evaluation round. 0 disables
  /// automatic checkpoints (explicit Checkpoint() / final checkpoints only).
  uint32_t every_n_rounds = 0;
  /// Snapshots retained in the durable directory; older ones (and the WAL
  /// segments no retained snapshot needs) are pruned after each checkpoint.
  uint32_t keep_last_k = 2;
  /// WAL segment rotation threshold, bytes. A record always lands in one
  /// segment; rotation happens between records.
  uint64_t wal_segment_bytes = 1ull << 20;
};

struct ScubaOptions {
  /// Clustering distance threshold Theta_D (spatial units).
  double theta_d = 100.0;
  /// Clustering speed threshold Theta_S (spatial units / tick).
  double theta_s = 10.0;
  /// ClusterGrid granularity: cells per side (paper default 100x100).
  uint32_t grid_cells = 100;
  /// Data space covered by the ClusterGrid.
  Rect region{0.0, 0.0, 10000.0, 10000.0};
  /// Evaluation period Delta, in ticks; used to relocate clusters to their
  /// expected position at the next evaluation (post-join maintenance).
  Timestamp delta = 2;
  /// Ablation: probe all cells within Theta_D when clustering (see
  /// ClustererOptions::probe_theta_d_disk).
  bool probe_theta_d_disk = false;
  /// When true (default), the join-between filter and grid registration use
  /// query-reach-inflated cluster bounds, making the two-step join lossless.
  /// False reproduces the paper's pure member-circle pruning, which can drop
  /// matches whose query rectangle extends past the cluster circle (ablation;
  /// DESIGN.md deviation 4).
  bool query_reach_aware = true;
  /// Padding (spatial units) for lazy ClusterGrid registration: clusters are
  /// registered under padded bounds and re-registered only when they outgrow
  /// them, cutting grid churn on the ingest hot path. 0 re-registers on every
  /// bounds change (the paper's literal behaviour; ablation).
  double grid_sync_padding = 100.0;
  /// Extension (paper future work, §3.1): split clusters whose covering
  /// radius deteriorates past split_radius_factor * theta_d during post-join
  /// maintenance, restoring compactness without waiting for dissolution.
  bool enable_cluster_splitting = false;
  double split_radius_factor = 1.5;
  /// Worker tasks for the cluster-join phase: grid cells are sharded over
  /// this many tasks with per-task result/counter buffers (owner-cell dedup
  /// keeps them coordination-free). 0 = hardware concurrency; 1 (default) =
  /// serial execution on the calling thread, bit-identical to the historical
  /// single-threaded engine. Results are deterministic for every value.
  uint32_t join_threads = 1;
  /// Worker tasks for batched ingestion and post-join maintenance: updates
  /// are classified and clusters maintained in parallel against a read-only
  /// snapshot, with all mutations applied in a deterministic serial merge.
  /// 0 = hardware concurrency; 1 (default) = the historical serial
  /// per-update path. Output is bit-identical for every value.
  uint32_t ingest_threads = 1;
  /// Spatial shards for ShardedEngine execution: the grid's rows are carved
  /// into this many contiguous stripes, each owned by one EngineShard with
  /// its own ClusterStore slice, grid, shedder and join arena
  /// (docs/ARCHITECTURE.md §11). 1 (default) = the single-engine layout.
  /// Ignored by a plain ScubaEngine; results are bit-identical for every
  /// value.
  uint32_t shards = 1;
  /// Per-shard load handling for ShardedEngine runs. kObserve logs
  /// recommended stripe splits from the per-round load imbalance; kOff
  /// (default) only collects the metrics. Never changes results.
  RebalanceMode rebalance = RebalanceMode::kOff;
  /// What the engine's ingest paths do with updates that fail ValidateUpdate.
  /// kStrict (default) keeps the historical reject-the-call behaviour;
  /// kQuarantine/kRepair drop the tuple, bump EvalStats::updates_quarantined
  /// and keep the stream flowing (the degrade-gracefully mode for dirty
  /// production streams).
  BadUpdatePolicy on_bad_update = BadUpdatePolicy::kStrict;
  /// Run AuditInvariants() after every N-th evaluation round and self-heal
  /// grid/store divergence via RebuildGridFromStore(). 0 (default) disables
  /// the continuous audit; 1 audits every round.
  uint32_t audit_every_n_rounds = 0;

  /// Shard fault isolation for ShardedEngine runs (docs/ARCHITECTURE.md §13):
  /// failure policy, recovery retry schedule, round deadline, deterministic
  /// fault injection. Plain ScubaEngine ignores it. Excluded from the
  /// snapshot options fingerprint — a clean run is bit-identical under every
  /// setting.
  ShardSupervisionOptions supervision;

  /// Snapshot cadence / retention for runs with a durable directory attached
  /// (StreamPipeline / ReplayTrace with a DurabilityManager). Ignored — and
  /// harmless — when no durability is wired up.
  CheckpointPolicy checkpoint;

  LoadSheddingOptions shedding;

  /// Observability (docs/ARCHITECTURE.md §9): when Enabled(), the engine
  /// collects metrics and per-round trace spans and, if output paths are
  /// set, appends one JSON line per round. Purely observational — results
  /// and engine state are bit-identical with telemetry on or off, and the
  /// field is excluded from the snapshot options fingerprint.
  TelemetryOptions telemetry;

  /// InvalidArgument when any field is out of range.
  Status Validate() const;
};

}  // namespace scuba

#endif  // SCUBA_CORE_SCUBA_OPTIONS_H_
