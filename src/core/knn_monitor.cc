#include "core/knn_monitor.h"

#include <algorithm>
#include <string>

#include "common/memory_usage.h"

namespace scuba {

Status KnnMonitor::Upsert(const KnnQuery& query) {
  if (query.k == 0) {
    return Status::InvalidArgument("knn query needs k >= 1");
  }
  queries_[query.qid] = query;
  return Status::OK();
}

Status KnnMonitor::Remove(QueryId qid) {
  if (queries_.erase(qid) == 0) {
    return Status::NotFound("knn query " + std::to_string(qid) +
                            " is not registered");
  }
  return Status::OK();
}

Result<std::vector<KnnAnswer>> KnnMonitor::EvaluateAll(
    const ClusterStore& store, const GridIndex& cluster_grid) const {
  std::vector<KnnAnswer> answers;
  answers.reserve(queries_.size());
  for (const auto& [qid, query] : queries_) {
    Result<std::vector<KnnNeighbor>> neighbors =
        ClusterKnn(store, cluster_grid, query.position, query.k);
    if (!neighbors.ok()) return neighbors.status();
    answers.push_back(KnnAnswer{qid, std::move(neighbors).value()});
  }
  std::sort(answers.begin(), answers.end(),
            [](const KnnAnswer& a, const KnnAnswer& b) { return a.qid < b.qid; });
  return answers;
}

size_t KnnMonitor::EstimateMemoryUsage() const {
  return UnorderedMapMemoryUsage(queries_);
}

}  // namespace scuba
