// Cluster-based aggregate queries (paper §1): "clusters themselves serve as
// summaries of the objects they contain (i.e., aggregate) ... This can
// facilitate in answering some of the aggregate queries."
//
// Two evaluation modes over a region:
//  * ExactObjectCount — reconstructs member positions of the clusters whose
//    bounds overlap the region (grid-pruned, still exact);
//  * EstimateObjectCount — touches only cluster summaries (centroid, radius,
//    object count): each overlapping cluster contributes its object count
//    scaled by the fraction of its disk inside the region. O(#clusters in
//    region) instead of O(#members), with accuracy tied to cluster
//    compactness — exactly the summary trade-off the paper sketches.

#ifndef SCUBA_CORE_AGGREGATE_H_
#define SCUBA_CORE_AGGREGATE_H_

#include "cluster/cluster_store.h"
#include "common/status.h"
#include "geometry/rect.h"
#include "index/grid_index.h"

namespace scuba {

/// Exact number of (non-shed-exact or nucleus-reconstructed) object positions
/// inside `region`. Uses the cluster grid to prune. Fails on an empty region.
Result<size_t> ExactObjectCount(const ClusterStore& store,
                                const GridIndex& cluster_grid,
                                const Rect& region);

/// Summary-only estimate of the object count inside `region` (see file
/// comment). Fails on an empty region.
Result<double> EstimateObjectCount(const ClusterStore& store,
                                   const GridIndex& cluster_grid,
                                   const Rect& region);

/// Fraction of disk `c` lying inside `region`, estimated deterministically by
/// integrating the circle's horizontal slices clipped to the rectangle
/// (64-slice midpoint rule; exact for the full-overlap and no-overlap cases).
double DiskFractionInRect(const Circle& c, const Rect& region);

}  // namespace scuba

#endif  // SCUBA_CORE_AGGREGATE_H_
