// LoadShedder: decides the current nucleus radius Theta_N (paper §5).
//
// Fixed mode pins eta = Theta_N / Theta_D for the whole run (the Figure 13
// sweep). Adaptive mode reacts to memory pressure: every maintenance round it
// compares the engine's estimated memory against a budget and tightens or
// relaxes eta stepwise — the paper's "if the system is about to run out of
// memory, SCUBA begins load shedding ... if memory requirements are still
// high, SCUBA load-sheds positions of all cluster members".

#ifndef SCUBA_CORE_LOAD_SHEDDER_H_
#define SCUBA_CORE_LOAD_SHEDDER_H_

#include <cstdint>

#include "core/scuba_options.h"
#include "obs/metrics.h"

namespace scuba {

class LoadShedder {
 public:
  LoadShedder(const LoadSheddingOptions& options, double theta_d);

  /// Nucleus radius Theta_N to apply right now (0 = no shedding).
  double nucleus_radius() const { return eta_ * theta_d_; }
  double eta() const { return eta_; }
  LoadSheddingMode mode() const { return options_.mode; }

  /// Adaptive feedback: called once per maintenance round with the engine's
  /// current estimated memory. No-op in kNone/kFixed modes.
  void ObserveMemoryUsage(size_t bytes);

  /// Number of adaptive eta adjustments so far (observability).
  uint64_t adjustments() const { return adjustments_; }

  /// Observability (docs/ARCHITECTURE.md §9): registers the shedder's eta /
  /// nucleus-radius gauges and adjustment counter in `registry` and keeps
  /// them current from ObserveMemoryUsage. No-op when registry is null.
  void AttachMetrics(MetricsRegistry* registry);

 private:
  friend struct PersistAccess;  ///< Snapshot serialization (src/persist).
  LoadSheddingOptions options_;
  double theta_d_;
  double eta_;
  uint64_t adjustments_ = 0;
  Gauge eta_gauge_;
  Gauge nucleus_gauge_;
  Counter adjustments_counter_;
};

}  // namespace scuba

#endif  // SCUBA_CORE_LOAD_SHEDDER_H_
