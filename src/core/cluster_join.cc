#include "core/cluster_join.h"

#include <algorithm>

#include "common/check.h"
#include "common/memory_usage.h"
#include "common/stopwatch.h"

namespace scuba {
namespace {

/// Smallest cell present in both sorted cell lists, or UINT32_MAX if none.
/// Registered clusters always have >= 1 cell, so a shared-cell pair resolves
/// to a real owner. Two-pointer scan: cell lists are a handful of entries.
uint32_t MinCommonCell(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return a[i];
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return UINT32_MAX;
}

}  // namespace

ClusterJoinExecutor::ClusterJoinExecutor(bool query_reach_aware,
                                         uint32_t threads)
    : query_reach_aware_(query_reach_aware),
      resolved_threads_(threads == 0 ? ThreadPool::DefaultThreadCount()
                                     : threads) {}

ClusterJoinExecutor::~ClusterJoinExecutor() = default;

void ClusterJoinExecutor::AttachTelemetry(MetricsRegistry* registry) {
  collect_phase_timings_ = true;
  if (registry != nullptr) {
    Result<HistogramMetric> hist = registry->RegisterHistogram(
        "scuba_join_task_busy_seconds",
        "Busy seconds of one join worker task (one observation per task per "
        "round)",
        {1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0});
    if (hist.ok()) task_busy_histogram_ = *hist;
  }
}

ClusterJoinExecutor::JoinView ClusterJoinExecutor::BuildView(
    const MovingCluster& cluster, const GridIndex& grid) const {
  JoinView view;
  view.bounds = cluster.Bounds();
  view.coarse = query_reach_aware_ ? cluster.JoinBounds() : cluster.Bounds();
  view.mixed = cluster.HasMixedKinds();
  view.has_objects = cluster.object_count() > 0;
  view.has_queries = cluster.query_count() > 0;
  const std::vector<uint32_t>* cells = grid.CellsOf(cluster.cid());
  SCUBA_CHECK_MSG(cells != nullptr && !cells->empty(),
                  "view built for an unregistered cluster");
  view.cells = *cells;
  std::sort(view.cells.begin(), view.cells.end());
  for (const ClusterMember& m : cluster.members()) {
    Point pos = cluster.MemberPosition(m);
    if (!m.shed) {
      if (m.kind == EntityKind::kObject) {
        view.objects.push_back(ExactObject{pos, m.id, m.attrs});
      } else {
        view.queries.push_back(ExactQuery{pos, m.range_width, m.range_height,
                                          m.id, m.required_attrs});
      }
      continue;
    }
    // Shed member: group by nucleus. Members shed into the same nucleus share
    // a bit-identical reconstructed center, so a linear scan over the handful
    // of nuclei suffices.
    NucleusGroup* group = nullptr;
    for (NucleusGroup& g : view.nuclei) {
      if (g.center == pos && g.radius == m.approx_radius) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      view.nuclei.push_back(NucleusGroup{pos, m.approx_radius, {}, {}});
      group = &view.nuclei.back();
    }
    if (m.kind == EntityKind::kObject) {
      group->objects.push_back(NucleusObject{m.id, m.attrs});
    } else {
      group->queries.push_back(ExactQuery{pos, m.range_width, m.range_height,
                                          m.id, m.required_attrs});
    }
  }
  return view;
}

void ClusterJoinExecutor::JoinObjectsToQueries(const JoinView& objects_view,
                                               const JoinView& queries_view,
                                               Counters* counters,
                                               ResultSet* results) const {
  // Exact queries against exact objects and object nuclei.
  for (const ExactQuery& q : queries_view.queries) {
    Rect range = Rect::Centered(q.position, q.width, q.height);
    // Fine filter: the coarse join-between admits the cluster pair, but this
    // particular query may still be unable to reach the object cluster. A
    // bounds check, not a member comparison — counted apart so the paper's
    // Fig. 11 cost model (per-member predicate work) maps onto `comparisons`.
    ++counters->bounds_checks;
    if (!Intersects(range, objects_view.bounds)) continue;
    for (const ExactObject& o : objects_view.objects) {
      ++counters->comparisons;
      if (range.Contains(o.position) &&
          (o.attrs & q.required_attrs) == q.required_attrs) {
        results->Add(q.qid, o.oid);
      }
    }
    for (const NucleusGroup& nuc : objects_view.nuclei) {
      if (nuc.objects.empty()) continue;
      ++counters->comparisons;
      if (Intersects(range, Circle{nuc.center, nuc.radius})) {
        for (const NucleusObject& o : nuc.objects) {
          if ((o.attrs & q.required_attrs) == q.required_attrs) {
            results->Add(q.qid, o.oid);
          }
        }
      }
    }
  }
  // Shed queries: approximated at the nucleus center with their original
  // extent (paper semantics: shedding trades both false positives and false
  // negatives for join work; §6.6 measures both error kinds).
  for (const NucleusGroup& qnuc : queries_view.nuclei) {
    for (const ExactQuery& q : qnuc.queries) {
      Rect range = Rect::Centered(q.position, q.width, q.height);
      ++counters->bounds_checks;
      if (!Intersects(range, objects_view.bounds)) continue;
      for (const ExactObject& o : objects_view.objects) {
        ++counters->comparisons;
        if (range.Contains(o.position) &&
            (o.attrs & q.required_attrs) == q.required_attrs) {
          results->Add(q.qid, o.oid);
        }
      }
      for (const NucleusGroup& onuc : objects_view.nuclei) {
        if (onuc.objects.empty()) continue;
        ++counters->comparisons;
        if (Intersects(range, Circle{onuc.center, onuc.radius})) {
          for (const NucleusObject& o : onuc.objects) {
            if ((o.attrs & q.required_attrs) == q.required_attrs) {
              results->Add(q.qid, o.oid);
            }
          }
        }
      }
    }
  }
}

void ClusterJoinExecutor::ScanCells(const GridIndex& grid,
                                    std::atomic<uint32_t>* next_chunk,
                                    uint32_t chunk_size, Counters* counters,
                                    ResultSet* results,
                                    double* within_seconds) const {
  const uint32_t cell_count = static_cast<uint32_t>(grid.CellCount());
  for (;;) {
    const uint32_t begin =
        next_chunk->fetch_add(chunk_size, std::memory_order_relaxed);
    if (begin >= cell_count) return;
    const uint32_t end = std::min(begin + chunk_size, cell_count);
    for (uint32_t cell = begin; cell < end; ++cell) {
      const std::vector<uint32_t>& entries = grid.CellEntries(cell);
      for (size_t i = 0; i < entries.size(); ++i) {
        auto left_it = slot_of_.find(entries[i]);
        SCUBA_CHECK_MSG(left_it != slot_of_.end(),
                        "grid references a missing cluster");
        const JoinView& lview = views_[left_it->second];
        // Same-cluster join-within, evaluated only in the cluster's lowest
        // cell (once per round, even though the cluster appears in every cell
        // its circle overlaps).
        if (lview.mixed && lview.cells.front() == cell) {
          ++counters->within_joins_single;
          if (within_seconds != nullptr) {
            Stopwatch within_sw;
            JoinObjectsToQueries(lview, lview, counters, results);
            *within_seconds += within_sw.ElapsedSeconds();
          } else {
            JoinObjectsToQueries(lview, lview, counters, results);
          }
        }
        for (size_t j = i + 1; j < entries.size(); ++j) {
          auto right_it = slot_of_.find(entries[j]);
          SCUBA_CHECK_MSG(right_it != slot_of_.end(),
                          "grid references a missing cluster");
          const JoinView& rview = views_[right_it->second];
          // Owner-cell rule: only the lowest cell both clusters co-reside in
          // evaluates the pair. Every other co-resident cell skips it, so no
          // cross-task seen-set is needed and every pair runs exactly once.
          if (MinCommonCell(lview.cells, rview.cells) != cell) continue;
          // Only kind-complementary pairs can produce results (Alg. 1
          // line 18).
          bool complementary = (lview.has_objects && rview.has_queries) ||
                               (lview.has_queries && rview.has_objects);
          if (!complementary) continue;
          ++counters->pairs_tested;
          if (!Overlaps(lview.coarse, rview.coarse)) continue;
          ++counters->pairs_overlapping;
          ++counters->within_joins_pair;
          // Cross combinations only; same-cluster combinations come from the
          // per-cluster join-within above, so the union-based Algorithm 3
          // result is preserved without duplicate work.
          if (within_seconds != nullptr) {
            Stopwatch within_sw;
            JoinObjectsToQueries(lview, rview, counters, results);
            JoinObjectsToQueries(rview, lview, counters, results);
            *within_seconds += within_sw.ElapsedSeconds();
          } else {
            JoinObjectsToQueries(lview, rview, counters, results);
            JoinObjectsToQueries(rview, lview, counters, results);
          }
        }
      }
    }
  }
}

Status ClusterJoinExecutor::Execute(const ClusterStore& store,
                                    const GridIndex& grid,
                                    ResultSet* results) {
  if (results == nullptr) {
    return Status::InvalidArgument("results must be non-null");
  }
  results->Clear();
  views_.clear();
  slot_of_.clear();

  // Round setup (serial): enumerate the clusters registered in the grid and
  // assign each a dense view slot. Sorted by cid so slot assignment — and
  // with it every downstream buffer — is independent of hash-map iteration
  // order.
  std::vector<ClusterId> cids = store.SortedClusterIds();
  std::erase_if(cids, [&grid](ClusterId cid) { return !grid.Contains(cid); });
  views_.resize(cids.size());
  slot_of_.reserve(cids.size());
  for (uint32_t slot = 0; slot < cids.size(); ++slot) {
    slot_of_.emplace(cids[slot], slot);
  }

  const uint32_t tasks = resolved_threads_;
  if (tasks > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(tasks);
  }

  last_worker_seconds_ = 0.0;
  const bool timed = collect_phase_timings_;
  last_task_busy_seconds_.assign(timed ? tasks : 0, 0.0);
  std::vector<double> task_within(timed ? tasks : 0, 0.0);
  last_within_seconds_ = 0.0;

  // Phase A: precompute every JoinView in parallel. The table is immutable
  // from here on — the scan below only reads it.
  {
    std::atomic<uint32_t> next_slot{0};
    const uint32_t slot_chunk = std::max<uint32_t>(
        1, static_cast<uint32_t>(cids.size()) / (tasks * 8 + 1) + 1);
    last_worker_seconds_ += RunTaskSet(pool_.get(), tasks, [&](uint32_t t) {
      Stopwatch busy;
      for (;;) {
        const uint32_t begin =
            next_slot.fetch_add(slot_chunk, std::memory_order_relaxed);
        if (begin >= cids.size()) break;
        const uint32_t end =
            std::min<uint32_t>(begin + slot_chunk,
                               static_cast<uint32_t>(cids.size()));
        for (uint32_t slot = begin; slot < end; ++slot) {
          const MovingCluster* cluster = store.GetCluster(cids[slot]);
          SCUBA_CHECK(cluster != nullptr);
          views_[slot] = BuildView(*cluster, grid);
        }
      }
      if (timed) last_task_busy_seconds_[t] += busy.ElapsedSeconds();
    });
  }

  // Phase B: sharded cell scan into per-task buffers.
  const uint32_t cell_count = static_cast<uint32_t>(grid.CellCount());
  std::vector<ResultSet> task_results(tasks);
  std::vector<Counters> task_counters(tasks);
  {
    std::atomic<uint32_t> next_chunk{0};
    // Several chunks per task so one dense chunk cannot serialize the round;
    // contiguous so neighbouring cells (which share clusters) stay together.
    const uint32_t cell_chunk =
        std::max<uint32_t>(1, cell_count / (tasks * 8 + 1) + 1);
    last_worker_seconds_ += RunTaskSet(pool_.get(), tasks, [&](uint32_t t) {
      Stopwatch busy;
      ScanCells(grid, &next_chunk, cell_chunk, &task_counters[t],
                &task_results[t], timed ? &task_within[t] : nullptr);
      if (timed) {
        const double elapsed = busy.ElapsedSeconds();
        last_task_busy_seconds_[t] += elapsed;
        task_busy_histogram_.Observe(elapsed);
      }
    });
  }
  for (double w : task_within) last_within_seconds_ += w;

  // Merge: one reserve, buffer moves/bulk appends, a single Normalize.
  size_t total = 0;
  for (const ResultSet& r : task_results) total += r.size();
  results->Reserve(total);
  for (ResultSet& r : task_results) {
    results->AppendFrom(std::move(r));
  }
  results->Normalize();
  for (const Counters& c : task_counters) counters_ += c;
  return Status::OK();
}

size_t ClusterJoinExecutor::EstimateMemoryUsage() const {
  size_t bytes =
      VectorMemoryUsage(views_) + UnorderedMapMemoryUsage(slot_of_);
  for (const JoinView& view : views_) {
    bytes += VectorMemoryUsage(view.objects) + VectorMemoryUsage(view.queries) +
             VectorMemoryUsage(view.nuclei) + VectorMemoryUsage(view.cells);
  }
  return bytes;
}

}  // namespace scuba
