#include "core/cluster_join.h"

#include <algorithm>
#include <iterator>

#include "cluster/moving_cluster.h"
#include "common/check.h"
#include "common/memory_usage.h"
#include "common/stopwatch.h"
#include "core/join_kernels.h"

namespace scuba {
namespace {

/// slot_by_cid_ sentinel: cid not registered this round.
constexpr uint32_t kNoSlot = UINT32_MAX;

/// Smallest cell present in both sorted cell spans, or UINT32_MAX if none.
/// Registered clusters always have >= 1 cell, so a shared-cell pair resolves
/// to a real owner. Two-pointer scan: cell lists are a handful of entries.
uint32_t MinCommonCell(const uint32_t* a, uint32_t na, const uint32_t* b,
                       uint32_t nb) {
  uint32_t i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i] == b[j]) return a[i];
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return UINT32_MAX;
}

}  // namespace

ClusterJoinExecutor::ClusterJoinExecutor(bool query_reach_aware,
                                         uint32_t threads)
    : query_reach_aware_(query_reach_aware),
      resolved_threads_(threads == 0 ? ThreadPool::DefaultThreadCount()
                                     : threads) {}

ClusterJoinExecutor::~ClusterJoinExecutor() = default;

void ClusterJoinExecutor::AttachTelemetry(MetricsRegistry* registry) {
  collect_phase_timings_ = true;
  if (registry != nullptr) {
    Result<HistogramMetric> hist = registry->RegisterHistogram(
        "scuba_join_task_busy_seconds",
        "Busy seconds of one join worker task (one observation per task per "
        "round)",
        {1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0});
    if (hist.ok()) task_busy_histogram_ = *hist;
  }
}

void ClusterJoinExecutor::SlabArena::Resize(size_t objects, size_t queries,
                                            size_t cell_slots) {
  // resize() keeps capacity on shrink, so a steady-state round allocates
  // nothing — that is the arena-reuse contract.
  obj_xs.resize(objects);
  obj_ys.resize(objects);
  obj_ids.resize(objects);
  obj_attrs.resize(objects);
  qry_xs.resize(queries);
  qry_ys.resize(queries);
  qry_widths.resize(queries);
  qry_heights.resize(queries);
  qry_min_xs.resize(queries);
  qry_min_ys.resize(queries);
  qry_max_xs.resize(queries);
  qry_max_ys.resize(queries);
  qry_ids.resize(queries);
  qry_required.resize(queries);
  cells.resize(cell_slots);
}

size_t ClusterJoinExecutor::SlabArena::EstimateMemoryUsage() const {
  return VectorMemoryUsage(obj_xs) + VectorMemoryUsage(obj_ys) +
         VectorMemoryUsage(obj_ids) + VectorMemoryUsage(obj_attrs) +
         VectorMemoryUsage(qry_xs) + VectorMemoryUsage(qry_ys) +
         VectorMemoryUsage(qry_widths) + VectorMemoryUsage(qry_heights) +
         VectorMemoryUsage(qry_min_xs) + VectorMemoryUsage(qry_min_ys) +
         VectorMemoryUsage(qry_max_xs) + VectorMemoryUsage(qry_max_ys) +
         VectorMemoryUsage(qry_ids) + VectorMemoryUsage(qry_required) +
         VectorMemoryUsage(cells);
}

void ClusterJoinExecutor::FillView(uint32_t slot,
                                   const MovingCluster& cluster) {
  JoinView& view = views_[slot];
  view.bounds = cluster.Bounds();
  view.coarse = query_reach_aware_ ? cluster.JoinBounds() : cluster.Bounds();
  view.mixed = cluster.HasMixedKinds();
  view.has_objects = cluster.object_count() > 0;
  view.has_queries = cluster.query_count() > 0;

  // Cell list: copy into the arena span, sorted ascending (owner-cell rule).
  const std::vector<uint32_t>& cells = *cell_lists_[slot];
  uint32_t* cell_span = arena_.cells.data() + view.cells_begin;
  std::copy(cells.begin(), cells.end(), cell_span);
  std::sort(cell_span, cell_span + view.cells_count);

  // Exact members into the SoA slabs (members() order, shed skipped).
  MemberExportSpans spans;
  spans.obj_xs = arena_.obj_xs.data() + view.obj_begin;
  spans.obj_ys = arena_.obj_ys.data() + view.obj_begin;
  spans.obj_ids = arena_.obj_ids.data() + view.obj_begin;
  spans.obj_attrs = arena_.obj_attrs.data() + view.obj_begin;
  spans.qry_xs = arena_.qry_xs.data() + view.qry_begin;
  spans.qry_ys = arena_.qry_ys.data() + view.qry_begin;
  spans.qry_widths = arena_.qry_widths.data() + view.qry_begin;
  spans.qry_heights = arena_.qry_heights.data() + view.qry_begin;
  spans.qry_ids = arena_.qry_ids.data() + view.qry_begin;
  spans.qry_required = arena_.qry_required.data() + view.qry_begin;
  const auto [exported_objects, exported_queries] =
      cluster.ExportExactMembers(spans);
  SCUBA_CHECK(exported_objects == view.obj_count &&
              exported_queries == view.qry_count);

  // Hoisted range rectangles: Rect::Centered of every exact query, computed
  // once per round here instead of once per view pass in the join-within.
  for (uint32_t i = 0; i < view.qry_count; ++i) {
    const size_t q = view.qry_begin + i;
    arena_.qry_min_xs[q] = arena_.qry_xs[q] - arena_.qry_widths[q] / 2;
    arena_.qry_min_ys[q] = arena_.qry_ys[q] - arena_.qry_heights[q] / 2;
    arena_.qry_max_xs[q] = arena_.qry_xs[q] + arena_.qry_widths[q] / 2;
    arena_.qry_max_ys[q] = arena_.qry_ys[q] + arena_.qry_heights[q] / 2;
  }

  // Shed members: group by nucleus. Only walked when the cluster actually
  // has shed members (exact counts short of the member total). Members shed
  // into the same nucleus share a bit-identical reconstructed center, so a
  // linear scan over the handful of nuclei suffices.
  view.nuclei.clear();
  if (exported_objects + exported_queries == cluster.size()) return;
  for (const ClusterMember& m : cluster.members()) {
    if (!m.shed) continue;
    const Point pos = cluster.MemberPosition(m);
    NucleusGroup* group = nullptr;
    for (NucleusGroup& g : view.nuclei) {
      if (g.center == pos && g.radius == m.approx_radius) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      view.nuclei.push_back(NucleusGroup{pos, m.approx_radius, {}, {}});
      group = &view.nuclei.back();
    }
    if (m.kind == EntityKind::kObject) {
      group->objects.push_back(NucleusObject{m.id, m.attrs});
    } else {
      group->queries.push_back(ExactQuery{pos, m.range_width, m.range_height,
                                          m.id, m.required_attrs});
    }
  }
}

void ClusterJoinExecutor::EmitObjectMatches(const JoinView& objects_view,
                                            const Rect& range, QueryId qid,
                                            uint64_t required_attrs,
                                            JoinScratch* scratch,
                                            Counters* counters,
                                            ResultSet* results) const {
  // Exact objects through the batched kernels: rect-contains over the whole
  // slab, then the attrs-mask compaction (skipped for unfiltered queries —
  // required_attrs 0 admits everything). Indices come out ascending, so the
  // Add order matches the scalar member loop exactly.
  const uint32_t count = objects_view.obj_count;
  if (count > 0) {
    counters->comparisons += count;
    ObjectSlabView objects;
    objects.xs = arena_.obj_xs.data() + objects_view.obj_begin;
    objects.ys = arena_.obj_ys.data() + objects_view.obj_begin;
    objects.oids = arena_.obj_ids.data() + objects_view.obj_begin;
    objects.attrs = arena_.obj_attrs.data() + objects_view.obj_begin;
    objects.count = count;
    size_t matches = RectContainsPoints(range, objects, scratch->indices.data());
    if (required_attrs != 0) {
      matches = FilterByAttrs(objects.attrs, required_attrs,
                              scratch->indices.data(), matches);
    }
    for (size_t k = 0; k < matches; ++k) {
      results->Add(qid, objects.oids[scratch->indices[k]]);
    }
  }
  // Object nuclei: one predicate per shed group (scalar; rarely populated).
  for (const NucleusGroup& nuc : objects_view.nuclei) {
    if (nuc.objects.empty()) continue;
    ++counters->comparisons;
    if (Intersects(range, Circle{nuc.center, nuc.radius})) {
      for (const NucleusObject& o : nuc.objects) {
        if ((o.attrs & required_attrs) == required_attrs) {
          results->Add(qid, o.oid);
        }
      }
    }
  }
}

void ClusterJoinExecutor::JoinObjectsToQueries(const JoinView& objects_view,
                                               const JoinView& queries_view,
                                               JoinScratch* scratch,
                                               Counters* counters,
                                               ResultSet* results) const {
  // Exact queries: one batched circle/rect pre-filter over the whole query
  // slab. The fine filter is a bounds check, not a member comparison —
  // counted apart so the paper's Fig. 11 cost model (per-member predicate
  // work) maps onto `comparisons`. Admitted queries then run the member
  // kernels; emission order matches the scalar path (queries in member
  // order, each: exact objects, then object nuclei).
  const uint32_t qry_count = queries_view.qry_count;
  if (qry_count > 0) {
    counters->bounds_checks += qry_count;
    const uint32_t qry_begin = queries_view.qry_begin;
    QueryRectSlabView rects;
    rects.min_xs = arena_.qry_min_xs.data() + qry_begin;
    rects.min_ys = arena_.qry_min_ys.data() + qry_begin;
    rects.max_xs = arena_.qry_max_xs.data() + qry_begin;
    rects.max_ys = arena_.qry_max_ys.data() + qry_begin;
    rects.count = qry_count;
    RectCircleOverlap(rects, objects_view.bounds, scratch->mask.data());
    for (uint32_t i = 0; i < qry_count; ++i) {
      if (!scratch->mask[i]) continue;
      const size_t q = qry_begin + i;
      const Rect range{arena_.qry_min_xs[q], arena_.qry_min_ys[q],
                       arena_.qry_max_xs[q], arena_.qry_max_ys[q]};
      EmitObjectMatches(objects_view, range, arena_.qry_ids[q],
                        arena_.qry_required[q], scratch, counters, results);
    }
  }
  // Shed queries: approximated at the nucleus center with their original
  // extent (paper semantics: shedding trades both false positives and false
  // negatives for join work; §6.6 measures both error kinds).
  for (const NucleusGroup& qnuc : queries_view.nuclei) {
    for (const ExactQuery& q : qnuc.queries) {
      Rect range = Rect::Centered(q.position, q.width, q.height);
      ++counters->bounds_checks;
      if (!Intersects(range, objects_view.bounds)) continue;
      EmitObjectMatches(objects_view, range, q.qid, q.required_attrs, scratch,
                        counters, results);
    }
  }
}

void ClusterJoinExecutor::ScanCells(std::atomic<uint32_t>* next_chunk,
                                    uint32_t chunk_size, uint32_t cell_limit,
                                    JoinScratch* scratch, Counters* counters,
                                    ResultSet* results,
                                    double* within_seconds) const {
  const uint32_t* entries_base = cell_entries_.data();
  const uint32_t* all_cells = arena_.cells.data();
  for (;;) {
    const uint32_t begin =
        next_chunk->fetch_add(chunk_size, std::memory_order_relaxed);
    if (begin >= cell_limit) return;
    const uint32_t end = std::min(begin + chunk_size, cell_limit);
    for (uint32_t cell = begin; cell < end; ++cell) {
      const uint32_t* entries = entries_base + cell_offsets_[cell];
      const uint32_t entry_count = cell_offsets_[cell + 1] - cell_offsets_[cell];
      for (uint32_t i = 0; i < entry_count; ++i) {
        const uint32_t left_cid = entries[i];
        SCUBA_CHECK_MSG(left_cid < slot_by_cid_.size() &&
                            slot_by_cid_[left_cid] != kNoSlot,
                        "grid references a missing cluster");
        const JoinView& lview = views_[slot_by_cid_[left_cid]];
        const uint32_t* lcells = all_cells + lview.cells_begin;
        // Same-cluster join-within, evaluated only in the cluster's lowest
        // cell (once per round, even though the cluster appears in every cell
        // its circle overlaps).
        if (lview.mixed && lcells[0] == cell) {
          ++counters->within_joins_single;
          if (within_seconds != nullptr) {
            Stopwatch within_sw;
            JoinObjectsToQueries(lview, lview, scratch, counters, results);
            *within_seconds += within_sw.ElapsedSeconds();
          } else {
            JoinObjectsToQueries(lview, lview, scratch, counters, results);
          }
        }
        for (uint32_t j = i + 1; j < entry_count; ++j) {
          const uint32_t right_cid = entries[j];
          SCUBA_CHECK_MSG(right_cid < slot_by_cid_.size() &&
                              slot_by_cid_[right_cid] != kNoSlot,
                          "grid references a missing cluster");
          const JoinView& rview = views_[slot_by_cid_[right_cid]];
          // Owner-cell rule: only the lowest cell both clusters co-reside in
          // evaluates the pair. Every other co-resident cell skips it, so no
          // cross-task seen-set is needed and every pair runs exactly once.
          if (MinCommonCell(lcells, lview.cells_count,
                            all_cells + rview.cells_begin,
                            rview.cells_count) != cell) {
            continue;
          }
          // Only kind-complementary pairs can produce results (Alg. 1
          // line 18).
          bool complementary = (lview.has_objects && rview.has_queries) ||
                               (lview.has_queries && rview.has_objects);
          if (!complementary) continue;
          ++counters->pairs_tested;
          if (!Overlaps(lview.coarse, rview.coarse)) continue;
          ++counters->pairs_overlapping;
          ++counters->within_joins_pair;
          // Cross combinations only; same-cluster combinations come from the
          // per-cluster join-within above, so the union-based Algorithm 3
          // result is preserved without duplicate work.
          if (within_seconds != nullptr) {
            Stopwatch within_sw;
            JoinObjectsToQueries(lview, rview, scratch, counters, results);
            JoinObjectsToQueries(rview, lview, scratch, counters, results);
            *within_seconds += within_sw.ElapsedSeconds();
          } else {
            JoinObjectsToQueries(lview, rview, scratch, counters, results);
            JoinObjectsToQueries(rview, lview, scratch, counters, results);
          }
        }
      }
    }
  }
}

Status ClusterJoinExecutor::Execute(const ClusterStore& store,
                                    const GridIndex& grid,
                                    ResultSet* results) {
  return ExecuteScoped(store, nullptr, grid,
                       /*cell_begin=*/0,
                       static_cast<uint32_t>(grid.CellCount()), results);
}

Status ClusterJoinExecutor::ExecuteScoped(const ClusterStore& store,
                                          const ClusterStore* ghosts,
                                          const GridIndex& grid,
                                          uint32_t cell_begin,
                                          uint32_t cell_end,
                                          ResultSet* results) {
  if (results == nullptr) {
    return Status::InvalidArgument("results must be non-null");
  }
  results->Clear();

  // Round setup (serial): enumerate the clusters registered in the grid and
  // assign each a dense view slot. Sorted by cid so slot assignment — and
  // with it every downstream buffer — is independent of hash-map iteration
  // order. The cid→slot mapping is a dense table (cids are compact enough
  // that one uint32 per id beats per-entry hashing in the scan by a wide
  // margin); kNoSlot marks ids absent this round.
  std::vector<ClusterId> cids = store.SortedClusterIds();
  if (ghosts != nullptr) {
    // Owned + ghost clusters, merged ascending. The two stores are disjoint
    // by the ghost protocol (a shard never ghosts a cluster it owns), but a
    // unique() pass keeps a violation from corrupting slot assignment.
    std::vector<ClusterId> ghost_cids = ghosts->SortedClusterIds();
    std::vector<ClusterId> merged;
    merged.reserve(cids.size() + ghost_cids.size());
    std::merge(cids.begin(), cids.end(), ghost_cids.begin(), ghost_cids.end(),
               std::back_inserter(merged));
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    cids = std::move(merged);
  }
  std::erase_if(cids, [&grid](ClusterId cid) { return !grid.Contains(cid); });
  const uint32_t view_count = static_cast<uint32_t>(cids.size());
  views_.resize(view_count);
  slot_by_cid_.assign(cids.empty() ? 0 : cids.back() + 1, kNoSlot);
  for (uint32_t slot = 0; slot < view_count; ++slot) {
    slot_by_cid_[cids[slot]] = slot;
  }

  const uint32_t tasks = resolved_threads_;
  if (tasks > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(tasks);
  }

  last_worker_seconds_ = 0.0;
  const bool timed = collect_phase_timings_;
  last_task_busy_seconds_.assign(timed ? tasks : 0, 0.0);
  std::vector<double> task_within(timed ? tasks : 0, 0.0);
  last_within_seconds_ = 0.0;

  const uint32_t slot_chunk = std::max<uint32_t>(
      1, view_count / (tasks * 8 + 1) + 1);

  // Phase A1 (parallel): per-slot sizing — cluster pointer, exact-member
  // counts and grid cell list, no position reconstruction yet.
  cluster_refs_.resize(view_count);
  cell_lists_.resize(view_count);
  obj_counts_.resize(view_count);
  qry_counts_.resize(view_count);
  {
    std::atomic<uint32_t> next_slot{0};
    SCUBA_RETURN_IF_ERROR(RunTaskSet(pool_.get(), tasks, [&](uint32_t t) {
      Stopwatch busy;
      for (;;) {
        const uint32_t begin =
            next_slot.fetch_add(slot_chunk, std::memory_order_relaxed);
        if (begin >= view_count) break;
        const uint32_t end = std::min(begin + slot_chunk, view_count);
        for (uint32_t slot = begin; slot < end; ++slot) {
          const MovingCluster* cluster = store.GetCluster(cids[slot]);
          if (cluster == nullptr && ghosts != nullptr) {
            cluster = ghosts->GetCluster(cids[slot]);
          }
          SCUBA_CHECK(cluster != nullptr);
          cluster_refs_[slot] = cluster;
          const std::vector<uint32_t>* cells = grid.CellsOf(cids[slot]);
          SCUBA_CHECK_MSG(cells != nullptr && !cells->empty(),
                          "view built for an unregistered cluster");
          cell_lists_[slot] = cells;
          size_t exact_objects = 0;
          size_t exact_queries = 0;
          cluster->CountExactMembers(&exact_objects, &exact_queries);
          obj_counts_[slot] = static_cast<uint32_t>(exact_objects);
          qry_counts_[slot] = static_cast<uint32_t>(exact_queries);
        }
      }
      if (timed) last_task_busy_seconds_[t] += busy.ElapsedSeconds();
    }, &last_worker_seconds_));
  }

  // Phase A2 (serial): prefix sums assign every view its disjoint arena
  // spans; one arena resize replaces the per-view vector allocations.
  size_t obj_total = 0;
  size_t qry_total = 0;
  size_t cell_total = 0;
  max_view_objects_ = 0;
  max_view_queries_ = 0;
  for (uint32_t slot = 0; slot < view_count; ++slot) {
    JoinView& view = views_[slot];
    view.obj_begin = static_cast<uint32_t>(obj_total);
    view.obj_count = obj_counts_[slot];
    view.qry_begin = static_cast<uint32_t>(qry_total);
    view.qry_count = qry_counts_[slot];
    view.cells_begin = static_cast<uint32_t>(cell_total);
    view.cells_count = static_cast<uint32_t>(cell_lists_[slot]->size());
    obj_total += view.obj_count;
    qry_total += view.qry_count;
    cell_total += view.cells_count;
    max_view_objects_ = std::max(max_view_objects_, view.obj_count);
    max_view_queries_ = std::max(max_view_queries_, view.qry_count);
  }
  arena_.Resize(obj_total, qry_total, cell_total);
  scratch_.resize(tasks);
  for (JoinScratch& scratch : scratch_) {
    scratch.indices.resize(max_view_objects_);
    scratch.mask.resize(max_view_queries_);
  }

  // Phase A3 (parallel): fill every JoinView — metadata, SoA slabs, hoisted
  // query rects, nuclei. The table is immutable from here on — the scan
  // below only reads it.
  {
    std::atomic<uint32_t> next_slot{0};
    SCUBA_RETURN_IF_ERROR(RunTaskSet(pool_.get(), tasks, [&](uint32_t t) {
      Stopwatch busy;
      for (;;) {
        const uint32_t begin =
            next_slot.fetch_add(slot_chunk, std::memory_order_relaxed);
        if (begin >= view_count) break;
        const uint32_t end = std::min(begin + slot_chunk, view_count);
        for (uint32_t slot = begin; slot < end; ++slot) {
          FillView(slot, *cluster_refs_[slot]);
        }
      }
      if (timed) last_task_busy_seconds_[t] += busy.ElapsedSeconds();
    }, &last_worker_seconds_));
  }

  // CSR snapshot of the grid for the scan: contiguous entry slab, no
  // per-cell heap buffer chasing. Buffers are reused across rounds, and the
  // rebuild is skipped entirely when the grid's generation counter shows no
  // mutation since the snapshot was last taken.
  if (cached_grid_ != &grid || cached_generation_ != grid.generation()) {
    grid.FlattenEntries(&cell_offsets_, &cell_entries_);
    cached_grid_ = &grid;
    cached_generation_ = grid.generation();
  } else {
    ++flatten_reuses_;
  }

  // Phase B: sharded cell scan into per-task buffers, restricted to the
  // caller's cell window.
  const uint32_t cell_limit =
      std::min(cell_end, static_cast<uint32_t>(grid.CellCount()));
  const uint32_t window =
      cell_begin < cell_limit ? cell_limit - cell_begin : 0;
  std::vector<ResultSet> task_results(tasks);
  std::vector<Counters> task_counters(tasks);
  {
    std::atomic<uint32_t> next_chunk{cell_begin};
    // Several chunks per task so one dense chunk cannot serialize the round;
    // contiguous so neighbouring cells (which share clusters) stay together.
    const uint32_t cell_chunk =
        std::max<uint32_t>(1, window / (tasks * 8 + 1) + 1);
    SCUBA_RETURN_IF_ERROR(RunTaskSet(pool_.get(), tasks, [&](uint32_t t) {
      Stopwatch busy;
      ScanCells(&next_chunk, cell_chunk, cell_limit, &scratch_[t],
                &task_counters[t], &task_results[t],
                timed ? &task_within[t] : nullptr);
      if (timed) {
        const double elapsed = busy.ElapsedSeconds();
        last_task_busy_seconds_[t] += elapsed;
        task_busy_histogram_.Observe(elapsed);
      }
    }, &last_worker_seconds_));
  }
  for (double w : task_within) last_within_seconds_ += w;

  // Merge: one reserve, buffer moves/bulk appends, a single Normalize.
  size_t total = 0;
  for (const ResultSet& r : task_results) total += r.size();
  results->Reserve(total);
  for (ResultSet& r : task_results) {
    results->AppendFrom(std::move(r));
  }
  results->Normalize();
  for (const Counters& c : task_counters) counters_ += c;
  return Status::OK();
}

size_t ClusterJoinExecutor::EstimateMemoryUsage() const {
  size_t bytes = VectorMemoryUsage(views_) + arena_.EstimateMemoryUsage() +
                 VectorMemoryUsage(slot_by_cid_) +
                 VectorMemoryUsage(cell_offsets_) +
                 VectorMemoryUsage(cell_entries_) +
                 VectorMemoryUsage(cluster_refs_) +
                 VectorMemoryUsage(cell_lists_) +
                 VectorMemoryUsage(obj_counts_) + VectorMemoryUsage(qry_counts_);
  bytes += VectorMemoryUsage(scratch_);
  for (const JoinScratch& scratch : scratch_) {
    bytes += VectorMemoryUsage(scratch.indices) +
             VectorMemoryUsage(scratch.mask);
  }
  // Nucleus groups are the one remaining per-view heap allocation (present
  // only under load shedding); member and cell data is all arena-accounted
  // above, so no per-view member walk remains.
  for (const JoinView& view : views_) {
    bytes += VectorMemoryUsage(view.nuclei);
    for (const NucleusGroup& group : view.nuclei) {
      bytes += VectorMemoryUsage(group.objects) +
               VectorMemoryUsage(group.queries);
    }
  }
  return bytes;
}

}  // namespace scuba
