#include "core/cluster_join.h"

#include <algorithm>

#include "common/check.h"
#include "common/memory_usage.h"

namespace scuba {

bool ClusterJoinExecutor::DoBetweenClusterJoin(const MovingCluster& left,
                                               const MovingCluster& right) {
  ++counters_.pairs_tested;
  bool overlap = query_reach_aware_
                     ? Overlaps(left.JoinBounds(), right.JoinBounds())
                     : Overlaps(left.Bounds(), right.Bounds());
  if (overlap) ++counters_.pairs_overlapping;
  return overlap;
}

const ClusterJoinExecutor::JoinView& ClusterJoinExecutor::ViewOf(
    const MovingCluster& cluster) {
  auto it = view_cache_.find(cluster.cid());
  if (it != view_cache_.end()) return it->second;

  JoinView view;
  view.bounds = cluster.Bounds();
  for (const ClusterMember& m : cluster.members()) {
    Point pos = cluster.MemberPosition(m);
    if (!m.shed) {
      if (m.kind == EntityKind::kObject) {
        view.objects.push_back(ExactObject{pos, m.id, m.attrs});
      } else {
        view.queries.push_back(ExactQuery{pos, m.range_width, m.range_height,
                                          m.id, m.required_attrs});
      }
      continue;
    }
    // Shed member: group by nucleus. Members shed into the same nucleus share
    // a bit-identical reconstructed center, so a linear scan over the handful
    // of nuclei suffices.
    NucleusGroup* group = nullptr;
    for (NucleusGroup& g : view.nuclei) {
      if (g.center == pos && g.radius == m.approx_radius) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      view.nuclei.push_back(NucleusGroup{pos, m.approx_radius, {}, {}});
      group = &view.nuclei.back();
    }
    if (m.kind == EntityKind::kObject) {
      group->objects.push_back(NucleusObject{m.id, m.attrs});
    } else {
      group->queries.push_back(ExactQuery{pos, m.range_width, m.range_height,
                                          m.id, m.required_attrs});
    }
  }
  return view_cache_.emplace(cluster.cid(), std::move(view)).first->second;
}

void ClusterJoinExecutor::JoinObjectsToQueries(const JoinView& objects_view,
                                               const JoinView& queries_view,
                                               ResultSet* results) {
  // Exact queries against exact objects and object nuclei.
  for (const ExactQuery& q : queries_view.queries) {
    Rect range = Rect::Centered(q.position, q.width, q.height);
    // Fine filter: the coarse join-between admits the cluster pair, but this
    // particular query may still be unable to reach the object cluster.
    ++counters_.comparisons;
    if (!Intersects(range, objects_view.bounds)) continue;
    for (const ExactObject& o : objects_view.objects) {
      ++counters_.comparisons;
      if (range.Contains(o.position) &&
          (o.attrs & q.required_attrs) == q.required_attrs) {
        results->Add(q.qid, o.oid);
      }
    }
    for (const NucleusGroup& nuc : objects_view.nuclei) {
      if (nuc.objects.empty()) continue;
      ++counters_.comparisons;
      if (Intersects(range, Circle{nuc.center, nuc.radius})) {
        for (const NucleusObject& o : nuc.objects) {
          if ((o.attrs & q.required_attrs) == q.required_attrs) {
            results->Add(q.qid, o.oid);
          }
        }
      }
    }
  }
  // Shed queries: approximated at the nucleus center with their original
  // extent (paper semantics: shedding trades both false positives and false
  // negatives for join work; §6.6 measures both error kinds).
  for (const NucleusGroup& qnuc : queries_view.nuclei) {
    for (const ExactQuery& q : qnuc.queries) {
      Rect range = Rect::Centered(q.position, q.width, q.height);
      ++counters_.comparisons;
      if (!Intersects(range, objects_view.bounds)) continue;
      for (const ExactObject& o : objects_view.objects) {
        ++counters_.comparisons;
        if (range.Contains(o.position) &&
            (o.attrs & q.required_attrs) == q.required_attrs) {
          results->Add(q.qid, o.oid);
        }
      }
      for (const NucleusGroup& onuc : objects_view.nuclei) {
        if (onuc.objects.empty()) continue;
        ++counters_.comparisons;
        if (Intersects(range, Circle{onuc.center, onuc.radius})) {
          for (const NucleusObject& o : onuc.objects) {
            if ((o.attrs & q.required_attrs) == q.required_attrs) {
              results->Add(q.qid, o.oid);
            }
          }
        }
      }
    }
  }
}

Status ClusterJoinExecutor::Execute(const ClusterStore& store,
                                    const GridIndex& grid,
                                    ResultSet* results) {
  if (results == nullptr) {
    return Status::InvalidArgument("results must be non-null");
  }
  results->Clear();
  seen_pairs_.clear();
  view_cache_.clear();

  const uint32_t cell_count = static_cast<uint32_t>(grid.CellCount());
  for (uint32_t cell = 0; cell < cell_count; ++cell) {
    const std::vector<uint32_t>& entries = grid.CellEntries(cell);
    for (size_t i = 0; i < entries.size(); ++i) {
      const MovingCluster* left = store.GetCluster(entries[i]);
      SCUBA_CHECK_MSG(left != nullptr, "grid references a missing cluster");
      // Same-cluster join-within (once per cluster per round, even though the
      // cluster appears in every cell its circle overlaps).
      uint64_t self_key =
          (static_cast<uint64_t>(left->cid()) << 32) | left->cid();
      if (left->HasMixedKinds() && seen_pairs_.insert(self_key).second) {
        ++counters_.within_joins_single;
        const JoinView& view = ViewOf(*left);
        JoinObjectsToQueries(view, view, results);
      }
      for (size_t j = i + 1; j < entries.size(); ++j) {
        const MovingCluster* right = store.GetCluster(entries[j]);
        SCUBA_CHECK_MSG(right != nullptr, "grid references a missing cluster");
        uint64_t lo = std::min(left->cid(), right->cid());
        uint64_t hi = std::max(left->cid(), right->cid());
        if (!seen_pairs_.insert((lo << 32) | hi).second) continue;
        // Only kind-complementary pairs can produce results (Alg. 1 line 18).
        bool complementary =
            (left->object_count() > 0 && right->query_count() > 0) ||
            (left->query_count() > 0 && right->object_count() > 0);
        if (!complementary) continue;
        if (DoBetweenClusterJoin(*left, *right)) {
          ++counters_.within_joins_pair;
          // Cross combinations only; same-cluster combinations come from the
          // per-cluster join-within above, so the union-based Algorithm 3
          // result is preserved without duplicate work.
          const JoinView& lview = ViewOf(*left);
          const JoinView& rview = ViewOf(*right);
          JoinObjectsToQueries(lview, rview, results);
          JoinObjectsToQueries(rview, lview, results);
        }
      }
    }
  }
  results->Normalize();
  return Status::OK();
}

size_t ClusterJoinExecutor::EstimateMemoryUsage() const {
  size_t bytes = UnorderedSetMemoryUsage(seen_pairs_) +
                 UnorderedMapMemoryUsage(view_cache_);
  for (const auto& [cid, view] : view_cache_) {
    (void)cid;
    bytes += VectorMemoryUsage(view.objects) + VectorMemoryUsage(view.queries) +
             VectorMemoryUsage(view.nuclei);
  }
  return bytes;
}

}  // namespace scuba
