// EngineSnapshotStats: the one-stop immutable aggregate of everything the
// SCUBA engine counts, returned by ScubaEngine::StatsSnapshot(). Replaced the
// four legacy per-subsystem accessors (stats / phase_stats / clusterer_stats
// / join_counters), whose deprecated public shims are now removed; only the
// QueryProcessor-interface stats() override remains, private on ScubaEngine.
//
// Reporting helpers (Format, averages, speedups) live here as methods so the
// derived figures come from one struct instead of reaching into EvalStats
// internals; the free functions in eval/engine_stats.h forward to them.

#ifndef SCUBA_CORE_ENGINE_SNAPSHOT_H_
#define SCUBA_CORE_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "cluster/leader_follower.h"
#include "core/cluster_join.h"
#include "core/load_shedder.h"
#include "core/query_processor.h"
#include "core/scuba_options.h"

namespace scuba {

/// SCUBA-specific maintenance counters beyond the uniform EvalStats.
struct ScubaPhaseStats {
  uint64_t clusters_dissolved_expired = 0;
  uint64_t members_shed_maintenance = 0;
  uint64_t clusters_split = 0;
};

/// Load-shedder state at snapshot time.
struct ShedderSnapshotStats {
  LoadSheddingMode mode = LoadSheddingMode::kNone;
  double eta = 0.0;
  double nucleus_radius = 0.0;
  uint64_t adjustments = 0;
};

struct EngineSnapshotStats {
  EvalStats eval;
  ScubaPhaseStats phase;
  ClustererStats clusterer;
  ClusterJoinExecutor::Counters join;
  ShedderSnapshotStats shedder;
  /// Live moving clusters at snapshot time.
  size_t clusters = 0;

  /// One-line summary (historical FormatStats format, byte for byte): join /
  /// maintenance seconds, results, comparisons, plus conditional sections for
  /// parallel, hardening and durability counters when present.
  std::string Format(std::string_view engine_name) const;

  /// Average join seconds per evaluation round (0 when no rounds ran).
  double AvgJoinSeconds() const;
  /// Average maintenance seconds per evaluation round.
  double AvgMaintenanceSeconds() const;
  /// Fraction of tested cluster pairs that overlapped (0 when none tested).
  double JoinBetweenSelectivity() const;
  /// Realized join-phase speedup: summed worker busy time over join wall
  /// time (1.0 = serial; 0 when no join time was recorded).
  double JoinParallelSpeedup() const;
  /// Parallel efficiency in [0, 1]: JoinParallelSpeedup / join_threads.
  double JoinParallelEfficiency() const;
  /// Realized batched-ingest speedup (0 when no ingest time was recorded).
  double IngestParallelSpeedup() const;
  /// Realized post-join maintenance speedup (0 when none was recorded).
  double PostJoinParallelSpeedup() const;
};

}  // namespace scuba

#endif  // SCUBA_CORE_ENGINE_SNAPSHOT_H_
