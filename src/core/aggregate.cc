#include "core/aggregate.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace scuba {

namespace {

/// Cluster ids whose registered cells overlap `region`.
std::vector<uint32_t> CandidateClusters(const GridIndex& grid,
                                        const Rect& region) {
  std::vector<uint32_t> out;
  grid.CollectInRect(region, &out);
  return out;
}

}  // namespace

double DiskFractionInRect(const Circle& c, const Rect& region) {
  if (c.radius <= 0.0) {
    return region.Contains(c.center) ? 1.0 : 0.0;
  }
  // Quick outs.
  Rect disk_box{c.center.x - c.radius, c.center.y - c.radius,
                c.center.x + c.radius, c.center.y + c.radius};
  if (!Intersects(region, c)) return 0.0;
  if (region.Contains(disk_box)) return 1.0;

  // Midpoint rule over horizontal slices of the disk clipped to the rect.
  constexpr int kSlices = 64;
  const double dy = 2.0 * c.radius / kSlices;
  double covered = 0.0;
  double total = 0.0;
  for (int i = 0; i < kSlices; ++i) {
    double y = c.center.y - c.radius + (i + 0.5) * dy;
    double half_w_sq = c.radius * c.radius - (y - c.center.y) * (y - c.center.y);
    if (half_w_sq <= 0.0) continue;
    double half_w = std::sqrt(half_w_sq);
    double x0 = c.center.x - half_w;
    double x1 = c.center.x + half_w;
    total += (x1 - x0) * dy;
    if (y < region.min_y || y > region.max_y) continue;
    double cx0 = std::max(x0, region.min_x);
    double cx1 = std::min(x1, region.max_x);
    if (cx1 > cx0) covered += (cx1 - cx0) * dy;
  }
  if (total <= 0.0) return 0.0;
  return std::clamp(covered / total, 0.0, 1.0);
}

Result<size_t> ExactObjectCount(const ClusterStore& store,
                                const GridIndex& cluster_grid,
                                const Rect& region) {
  if (region.Empty()) {
    return Status::InvalidArgument("aggregate region is empty");
  }
  size_t count = 0;
  for (uint32_t cid : CandidateClusters(cluster_grid, region)) {
    const MovingCluster* cluster = store.GetCluster(cid);
    if (cluster == nullptr) continue;
    if (cluster->object_count() == 0) continue;
    for (const ClusterMember& m : cluster->members()) {
      if (m.kind != EntityKind::kObject) continue;
      if (region.Contains(cluster->MemberPosition(m))) ++count;
    }
  }
  return count;
}

Result<double> EstimateObjectCount(const ClusterStore& store,
                                   const GridIndex& cluster_grid,
                                   const Rect& region) {
  if (region.Empty()) {
    return Status::InvalidArgument("aggregate region is empty");
  }
  double estimate = 0.0;
  for (uint32_t cid : CandidateClusters(cluster_grid, region)) {
    const MovingCluster* cluster = store.GetCluster(cid);
    if (cluster == nullptr || cluster->object_count() == 0) continue;
    double fraction = DiskFractionInRect(cluster->Bounds(), region);
    estimate += fraction * static_cast<double>(cluster->object_count());
  }
  return estimate;
}

}  // namespace scuba
