// Join results: (query, object) match pairs produced by an evaluation round.

#ifndef SCUBA_CORE_RESULT_SET_H_
#define SCUBA_CORE_RESULT_SET_H_

#include <algorithm>
#include <vector>

#include "common/memory_usage.h"
#include "common/types.h"

namespace scuba {

/// One answer tuple: object `oid` currently satisfies range query `qid`.
struct Match {
  QueryId qid = 0;
  ObjectId oid = 0;

  friend bool operator==(const Match&, const Match&) = default;
  friend auto operator<=>(const Match&, const Match&) = default;
};

/// The answer set of one evaluation round. Duplicates may be added (e.g. the
/// same pair discovered through two cluster pairs); Normalize() sorts and
/// dedups, and is called by engines before returning.
class ResultSet {
 public:
  void Add(QueryId qid, ObjectId oid) { matches_.push_back(Match{qid, oid}); }

  void Clear() {
    matches_.clear();
    degraded_shards_.clear();
  }

  /// Pre-sizes the match buffer (capacity only; size is untouched). Engines
  /// seed this with the previous round's match count — continuous queries
  /// change answers incrementally, so last round is an excellent estimate.
  void Reserve(size_t n) { matches_.reserve(n); }

  /// Steals `other`'s matches into this set (duplicates allowed until
  /// Normalize). When this set is empty and under-sized the donor buffer is
  /// adopted wholesale; otherwise the elements are appended in bulk. Either
  /// way `other` is left empty.
  void AppendFrom(ResultSet&& other) {
    if (matches_.empty() && matches_.capacity() < other.matches_.size()) {
      matches_ = std::move(other.matches_);
    } else {
      matches_.insert(matches_.end(), other.matches_.begin(),
                      other.matches_.end());
    }
    other.matches_.clear();
  }

  /// Sorts matches and removes duplicates.
  void Normalize() {
    std::sort(matches_.begin(), matches_.end());
    matches_.erase(std::unique(matches_.begin(), matches_.end()),
                   matches_.end());
  }

  size_t size() const { return matches_.size(); }
  bool empty() const { return matches_.empty(); }
  const std::vector<Match>& matches() const { return matches_; }

  /// Binary search; requires Normalize() first.
  bool Contains(QueryId qid, ObjectId oid) const {
    return std::binary_search(matches_.begin(), matches_.end(),
                              Match{qid, oid});
  }

  /// Degraded-mode provenance (docs/ARCHITECTURE.md §13): shard indices whose
  /// slice of this round's answer is the shard's last successfully published
  /// results rather than a fresh join. Empty on every clean round. Provenance,
  /// not content: operator== ignores it so twin-comparison tests compare
  /// answers only.
  void MarkDegraded(uint32_t shard) { degraded_shards_.push_back(shard); }
  const std::vector<uint32_t>& degraded_shards() const {
    return degraded_shards_;
  }
  bool degraded() const { return !degraded_shards_.empty(); }

  friend bool operator==(const ResultSet& a, const ResultSet& b) {
    return a.matches_ == b.matches_;
  }

  size_t EstimateMemoryUsage() const {
    return VectorMemoryUsage(matches_) + VectorMemoryUsage(degraded_shards_);
  }

 private:
  std::vector<Match> matches_;
  std::vector<uint32_t> degraded_shards_;
};

}  // namespace scuba

#endif  // SCUBA_CORE_RESULT_SET_H_
