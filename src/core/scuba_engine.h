// ScubaEngine: the paper's core contribution (§4, Algorithms 1-3).
//
// Execution has three phases per evaluation interval Delta:
//  1. *Cluster pre-join maintenance*: Ingest*Update routes every arriving
//     location update through the incremental Leader-Follower clusterer,
//     growing/creating/dissolving moving clusters (§3.2).
//  2. *Cluster-based joining* (Evaluate): delegated to ClusterJoinExecutor —
//     the two-step join-between / join-within over the ClusterGrid.
//  3. *Cluster post-join maintenance*: radii are tightened, load shedding is
//     applied, expiring clusters (those passing their destination before the
//     next round) are dissolved, and survivors are relocated along their
//     velocity vectors to their expected position at time T + Delta.
//
// With no load shedding and a 100% per-tick update rate, Evaluate returns
// exactly the same matches as a naive nested-loop join over the latest
// updates (enforced by integration tests).

#ifndef SCUBA_CORE_SCUBA_ENGINE_H_
#define SCUBA_CORE_SCUBA_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cluster/cluster_store.h"
#include "cluster/leader_follower.h"
#include "common/thread_pool.h"
#include "core/cluster_join.h"
#include "core/engine_snapshot.h"
#include "core/load_shedder.h"
#include "core/query_processor.h"
#include "core/scuba_options.h"
#include "index/grid_index.h"
#include "obs/telemetry.h"

namespace scuba {

struct PersistAccess;  // snapshot serialization back door (src/persist)

/// Outcome of one ScubaEngine::AuditInvariants() pass: what was checked and
/// every divergence found (messages capped at kMaxViolationMessages;
/// violations_total keeps counting past the cap).
struct InvariantAuditReport {
  static constexpr size_t kMaxViolationMessages = 32;

  size_t clusters_checked = 0;
  size_t members_checked = 0;
  size_t grid_keys_checked = 0;
  uint64_t violations_total = 0;
  std::vector<std::string> violations;

  bool clean() const { return violations_total == 0; }
  /// "clean (N clusters, M members)" or the violation list, one per line.
  std::string ToString() const;
};

class ScubaEngine : public QueryProcessor {
 public:
  /// Validates options and builds an engine. The engine is returned by
  /// pointer because internal components hold stable cross-references.
  static Result<std::unique_ptr<ScubaEngine>> Create(const ScubaOptions& options);

  std::string_view name() const override { return "scuba"; }
  Status IngestObjectUpdate(const LocationUpdate& update) override;
  Status IngestQueryUpdate(const QueryUpdate& update) override;
  /// Batched ingest: classification runs on ingest_threads worker tasks, all
  /// store/grid mutations are applied in a deterministic merge, so the
  /// resulting engine state is bit-identical to the per-update calls (all
  /// objects, then all queries) at any thread count. Unlike the per-update
  /// path, the whole batch is validated up front: an invalid update rejects
  /// the batch before anything is ingested.
  Status IngestBatch(std::span<const LocationUpdate> objects,
                     std::span<const QueryUpdate> queries) override;
  Status Evaluate(Timestamp now, ResultSet* results) override;
  size_t EstimateMemoryUsage() const override;

  /// The unified stats surface: one immutable aggregate of every counter the
  /// engine and its subsystems maintain (eval + phase + clusterer + join +
  /// shedder + durability/validator counters inside eval). Cheap to call —
  /// a handful of struct copies.
  EngineSnapshotStats StatsSnapshot() const;

  const ClusterStore& store() const { return store_; }
  const GridIndex& cluster_grid() const { return grid_; }
  const LoadShedder& shedder() const { return shedder_; }
  const ScubaOptions& options() const { return options_; }

  /// Current number of moving clusters.
  size_t ClusterCount() const { return store_.ClusterCount(); }

  /// Cross-checks the engine's redundant structures against each other:
  /// store membership vs home table, per-cluster id->index maps, cluster
  /// radii vs reconstructed member positions, and grid-index occupancy vs
  /// each cluster's registered bounds (both directions: every cluster
  /// registered under covering cells, no orphan grid keys). Read-only.
  InvariantAuditReport AuditInvariants() const;

  /// Recovery path: drops the whole cluster grid and re-registers every
  /// stored cluster from scratch (fresh padded bounds). Heals any grid-side
  /// divergence AuditInvariants can detect; store-side corruption (member
  /// maps, home table) is not repairable and keeps failing the audit.
  Status RebuildGridFromStore();

  /// Durability (defined in the persist library; docs/ARCHITECTURE.md §8).
  /// Checkpoint writes one versioned, CRC-protected snapshot of the full
  /// engine state into `dir` (created if needed), atomically (tmp + rename).
  /// Restore loads the newest snapshot in `dir` into this engine, replacing
  /// all cluster/grid/stats state; the snapshot's options fingerprint must
  /// match this engine's options (kFailedPrecondition otherwise), a checksum
  /// mismatch is kDataLoss, an empty dir is kNotFound. Restore does not
  /// replay any WAL — RecoverEngine (persist/durability.h) layers that on.
  Status Checkpoint(const std::string& dir);
  Status Restore(const std::string& dir);

  /// Observability (docs/ARCHITECTURE.md §9): non-null iff
  /// options.telemetry.Enabled(). DurabilityManager and the CLI use it to
  /// attach checkpoint spans and flush round telemetry.
  EngineTelemetry* telemetry() { return telemetry_.get(); }

  /// Flushes the in-flight telemetry round and the final exposition dump;
  /// returns the first telemetry IO error. OK (no-op) when telemetry is off.
  Status FlushTelemetry();

 private:
  friend class ScubaEngineAuditPeer;  ///< Test back door: deliberate desync.
  friend struct PersistAccess;  ///< Snapshot serialization (src/persist).
  ScubaEngine(const ScubaOptions& options, GridIndex grid);

  /// QueryProcessor's polymorphic stats surface (the experiment harness reads
  /// engines through the base interface). Private on the concrete type:
  /// direct ScubaEngine callers use StatsSnapshot() — the deprecated public
  /// forwarding shims (stats/phase_stats/clusterer_stats/join_counters) are
  /// gone after their one release of grace.
  const EvalStats& stats() const override { return stats_; }

  /// Wall-time split of one PostJoinMaintenance call (telemetry only).
  struct PostJoinTimings {
    double tighten_seconds = 0.0;
    double shed_seconds = 0.0;
    double expire_seconds = 0.0;
    double translate_seconds = 0.0;
  };

  /// Phase 3 (see class comment). Per-cluster upkeep (tighten, shed, expiry,
  /// translate) is sharded over ingest_threads tasks; dissolutions and grid
  /// re-registrations are planned per task and applied serially in ascending
  /// cid order, so the outcome matches the serial loop exactly.
  /// `*worker_seconds` receives the summed per-task busy time; `*timings`
  /// (nullable) the per-sub-step wall split — null skips all extra clock
  /// reads, keeping the telemetry-off path cost-free.
  Status PostJoinMaintenance(Timestamp now, double* worker_seconds,
                             PostJoinTimings* timings);

  /// Splits clusters whose radius deteriorated past the configured bound
  /// (runs inside phase 3 when enable_cluster_splitting is set).
  Status SplitOversizedClusters();

  /// Periodic audit hook (audit_every_n_rounds): audits, and on violations
  /// rebuilds the grid and audits again. Corruption if still dirty — the
  /// divergence is in the store itself and cannot be healed.
  Status AuditAndHeal();

  /// Shared worker pool for batched ingest and post-join maintenance,
  /// created lazily on first parallel use; nullptr while ingest_threads
  /// resolves to 1 (the serial paths never construct a pool).
  ThreadPool* IngestPool();

  /// Telemetry setup (Create-time): registers the engine's metrics and the
  /// pre-flush hook that pushes cumulative-counter deltas.
  void InstallTelemetry(std::unique_ptr<EngineTelemetry> telemetry);

  /// Pre-flush hook body: pushes the per-round deltas of every semantic
  /// counter (join, clusterer, phase, durability, validator) and refreshes
  /// the gauges. Runs on the engine thread.
  void PushTelemetryDeltas();

  /// Opens the telemetry round for the next activity; no-op when off.
  void TelemetryEnsureRound() {
    if (telemetry_ != nullptr) telemetry_->EnsureRound(stats_.evaluations + 1);
  }

  ScubaOptions options_;
  GridIndex grid_;
  ClusterStore store_;
  LeaderFollowerClusterer clusterer_;
  LoadShedder shedder_;
  ClusterJoinExecutor join_executor_;
  EvalStats stats_;
  ScubaPhaseStats phase_stats_;
  uint32_t resolved_ingest_threads_ = 1;
  std::unique_ptr<ThreadPool> ingest_pool_;
  /// Pre-join (ingest) wall / summed-worker time accumulated since the last
  /// Evaluate.
  double pending_prejoin_seconds_ = 0.0;
  double pending_prejoin_worker_seconds_ = 0.0;

  /// Observability (null unless options.telemetry.Enabled()). The handles
  /// are no-op value types, so instrumentation sites stay unconditional.
  std::unique_ptr<EngineTelemetry> telemetry_;
  struct EngineMetrics {
    Counter rounds;
    Counter results;
    Counter join_comparisons;
    Counter join_bounds_checks;
    Counter join_pairs_tested;
    Counter join_pairs_overlapping;
    Counter join_within_single;
    Counter join_within_pair;
    Counter clusters_created;
    Counter members_absorbed;
    Counter members_refreshed;
    Counter members_departed;
    Counter clusters_dissolved_empty;
    Counter members_shed_ingest;
    Counter clusters_dissolved_expired;
    Counter members_shed_maintenance;
    Counter clusters_split;
    Counter updates_quarantined;
    Counter invariant_audits;
    Counter invariant_violations;
    Counter invariant_repairs;
    Counter wal_records;
    Counter wal_bytes;
    Counter wal_fsyncs;
    Counter checkpoints;
    Gauge clusters;
    HistogramMetric join_wall_seconds;
    HistogramMetric ingest_wall_seconds;
    HistogramMetric postjoin_wall_seconds;
  } metrics_;
  /// Cumulative values already pushed into the registry; the pre-flush hook
  /// adds only the delta since the last round.
  struct TelemetryBaseline {
    EvalStats eval;
    ScubaPhaseStats phase;
    ClustererStats clusterer;
    ClusterJoinExecutor::Counters join;
    double join_wall = 0.0;
    double ingest_wall = 0.0;
    double postjoin_wall = 0.0;
  } pushed_;
};

}  // namespace scuba

#endif  // SCUBA_CORE_SCUBA_ENGINE_H_
