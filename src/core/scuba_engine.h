// ScubaEngine: the paper's core contribution (§4, Algorithms 1-3).
//
// Execution has three phases per evaluation interval Delta:
//  1. *Cluster pre-join maintenance*: Ingest*Update routes every arriving
//     location update through the incremental Leader-Follower clusterer,
//     growing/creating/dissolving moving clusters (§3.2).
//  2. *Cluster-based joining* (Evaluate): delegated to ClusterJoinExecutor —
//     the two-step join-between / join-within over the ClusterGrid.
//  3. *Cluster post-join maintenance*: radii are tightened, load shedding is
//     applied, expiring clusters (those passing their destination before the
//     next round) are dissolved, and survivors are relocated along their
//     velocity vectors to their expected position at time T + Delta.
//
// With no load shedding and a 100% per-tick update rate, Evaluate returns
// exactly the same matches as a naive nested-loop join over the latest
// updates (enforced by integration tests).

#ifndef SCUBA_CORE_SCUBA_ENGINE_H_
#define SCUBA_CORE_SCUBA_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cluster/cluster_store.h"
#include "cluster/leader_follower.h"
#include "common/thread_pool.h"
#include "core/cluster_join.h"
#include "core/load_shedder.h"
#include "core/query_processor.h"
#include "core/scuba_options.h"
#include "index/grid_index.h"

namespace scuba {

struct PersistAccess;  // snapshot serialization back door (src/persist)

/// SCUBA-specific counters beyond the uniform EvalStats.
struct ScubaPhaseStats {
  uint64_t clusters_dissolved_expired = 0;
  uint64_t members_shed_maintenance = 0;
  uint64_t clusters_split = 0;
};

/// Outcome of one ScubaEngine::AuditInvariants() pass: what was checked and
/// every divergence found (messages capped at kMaxViolationMessages;
/// violations_total keeps counting past the cap).
struct InvariantAuditReport {
  static constexpr size_t kMaxViolationMessages = 32;

  size_t clusters_checked = 0;
  size_t members_checked = 0;
  size_t grid_keys_checked = 0;
  uint64_t violations_total = 0;
  std::vector<std::string> violations;

  bool clean() const { return violations_total == 0; }
  /// "clean (N clusters, M members)" or the violation list, one per line.
  std::string ToString() const;
};

class ScubaEngine : public QueryProcessor {
 public:
  /// Validates options and builds an engine. The engine is returned by
  /// pointer because internal components hold stable cross-references.
  static Result<std::unique_ptr<ScubaEngine>> Create(const ScubaOptions& options);

  std::string_view name() const override { return "scuba"; }
  Status IngestObjectUpdate(const LocationUpdate& update) override;
  Status IngestQueryUpdate(const QueryUpdate& update) override;
  /// Batched ingest: classification runs on ingest_threads worker tasks, all
  /// store/grid mutations are applied in a deterministic merge, so the
  /// resulting engine state is bit-identical to the per-update calls (all
  /// objects, then all queries) at any thread count. Unlike the per-update
  /// path, the whole batch is validated up front: an invalid update rejects
  /// the batch before anything is ingested.
  Status IngestBatch(std::span<const LocationUpdate> objects,
                     std::span<const QueryUpdate> queries) override;
  Status Evaluate(Timestamp now, ResultSet* results) override;
  size_t EstimateMemoryUsage() const override;
  const EvalStats& stats() const override { return stats_; }

  const ScubaPhaseStats& phase_stats() const { return phase_stats_; }
  const ClustererStats& clusterer_stats() const { return clusterer_.stats(); }
  const ClusterJoinExecutor::Counters& join_counters() const {
    return join_executor_.counters();
  }
  const ClusterStore& store() const { return store_; }
  const GridIndex& cluster_grid() const { return grid_; }
  const LoadShedder& shedder() const { return shedder_; }
  const ScubaOptions& options() const { return options_; }

  /// Current number of moving clusters.
  size_t ClusterCount() const { return store_.ClusterCount(); }

  /// Cross-checks the engine's redundant structures against each other:
  /// store membership vs home table, per-cluster id->index maps, cluster
  /// radii vs reconstructed member positions, and grid-index occupancy vs
  /// each cluster's registered bounds (both directions: every cluster
  /// registered under covering cells, no orphan grid keys). Read-only.
  InvariantAuditReport AuditInvariants() const;

  /// Recovery path: drops the whole cluster grid and re-registers every
  /// stored cluster from scratch (fresh padded bounds). Heals any grid-side
  /// divergence AuditInvariants can detect; store-side corruption (member
  /// maps, home table) is not repairable and keeps failing the audit.
  Status RebuildGridFromStore();

  /// Durability (defined in the persist library; docs/ARCHITECTURE.md §8).
  /// Checkpoint writes one versioned, CRC-protected snapshot of the full
  /// engine state into `dir` (created if needed), atomically (tmp + rename).
  /// Restore loads the newest snapshot in `dir` into this engine, replacing
  /// all cluster/grid/stats state; the snapshot's options fingerprint must
  /// match this engine's options (kFailedPrecondition otherwise), a checksum
  /// mismatch is kDataLoss, an empty dir is kNotFound. Restore does not
  /// replay any WAL — RecoverEngine (persist/durability.h) layers that on.
  Status Checkpoint(const std::string& dir);
  Status Restore(const std::string& dir);

 private:
  friend class ScubaEngineAuditPeer;  ///< Test back door: deliberate desync.
  friend struct PersistAccess;  ///< Snapshot serialization (src/persist).
  ScubaEngine(const ScubaOptions& options, GridIndex grid);

  /// Phase 3 (see class comment). Per-cluster upkeep (tighten, shed, expiry,
  /// translate) is sharded over ingest_threads tasks; dissolutions and grid
  /// re-registrations are planned per task and applied serially in ascending
  /// cid order, so the outcome matches the serial loop exactly.
  /// `*worker_seconds` receives the summed per-task busy time.
  Status PostJoinMaintenance(Timestamp now, double* worker_seconds);

  /// Splits clusters whose radius deteriorated past the configured bound
  /// (runs inside phase 3 when enable_cluster_splitting is set).
  Status SplitOversizedClusters();

  /// Periodic audit hook (audit_every_n_rounds): audits, and on violations
  /// rebuilds the grid and audits again. Corruption if still dirty — the
  /// divergence is in the store itself and cannot be healed.
  Status AuditAndHeal();

  /// Shared worker pool for batched ingest and post-join maintenance,
  /// created lazily on first parallel use; nullptr while ingest_threads
  /// resolves to 1 (the serial paths never construct a pool).
  ThreadPool* IngestPool();

  ScubaOptions options_;
  GridIndex grid_;
  ClusterStore store_;
  LeaderFollowerClusterer clusterer_;
  LoadShedder shedder_;
  ClusterJoinExecutor join_executor_;
  EvalStats stats_;
  ScubaPhaseStats phase_stats_;
  uint32_t resolved_ingest_threads_ = 1;
  std::unique_ptr<ThreadPool> ingest_pool_;
  /// Pre-join (ingest) wall / summed-worker time accumulated since the last
  /// Evaluate.
  double pending_prejoin_seconds_ = 0.0;
  double pending_prejoin_worker_seconds_ = 0.0;
};

}  // namespace scuba

#endif  // SCUBA_CORE_SCUBA_ENGINE_H_
