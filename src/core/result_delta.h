// Incremental result computation (paper future work, §8: "enhance SCUBA to
// produce results incrementally").
//
// Continuous-query consumers usually care about *changes* to the answer, not
// the full answer every Delta. DiffResults computes the (added, removed)
// match sets between consecutive rounds in one merge pass over the normalized
// sets; IncrementalResultTracker packages the previous-round state.

#ifndef SCUBA_CORE_RESULT_DELTA_H_
#define SCUBA_CORE_RESULT_DELTA_H_

#include <vector>

#include "core/result_set.h"

namespace scuba {

/// Changes between two evaluation rounds.
struct ResultDelta {
  std::vector<Match> added;    ///< In current but not previous.
  std::vector<Match> removed;  ///< In previous but not current.

  bool Empty() const { return added.empty() && removed.empty(); }
  size_t size() const { return added.size() + removed.size(); }
};

/// One-pass merge diff; both sets must be normalized (engines normalize
/// before returning).
ResultDelta DiffResults(const ResultSet& previous, const ResultSet& current);

/// Applies `delta` to `base` (the previous round's set), reconstructing the
/// current round — the consumer-side inverse of DiffResults.
ResultSet ApplyDelta(const ResultSet& base, const ResultDelta& delta);

/// Stateful helper: feed each round's full result; get the delta against the
/// previous round. The first round reports everything as added.
class IncrementalResultTracker {
 public:
  /// Computes the delta vs the previous Observe() and retains `current`.
  ResultDelta Observe(const ResultSet& current);

  const ResultSet& previous() const { return previous_; }
  uint64_t rounds() const { return rounds_; }

 private:
  ResultSet previous_;
  uint64_t rounds_ = 0;
};

}  // namespace scuba

#endif  // SCUBA_CORE_RESULT_DELTA_H_
