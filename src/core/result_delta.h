// Incremental result computation (paper future work, §8: "enhance SCUBA to
// produce results incrementally").
//
// Continuous-query consumers usually care about *changes* to the answer, not
// the full answer every Delta — and the serving front-end (src/serve,
// docs/ARCHITECTURE.md §14) pushes exactly these deltas to subscribers, so
// ResultDelta is both the evaluation contract and the wire payload:
//
//  - *Round-stamped*: every delta names the evaluation round and timestamp it
//    advances the answer to, so a consumer folding a delta stream can detect
//    gaps and align rounds across sessions.
//  - *Deterministic and ordered*: `added` and `removed` are ascending,
//    duplicate-free Match vectors (the normalized-set discipline engines
//    already guarantee), so equal inputs produce byte-equal encodings.
//  - *Degraded-mode provenance propagates*: a round served from a failed
//    shard's stale slice (ResultSet::MarkDegraded, §13) is flagged on the
//    delta, never silently diffed away.
//  - *Serializer round trips*: Save/Load use the common ByteWriter/ByteReader
//    vocabulary (CRC framing is the transport's job, src/serve/protocol.h).
//
// DiffResults computes the (added, removed) match sets between consecutive
// rounds in one merge pass over the normalized sets; ApplyDelta is the
// consumer-side inverse; IncrementalResultTracker packages the previous-round
// state as a cursor suitable for per-session use.

#ifndef SCUBA_CORE_RESULT_DELTA_H_
#define SCUBA_CORE_RESULT_DELTA_H_

#include <cstdint>
#include <vector>

#include "common/serializer.h"
#include "common/status.h"
#include "common/types.h"
#include "core/result_set.h"

namespace scuba {

/// Changes between two evaluation rounds, stamped with the round they advance
/// the answer set to.
struct ResultDelta {
  /// Evaluation round ordinal this delta advances the answer to (1 = first
  /// evaluation). 0 = unstamped (a bare DiffResults with no round context).
  uint64_t round = 0;
  /// Evaluation timestamp of that round.
  Timestamp time = 0;
  /// Degraded-mode provenance of the CURRENT round (docs/ARCHITECTURE.md
  /// §13): shard indices whose slice of the answer is stale. A degraded round
  /// must stay visible to delta consumers even when the diff is empty.
  std::vector<uint32_t> degraded_shards;
  std::vector<Match> added;    ///< In current but not previous; ascending.
  std::vector<Match> removed;  ///< In previous but not current; ascending.

  bool Empty() const { return added.empty() && removed.empty(); }
  size_t size() const { return added.size() + removed.size(); }
  bool degraded() const { return !degraded_shards.empty(); }

  /// Serializer round trip (the serve protocol's delta payload). Save appends
  /// the stamped structure to `writer`; Load reads it back, returning
  /// kDataLoss on truncation and kCorruption when the decoded vectors violate
  /// the ascending/duplicate-free ordering contract (a well-formed encoder
  /// never produces such bytes; a hostile or damaged stream can).
  void Save(ByteWriter* writer) const;
  static Status Load(ByteReader* reader, ResultDelta* delta);

  friend bool operator==(const ResultDelta&, const ResultDelta&) = default;
};

/// One-pass merge diff; both sets must be normalized (engines normalize
/// before returning). The result is unstamped (round 0) but carries
/// `current`'s degraded provenance; stamping is the tracker's/caller's job.
ResultDelta DiffResults(const ResultSet& previous, const ResultSet& current);

/// Applies `delta` to `base` (the previous round's set), reconstructing the
/// current round — the consumer-side inverse of DiffResults. The delta's
/// degraded provenance is marked on the reconstructed set.
ResultSet ApplyDelta(const ResultSet& base, const ResultDelta& delta);

/// Stateful cursor: feed each round's full result; get the stamped delta
/// against the previous round. The first round reports everything as added.
/// One tracker per subscriber session (src/serve) — the retained set doubles
/// as the snapshot fallback a slow consumer is coalesced to.
class IncrementalResultTracker {
 public:
  /// Computes the delta vs the previous Observe() and retains `current`.
  /// The delta is stamped with this observation's round ordinal (the
  /// tracker's internal count) and `now`, and carries `current`'s degraded
  /// provenance.
  ResultDelta Observe(const ResultSet& current, Timestamp now = 0);

  /// Cursor read: the delta that advances `base` to the latest observed set,
  /// stamped like the latest Observe(). Lets a consumer that missed pushes
  /// (or was coalesced to an older snapshot) catch up in one step without
  /// disturbing the cursor. DeltaSince(previous()) is empty by construction.
  ResultDelta DeltaSince(const ResultSet& base) const;

  /// Snapshot fallback: the latest observed full result set (empty before the
  /// first Observe). What a slow consumer is coalesced to.
  const ResultSet& Current() const { return current_; }

  /// Forgets all state: the next Observe() is round 1, all-added.
  void Reset();

  uint64_t rounds() const { return rounds_; }
  /// Timestamp of the latest Observe (0 before the first).
  Timestamp time() const { return time_; }

 private:
  ResultSet current_;
  uint64_t rounds_ = 0;
  Timestamp time_ = 0;
};

}  // namespace scuba

#endif  // SCUBA_CORE_RESULT_DELTA_H_
