#include "persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/serializer.h"

namespace scuba {

namespace {

namespace fs = std::filesystem;

constexpr char kWalPrefix[] = "wal-";
constexpr char kWalSuffix[] = ".log";
constexpr uint8_t kRecordTypeBatch = 1;
constexpr uint8_t kRecordTypeRouted = 2;
constexpr size_t kFrameHeaderBytes = 2 * sizeof(uint32_t);  // len + crc

std::string SegmentFileName(uint64_t first_seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%020llu%s", kWalPrefix,
                static_cast<unsigned long long>(first_seq), kWalSuffix);
  return buf;
}

void PutLocationUpdate(ByteWriter* w, const LocationUpdate& u) {
  w->PutU32(u.oid);
  w->PutDouble(u.position.x);
  w->PutDouble(u.position.y);
  w->PutI64(u.time);
  w->PutDouble(u.speed);
  w->PutU32(u.dest_node);
  w->PutDouble(u.dest_position.x);
  w->PutDouble(u.dest_position.y);
  w->PutU64(u.attrs);
}

Status GetLocationUpdate(ByteReader* r, LocationUpdate* u) {
  SCUBA_RETURN_IF_ERROR(r->GetU32(&u->oid));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->position.x));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->position.y));
  SCUBA_RETURN_IF_ERROR(r->GetI64(&u->time));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->speed));
  SCUBA_RETURN_IF_ERROR(r->GetU32(&u->dest_node));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->dest_position.x));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->dest_position.y));
  return r->GetU64(&u->attrs);
}

void PutQueryUpdate(ByteWriter* w, const QueryUpdate& u) {
  w->PutU32(u.qid);
  w->PutDouble(u.position.x);
  w->PutDouble(u.position.y);
  w->PutI64(u.time);
  w->PutDouble(u.speed);
  w->PutU32(u.dest_node);
  w->PutDouble(u.dest_position.x);
  w->PutDouble(u.dest_position.y);
  w->PutDouble(u.range_width);
  w->PutDouble(u.range_height);
  w->PutU64(u.attrs);
  w->PutU64(u.required_attrs);
}

Status GetQueryUpdate(ByteReader* r, QueryUpdate* u) {
  SCUBA_RETURN_IF_ERROR(r->GetU32(&u->qid));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->position.x));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->position.y));
  SCUBA_RETURN_IF_ERROR(r->GetI64(&u->time));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->speed));
  SCUBA_RETURN_IF_ERROR(r->GetU32(&u->dest_node));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->dest_position.x));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->dest_position.y));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->range_width));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->range_height));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&u->attrs));
  return r->GetU64(&u->required_attrs);
}

std::string EncodeRecordPayload(uint64_t seq, Timestamp batch_time,
                                bool evaluate_after,
                                std::span<const LocationUpdate> objects,
                                std::span<const QueryUpdate> queries) {
  ByteWriter w;
  w.PutU8(kRecordTypeBatch);
  w.PutU64(seq);
  w.PutI64(batch_time);
  w.PutBool(evaluate_after);
  w.PutU64(objects.size());
  for (const LocationUpdate& u : objects) PutLocationUpdate(&w, u);
  w.PutU64(queries.size());
  for (const QueryUpdate& u : queries) PutQueryUpdate(&w, u);
  return w.Release();
}

std::string EncodeRoutedPayload(uint64_t seq, Timestamp batch_time,
                                bool evaluate_after, uint32_t shard_index,
                                uint32_t shard_count, uint64_t total_objects,
                                uint64_t total_queries,
                                std::span<const uint64_t> object_slots,
                                std::span<const LocationUpdate> objects,
                                std::span<const uint64_t> query_slots,
                                std::span<const QueryUpdate> queries) {
  ByteWriter w;
  w.PutU8(kRecordTypeRouted);
  w.PutU64(seq);
  w.PutI64(batch_time);
  w.PutBool(evaluate_after);
  w.PutU32(shard_index);
  w.PutU32(shard_count);
  w.PutU64(total_objects);
  w.PutU64(total_queries);
  w.PutU64(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    w.PutU64(object_slots[i]);
    PutLocationUpdate(&w, objects[i]);
  }
  w.PutU64(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    w.PutU64(query_slots[i]);
    PutQueryUpdate(&w, queries[i]);
  }
  return w.Release();
}

Status DecodeRecordPayload(std::string_view payload, WalRecord* record) {
  ByteReader r(payload);
  uint8_t type = 0;
  SCUBA_RETURN_IF_ERROR(r.GetU8(&type));
  if (type != kRecordTypeBatch && type != kRecordTypeRouted) {
    return Status::DataLoss("WAL record has unknown type byte " +
                            std::to_string(type));
  }
  record->routed = (type == kRecordTypeRouted);
  SCUBA_RETURN_IF_ERROR(r.GetU64(&record->seq));
  SCUBA_RETURN_IF_ERROR(r.GetI64(&record->batch_time));
  SCUBA_RETURN_IF_ERROR(r.GetBool(&record->evaluate_after));
  if (record->routed) {
    SCUBA_RETURN_IF_ERROR(r.GetU32(&record->shard_index));
    SCUBA_RETURN_IF_ERROR(r.GetU32(&record->shard_count));
    SCUBA_RETURN_IF_ERROR(r.GetU64(&record->total_objects));
    SCUBA_RETURN_IF_ERROR(r.GetU64(&record->total_queries));
    if (record->shard_count == 0 ||
        record->shard_index >= record->shard_count) {
      return Status::DataLoss("routed WAL record names shard " +
                              std::to_string(record->shard_index) + " of " +
                              std::to_string(record->shard_count));
    }
  }
  uint64_t count = 0;
  SCUBA_RETURN_IF_ERROR(r.GetU64(&count));
  if (count > r.Remaining()) {
    return Status::DataLoss("WAL record object count overruns the payload");
  }
  record->objects.resize(static_cast<size_t>(count));
  if (record->routed) record->object_slots.resize(static_cast<size_t>(count));
  for (size_t i = 0; i < record->objects.size(); ++i) {
    if (record->routed) {
      SCUBA_RETURN_IF_ERROR(r.GetU64(&record->object_slots[i]));
    }
    SCUBA_RETURN_IF_ERROR(GetLocationUpdate(&r, &record->objects[i]));
  }
  SCUBA_RETURN_IF_ERROR(r.GetU64(&count));
  if (count > r.Remaining()) {
    return Status::DataLoss("WAL record query count overruns the payload");
  }
  record->queries.resize(static_cast<size_t>(count));
  if (record->routed) record->query_slots.resize(static_cast<size_t>(count));
  for (size_t i = 0; i < record->queries.size(); ++i) {
    if (record->routed) {
      SCUBA_RETURN_IF_ERROR(r.GetU64(&record->query_slots[i]));
    }
    SCUBA_RETURN_IF_ERROR(GetQueryUpdate(&r, &record->queries[i]));
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("WAL record payload carries trailing bytes");
  }
  return Status::OK();
}

/// Parses one segment file. Frames that parse cleanly are appended to
/// `*records`. If the segment ends in a torn/corrupt frame, returns OK with
/// `*torn_at` set to the clean byte offset where the damage starts (the
/// caller decides whether that is tolerable); *torn_at == npos means the
/// segment was fully clean.
Status ReadSegment(const std::string& path, std::vector<WalRecord>* records,
                   size_t* torn_at, std::string* torn_detail) {
  *torn_at = std::string::npos;
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open WAL segment: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = std::move(buf).str();
  size_t pos = 0;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameHeaderBytes) {
      *torn_at = pos;
      *torn_detail = path + ": " + std::to_string(data.size() - pos) +
                     " trailing bytes are shorter than a frame header";
      return Status::OK();
    }
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, data.data() + pos, sizeof(len));
    std::memcpy(&crc, data.data() + pos + sizeof(len), sizeof(crc));
    if (data.size() - pos - kFrameHeaderBytes < len) {
      *torn_at = pos;
      *torn_detail = path + ": frame at offset " + std::to_string(pos) +
                     " declares " + std::to_string(len) + " payload bytes, " +
                     std::to_string(data.size() - pos - kFrameHeaderBytes) +
                     " remain";
      return Status::OK();
    }
    const std::string_view payload =
        std::string_view(data).substr(pos + kFrameHeaderBytes, len);
    if (Crc32(payload) != crc) {
      *torn_at = pos;
      *torn_detail = path + ": frame at offset " + std::to_string(pos) +
                     " failed its checksum";
      return Status::OK();
    }
    WalRecord record;
    if (Status s = DecodeRecordPayload(payload, &record); !s.ok()) {
      // The CRC matched but the payload is malformed: that is not a torn
      // write, it is corruption (or a version skew) — fail hard.
      return Status::DataLoss(path + ": " + s.message());
    }
    records->push_back(std::move(record));
    pos += kFrameHeaderBytes + len;
  }
  return Status::OK();
}

Status FdatasyncOrError(int fd, const std::string& path) {
  if (::fdatasync(fd) != 0) {
    return Status::IoError("fdatasync " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status WriteAllOrError(int fd, const char* data, size_t n,
                       const std::string& path) {
  size_t written = 0;
  while (written < n) {
    ssize_t rc = ::write(fd, data + written, n - written);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write " + path + ": " + std::strerror(errno));
    }
    written += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("open dir " + dir + ": " + std::strerror(errno));
  }
  Status s = Status::OK();
  if (::fsync(fd) != 0 && errno != EINVAL) {
    s = Status::IoError("fsync dir " + dir + ": " + std::strerror(errno));
  }
  ::close(fd);
  return s;
}

}  // namespace

Result<std::vector<std::pair<uint64_t, std::string>>> ListWalSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> out;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return out;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("cannot list " + dir + ": " + ec.message());
  }
  for (const fs::directory_entry& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kWalPrefix, 0) != 0) continue;
    if (name.size() <= sizeof(kWalPrefix) - 1 + sizeof(kWalSuffix) - 1)
      continue;
    if (name.substr(name.size() - (sizeof(kWalSuffix) - 1)) != kWalSuffix)
      continue;
    const std::string digits = name.substr(
        sizeof(kWalPrefix) - 1,
        name.size() - (sizeof(kWalPrefix) - 1) - (sizeof(kWalSuffix) - 1));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    out.emplace_back(std::strtoull(digits.c_str(), nullptr, 10),
                     entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<WalContents> ReadWal(const std::string& dir,
                            bool tolerate_routed_segment_gaps) {
  Result<std::vector<std::pair<uint64_t, std::string>>> segments =
      ListWalSegments(dir);
  if (!segments.ok()) return segments.status();
  WalContents contents;
  // Record index at which each segment's records begin, for the boundary-gap
  // tolerance below.
  std::vector<size_t> segment_starts;
  for (size_t i = 0; i < segments->size(); ++i) {
    const auto& [first_seq, path] = (*segments)[i];
    size_t torn_at = std::string::npos;
    std::string torn_detail;
    const size_t before = contents.records.size();
    segment_starts.push_back(before);
    SCUBA_RETURN_IF_ERROR(
        ReadSegment(path, &contents.records, &torn_at, &torn_detail));
    if (torn_at != std::string::npos) {
      if (i + 1 != segments->size()) {
        // Damage in a non-final segment cannot be a crash residue — later
        // segments prove appends continued past it.
        return Status::DataLoss("WAL segment damaged mid-log: " + torn_detail);
      }
      contents.torn_tail = true;
      contents.torn_detail = torn_detail;
    }
    if (contents.records.size() > before &&
        contents.records[before].seq != first_seq) {
      return Status::DataLoss(
          path + ": first record seq " +
          std::to_string(contents.records[before].seq) +
          " does not match the segment name (" + std::to_string(first_seq) +
          ")");
    }
  }
  for (size_t i = 1; i < contents.records.size(); ++i) {
    const WalRecord& prev = contents.records[i - 1];
    const WalRecord& cur = contents.records[i];
    if (cur.seq == prev.seq + 1) continue;
    // A routed chain may jump forward exactly at a segment boundary: the
    // chain sat out the epochs between two shard layouts (see wal.h). Any
    // other discontinuity is corruption.
    const bool at_boundary =
        std::find(segment_starts.begin(), segment_starts.end(), i) !=
        segment_starts.end();
    if (tolerate_routed_segment_gaps && cur.seq > prev.seq + 1 &&
        at_boundary && prev.routed && cur.routed) {
      contents.route_gap_notes.push_back(
          "routed chain skips seqs " + std::to_string(prev.seq + 1) + ".." +
          std::to_string(cur.seq - 1) + " at a segment boundary");
      continue;
    }
    return Status::DataLoss(
        "WAL sequence discontinuity: record " + std::to_string(prev.seq) +
        " is followed by " + std::to_string(cur.seq));
  }
  return contents;
}

Status TruncateWalAfter(const std::string& dir, uint64_t first_seq_to_drop) {
  Result<std::vector<std::pair<uint64_t, std::string>>> segments =
      ListWalSegments(dir);
  if (!segments.ok()) return segments.status();
  std::error_code ec;
  bool changed = false;
  for (size_t i = 0; i < segments->size(); ++i) {
    const auto& [first_seq, path] = (*segments)[i];
    if (first_seq >= first_seq_to_drop) {
      // Nothing in this segment survives.
      fs::remove(path, ec);
      if (ec) return Status::IoError("remove " + path + ": " + ec.message());
      changed = true;
      continue;
    }
    // The cut, if any, falls inside this segment: walk frames to find the
    // byte offset of the first record with seq >= first_seq_to_drop.
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IoError("cannot open WAL segment: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string data = std::move(buf).str();
    size_t pos = 0;
    size_t cut_at = std::string::npos;
    while (pos < data.size()) {
      if (data.size() - pos < kFrameHeaderBytes) break;  // torn tail
      uint32_t len = 0, crc = 0;
      std::memcpy(&len, data.data() + pos, sizeof(len));
      std::memcpy(&crc, data.data() + pos + sizeof(len), sizeof(crc));
      if (data.size() - pos - kFrameHeaderBytes < len) break;  // torn tail
      const std::string_view payload =
          std::string_view(data).substr(pos + kFrameHeaderBytes, len);
      if (Crc32(payload) != crc) break;  // torn tail
      WalRecord record;
      if (Status s = DecodeRecordPayload(payload, &record); !s.ok()) {
        return Status::DataLoss(path + ": " + s.message());
      }
      if (record.seq >= first_seq_to_drop) {
        cut_at = pos;
        break;
      }
      pos += kFrameHeaderBytes + len;
    }
    if (cut_at == std::string::npos) continue;
    if (cut_at == 0) {
      fs::remove(path, ec);
      if (ec) return Status::IoError("remove " + path + ": " + ec.message());
    } else {
      fs::resize_file(path, cut_at, ec);
      if (ec) return Status::IoError("truncate " + path + ": " + ec.message());
    }
    changed = true;
  }
  if (changed) {
    SCUBA_RETURN_IF_ERROR(SyncDir(dir));
  }
  return Status::OK();
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& dir,
                                                   uint64_t segment_bytes,
                                                   uint64_t initial_seq,
                                                   CrashInjector* crash) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + dir + ": " + ec.message());
  }
  std::unique_ptr<WalWriter> writer(new WalWriter(dir, segment_bytes, crash));
  Result<std::vector<std::pair<uint64_t, std::string>>> segments =
      ListWalSegments(dir);
  if (!segments.ok()) return segments.status();
  if (segments->empty()) {
    writer->next_seq_ = initial_seq;
    return writer;
  }
  // Find the end of the log in the last segment, truncating any torn tail so
  // the next append starts on a clean frame boundary.
  const auto& [last_first_seq, last_path] = segments->back();
  std::vector<WalRecord> tail_records;
  size_t torn_at = std::string::npos;
  std::string torn_detail;
  SCUBA_RETURN_IF_ERROR(
      ReadSegment(last_path, &tail_records, &torn_at, &torn_detail));
  if (torn_at != std::string::npos) {
    fs::resize_file(last_path, torn_at, ec);
    if (ec) {
      return Status::IoError("truncate " + last_path + ": " + ec.message());
    }
  }
  if (!tail_records.empty()) {
    writer->next_seq_ = tail_records.back().seq + 1;
  } else if (torn_at != std::string::npos) {
    // The segment held only the torn frame; its name says what that frame's
    // seq would have been.
    writer->next_seq_ = last_first_seq;
  } else {
    writer->next_seq_ = std::max(initial_seq, last_first_seq);
  }
  if (writer->next_seq_ < initial_seq) {
    // The caller is resuming a chain that sat out epochs (N→M re-partition):
    // jump forward and leave the old segment closed so the first append
    // rotates into a fresh segment named initial_seq. That puts the seq gap
    // exactly on a segment boundary, where ReadWal can tolerate it.
    writer->next_seq_ = initial_seq;
    return writer;
  }
  // Resume appending to the (possibly truncated) last segment.
  writer->segment_first_seq_ = last_first_seq;
  writer->segment_path_ = last_path;
  writer->fd_ = ::open(last_path.c_str(), O_WRONLY | O_APPEND);
  if (writer->fd_ < 0) {
    return Status::IoError("open " + last_path + ": " + std::strerror(errno));
  }
  writer->segment_size_ = fs::file_size(last_path, ec);
  if (ec) {
    return Status::IoError("stat " + last_path + ": " + ec.message());
  }
  return writer;
}

WalWriter::~WalWriter() { CloseSegment(); }

void WalWriter::CloseSegment() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WalWriter::OpenSegment(uint64_t first_seq) {
  CloseSegment();
  segment_path_ = (fs::path(dir_) / SegmentFileName(first_seq)).string();
  fd_ = ::open(segment_path_.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::IoError("open " + segment_path_ + ": " +
                           std::strerror(errno));
  }
  segment_first_seq_ = first_seq;
  segment_size_ = 0;
  // Make the new segment's directory entry durable before any record relies
  // on it existing.
  return SyncDir(dir_);
}

Status WalWriter::AppendFrame(const std::string& payload) {
  ByteWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload));
  frame.PutRawBytes(payload);
  const std::string& bytes = frame.bytes();
  const bool rotate =
      fd_ < 0 || (segment_size_ > 0 &&
                  segment_size_ + bytes.size() > segment_bytes_);
  if (rotate) {
    SCUBA_RETURN_IF_ERROR(OpenSegment(next_seq_));
  }
  const bool torn_crash =
      crash_ != nullptr && (crash_->ShouldCrash(CrashPoint::kMidWalAppend) ||
                            crash_->ShouldCrash(CrashPoint::kMidShardWalAppend));
  if (torn_crash) {
    // Half the frame reaches the disk — the canonical torn tail.
    SCUBA_RETURN_IF_ERROR(WriteAllOrError(fd_, bytes.data(), bytes.size() / 2,
                                          segment_path_));
    SCUBA_RETURN_IF_ERROR(FdatasyncOrError(fd_, segment_path_));
    return crash_->CrashStatus();
  }
  SCUBA_RETURN_IF_ERROR(
      WriteAllOrError(fd_, bytes.data(), bytes.size(), segment_path_));
  SCUBA_RETURN_IF_ERROR(FdatasyncOrError(fd_, segment_path_));
  segment_size_ += bytes.size();
  ++next_seq_;
  ++stats_.records_appended;
  ++stats_.fsyncs;
  stats_.bytes_appended += bytes.size();
  if (crash_ != nullptr && crash_->ShouldCrash(CrashPoint::kAfterWalAppend)) {
    return crash_->CrashStatus();
  }
  return Status::OK();
}

Status WalWriter::Append(Timestamp batch_time, bool evaluate_after,
                         std::span<const LocationUpdate> objects,
                         std::span<const QueryUpdate> queries) {
  if (crash_ != nullptr && crash_->ShouldCrash(CrashPoint::kBeforeWalAppend)) {
    return crash_->CrashStatus();
  }
  return AppendFrame(EncodeRecordPayload(next_seq_, batch_time, evaluate_after,
                                         objects, queries));
}

Status WalWriter::AppendRouted(Timestamp batch_time, bool evaluate_after,
                               uint32_t shard_index, uint32_t shard_count,
                               uint64_t total_objects, uint64_t total_queries,
                               std::span<const uint64_t> object_slots,
                               std::span<const LocationUpdate> objects,
                               std::span<const uint64_t> query_slots,
                               std::span<const QueryUpdate> queries) {
  if (crash_ != nullptr && crash_->ShouldCrash(CrashPoint::kBeforeWalAppend)) {
    return crash_->CrashStatus();
  }
  return AppendFrame(EncodeRoutedPayload(
      next_seq_, batch_time, evaluate_after, shard_index, shard_count,
      total_objects, total_queries, object_slots, objects, query_slots,
      queries));
}

Result<size_t> WalWriter::PruneSegmentsBelow(uint64_t min_seq) {
  Result<std::vector<std::pair<uint64_t, std::string>>> segments =
      ListWalSegments(dir_);
  if (!segments.ok()) return segments.status();
  size_t removed = 0;
  for (size_t i = 0; i < segments->size(); ++i) {
    const auto& [first_seq, path] = (*segments)[i];
    // A segment's records all precede min_seq iff the NEXT segment starts at
    // or below min_seq (the next segment's first record is this one's last
    // record + 1).
    const bool covered =
        i + 1 < segments->size() && (*segments)[i + 1].first <= min_seq;
    if (!covered || path == segment_path_) continue;
    std::error_code ec;
    fs::remove(path, ec);
    if (ec) {
      return Status::IoError("remove " + path + ": " + ec.message());
    }
    ++removed;
  }
  if (removed > 0) {
    SCUBA_RETURN_IF_ERROR(SyncDir(dir_));
  }
  return removed;
}

}  // namespace scuba
