#include "persist/crash.h"

namespace scuba {

std::string_view CrashPointName(CrashPoint point) {
  switch (point) {
    case CrashPoint::kNone:
      return "none";
    case CrashPoint::kBeforeWalAppend:
      return "before-wal-append";
    case CrashPoint::kMidWalAppend:
      return "mid-wal-append";
    case CrashPoint::kAfterWalAppend:
      return "after-wal-append";
    case CrashPoint::kBeforeSnapshotWrite:
      return "before-snapshot-write";
    case CrashPoint::kMidSnapshotWrite:
      return "mid-snapshot-write";
    case CrashPoint::kTornSnapshotRename:
      return "torn-snapshot-rename";
    case CrashPoint::kAfterSnapshotWrite:
      return "after-snapshot-write";
    case CrashPoint::kAfterWalPrune:
      return "after-wal-prune";
    case CrashPoint::kMidShardSnapshotWrite:
      return "mid-shard-snapshot-write";
    case CrashPoint::kBetweenShardSnapshots:
      return "between-shard-snapshots";
    case CrashPoint::kBeforeManifestRename:
      return "before-manifest-rename";
    case CrashPoint::kTornManifestRename:
      return "torn-manifest-rename";
    case CrashPoint::kAfterManifestRename:
      return "after-manifest-rename";
    case CrashPoint::kMidShardWalAppend:
      return "mid-shard-wal-append";
    case CrashPoint::kBetweenShardWalAppends:
      return "between-shard-wal-appends";
    case CrashPoint::kMidManifestPrune:
      return "mid-manifest-prune";
  }
  return "unknown";
}

Result<CrashPoint> ParseCrashPoint(std::string_view name) {
  for (size_t i = 0; i < kCrashPointCount; ++i) {
    CrashPoint point = static_cast<CrashPoint>(i);
    if (name == CrashPointName(point)) return point;
  }
  return Status::InvalidArgument("unknown crash point: " + std::string(name));
}

}  // namespace scuba
