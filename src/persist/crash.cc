#include "persist/crash.h"

namespace scuba {

std::string_view CrashPointName(CrashPoint point) {
  switch (point) {
    case CrashPoint::kNone:
      return "none";
    case CrashPoint::kBeforeWalAppend:
      return "before-wal-append";
    case CrashPoint::kMidWalAppend:
      return "mid-wal-append";
    case CrashPoint::kAfterWalAppend:
      return "after-wal-append";
    case CrashPoint::kBeforeSnapshotWrite:
      return "before-snapshot-write";
    case CrashPoint::kMidSnapshotWrite:
      return "mid-snapshot-write";
    case CrashPoint::kTornSnapshotRename:
      return "torn-snapshot-rename";
    case CrashPoint::kAfterSnapshotWrite:
      return "after-snapshot-write";
    case CrashPoint::kAfterWalPrune:
      return "after-wal-prune";
  }
  return "unknown";
}

Result<CrashPoint> ParseCrashPoint(std::string_view name) {
  for (size_t i = 0; i < kCrashPointCount; ++i) {
    CrashPoint point = static_cast<CrashPoint>(i);
    if (name == CrashPointName(point)) return point;
  }
  return Status::InvalidArgument("unknown crash point: " + std::string(name));
}

}  // namespace scuba
