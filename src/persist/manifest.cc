#include "persist/manifest.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "persist/fsio.h"
#include "common/serializer.h"

namespace scuba {

namespace {

namespace fs = std::filesystem;

constexpr char kManifestMagic[8] = {'S', 'C', 'U', 'B', 'A', 'M', 'F', '1'};
constexpr uint32_t kManifestVersion = 1;
constexpr char kManifestPrefix[] = "manifest-";
constexpr char kManifestSuffix[] = ".scubamf";

std::string EncodeManifestPayload(const ManifestInfo& info) {
  ByteWriter w;
  w.PutU64(info.fingerprint);
  w.PutU64(info.generation);
  w.PutU64(info.wal_next_seq);
  w.PutU64(info.rounds);
  w.PutU32(static_cast<uint32_t>(info.shards.size()));
  for (const ManifestShardEntry& shard : info.shards) {
    w.PutU64(shard.snapshot_seq);
    w.PutU64(shard.state_hash);
  }
  w.PutString(info.coordinator_state);
  return w.Release();
}

Status DecodeManifestPayload(std::string_view payload, ManifestInfo* info) {
  ByteReader r(payload);
  SCUBA_RETURN_IF_ERROR(r.GetU64(&info->fingerprint));
  SCUBA_RETURN_IF_ERROR(r.GetU64(&info->generation));
  SCUBA_RETURN_IF_ERROR(r.GetU64(&info->wal_next_seq));
  SCUBA_RETURN_IF_ERROR(r.GetU64(&info->rounds));
  uint32_t shard_count = 0;
  SCUBA_RETURN_IF_ERROR(r.GetU32(&shard_count));
  if (shard_count == 0 || shard_count > r.Remaining()) {
    return Status::DataLoss("manifest shard count " +
                            std::to_string(shard_count) +
                            " is implausible for the payload size");
  }
  info->shards.resize(shard_count);
  for (ManifestShardEntry& shard : info->shards) {
    SCUBA_RETURN_IF_ERROR(r.GetU64(&shard.snapshot_seq));
    SCUBA_RETURN_IF_ERROR(r.GetU64(&shard.state_hash));
  }
  SCUBA_RETURN_IF_ERROR(r.GetString(&info->coordinator_state));
  if (!r.AtEnd()) {
    return Status::DataLoss("manifest payload carries trailing bytes");
  }
  return Status::OK();
}

std::string EncodeManifestFile(const ManifestInfo& info) {
  const std::string payload = EncodeManifestPayload(info);
  ByteWriter w;
  w.PutRawBytes(std::string_view(kManifestMagic, sizeof(kManifestMagic)));
  w.PutU32(kManifestVersion);
  w.PutU64(payload.size());
  w.PutRawBytes(payload);
  w.PutU32(Crc32(payload));
  return w.Release();
}

}  // namespace

std::string ManifestFileName(uint64_t generation) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%020llu%s", kManifestPrefix,
                static_cast<unsigned long long>(generation), kManifestSuffix);
  return buf;
}

std::string ShardDirName(uint32_t shard_index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%04u", shard_index);
  return buf;
}

Result<std::vector<std::pair<uint64_t, std::string>>> ListManifests(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> out;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return out;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("cannot list " + dir + ": " + ec.message());
  }
  for (const fs::directory_entry& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kManifestPrefix, 0) != 0) continue;
    if (name.size() <=
        sizeof(kManifestPrefix) - 1 + sizeof(kManifestSuffix) - 1)
      continue;
    if (name.substr(name.size() - (sizeof(kManifestSuffix) - 1)) !=
        kManifestSuffix)
      continue;
    const std::string digits =
        name.substr(sizeof(kManifestPrefix) - 1,
                    name.size() - (sizeof(kManifestPrefix) - 1) -
                        (sizeof(kManifestSuffix) - 1));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    out.emplace_back(std::strtoull(digits.c_str(), nullptr, 10),
                     entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status WriteManifestFile(const std::string& dir, const ManifestInfo& info,
                         CrashInjector* crash) {
  const std::string data = EncodeManifestFile(info);
  const std::string final_path =
      (fs::path(dir) / ManifestFileName(info.generation)).string();
  const std::string tmp_path = final_path + ".tmp";
  SCUBA_RETURN_IF_ERROR(WriteFileDurably(tmp_path, data));
  if (crash != nullptr &&
      crash->ShouldCrash(CrashPoint::kBeforeManifestRename)) {
    // The tmp file is durable but the final name was never created: the
    // previous generation stays committed, the tmp file is an orphan.
    return crash->CrashStatus();
  }
  if (crash != nullptr && crash->ShouldCrash(CrashPoint::kTornManifestRename)) {
    // The final name exists but holds a truncated container — its CRC cannot
    // match and recovery must fall back a generation.
    SCUBA_RETURN_IF_ERROR(
        WriteFileDurably(final_path, data, data.size() - data.size() / 3));
    std::error_code ec;
    fs::remove(tmp_path, ec);
    SCUBA_RETURN_IF_ERROR(SyncDirectory(dir));
    return crash->CrashStatus();
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::IoError("rename " + tmp_path + " -> " + final_path + ": " +
                           ec.message());
  }
  return SyncDirectory(dir);
}

Result<ManifestInfo> ReadManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open manifest: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = std::move(buf).str();
  constexpr size_t kHeaderBytes =
      sizeof(kManifestMagic) + sizeof(uint32_t) + sizeof(uint64_t);
  if (data.size() < kHeaderBytes + sizeof(uint32_t)) {
    return Status::DataLoss(path + ": shorter than a manifest header");
  }
  if (std::memcmp(data.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return Status::DataLoss(path + ": bad magic");
  }
  uint32_t version = 0;
  std::memcpy(&version, data.data() + sizeof(kManifestMagic), sizeof(version));
  if (version != kManifestVersion) {
    return Status::DataLoss(path + ": unsupported manifest version " +
                            std::to_string(version));
  }
  uint64_t payload_len = 0;
  std::memcpy(&payload_len,
              data.data() + sizeof(kManifestMagic) + sizeof(version),
              sizeof(payload_len));
  if (data.size() != kHeaderBytes + payload_len + sizeof(uint32_t)) {
    return Status::DataLoss(path + ": size does not match its declared " +
                            std::to_string(payload_len) + " payload bytes");
  }
  const std::string_view payload =
      std::string_view(data).substr(kHeaderBytes, payload_len);
  uint32_t crc = 0;
  std::memcpy(&crc, data.data() + kHeaderBytes + payload_len, sizeof(crc));
  if (Crc32(payload) != crc) {
    return Status::DataLoss(path + ": payload failed its checksum");
  }
  ManifestInfo info;
  if (Status s = DecodeManifestPayload(payload, &info); !s.ok()) {
    return Status::DataLoss(path + ": " + s.message());
  }
  return info;
}

}  // namespace scuba
