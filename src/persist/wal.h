// Write-ahead log for admitted update batches (docs/ARCHITECTURE.md §8).
//
// Every batch that survives UpdateValidator screening is appended — and
// fsynced — to the WAL *before* it is ingested, so a crash between append and
// ingestion loses nothing: recovery replays the record. Segments are named
// "wal-<first record seq, zero-padded>.log" and rotate between records once
// the active segment would exceed the configured size; a record never spans
// segments.
//
// Record framing (all integers little-endian):
//
//   len u32 | crc32(payload) u32 | payload (len bytes)
//
// Payload: type u8 (1 = batch) | seq u64 | batch_time i64 | evaluate_after u8
//          | object count u64 | objects | query count u64 | queries
//
// A torn frame at the very tail of the *last* segment is the expected residue
// of a crash mid-append: ReadWal tolerates it, reports it, and never ingests
// any part of it. A bad frame anywhere else — or a sequence-number gap — is
// genuine corruption and fails the whole read with kDataLoss.

#ifndef SCUBA_PERSIST_WAL_H_
#define SCUBA_PERSIST_WAL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "gen/update.h"
#include "persist/crash.h"

namespace scuba {

/// One durable batch, as written to (or read back from) the log.
struct WalRecord {
  uint64_t seq = 0;
  Timestamp batch_time = 0;
  /// True when the pipeline evaluated a round right after ingesting this
  /// batch ((i+1) % delta == 0); replay re-evaluates at the same boundaries.
  bool evaluate_after = false;
  std::vector<LocationUpdate> objects;
  std::vector<QueryUpdate> queries;
};

/// Appends WalRecords to a directory of rotating segment files. Not
/// thread-safe; the stream pipeline appends from its single driver thread.
class WalWriter {
 public:
  struct Stats {
    uint64_t records_appended = 0;
    uint64_t fsyncs = 0;
    uint64_t bytes_appended = 0;
  };

  /// Opens (creating `dir` if needed) for appending. Scans existing segments
  /// to find the end of the log: next_seq() continues after the last intact
  /// record (a torn tail is truncated away so the new record lands on a clean
  /// boundary), or starts at `initial_seq` when the log is empty. `crash`
  /// (nullable, unowned, must outlive the writer) arms crash injection on the
  /// append path.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& dir,
                                                 uint64_t segment_bytes,
                                                 uint64_t initial_seq,
                                                 CrashInjector* crash);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record (stamped with next_seq()) and fdatasyncs the segment.
  /// Injects kBeforeWalAppend (nothing written), kMidWalAppend (half the
  /// frame written and synced — a torn tail) and kAfterWalAppend (fully
  /// durable, but the caller's ingestion never happens).
  Status Append(Timestamp batch_time, bool evaluate_after,
                std::span<const LocationUpdate> objects,
                std::span<const QueryUpdate> queries);

  /// Sequence number the next Append will write.
  uint64_t next_seq() const { return next_seq_; }
  const Stats& stats() const { return stats_; }

  /// Deletes every segment whose records ALL precede `min_seq` (they are
  /// covered by a snapshot). The active segment is never deleted. Returns the
  /// number of segments removed.
  Result<size_t> PruneSegmentsBelow(uint64_t min_seq);

 private:
  WalWriter(std::string dir, uint64_t segment_bytes, CrashInjector* crash)
      : dir_(std::move(dir)), segment_bytes_(segment_bytes), crash_(crash) {}

  /// Opens (or creates) the segment that starts at `first_seq` for append.
  Status OpenSegment(uint64_t first_seq);
  void CloseSegment();

  std::string dir_;
  uint64_t segment_bytes_;
  CrashInjector* crash_;  ///< Unowned, nullable.
  uint64_t next_seq_ = 0;
  int fd_ = -1;
  std::string segment_path_;
  uint64_t segment_first_seq_ = 0;
  uint64_t segment_size_ = 0;
  Stats stats_;
};

/// Everything ReadWal could recover from a log directory.
struct WalContents {
  std::vector<WalRecord> records;  ///< Intact records, ascending seq.
  /// True when the last segment ended in a torn frame (crash mid-append).
  /// The torn bytes are reported, never parsed into a record.
  bool torn_tail = false;
  std::string torn_detail;
};

/// All WAL segment files in `dir` as (first_seq, path), ascending.
Result<std::vector<std::pair<uint64_t, std::string>>> ListWalSegments(
    const std::string& dir);

/// Reads every record in seq order across all segments. A bad frame at the
/// tail of the final segment is tolerated as a torn tail; a bad frame
/// anywhere else, a CRC/parse failure mid-log, or a seq discontinuity is
/// kDataLoss. A missing directory reads as an empty log.
Result<WalContents> ReadWal(const std::string& dir);

}  // namespace scuba

#endif  // SCUBA_PERSIST_WAL_H_
