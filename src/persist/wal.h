// Write-ahead log for admitted update batches (docs/ARCHITECTURE.md §8).
//
// Every batch that survives UpdateValidator screening is appended — and
// fsynced — to the WAL *before* it is ingested, so a crash between append and
// ingestion loses nothing: recovery replays the record. Segments are named
// "wal-<first record seq, zero-padded>.log" and rotate between records once
// the active segment would exceed the configured size; a record never spans
// segments.
//
// Record framing (all integers little-endian):
//
//   len u32 | crc32(payload) u32 | payload (len bytes)
//
// Payload: type u8 (1 = batch) | seq u64 | batch_time i64 | evaluate_after u8
//          | object count u64 | objects | query count u64 | queries
//
// Type 2 ("routed sub-batch", docs/ARCHITECTURE.md §12) carries one shard's
// slice of a batch in a per-shard chain: after evaluate_after it adds
// shard_index u32 | shard_count u32 | total_objects u64 | total_queries u64,
// and every tuple is preceded by its u64 slot — the tuple's position in the
// original batch. Recovery merges the sub-records of a seq across all chains
// back into the exact original batch; the slots must form a full permutation
// of [0, total), which doubles as the batch-completeness check (a crash
// mid-fanout leaves the final seq short of shard_count sub-records and it is
// discarded — that batch was never acknowledged).
//
// A torn frame at the very tail of the *last* segment is the expected residue
// of a crash mid-append: ReadWal tolerates it, reports it, and never ingests
// any part of it. A bad frame anywhere else — or a sequence-number gap — is
// genuine corruption and fails the whole read with kDataLoss. (Routed chains
// may carry a forward seq jump exactly at a segment boundary — the residue of
// an N→M re-partition, where a chain sits out the epochs that did not fan out
// to it; ReadWal tolerates it only when asked, and the cross-chain slot
// merge supplies the integrity check a per-chain gap check cannot.)

#ifndef SCUBA_PERSIST_WAL_H_
#define SCUBA_PERSIST_WAL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "gen/update.h"
#include "persist/crash.h"

namespace scuba {

/// One durable batch, as written to (or read back from) the log.
struct WalRecord {
  uint64_t seq = 0;
  Timestamp batch_time = 0;
  /// True when the pipeline evaluated a round right after ingesting this
  /// batch ((i+1) % delta == 0); replay re-evaluates at the same boundaries.
  bool evaluate_after = false;
  std::vector<LocationUpdate> objects;
  std::vector<QueryUpdate> queries;

  /// Type-2 fields (routed sub-batch in a per-shard chain); unset on type-1
  /// records. `object_slots` / `query_slots` run parallel to `objects` /
  /// `queries` and name each tuple's position in the original batch;
  /// `total_*` count the whole batch across all chains; `shard_count` says
  /// how many sibling sub-records the seq fanned out to.
  bool routed = false;
  uint32_t shard_index = 0;
  uint32_t shard_count = 0;
  uint64_t total_objects = 0;
  uint64_t total_queries = 0;
  std::vector<uint64_t> object_slots;
  std::vector<uint64_t> query_slots;
};

/// Appends WalRecords to a directory of rotating segment files. Not
/// thread-safe; the stream pipeline appends from its single driver thread.
class WalWriter {
 public:
  struct Stats {
    uint64_t records_appended = 0;
    uint64_t fsyncs = 0;
    uint64_t bytes_appended = 0;
  };

  /// Opens (creating `dir` if needed) for appending. Scans existing segments
  /// to find the end of the log: next_seq() continues after the last intact
  /// record (a torn tail is truncated away so the new record lands on a clean
  /// boundary), or starts at `initial_seq` when the log is empty. `crash`
  /// (nullable, unowned, must outlive the writer) arms crash injection on the
  /// append path.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& dir,
                                                 uint64_t segment_bytes,
                                                 uint64_t initial_seq,
                                                 CrashInjector* crash);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record (stamped with next_seq()) and fdatasyncs the segment.
  /// Injects kBeforeWalAppend (nothing written), kMidWalAppend (half the
  /// frame written and synced — a torn tail) and kAfterWalAppend (fully
  /// durable, but the caller's ingestion never happens).
  Status Append(Timestamp batch_time, bool evaluate_after,
                std::span<const LocationUpdate> objects,
                std::span<const QueryUpdate> queries);

  /// Appends one type-2 routed sub-batch record (stamped with next_seq()).
  /// `object_slots` / `query_slots` must parallel `objects` / `queries`.
  /// Injects the same three append points plus kMidShardWalAppend (the
  /// sharded-fanout torn tail — identical on-disk residue to kMidWalAppend,
  /// counted per chain append).
  Status AppendRouted(Timestamp batch_time, bool evaluate_after,
                      uint32_t shard_index, uint32_t shard_count,
                      uint64_t total_objects, uint64_t total_queries,
                      std::span<const uint64_t> object_slots,
                      std::span<const LocationUpdate> objects,
                      std::span<const uint64_t> query_slots,
                      std::span<const QueryUpdate> queries);

  /// Sequence number the next Append will write.
  uint64_t next_seq() const { return next_seq_; }
  const Stats& stats() const { return stats_; }

  /// Deletes every segment whose records ALL precede `min_seq` (they are
  /// covered by a snapshot). The active segment is never deleted. Returns the
  /// number of segments removed.
  Result<size_t> PruneSegmentsBelow(uint64_t min_seq);

 private:
  WalWriter(std::string dir, uint64_t segment_bytes, CrashInjector* crash)
      : dir_(std::move(dir)), segment_bytes_(segment_bytes), crash_(crash) {}

  /// Shared frame path behind Append / AppendRouted: rotation, crash
  /// injection, write + fdatasync, counters.
  Status AppendFrame(const std::string& payload);

  /// Opens (or creates) the segment that starts at `first_seq` for append.
  Status OpenSegment(uint64_t first_seq);
  void CloseSegment();

  std::string dir_;
  uint64_t segment_bytes_;
  CrashInjector* crash_;  ///< Unowned, nullable.
  uint64_t next_seq_ = 0;
  int fd_ = -1;
  std::string segment_path_;
  uint64_t segment_first_seq_ = 0;
  uint64_t segment_size_ = 0;
  Stats stats_;
};

/// Everything ReadWal could recover from a log directory.
struct WalContents {
  std::vector<WalRecord> records;  ///< Intact records, ascending seq.
  /// True when the last segment ended in a torn frame (crash mid-append).
  /// The torn bytes are reported, never parsed into a record.
  bool torn_tail = false;
  std::string torn_detail;
  /// Tolerated forward seq jumps at segment boundaries of routed chains
  /// (re-partition residue); empty unless ReadWal was asked to allow them.
  std::vector<std::string> route_gap_notes;
};

/// All WAL segment files in `dir` as (first_seq, path), ascending.
Result<std::vector<std::pair<uint64_t, std::string>>> ListWalSegments(
    const std::string& dir);

/// Reads every record in seq order across all segments. A bad frame at the
/// tail of the final segment is tolerated as a torn tail; a bad frame
/// anywhere else, a CRC/parse failure mid-log, or a seq discontinuity is
/// kDataLoss. A missing directory reads as an empty log.
///
/// `tolerate_routed_segment_gaps`: a per-shard chain of routed records may
/// legitimately skip forward exactly at a segment boundary — the chain sat
/// out the epochs between two shard layouts (N→M re-partition). When set, a
/// forward jump at a segment boundary between two routed records is noted
/// instead of failing; every other discontinuity is still kDataLoss. The
/// sharded recovery's cross-chain slot merge supplies the integrity check.
Result<WalContents> ReadWal(const std::string& dir,
                            bool tolerate_routed_segment_gaps = false);

/// Physically drops every record with seq >= `first_seq_to_drop`: truncates
/// the segment holding the first such record at its frame boundary (removing
/// the file entirely if nothing precedes it) and deletes all later segments.
/// The sharded durability manager uses this to discard an incomplete batch —
/// one whose fan-out crashed between chains — so every chain resumes on the
/// same sequence. A no-op when the log ends before `first_seq_to_drop`.
Status TruncateWalAfter(const std::string& dir, uint64_t first_seq_to_drop);

}  // namespace scuba

#endif  // SCUBA_PERSIST_WAL_H_
