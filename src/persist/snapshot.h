// Engine snapshots: versioned, checksummed serialization of the full SCUBA
// engine state (docs/ARCHITECTURE.md §8).
//
// File layout (all integers little-endian):
//
//   magic "SCUBSNP1" (8 bytes) | version u32 | payload_len u64
//   payload (payload_len bytes) | crc32(payload) u32
//
// The payload carries, in order: the ScubaOptions fingerprint, the WAL
// sequence number the snapshot is consistent as of, the evaluation-round
// count, the ClusterStore (next_cid, attr tables sorted by id, every cluster
// with its members in order and its grid-registration memo), the engine's
// EvalStats / phase stats / clusterer stats / shedder state / join counters,
// and optional UpdateValidator and Rng sections. Every double is persisted as
// its IEEE-754 bit pattern, so a restored engine is *bit-identical* to the
// checkpointed one: same digests, same future results.
//
// Restore re-registers each cluster in the ClusterGrid from its saved
// registered_bounds in ascending cid order. Grid cell placement is a pure
// function of those bounds (GridIndex::CellsForCircle) and cell-entry order
// is unobservable by contract (FindCompatibleCluster picks the lowest cid;
// the join's owner-cell rule sorts), so this reproduces the grid exactly as
// far as any downstream computation can tell.

#ifndef SCUBA_PERSIST_SNAPSHOT_H_
#define SCUBA_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/scuba_engine.h"
#include "persist/crash.h"
#include "common/serializer.h"
#include "stream/update_validator.h"

namespace scuba {

class ShardedEngine;  // src/shard; persist never links it.

/// Descriptive header fields of a snapshot payload.
struct SnapshotMeta {
  uint64_t options_fingerprint = 0;
  /// First WAL sequence number NOT reflected in the snapshot: recovery
  /// replays WAL records with seq >= wal_next_seq.
  uint64_t wal_next_seq = 0;
  /// Evaluation rounds completed at snapshot time.
  uint64_t rounds = 0;
};

/// Fingerprint of the *semantic* engine options: every field that can change
/// results. join_threads / ingest_threads / the checkpoint policy are
/// excluded — results are bit-identical across them by the parallel
/// executors' contract, so a snapshot taken at threads=4 restores cleanly
/// into a threads=1 engine (and the crash harness relies on exactly that).
uint64_t OptionsFingerprint(const ScubaOptions& options);

/// "snapshot-<seq, zero-padded>.scuba" — lexicographic order == seq order.
std::string SnapshotFileName(uint64_t wal_next_seq);

/// All snapshot files in `dir` as (wal_next_seq, full path), ascending seq.
/// An unreadable directory is IoError; an empty/missing one is an empty list.
Result<std::vector<std::pair<uint64_t, std::string>>> ListSnapshots(
    const std::string& dir);

/// Serializes the complete engine state (plus optional validator / rng
/// sections) into a snapshot payload.
std::string SerializeEngineSnapshot(const ScubaEngine& engine,
                                    uint64_t wal_next_seq,
                                    const UpdateValidator* validator,
                                    const Rng* rng);

/// Writes header + payload + CRC to `dir`/SnapshotFileName(seq) atomically
/// (temp file, fsync, rename, directory fsync). `crash` (nullable) injects
/// kMidSnapshotWrite (partial temp file, no final file) and
/// kTornSnapshotRename (final file with a truncated, checksum-failing
/// payload). Returns the total file size via `*bytes_written` (nullable).
Status WriteSnapshotFile(const std::string& dir, uint64_t wal_next_seq,
                         const std::string& payload, CrashInjector* crash,
                         uint64_t* bytes_written);

/// Reads a snapshot file and verifies magic, version, length and CRC.
/// kDataLoss on any mismatch or truncation; the payload otherwise.
Result<std::string> ReadSnapshotPayload(const std::string& path);

/// Parses only the leading meta fields of a verified payload.
Result<SnapshotMeta> PeekSnapshotMeta(const std::string& payload);

/// FNV-1a 64 hash over the engine's *deterministic* state — the cluster
/// store (clusters, members in order, attr tables) and grid registrations,
/// excluding wall-clock timing stats. Two engines with equal hashes are
/// indistinguishable to every later round; a recovered engine must hash
/// equal to the uninterrupted one (the CLI prints this for the CI smoke).
uint64_t EngineStateHash(const ScubaEngine& engine);

/// EngineStateHash over a spatially sharded engine: the same FNV-1a 64 over
/// the same byte layout, assembled from the coordinator's meta store (id
/// allocator + attr tables) and the per-shard cluster stores and grids
/// (src/shard). A sharded engine in the same logical state as a single
/// engine hashes equal — the sharded determinism contract's hash basis
/// (docs/ARCHITECTURE.md §11).
uint64_t ShardedStateHash(const ClusterStore& meta,
                          const std::vector<const ClusterStore*>& stores,
                          const std::vector<const GridIndex*>& grids);

/// Replaces `engine`'s entire state with the payload's. The payload's
/// options fingerprint must match the engine's (kFailedPrecondition); the
/// engine's thread counts are kept. When the payload carries a validator /
/// rng section and the matching pointer is non-null, that state is restored
/// too (a null pointer skips the section). A payload that fails to parse is
/// kDataLoss; the engine must then be considered unusable (partially
/// mutated) and discarded.
Result<SnapshotMeta> ApplySnapshot(const std::string& payload,
                                   ScubaEngine* engine,
                                   UpdateValidator* validator, Rng* rng);

/// Serialization back doors into the private state of the engine's
/// components. Befriended by ScubaEngine, ClusterStore, MovingCluster,
/// LeaderFollowerClusterer, LoadShedder, ClusterJoinExecutor,
/// UpdateValidator and QuarantineLog; everything durable flows through these
/// static helpers so the friend surface stays in one place.
struct PersistAccess {
  /// The deterministic subset of SaveEngineState: store tables, clusters and
  /// grid-registration flags — everything EngineStateHash covers.
  static void SaveStoreState(const ScubaEngine& engine, ByteWriter* w);
  /// SaveStoreState's byte layout assembled from a sharded engine's parts:
  /// meta store (id allocator, attr tables) + per-shard stores and grids.
  /// Clusters serialize in globally ascending cid order; the registered flag
  /// is true when any shard grid holds the cluster.
  static void SaveShardedStoreState(const ClusterStore& meta,
                                    const std::vector<const ClusterStore*>& stores,
                                    const std::vector<const GridIndex*>& grids,
                                    ByteWriter* w);
  static void SaveEngineState(const ScubaEngine& engine, ByteWriter* w);
  static Status LoadEngineState(ByteReader* r, ScubaEngine* engine);
  static void SaveCluster(const MovingCluster& cluster, ByteWriter* w);
  static Result<MovingCluster> LoadCluster(ByteReader* r);
  static void SaveValidatorState(const UpdateValidator& v, ByteWriter* w);
  static Status LoadValidatorState(ByteReader* r, UpdateValidator* v);
  /// WAL replay: an admitted tuple advances the validator's per-entity
  /// last-timestamp floor exactly as the original screening did.
  static void NoteAdmitted(UpdateValidator* v, EntityKind kind, uint32_t id,
                           Timestamp time);
  /// Durability counters live in the engine's EvalStats; the manager and
  /// RecoverEngine update them through this accessor.
  static EvalStats* MutableStats(ScubaEngine* engine);

  /// The snapshot payload's EvalStats section, exposed so the sharded
  /// coordinator-state blob shares one field order with engine snapshots.
  static void SaveEvalStats(const EvalStats& stats, ByteWriter* w);
  static Status LoadEvalStats(ByteReader* r, EvalStats* stats);

  // --- Sharded durability (defined in src/shard/shard_durability.cc; the
  // persist library declares but never links them — only binaries linking
  // scuba_shard resolve these). ---

  /// One shard's snapshot payload: the PeekSnapshotMeta header (fingerprint,
  /// wal_next_seq, rounds), the saved shard layout, the shard store's
  /// clusters with their grid-registration flags, and the shard's join
  /// counters / shedder state.
  static std::string SerializeShardSnapshot(const ShardedEngine& engine,
                                            uint32_t shard_index,
                                            uint64_t wal_next_seq,
                                            uint64_t rounds);
  /// Applies one shard snapshot payload into `engine`'s CURRENT layout:
  /// every cluster routes to the stripe owning its registered center, so an
  /// N-shard checkpoint restores into an M-shard engine (re-partition on
  /// recovery). Per-shard counters/shedder state restore in place when the
  /// layouts match; under a re-partition the counters accumulate onto shard 0
  /// (sums — the observable aggregate — are preserved) and shard 0's saved
  /// shedder state seeds every stripe.
  static Status ApplyShardSnapshot(const std::string& payload,
                                   ShardedEngine* engine);
  /// Online stripe transplant (docs/ARCHITECTURE.md §13): replaces stripe
  /// `shard`'s store slice and grid mirror with the clusters of a shard
  /// snapshot payload (taken from a recovered twin at the same layout),
  /// leaving every other stripe's store untouched. Drops the stripe's own
  /// clusters from every grid, wipes the stripe's grid outright (corrupt
  /// residue included), applies the payload, then re-registers the other
  /// stripes' clusters so the stripe's mirror entries for neighbor-owned
  /// border clusters come back.
  static Status ReplaceShardStripe(ShardedEngine* engine, uint32_t shard,
                                   const std::string& payload);
  /// Coordinator state: meta store (id allocator + attr tables), aggregate
  /// EvalStats / phase / clusterer stats, handoff + ghost + rebalance
  /// counters, and optional validator / rng sections — everything durable
  /// that lives outside the shard stores.
  static void SaveShardedCoordinatorState(const ShardedEngine& engine,
                                          const UpdateValidator* validator,
                                          const Rng* rng, ByteWriter* w);
  static Status LoadShardedCoordinatorState(ByteReader* r,
                                            ShardedEngine* engine,
                                            UpdateValidator* validator,
                                            Rng* rng);
  static EvalStats* MutableShardedStats(ShardedEngine* engine);
};

// ScubaEngine::Checkpoint / ::Restore are declared in core/scuba_engine.h and
// defined in this library (snapshot.cc): core stays independent of persist,
// and any binary linking the `scuba` umbrella resolves them.

}  // namespace scuba

#endif  // SCUBA_PERSIST_SNAPSHOT_H_
