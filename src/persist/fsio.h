// Low-level durable file IO shared by the snapshot, WAL and manifest writers
// (docs/ARCHITECTURE.md §8, §12).
//
// Extracted from snapshot.cc so every artifact in a durable directory —
// engine snapshots, per-shard snapshots, coordinator manifests — goes through
// the same write-fsync-rename discipline instead of three private copies.

#ifndef SCUBA_PERSIST_FSIO_H_
#define SCUBA_PERSIST_FSIO_H_

#include <string>

#include "common/status.h"

namespace scuba {

/// Writes `data` to `path` (create/truncate), then fdatasync. IoError with
/// errno text on failure. `length` caps the bytes written (torn-write
/// simulation); npos writes everything.
Status WriteFileDurably(const std::string& path, const std::string& data,
                        size_t length = std::string::npos);

/// fsync on a directory, making renames/creations within it durable. EINVAL
/// (a filesystem without directory fsync) is tolerated.
Status SyncDirectory(const std::string& dir);

}  // namespace scuba

#endif  // SCUBA_PERSIST_FSIO_H_
