// Read-only verification of a durable directory (`scuba_cli fsck <dir>`).
//
// Walks every artifact a durable directory can hold — snapshots and WAL
// segments in the single-engine layout; manifests, per-shard snapshots and
// per-shard WAL chains in the sharded layout (persist/manifest.h) — and
// verifies framing CRCs, manifest-recorded payload hashes, chain sequence
// contiguity and cross-chain batch completeness. Never writes a byte: torn
// tails and unacknowledged fanout tails are *reported*, exactly as recovery
// would repair them, but the repair itself is left to recovery.

#ifndef SCUBA_PERSIST_FSCK_H_
#define SCUBA_PERSIST_FSCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace scuba {

/// Distinct fsck verdict codes, ascending severity; a report's exit_code is
/// the worst issue found. They start above every StatusCode value so a CLI
/// failure (exit = StatusCode) never collides with an fsck verdict.
inline constexpr int kFsckOk = 0;
/// A chain/log ends in a torn frame, or a batch's fanout stopped short of
/// every chain — crash residue that recovery discards cleanly.
inline constexpr int kFsckTornTail = 20;
/// Temp files or snapshots no readable manifest references (interrupted
/// write or prune). Inert: recovery never reads them.
inline constexpr int kFsckOrphan = 21;
/// A snapshot fails its CRC, or disagrees with the manifest that names it.
inline constexpr int kFsckBadSnapshot = 22;
/// A sequence gap or mid-log corruption in a WAL chain, or a batch left
/// incomplete across chains with later batches following it.
inline constexpr int kFsckWalGap = 23;
/// A manifest file fails its CRC or does not parse.
inline constexpr int kFsckBadManifest = 24;
/// A manifest references a snapshot file that does not exist.
inline constexpr int kFsckMissingArtifact = 25;

struct FsckReport {
  bool sharded = false;  ///< Which layout the directory holds.
  uint64_t manifests_scanned = 0;
  uint64_t manifests_valid = 0;
  uint64_t snapshots_scanned = 0;
  uint64_t snapshots_valid = 0;
  uint64_t wal_segments_scanned = 0;
  uint64_t wal_records_scanned = 0;
  /// Tolerated residue and layout facts (extinct shard dirs, re-partition
  /// seq jumps); informational, never affects exit_code.
  std::vector<std::string> notes;
  /// Each problem raised exit_code to at least its verdict code.
  std::vector<std::string> problems;
  int exit_code = kFsckOk;

  std::string ToString() const;
  /// One JSON object (stable key order) for `scuba_cli fsck --json`:
  /// {"sharded":...,"manifests_scanned":...,"manifests_valid":...,
  ///  "snapshots_scanned":...,"snapshots_valid":...,
  ///  "wal_segments_scanned":...,"wal_records_scanned":...,
  ///  "exit_code":...,"clean":...,"problems":[...],"notes":[...]}
  std::string ToJson() const;
};

/// Verifies everything under `dir` without mutating it. The Result is an
/// error only when the directory itself cannot be read — damage inside it is
/// always a *report*, never a Status.
Result<FsckReport> FsckDurableDir(const std::string& dir);

}  // namespace scuba

#endif  // SCUBA_PERSIST_FSCK_H_
