// Checkpoint manifest for sharded durability (docs/ARCHITECTURE.md §12).
//
// A sharded checkpoint is not one file: it is one snapshot per shard plus a
// coordinator-state blob. None of those artifacts is authoritative on its
// own — the *manifest* is. A checkpoint generation exists exactly when a
// manifest file referencing every artifact is durably published; shard
// snapshots fsync first, the manifest renames into place last (two-phase), so
// a crash anywhere in between leaves the previous generation committed and
// the new files as unreferenced orphans the next successful checkpoint
// prunes.
//
// File name: "manifest-<generation, zero-padded to 20>.scubamf". Container
// framing mirrors snapshots:
//
//   magic "SCUBAMF1" | version u32 | payload_len u64 | payload
//   | crc32(payload) u32
//
// Payload: fingerprint u64 | generation u64 | wal_next_seq u64 | rounds u64
//          | shard_count u32 | per shard { snapshot_seq u64, state_hash u64 }
//          | coordinator_state (length-prefixed bytes, opaque here)
//
// `wal_next_seq` is the global batch index the checkpoint covers: recovery
// loads the generation's snapshots and replays every per-shard WAL chain from
// wal_next_seq on. `state_hash` is the FNV-1a of the shard's snapshot payload
// — recovery re-hashes what it read and refuses a silently substituted file.
// The coordinator_state bytes are serialized/parsed by the sharded layer
// (src/shard/shard_durability.cc); this module treats them as opaque so
// persist stays independent of shard types.

#ifndef SCUBA_PERSIST_MANIFEST_H_
#define SCUBA_PERSIST_MANIFEST_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "persist/crash.h"

namespace scuba {

/// One shard's entry in a manifest.
struct ManifestShardEntry {
  /// Sequence number in the shard snapshot's file name (== generation; a
  /// generation and a wal_next_seq are distinct counters — two consecutive
  /// generations can cover the same wal_next_seq).
  uint64_t snapshot_seq = 0;
  /// Fnv1a64 of the shard snapshot's payload bytes.
  uint64_t state_hash = 0;
};

/// A parsed (or to-be-written) checkpoint manifest.
struct ManifestInfo {
  uint64_t fingerprint = 0;   ///< OptionsFingerprint at checkpoint time.
  uint64_t generation = 0;    ///< Monotonic checkpoint counter.
  uint64_t wal_next_seq = 0;  ///< First batch seq NOT covered by snapshots.
  uint64_t rounds = 0;        ///< Evaluation rounds completed at checkpoint.
  std::vector<ManifestShardEntry> shards;  ///< One per shard, index order.
  /// Coordinator state (meta store, stats, validator, ...), serialized by the
  /// sharded layer. Opaque at this layer.
  std::string coordinator_state;
};

/// "manifest-<generation, 20 digits>.scubamf".
std::string ManifestFileName(uint64_t generation);

/// "shard-<index, 4 digits>" — the per-shard artifact directory under a
/// durable root (holds that shard's snapshots and WAL chain).
std::string ShardDirName(uint32_t shard_index);

/// All manifest files in `dir` as (generation, path), ascending. A missing
/// directory lists as empty.
Result<std::vector<std::pair<uint64_t, std::string>>> ListManifests(
    const std::string& dir);

/// Serializes and durably publishes `info` as manifest-<generation> in `dir`
/// (tmp file + fsync + rename + dir fsync). Injects kBeforeManifestRename
/// (durable tmp only, no final file) and kTornManifestRename (final file
/// exists but truncated — CRC cannot match).
Status WriteManifestFile(const std::string& dir, const ManifestInfo& info,
                         CrashInjector* crash);

/// Reads and validates one manifest file: magic, version, exact size, CRC.
/// Any mismatch is kDataLoss (the caller falls back a generation).
Result<ManifestInfo> ReadManifest(const std::string& path);

}  // namespace scuba

#endif  // SCUBA_PERSIST_MANIFEST_H_
