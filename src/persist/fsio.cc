#include "persist/fsio.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace scuba {

Status WriteFileDurably(const std::string& path, const std::string& data,
                        size_t length) {
  const size_t n = std::min(length, data.size());
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < n) {
    ssize_t rc = ::write(fd, data.data() + written, n - written);
    if (rc < 0) {
      if (errno == EINTR) continue;
      Status s = Status::IoError("write " + path + ": " + std::strerror(errno));
      ::close(fd);
      return s;
    }
    written += static_cast<size_t>(rc);
  }
  if (::fdatasync(fd) != 0) {
    Status s =
        Status::IoError("fdatasync " + path + ": " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  ::close(fd);
  return Status::OK();
}

Status SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("open dir " + dir + ": " + std::strerror(errno));
  }
  if (::fsync(fd) != 0 && errno != EINVAL) {  // EINVAL: fs without dir fsync
    Status s =
        Status::IoError("fsync dir " + dir + ": " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace scuba
