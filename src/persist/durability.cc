#include "persist/durability.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "common/stopwatch.h"

namespace scuba {

namespace fs = std::filesystem;

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    const std::string& dir, const CheckpointPolicy& policy,
    ScubaEngine* engine, UpdateValidator* validator, Rng* rng,
    CrashInjector* crash) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must be non-null");
  }
  if (policy.keep_last_k == 0) {
    return Status::InvalidArgument("keep_last_k must be at least 1");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + dir + ": " + ec.message());
  }
  std::unique_ptr<DurabilityManager> manager(
      new DurabilityManager(dir, policy, engine, validator, rng, crash));
  // The WAL resumes where the log ends; on an empty log it starts at the
  // newest snapshot's sequence (recovery from snapshot alone is seamless).
  Result<std::vector<std::pair<uint64_t, std::string>>> snapshots =
      ListSnapshots(dir);
  if (!snapshots.ok()) return snapshots.status();
  const uint64_t initial_seq =
      snapshots->empty() ? 0 : snapshots->back().first;
  Result<std::unique_ptr<WalWriter>> wal =
      WalWriter::Open(dir, policy.wal_segment_bytes, initial_seq, crash);
  if (!wal.ok()) return wal.status();
  manager->wal_ = std::move(wal).value();
  const EvalStats& stats = *PersistAccess::MutableStats(engine);
  manager->base_wal_records_ = stats.wal_records_appended;
  manager->base_wal_fsyncs_ = stats.wal_fsyncs;
  manager->base_wal_bytes_ = stats.wal_bytes_appended;
  return manager;
}

Status DurabilityManager::LogBatch(Timestamp batch_time, bool evaluate_after,
                                   std::span<const LocationUpdate> objects,
                                   std::span<const QueryUpdate> queries) {
  EvalStats* stats = PersistAccess::MutableStats(engine_);
  EngineTelemetry* telemetry = engine_->telemetry();
  Stopwatch sw;
  if (telemetry != nullptr) {
    // The append is activity for the upcoming round (the batch it logs).
    telemetry->EnsureRound(stats->evaluations + 1);
    sw.Start();
  }
  Status s = wal_->Append(batch_time, evaluate_after, objects, queries);
  stats->wal_records_appended = base_wal_records_ + wal_->stats().records_appended;
  stats->wal_fsyncs = base_wal_fsyncs_ + wal_->stats().fsyncs;
  stats->wal_bytes_appended = base_wal_bytes_ + wal_->stats().bytes_appended;
  if (telemetry != nullptr) {
    const double elapsed = sw.ElapsedSeconds();
    TraceCollector& tc = telemetry->trace();
    const int32_t checkpoint = tc.EnsureSpan(tc.root(), "checkpoint");
    tc.Accumulate(checkpoint, elapsed);
    tc.Accumulate(tc.EnsureSpan(checkpoint, "wal"), elapsed);
  }
  return s;
}

Status DurabilityManager::OnRoundComplete() {
  if (policy_.every_n_rounds == 0) return Status::OK();
  if (++rounds_since_checkpoint_ < policy_.every_n_rounds) return Status::OK();
  return ForceCheckpoint();
}

Status DurabilityManager::ForceCheckpoint() {
  if (crash_ != nullptr &&
      crash_->ShouldCrash(CrashPoint::kBeforeSnapshotWrite)) {
    return crash_->CrashStatus();
  }
  Stopwatch sw;
  const uint64_t seq = wal_->next_seq();
  const std::string payload =
      SerializeEngineSnapshot(*engine_, seq, validator_, rng_);
  uint64_t bytes = 0;
  SCUBA_RETURN_IF_ERROR(
      WriteSnapshotFile(dir_, seq, payload, crash_, &bytes));
  EvalStats* stats = PersistAccess::MutableStats(engine_);
  ++stats->checkpoints_written;
  stats->last_checkpoint_bytes = bytes;
  stats->last_checkpoint_seconds = sw.ElapsedSeconds();
  stats->total_checkpoint_seconds += stats->last_checkpoint_seconds;
  if (EngineTelemetry* telemetry = engine_->telemetry();
      telemetry != nullptr) {
    // Post-Evaluate checkpoints belong to the round that just completed.
    telemetry->EnsureRound(std::max<uint64_t>(1, stats->evaluations));
    TraceCollector& tc = telemetry->trace();
    const int32_t checkpoint = tc.EnsureSpan(tc.root(), "checkpoint");
    tc.Accumulate(checkpoint, stats->last_checkpoint_seconds);
    tc.Accumulate(tc.EnsureSpan(checkpoint, "snapshot"),
                  stats->last_checkpoint_seconds);
  }
  if (crash_ != nullptr &&
      crash_->ShouldCrash(CrashPoint::kAfterSnapshotWrite)) {
    return crash_->CrashStatus();
  }
  SCUBA_RETURN_IF_ERROR(Prune());
  if (crash_ != nullptr && crash_->ShouldCrash(CrashPoint::kAfterWalPrune)) {
    return crash_->CrashStatus();
  }
  rounds_since_checkpoint_ = 0;
  return Status::OK();
}

Status DurabilityManager::Prune() {
  Result<std::vector<std::pair<uint64_t, std::string>>> snapshots =
      ListSnapshots(dir_);
  if (!snapshots.ok()) return snapshots.status();
  const size_t keep = policy_.keep_last_k;
  if (snapshots->size() > keep) {
    for (size_t i = 0; i + keep < snapshots->size(); ++i) {
      std::error_code ec;
      fs::remove((*snapshots)[i].second, ec);
      if (ec) {
        return Status::IoError("remove " + (*snapshots)[i].second + ": " +
                               ec.message());
      }
    }
    snapshots->erase(snapshots->begin(),
                     snapshots->end() - static_cast<ptrdiff_t>(keep));
  }
  // Orphaned temp files from interrupted snapshot writes are dead weight.
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".tmp") fs::remove(entry.path(), ec);
  }
  if (!snapshots->empty()) {
    // WAL records below the OLDEST retained snapshot's sequence can never be
    // replayed again (every restorable base is at or past it).
    Result<size_t> removed =
        wal_->PruneSegmentsBelow(snapshots->front().first);
    if (!removed.ok()) return removed.status();
  }
  return Status::OK();
}

std::string RecoveryReport::ToString() const {
  std::ostringstream out;
  if (snapshot_path.empty()) {
    out << "recovered from an empty base (no usable snapshot)";
  } else {
    out << "recovered from " << snapshot_path << " (seq " << snapshot_seq
        << ", " << snapshot_rounds << " rounds)";
  }
  out << ", replayed " << records_replayed << " WAL records ("
      << rounds_replayed << " rounds), next seq " << next_seq;
  if (wal_torn_tail) out << ", torn WAL tail discarded";
  for (const std::string& loss : data_loss) out << "\n  data loss: " << loss;
  return out.str();
}

std::string RecoveryReport::ToJson() const {
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
        continue;
      }
      out += c;
    }
    return out;
  };
  std::ostringstream out;
  out << "{\"snapshot_path\":\"" << escape(snapshot_path) << "\""
      << ",\"snapshot_seq\":" << snapshot_seq
      << ",\"snapshot_rounds\":" << snapshot_rounds
      << ",\"records_replayed\":" << records_replayed
      << ",\"rounds_replayed\":" << rounds_replayed
      << ",\"next_seq\":" << next_seq
      << ",\"wal_torn_tail\":" << (wal_torn_tail ? "true" : "false")
      << ",\"data_loss\":[";
  for (size_t i = 0; i < data_loss.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << escape(data_loss[i]) << "\"";
  }
  out << "]}";
  return out.str();
}

Result<RecoveryReport> RecoverEngine(const std::string& dir,
                                     ScubaEngine* engine,
                                     UpdateValidator* validator, Rng* rng,
                                     const ResultSink& sink) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must be non-null");
  }
  RecoveryReport report;
  Result<std::vector<std::pair<uint64_t, std::string>>> snapshots =
      ListSnapshots(dir);
  if (!snapshots.ok()) return snapshots.status();
  uint64_t base_seq = 0;
  // Newest snapshot first; a checksum-torn file (crash residue) falls back to
  // the previous checkpoint — that is exactly why keep_last_k > 1.
  for (size_t i = snapshots->size(); i-- > 0;) {
    const auto& [seq, path] = (*snapshots)[i];
    Result<std::string> payload = ReadSnapshotPayload(path);
    if (!payload.ok()) {
      if (payload.status().IsDataLoss()) {
        report.data_loss.push_back(payload.status().message());
        continue;
      }
      return payload.status();
    }
    Result<SnapshotMeta> meta = ApplySnapshot(*payload, engine, validator, rng);
    // A fingerprint mismatch or a CRC-clean-but-malformed payload is a hard
    // error: the first means the caller built the wrong engine, the second
    // may have left it partially mutated.
    if (!meta.ok()) return meta.status();
    report.snapshot_path = path;
    report.snapshot_seq = meta->wal_next_seq;
    report.snapshot_rounds = meta->rounds;
    base_seq = meta->wal_next_seq;
    break;
  }
  Result<WalContents> wal = ReadWal(dir);
  if (!wal.ok()) return wal.status();
  report.wal_torn_tail = wal->torn_tail;
  if (wal->torn_tail) report.data_loss.push_back(wal->torn_detail);
  report.next_seq = base_seq;
  ResultSet results;
  for (const WalRecord& record : wal->records) {
    if (record.seq < base_seq) continue;  // Already inside the snapshot.
    if (record.seq != report.next_seq) {
      return Status::DataLoss(
          "WAL gap: snapshot is consistent as of seq " +
          std::to_string(report.next_seq) + " but the next durable record is " +
          std::to_string(record.seq));
    }
    if (validator != nullptr) {
      // WAL records hold post-screen tuples; replay advances the validator's
      // per-entity timestamp floors exactly as the original admission did.
      for (const LocationUpdate& u : record.objects) {
        PersistAccess::NoteAdmitted(validator, EntityKind::kObject, u.oid,
                                    u.time);
      }
      for (const QueryUpdate& u : record.queries) {
        PersistAccess::NoteAdmitted(validator, EntityKind::kQuery, u.qid,
                                    u.time);
      }
    }
    SCUBA_RETURN_IF_ERROR(engine->IngestBatch(record.objects, record.queries));
    if (record.evaluate_after) {
      SCUBA_RETURN_IF_ERROR(engine->Evaluate(record.batch_time, &results));
      if (sink) sink(record.batch_time, results);
      ++report.rounds_replayed;
    }
    ++report.records_replayed;
    ++report.next_seq;
  }
  PersistAccess::MutableStats(engine)->recovery_replay_rounds +=
      report.rounds_replayed;
  return report;
}

}  // namespace scuba
