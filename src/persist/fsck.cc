#include "persist/fsck.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "persist/manifest.h"
#include "common/serializer.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace scuba {

namespace {

namespace fs = std::filesystem;

void Problem(FsckReport* report, int code, std::string message) {
  report->problems.push_back(std::move(message));
  report->exit_code = std::max(report->exit_code, code);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendJsonStrings(std::ostringstream* out, const char* key,
                       const std::vector<std::string>& values) {
  *out << "\"" << key << "\":[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) *out << ",";
    *out << "\"" << JsonEscape(values[i]) << "\"";
  }
  *out << "]";
}

/// "shard-<index>" directories under `dir`, ascending index.
std::vector<std::pair<uint32_t, std::string>> FsckShardDirs(
    const std::string& dir) {
  std::vector<std::pair<uint32_t, std::string>> out;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_directory(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-", 0) != 0) continue;
    const std::string digits = name.substr(6);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    out.emplace_back(
        static_cast<uint32_t>(std::strtoul(digits.c_str(), nullptr, 10)),
        entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ScanTempOrphans(const std::string& dir, FsckReport* report) {
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec) && entry.path().extension() == ".tmp") {
      Problem(report, kFsckOrphan,
              entry.path().string() + ": orphaned temp file (interrupted "
                                      "write; recovery ignores it)");
    }
  }
}

/// Scans one WAL directory; returns its records for cross-chain checks.
std::vector<WalRecord> ScanWalDir(const std::string& dir, bool routed_chain,
                                  FsckReport* report) {
  Result<std::vector<std::pair<uint64_t, std::string>>> segments =
      ListWalSegments(dir);
  if (segments.ok()) {
    report->wal_segments_scanned += segments->size();
  }
  Result<WalContents> contents =
      ReadWal(dir, /*tolerate_routed_segment_gaps=*/routed_chain);
  if (!contents.ok()) {
    Problem(report, kFsckWalGap, dir + ": " + contents.status().message());
    return {};
  }
  report->wal_records_scanned += contents->records.size();
  if (contents->torn_tail) {
    Problem(report, kFsckTornTail, dir + ": " + contents->torn_detail);
  }
  for (const std::string& note : contents->route_gap_notes) {
    report->notes.push_back(dir + ": " + note);
  }
  return std::move(contents->records);
}

void FsckSingleLayout(const std::string& dir, FsckReport* report) {
  Result<std::vector<std::pair<uint64_t, std::string>>> snapshots =
      ListSnapshots(dir);
  if (!snapshots.ok()) {
    Problem(report, kFsckBadSnapshot, snapshots.status().message());
    return;
  }
  for (const auto& [seq, path] : *snapshots) {
    ++report->snapshots_scanned;
    Result<std::string> payload = ReadSnapshotPayload(path);
    if (!payload.ok()) {
      Problem(report, kFsckBadSnapshot,
              path + ": " + payload.status().message());
      continue;
    }
    Result<SnapshotMeta> meta = PeekSnapshotMeta(*payload);
    if (!meta.ok()) {
      Problem(report, kFsckBadSnapshot, path + ": " + meta.status().message());
      continue;
    }
    if (meta->wal_next_seq != seq) {
      Problem(report, kFsckBadSnapshot,
              path + ": file name seq " + std::to_string(seq) +
                  " != payload wal_next_seq " +
                  std::to_string(meta->wal_next_seq));
      continue;
    }
    ++report->snapshots_valid;
  }
  ScanWalDir(dir, /*routed_chain=*/false, report);
  ScanTempOrphans(dir, report);
}

void FsckShardedLayout(
    const std::string& dir,
    const std::vector<std::pair<uint64_t, std::string>>& manifests,
    FsckReport* report) {
  // Manifests and the artifacts they reference.
  std::set<std::pair<uint32_t, uint64_t>> referenced;  // (shard, snapshot seq)
  uint64_t newest_valid_base = 0;
  uint64_t newest_valid_shards = 0;
  bool have_valid = false;
  for (const auto& [generation, path] : manifests) {
    ++report->manifests_scanned;
    Result<ManifestInfo> info = ReadManifest(path);
    if (!info.ok()) {
      Problem(report, kFsckBadManifest, info.status().message());
      continue;
    }
    ++report->manifests_valid;
    if (!have_valid || generation >= info->generation) {
      newest_valid_base = info->wal_next_seq;
      newest_valid_shards = info->shards.size();
      have_valid = true;
    }
    for (uint32_t s = 0; s < info->shards.size(); ++s) {
      const ManifestShardEntry& entry = info->shards[s];
      referenced.insert({s, entry.snapshot_seq});
      const std::string snap_path =
          (fs::path(dir) / ShardDirName(s) /
           SnapshotFileName(entry.snapshot_seq))
              .string();
      ++report->snapshots_scanned;
      std::error_code ec;
      if (!fs::exists(snap_path, ec)) {
        Problem(report, kFsckMissingArtifact,
                path + " references missing " + snap_path);
        continue;
      }
      Result<std::string> payload = ReadSnapshotPayload(snap_path);
      if (!payload.ok()) {
        Problem(report, kFsckBadSnapshot,
                snap_path + ": " + payload.status().message());
        continue;
      }
      if (Fnv1a64(*payload) != entry.state_hash) {
        Problem(report, kFsckBadSnapshot,
                snap_path + " does not hash to the value " + path +
                    " recorded");
        continue;
      }
      Result<SnapshotMeta> meta = PeekSnapshotMeta(*payload);
      if (!meta.ok() || meta->wal_next_seq != info->wal_next_seq ||
          meta->options_fingerprint != info->fingerprint) {
        Problem(report, kFsckBadSnapshot,
                snap_path + " belongs to a different checkpoint than " + path);
        continue;
      }
      ++report->snapshots_valid;
    }
  }

  // Shard directories: orphaned snapshots, chains, cross-chain completeness.
  struct SeqTally {
    uint32_t declared = 0;
    uint64_t count = 0;
    bool mismatch = false;
  };
  std::map<uint64_t, SeqTally> tally;
  for (const auto& [index, shard_dir] : FsckShardDirs(dir)) {
    if (have_valid && index >= newest_valid_shards) {
      report->notes.push_back(shard_dir +
                              ": extinct shard layout (newest manifest has " +
                              std::to_string(newest_valid_shards) +
                              " shards); inert once older manifests age out");
    }
    Result<std::vector<std::pair<uint64_t, std::string>>> snapshots =
        ListSnapshots(shard_dir);
    if (snapshots.ok()) {
      for (const auto& [seq, path] : *snapshots) {
        if (referenced.count({index, seq}) == 0) {
          Problem(report, kFsckOrphan,
                  path + ": no readable manifest references this snapshot "
                         "(interrupted checkpoint or prune)");
        }
      }
    }
    for (const WalRecord& record :
         ScanWalDir(shard_dir, /*routed_chain=*/true, report)) {
      if (record.seq < newest_valid_base) continue;
      if (!record.routed) {
        Problem(report, kFsckWalGap,
                shard_dir + ": unrouted record at seq " +
                    std::to_string(record.seq) + " in a sharded chain");
        continue;
      }
      SeqTally& t = tally[record.seq];
      if (t.count == 0) {
        t.declared = record.shard_count;
      } else if (t.declared != record.shard_count) {
        t.mismatch = true;
      }
      ++t.count;
    }
    ScanTempOrphans(shard_dir, report);
  }
  for (auto it = tally.begin(); it != tally.end(); ++it) {
    const auto& [seq, t] = *it;
    if (t.mismatch || t.count > t.declared) {
      Problem(report, kFsckWalGap,
              "seq " + std::to_string(seq) +
                  ": sub-records disagree across chains");
    } else if (t.count < t.declared) {
      const bool is_last = std::next(it) == tally.end();
      if (is_last) {
        Problem(report, kFsckTornTail,
                "seq " + std::to_string(seq) + ": " + std::to_string(t.count) +
                    " of " + std::to_string(t.declared) +
                    " sub-records present (unacknowledged fanout tail; "
                    "recovery discards it)");
      } else {
        Problem(report, kFsckWalGap,
                "seq " + std::to_string(seq) +
                    " is incomplete across chains but later batches exist");
      }
    }
  }
  ScanTempOrphans(dir, report);
}

}  // namespace

std::string FsckReport::ToString() const {
  std::ostringstream out;
  out << "fsck: " << (sharded ? "sharded" : "single-engine") << " layout";
  if (sharded) {
    out << ", " << manifests_valid << "/" << manifests_scanned
        << " manifests valid";
  }
  out << ", " << snapshots_valid << "/" << snapshots_scanned
      << " snapshots valid, " << wal_records_scanned << " wal records in "
      << wal_segments_scanned << " segments";
  out << (problems.empty() ? "\nclean" : "");
  for (const std::string& p : problems) out << "\nproblem: " << p;
  for (const std::string& n : notes) out << "\nnote: " << n;
  return out.str();
}

std::string FsckReport::ToJson() const {
  std::ostringstream out;
  out << "{\"sharded\":" << (sharded ? "true" : "false")
      << ",\"manifests_scanned\":" << manifests_scanned
      << ",\"manifests_valid\":" << manifests_valid
      << ",\"snapshots_scanned\":" << snapshots_scanned
      << ",\"snapshots_valid\":" << snapshots_valid
      << ",\"wal_segments_scanned\":" << wal_segments_scanned
      << ",\"wal_records_scanned\":" << wal_records_scanned
      << ",\"exit_code\":" << exit_code << ",\"clean\":"
      << (problems.empty() ? "true" : "false") << ",";
  AppendJsonStrings(&out, "problems", problems);
  out << ",";
  AppendJsonStrings(&out, "notes", notes);
  out << "}";
  return out.str();
}

Result<FsckReport> FsckDurableDir(const std::string& dir) {
  std::error_code ec;
  if (!fs::exists(dir, ec)) {
    return Status::NotFound(dir + " does not exist");
  }
  if (!fs::is_directory(dir, ec)) {
    return Status::InvalidArgument(dir + " is not a directory");
  }
  FsckReport report;
  Result<std::vector<std::pair<uint64_t, std::string>>> manifests =
      ListManifests(dir);
  if (!manifests.ok()) return manifests.status();
  report.sharded = !manifests->empty() || !FsckShardDirs(dir).empty();
  if (report.sharded) {
    FsckShardedLayout(dir, *manifests, &report);
  } else {
    FsckSingleLayout(dir, &report);
  }
  return report;
}

}  // namespace scuba
