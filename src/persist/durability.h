// DurabilityManager + RecoverEngine: the engine-facing durability layer
// (docs/ARCHITECTURE.md §8).
//
// A DurabilityManager owns one durable directory holding rotating WAL
// segments and periodic snapshot checkpoints. Wired into a stream driver as
// its DurabilitySink, it appends every admitted batch to the WAL before
// ingestion and, per CheckpointPolicy, snapshots the full engine state after
// every N-th completed round (then prunes snapshots beyond keep_last_k and
// WAL segments no retained snapshot needs).
//
// RecoverEngine is the other half: given the same directory, it restores the
// newest readable snapshot (falling back to older ones past checksum-torn
// files) and replays the WAL suffix — re-ingesting each batch and
// re-evaluating at the recorded round boundaries — until the engine is
// bit-identical to the pre-crash one: same digests, same future results.

#ifndef SCUBA_PERSIST_DURABILITY_H_
#define SCUBA_PERSIST_DURABILITY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/scuba_engine.h"
#include "persist/crash.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "stream/pipeline.h"
#include "stream/update_validator.h"

namespace scuba {

class DurabilityManager : public DurabilitySink {
 public:
  /// Opens (creating if needed) the durable directory for `engine`. The WAL
  /// resumes after its last intact record (truncating any torn tail) or, on
  /// a fresh directory, starts at sequence 0. All pointers are unowned and
  /// must outlive the manager; `validator` / `rng` (nullable) are included in
  /// every snapshot when provided; `crash` (nullable) arms crash injection
  /// across the WAL-append and checkpoint paths.
  static Result<std::unique_ptr<DurabilityManager>> Open(
      const std::string& dir, const CheckpointPolicy& policy,
      ScubaEngine* engine, UpdateValidator* validator, Rng* rng,
      CrashInjector* crash);

  /// DurabilitySink: appends the batch to the WAL (fsynced) and mirrors the
  /// writer's counters into the engine's EvalStats.
  Status LogBatch(Timestamp batch_time, bool evaluate_after,
                  std::span<const LocationUpdate> objects,
                  std::span<const QueryUpdate> queries) override;

  /// DurabilitySink: counts the round and checkpoints when the policy's
  /// cadence comes due.
  Status OnRoundComplete() override;

  /// Writes a checkpoint right now regardless of cadence, then prunes per
  /// the retention policy.
  Status ForceCheckpoint();

  uint64_t next_seq() const { return wal_->next_seq(); }
  const std::string& dir() const { return dir_; }

 private:
  DurabilityManager(std::string dir, const CheckpointPolicy& policy,
                    ScubaEngine* engine, UpdateValidator* validator, Rng* rng,
                    CrashInjector* crash)
      : dir_(std::move(dir)),
        policy_(policy),
        engine_(engine),
        validator_(validator),
        rng_(rng),
        crash_(crash) {}

  /// Removes snapshots beyond keep_last_k, then WAL segments wholly covered
  /// by the oldest retained snapshot.
  Status Prune();

  std::string dir_;
  CheckpointPolicy policy_;
  ScubaEngine* engine_;
  UpdateValidator* validator_;  ///< Nullable.
  Rng* rng_;                    ///< Nullable.
  CrashInjector* crash_;        ///< Nullable.
  std::unique_ptr<WalWriter> wal_;
  /// Engine WAL counters at Open time; the writer's deltas add onto these so
  /// counters survive manager re-opens (and recovery).
  uint64_t base_wal_records_ = 0;
  uint64_t base_wal_fsyncs_ = 0;
  uint64_t base_wal_bytes_ = 0;
  uint32_t rounds_since_checkpoint_ = 0;
};

/// What RecoverEngine reconstructed and from where.
struct RecoveryReport {
  std::string snapshot_path;  ///< Empty when no snapshot was usable.
  uint64_t snapshot_seq = 0;  ///< WAL seq the snapshot was consistent as of.
  uint64_t snapshot_rounds = 0;
  uint64_t records_replayed = 0;
  uint64_t rounds_replayed = 0;
  /// First WAL sequence number NOT yet applied: a trace resumes at this
  /// global batch index.
  uint64_t next_seq = 0;
  bool wal_torn_tail = false;
  /// Damage tolerated along the way: checksum-failed snapshots that were
  /// skipped, and the torn-tail detail. Empty on a clean recovery.
  std::vector<std::string> data_loss;

  std::string ToString() const;
  /// One JSON object (stable key order) for `scuba_cli recover --json`.
  std::string ToJson() const;
};

/// Rebuilds `engine` (and optionally `validator` / `rng`) from `dir`:
/// restores the newest readable snapshot — checksum-torn snapshots are
/// skipped (recorded in the report) in favour of older ones; none readable
/// means recovery starts from the engine's fresh state at seq 0 — then
/// replays every WAL record at or past the snapshot's sequence, feeding
/// `sink` (nullable) at each re-evaluated round. The engine passed in must be
/// freshly created with the SAME options as the original run
/// (kFailedPrecondition on fingerprint mismatch). Hard kDataLoss: WAL damage
/// anywhere but the final segment's tail, or a gap between the snapshot's
/// sequence and the first replayable record.
Result<RecoveryReport> RecoverEngine(const std::string& dir,
                                     ScubaEngine* engine,
                                     UpdateValidator* validator, Rng* rng,
                                     const ResultSink& sink = nullptr);

}  // namespace scuba

#endif  // SCUBA_PERSIST_DURABILITY_H_
