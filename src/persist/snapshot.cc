#include "persist/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/stopwatch.h"
#include "persist/fsio.h"

namespace scuba {

namespace {

namespace fs = std::filesystem;

constexpr char kMagic[8] = {'S', 'C', 'U', 'B', 'S', 'N', 'P', '1'};
constexpr uint32_t kSnapshotVersion = 1;
constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".scuba";

void PutPoint(ByteWriter* w, Point p) {
  w->PutDouble(p.x);
  w->PutDouble(p.y);
}

Status GetPoint(ByteReader* r, Point* p) {
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&p->x));
  return r->GetDouble(&p->y);
}

void PutCircle(ByteWriter* w, const Circle& c) {
  PutPoint(w, c.center);
  w->PutDouble(c.radius);
}

Status GetCircle(ByteReader* r, Circle* c) {
  SCUBA_RETURN_IF_ERROR(GetPoint(r, &c->center));
  return r->GetDouble(&c->radius);
}

void PutEvalStats(ByteWriter* w, const EvalStats& s) {
  // Fixed field order — extend only by appending (bump kSnapshotVersion when
  // the layout changes incompatibly).
  w->PutU64(s.evaluations);
  w->PutDouble(s.total_join_seconds);
  w->PutDouble(s.total_maintenance_seconds);
  w->PutDouble(s.last_join_seconds);
  w->PutDouble(s.last_maintenance_seconds);
  w->PutU64(s.total_results);
  w->PutU64(s.last_result_count);
  w->PutU64(s.comparisons);
  w->PutU64(s.bounds_checks);
  w->PutU64(s.cluster_pairs_tested);
  w->PutU64(s.cluster_pairs_overlapping);
  w->PutU32(s.join_threads);
  w->PutDouble(s.last_join_worker_seconds);
  w->PutDouble(s.total_join_worker_seconds);
  w->PutU32(s.ingest_threads);
  w->PutDouble(s.last_ingest_seconds);
  w->PutDouble(s.total_ingest_seconds);
  w->PutDouble(s.last_postjoin_seconds);
  w->PutDouble(s.total_postjoin_seconds);
  w->PutDouble(s.last_ingest_worker_seconds);
  w->PutDouble(s.total_ingest_worker_seconds);
  w->PutDouble(s.last_postjoin_worker_seconds);
  w->PutDouble(s.total_postjoin_worker_seconds);
  w->PutU64(s.updates_quarantined);
  w->PutU64(s.invariant_audits);
  w->PutU64(s.invariant_violations);
  w->PutU64(s.invariant_repairs);
  w->PutU64(s.checkpoints_written);
  w->PutU64(s.last_checkpoint_bytes);
  w->PutDouble(s.last_checkpoint_seconds);
  w->PutDouble(s.total_checkpoint_seconds);
  w->PutU64(s.wal_records_appended);
  w->PutU64(s.wal_fsyncs);
  w->PutU64(s.wal_bytes_appended);
  w->PutU64(s.recovery_replay_rounds);
}

Status GetEvalStats(ByteReader* r, EvalStats* s) {
  SCUBA_RETURN_IF_ERROR(r->GetU64(&s->evaluations));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&s->total_join_seconds));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&s->total_maintenance_seconds));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&s->last_join_seconds));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&s->last_maintenance_seconds));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&s->total_results));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&s->last_result_count));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&s->comparisons));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&s->bounds_checks));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&s->cluster_pairs_tested));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&s->cluster_pairs_overlapping));
  SCUBA_RETURN_IF_ERROR(r->GetU32(&s->join_threads));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&s->last_join_worker_seconds));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&s->total_join_worker_seconds));
  SCUBA_RETURN_IF_ERROR(r->GetU32(&s->ingest_threads));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&s->last_ingest_seconds));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&s->total_ingest_seconds));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&s->last_postjoin_seconds));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&s->total_postjoin_seconds));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&s->last_ingest_worker_seconds));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&s->total_ingest_worker_seconds));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&s->last_postjoin_worker_seconds));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&s->total_postjoin_worker_seconds));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&s->updates_quarantined));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&s->invariant_audits));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&s->invariant_violations));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&s->invariant_repairs));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&s->checkpoints_written));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&s->last_checkpoint_bytes));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&s->last_checkpoint_seconds));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&s->total_checkpoint_seconds));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&s->wal_records_appended));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&s->wal_fsyncs));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&s->wal_bytes_appended));
  return r->GetU64(&s->recovery_replay_rounds);
}

template <typename Id>
void PutAttrTable(ByteWriter* w, const std::unordered_map<Id, uint64_t>& t) {
  std::vector<std::pair<Id, uint64_t>> rows(t.begin(), t.end());
  std::sort(rows.begin(), rows.end());
  w->PutU64(rows.size());
  for (const auto& [id, attrs] : rows) {
    w->PutU32(id);
    w->PutU64(attrs);
  }
}

}  // namespace

uint64_t OptionsFingerprint(const ScubaOptions& options) {
  ByteWriter w;
  w.PutDouble(options.theta_d);
  w.PutDouble(options.theta_s);
  w.PutU32(options.grid_cells);
  w.PutDouble(options.region.min_x);
  w.PutDouble(options.region.min_y);
  w.PutDouble(options.region.max_x);
  w.PutDouble(options.region.max_y);
  w.PutI64(options.delta);
  w.PutBool(options.probe_theta_d_disk);
  w.PutBool(options.query_reach_aware);
  w.PutDouble(options.grid_sync_padding);
  w.PutBool(options.enable_cluster_splitting);
  w.PutDouble(options.split_radius_factor);
  w.PutU8(static_cast<uint8_t>(options.on_bad_update));
  w.PutU32(options.audit_every_n_rounds);
  w.PutU8(static_cast<uint8_t>(options.shedding.mode));
  w.PutDouble(options.shedding.eta);
  w.PutU64(options.shedding.memory_budget_bytes);
  w.PutDouble(options.shedding.eta_step);
  w.PutDouble(options.shedding.relax_fraction);
  // join_threads / ingest_threads / shards / rebalance / supervision /
  // checkpoint policy deliberately excluded: results are bit-identical across
  // them, so snapshots stay portable across thread counts, shard counts,
  // supervision settings and retention settings.
  return Fnv1a64(w.bytes());
}

std::string SnapshotFileName(uint64_t wal_next_seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%020llu%s", kSnapshotPrefix,
                static_cast<unsigned long long>(wal_next_seq), kSnapshotSuffix);
  return buf;
}

Result<std::vector<std::pair<uint64_t, std::string>>> ListSnapshots(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> out;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return out;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("cannot list " + dir + ": " + ec.message());
  }
  for (const fs::directory_entry& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kSnapshotPrefix, 0) != 0) continue;
    if (name.size() <= sizeof(kSnapshotPrefix) - 1 + sizeof(kSnapshotSuffix) - 1)
      continue;
    if (name.substr(name.size() - (sizeof(kSnapshotSuffix) - 1)) !=
        kSnapshotSuffix)
      continue;
    const std::string digits =
        name.substr(sizeof(kSnapshotPrefix) - 1,
                    name.size() - (sizeof(kSnapshotPrefix) - 1) -
                        (sizeof(kSnapshotSuffix) - 1));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    out.emplace_back(std::strtoull(digits.c_str(), nullptr, 10),
                     entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void PersistAccess::SaveCluster(const MovingCluster& c, ByteWriter* w) {
  w->PutU32(c.cid_);
  PutPoint(w, c.centroid_);
  w->PutDouble(c.radius_);
  w->PutDouble(c.query_reach_);
  PutPoint(w, Point{c.translation_.x, c.translation_.y});
  PutPoint(w, c.position_sum_);
  w->PutDouble(c.speed_sum_);
  w->PutU32(c.dest_node_);
  PutPoint(w, c.dest_position_);
  w->PutU64(c.object_count_);
  w->PutU64(c.query_count_);
  w->PutBool(c.has_nucleus_);
  PutPoint(w, c.nucleus_anchor_);
  w->PutDouble(c.nucleus_radius_);
  PutCircle(w, c.registered_bounds_);
  w->PutU64(c.members_.size());
  for (const ClusterMember& m : c.members_) {  // order is state: keep it
    w->PutU8(static_cast<uint8_t>(m.kind));
    w->PutU32(m.id);
    w->PutDouble(m.rel.r);
    w->PutDouble(m.rel.theta);
    PutPoint(w, m.anchor);
    w->PutDouble(m.speed);
    w->PutU64(m.attrs);
    w->PutDouble(m.range_width);
    w->PutDouble(m.range_height);
    w->PutU64(m.required_attrs);
    w->PutI64(m.update_time);
    w->PutBool(m.shed);
    w->PutDouble(m.approx_radius);
  }
}

Result<MovingCluster> PersistAccess::LoadCluster(ByteReader* r) {
  uint32_t cid = 0;
  Point centroid;
  SCUBA_RETURN_IF_ERROR(r->GetU32(&cid));
  SCUBA_RETURN_IF_ERROR(GetPoint(r, &centroid));
  MovingCluster c(cid, centroid, 0.0, kInvalidNodeId, Point{});
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&c.radius_));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&c.query_reach_));
  Point translation;
  SCUBA_RETURN_IF_ERROR(GetPoint(r, &translation));
  c.translation_ = Vec2{translation.x, translation.y};
  SCUBA_RETURN_IF_ERROR(GetPoint(r, &c.position_sum_));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&c.speed_sum_));
  SCUBA_RETURN_IF_ERROR(r->GetU32(&c.dest_node_));
  SCUBA_RETURN_IF_ERROR(GetPoint(r, &c.dest_position_));
  uint64_t object_count = 0, query_count = 0;
  SCUBA_RETURN_IF_ERROR(r->GetU64(&object_count));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&query_count));
  c.object_count_ = static_cast<size_t>(object_count);
  c.query_count_ = static_cast<size_t>(query_count);
  SCUBA_RETURN_IF_ERROR(r->GetBool(&c.has_nucleus_));
  SCUBA_RETURN_IF_ERROR(GetPoint(r, &c.nucleus_anchor_));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&c.nucleus_radius_));
  SCUBA_RETURN_IF_ERROR(GetCircle(r, &c.registered_bounds_));
  uint64_t member_count = 0;
  SCUBA_RETURN_IF_ERROR(r->GetU64(&member_count));
  if (member_count > r->Remaining()) {  // each member needs > 1 byte
    return Status::DataLoss("cluster member count " +
                            std::to_string(member_count) +
                            " exceeds the remaining payload");
  }
  c.members_.reserve(static_cast<size_t>(member_count));
  for (uint64_t i = 0; i < member_count; ++i) {
    ClusterMember m;
    uint8_t kind = 0;
    SCUBA_RETURN_IF_ERROR(r->GetU8(&kind));
    if (kind > 1) {
      return Status::DataLoss("cluster member kind byte " +
                              std::to_string(kind) + " is not a valid kind");
    }
    m.kind = static_cast<EntityKind>(kind);
    SCUBA_RETURN_IF_ERROR(r->GetU32(&m.id));
    SCUBA_RETURN_IF_ERROR(r->GetDouble(&m.rel.r));
    SCUBA_RETURN_IF_ERROR(r->GetDouble(&m.rel.theta));
    SCUBA_RETURN_IF_ERROR(GetPoint(r, &m.anchor));
    SCUBA_RETURN_IF_ERROR(r->GetDouble(&m.speed));
    SCUBA_RETURN_IF_ERROR(r->GetU64(&m.attrs));
    SCUBA_RETURN_IF_ERROR(r->GetDouble(&m.range_width));
    SCUBA_RETURN_IF_ERROR(r->GetDouble(&m.range_height));
    SCUBA_RETURN_IF_ERROR(r->GetU64(&m.required_attrs));
    SCUBA_RETURN_IF_ERROR(r->GetI64(&m.update_time));
    SCUBA_RETURN_IF_ERROR(r->GetBool(&m.shed));
    SCUBA_RETURN_IF_ERROR(r->GetDouble(&m.approx_radius));
    c.member_index_.emplace(m.Ref(), c.members_.size());
    c.members_.push_back(std::move(m));
  }
  if (c.member_index_.size() != c.members_.size()) {
    return Status::DataLoss("cluster " + std::to_string(cid) +
                            " carries duplicate member references");
  }
  return c;
}

void PersistAccess::SaveStoreState(const ScubaEngine& e, ByteWriter* w) {
  const ClusterStore& store = e.store_;
  w->PutU32(store.next_cid_);
  PutAttrTable(w, store.objects_);
  PutAttrTable(w, store.queries_);
  const std::vector<ClusterId> cids = store.SortedClusterIds();
  w->PutU64(cids.size());
  for (ClusterId cid : cids) {
    const MovingCluster* cluster = store.GetCluster(cid);
    SCUBA_CHECK(cluster != nullptr);
    SaveCluster(*cluster, w);
    w->PutBool(e.grid_.Contains(cid));
  }
}

void PersistAccess::SaveShardedStoreState(
    const ClusterStore& meta, const std::vector<const ClusterStore*>& stores,
    const std::vector<const GridIndex*>& grids, ByteWriter* w) {
  // Byte-for-byte the SaveStoreState layout: the meta store carries the id
  // allocator and attr tables, the shard stores partition the clusters, and
  // a cluster counts as grid-registered when any shard grid holds it (the
  // mirror invariant makes that equivalent to the single grid's Contains).
  w->PutU32(meta.next_cid_);
  PutAttrTable(w, meta.objects_);
  PutAttrTable(w, meta.queries_);
  std::vector<ClusterId> cids;
  for (const ClusterStore* store : stores) {
    const std::vector<ClusterId> own = store->SortedClusterIds();
    cids.insert(cids.end(), own.begin(), own.end());
  }
  std::sort(cids.begin(), cids.end());
  w->PutU64(cids.size());
  for (ClusterId cid : cids) {
    const MovingCluster* cluster = nullptr;
    for (const ClusterStore* store : stores) {
      cluster = store->GetCluster(cid);
      if (cluster != nullptr) break;
    }
    SCUBA_CHECK(cluster != nullptr);
    SaveCluster(*cluster, w);
    bool registered = false;
    for (const GridIndex* grid : grids) {
      if (grid->Contains(cid)) {
        registered = true;
        break;
      }
    }
    w->PutBool(registered);
  }
}

void PersistAccess::SaveEngineState(const ScubaEngine& e, ByteWriter* w) {
  SaveStoreState(e, w);
  PutEvalStats(w, e.stats_);
  w->PutU64(e.phase_stats_.clusters_dissolved_expired);
  w->PutU64(e.phase_stats_.members_shed_maintenance);
  w->PutU64(e.phase_stats_.clusters_split);
  const ClustererStats& cs = e.clusterer_.stats_;
  w->PutU64(cs.clusters_created);
  w->PutU64(cs.members_absorbed);
  w->PutU64(cs.members_refreshed);
  w->PutU64(cs.members_departed);
  w->PutU64(cs.clusters_dissolved_empty);
  w->PutU64(cs.members_shed);
  w->PutDouble(e.shedder_.eta_);
  w->PutU64(e.shedder_.adjustments_);
  const ClusterJoinExecutor::Counters& jc = e.join_executor_.counters_;
  w->PutU64(jc.comparisons);
  w->PutU64(jc.bounds_checks);
  w->PutU64(jc.pairs_tested);
  w->PutU64(jc.pairs_overlapping);
  w->PutU64(jc.within_joins_single);
  w->PutU64(jc.within_joins_pair);
  w->PutDouble(e.pending_prejoin_seconds_);
  w->PutDouble(e.pending_prejoin_worker_seconds_);
}

Status PersistAccess::LoadEngineState(ByteReader* r, ScubaEngine* e) {
  ClusterStore& store = e->store_;
  store.Clear();
  e->grid_.Clear();
  uint32_t next_cid = 0;
  SCUBA_RETURN_IF_ERROR(r->GetU32(&next_cid));
  for (int table = 0; table < 2; ++table) {
    uint64_t rows = 0;
    SCUBA_RETURN_IF_ERROR(r->GetU64(&rows));
    for (uint64_t i = 0; i < rows; ++i) {
      uint32_t id = 0;
      uint64_t attrs = 0;
      SCUBA_RETURN_IF_ERROR(r->GetU32(&id));
      SCUBA_RETURN_IF_ERROR(r->GetU64(&attrs));
      if (table == 0) {
        store.UpsertObjectAttrs(id, attrs);
      } else {
        store.UpsertQueryAttrs(id, attrs);
      }
    }
  }
  uint64_t cluster_count = 0;
  SCUBA_RETURN_IF_ERROR(r->GetU64(&cluster_count));
  for (uint64_t i = 0; i < cluster_count; ++i) {
    Result<MovingCluster> cluster = LoadCluster(r);
    if (!cluster.ok()) return cluster.status();
    bool in_grid = false;
    SCUBA_RETURN_IF_ERROR(r->GetBool(&in_grid));
    const ClusterId cid = cluster->cid();
    const Circle registration = cluster->registered_bounds();
    if (Status s = store.AddCluster(std::move(cluster).value()); !s.ok()) {
      return Status::DataLoss("snapshot cluster " + std::to_string(cid) +
                              " rejected by the store: " + s.message());
    }
    if (in_grid) {
      // Placement is a pure function of the saved registered bounds; ascending
      // cid insertion keeps cell-entry order deterministic (and unobservable
      // anyway, by the join/clusterer contracts).
      if (Status s = e->grid_.Insert(cid, registration); !s.ok()) {
        return Status::DataLoss("snapshot cluster " + std::to_string(cid) +
                                " rejected by the grid: " + s.message());
      }
    }
  }
  store.next_cid_ = next_cid;
  SCUBA_RETURN_IF_ERROR(GetEvalStats(r, &e->stats_));
  // The restored engine reports its own parallelism, not the checkpointed
  // run's (results are identical across thread counts by contract).
  e->stats_.join_threads = e->join_executor_.resolved_threads();
  e->stats_.ingest_threads = e->resolved_ingest_threads_;
  SCUBA_RETURN_IF_ERROR(r->GetU64(&e->phase_stats_.clusters_dissolved_expired));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&e->phase_stats_.members_shed_maintenance));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&e->phase_stats_.clusters_split));
  ClustererStats& cs = e->clusterer_.stats_;
  SCUBA_RETURN_IF_ERROR(r->GetU64(&cs.clusters_created));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&cs.members_absorbed));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&cs.members_refreshed));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&cs.members_departed));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&cs.clusters_dissolved_empty));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&cs.members_shed));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&e->shedder_.eta_));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&e->shedder_.adjustments_));
  ClusterJoinExecutor::Counters& jc = e->join_executor_.counters_;
  SCUBA_RETURN_IF_ERROR(r->GetU64(&jc.comparisons));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&jc.bounds_checks));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&jc.pairs_tested));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&jc.pairs_overlapping));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&jc.within_joins_single));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&jc.within_joins_pair));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&e->pending_prejoin_seconds_));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&e->pending_prejoin_worker_seconds_));
  // The adaptive shedder's eta was restored; propagate the nucleus radius to
  // the ingest path exactly as PostJoinMaintenance would have.
  e->clusterer_.set_nucleus_radius(e->shedder_.nucleus_radius());
  return Status::OK();
}

void PersistAccess::SaveValidatorState(const UpdateValidator& v,
                                       ByteWriter* w) {
  w->PutU64(v.stats_.screened);
  w->PutU64(v.stats_.admitted);
  w->PutU64(v.stats_.repaired);
  for (uint64_t count : v.stats_.rejected) w->PutU64(count);
  std::vector<std::pair<EntityRef, Timestamp>> rows(v.last_time_.begin(),
                                                    v.last_time_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return std::make_pair(static_cast<uint8_t>(a.first.kind), a.first.id) <
           std::make_pair(static_cast<uint8_t>(b.first.kind), b.first.id);
  });
  w->PutU64(rows.size());
  for (const auto& [ref, time] : rows) {
    w->PutU8(static_cast<uint8_t>(ref.kind));
    w->PutU32(ref.id);
    w->PutI64(time);
  }
  const QuarantineLog& log = v.log_;
  w->PutU64(log.capacity_);
  w->PutU64(log.total_);
  w->PutU64(log.next_);
  w->PutU64(log.ring_.size());
  for (const QuarantinedUpdate& q : log.ring_) {
    w->PutU8(static_cast<uint8_t>(q.kind));
    w->PutU32(q.id);
    w->PutI64(q.time);
    w->PutU8(static_cast<uint8_t>(q.reason));
    w->PutString(q.detail);
  }
}

Status PersistAccess::LoadValidatorState(ByteReader* r, UpdateValidator* v) {
  v->Reset();
  SCUBA_RETURN_IF_ERROR(r->GetU64(&v->stats_.screened));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&v->stats_.admitted));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&v->stats_.repaired));
  for (uint64_t& count : v->stats_.rejected) {
    SCUBA_RETURN_IF_ERROR(r->GetU64(&count));
  }
  uint64_t rows = 0;
  SCUBA_RETURN_IF_ERROR(r->GetU64(&rows));
  for (uint64_t i = 0; i < rows; ++i) {
    uint8_t kind = 0;
    uint32_t id = 0;
    int64_t time = 0;
    SCUBA_RETURN_IF_ERROR(r->GetU8(&kind));
    SCUBA_RETURN_IF_ERROR(r->GetU32(&id));
    SCUBA_RETURN_IF_ERROR(r->GetI64(&time));
    if (kind > 1) {
      return Status::DataLoss("validator entity kind byte " +
                              std::to_string(kind) + " is invalid");
    }
    v->last_time_[EntityRef{static_cast<EntityKind>(kind), id}] = time;
  }
  uint64_t capacity = 0, total = 0, next = 0, ring = 0;
  SCUBA_RETURN_IF_ERROR(r->GetU64(&capacity));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&total));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&next));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&ring));
  if (capacity != v->log_.capacity_) {
    return Status::FailedPrecondition(
        "validator quarantine capacity mismatch: snapshot has " +
        std::to_string(capacity) + ", this validator has " +
        std::to_string(v->log_.capacity_));
  }
  if (ring > capacity || next >= std::max<uint64_t>(capacity, 1)) {
    return Status::DataLoss("validator quarantine ring state is inconsistent");
  }
  v->log_.total_ = total;
  v->log_.next_ = static_cast<size_t>(next);
  v->log_.ring_.clear();
  v->log_.ring_.reserve(static_cast<size_t>(ring));
  for (uint64_t i = 0; i < ring; ++i) {
    QuarantinedUpdate q;
    uint8_t kind = 0, reason = 0;
    SCUBA_RETURN_IF_ERROR(r->GetU8(&kind));
    SCUBA_RETURN_IF_ERROR(r->GetU32(&q.id));
    SCUBA_RETURN_IF_ERROR(r->GetI64(&q.time));
    SCUBA_RETURN_IF_ERROR(r->GetU8(&reason));
    SCUBA_RETURN_IF_ERROR(r->GetString(&q.detail));
    if (kind > 1 || reason >= kRejectReasonCount) {
      return Status::DataLoss("quarantine entry carries invalid enum bytes");
    }
    q.kind = static_cast<EntityKind>(kind);
    q.reason = static_cast<RejectReason>(reason);
    v->log_.ring_.push_back(std::move(q));
  }
  return Status::OK();
}

void PersistAccess::NoteAdmitted(UpdateValidator* v, EntityKind kind,
                                 uint32_t id, Timestamp time) {
  if (!v->config_.check_time_regression) return;
  // Mirrors the screening path's admit bookkeeping exactly.
  auto [it, inserted] = v->last_time_.try_emplace(EntityRef{kind, id}, time);
  if (!inserted && time > it->second) it->second = time;
}

EvalStats* PersistAccess::MutableStats(ScubaEngine* e) { return &e->stats_; }

void PersistAccess::SaveEvalStats(const EvalStats& stats, ByteWriter* w) {
  PutEvalStats(w, stats);
}

Status PersistAccess::LoadEvalStats(ByteReader* r, EvalStats* stats) {
  return GetEvalStats(r, stats);
}

std::string SerializeEngineSnapshot(const ScubaEngine& engine,
                                    uint64_t wal_next_seq,
                                    const UpdateValidator* validator,
                                    const Rng* rng) {
  ByteWriter w;
  w.PutU64(OptionsFingerprint(engine.options()));
  w.PutU64(wal_next_seq);
  w.PutU64(engine.StatsSnapshot().eval.evaluations);
  PersistAccess::SaveEngineState(engine, &w);
  w.PutBool(validator != nullptr);
  if (validator != nullptr) PersistAccess::SaveValidatorState(*validator, &w);
  w.PutBool(rng != nullptr);
  if (rng != nullptr) {
    const RngState state = rng->SaveState();
    for (uint64_t word : state.s) w.PutU64(word);
    w.PutBool(state.has_cached_gaussian);
    w.PutDouble(state.cached_gaussian);
  }
  return w.Release();
}

Status WriteSnapshotFile(const std::string& dir, uint64_t wal_next_seq,
                         const std::string& payload, CrashInjector* crash,
                         uint64_t* bytes_written) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + dir + ": " + ec.message());
  }
  ByteWriter file;
  file.PutRawBytes(std::string_view(kMagic, sizeof(kMagic)));
  file.PutU32(kSnapshotVersion);
  file.PutU64(payload.size());
  file.PutRawBytes(payload);
  file.PutU32(Crc32(payload));
  const std::string& bytes = file.bytes();
  const std::string final_path =
      (fs::path(dir) / SnapshotFileName(wal_next_seq)).string();
  const std::string tmp_path = final_path + ".tmp";
  if (crash != nullptr && crash->ShouldCrash(CrashPoint::kMidSnapshotWrite)) {
    // A crash mid-write leaves a partial temp file and no final snapshot.
    SCUBA_RETURN_IF_ERROR(WriteFileDurably(tmp_path, bytes, bytes.size() / 2));
    return crash->CrashStatus();
  }
  if (crash != nullptr && crash->ShouldCrash(CrashPoint::kTornSnapshotRename)) {
    // A torn publish: the final name exists but its payload is truncated, so
    // the CRC check must reject it at recovery time.
    SCUBA_RETURN_IF_ERROR(
        WriteFileDurably(final_path, bytes, bytes.size() - bytes.size() / 3));
    return crash->CrashStatus();
  }
  SCUBA_RETURN_IF_ERROR(WriteFileDurably(tmp_path, bytes));
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::IoError("rename " + tmp_path + ": " + ec.message());
  }
  SCUBA_RETURN_IF_ERROR(SyncDirectory(dir));
  if (bytes_written != nullptr) *bytes_written = bytes.size();
  return Status::OK();
}

Result<std::string> ReadSnapshotPayload(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open snapshot: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string file = std::move(buf).str();
  constexpr size_t kHeader = sizeof(kMagic) + sizeof(uint32_t) + sizeof(uint64_t);
  if (file.size() < kHeader + sizeof(uint32_t)) {
    return Status::DataLoss("snapshot " + path + " is truncated (" +
                            std::to_string(file.size()) + " bytes)");
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("snapshot " + path + " has a bad magic header");
  }
  ByteReader header(std::string_view(file).substr(sizeof(kMagic)));
  uint32_t version = 0;
  uint64_t payload_len = 0;
  SCUBA_RETURN_IF_ERROR(header.GetU32(&version));
  SCUBA_RETURN_IF_ERROR(header.GetU64(&payload_len));
  if (version != kSnapshotVersion) {
    return Status::DataLoss("snapshot " + path + " has version " +
                            std::to_string(version) + "; this build reads " +
                            std::to_string(kSnapshotVersion));
  }
  if (file.size() != kHeader + payload_len + sizeof(uint32_t)) {
    return Status::DataLoss("snapshot " + path + " is torn: header declares " +
                            std::to_string(payload_len) + " payload bytes, " +
                            std::to_string(file.size()) + " total on disk");
  }
  const std::string_view payload =
      std::string_view(file).substr(kHeader, payload_len);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, file.data() + kHeader + payload_len,
              sizeof(stored_crc));
  if (Crc32(payload) != stored_crc) {
    return Status::DataLoss("snapshot " + path + " failed its checksum");
  }
  return std::string(payload);
}

uint64_t EngineStateHash(const ScubaEngine& engine) {
  ByteWriter w;
  PersistAccess::SaveStoreState(engine, &w);
  return Fnv1a64(w.bytes());
}

uint64_t ShardedStateHash(const ClusterStore& meta,
                          const std::vector<const ClusterStore*>& stores,
                          const std::vector<const GridIndex*>& grids) {
  ByteWriter w;
  PersistAccess::SaveShardedStoreState(meta, stores, grids, &w);
  return Fnv1a64(w.bytes());
}

Result<SnapshotMeta> PeekSnapshotMeta(const std::string& payload) {
  ByteReader r(payload);
  SnapshotMeta meta;
  SCUBA_RETURN_IF_ERROR(r.GetU64(&meta.options_fingerprint));
  SCUBA_RETURN_IF_ERROR(r.GetU64(&meta.wal_next_seq));
  SCUBA_RETURN_IF_ERROR(r.GetU64(&meta.rounds));
  return meta;
}

Result<SnapshotMeta> ApplySnapshot(const std::string& payload,
                                   ScubaEngine* engine,
                                   UpdateValidator* validator, Rng* rng) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must be non-null");
  }
  ByteReader r(payload);
  SnapshotMeta meta;
  SCUBA_RETURN_IF_ERROR(r.GetU64(&meta.options_fingerprint));
  SCUBA_RETURN_IF_ERROR(r.GetU64(&meta.wal_next_seq));
  SCUBA_RETURN_IF_ERROR(r.GetU64(&meta.rounds));
  const uint64_t expected = OptionsFingerprint(engine->options());
  if (meta.options_fingerprint != expected) {
    return Status::FailedPrecondition(
        "snapshot was taken under different engine options (fingerprint " +
        std::to_string(meta.options_fingerprint) + " vs " +
        std::to_string(expected) +
        "); restore requires semantically identical ScubaOptions");
  }
  SCUBA_RETURN_IF_ERROR(PersistAccess::LoadEngineState(&r, engine));
  bool has_validator = false;
  SCUBA_RETURN_IF_ERROR(r.GetBool(&has_validator));
  if (has_validator) {
    if (validator != nullptr) {
      SCUBA_RETURN_IF_ERROR(PersistAccess::LoadValidatorState(&r, validator));
    } else {
      // Parse-and-discard keeps the reader aligned for the rng section.
      UpdateValidator scratch(ValidatorConfig{});
      Status s = PersistAccess::LoadValidatorState(&r, &scratch);
      // Capacity mismatch against the scratch config is expected — only real
      // payload damage aborts.
      if (!s.ok() && !s.IsFailedPrecondition()) return s;
      if (s.IsFailedPrecondition()) {
        // Re-align: the scratch validator rejected before consuming the ring
        // entries, so the payload cannot be skipped safely.
        return Status::DataLoss(
            "snapshot carries validator state; pass a validator configured "
            "with the original quarantine capacity to restore it");
      }
    }
  }
  bool has_rng = false;
  SCUBA_RETURN_IF_ERROR(r.GetBool(&has_rng));
  if (has_rng) {
    RngState state;
    for (uint64_t& word : state.s) SCUBA_RETURN_IF_ERROR(r.GetU64(&word));
    SCUBA_RETURN_IF_ERROR(r.GetBool(&state.has_cached_gaussian));
    SCUBA_RETURN_IF_ERROR(r.GetDouble(&state.cached_gaussian));
    if (rng != nullptr) rng->RestoreState(state);
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("snapshot payload carries " +
                            std::to_string(r.Remaining()) +
                            " unexpected trailing bytes");
  }
  return meta;
}

Status ScubaEngine::Checkpoint(const std::string& dir) {
  Stopwatch sw;
  const std::string payload =
      SerializeEngineSnapshot(*this, /*wal_next_seq=*/0,
                              /*validator=*/nullptr, /*rng=*/nullptr);
  uint64_t bytes = 0;
  SCUBA_RETURN_IF_ERROR(WriteSnapshotFile(dir, /*wal_next_seq=*/0, payload,
                                          /*crash=*/nullptr, &bytes));
  ++stats_.checkpoints_written;
  stats_.last_checkpoint_bytes = bytes;
  stats_.last_checkpoint_seconds = sw.ElapsedSeconds();
  stats_.total_checkpoint_seconds += stats_.last_checkpoint_seconds;
  return Status::OK();
}

Status ScubaEngine::Restore(const std::string& dir) {
  Result<std::vector<std::pair<uint64_t, std::string>>> snapshots =
      ListSnapshots(dir);
  if (!snapshots.ok()) return snapshots.status();
  if (snapshots->empty()) {
    return Status::NotFound("no snapshot in " + dir);
  }
  // Newest only — no silent fallback to older state. RecoverEngine
  // (persist/durability.h) implements the explicit-fallback policy.
  const std::string& path = snapshots->back().second;
  Result<std::string> payload = ReadSnapshotPayload(path);
  if (!payload.ok()) return payload.status();
  Result<SnapshotMeta> meta =
      ApplySnapshot(*payload, this, /*validator=*/nullptr, /*rng=*/nullptr);
  return meta.ok() ? Status::OK() : meta.status();
}

}  // namespace scuba
