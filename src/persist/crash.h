// CrashPoint / CrashInjector: deterministic crash injection for the
// durability subsystem (docs/ARCHITECTURE.md §8).
//
// Follows the FaultInjector's discipline: a crash is planned up front (which
// point, which occurrence), fires deterministically, and leaves behind
// exactly the on-disk state a real crash at that point would — a half-written
// WAL record, an orphaned snapshot temp file, a checksum-torn snapshot. The
// harness then abandons the in-memory engine and proves RecoverEngine
// reconstructs it bit-identically from the durable directory alone. The
// injection is in-process: the injected "crash" surfaces as
// Status::Internal("crash injected ...") so tests (and the CLI's --crash-at)
// can observe it without actually killing the process, while the CI smoke
// additionally exercises a real process exit via the CLI's nonzero exit code.

#ifndef SCUBA_PERSIST_CRASH_H_
#define SCUBA_PERSIST_CRASH_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace scuba {

/// Where in the durability write paths a crash can be injected. Each point
/// models a distinct partial on-disk state (the "crash-point matrix" in
/// docs/ARCHITECTURE.md §8).
enum class CrashPoint : uint8_t {
  kNone = 0,
  /// Before the batch's WAL record is written: the batch is lost entirely
  /// (legal — it was never acknowledged as durable).
  kBeforeWalAppend,
  /// Mid-append: the record's first half reaches the segment, the rest does
  /// not. Recovery must treat the torn tail as end-of-log.
  kMidWalAppend,
  /// After append + fsync: the batch is durable but was never ingested.
  kAfterWalAppend,
  /// Before any snapshot byte is written: the previous snapshot (if any)
  /// remains the recovery base.
  kBeforeSnapshotWrite,
  /// Mid snapshot write: an orphaned temp file holds a partial payload; the
  /// final snapshot name was never created.
  kMidSnapshotWrite,
  /// A torn publish: the final snapshot file exists but holds a truncated
  /// payload (its CRC cannot match). Recovery must skip it as kDataLoss.
  kTornSnapshotRename,
  /// After the snapshot is durable, before old snapshots/WAL are pruned.
  kAfterSnapshotWrite,
  /// After pruning completes (the checkpoint is fully finished).
  kAfterWalPrune,
  // --- Sharded durability points (docs/ARCHITECTURE.md §12). ---
  /// Mid-write of one shard's snapshot: a partial temp file in that shard's
  /// directory, no final file, no manifest — the previous generation stays
  /// the recovery base.
  kMidShardSnapshotWrite,
  /// Between two shard snapshot writes: some shards hold the new
  /// generation's snapshot, others do not. No manifest references the new
  /// files, so they are orphans until the next successful checkpoint prunes
  /// them. Never fires at shards == 1.
  kBetweenShardSnapshots,
  /// Every shard snapshot is durable but the manifest was never published
  /// (only its temp file exists): the previous generation remains committed.
  kBeforeManifestRename,
  /// A torn manifest publish: the final manifest name exists but holds a
  /// truncated payload; its CRC cannot match and recovery must fall back a
  /// generation.
  kTornManifestRename,
  /// The new manifest is durable — the generation is committed — but the
  /// prune step never ran: older generations and covered WAL segments linger.
  kAfterManifestRename,
  /// Mid-append of one per-shard WAL chain record: that chain ends in a torn
  /// tail while earlier chains already hold the batch's sub-record. The
  /// batch is incomplete across chains and recovery discards it (it was
  /// never acknowledged).
  kMidShardWalAppend,
  /// Between two chains' appends of the same batch: chains 0..s hold the
  /// sub-record intact, chains s+1.. have nothing. Same incomplete-batch
  /// residue, no torn bytes. Never fires at shards == 1.
  kBetweenShardWalAppends,
  /// Mid-prune after a committed manifest: obsolete manifests are gone but
  /// unreferenced shard snapshots / covered WAL segments survive as orphans.
  kMidManifestPrune,
};

inline constexpr size_t kCrashPointCount = 17;

/// Stable kebab-case name ("mid-wal-append", ...).
std::string_view CrashPointName(CrashPoint point);

/// Parses a CrashPointName; InvalidArgument on anything else.
Result<CrashPoint> ParseCrashPoint(std::string_view name);

/// Fires deterministically at the N-th time execution reaches the configured
/// CrashPoint (1-based; the count substitutes for the FaultInjector's seeded
/// draws — write paths are sequenced, so "the N-th occurrence" is exact).
class CrashInjector {
 public:
  /// A disarmed injector (kNone) never fires.
  CrashInjector() = default;
  CrashInjector(CrashPoint point, uint64_t fire_at_occurrence = 1)
      : point_(point), fire_at_(fire_at_occurrence) {}

  /// Write paths call this as execution passes `point`. Returns true exactly
  /// once, at the configured occurrence; the caller then performs its
  /// partial-state effect and propagates CrashStatus().
  bool ShouldCrash(CrashPoint point) {
    if (point_ == CrashPoint::kNone || point != point_ || fired_) return false;
    if (++occurrences_ < fire_at_) return false;
    fired_ = true;
    return true;
  }

  bool fired() const { return fired_; }
  CrashPoint point() const { return point_; }

  /// The status an injected crash surfaces as.
  Status CrashStatus() const {
    return Status::Internal("crash injected at " +
                            std::string(CrashPointName(point_)) +
                            " (occurrence " + std::to_string(occurrences_) +
                            ")");
  }

  /// True when `s` is an injected crash (vs a genuine failure).
  static bool IsCrash(const Status& s) {
    return s.IsInternal() && s.message().rfind("crash injected at", 0) == 0;
  }

 private:
  CrashPoint point_ = CrashPoint::kNone;
  uint64_t fire_at_ = 1;
  uint64_t occurrences_ = 0;
  bool fired_ = false;
};

}  // namespace scuba

#endif  // SCUBA_PERSIST_CRASH_H_
