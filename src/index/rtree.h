// RTree: an in-memory R-tree over rectangles, bulk-loaded with the
// Sort-Tile-Recursive (STR) packing algorithm.
//
// Substrate for the Query-Indexing comparator (paper related work [29]:
// "Query Indexing indexes queries using an R-tree-like structure"): the
// monitored query rectangles are packed into the tree and each object update
// probes it. STR packing gives near-optimal leaves and makes the per-round
// rebuild cheap (O(n log n)), which suits periodically re-evaluated
// continuous queries.

#ifndef SCUBA_INDEX_RTREE_H_
#define SCUBA_INDEX_RTREE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geometry/point.h"
#include "geometry/rect.h"

namespace scuba {

class RTree {
 public:
  /// One indexed rectangle.
  struct Entry {
    uint32_t id = 0;
    Rect bounds;
  };

  /// Bulk-loads a tree from `entries` (copied). Empty input yields an empty
  /// tree; entries with empty rectangles are rejected (InvalidArgument).
  static Result<RTree> BulkLoad(std::vector<Entry> entries,
                                uint32_t max_node_entries = 16);

  RTree() = default;

  size_t size() const { return entry_count_; }
  bool empty() const { return entry_count_ == 0; }
  /// Height of the tree (0 when empty, 1 for a single leaf).
  uint32_t height() const { return height_; }

  /// Appends the ids of all entries whose rectangle contains `p`.
  void SearchPoint(Point p, std::vector<uint32_t>* out) const;

  /// Appends the ids of all entries whose rectangle intersects `r`.
  void SearchRect(const Rect& r, std::vector<uint32_t>* out) const;

  /// Root bounding rectangle (empty rect when the tree is empty).
  Rect BoundingBox() const;

  /// Analytic heap footprint.
  size_t EstimateMemoryUsage() const;

 private:
  /// Flat node pool; children reference nodes by index. Leaves reference the
  /// entries array [first, first + count).
  struct Node {
    Rect bounds;
    uint32_t first = 0;  ///< First child node index, or first entry index.
    uint32_t count = 0;  ///< Number of children / entries.
    bool leaf = true;
  };

  void SearchImpl(uint32_t node_index, const Rect& probe,
                  std::vector<uint32_t>* out) const;

  std::vector<Node> nodes_;
  std::vector<Entry> entries_;
  uint32_t root_ = 0;
  uint32_t height_ = 0;
  size_t entry_count_ = 0;
};

}  // namespace scuba

#endif  // SCUBA_INDEX_RTREE_H_
