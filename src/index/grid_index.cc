#include "index/grid_index.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "common/memory_usage.h"

namespace scuba {

Result<GridIndex> GridIndex::Create(const Rect& region, uint32_t cells_per_side) {
  if (region.Empty() || region.Width() <= 0.0 || region.Height() <= 0.0) {
    return Status::InvalidArgument("grid region must have positive area");
  }
  if (cells_per_side == 0) {
    return Status::InvalidArgument("cells_per_side must be positive");
  }
  return GridIndex(region, cells_per_side);
}

GridIndex::GridIndex(const Rect& region, uint32_t cells_per_side)
    : region_(region),
      cells_per_side_(cells_per_side),
      cell_width_(region.Width() / cells_per_side),
      cell_height_(region.Height() / cells_per_side),
      cells_(static_cast<size_t>(cells_per_side) * cells_per_side) {}

uint32_t GridIndex::ColOf(double x) const {
  double rel = (x - region_.min_x) / cell_width_;
  if (rel < 0.0) return 0;
  uint32_t col = static_cast<uint32_t>(rel);
  return std::min(col, cells_per_side_ - 1);
}

uint32_t GridIndex::RowOf(double y) const {
  double rel = (y - region_.min_y) / cell_height_;
  if (rel < 0.0) return 0;
  uint32_t row = static_cast<uint32_t>(rel);
  return std::min(row, cells_per_side_ - 1);
}

uint32_t GridIndex::CellIndexOf(Point p) const {
  return CellOf(ColOf(p.x), RowOf(p.y));
}

Rect GridIndex::CellBounds(uint32_t cell) const {
  SCUBA_CHECK(cell < cells_.size());
  uint32_t row = cell / cells_per_side_;
  uint32_t col = cell % cells_per_side_;
  return Rect{region_.min_x + col * cell_width_,
              region_.min_y + row * cell_height_,
              region_.min_x + (col + 1) * cell_width_,
              region_.min_y + (row + 1) * cell_height_};
}

void GridIndex::CellsOverlapping(const Rect& bounds,
                                 std::vector<uint32_t>* out) const {
  uint32_t c0 = ColOf(bounds.min_x);
  uint32_t c1 = ColOf(bounds.max_x);
  uint32_t r0 = RowOf(bounds.min_y);
  uint32_t r1 = RowOf(bounds.max_y);
  for (uint32_t r = r0; r <= r1; ++r) {
    for (uint32_t c = c0; c <= c1; ++c) {
      out->push_back(CellOf(c, r));
    }
  }
}

Status GridIndex::InsertIntoCells(uint32_t key, std::vector<uint32_t> cell_ids) {
  if (placements_.contains(key)) {
    return Status::AlreadyExists("key " + std::to_string(key) +
                                 " is already indexed");
  }
  for (uint32_t cell : cell_ids) cells_[cell].push_back(key);
  placements_.emplace(key, std::move(cell_ids));
  ++generation_;
  return Status::OK();
}

Status GridIndex::Insert(uint32_t key, Point p) {
  return InsertIntoCells(key, {CellIndexOf(p)});
}

Status GridIndex::Insert(uint32_t key, const Rect& bounds) {
  if (bounds.Empty()) {
    return Status::InvalidArgument("cannot index an empty rectangle");
  }
  std::vector<uint32_t> cell_ids;
  CellsOverlapping(bounds, &cell_ids);
  return InsertIntoCells(key, std::move(cell_ids));
}

void GridIndex::CellsForCircle(const Circle& c,
                               std::vector<uint32_t>* out) const {
  Rect box{c.center.x - c.radius, c.center.y - c.radius,
           c.center.x + c.radius, c.center.y + c.radius};
  std::vector<uint32_t> candidates;
  CellsOverlapping(box, &candidates);
  // Refine: keep only cells the disk actually touches (matters for large
  // radii, where the bounding box covers up to 27% more cells).
  size_t first_new = out->size();
  for (uint32_t cell : candidates) {
    if (Intersects(CellBounds(cell), c)) out->push_back(cell);
  }
  if (out->size() == first_new) out->push_back(CellIndexOf(c.center));
}

Status GridIndex::Insert(uint32_t key, const Circle& c) {
  std::vector<uint32_t> cell_ids;
  CellsForCircle(c, &cell_ids);
  return InsertIntoCells(key, std::move(cell_ids));
}

Status GridIndex::Remove(uint32_t key) {
  auto it = placements_.find(key);
  if (it == placements_.end()) {
    return Status::NotFound("key " + std::to_string(key) + " is not indexed");
  }
  for (uint32_t cell : it->second) {
    std::vector<uint32_t>& entries = cells_[cell];
    auto pos = std::find(entries.begin(), entries.end(), key);
    SCUBA_CHECK(pos != entries.end());
    *pos = entries.back();
    entries.pop_back();
  }
  placements_.erase(it);
  ++generation_;
  return Status::OK();
}

Status GridIndex::Update(uint32_t key, Point p) {
  SCUBA_RETURN_IF_ERROR(Remove(key));
  return Insert(key, p);
}

Status GridIndex::Update(uint32_t key, const Rect& bounds) {
  // Validate before removing so a bad argument cannot strand the key
  // half-removed.
  if (bounds.Empty()) {
    return Status::InvalidArgument("cannot index an empty rectangle");
  }
  SCUBA_RETURN_IF_ERROR(Remove(key));
  return Insert(key, bounds);
}

Status GridIndex::Update(uint32_t key, const Circle& c) {
  SCUBA_RETURN_IF_ERROR(Remove(key));
  return Insert(key, c);
}

void GridIndex::CellsForRect(const Rect& r, std::vector<uint32_t>* out) const {
  if (r.Empty()) return;
  CellsOverlapping(r, out);
}

void GridIndex::CollectInRect(const Rect& r, std::vector<uint32_t>* out) const {
  if (r.Empty()) return;
  std::vector<uint32_t> cell_ids;
  CellsOverlapping(r, &cell_ids);
  size_t first_new = out->size();
  for (uint32_t cell : cell_ids) {
    const std::vector<uint32_t>& entries = cells_[cell];
    out->insert(out->end(), entries.begin(), entries.end());
  }
  // Keys spanning several cells appear once per cell; dedup the appended tail.
  std::sort(out->begin() + first_new, out->end());
  out->erase(std::unique(out->begin() + first_new, out->end()), out->end());
}

void GridIndex::FlattenEntries(std::vector<uint32_t>* offsets,
                               std::vector<uint32_t>* entries) const {
  offsets->clear();
  entries->clear();
  offsets->reserve(cells_.size() + 1);
  size_t total = 0;
  for (const auto& cell : cells_) total += cell.size();
  entries->reserve(total);
  uint32_t offset = 0;
  for (const auto& cell : cells_) {
    offsets->push_back(offset);
    entries->insert(entries->end(), cell.begin(), cell.end());
    offset += static_cast<uint32_t>(cell.size());
  }
  offsets->push_back(offset);
}

std::vector<uint32_t> GridIndex::Keys() const {
  std::vector<uint32_t> keys;
  keys.reserve(placements_.size());
  for (const auto& [key, cells] : placements_) {
    (void)cells;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void GridIndex::Clear() {
  for (auto& cell : cells_) cell.clear();
  placements_.clear();
  ++generation_;
}

size_t GridIndex::EstimateMemoryUsage() const {
  size_t bytes = VectorMemoryUsage(cells_);
  for (const auto& cell : cells_) bytes += VectorMemoryUsage(cell);
  bytes += UnorderedMapMemoryUsage(placements_);
  for (const auto& [key, cell_ids] : placements_) {
    (void)key;
    bytes += VectorMemoryUsage(cell_ids);
  }
  return bytes;
}

}  // namespace scuba
