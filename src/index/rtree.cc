#include "index/rtree.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/memory_usage.h"

namespace scuba {

namespace {

Rect BoundsOf(const std::vector<RTree::Entry>& entries, size_t first,
              size_t count) {
  Rect box = entries[first].bounds;
  for (size_t i = first + 1; i < first + count; ++i) {
    box = Union(box, entries[i].bounds);
  }
  return box;
}

double CenterX(const RTree::Entry& e) {
  return (e.bounds.min_x + e.bounds.max_x) / 2.0;
}
double CenterY(const RTree::Entry& e) {
  return (e.bounds.min_y + e.bounds.max_y) / 2.0;
}

}  // namespace

Result<RTree> RTree::BulkLoad(std::vector<Entry> entries,
                              uint32_t max_node_entries) {
  if (max_node_entries < 2) {
    return Status::InvalidArgument("max_node_entries must be >= 2");
  }
  for (const Entry& e : entries) {
    if (e.bounds.Empty()) {
      return Status::InvalidArgument("cannot index an empty rectangle");
    }
  }

  RTree tree;
  tree.entry_count_ = entries.size();
  if (entries.empty()) return tree;

  const size_t n = entries.size();
  const size_t cap = max_node_entries;

  // STR: sort by x-center, slice into vertical strips of ~sqrt(n/cap) * cap
  // entries, sort each strip by y-center, pack runs of `cap` into leaves.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return CenterX(a) < CenterX(b);
  });
  const size_t leaf_count = (n + cap - 1) / cap;
  const size_t strips =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(leaf_count))));
  const size_t strip_size = (n + strips - 1) / strips;
  for (size_t s = 0; s * strip_size < n; ++s) {
    auto begin = entries.begin() + static_cast<ptrdiff_t>(s * strip_size);
    auto end = entries.begin() +
               static_cast<ptrdiff_t>(std::min(n, (s + 1) * strip_size));
    std::sort(begin, end, [](const Entry& a, const Entry& b) {
      return CenterY(a) < CenterY(b);
    });
  }
  tree.entries_ = std::move(entries);

  // Pack leaves.
  std::vector<uint32_t> level;  // node indices of the current level
  for (size_t first = 0; first < n; first += cap) {
    size_t count = std::min(cap, n - first);
    Node leaf;
    leaf.leaf = true;
    leaf.first = static_cast<uint32_t>(first);
    leaf.count = static_cast<uint32_t>(count);
    leaf.bounds = BoundsOf(tree.entries_, first, count);
    level.push_back(static_cast<uint32_t>(tree.nodes_.size()));
    tree.nodes_.push_back(leaf);
  }
  tree.height_ = 1;

  // Pack internal levels bottom-up until one root remains. Children of a
  // level are contiguous in `nodes_`, so runs of `cap` pack directly.
  while (level.size() > 1) {
    std::vector<uint32_t> parent_level;
    for (size_t first = 0; first < level.size(); first += cap) {
      size_t count = std::min(cap, level.size() - first);
      Node inner;
      inner.leaf = false;
      inner.first = level[first];
      inner.count = static_cast<uint32_t>(count);
      inner.bounds = tree.nodes_[level[first]].bounds;
      for (size_t i = 1; i < count; ++i) {
        inner.bounds = Union(inner.bounds, tree.nodes_[level[first + i]].bounds);
      }
      parent_level.push_back(static_cast<uint32_t>(tree.nodes_.size()));
      tree.nodes_.push_back(inner);
    }
    level = std::move(parent_level);
    ++tree.height_;
  }
  tree.root_ = level[0];
  return tree;
}

void RTree::SearchImpl(uint32_t node_index, const Rect& probe,
                       std::vector<uint32_t>* out) const {
  const Node& node = nodes_[node_index];
  if (!Intersects(node.bounds, probe)) return;
  if (node.leaf) {
    for (uint32_t i = node.first; i < node.first + node.count; ++i) {
      if (Intersects(entries_[i].bounds, probe)) {
        out->push_back(entries_[i].id);
      }
    }
    return;
  }
  for (uint32_t i = node.first; i < node.first + node.count; ++i) {
    SearchImpl(i, probe, out);
  }
}

void RTree::SearchPoint(Point p, std::vector<uint32_t>* out) const {
  SearchRect(Rect{p.x, p.y, p.x, p.y}, out);
}

void RTree::SearchRect(const Rect& r, std::vector<uint32_t>* out) const {
  if (empty() || r.Empty()) return;
  SearchImpl(root_, r, out);
}

Rect RTree::BoundingBox() const {
  if (empty()) return Rect{0, 0, -1, -1};
  return nodes_[root_].bounds;
}

size_t RTree::EstimateMemoryUsage() const {
  return VectorMemoryUsage(nodes_) + VectorMemoryUsage(entries_);
}

}  // namespace scuba
