// GridIndex: uniform N x N spatial grid over a rectangular region.
//
// This single structure backs both uses in the paper:
//  * the ClusterGrid (§4.1): each moving cluster is registered in every cell
//    its circle overlaps, and cluster formation probes the cell under a new
//    location update (§3.2 step 1);
//  * the regular grid-based comparator (§6): objects and queries are hashed by
//    location and joined cell by cell.
//
// Keys are opaque uint32 ids (ClusterId / ObjectId / QueryId). The index
// remembers each key's cell placement, so Remove/Update need only the key.
// Points outside the region clamp into the border cells (generated maps are
// jittered, so entities can momentarily step just outside the nominal region).

#ifndef SCUBA_INDEX_GRID_INDEX_H_
#define SCUBA_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "geometry/circle.h"
#include "geometry/rect.h"

namespace scuba {

class GridIndex {
 public:
  /// Creates a grid of cells_per_side x cells_per_side cells covering
  /// `region`. Fails on empty regions or zero cell counts.
  static Result<GridIndex> Create(const Rect& region, uint32_t cells_per_side);

  const Rect& region() const { return region_; }
  uint32_t cells_per_side() const { return cells_per_side_; }
  size_t CellCount() const { return cells_.size(); }
  /// Number of keys currently indexed.
  size_t size() const { return placements_.size(); }
  bool Contains(uint32_t key) const { return placements_.contains(key); }

  /// Monotonic counter bumped by every successful mutation (Insert, Remove,
  /// Update, Clear). Two reads returning the same value bracket a span with
  /// no cell-content change, so derived snapshots (FlattenEntries CSR) taken
  /// inside it are still valid and need not be rebuilt.
  uint64_t generation() const { return generation_; }

  /// Index of the cell containing `p` (clamped into the region).
  uint32_t CellIndexOf(Point p) const;

  /// Geometry of cell `cell` (row-major).
  Rect CellBounds(uint32_t cell) const;

  /// Indexes `key` at a point (single cell). Fails if the key is present.
  Status Insert(uint32_t key, Point p);

  /// Indexes `key` in every cell overlapping `bounds`. Fails if present or if
  /// `bounds` is empty.
  Status Insert(uint32_t key, const Rect& bounds);

  /// Indexes `key` in every cell overlapping disk `c` (exact circle-cell
  /// test, not just the bounding box). Fails if the key is present.
  Status Insert(uint32_t key, const Circle& c);

  /// Removes `key` from all its cells. NotFound if absent.
  Status Remove(uint32_t key);

  /// Remove + Insert in one call.
  Status Update(uint32_t key, Point p);
  Status Update(uint32_t key, const Rect& bounds);
  Status Update(uint32_t key, const Circle& c);

  /// Keys registered in cell `cell` (unordered).
  const std::vector<uint32_t>& CellEntries(uint32_t cell) const {
    return cells_[cell];
  }

  /// Cells `key` is registered in (insertion order, not sorted), or nullptr
  /// if the key is absent. Lets read-only consumers (the parallel join's
  /// owner-cell rule) see a key's full placement without re-deriving it from
  /// geometry.
  const std::vector<uint32_t>* CellsOf(uint32_t key) const {
    auto it = placements_.find(key);
    return it == placements_.end() ? nullptr : &it->second;
  }

  /// Keys registered in the cell containing `p`.
  const std::vector<uint32_t>& EntriesNear(Point p) const {
    return cells_[CellIndexOf(p)];
  }

  /// Snapshots every cell's entry list into one contiguous CSR slab: cell c's
  /// keys occupy entries[offsets[c] .. offsets[c+1]), in CellEntries order.
  /// `offsets` gets CellCount() + 1 values. Both vectors are cleared first;
  /// callers that reuse the same buffers every round keep their capacity, so
  /// a steady-state snapshot allocates nothing. Lets a scan walk the whole
  /// grid without chasing a per-cell heap buffer.
  void FlattenEntries(std::vector<uint32_t>* offsets,
                      std::vector<uint32_t>* entries) const;

  /// Every indexed key, ascending. Lets auditors enumerate the index without
  /// walking all cells (a key in many cells appears once).
  std::vector<uint32_t> Keys() const;

  /// Appends the exact cell set Insert(key, c) would register `key` in —
  /// bounding-box cells refined by a circle-cell intersection test, with the
  /// center cell as fallback. Pure geometry (no index state), so callers may
  /// plan registrations concurrently with readers.
  void CellsForCircle(const Circle& c, std::vector<uint32_t>* out) const;

  /// Appends every cell overlapping `r` (row-major). Pure geometry, like
  /// CellsForCircle; the cell set a rect probe (CollectInRect) reads from.
  void CellsForRect(const Rect& r, std::vector<uint32_t>* out) const;

  /// Appends (deduplicated) keys registered in any cell overlapping `r`.
  void CollectInRect(const Rect& r, std::vector<uint32_t>* out) const;

  /// Removes every key.
  void Clear();

  /// Analytic heap footprint: cell buffers + entries + placement map. This is
  /// the quantity Figure 9b compares across operators.
  size_t EstimateMemoryUsage() const;

 private:
  GridIndex(const Rect& region, uint32_t cells_per_side);

  uint32_t CellOf(uint32_t col, uint32_t row) const {
    return row * cells_per_side_ + col;
  }
  uint32_t ColOf(double x) const;
  uint32_t RowOf(double y) const;

  /// Cells overlapping `bounds`, appended to `out` (row-major order).
  void CellsOverlapping(const Rect& bounds, std::vector<uint32_t>* out) const;

  Status InsertIntoCells(uint32_t key, std::vector<uint32_t> cell_ids);

  Rect region_;
  uint32_t cells_per_side_ = 0;
  double cell_width_ = 0.0;
  double cell_height_ = 0.0;
  std::vector<std::vector<uint32_t>> cells_;
  std::unordered_map<uint32_t, std::vector<uint32_t>> placements_;
  uint64_t generation_ = 0;
};

}  // namespace scuba

#endif  // SCUBA_INDEX_GRID_INDEX_H_
