#include "gen/workload_generator.h"

#include <algorithm>

#include "network/shortest_path.h"

namespace scuba {

namespace {

Status ValidateOptions(const WorkloadOptions& opt) {
  if (opt.num_objects + opt.num_queries == 0) {
    return Status::InvalidArgument("workload has no entities");
  }
  if (opt.skew == 0) {
    return Status::InvalidArgument("skew must be >= 1");
  }
  if (opt.min_speed_factor <= 0.0 || opt.max_speed_factor < opt.min_speed_factor) {
    return Status::InvalidArgument("speed factor range is invalid");
  }
  if (opt.speed_jitter < 0.0 || opt.start_spread < 0.0) {
    return Status::InvalidArgument("jitter/spread must be non-negative");
  }
  if (opt.min_range <= 0.0 || opt.max_range < opt.min_range) {
    return Status::InvalidArgument("query range bounds are invalid");
  }
  if (opt.attr_probability < 0.0 || opt.attr_probability > 1.0) {
    return Status::InvalidArgument("attr_probability must be in [0, 1]");
  }
  if (opt.mixed_group_fraction < 0.0 || opt.mixed_group_fraction > 1.0) {
    return Status::InvalidArgument("mixed_group_fraction must be in [0, 1]");
  }
  if (opt.max_mixed_group_queries == 0) {
    return Status::InvalidArgument("max_mixed_group_queries must be >= 1");
  }
  if (opt.query_filter_probability < 0.0 || opt.query_filter_probability > 1.0) {
    return Status::InvalidArgument("query_filter_probability must be in [0, 1]");
  }
  return Status::OK();
}

/// Plans the kind composition of the next group: up to `skew` entities drawn
/// from the remaining object/query budgets. Mixed groups split proportionally
/// to the remaining budgets (>= 1 of each); single-kind groups draw from the
/// larger remaining budget to keep the mix balanced overall.
struct GroupPlan {
  uint32_t objects = 0;
  uint32_t queries = 0;
};

GroupPlan PlanGroup(const WorkloadOptions& opt, uint32_t remaining_obj,
                    uint32_t remaining_qry, Rng* rng) {
  GroupPlan plan;
  uint32_t remaining = remaining_obj + remaining_qry;
  uint32_t size = std::min(opt.skew, remaining);
  bool can_mix = remaining_obj > 0 && remaining_qry > 0 && size >= 2;
  if (can_mix && rng->NextBool(opt.mixed_group_fraction)) {
    // A convoy of objects monitored by a few queries (see Fig. 7).
    uint32_t n_qry = 1 + static_cast<uint32_t>(rng->NextBounded(
                             opt.max_mixed_group_queries));
    n_qry = std::min({n_qry, remaining_qry, size - 1});
    plan.queries = n_qry;
    plan.objects = std::min(size - n_qry, remaining_obj);
  } else if (remaining_obj >= remaining_qry) {
    plan.objects = std::min(size, remaining_obj);
  } else {
    plan.queries = std::min(size, remaining_qry);
  }
  return plan;
}

uint64_t RandomAttrs(Rng* rng, double p) {
  uint64_t attrs = kAttrNone;
  for (uint64_t tag : {kAttrChild, kAttrRedCar, kAttrTruck, kAttrBus,
                       kAttrEmergency}) {
    if (rng->NextBool(p)) attrs |= tag;
  }
  return attrs;
}

/// Plans a group's initial route from `from` to a random distinct destination
/// (retrying until reachable). Group start nodes are assigned without
/// replacement by the caller so co-travelling groups do not pile onto the
/// same intersection at t=0 — encounters should happen en route, as in real
/// traffic, not by construction.
Route PlanGroupRoute(const RoadNetwork& net, NodeId from, Rng* rng) {
  const auto node_count = static_cast<int64_t>(net.NodeCount());
  for (int attempt = 0; attempt < 64; ++attempt) {
    NodeId to = static_cast<NodeId>(rng->NextInt(0, node_count - 1));
    if (from == to) continue;
    Result<Route> r = ShortestPath(net, from, to);
    if (r.ok() && r->nodes.size() >= 2) return std::move(r).value();
  }
  // Fallback: one hop along the first edge of the start node.
  NodeId to = net.edge(net.OutEdges(from)[0]).to;
  return Route{{from, to}, 0.0};
}

}  // namespace

Result<ObjectSimulator> GenerateWorkload(const RoadNetwork* network,
                                         const WorkloadOptions& opt) {
  if (network == nullptr || network->NodeCount() == 0) {
    return Status::InvalidArgument("network is null or empty");
  }
  SCUBA_RETURN_IF_ERROR(ValidateOptions(opt));

  Rng rng(opt.seed);
  ObjectSimulator sim(network, opt.seed);

  // Start nodes are dealt from shuffled decks so groups spawn at distinct
  // intersections while any number of groups remains supported.
  std::vector<NodeId> start_deck(network->NodeCount());
  for (NodeId n = 0; n < network->NodeCount(); ++n) start_deck[n] = n;
  rng.Shuffle(&start_deck);
  size_t deck_pos = 0;
  auto next_start = [&]() {
    if (deck_pos == start_deck.size()) {
      rng.Shuffle(&start_deck);
      deck_pos = 0;
    }
    return start_deck[deck_pos++];
  };

  uint32_t remaining_obj = opt.num_objects;
  uint32_t remaining_qry = opt.num_queries;
  uint32_t next_object_id = 0;
  uint32_t next_query_id = 0;
  uint32_t group = 0;

  while (remaining_obj + remaining_qry > 0) {
    GroupPlan plan = PlanGroup(opt, remaining_obj, remaining_qry, &rng);
    remaining_obj -= plan.objects;
    remaining_qry -= plan.queries;

    Route group_route = PlanGroupRoute(*network, next_start(), &rng);
    double group_speed_factor =
        rng.NextDouble(opt.min_speed_factor, opt.max_speed_factor);

    const uint32_t group_size = plan.objects + plan.queries;
    for (uint32_t i = 0; i < group_size; ++i) {
      SimEntity e;
      // Proportional interleave of kinds within mixed groups.
      uint64_t objects_so_far = static_cast<uint64_t>(i) * plan.objects /
                                group_size;
      uint64_t objects_after = static_cast<uint64_t>(i + 1) * plan.objects /
                               group_size;
      e.kind = objects_after > objects_so_far ? EntityKind::kObject
                                              : EntityKind::kQuery;
      e.id = (e.kind == EntityKind::kObject) ? next_object_id++
                                             : next_query_id++;
      e.group = group;
      e.route = group_route.nodes;
      e.leg = 0;
      // Spread the group's members over the start of the first segment.
      EdgeId first = network->FindEdge(e.route[0], e.route[1]);
      double seg_len = network->edge(first).length;
      double spread = std::min(opt.start_spread, seg_len * 0.9);
      e.offset = spread > 0.0 ? rng.NextDouble(0.0, spread) : 0.0;
      double jitter = opt.speed_jitter > 0.0
                          ? rng.NextDouble(-opt.speed_jitter, opt.speed_jitter)
                          : 0.0;
      e.speed_factor = std::max(0.05, group_speed_factor + jitter);
      e.attrs = RandomAttrs(&rng, opt.attr_probability);
      if (e.kind == EntityKind::kQuery) {
        e.range_width = rng.NextDouble(opt.min_range, opt.max_range);
        e.range_height = rng.NextDouble(opt.min_range, opt.max_range);
        if (rng.NextBool(opt.query_filter_probability)) {
          constexpr uint64_t kTags[] = {kAttrChild, kAttrRedCar, kAttrTruck,
                                        kAttrBus, kAttrEmergency};
          e.required_attrs = kTags[rng.NextBounded(5)];
        }
      }
      SCUBA_RETURN_IF_ERROR(sim.AddEntity(std::move(e)));
    }
    ++group;
  }

  return sim;
}

}  // namespace scuba
