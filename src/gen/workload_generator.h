// WorkloadGenerator: populates an ObjectSimulator with a skew-controlled mix
// of moving objects and moving range queries (paper §6.1 / §6.3).
//
// The *skew factor* is the average number of moving entities that share
// spatio-temporal properties and can therefore be grouped into one moving
// cluster: skew = 1 means every entity moves distinctly (each forms its own
// cluster); skew = 200 means ~200 entities travel together. We realize a group
// as entities seeded on the same road segment within a small spatial spread,
// driving the same route at nearly the same speed.

#ifndef SCUBA_GEN_WORKLOAD_GENERATOR_H_
#define SCUBA_GEN_WORKLOAD_GENERATOR_H_

#include <cstdint>

#include "common/status.h"
#include "gen/object_simulator.h"
#include "network/road_network.h"

namespace scuba {

struct WorkloadOptions {
  uint32_t num_objects = 10000;
  uint32_t num_queries = 10000;

  /// Average entities per motion group (>= 1).
  uint32_t skew = 100;

  /// Fraction of groups containing both objects and queries (a query
  /// co-travelling with the objects it monitors, e.g. tracking a convoy).
  /// The remaining groups are single-kind, as in the paper's example (Fig. 7:
  /// M1 holds only objects, M2 mixes one object with two queries). Keeping
  /// most groups single-kind keeps the answer size moderate — co-locating
  /// every query with a blob of objects would make the output quadratic in
  /// the skew and drown every algorithm in result emission.
  double mixed_group_fraction = 0.25;

  /// Upper bound on queries inside one mixed group (>= 1). Real convoys are
  /// monitored by a handful of queries (paper Fig. 7: M2 = 1 object + 2
  /// queries); without a cap the per-cluster answer grows quadratically in
  /// the skew and the join becomes pure result emission.
  uint32_t max_mixed_group_queries = 4;

  /// Entities drive at speed_limit * factor, factor uniform in this range
  /// (per group), plus per-entity jitter of +/- speed_jitter.
  double min_speed_factor = 0.6;
  double max_speed_factor = 1.0;
  double speed_jitter = 0.02;

  /// Group members start spread over at most this distance along their first
  /// segment (should be < the clustering distance threshold Theta_D).
  double start_spread = 80.0;

  /// Range query extents, uniform per query.
  double min_range = 50.0;
  double max_range = 200.0;

  /// Probability that an entity carries each descriptive attribute tag.
  double attr_probability = 0.1;

  /// Probability that a query carries an attribute predicate (one random tag
  /// it requires matched objects to carry); 0 = plain range queries (the
  /// paper's evaluation setting).
  double query_filter_probability = 0.0;

  uint64_t seed = 0x5C0BAULL;
};

/// Builds and returns a simulator populated per `options`. Object ids are
/// [0, num_objects), query ids [0, num_queries). Fails with InvalidArgument
/// on inconsistent options (skew 0, inverted ranges, ...).
Result<ObjectSimulator> GenerateWorkload(const RoadNetwork* network,
                                         const WorkloadOptions& options);

}  // namespace scuba

#endif  // SCUBA_GEN_WORKLOAD_GENERATOR_H_
