// Trace: a recorded stream of update batches.
//
// Simulating once and replaying the identical trace into several engines is
// how the harness guarantees an apples-to-apples comparison (SCUBA, the
// regular grid operator and the naive oracle all see the same tuples). Traces
// can also be serialized for regression fixtures.

#ifndef SCUBA_GEN_TRACE_H_
#define SCUBA_GEN_TRACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "gen/object_simulator.h"
#include "gen/update.h"

namespace scuba {

/// All updates arriving during one tick.
struct TickBatch {
  Timestamp time = 0;
  std::vector<LocationUpdate> object_updates;
  std::vector<QueryUpdate> query_updates;
};

/// An ordered sequence of tick batches.
class Trace {
 public:
  void Append(TickBatch batch) { batches_.push_back(std::move(batch)); }

  size_t TickCount() const { return batches_.size(); }
  const TickBatch& batch(size_t i) const { return batches_[i]; }
  const std::vector<TickBatch>& batches() const { return batches_; }

  /// Total update tuples across all ticks.
  size_t TotalUpdates() const;

  size_t EstimateMemoryUsage() const;

  /// Line-oriented text serialization (round-trips through Parse).
  std::string Serialize() const;
  static Result<Trace> Parse(const std::string& text);

 private:
  std::vector<TickBatch> batches_;
};

/// Steps `sim` for `ticks` ticks, emitting per-tick batches at the given
/// update fraction. The simulator is advanced in place.
Trace RecordTrace(ObjectSimulator* sim, int ticks, double update_fraction = 1.0);

}  // namespace scuba

#endif  // SCUBA_GEN_TRACE_H_
