#include "gen/trace.h"

#include <cstdio>
#include <sstream>

#include "common/memory_usage.h"

namespace scuba {

size_t Trace::TotalUpdates() const {
  size_t n = 0;
  for (const TickBatch& b : batches_) {
    n += b.object_updates.size() + b.query_updates.size();
  }
  return n;
}

size_t Trace::EstimateMemoryUsage() const {
  size_t bytes = VectorMemoryUsage(batches_);
  for (const TickBatch& b : batches_) {
    bytes += VectorMemoryUsage(b.object_updates) +
             VectorMemoryUsage(b.query_updates);
  }
  return bytes;
}

std::string Trace::Serialize() const {
  std::ostringstream out;
  out << "scuba-trace 1\n";
  char buf[320];
  for (const TickBatch& b : batches_) {
    std::snprintf(buf, sizeof(buf), "tick %lld\n",
                  static_cast<long long>(b.time));
    out << buf;
    for (const LocationUpdate& u : b.object_updates) {
      std::snprintf(buf, sizeof(buf),
                    "o %u %.17g %.17g %lld %.17g %u %.17g %.17g %llu\n", u.oid,
                    u.position.x, u.position.y,
                    static_cast<long long>(u.time), u.speed, u.dest_node,
                    u.dest_position.x, u.dest_position.y,
                    static_cast<unsigned long long>(u.attrs));
      out << buf;
    }
    for (const QueryUpdate& u : b.query_updates) {
      std::snprintf(
          buf, sizeof(buf),
          "q %u %.17g %.17g %lld %.17g %u %.17g %.17g %.17g %.17g %llu %llu\n",
          u.qid, u.position.x, u.position.y, static_cast<long long>(u.time),
          u.speed, u.dest_node, u.dest_position.x, u.dest_position.y,
          u.range_width, u.range_height,
          static_cast<unsigned long long>(u.attrs),
          static_cast<unsigned long long>(u.required_attrs));
      out << buf;
    }
  }
  return out.str();
}

Result<Trace> Trace::Parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line.rfind("scuba-trace 1", 0) != 0) {
    return Status::Corruption("missing 'scuba-trace 1' header");
  }
  Trace trace;
  TickBatch current;
  bool have_tick = false;
  size_t line_no = 1;

  auto flush = [&] {
    if (have_tick) trace.Append(std::move(current));
    current = TickBatch{};
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "tick") {
      long long t;
      if (!(ls >> t)) {
        return Status::Corruption("malformed tick at line " +
                                  std::to_string(line_no));
      }
      flush();
      current.time = t;
      have_tick = true;
    } else if (kind == "o") {
      if (!have_tick) return Status::Corruption("update before first tick");
      LocationUpdate u;
      long long t;
      unsigned long long attrs;
      if (!(ls >> u.oid >> u.position.x >> u.position.y >> t >> u.speed >>
            u.dest_node >> u.dest_position.x >> u.dest_position.y >> attrs)) {
        return Status::Corruption("malformed object update at line " +
                                  std::to_string(line_no));
      }
      u.time = t;
      u.attrs = attrs;
      current.object_updates.push_back(u);
    } else if (kind == "q") {
      if (!have_tick) return Status::Corruption("update before first tick");
      QueryUpdate u;
      long long t;
      unsigned long long attrs;
      if (!(ls >> u.qid >> u.position.x >> u.position.y >> t >> u.speed >>
            u.dest_node >> u.dest_position.x >> u.dest_position.y >>
            u.range_width >> u.range_height >> attrs)) {
        return Status::Corruption("malformed query update at line " +
                                  std::to_string(line_no));
      }
      u.time = t;
      u.attrs = attrs;
      // Optional trailing attribute predicate (older traces omit it).
      unsigned long long required = 0;
      if (ls >> required) u.required_attrs = required;
      current.query_updates.push_back(u);
    } else {
      return Status::Corruption("unknown record '" + kind + "' at line " +
                                std::to_string(line_no));
    }
  }
  flush();
  return trace;
}

Trace RecordTrace(ObjectSimulator* sim, int ticks, double update_fraction) {
  Trace trace;
  for (int i = 0; i < ticks; ++i) {
    sim->Step();
    TickBatch batch;
    batch.time = sim->now();
    sim->EmitUpdates(update_fraction, &batch.object_updates,
                     &batch.query_updates);
    trace.Append(std::move(batch));
  }
  return trace;
}

}  // namespace scuba
