// Stream tuple formats (paper §2).
//
// A moving object reports (o.oid, o.loc_t, o.t, o.speed, o.cnLoc, o.attrs); a
// continuous query reports the same plus query-specific attributes — for range
// queries, the monitored rectangle size. cnLoc is the connection node the
// entity will reach next (its current destination); the network is stable, so
// cnLoc only changes when the entity passes a connection node.

#ifndef SCUBA_GEN_UPDATE_H_
#define SCUBA_GEN_UPDATE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "geometry/point.h"
#include "geometry/rect.h"

namespace scuba {

/// Descriptive attributes (o.attrs / q.attrs). A small bitmask keeps updates
/// POD-sized; attribute names live in AttrName().
enum AttrTag : uint64_t {
  kAttrNone = 0,
  kAttrChild = 1ull << 0,
  kAttrRedCar = 1ull << 1,
  kAttrTruck = 1ull << 2,
  kAttrBus = 1ull << 3,
  kAttrEmergency = 1ull << 4,
};

/// A moving object's location update.
struct LocationUpdate {
  ObjectId oid = 0;
  Point position;           ///< o.loc_t
  Timestamp time = 0;       ///< o.t
  double speed = 0.0;       ///< o.speed, spatial units / tick
  NodeId dest_node = kInvalidNodeId;  ///< o.cnLoc (id of next connection node)
  Point dest_position;      ///< position of that node
  uint64_t attrs = kAttrNone;

  std::string ToString() const;
};

/// A moving range query's update. The query monitors a rectangle of the given
/// size centered on its (moving) position.
struct QueryUpdate {
  QueryId qid = 0;
  Point position;
  Timestamp time = 0;
  double speed = 0.0;
  NodeId dest_node = kInvalidNodeId;
  Point dest_position;
  double range_width = 0.0;
  double range_height = 0.0;
  uint64_t attrs = kAttrNone;
  /// Attribute predicate: the query only matches objects carrying ALL of
  /// these tags (paper §2: q.attrs holds query-specific attributes; the
  /// motivating examples — "child", "red car" — are exactly such filters).
  /// 0 = unfiltered range query.
  uint64_t required_attrs = kAttrNone;

  /// The monitored region for this update.
  Rect Range() const {
    return Rect::Centered(position, range_width, range_height);
  }

  /// True iff an object with attribute set `object_attrs` passes this
  /// query's attribute predicate.
  bool AttrsMatch(uint64_t object_attrs) const {
    return (object_attrs & required_attrs) == required_attrs;
  }

  std::string ToString() const;
};

/// Validates an update before it enters an engine: finite position and
/// destination coordinates, finite non-negative speed, non-negative time, a
/// real destination node. Engines reject invalid tuples with this status
/// instead of corrupting cluster state.
Status ValidateUpdate(const LocationUpdate& update);

/// Same, plus positive finite range extents.
Status ValidateUpdate(const QueryUpdate& update);

}  // namespace scuba

#endif  // SCUBA_GEN_UPDATE_H_
