#include "gen/update.h"

#include <cmath>
#include <cstdio>

namespace scuba {

namespace {

bool FinitePoint(Point p) { return std::isfinite(p.x) && std::isfinite(p.y); }

/// Checks the fields shared by both update kinds.
Status ValidateCommon(Point position, Timestamp time, double speed,
                      NodeId dest_node, Point dest_position) {
  if (!FinitePoint(position)) {
    return Status::InvalidArgument("update position is not finite");
  }
  if (time < 0) {
    return Status::InvalidArgument("update time is negative");
  }
  if (!std::isfinite(speed) || speed < 0.0) {
    return Status::InvalidArgument("update speed must be finite and >= 0");
  }
  if (dest_node == kInvalidNodeId) {
    return Status::InvalidArgument("update has no destination node (cnLoc)");
  }
  if (!FinitePoint(dest_position)) {
    return Status::InvalidArgument("update destination position is not finite");
  }
  return Status::OK();
}

}  // namespace

Status ValidateUpdate(const LocationUpdate& u) {
  return ValidateCommon(u.position, u.time, u.speed, u.dest_node,
                        u.dest_position);
}

Status ValidateUpdate(const QueryUpdate& u) {
  SCUBA_RETURN_IF_ERROR(
      ValidateCommon(u.position, u.time, u.speed, u.dest_node,
                     u.dest_position));
  if (!std::isfinite(u.range_width) || u.range_width <= 0.0 ||
      !std::isfinite(u.range_height) || u.range_height <= 0.0) {
    return Status::InvalidArgument("query range extents must be positive");
  }
  return Status::OK();
}

std::string LocationUpdate::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "obj %u @(%.1f, %.1f) t=%lld speed=%.1f -> node %u",
                oid, position.x, position.y, static_cast<long long>(time),
                speed, dest_node);
  return buf;
}

std::string QueryUpdate::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "query %u @(%.1f, %.1f) t=%lld speed=%.1f -> node %u "
                "range=%.0fx%.0f",
                qid, position.x, position.y, static_cast<long long>(time),
                speed, dest_node, range_width, range_height);
  return buf;
}

}  // namespace scuba
