#include "gen/object_simulator.h"

#include <string>

#include "common/check.h"

namespace scuba {

ObjectSimulator::ObjectSimulator(const RoadNetwork* network, uint64_t seed)
    : network_(network), seed_(seed), emit_rng_(seed ^ 0xE417u) {
  SCUBA_CHECK(network != nullptr);
}

Status ObjectSimulator::AddEntity(SimEntity entity) {
  if (entity.route.size() < 2) {
    return Status::InvalidArgument("entity route needs at least 2 nodes");
  }
  if (entity.leg + 1 >= entity.route.size()) {
    return Status::InvalidArgument("entity leg is past the end of its route");
  }
  for (size_t i = 0; i + 1 < entity.route.size(); ++i) {
    if (network_->FindEdge(entity.route[i], entity.route[i + 1]) ==
        kInvalidEdgeId) {
      return Status::InvalidArgument(
          "route hop " + std::to_string(entity.route[i]) + " -> " +
          std::to_string(entity.route[i + 1]) + " is not a road segment");
    }
  }
  if (entity.speed_factor <= 0.0) {
    return Status::InvalidArgument("speed_factor must be positive");
  }
  RefreshDerivedState(&entity);
  entities_.push_back(std::move(entity));
  return Status::OK();
}

NodeId ObjectSimulator::GroupDestination(uint32_t group,
                                         uint32_t generation) const {
  // Deterministic per (seed, group, generation): every member of a group picks
  // the same next destination, which is what keeps groups clusterable.
  uint64_t sm = seed_ ^ (0x9E3779B97F4A7C15ULL * (group + 1)) ^
                (0xC2B2AE3D27D4EB4FULL * (generation + 1));
  return static_cast<NodeId>(SplitMix64(&sm) % network_->NodeCount());
}

void ObjectSimulator::PlanNewRoute(SimEntity* e, NodeId start) {
  // Try successive generations until a reachable, distinct destination comes
  // up. On a connected network the first try almost always succeeds.
  for (int attempt = 0; attempt < 16; ++attempt) {
    e->route_generation++;
    NodeId dest = GroupDestination(e->group, e->route_generation);
    if (dest == start) continue;
    Result<Route> r = ShortestPath(*network_, start, dest);
    if (!r.ok()) continue;
    e->route = std::move(r->nodes);
    e->leg = 0;
    e->offset = 0.0;
    return;
  }
  // Degenerate fallback (e.g. a 2-node network): shuttle along any out-edge.
  const std::vector<EdgeId>& out = network_->OutEdges(start);
  SCUBA_CHECK_MSG(!out.empty(), "node with no outgoing edges");
  e->route = {start, network_->edge(out[0]).to};
  e->leg = 0;
  e->offset = 0.0;
}

void ObjectSimulator::RefreshDerivedState(SimEntity* e) const {
  EdgeId eid = network_->FindEdge(e->route[e->leg], e->route[e->leg + 1]);
  SCUBA_CHECK(eid != kInvalidEdgeId);
  const RoadSegment& edge = network_->edge(eid);
  e->speed = edge.speed_limit * e->speed_factor;
  double t = e->offset / edge.length;
  e->position = Lerp(network_->node(edge.from).position,
                     network_->node(edge.to).position, t);
}

void ObjectSimulator::Step() {
  ++now_;
  for (SimEntity& e : entities_) {
    double remaining = e.speed;
    // Advance across as many legs as this tick's distance covers.
    int guard = 0;
    while (remaining > 0.0) {
      SCUBA_CHECK_MSG(++guard < 10000, "entity advanced through too many legs");
      EdgeId eid = network_->FindEdge(e.route[e.leg], e.route[e.leg + 1]);
      const RoadSegment& edge = network_->edge(eid);
      double to_end = edge.length - e.offset;
      if (remaining < to_end) {
        e.offset += remaining;
        remaining = 0.0;
      } else {
        remaining -= to_end;
        e.leg++;
        e.offset = 0.0;
        if (e.leg + 1 >= e.route.size()) {
          // Reached the final destination: plan the group's next trip.
          PlanNewRoute(&e, e.route.back());
        }
        // Speed changes with the new leg's road class.
        EdgeId next = network_->FindEdge(e.route[e.leg], e.route[e.leg + 1]);
        remaining = std::min(
            remaining, network_->edge(next).speed_limit * e.speed_factor);
      }
    }
    RefreshDerivedState(&e);
  }
}

NodeId ObjectSimulator::CurrentDestination(size_t i) const {
  const SimEntity& e = entities_[i];
  return e.route[e.leg + 1];
}

void ObjectSimulator::EmitUpdates(double update_fraction,
                                  std::vector<LocationUpdate>* object_updates,
                                  std::vector<QueryUpdate>* query_updates) {
  for (size_t i = 0; i < entities_.size(); ++i) {
    const SimEntity& e = entities_[i];
    if (update_fraction < 1.0 && !emit_rng_.NextBool(update_fraction)) continue;
    NodeId dest = CurrentDestination(i);
    Point dest_pos = network_->node(dest).position;
    if (e.kind == EntityKind::kObject) {
      LocationUpdate u;
      u.oid = e.id;
      u.position = e.position;
      u.time = now_;
      u.speed = e.speed;
      u.dest_node = dest;
      u.dest_position = dest_pos;
      u.attrs = e.attrs;
      object_updates->push_back(u);
    } else {
      QueryUpdate u;
      u.qid = e.id;
      u.position = e.position;
      u.time = now_;
      u.speed = e.speed;
      u.dest_node = dest;
      u.dest_position = dest_pos;
      u.range_width = e.range_width;
      u.range_height = e.range_height;
      u.attrs = e.attrs;
      u.required_attrs = e.required_attrs;
      query_updates->push_back(u);
    }
  }
}

}  // namespace scuba
