// ObjectSimulator: network-constrained piecewise-linear motion.
//
// Stand-in for the Brinkhoff network-based generator of moving objects [5]
// (see DESIGN.md substitutions). Entities follow shortest-path routes over a
// RoadNetwork at a per-entity fraction of each road's speed limit. When a
// route is exhausted the entity picks a fresh destination; entities in the
// same *group* (the skew mechanism, §6.3) make identical choices, so they keep
// travelling together and stay clusterable.

#ifndef SCUBA_GEN_OBJECT_SIMULATOR_H_
#define SCUBA_GEN_OBJECT_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "gen/update.h"
#include "network/road_network.h"
#include "network/shortest_path.h"

namespace scuba {

/// Mutable state of one simulated moving entity (object or query).
struct SimEntity {
  EntityKind kind = EntityKind::kObject;
  uint32_t id = 0;          ///< ObjectId or QueryId depending on kind.
  uint32_t group = 0;       ///< Entities sharing a group share routes (skew).
  double speed_factor = 1;  ///< Fraction of the speed limit this entity drives.
  uint64_t attrs = kAttrNone;
  double range_width = 0.0;   ///< Query range (queries only).
  double range_height = 0.0;
  uint64_t required_attrs = kAttrNone;  ///< Query attribute predicate.

  // Motion state.
  std::vector<NodeId> route;  ///< Remaining plan, route[leg] -> route[leg+1] current.
  size_t leg = 0;             ///< Index of the current leg's start node.
  double offset = 0.0;        ///< Distance travelled along the current leg.
  uint32_t route_generation = 0;  ///< Increments each time a new route is planned.

  Point position;             ///< Derived: current planar position.
  double speed = 0.0;         ///< Derived: current speed (units/tick).
};

/// Advances a population of SimEntities tick by tick and emits their update
/// tuples. Deterministic given (network, entities, seed).
class ObjectSimulator {
 public:
  /// `network` must outlive the simulator.
  ObjectSimulator(const RoadNetwork* network, uint64_t seed);

  /// Takes ownership of an entity. Its route must be a valid node path (each
  /// consecutive pair connected); fails with InvalidArgument otherwise.
  Status AddEntity(SimEntity entity);

  size_t EntityCount() const { return entities_.size(); }
  const std::vector<SimEntity>& entities() const { return entities_; }

  /// Advances every entity by one tick of motion.
  void Step();

  Timestamp now() const { return now_; }

  /// Emits update tuples for a fraction of entities (update_fraction in
  /// [0, 1]; 1.0 = the paper's default "100% send updates each time unit").
  /// Which entities report is a deterministic pseudo-random choice per tick.
  void EmitUpdates(double update_fraction,
                   std::vector<LocationUpdate>* object_updates,
                   std::vector<QueryUpdate>* query_updates);

  /// The next connection node (cnLoc) of entity `i`.
  NodeId CurrentDestination(size_t i) const;

 private:
  /// Re-plans entity `e` from `start` to a group-deterministic destination.
  void PlanNewRoute(SimEntity* e, NodeId start);

  /// Recomputes position/speed from route, leg, offset.
  void RefreshDerivedState(SimEntity* e) const;

  /// Destination choice shared by all members of `group` at `generation`.
  NodeId GroupDestination(uint32_t group, uint32_t generation) const;

  const RoadNetwork* network_;
  uint64_t seed_;
  Rng emit_rng_;
  std::vector<SimEntity> entities_;
  Timestamp now_ = 0;
};

}  // namespace scuba

#endif  // SCUBA_GEN_OBJECT_SIMULATOR_H_
