// Road network: the motion substrate of the paper's model (§2).
//
// Moving objects travel piecewise-linearly along roads connected at
// "connection nodes". A RoadNetwork is an immutable directed graph of
// connection nodes (with planar positions) and road segments (with lengths
// derived from geometry and speed limits derived from road class). Build one
// with NetworkBuilder or GridCityMapGenerator.

#ifndef SCUBA_NETWORK_ROAD_NETWORK_H_
#define SCUBA_NETWORK_ROAD_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "geometry/point.h"
#include "geometry/rect.h"

namespace scuba {

/// Functional class of a road; determines its speed limit.
enum class RoadClass : uint8_t { kLocal = 0, kArterial = 1, kHighway = 2 };

std::string_view RoadClassName(RoadClass rc);

/// Default speed limit for a road class, in spatial units per tick. These
/// mirror the paper's observation (§3.1) that highways support high speeds
/// with far-apart connection nodes while local roads are slow.
double DefaultSpeedLimit(RoadClass rc);

/// A connection node (paper Fig. 1): a point where road segments meet and
/// where moving objects pick their next destination.
struct ConnectionNode {
  NodeId id = kInvalidNodeId;
  Point position;
};

/// A directed road segment between two connection nodes.
struct RoadSegment {
  EdgeId id = kInvalidEdgeId;
  NodeId from = kInvalidNodeId;
  NodeId to = kInvalidNodeId;
  double length = 0.0;       ///< Euclidean length of the segment.
  double speed_limit = 0.0;  ///< Spatial units per tick.
  RoadClass road_class = RoadClass::kLocal;

  /// Ticks needed to traverse at the speed limit.
  double TravelTime() const { return length / speed_limit; }
};

/// Immutable road graph. Node and edge ids are dense [0, count) indices.
class RoadNetwork {
 public:
  RoadNetwork() = default;

  size_t NodeCount() const { return nodes_.size(); }
  size_t EdgeCount() const { return edges_.size(); }

  const ConnectionNode& node(NodeId id) const { return nodes_[id]; }
  const RoadSegment& edge(EdgeId id) const { return edges_[id]; }
  const std::vector<ConnectionNode>& nodes() const { return nodes_; }
  const std::vector<RoadSegment>& edges() const { return edges_; }

  /// Ids of edges leaving `node`.
  const std::vector<EdgeId>& OutEdges(NodeId node) const {
    return out_edges_[node];
  }

  /// Smallest rectangle containing every node.
  const Rect& BoundingBox() const { return bounding_box_; }

  /// The edge from `from` to `to`, or kInvalidEdgeId if absent.
  EdgeId FindEdge(NodeId from, NodeId to) const;

  /// Node nearest to `p` (linear scan; generator-side utility).
  /// Precondition: the network is non-empty.
  NodeId NearestNode(Point p) const;

  /// Analytic heap footprint (see common/memory_usage.h).
  size_t EstimateMemoryUsage() const;

 private:
  friend class NetworkBuilder;

  std::vector<ConnectionNode> nodes_;
  std::vector<RoadSegment> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  Rect bounding_box_;
};

}  // namespace scuba

#endif  // SCUBA_NETWORK_ROAD_NETWORK_H_
