#include "network/network_builder.h"

#include <string>

namespace scuba {

NodeId NetworkBuilder::AddNode(Point position) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(ConnectionNode{id, position});
  return id;
}

Result<EdgeId> NetworkBuilder::AddEdge(NodeId from, NodeId to,
                                       RoadClass road_class,
                                       double speed_limit) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    return Status::InvalidArgument("edge endpoint does not name an existing node");
  }
  if (from == to) {
    return Status::InvalidArgument("self-loop edges are not allowed");
  }
  if (speed_limit < 0.0) {
    return Status::InvalidArgument("speed limit must be positive (or 0 for default)");
  }
  const uint64_t key = (static_cast<uint64_t>(from) << 32) | to;
  if (edge_keys_.contains(key)) {
    return Status::AlreadyExists("duplicate edge " + std::to_string(from) +
                                 " -> " + std::to_string(to));
  }
  edge_keys_.insert(key);
  RoadSegment seg;
  seg.id = static_cast<EdgeId>(edges_.size());
  seg.from = from;
  seg.to = to;
  seg.length = Distance(nodes_[from].position, nodes_[to].position);
  seg.road_class = road_class;
  seg.speed_limit = speed_limit > 0.0 ? speed_limit : DefaultSpeedLimit(road_class);
  edges_.push_back(seg);
  return seg.id;
}

Result<EdgeId> NetworkBuilder::AddBidirectionalEdge(NodeId a, NodeId b,
                                                    RoadClass road_class,
                                                    double speed_limit) {
  Result<EdgeId> fwd = AddEdge(a, b, road_class, speed_limit);
  if (!fwd.ok()) return fwd;
  Result<EdgeId> bwd = AddEdge(b, a, road_class, speed_limit);
  if (!bwd.ok()) return bwd.status();
  return fwd;
}

Result<RoadNetwork> NetworkBuilder::Build() const {
  if (nodes_.empty()) {
    return Status::FailedPrecondition("network has no nodes");
  }
  if (edges_.empty()) {
    return Status::FailedPrecondition("network has no edges");
  }
  for (const RoadSegment& e : edges_) {
    if (e.length <= 0.0) {
      return Status::FailedPrecondition(
          "segment " + std::to_string(e.id) +
          " has zero length (coincident endpoints)");
    }
  }

  RoadNetwork net;
  net.nodes_ = nodes_;
  net.edges_ = edges_;
  net.out_edges_.assign(nodes_.size(), {});
  for (const RoadSegment& e : edges_) {
    net.out_edges_[e.from].push_back(e.id);
  }
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (net.out_edges_[n].empty()) {
      return Status::FailedPrecondition("node " + std::to_string(n) +
                                        " has no outgoing edge; objects would strand");
    }
  }
  Rect box{nodes_[0].position.x, nodes_[0].position.y, nodes_[0].position.x,
           nodes_[0].position.y};
  for (const ConnectionNode& n : nodes_) {
    box = Union(box, Rect{n.position.x, n.position.y, n.position.x, n.position.y});
  }
  net.bounding_box_ = box;
  return net;
}

}  // namespace scuba
