#include "network/network_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "network/network_builder.h"

namespace scuba {

std::string SerializeNetwork(const RoadNetwork& network) {
  std::ostringstream out;
  out << "scuba-network 1\n";
  char buf[160];
  for (const ConnectionNode& n : network.nodes()) {
    std::snprintf(buf, sizeof(buf), "node %u %.17g %.17g\n", n.id,
                  n.position.x, n.position.y);
    out << buf;
  }
  for (const RoadSegment& e : network.edges()) {
    std::snprintf(buf, sizeof(buf), "edge %u %u %u %.17g\n", e.from, e.to,
                  static_cast<unsigned>(e.road_class), e.speed_limit);
    out << buf;
  }
  return out.str();
}

Result<RoadNetwork> ParseNetwork(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line.rfind("scuba-network 1", 0) != 0) {
    return Status::Corruption("missing 'scuba-network 1' header");
  }

  NetworkBuilder builder;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "node") {
      NodeId id;
      double x, y;
      if (!(ls >> id >> x >> y)) {
        return Status::Corruption("malformed node at line " +
                                  std::to_string(line_no));
      }
      NodeId got = builder.AddNode(Point{x, y});
      if (got != id) {
        return Status::Corruption("node ids must be dense and in order (line " +
                                  std::to_string(line_no) + ")");
      }
    } else if (kind == "edge") {
      NodeId from, to;
      unsigned rc;
      double speed;
      if (!(ls >> from >> to >> rc >> speed) || rc > 2) {
        return Status::Corruption("malformed edge at line " +
                                  std::to_string(line_no));
      }
      Result<EdgeId> e =
          builder.AddEdge(from, to, static_cast<RoadClass>(rc), speed);
      if (!e.ok()) return e.status();
    } else {
      return Status::Corruption("unknown record '" + kind + "' at line " +
                                std::to_string(line_no));
    }
  }
  return builder.Build();
}

Status SaveNetwork(const RoadNetwork& network, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << SerializeNetwork(network);
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<RoadNetwork> LoadNetwork(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseNetwork(buf.str());
}

}  // namespace scuba
