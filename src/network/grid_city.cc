#include "network/grid_city.h"

#include <cmath>

#include "common/check.h"
#include "network/network_builder.h"

namespace scuba {

namespace {

/// Road class of the street along a given row/column index.
RoadClass ClassifyLine(uint32_t index, const GridCityOptions& opt) {
  if (opt.highway_every > 0 && index % opt.highway_every == 0) {
    return RoadClass::kHighway;
  }
  if (opt.arterial_every > 0 && index % opt.arterial_every == 0) {
    return RoadClass::kArterial;
  }
  return RoadClass::kLocal;
}

}  // namespace

Result<RoadNetwork> GenerateGridCity(const GridCityOptions& opt) {
  if (opt.rows < 2 || opt.cols < 2) {
    return Status::InvalidArgument("grid city needs at least 2x2 nodes");
  }
  if (opt.block_size <= 0.0) {
    return Status::InvalidArgument("block_size must be positive");
  }
  if (opt.jitter < 0.0 || opt.jitter > 0.4) {
    return Status::InvalidArgument("jitter must be in [0, 0.4]");
  }

  Rng rng(opt.seed);
  NetworkBuilder builder;

  // Nodes, row-major. Jitter keeps nodes within a fraction of a block of their
  // lattice position so the grid stays planar and connected.
  std::vector<std::vector<NodeId>> ids(opt.rows, std::vector<NodeId>(opt.cols));
  for (uint32_t r = 0; r < opt.rows; ++r) {
    for (uint32_t c = 0; c < opt.cols; ++c) {
      double jx = opt.jitter > 0.0
                      ? rng.NextDouble(-opt.jitter, opt.jitter) * opt.block_size
                      : 0.0;
      double jy = opt.jitter > 0.0
                      ? rng.NextDouble(-opt.jitter, opt.jitter) * opt.block_size
                      : 0.0;
      Point p{opt.origin.x + c * opt.block_size + jx,
              opt.origin.y + r * opt.block_size + jy};
      ids[r][c] = builder.AddNode(p);
    }
  }

  // Horizontal streets: the street along row r gets row r's class.
  for (uint32_t r = 0; r < opt.rows; ++r) {
    RoadClass rc = ClassifyLine(r, opt);
    for (uint32_t c = 0; c + 1 < opt.cols; ++c) {
      Result<EdgeId> e = builder.AddBidirectionalEdge(ids[r][c], ids[r][c + 1], rc);
      if (!e.ok()) return e.status();
    }
  }
  // Vertical streets.
  for (uint32_t c = 0; c < opt.cols; ++c) {
    RoadClass rc = ClassifyLine(c, opt);
    for (uint32_t r = 0; r + 1 < opt.rows; ++r) {
      Result<EdgeId> e = builder.AddBidirectionalEdge(ids[r][c], ids[r + 1][c], rc);
      if (!e.ok()) return e.status();
    }
  }

  return builder.Build();
}

RoadNetwork DefaultBenchmarkCity(uint64_t seed) {
  GridCityOptions opt;
  opt.seed = seed;
  Result<RoadNetwork> net = GenerateGridCity(opt);
  SCUBA_CHECK_MSG(net.ok(), net.status().ToString().c_str());
  return std::move(net).value();
}

Result<RoadNetwork> GenerateRadialCity(const RadialCityOptions& opt) {
  if (opt.rings < 1) {
    return Status::InvalidArgument("radial city needs at least 1 ring");
  }
  if (opt.spokes < 3) {
    return Status::InvalidArgument("radial city needs at least 3 spokes");
  }
  if (opt.ring_spacing <= 0.0) {
    return Status::InvalidArgument("ring_spacing must be positive");
  }

  NetworkBuilder builder;
  NodeId hub = builder.AddNode(opt.center);

  // ids[r][s]: node on ring r (1-based) at spoke s.
  std::vector<std::vector<NodeId>> ids(opt.rings + 1,
                                       std::vector<NodeId>(opt.spokes));
  for (uint32_t r = 1; r <= opt.rings; ++r) {
    double radius = r * opt.ring_spacing;
    for (uint32_t s = 0; s < opt.spokes; ++s) {
      double angle = 2.0 * M_PI * s / opt.spokes;
      ids[r][s] = builder.AddNode(Point{opt.center.x + radius * std::cos(angle),
                                        opt.center.y + radius * std::sin(angle)});
    }
  }

  // Spokes: hub -> ring 1 -> ... -> outer ring, highways.
  for (uint32_t s = 0; s < opt.spokes; ++s) {
    Result<EdgeId> e =
        builder.AddBidirectionalEdge(hub, ids[1][s], RoadClass::kHighway);
    if (!e.ok()) return e.status();
    for (uint32_t r = 1; r < opt.rings; ++r) {
      e = builder.AddBidirectionalEdge(ids[r][s], ids[r + 1][s],
                                       RoadClass::kHighway);
      if (!e.ok()) return e.status();
    }
  }
  // Rings: local near the hub, arterial further out.
  for (uint32_t r = 1; r <= opt.rings; ++r) {
    RoadClass rc = (opt.arterial_from_ring > 0 && r >= opt.arterial_from_ring)
                       ? RoadClass::kArterial
                       : RoadClass::kLocal;
    for (uint32_t s = 0; s < opt.spokes; ++s) {
      Result<EdgeId> e = builder.AddBidirectionalEdge(
          ids[r][s], ids[r][(s + 1) % opt.spokes], rc);
      if (!e.ok()) return e.status();
    }
  }
  return builder.Build();
}

}  // namespace scuba
