#include "network/road_network.h"

#include <limits>

#include "common/check.h"
#include "common/memory_usage.h"

namespace scuba {

std::string_view RoadClassName(RoadClass rc) {
  switch (rc) {
    case RoadClass::kLocal:
      return "local";
    case RoadClass::kArterial:
      return "arterial";
    case RoadClass::kHighway:
      return "highway";
  }
  return "unknown";
}

double DefaultSpeedLimit(RoadClass rc) {
  switch (rc) {
    case RoadClass::kLocal:
      return 30.0;
    case RoadClass::kArterial:
      return 60.0;
    case RoadClass::kHighway:
      return 100.0;
  }
  return 30.0;
}

EdgeId RoadNetwork::FindEdge(NodeId from, NodeId to) const {
  if (from >= nodes_.size()) return kInvalidEdgeId;
  for (EdgeId eid : out_edges_[from]) {
    if (edges_[eid].to == to) return eid;
  }
  return kInvalidEdgeId;
}

NodeId RoadNetwork::NearestNode(Point p) const {
  SCUBA_CHECK(!nodes_.empty());
  NodeId best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (const ConnectionNode& n : nodes_) {
    double d2 = SquaredDistance(n.position, p);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = n.id;
    }
  }
  return best;
}

size_t RoadNetwork::EstimateMemoryUsage() const {
  size_t bytes = VectorMemoryUsage(nodes_) + VectorMemoryUsage(edges_) +
                 VectorMemoryUsage(out_edges_);
  for (const auto& v : out_edges_) bytes += VectorMemoryUsage(v);
  return bytes;
}

}  // namespace scuba
