// GridCityMapGenerator: synthetic city road map.
//
// The paper feeds the Brinkhoff generator the road map of Worcester, USA. We
// do not have that map, so we synthesize a city with the same structural
// properties SCUBA depends on (DESIGN.md, substitution table): a connected
// street grid with slow local roads, faster arterials every few blocks, and
// fast highway rows/columns with widely spaced connection nodes. Node
// positions can be jittered so streets are not perfectly regular.

#ifndef SCUBA_NETWORK_GRID_CITY_H_
#define SCUBA_NETWORK_GRID_CITY_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "network/road_network.h"

namespace scuba {

struct GridCityOptions {
  /// Number of node rows / columns (>= 2 each).
  uint32_t rows = 21;
  uint32_t cols = 21;
  /// Distance between adjacent nodes, in spatial units (> 0).
  double block_size = 500.0;
  /// Lower-left corner of the city.
  Point origin{0.0, 0.0};
  /// Every k-th row/column is an arterial (0 disables arterials).
  uint32_t arterial_every = 5;
  /// Every k-th row/column is a highway (0 disables; takes precedence over
  /// arterial when both match).
  uint32_t highway_every = 10;
  /// Uniform positional jitter as a fraction of block_size, in [0, 0.4].
  double jitter = 0.1;
  /// Seed for the jitter.
  uint64_t seed = 0x5C0BAULL;
};

/// Generates a connected grid-city RoadNetwork. All streets are
/// bidirectional. Returns InvalidArgument for out-of-range options.
Result<RoadNetwork> GenerateGridCity(const GridCityOptions& options);

/// Convenience: the default ~10,000 x 10,000-unit city used by the benchmarks
/// (21 x 21 nodes, 500-unit blocks, arterials every 5, highways every 10).
RoadNetwork DefaultBenchmarkCity(uint64_t seed = 0x5C0BAULL);

/// A radial city: concentric ring roads crossed by radial avenues meeting at
/// a centre hub — the classic European layout, structurally very different
/// from the Manhattan grid. Useful for checking that results are not grid
/// artefacts.
struct RadialCityOptions {
  /// Number of ring roads (>= 1) around the hub.
  uint32_t rings = 8;
  /// Radial avenues (>= 3) from the hub outwards.
  uint32_t spokes = 12;
  /// Distance between consecutive rings (> 0).
  double ring_spacing = 600.0;
  /// City centre.
  Point center{5000.0, 5000.0};
  /// Ring index (1-based) from which rings count as arterials; 0 disables.
  uint32_t arterial_from_ring = 3;
  uint64_t seed = 0x5C0BAULL;
};

/// Generates a connected radial RoadNetwork: the hub connects to ring 1 via
/// every spoke; spokes are highways, rings local/arterial. All roads are
/// bidirectional.
Result<RoadNetwork> GenerateRadialCity(const RadialCityOptions& options);

}  // namespace scuba

#endif  // SCUBA_NETWORK_GRID_CITY_H_
