// Text serialization of road networks.
//
// Format (line-oriented, '#' comments allowed):
//   scuba-network 1
//   node <id> <x> <y>
//   edge <from> <to> <class:0|1|2> <speed_limit>
// Node ids must be dense and in order; edges are directed.

#ifndef SCUBA_NETWORK_NETWORK_IO_H_
#define SCUBA_NETWORK_NETWORK_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "network/road_network.h"

namespace scuba {

/// Serializes `network` to the text format.
std::string SerializeNetwork(const RoadNetwork& network);

/// Parses the text format. Returns Corruption on malformed input and the
/// builder's validation errors otherwise.
Result<RoadNetwork> ParseNetwork(const std::string& text);

/// File convenience wrappers.
Status SaveNetwork(const RoadNetwork& network, const std::string& path);
Result<RoadNetwork> LoadNetwork(const std::string& path);

}  // namespace scuba

#endif  // SCUBA_NETWORK_NETWORK_IO_H_
