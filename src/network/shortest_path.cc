#include "network/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace scuba {

namespace {

double EdgeCost(const RoadSegment& e, RouteCost cost) {
  return cost == RouteCost::kTravelTime ? e.TravelTime() : e.length;
}

struct QueueEntry {
  double cost;
  NodeId node;
  // Min-heap ordering.
  friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
    return a.cost > b.cost;
  }
};

}  // namespace

Result<Route> ShortestPath(const RoadNetwork& network, NodeId from, NodeId to,
                           RouteCost cost) {
  const size_t n = network.NodeCount();
  if (from >= n || to >= n) {
    return Status::InvalidArgument("shortest path endpoint out of range");
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<NodeId> prev(n, kInvalidNodeId);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  dist[from] = 0.0;
  pq.push({0.0, from});

  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;  // stale entry
    if (u == to) break;
    for (EdgeId eid : network.OutEdges(u)) {
      const RoadSegment& e = network.edge(eid);
      double nd = d + EdgeCost(e, cost);
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        prev[e.to] = u;
        pq.push({nd, e.to});
      }
    }
  }

  if (dist[to] == kInf) {
    return Status::NotFound("destination unreachable from source");
  }

  Route route;
  route.cost = dist[to];
  for (NodeId v = to; v != kInvalidNodeId; v = prev[v]) {
    route.nodes.push_back(v);
    if (v == from) break;
  }
  std::reverse(route.nodes.begin(), route.nodes.end());
  return route;
}

Result<std::vector<double>> ShortestPathCosts(const RoadNetwork& network,
                                              NodeId from, RouteCost cost) {
  const size_t n = network.NodeCount();
  if (from >= n) {
    return Status::InvalidArgument("source node out of range");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  dist[from] = 0.0;
  pq.push({0.0, from});
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (EdgeId eid : network.OutEdges(u)) {
      const RoadSegment& e = network.edge(eid);
      double nd = d + EdgeCost(e, cost);
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        pq.push({nd, e.to});
      }
    }
  }
  return dist;
}

}  // namespace scuba
