// Shortest-path routing over RoadNetworks (Dijkstra).
//
// The workload generator routes entities between connection nodes; routes may
// minimize travel time (speed-limit aware, the default — fast roads attract
// traffic, which is what makes highway clusters form) or distance.

#ifndef SCUBA_NETWORK_SHORTEST_PATH_H_
#define SCUBA_NETWORK_SHORTEST_PATH_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "network/road_network.h"

namespace scuba {

enum class RouteCost {
  kTravelTime,  ///< Sum of length / speed_limit.
  kDistance,    ///< Sum of segment lengths.
};

/// A routing result: the node sequence from source to destination (inclusive)
/// and its total cost under the requested metric.
struct Route {
  std::vector<NodeId> nodes;
  double cost = 0.0;
};

/// Dijkstra from `from` to `to`. Returns NotFound when `to` is unreachable and
/// InvalidArgument for out-of-range node ids. A route from a node to itself is
/// the single-node route with cost 0.
Result<Route> ShortestPath(const RoadNetwork& network, NodeId from, NodeId to,
                           RouteCost cost = RouteCost::kTravelTime);

/// Single-source Dijkstra; returns per-node cost from `from` (infinity where
/// unreachable) — used to validate connectivity of generated maps.
Result<std::vector<double>> ShortestPathCosts(
    const RoadNetwork& network, NodeId from,
    RouteCost cost = RouteCost::kTravelTime);

}  // namespace scuba

#endif  // SCUBA_NETWORK_SHORTEST_PATH_H_
