// NetworkBuilder: validated, incremental construction of RoadNetworks.

#ifndef SCUBA_NETWORK_NETWORK_BUILDER_H_
#define SCUBA_NETWORK_NETWORK_BUILDER_H_

#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "network/road_network.h"

namespace scuba {

/// Accumulates nodes and road segments, then Build()s an immutable
/// RoadNetwork. Edge lengths are computed from node geometry; speed limits
/// default per road class but can be overridden.
class NetworkBuilder {
 public:
  /// Adds a connection node at `position`; returns its dense id.
  NodeId AddNode(Point position);

  /// Adds a one-way segment from -> to. speed_limit <= 0 selects the class
  /// default. Returns the edge id, or InvalidArgument for unknown endpoints,
  /// self-loops, non-positive override speeds, or duplicate (from, to) pairs.
  Result<EdgeId> AddEdge(NodeId from, NodeId to,
                         RoadClass road_class = RoadClass::kLocal,
                         double speed_limit = 0.0);

  /// Adds segments in both directions; returns the forward edge id.
  Result<EdgeId> AddBidirectionalEdge(NodeId a, NodeId b,
                                      RoadClass road_class = RoadClass::kLocal,
                                      double speed_limit = 0.0);

  size_t NodeCount() const { return nodes_.size(); }
  size_t EdgeCount() const { return edges_.size(); }

  /// Finalizes the network. Fails (FailedPrecondition) when the network is
  /// empty, when a node has no outgoing edge (objects would strand), or when a
  /// segment has zero length (coincident endpoints).
  Result<RoadNetwork> Build() const;

 private:
  std::vector<ConnectionNode> nodes_;
  std::vector<RoadSegment> edges_;
  std::unordered_set<uint64_t> edge_keys_;  // (from << 32) | to, for dup checks
};

}  // namespace scuba

#endif  // SCUBA_NETWORK_NETWORK_BUILDER_H_
