// Axis-aligned rectangles.
//
// Continuous range queries monitor a rectangular region centered on the
// (moving) query point; the data space and grid-index cells are rectangles
// too. All rectangles are closed (boundaries included).

#ifndef SCUBA_GEOMETRY_RECT_H_
#define SCUBA_GEOMETRY_RECT_H_

#include <algorithm>

#include "geometry/circle.h"
#include "geometry/point.h"

namespace scuba {

/// Closed axis-aligned rectangle [min_x, max_x] x [min_y, max_y].
/// A rectangle with min > max on either axis is empty.
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

  /// Rectangle of the given width/height centered at `c`.
  static constexpr Rect Centered(Point c, double width, double height) {
    return {c.x - width / 2, c.y - height / 2, c.x + width / 2, c.y + height / 2};
  }

  constexpr bool Empty() const { return min_x > max_x || min_y > max_y; }
  constexpr double Width() const { return max_x - min_x; }
  constexpr double Height() const { return max_y - min_y; }
  constexpr double Area() const { return Empty() ? 0.0 : Width() * Height(); }
  constexpr Point Center() const {
    return {(min_x + max_x) / 2, (min_y + max_y) / 2};
  }

  constexpr bool Contains(Point p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  constexpr bool Contains(const Rect& r) const {
    return !r.Empty() && r.min_x >= min_x && r.max_x <= max_x &&
           r.min_y >= min_y && r.max_y <= max_y;
  }
};

/// True iff the closed rectangles share at least one point.
constexpr bool Intersects(const Rect& a, const Rect& b) {
  if (a.Empty() || b.Empty()) return false;
  return a.min_x <= b.max_x && b.min_x <= a.max_x && a.min_y <= b.max_y &&
         b.min_y <= a.max_y;
}

/// Closest point of `r` to `p` (p itself when inside).
constexpr Point ClosestPointInRect(const Rect& r, Point p) {
  return {std::clamp(p.x, r.min_x, r.max_x), std::clamp(p.y, r.min_y, r.max_y)};
}

/// True iff disk `c` and rectangle `r` share at least one point.
constexpr bool Intersects(const Rect& r, const Circle& c) {
  if (r.Empty()) return false;
  return SquaredDistance(ClosestPointInRect(r, c.center), c.center) <=
         c.radius * c.radius;
}

/// Smallest rectangle containing both inputs (empty inputs are ignored).
constexpr Rect Union(const Rect& a, const Rect& b) {
  if (a.Empty()) return b;
  if (b.Empty()) return a;
  return {std::min(a.min_x, b.min_x), std::min(a.min_y, b.min_y),
          std::max(a.max_x, b.max_x), std::max(a.max_y, b.max_y)};
}

/// Intersection of the two rectangles (possibly empty).
constexpr Rect Intersection(const Rect& a, const Rect& b) {
  return {std::max(a.min_x, b.min_x), std::max(a.min_y, b.min_y),
          std::min(a.max_x, b.max_x), std::min(a.max_y, b.max_y)};
}

}  // namespace scuba

#endif  // SCUBA_GEOMETRY_RECT_H_
