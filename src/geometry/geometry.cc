#include <cstdio>

#include "geometry/point.h"

namespace scuba {

std::string Vec2::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "<%.6g, %.6g>", x, y);
  return buf;
}

std::string Point::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.6g, %.6g)", x, y);
  return buf;
}

}  // namespace scuba
