// Planar points and vectors.
//
// SCUBA operates on a 2-D data space in "spatial units" (paper §6.1: thresholds
// and speeds are expressed in spatial units / time units). Point is a location,
// Vec2 a displacement (e.g. a cluster's velocity or transformation vector).

#ifndef SCUBA_GEOMETRY_POINT_H_
#define SCUBA_GEOMETRY_POINT_H_

#include <cmath>
#include <string>

namespace scuba {

/// Displacement / direction in the plane.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 v, double s) { return {v.x * s, v.y * s}; }
  friend constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }
  friend constexpr Vec2 operator/(Vec2 v, double s) { return {v.x / s, v.y / s}; }
  Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
  friend constexpr bool operator==(Vec2, Vec2) = default;

  constexpr double SquaredNorm() const { return x * x + y * y; }
  double Norm() const { return std::sqrt(SquaredNorm()); }

  /// Unit vector in this direction; returns {0,0} for the zero vector.
  Vec2 Normalized() const {
    double n = Norm();
    if (n == 0.0) return {0.0, 0.0};
    return {x / n, y / n};
  }

  std::string ToString() const;
};

/// A location in the plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Point operator+(Point p, Vec2 v) { return {p.x + v.x, p.y + v.y}; }
  friend constexpr Point operator-(Point p, Vec2 v) { return {p.x - v.x, p.y - v.y}; }
  friend constexpr Vec2 operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  Point& operator+=(Vec2 v) { x += v.x; y += v.y; return *this; }
  friend constexpr bool operator==(Point, Point) = default;

  std::string ToString() const;
};

/// Squared Euclidean distance (cheap; preferred in predicates).
constexpr double SquaredDistance(Point a, Point b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance.
inline double Distance(Point a, Point b) { return std::sqrt(SquaredDistance(a, b)); }

/// Linear interpolation: t=0 -> a, t=1 -> b.
constexpr Point Lerp(Point a, Point b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

/// Component-wise approximate equality with absolute tolerance eps.
inline bool ApproxEqual(Point a, Point b, double eps = 1e-9) {
  return std::fabs(a.x - b.x) <= eps && std::fabs(a.y - b.y) <= eps;
}

}  // namespace scuba

#endif  // SCUBA_GEOMETRY_POINT_H_
