// Circles and circle predicates.
//
// Moving clusters are circular regions (centroid + radius); the join-between
// step (paper Algorithm 2) is a circle-overlap test. Note: the paper's
// pseudo-code compares dist^2 against (R_L - R_R)^2, which is a containment
// test and would wrongly prune genuinely overlapping clusters. We implement
// the correct overlap predicate dist^2 <= (R_L + R_R)^2 (see DESIGN.md §2).

#ifndef SCUBA_GEOMETRY_CIRCLE_H_
#define SCUBA_GEOMETRY_CIRCLE_H_

#include "geometry/point.h"

namespace scuba {

/// A closed disk: center plus radius (radius >= 0; radius 0 is a point).
struct Circle {
  Point center;
  double radius = 0.0;

  friend constexpr bool operator==(const Circle&, const Circle&) = default;

  /// True iff `p` lies inside or on the boundary.
  constexpr bool Contains(Point p) const {
    return SquaredDistance(center, p) <= radius * radius;
  }
};

/// True iff the closed disks share at least one point (touching counts).
constexpr bool Overlaps(const Circle& a, const Circle& b) {
  double rsum = a.radius + b.radius;
  return SquaredDistance(a.center, b.center) <= rsum * rsum;
}

/// True iff disk `inner` lies entirely within disk `outer`.
/// (This is the predicate the paper's Algorithm 2 pseudo-code actually
/// computes; kept for the regression test pinning the deviation.)
constexpr bool ContainsCircle(const Circle& outer, const Circle& inner) {
  double dr = outer.radius - inner.radius;
  if (dr < 0.0) return false;
  return SquaredDistance(outer.center, inner.center) <= dr * dr;
}

}  // namespace scuba

#endif  // SCUBA_GEOMETRY_CIRCLE_H_
