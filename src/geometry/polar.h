// Polar coordinates relative to a pole.
//
// Paper §3.1: "Individual positions of moving objects and queries inside a
// cluster are represented in a relative form using polar coordinates (with the
// pole at the centroid of the cluster)." PolarCoord stores (r, theta) with
// theta the counterclockwise angle from the x-axis, and converts to/from
// absolute points given the pole.

#ifndef SCUBA_GEOMETRY_POLAR_H_
#define SCUBA_GEOMETRY_POLAR_H_

#include <cmath>

#include "geometry/point.h"

namespace scuba {

/// Relative position in polar form about an externally known pole.
struct PolarCoord {
  double r = 0.0;      ///< Radial distance from the pole (>= 0).
  double theta = 0.0;  ///< CCW angle from the +x axis, radians in [-pi, pi].

  friend constexpr bool operator==(PolarCoord, PolarCoord) = default;
};

/// Polar coordinates of `p` about `pole`. The origin maps to r=0, theta=0.
inline PolarCoord ToPolar(Point p, Point pole) {
  Vec2 d = p - pole;
  double r = d.Norm();
  if (r == 0.0) return {0.0, 0.0};
  return {r, std::atan2(d.y, d.x)};
}

/// Absolute point for polar coordinates `pc` about `pole`.
inline Point FromPolar(PolarCoord pc, Point pole) {
  return {pole.x + pc.r * std::cos(pc.theta), pole.y + pc.r * std::sin(pc.theta)};
}

}  // namespace scuba

#endif  // SCUBA_GEOMETRY_POLAR_H_
