#include "stream/pipeline.h"

#include "common/check.h"

namespace scuba {

Result<StreamPipeline> StreamPipeline::Create(ObjectSimulator* simulator,
                                              QueryProcessor* engine,
                                              Timestamp delta,
                                              double update_fraction) {
  if (simulator == nullptr || engine == nullptr) {
    return Status::InvalidArgument("simulator and engine must be non-null");
  }
  if (update_fraction < 0.0 || update_fraction > 1.0) {
    return Status::InvalidArgument("update_fraction must be in [0, 1]");
  }
  Result<SimulationClock> clock = SimulationClock::Create(delta);
  if (!clock.ok()) return clock.status();
  return StreamPipeline(simulator, engine, std::move(clock).value(),
                        update_fraction);
}

StreamPipeline::StreamPipeline(ObjectSimulator* simulator,
                               QueryProcessor* engine, SimulationClock clock,
                               double update_fraction)
    : simulator_(simulator),
      engine_(engine),
      clock_(clock),
      update_fraction_(update_fraction) {}

Status StreamPipeline::RunTicks(int ticks, const ResultSink& sink) {
  ResultSet results;
  for (int i = 0; i < ticks; ++i) {
    simulator_->Step();
    bool evaluate = clock_.Advance();
    SCUBA_CHECK_MSG(simulator_->now() == clock_.now(),
                    "simulator and clock diverged");
    object_buffer_.clear();
    query_buffer_.clear();
    simulator_->EmitUpdates(update_fraction_, &object_buffer_, &query_buffer_);
    // One tick = one batch: engines with a parallel ingest path classify the
    // whole tick at once; the default implementation loops per update.
    SCUBA_RETURN_IF_ERROR(engine_->IngestBatch(object_buffer_, query_buffer_));
    if (evaluate) {
      SCUBA_RETURN_IF_ERROR(engine_->Evaluate(clock_.now(), &results));
      ++evaluations_;
      if (sink) sink(clock_.now(), results);
    }
  }
  return Status::OK();
}

Status ReplayTrace(const Trace& trace, QueryProcessor* engine, Timestamp delta,
                   const ResultSink& sink) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must be non-null");
  }
  if (delta <= 0) {
    return Status::InvalidArgument("delta must be positive");
  }
  ResultSet results;
  for (size_t i = 0; i < trace.TickCount(); ++i) {
    const TickBatch& batch = trace.batch(i);
    SCUBA_RETURN_IF_ERROR(
        engine->IngestBatch(batch.object_updates, batch.query_updates));
    if ((i + 1) % static_cast<size_t>(delta) == 0) {
      SCUBA_RETURN_IF_ERROR(engine->Evaluate(batch.time, &results));
      if (sink) sink(batch.time, results);
    }
  }
  return Status::OK();
}

}  // namespace scuba
