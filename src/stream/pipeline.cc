#include "stream/pipeline.h"

#include <limits>
#include <string>

#include "common/check.h"

namespace scuba {

Result<StreamPipeline> StreamPipeline::Create(ObjectSimulator* simulator,
                                              QueryProcessor* engine,
                                              Timestamp delta,
                                              double update_fraction,
                                              UpdateValidator* validator,
                                              DurabilitySink* durability) {
  if (simulator == nullptr || engine == nullptr) {
    return Status::InvalidArgument("simulator and engine must be non-null");
  }
  // Negated containment so NaN (which fails every comparison) is rejected
  // rather than slipping past a `< 0 || > 1` range test.
  if (!(update_fraction >= 0.0 && update_fraction <= 1.0)) {
    return Status::InvalidArgument("update_fraction must be in [0, 1]");
  }
  Result<SimulationClock> clock = SimulationClock::Create(delta);
  if (!clock.ok()) return clock.status();
  return StreamPipeline(simulator, engine, std::move(clock).value(),
                        update_fraction, validator, durability);
}

StreamPipeline::StreamPipeline(ObjectSimulator* simulator,
                               QueryProcessor* engine, SimulationClock clock,
                               double update_fraction,
                               UpdateValidator* validator,
                               DurabilitySink* durability)
    : simulator_(simulator),
      engine_(engine),
      clock_(clock),
      update_fraction_(update_fraction),
      validator_(validator),
      durability_(durability) {}

Status StreamPipeline::RunTicks(int ticks, const ResultSink& sink) {
  ResultSet results;
  for (int i = 0; i < ticks; ++i) {
    simulator_->Step();
    bool evaluate = clock_.Advance();
    SCUBA_CHECK_MSG(simulator_->now() == clock_.now(),
                    "simulator and clock diverged");
    object_buffer_.clear();
    query_buffer_.clear();
    simulator_->EmitUpdates(update_fraction_, &object_buffer_, &query_buffer_);
    if (validator_ != nullptr) {
      SCUBA_RETURN_IF_ERROR(validator_->ScreenBatch(
          clock_.now(), &object_buffer_, &query_buffer_));
    }
    if (durability_ != nullptr) {
      // Write-ahead: the batch becomes durable before it mutates the engine.
      SCUBA_RETURN_IF_ERROR(durability_->LogBatch(
          clock_.now(), evaluate, object_buffer_, query_buffer_));
    }
    // One tick = one batch: engines with a parallel ingest path classify the
    // whole tick at once; the default implementation loops per update.
    SCUBA_RETURN_IF_ERROR(engine_->IngestBatch(object_buffer_, query_buffer_));
    if (evaluate) {
      SCUBA_RETURN_IF_ERROR(engine_->Evaluate(clock_.now(), &results));
      ++evaluations_;
      if (sink) sink(clock_.now(), results);
      if (durability_ != nullptr) {
        SCUBA_RETURN_IF_ERROR(durability_->OnRoundComplete());
      }
    }
  }
  return Status::OK();
}

Status ReplayTrace(const Trace& trace, QueryProcessor* engine, Timestamp delta,
                   const ResultSink& sink, UpdateValidator* validator,
                   DurabilitySink* durability, size_t start_index) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must be non-null");
  }
  if (delta <= 0) {
    return Status::InvalidArgument("delta must be positive");
  }
  if (start_index > trace.TickCount()) {
    return Status::OutOfRange("start_index " + std::to_string(start_index) +
                              " exceeds the trace's " +
                              std::to_string(trace.TickCount()) + " batches");
  }
  const bool resync =
      validator != nullptr &&
      validator->config().policy == BadUpdatePolicy::kRepair;
  // Resuming mid-trace keeps the monotonicity floor anchored at the last
  // batch the engine already saw (as recorded in the trace; a recovery resume
  // implies a clean, strictly increasing prefix).
  Timestamp prev_time = start_index == 0
                            ? std::numeric_limits<Timestamp>::min()
                            : trace.batch(start_index - 1).time;
  ResultSet results;
  std::vector<LocationUpdate> objects;
  std::vector<QueryUpdate> queries;
  for (size_t i = start_index; i < trace.TickCount(); ++i) {
    const TickBatch& batch = trace.batch(i);
    // Batches are defined as consecutive ticks, so their stamps must strictly
    // increase; a regressed batch either fails the replay or — under kRepair —
    // is resynced to the tick after its predecessor.
    Timestamp batch_time = batch.time;
    if (batch_time <= prev_time) {
      if (!resync) {
        return Status::FailedPrecondition(
            "trace batch " + std::to_string(i) + " time " +
            std::to_string(batch_time) + " does not advance past " +
            std::to_string(prev_time));
      }
      batch_time = prev_time + 1;
    }
    prev_time = batch_time;
    // Round boundaries follow the global batch index so a resumed replay
    // evaluates at exactly the ticks the uninterrupted run did.
    const bool evaluate = (i + 1) % static_cast<size_t>(delta) == 0;
    if (validator != nullptr) {
      objects = batch.object_updates;
      queries = batch.query_updates;
      SCUBA_RETURN_IF_ERROR(
          validator->ScreenBatch(batch_time, &objects, &queries));
      if (durability != nullptr) {
        SCUBA_RETURN_IF_ERROR(
            durability->LogBatch(batch_time, evaluate, objects, queries));
      }
      SCUBA_RETURN_IF_ERROR(engine->IngestBatch(objects, queries));
    } else {
      if (durability != nullptr) {
        SCUBA_RETURN_IF_ERROR(durability->LogBatch(batch_time, evaluate,
                                                   batch.object_updates,
                                                   batch.query_updates));
      }
      SCUBA_RETURN_IF_ERROR(
          engine->IngestBatch(batch.object_updates, batch.query_updates));
    }
    if (evaluate) {
      SCUBA_RETURN_IF_ERROR(engine->Evaluate(batch_time, &results));
      if (sink) sink(batch_time, results);
      if (durability != nullptr) {
        SCUBA_RETURN_IF_ERROR(durability->OnRoundComplete());
      }
    }
  }
  return Status::OK();
}

}  // namespace scuba
