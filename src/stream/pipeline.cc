#include "stream/pipeline.h"

#include <limits>
#include <string>

#include "common/check.h"

namespace scuba {

Result<StreamPipeline> StreamPipeline::Create(ObjectSimulator* simulator,
                                              QueryProcessor* engine,
                                              Timestamp delta,
                                              double update_fraction,
                                              UpdateValidator* validator) {
  if (simulator == nullptr || engine == nullptr) {
    return Status::InvalidArgument("simulator and engine must be non-null");
  }
  // Negated containment so NaN (which fails every comparison) is rejected
  // rather than slipping past a `< 0 || > 1` range test.
  if (!(update_fraction >= 0.0 && update_fraction <= 1.0)) {
    return Status::InvalidArgument("update_fraction must be in [0, 1]");
  }
  Result<SimulationClock> clock = SimulationClock::Create(delta);
  if (!clock.ok()) return clock.status();
  return StreamPipeline(simulator, engine, std::move(clock).value(),
                        update_fraction, validator);
}

StreamPipeline::StreamPipeline(ObjectSimulator* simulator,
                               QueryProcessor* engine, SimulationClock clock,
                               double update_fraction,
                               UpdateValidator* validator)
    : simulator_(simulator),
      engine_(engine),
      clock_(clock),
      update_fraction_(update_fraction),
      validator_(validator) {}

Status StreamPipeline::RunTicks(int ticks, const ResultSink& sink) {
  ResultSet results;
  for (int i = 0; i < ticks; ++i) {
    simulator_->Step();
    bool evaluate = clock_.Advance();
    SCUBA_CHECK_MSG(simulator_->now() == clock_.now(),
                    "simulator and clock diverged");
    object_buffer_.clear();
    query_buffer_.clear();
    simulator_->EmitUpdates(update_fraction_, &object_buffer_, &query_buffer_);
    if (validator_ != nullptr) {
      SCUBA_RETURN_IF_ERROR(validator_->ScreenBatch(
          clock_.now(), &object_buffer_, &query_buffer_));
    }
    // One tick = one batch: engines with a parallel ingest path classify the
    // whole tick at once; the default implementation loops per update.
    SCUBA_RETURN_IF_ERROR(engine_->IngestBatch(object_buffer_, query_buffer_));
    if (evaluate) {
      SCUBA_RETURN_IF_ERROR(engine_->Evaluate(clock_.now(), &results));
      ++evaluations_;
      if (sink) sink(clock_.now(), results);
    }
  }
  return Status::OK();
}

Status ReplayTrace(const Trace& trace, QueryProcessor* engine, Timestamp delta,
                   const ResultSink& sink, UpdateValidator* validator) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must be non-null");
  }
  if (delta <= 0) {
    return Status::InvalidArgument("delta must be positive");
  }
  const bool resync =
      validator != nullptr &&
      validator->config().policy == BadUpdatePolicy::kRepair;
  Timestamp prev_time = std::numeric_limits<Timestamp>::min();
  ResultSet results;
  std::vector<LocationUpdate> objects;
  std::vector<QueryUpdate> queries;
  for (size_t i = 0; i < trace.TickCount(); ++i) {
    const TickBatch& batch = trace.batch(i);
    // Batches are defined as consecutive ticks, so their stamps must strictly
    // increase; a regressed batch either fails the replay or — under kRepair —
    // is resynced to the tick after its predecessor.
    Timestamp batch_time = batch.time;
    if (batch_time <= prev_time) {
      if (!resync) {
        return Status::FailedPrecondition(
            "trace batch " + std::to_string(i) + " time " +
            std::to_string(batch_time) + " does not advance past " +
            std::to_string(prev_time));
      }
      batch_time = prev_time + 1;
    }
    prev_time = batch_time;
    if (validator != nullptr) {
      objects = batch.object_updates;
      queries = batch.query_updates;
      SCUBA_RETURN_IF_ERROR(
          validator->ScreenBatch(batch_time, &objects, &queries));
      SCUBA_RETURN_IF_ERROR(engine->IngestBatch(objects, queries));
    } else {
      SCUBA_RETURN_IF_ERROR(
          engine->IngestBatch(batch.object_updates, batch.query_updates));
    }
    if ((i + 1) % static_cast<size_t>(delta) == 0) {
      SCUBA_RETURN_IF_ERROR(engine->Evaluate(batch_time, &results));
      if (sink) sink(batch_time, results);
    }
  }
  return Status::OK();
}

}  // namespace scuba
