// FaultInjector: deterministic corruption of update streams, for proving the
// stream-hardening layer (UpdateValidator, ScubaEngine::AuditInvariants)
// catches every fault class it claims to (docs/ARCHITECTURE.md §7).
//
// The injector decorates batches on their way to an engine: per-tuple faults
// (NaN coordinates, off-map teleports, negative speeds, zero ranges, negative
// or stuttering timestamps, unknown destinations, drops) corrupt individual
// tuples, per-batch faults reorder the batch or append duplicate bursts. All
// randomness flows through one seeded Rng, so a (seed, plan) pair reproduces
// the exact same dirty stream every run.
//
// Alongside the corrupted batch the injector can emit the *reference* batch:
// the tuples a perfect validator must admit, in the order it must admit them.
// Ordering discipline makes that reference exact:
//   1. reordering shuffles the batch FIRST (both streams see the new order);
//   2. per-tuple faults then corrupt or drop tuples in place;
//   3. duplicates and bursts are appended at the batch END, so each copy's
//      original precedes it and the validator's duplicate check removes
//      exactly the appended copies.
// Hence validator(corrupted) == reference tuple-for-tuple, and an engine fed
// the corrupted stream through a quarantining validator must reach a state
// bit-identical to one fed the reference stream directly.

#ifndef SCUBA_STREAM_FAULT_INJECTOR_H_
#define SCUBA_STREAM_FAULT_INJECTOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "gen/update.h"
#include "geometry/rect.h"

namespace scuba {

/// Every way the injector can damage a stream. Per-tuple classes map 1:1
/// onto a validator RejectReason, except kDrop (the tuple simply vanishes;
/// nothing to reject) and kReorder (a batch permutation; no tuple is bad).
/// kDuplicate and kBurst both surface as RejectReason::kDuplicateInBatch.
enum class FaultClass : uint8_t {
  kCorruptCoordinate = 0,  ///< NaN position -> kNonFinite.
  kOffMapTeleport,         ///< Position far outside the region -> kOffMap.
  kNegativeSpeed,          ///< speed < 0 -> kBadSpeed.
  kBadRange,               ///< Query range zeroed -> kBadRange (queries only).
  kNegativeTimestamp,      ///< time < 0 -> kNegativeTime.
  kStaleTimestamp,         ///< time behind the batch tick -> kTimeRegression.
  kUnknownDestination,     ///< Bogus dest_node -> kUnknownDestNode.
  kDrop,                   ///< Tuple removed from the stream entirely.
  kDuplicate,              ///< Copy of a clean tuple appended at batch end.
  kReorder,                ///< Batch shuffled (counted once per batch).
  kBurst,                  ///< burst_size copies of one clean tuple appended.
};

inline constexpr size_t kFaultClassCount = 11;

/// Stable lowercase name ("corrupt-coordinate", "burst", ...).
std::string_view FaultClassName(FaultClass fault);

/// Injection probabilities. Per-tuple classes roll independently in enum
/// order and the first hit wins, so each tuple carries at most one fault;
/// kReorder/kBurst roll once per batch.
struct FaultPlan {
  double corrupt_coordinate = 0.0;
  double off_map_teleport = 0.0;
  double negative_speed = 0.0;
  double bad_range = 0.0;
  double negative_timestamp = 0.0;
  double stale_timestamp = 0.0;
  double unknown_destination = 0.0;
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double burst = 0.0;
  uint32_t burst_size = 8;

  /// Map region off-map teleports jump out of. Required (non-empty) when
  /// off_map_teleport > 0.
  Rect region{0.0, 0.0, 0.0, 0.0};
  /// Road-network node count unknown destinations are pushed past. When 0,
  /// unknown destinations use the kInvalidNodeId sentinel instead.
  uint32_t node_count = 0;

  /// Every fault class at probability `p` (burst/reorder included).
  static FaultPlan AllFaults(double p, const Rect& region, uint32_t node_count);
};

struct FaultStats {
  uint64_t tuples_seen = 0;
  uint64_t batches = 0;
  uint64_t injected[kFaultClassCount] = {};

  uint64_t Injected(FaultClass fault) const {
    return injected[static_cast<size_t>(fault)];
  }
  uint64_t TotalInjected() const;
  /// "seen=N injected=M corrupt-coordinate=2 ..." (nonzero classes only).
  std::string ToString() const;
};

class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, uint64_t seed);

  /// Corrupts one batch in place. `batch_time` is the tick the batch belongs
  /// to; stale-timestamp faults need it positive (they regress a tuple into
  /// [0, batch_time) and are skipped at tick 0). When `reference_objects` /
  /// `reference_queries` are non-null they receive the admissible tuples in
  /// admission order (see file comment); pass nullptr when only the dirty
  /// stream is wanted.
  void CorruptBatch(Timestamp batch_time,
                    std::vector<LocationUpdate>* objects,
                    std::vector<QueryUpdate>* queries,
                    std::vector<LocationUpdate>* reference_objects,
                    std::vector<QueryUpdate>* reference_queries);

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

 private:
  /// Rolls the per-tuple classes in enum order; nullopt = tuple stays clean.
  /// `is_query` gates kBadRange.
  std::optional<FaultClass> RollTupleFault(Timestamp batch_time, bool is_query);

  /// Applies a per-tuple fault to the common fields; kBadRange is handled by
  /// the query-side caller.
  template <typename UpdateT>
  void ApplyTupleFault(FaultClass fault, Timestamp batch_time, UpdateT* u);

  FaultPlan plan_;
  FaultStats stats_;
  Rng rng_;
};

}  // namespace scuba

#endif  // SCUBA_STREAM_FAULT_INJECTOR_H_
