// SimulationClock: discrete-time bookkeeping for the stream shell — tracks
// the current tick and decides when the periodic evaluation (every Delta
// ticks, paper §4.2) is due.

#ifndef SCUBA_STREAM_CLOCK_H_
#define SCUBA_STREAM_CLOCK_H_

#include "common/status.h"
#include "common/types.h"

namespace scuba {

class SimulationClock {
 public:
  /// `delta` is the evaluation interval in ticks (> 0, checked by factory).
  static Result<SimulationClock> Create(Timestamp delta);

  Timestamp now() const { return now_; }
  Timestamp delta() const { return delta_; }

  /// Advances one tick; returns true when an evaluation is due at the new
  /// time (i.e. every delta-th tick).
  bool Advance();

  /// Ticks until the next evaluation boundary.
  Timestamp TicksUntilEvaluation() const;

 private:
  explicit SimulationClock(Timestamp delta) : delta_(delta) {}

  Timestamp delta_;
  Timestamp now_ = 0;
};

}  // namespace scuba

#endif  // SCUBA_STREAM_CLOCK_H_
