#include "stream/clock.h"

namespace scuba {

Result<SimulationClock> SimulationClock::Create(Timestamp delta) {
  if (delta <= 0) {
    return Status::InvalidArgument("evaluation interval must be positive");
  }
  return SimulationClock(delta);
}

bool SimulationClock::Advance() {
  ++now_;
  return now_ % delta_ == 0;
}

Timestamp SimulationClock::TicksUntilEvaluation() const {
  Timestamp rem = now_ % delta_;
  return rem == 0 ? delta_ : delta_ - rem;
}

}  // namespace scuba
