// StreamPipeline: the minimal stream-execution shell standing in for the
// CAPE system the paper implemented SCUBA inside (DESIGN.md substitutions).
//
// Wires an update source (live ObjectSimulator or recorded Trace) to a
// QueryProcessor: each tick the source's updates are ingested; every Delta
// ticks the engine evaluates and the result sink is invoked.

#ifndef SCUBA_STREAM_PIPELINE_H_
#define SCUBA_STREAM_PIPELINE_H_

#include <functional>
#include <span>

#include "core/query_processor.h"
#include "gen/object_simulator.h"
#include "gen/trace.h"
#include "stream/clock.h"
#include "stream/update_validator.h"

namespace scuba {

/// Called after each evaluation round with the evaluation time and results.
using ResultSink = std::function<void(Timestamp, const ResultSet&)>;

/// Durability hooks the stream drivers call around ingestion. Implemented by
/// the persist library's DurabilityManager (WAL append + periodic snapshot
/// checkpoints); declared here as an abstract interface so the stream layer
/// stays independent of persistence.
class DurabilitySink {
 public:
  virtual ~DurabilitySink() = default;

  /// Called with each batch AFTER validator screening and BEFORE ingestion —
  /// the write-ahead contract: a batch becomes durable first, then mutates
  /// the engine. `evaluate_after` records whether this batch closes an
  /// evaluation round, so WAL replay re-evaluates at the same boundaries.
  /// A failure (IO error, injected crash) aborts the run before ingestion.
  virtual Status LogBatch(Timestamp batch_time, bool evaluate_after,
                          std::span<const LocationUpdate> objects,
                          std::span<const QueryUpdate> queries) = 0;

  /// Called after each completed evaluation round (post-Evaluate, post-sink);
  /// the checkpoint cadence hook.
  virtual Status OnRoundComplete() = 0;
};

class StreamPipeline {
 public:
  /// Live mode: advances `simulator` itself. Both pointers must outlive the
  /// pipeline; delta must be positive; update_fraction must be a real number
  /// in [0, 1] (NaN is rejected, not silently admitted).
  ///
  /// `validator` (optional, must outlive the pipeline) screens every tick's
  /// batch before ingestion with the tick time as the regression floor; null
  /// preserves the unscreened legacy path exactly.
  ///
  /// `durability` (optional, must outlive the pipeline) receives every
  /// screened batch before ingestion and a round-complete signal after each
  /// evaluation (see DurabilitySink).
  static Result<StreamPipeline> Create(ObjectSimulator* simulator,
                                       QueryProcessor* engine, Timestamp delta,
                                       double update_fraction = 1.0,
                                       UpdateValidator* validator = nullptr,
                                       DurabilitySink* durability = nullptr);

  /// Runs `ticks` simulation ticks; evaluates every delta-th tick and feeds
  /// `sink` (may be null). Stops and returns the first engine error.
  Status RunTicks(int ticks, const ResultSink& sink = nullptr);

  Timestamp now() const { return clock_.now(); }
  uint64_t evaluations() const { return evaluations_; }

 private:
  StreamPipeline(ObjectSimulator* simulator, QueryProcessor* engine,
                 SimulationClock clock, double update_fraction,
                 UpdateValidator* validator, DurabilitySink* durability);

  ObjectSimulator* simulator_;
  QueryProcessor* engine_;
  SimulationClock clock_;
  double update_fraction_;
  UpdateValidator* validator_;  ///< Optional screen; null = legacy path.
  DurabilitySink* durability_;  ///< Optional WAL/checkpoint hooks.
  uint64_t evaluations_ = 0;
  std::vector<LocationUpdate> object_buffer_;
  std::vector<QueryUpdate> query_buffer_;
};

/// Trace mode: replays a recorded trace into `engine`, evaluating every
/// delta-th batch (batches are assumed to be consecutive ticks). Returns the
/// first engine error. `sink` may be null.
///
/// Batch timestamps must strictly increase. A non-monotonic batch fails with
/// kFailedPrecondition — unless `validator` is non-null and configured with
/// BadUpdatePolicy::kRepair, in which case the batch is resynced to one tick
/// past its predecessor and replay continues. A non-null validator also
/// screens every batch (with the batch's effective time as the regression
/// floor) before it reaches the engine.
///
/// `durability` (optional) receives every screened batch before ingestion
/// and a round-complete signal after each evaluation. `start_index` skips the
/// leading batches (recovery resumes a trace mid-stream after restoring a
/// checkpoint: the skipped prefix is already inside the engine). Round
/// boundaries stay aligned to the global batch index, exactly as if the
/// prefix had been replayed here.
Status ReplayTrace(const Trace& trace, QueryProcessor* engine, Timestamp delta,
                   const ResultSink& sink = nullptr,
                   UpdateValidator* validator = nullptr,
                   DurabilitySink* durability = nullptr,
                   size_t start_index = 0);

}  // namespace scuba

#endif  // SCUBA_STREAM_PIPELINE_H_
