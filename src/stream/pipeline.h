// StreamPipeline: the minimal stream-execution shell standing in for the
// CAPE system the paper implemented SCUBA inside (DESIGN.md substitutions).
//
// Wires an update source (live ObjectSimulator or recorded Trace) to a
// QueryProcessor: each tick the source's updates are ingested; every Delta
// ticks the engine evaluates and the result sink is invoked.

#ifndef SCUBA_STREAM_PIPELINE_H_
#define SCUBA_STREAM_PIPELINE_H_

#include <functional>

#include "core/query_processor.h"
#include "gen/object_simulator.h"
#include "gen/trace.h"
#include "stream/clock.h"
#include "stream/update_validator.h"

namespace scuba {

/// Called after each evaluation round with the evaluation time and results.
using ResultSink = std::function<void(Timestamp, const ResultSet&)>;

class StreamPipeline {
 public:
  /// Live mode: advances `simulator` itself. Both pointers must outlive the
  /// pipeline; delta must be positive; update_fraction must be a real number
  /// in [0, 1] (NaN is rejected, not silently admitted).
  ///
  /// `validator` (optional, must outlive the pipeline) screens every tick's
  /// batch before ingestion with the tick time as the regression floor; null
  /// preserves the unscreened legacy path exactly.
  static Result<StreamPipeline> Create(ObjectSimulator* simulator,
                                       QueryProcessor* engine, Timestamp delta,
                                       double update_fraction = 1.0,
                                       UpdateValidator* validator = nullptr);

  /// Runs `ticks` simulation ticks; evaluates every delta-th tick and feeds
  /// `sink` (may be null). Stops and returns the first engine error.
  Status RunTicks(int ticks, const ResultSink& sink = nullptr);

  Timestamp now() const { return clock_.now(); }
  uint64_t evaluations() const { return evaluations_; }

 private:
  StreamPipeline(ObjectSimulator* simulator, QueryProcessor* engine,
                 SimulationClock clock, double update_fraction,
                 UpdateValidator* validator);

  ObjectSimulator* simulator_;
  QueryProcessor* engine_;
  SimulationClock clock_;
  double update_fraction_;
  UpdateValidator* validator_;  ///< Optional screen; null = legacy path.
  uint64_t evaluations_ = 0;
  std::vector<LocationUpdate> object_buffer_;
  std::vector<QueryUpdate> query_buffer_;
};

/// Trace mode: replays a recorded trace into `engine`, evaluating every
/// delta-th batch (batches are assumed to be consecutive ticks). Returns the
/// first engine error. `sink` may be null.
///
/// Batch timestamps must strictly increase. A non-monotonic batch fails with
/// kFailedPrecondition — unless `validator` is non-null and configured with
/// BadUpdatePolicy::kRepair, in which case the batch is resynced to one tick
/// past its predecessor and replay continues. A non-null validator also
/// screens every batch (with the batch's effective time as the regression
/// floor) before it reaches the engine.
Status ReplayTrace(const Trace& trace, QueryProcessor* engine, Timestamp delta,
                   const ResultSink& sink = nullptr,
                   UpdateValidator* validator = nullptr);

}  // namespace scuba

#endif  // SCUBA_STREAM_PIPELINE_H_
