#include "stream/update_validator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/memory_usage.h"

namespace scuba {

std::string_view RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNonFinite:
      return "non-finite";
    case RejectReason::kZeroId:
      return "zero-id";
    case RejectReason::kDuplicateInBatch:
      return "duplicate-in-batch";
    case RejectReason::kBadSpeed:
      return "bad-speed";
    case RejectReason::kBadRange:
      return "bad-range";
    case RejectReason::kNegativeTime:
      return "negative-time";
    case RejectReason::kTimeRegression:
      return "time-regression";
    case RejectReason::kUnknownDestNode:
      return "unknown-dest";
    case RejectReason::kOffMap:
      return "off-map";
  }
  return "unknown";
}

StatusCode RejectReasonStatusCode(RejectReason reason) {
  switch (reason) {
    case RejectReason::kOffMap:
      return StatusCode::kOutOfRange;
    case RejectReason::kDuplicateInBatch:
      return StatusCode::kAlreadyExists;
    case RejectReason::kTimeRegression:
      return StatusCode::kFailedPrecondition;
    case RejectReason::kUnknownDestNode:
      return StatusCode::kNotFound;
    case RejectReason::kNonFinite:
    case RejectReason::kZeroId:
    case RejectReason::kBadSpeed:
    case RejectReason::kBadRange:
    case RejectReason::kNegativeTime:
      return StatusCode::kInvalidArgument;
  }
  return StatusCode::kInvalidArgument;
}

QuarantineLog::QuarantineLog(size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

void QuarantineLog::Push(QuarantinedUpdate entry) {
  ++total_;
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
    return;
  }
  ring_[next_] = std::move(entry);
  next_ = (next_ + 1) % capacity_;
}

std::vector<QuarantinedUpdate> QuarantineLog::Snapshot() const {
  std::vector<QuarantinedUpdate> out;
  out.reserve(ring_.size());
  // Once wrapped, next_ points at the oldest retained entry.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void QuarantineLog::Clear() {
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

size_t QuarantineLog::EstimateMemoryUsage() const {
  size_t bytes = VectorMemoryUsage(ring_);
  for (const QuarantinedUpdate& entry : ring_) {
    bytes += StringMemoryUsage(entry.detail);
  }
  return bytes;
}

uint64_t ValidatorStats::TotalRejected() const {
  uint64_t sum = 0;
  for (uint64_t r : rejected) sum += r;
  return sum;
}

UpdateValidator::UpdateValidator(const ValidatorConfig& config)
    : config_(config), log_(config.quarantine_capacity) {}

bool UpdateValidator::Screen(Timestamp batch_time, EntityKind kind,
                             uint32_t id, Point* position, Timestamp* time,
                             double* speed, NodeId dest_node,
                             Point dest_position, double* range_width,
                             double* range_height, RejectReason* reason) {
  const bool repair = config_.policy == BadUpdatePolicy::kRepair;
  auto fail = [&](RejectReason r) {
    *reason = r;
    return false;
  };

  if (!std::isfinite(position->x) || !std::isfinite(position->y) ||
      !std::isfinite(dest_position.x) || !std::isfinite(dest_position.y) ||
      !std::isfinite(*speed) ||
      (range_width != nullptr &&
       (!std::isfinite(*range_width) || !std::isfinite(*range_height)))) {
    return fail(RejectReason::kNonFinite);
  }
  if (config_.reject_zero_ids && id == 0) return fail(RejectReason::kZeroId);
  const EntityRef ref{kind, id};
  if (config_.check_duplicates_in_batch && seen_in_batch_.contains(ref)) {
    return fail(RejectReason::kDuplicateInBatch);
  }
  bool fixed = false;
  if (*speed < 0.0) {
    if (!repair) return fail(RejectReason::kBadSpeed);
    *speed = 0.0;
    fixed = true;
  }
  // A fabricated range would fabricate matches, so bad ranges never repair.
  if (range_width != nullptr && (*range_width <= 0.0 || *range_height <= 0.0)) {
    return fail(RejectReason::kBadRange);
  }
  if (*time < 0) {
    if (!repair) return fail(RejectReason::kNegativeTime);
    *time = batch_time >= 0 ? batch_time : 0;
    fixed = true;
  }
  if (config_.check_time_regression) {
    Timestamp floor = batch_time >= 0
                          ? batch_time
                          : std::numeric_limits<Timestamp>::min();
    auto it = last_time_.find(ref);
    if (it != last_time_.end()) floor = std::max(floor, it->second);
    if (*time < floor) {
      if (!repair) return fail(RejectReason::kTimeRegression);
      *time = floor;  // resynchronize to the newest credible time
      fixed = true;
    }
  }
  if (dest_node == kInvalidNodeId ||
      (config_.node_count > 0 && dest_node >= config_.node_count)) {
    return fail(RejectReason::kUnknownDestNode);
  }
  if (config_.check_bounds && !config_.bounds.Contains(*position)) {
    if (!repair) return fail(RejectReason::kOffMap);
    position->x = std::clamp(position->x, config_.bounds.min_x,
                             config_.bounds.max_x);
    position->y = std::clamp(position->y, config_.bounds.min_y,
                             config_.bounds.max_y);
    fixed = true;
  }

  seen_in_batch_.insert(ref);
  if (config_.check_time_regression) {
    auto [it, inserted] = last_time_.try_emplace(ref, *time);
    if (!inserted && *time > it->second) it->second = *time;
  }
  if (fixed) ++stats_.repaired;
  return true;
}

Status UpdateValidator::Reject(EntityKind kind, uint32_t id, Timestamp time,
                               RejectReason reason, std::string detail) {
  ++stats_.rejected[static_cast<size_t>(reason)];
  std::string message;
  if (config_.policy == BadUpdatePolicy::kStrict) {
    message = std::string(RejectReasonName(reason)) + ": " + detail;
  }
  log_.Push(QuarantinedUpdate{kind, id, time, reason, std::move(detail)});
  if (config_.policy == BadUpdatePolicy::kStrict) {
    return Status(RejectReasonStatusCode(reason), std::move(message));
  }
  return Status::OK();
}

Status UpdateValidator::ScreenBatch(Timestamp batch_time,
                                    std::vector<LocationUpdate>* objects,
                                    std::vector<QueryUpdate>* queries) {
  if (objects == nullptr || queries == nullptr) {
    return Status::InvalidArgument("objects and queries must be non-null");
  }
  seen_in_batch_.clear();
  // kStrict never drops (the first bad tuple fails the call), so the
  // compaction below is only needed when filtering.
  const bool filter = config_.policy != BadUpdatePolicy::kStrict;

  size_t keep = 0;
  for (size_t i = 0; i < objects->size(); ++i) {
    LocationUpdate& u = (*objects)[i];
    ++stats_.screened;
    RejectReason reason;
    if (Screen(batch_time, EntityKind::kObject, u.oid, &u.position, &u.time,
               &u.speed, u.dest_node, u.dest_position, nullptr, nullptr,
               &reason)) {
      ++stats_.admitted;
      if (filter && keep != i) (*objects)[keep] = u;
      ++keep;
    } else {
      SCUBA_RETURN_IF_ERROR(
          Reject(EntityKind::kObject, u.oid, u.time, reason, u.ToString()));
    }
  }
  if (filter) objects->resize(keep);

  keep = 0;
  for (size_t i = 0; i < queries->size(); ++i) {
    QueryUpdate& u = (*queries)[i];
    ++stats_.screened;
    RejectReason reason;
    if (Screen(batch_time, EntityKind::kQuery, u.qid, &u.position, &u.time,
               &u.speed, u.dest_node, u.dest_position, &u.range_width,
               &u.range_height, &reason)) {
      ++stats_.admitted;
      if (filter && keep != i) (*queries)[keep] = u;
      ++keep;
    } else {
      SCUBA_RETURN_IF_ERROR(
          Reject(EntityKind::kQuery, u.qid, u.time, reason, u.ToString()));
    }
  }
  if (filter) queries->resize(keep);
  return Status::OK();
}

std::string UpdateValidator::FormatStats() const {
  std::string out = "screened=" + std::to_string(stats_.screened) +
                    " admitted=" + std::to_string(stats_.admitted) +
                    " repaired=" + std::to_string(stats_.repaired) +
                    " rejected=" + std::to_string(stats_.TotalRejected());
  for (size_t i = 0; i < kRejectReasonCount; ++i) {
    if (stats_.rejected[i] == 0) continue;
    out += " " + std::string(RejectReasonName(static_cast<RejectReason>(i))) +
           "=" + std::to_string(stats_.rejected[i]);
  }
  return out;
}

void UpdateValidator::Reset() {
  stats_ = ValidatorStats{};
  log_.Clear();
  last_time_.clear();
  seen_in_batch_.clear();
}

size_t UpdateValidator::EstimateMemoryUsage() const {
  return log_.EstimateMemoryUsage() + UnorderedMapMemoryUsage(last_time_) +
         UnorderedSetMemoryUsage(seen_in_batch_);
}

}  // namespace scuba
