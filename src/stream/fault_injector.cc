#include "stream/fault_injector.h"

#include <cstdio>
#include <limits>
#include <type_traits>
#include <utility>

#include "common/check.h"

namespace scuba {

std::string_view FaultClassName(FaultClass fault) {
  switch (fault) {
    case FaultClass::kCorruptCoordinate: return "corrupt-coordinate";
    case FaultClass::kOffMapTeleport: return "off-map-teleport";
    case FaultClass::kNegativeSpeed: return "negative-speed";
    case FaultClass::kBadRange: return "bad-range";
    case FaultClass::kNegativeTimestamp: return "negative-timestamp";
    case FaultClass::kStaleTimestamp: return "stale-timestamp";
    case FaultClass::kUnknownDestination: return "unknown-destination";
    case FaultClass::kDrop: return "drop";
    case FaultClass::kDuplicate: return "duplicate";
    case FaultClass::kReorder: return "reorder";
    case FaultClass::kBurst: return "burst";
  }
  return "unknown";
}

FaultPlan FaultPlan::AllFaults(double p, const Rect& region,
                               uint32_t node_count) {
  FaultPlan plan;
  plan.corrupt_coordinate = p;
  plan.off_map_teleport = p;
  plan.negative_speed = p;
  plan.bad_range = p;
  plan.negative_timestamp = p;
  plan.stale_timestamp = p;
  plan.unknown_destination = p;
  plan.drop = p;
  plan.duplicate = p;
  plan.reorder = p;
  plan.burst = p;
  plan.region = region;
  plan.node_count = node_count;
  return plan;
}

uint64_t FaultStats::TotalInjected() const {
  uint64_t total = 0;
  for (uint64_t count : injected) total += count;
  return total;
}

std::string FaultStats::ToString() const {
  std::string out = "seen=" + std::to_string(tuples_seen) +
                    " batches=" + std::to_string(batches) +
                    " injected=" + std::to_string(TotalInjected());
  for (size_t i = 0; i < kFaultClassCount; ++i) {
    if (injected[i] == 0) continue;
    out += ' ';
    out += FaultClassName(static_cast<FaultClass>(i));
    out += '=';
    out += std::to_string(injected[i]);
  }
  return out;
}

FaultInjector::FaultInjector(const FaultPlan& plan, uint64_t seed)
    : plan_(plan), rng_(seed) {}

std::optional<FaultClass> FaultInjector::RollTupleFault(Timestamp batch_time,
                                                        bool is_query) {
  if (rng_.NextBool(plan_.corrupt_coordinate)) {
    return FaultClass::kCorruptCoordinate;
  }
  if (rng_.NextBool(plan_.off_map_teleport)) {
    return FaultClass::kOffMapTeleport;
  }
  if (rng_.NextBool(plan_.negative_speed)) return FaultClass::kNegativeSpeed;
  if (is_query && rng_.NextBool(plan_.bad_range)) return FaultClass::kBadRange;
  if (rng_.NextBool(plan_.negative_timestamp)) {
    return FaultClass::kNegativeTimestamp;
  }
  // A stale stamp must land in [0, batch_time); at tick 0 that interval is
  // empty, so the class is skipped.
  if (batch_time > 0 && rng_.NextBool(plan_.stale_timestamp)) {
    return FaultClass::kStaleTimestamp;
  }
  if (rng_.NextBool(plan_.unknown_destination)) {
    return FaultClass::kUnknownDestination;
  }
  if (rng_.NextBool(plan_.drop)) return FaultClass::kDrop;
  if (rng_.NextBool(plan_.duplicate)) return FaultClass::kDuplicate;
  return std::nullopt;
}

template <typename UpdateT>
void FaultInjector::ApplyTupleFault(FaultClass fault, Timestamp batch_time,
                                    UpdateT* u) {
  switch (fault) {
    case FaultClass::kCorruptCoordinate:
      // Vary which carrier goes non-finite so all validator branches see
      // traffic over a long run.
      switch (rng_.NextBounded(4)) {
        case 0:
          u->position.x = std::numeric_limits<double>::quiet_NaN();
          break;
        case 1:
          u->position.y = std::numeric_limits<double>::infinity();
          break;
        case 2:
          u->speed = std::numeric_limits<double>::quiet_NaN();
          break;
        default:
          u->dest_position.x = -std::numeric_limits<double>::infinity();
          break;
      }
      break;
    case FaultClass::kOffMapTeleport:
      u->position = Point{
          plan_.region.max_x + (1.0 + rng_.NextDouble()) * plan_.region.Width(),
          plan_.region.max_y +
              (1.0 + rng_.NextDouble()) * plan_.region.Height()};
      break;
    case FaultClass::kNegativeSpeed:
      u->speed = -1.0 - rng_.NextDouble(0.0, 10.0);
      break;
    case FaultClass::kBadRange:
      if constexpr (std::is_same_v<UpdateT, QueryUpdate>) {
        u->range_width = 0.0;
      }
      break;
    case FaultClass::kNegativeTimestamp:
      u->time = -1 - rng_.NextInt(0, 99);
      break;
    case FaultClass::kStaleTimestamp:
      u->time = rng_.NextInt(0, batch_time - 1);
      break;
    case FaultClass::kUnknownDestination:
      u->dest_node = plan_.node_count == 0
                         ? kInvalidNodeId
                         : plan_.node_count +
                               static_cast<NodeId>(rng_.NextBounded(1000));
      break;
    case FaultClass::kDrop:
    case FaultClass::kDuplicate:
    case FaultClass::kReorder:
    case FaultClass::kBurst:
      break;  // structural faults; nothing to mutate on the tuple
  }
}

namespace {

/// Shared per-kind corruption pass: fills `dirty` (the corrupted stream,
/// duplicates appended at the end) and `clean` (the tuples a perfect
/// validator admits, in order).
template <typename UpdateT>
struct TupleStreams {
  std::vector<UpdateT> dirty;
  std::vector<UpdateT> clean;
};

}  // namespace

void FaultInjector::CorruptBatch(Timestamp batch_time,
                                 std::vector<LocationUpdate>* objects,
                                 std::vector<QueryUpdate>* queries,
                                 std::vector<LocationUpdate>* reference_objects,
                                 std::vector<QueryUpdate>* reference_queries) {
  SCUBA_CHECK(objects != nullptr && queries != nullptr);
  ++stats_.batches;

  // Step 1: reorder before anything else, so the corrupted and reference
  // streams agree on tuple order (see file comment).
  if (objects->size() + queries->size() > 1 && rng_.NextBool(plan_.reorder)) {
    rng_.Shuffle(objects);
    rng_.Shuffle(queries);
    ++stats_.injected[static_cast<size_t>(FaultClass::kReorder)];
  }

  // Step 2: per-tuple faults, one class at most per tuple.
  TupleStreams<LocationUpdate> obj;
  obj.dirty.reserve(objects->size());
  obj.clean.reserve(objects->size());
  std::vector<LocationUpdate> obj_dups;
  for (const LocationUpdate& u : *objects) {
    ++stats_.tuples_seen;
    std::optional<FaultClass> fault = RollTupleFault(batch_time, false);
    if (!fault.has_value()) {
      obj.dirty.push_back(u);
      obj.clean.push_back(u);
      continue;
    }
    ++stats_.injected[static_cast<size_t>(*fault)];
    if (*fault == FaultClass::kDrop) continue;
    if (*fault == FaultClass::kDuplicate) {
      obj.dirty.push_back(u);
      obj.clean.push_back(u);
      obj_dups.push_back(u);
      continue;
    }
    LocationUpdate bad = u;
    ApplyTupleFault(*fault, batch_time, &bad);
    obj.dirty.push_back(bad);
  }

  TupleStreams<QueryUpdate> qry;
  qry.dirty.reserve(queries->size());
  qry.clean.reserve(queries->size());
  std::vector<QueryUpdate> qry_dups;
  for (const QueryUpdate& u : *queries) {
    ++stats_.tuples_seen;
    std::optional<FaultClass> fault = RollTupleFault(batch_time, true);
    if (!fault.has_value()) {
      qry.dirty.push_back(u);
      qry.clean.push_back(u);
      continue;
    }
    ++stats_.injected[static_cast<size_t>(*fault)];
    if (*fault == FaultClass::kDrop) continue;
    if (*fault == FaultClass::kDuplicate) {
      qry.dirty.push_back(u);
      qry.clean.push_back(u);
      qry_dups.push_back(u);
      continue;
    }
    QueryUpdate bad = u;
    ApplyTupleFault(*fault, batch_time, &bad);
    qry.dirty.push_back(bad);
  }

  // Step 3: duplicates go at the batch end (their originals precede them).
  for (LocationUpdate& d : obj_dups) obj.dirty.push_back(std::move(d));
  for (QueryUpdate& d : qry_dups) qry.dirty.push_back(std::move(d));

  // Step 4: a burst appends many copies of one clean tuple; every copy is a
  // duplicate the validator must shed.
  if (rng_.NextBool(plan_.burst) && plan_.burst_size > 0) {
    if (!obj.clean.empty()) {
      const LocationUpdate victim = rng_.Pick(obj.clean);
      for (uint32_t i = 0; i < plan_.burst_size; ++i) {
        obj.dirty.push_back(victim);
        ++stats_.injected[static_cast<size_t>(FaultClass::kBurst)];
      }
    } else if (!qry.clean.empty()) {
      const QueryUpdate victim = rng_.Pick(qry.clean);
      for (uint32_t i = 0; i < plan_.burst_size; ++i) {
        qry.dirty.push_back(victim);
        ++stats_.injected[static_cast<size_t>(FaultClass::kBurst)];
      }
    }
  }

  *objects = std::move(obj.dirty);
  *queries = std::move(qry.dirty);
  if (reference_objects != nullptr) *reference_objects = std::move(obj.clean);
  if (reference_queries != nullptr) *reference_queries = std::move(qry.clean);
}

}  // namespace scuba
