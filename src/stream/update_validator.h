// UpdateValidator: stream-side screening of location/query updates before
// they reach an engine (stream hardening, docs/ARCHITECTURE.md §7).
//
// SCUBA's correctness contract only holds for sane tuples: a NaN coordinate,
// an off-map position or a time-regressing report flowing into the clusterer
// can silently corrupt cluster state. The validator classifies every tuple
// against a configurable fault taxonomy, tags each rejection with a distinct
// RejectReason (and StatusCode), and applies one of three policies:
//
//   kStrict     — the screen fails with the first tuple's tagged error;
//   kQuarantine — bad tuples are dropped, counted per reason and retained in
//                 a bounded dead-letter ring buffer (QuarantineLog);
//   kRepair     — clampable faults (off-map position, negative speed,
//                 regressed timestamp) are fixed in place and admitted;
//                 unrepairable tuples fall back to quarantine.
//
// The validator is stateful across batches: it remembers the last admitted
// timestamp per entity (time-regression detection) and the running stream
// high-water time. It is NOT thread-safe; screen batches from one thread.

#ifndef SCUBA_STREAM_UPDATE_VALIDATOR_H_
#define SCUBA_STREAM_UPDATE_VALIDATOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/scuba_options.h"
#include "gen/update.h"
#include "geometry/rect.h"

namespace scuba {

struct PersistAccess;  // snapshot serialization back door (src/persist)

/// The fault taxonomy. Every rejected tuple is counted under exactly one
/// reason (the first failing check wins; checks run in this order).
enum class RejectReason : uint8_t {
  kNonFinite = 0,     ///< NaN/Inf position, destination, speed or range.
  kZeroId,            ///< Id 0 where ids are declared to start at 1.
  kDuplicateInBatch,  ///< Same entity appeared earlier in this batch.
  kBadSpeed,          ///< Finite but negative speed.
  kBadRange,          ///< Finite but non-positive query range extents.
  kNegativeTime,      ///< Timestamp below zero.
  kTimeRegression,    ///< Timestamp behind the entity's last admitted update
                      ///< or behind the batch time floor.
  kUnknownDestNode,   ///< Missing cnLoc or node id outside the road network.
  kOffMap,            ///< Finite position outside the configured bounds.
};

inline constexpr size_t kRejectReasonCount = 9;

/// Stable lowercase name ("non-finite", "off-map", ...).
std::string_view RejectReasonName(RejectReason reason);

/// The StatusCode a kStrict screen fails with for this reason. Each reason
/// maps onto the closest canonical code (off-map -> kOutOfRange, duplicate ->
/// kAlreadyExists, regression -> kFailedPrecondition, unknown destination ->
/// kNotFound, the rest -> kInvalidArgument) so callers can dispatch on code
/// without parsing messages.
StatusCode RejectReasonStatusCode(RejectReason reason);

/// One dead-lettered tuple.
struct QuarantinedUpdate {
  EntityKind kind = EntityKind::kObject;
  uint32_t id = 0;
  Timestamp time = 0;
  RejectReason reason = RejectReason::kNonFinite;
  std::string detail;  ///< The tuple's ToString() at rejection time.
};

/// Bounded ring buffer of the most recent quarantined tuples (the CLI dumps
/// it after a run). Pushing beyond capacity overwrites the oldest entry;
/// total() keeps counting.
class QuarantineLog {
 public:
  explicit QuarantineLog(size_t capacity);

  void Push(QuarantinedUpdate entry);

  size_t capacity() const { return capacity_; }
  /// Entries currently retained (min(total, capacity)).
  size_t size() const { return ring_.size(); }
  /// Entries ever pushed, including overwritten ones.
  uint64_t total() const { return total_; }

  /// Retained entries, oldest first.
  std::vector<QuarantinedUpdate> Snapshot() const;

  void Clear();

  /// Analytic heap bytes: the ring buffer plus each retained entry's detail
  /// string.
  size_t EstimateMemoryUsage() const;

 private:
  friend struct PersistAccess;  ///< Snapshot serialization (src/persist).
  size_t capacity_;
  uint64_t total_ = 0;
  size_t next_ = 0;  ///< Ring write position once the buffer is full.
  std::vector<QuarantinedUpdate> ring_;
};

struct ValidatorConfig {
  BadUpdatePolicy policy = BadUpdatePolicy::kStrict;
  /// Off-map check: positions must fall inside this box. Skipped while
  /// check_bounds is false (the default — generated maps jitter entities
  /// slightly past the nominal region, so callers opt in with a margin).
  Rect bounds{0.0, 0.0, 0.0, 0.0};
  bool check_bounds = false;
  /// Unknown-destination check: dest_node must be < node_count. 0 skips the
  /// range part (a missing kInvalidNodeId destination is always rejected).
  uint64_t node_count = 0;
  /// Reject id 0 (deployments using 0 as a sentinel). Off by default: the
  /// workload generator numbers entities from 0.
  bool reject_zero_ids = false;
  /// Per-entity monotonic-timestamp enforcement.
  bool check_time_regression = true;
  /// Reject the second and later occurrences of an entity within one batch.
  /// Streams that legitimately carry late corrections should disable this.
  bool check_duplicates_in_batch = true;
  /// Dead-letter ring capacity.
  size_t quarantine_capacity = 64;
};

struct ValidatorStats {
  uint64_t screened = 0;   ///< Tuples seen.
  uint64_t admitted = 0;   ///< Tuples passed through (repaired ones included).
  uint64_t repaired = 0;   ///< Admitted only after clamping (kRepair).
  uint64_t rejected[kRejectReasonCount] = {};

  uint64_t Rejected(RejectReason reason) const {
    return rejected[static_cast<size_t>(reason)];
  }
  uint64_t TotalRejected() const;
};

/// Pass as `batch_time` when the stream has no per-batch time floor (pure
/// per-entity regression checking).
inline constexpr Timestamp kNoBatchTime = -1;

class UpdateValidator {
 public:
  explicit UpdateValidator(const ValidatorConfig& config);

  /// Screens one batch in place. `batch_time` >= 0 declares the tick this
  /// batch belongs to: tuples stamped earlier are time regressions (the
  /// stream contract is that a tick's batch carries that tick's readings);
  /// kNoBatchTime disables the floor. Under kStrict the first bad tuple
  /// fails the call with its tagged StatusCode and nothing is mutated
  /// downstream of the vectors' screening; under kQuarantine/kRepair the
  /// call always succeeds and the vectors retain only admitted (possibly
  /// repaired) tuples in their original relative order.
  Status ScreenBatch(Timestamp batch_time,
                     std::vector<LocationUpdate>* objects,
                     std::vector<QueryUpdate>* queries);

  const ValidatorConfig& config() const { return config_; }
  const ValidatorStats& stats() const { return stats_; }
  const QuarantineLog& quarantine() const { return log_; }

  /// One-line counters summary ("screened=... admitted=... off-map=2 ...");
  /// per-reason entries appear only when nonzero.
  std::string FormatStats() const;

  /// Forgets per-entity history, counters and the quarantine log.
  void Reset();

  /// Analytic heap bytes of all validator state: the quarantine ring (detail
  /// strings included) plus the per-entity last-timestamp map and the
  /// in-batch dedup set.
  size_t EstimateMemoryUsage() const;

 private:
  friend struct PersistAccess;  ///< Snapshot serialization (src/persist).
  /// Decides one tuple's fate. Returns kOk to admit (fields possibly
  /// repaired in place under kRepair, bumping stats_.repaired) or the
  /// rejection reason via `*reason`.
  bool Screen(Timestamp batch_time, EntityKind kind, uint32_t id, Point* position,
              Timestamp* time, double* speed, NodeId dest_node,
              Point dest_position, double* range_width, double* range_height,
              RejectReason* reason);

  /// Bookkeeping shared by both tuple kinds after Screen() said reject.
  /// Returns the tagged error under kStrict, OK (drop the tuple) otherwise.
  Status Reject(EntityKind kind, uint32_t id, Timestamp time,
                RejectReason reason, std::string detail);

  ValidatorConfig config_;
  ValidatorStats stats_;
  QuarantineLog log_;
  /// Last admitted timestamp per entity (time-regression detection).
  std::unordered_map<EntityRef, Timestamp, EntityRefHash> last_time_;
  /// Entities already admitted in the batch being screened.
  std::unordered_set<EntityRef, EntityRefHash> seen_in_batch_;
};

}  // namespace scuba

#endif  // SCUBA_STREAM_UPDATE_VALIDATOR_H_
