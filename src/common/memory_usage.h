// Analytic memory accounting.
//
// Figure 9b of the paper compares memory consumption of the regular grid-based
// operator (one grid entry per object/query) against SCUBA (one grid entry per
// cluster). We reproduce that comparison with deterministic byte accounting:
// every container-bearing structure exposes EstimateMemoryUsage() built from
// the helpers here, instead of sampling process RSS (which is allocator- and
// platform-dependent and non-reproducible).

#ifndef SCUBA_COMMON_MEMORY_USAGE_H_
#define SCUBA_COMMON_MEMORY_USAGE_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace scuba {

/// Heap bytes held by a vector's buffer (capacity, not size — that is what the
/// process actually pays for).
template <typename T>
size_t VectorMemoryUsage(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// Approximate heap bytes of an unordered_map: bucket array plus one node per
/// element (node = value_type + next pointer + cached hash, as in libstdc++).
template <typename K, typename V, typename H, typename E, typename A>
size_t UnorderedMapMemoryUsage(const std::unordered_map<K, V, H, E, A>& m) {
  const size_t node_bytes = sizeof(std::pair<const K, V>) + 2 * sizeof(void*);
  return m.bucket_count() * sizeof(void*) + m.size() * node_bytes;
}

/// Approximate heap bytes of an unordered_set (same node model as the map).
template <typename K, typename H, typename E, typename A>
size_t UnorderedSetMemoryUsage(const std::unordered_set<K, H, E, A>& s) {
  const size_t node_bytes = sizeof(K) + 2 * sizeof(void*);
  return s.bucket_count() * sizeof(void*) + s.size() * node_bytes;
}

/// Heap bytes of a string (0 when the small-string optimization applies).
size_t StringMemoryUsage(const std::string& s);

/// Formats a byte count as "12.3 MB" / "4.5 KB" / "123 B".
std::string FormatBytes(size_t bytes);

}  // namespace scuba

#endif  // SCUBA_COMMON_MEMORY_USAGE_H_
