#include "common/serializer.h"

#include <array>

namespace scuba {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data) {
    crc = kTable[(crc ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char ch : data) {
    hash ^= static_cast<uint8_t>(ch);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace scuba
