#include "common/thread_pool.h"

#include <cstdint>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"

namespace scuba {

unsigned ThreadPool::DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = DefaultThreadCount();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

namespace {

/// Runs one task under the exception barrier, recording any failure message
/// into its private slot. Slots (not a shared first-error) keep the surfaced
/// failure deterministic: after the drain, the lowest failed index wins
/// regardless of completion order.
void RunGuarded(const std::function<void(uint32_t)>& fn, uint32_t t,
                std::vector<std::string>* errors) {
  try {
    fn(t);
  } catch (const std::exception& e) {
    (*errors)[t] = e.what()[0] == '\0' ? "unknown std::exception" : e.what();
  } catch (...) {
    (*errors)[t] = "non-standard exception";
  }
}

Status FirstFailure(const std::vector<std::string>& errors) {
  for (uint32_t t = 0; t < errors.size(); ++t) {
    if (!errors[t].empty()) {
      return Status::Internal("task " + std::to_string(t) +
                              " failed: " + errors[t]);
    }
  }
  return Status::OK();
}

}  // namespace

Status RunTaskSet(ThreadPool* pool, uint32_t tasks,
                  const std::function<void(uint32_t)>& fn,
                  double* busy_seconds) {
  if (tasks == 0) return Status::OK();
  std::vector<std::string> errors(tasks);
  if (tasks == 1) {
    Stopwatch sw;
    RunGuarded(fn, 0, &errors);
    if (busy_seconds != nullptr) *busy_seconds += sw.ElapsedSeconds();
    return FirstFailure(errors);
  }
  SCUBA_CHECK_MSG(pool != nullptr, "parallel task set needs a pool");
  std::vector<double> busy(tasks, 0.0);
  for (uint32_t t = 0; t < tasks; ++t) {
    pool->Submit([&fn, &busy, &errors, t] {
      Stopwatch sw;
      RunGuarded(fn, t, &errors);
      busy[t] = sw.ElapsedSeconds();
    });
  }
  pool->Wait();
  if (busy_seconds != nullptr) {
    for (double s : busy) *busy_seconds += s;
  }
  return FirstFailure(errors);
}

}  // namespace scuba
