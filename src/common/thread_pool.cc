#include "common/thread_pool.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"

namespace scuba {

unsigned ThreadPool::DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = DefaultThreadCount();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

double RunTaskSet(ThreadPool* pool, uint32_t tasks,
                  const std::function<void(uint32_t)>& fn) {
  if (tasks <= 1) {
    Stopwatch sw;
    fn(0);
    return sw.ElapsedSeconds();
  }
  SCUBA_CHECK_MSG(pool != nullptr, "parallel task set needs a pool");
  std::vector<double> busy(tasks, 0.0);
  for (uint32_t t = 0; t < tasks; ++t) {
    pool->Submit([&fn, &busy, t] {
      Stopwatch sw;
      fn(t);
      busy[t] = sw.ElapsedSeconds();
    });
  }
  pool->Wait();
  double total = 0.0;
  for (double s : busy) total += s;
  return total;
}

}  // namespace scuba
