// Status: lightweight error propagation for SCUBA, in the RocksDB/Arrow idiom.
//
// Library code never throws on user input errors; fallible operations return a
// Status (or a Result<T> carrying a value on success). Internal invariant
// violations use SCUBA_CHECK (see common/check.h) instead.

#ifndef SCUBA_COMMON_STATUS_H_
#define SCUBA_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace scuba {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kIoError,
  kCorruption,
  /// Durable state (snapshot / WAL) failed its checksum or arrived torn:
  /// recoverable data is definitively missing, as opposed to kCorruption's
  /// "live in-memory structures disagree".
  kDataLoss,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// Value-semantic success/error carrier. Cheap to copy when OK (no message
/// allocation); holds a code plus message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T>: either a value or an error Status. Mirrors absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return my_t;` in a Result-returning function.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status: `return Status::NotFound(...)`.
  /// Must not be OK — an OK status carries no value (a misuse degrades to an
  /// Internal error instead of a valueless success).
  Result(Status status)  // NOLINT(runtime/explicit)
      : repr_(status.ok()
                  ? Status::Internal("Result constructed from OK status")
                  : std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// Precondition: ok(). Checked by the variant (throws std::bad_variant_access
  /// in a misuse, which is a programming error, not a runtime condition).
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

/// Propagates a non-OK status to the caller: `SCUBA_RETURN_IF_ERROR(DoThing());`
#define SCUBA_RETURN_IF_ERROR(expr)                      \
  do {                                                   \
    ::scuba::Status _scuba_status_tmp = (expr);          \
    if (!_scuba_status_tmp.ok()) return _scuba_status_tmp; \
  } while (false)

}  // namespace scuba

#endif  // SCUBA_COMMON_STATUS_H_
