// SCUBA_CHECK: internal invariant assertions.
//
// These fire on programming errors (broken invariants), not on bad user input;
// user-facing validation returns Status instead. Checks are always on — the
// cost is negligible relative to the joins they guard.

#ifndef SCUBA_COMMON_CHECK_H_
#define SCUBA_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define SCUBA_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "SCUBA_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define SCUBA_CHECK_MSG(cond, msg)                                            \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "SCUBA_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                     \
      std::abort();                                                           \
    }                                                                         \
  } while (false)

#endif  // SCUBA_COMMON_CHECK_H_
