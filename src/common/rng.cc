#include "common/rng.h"

#include <cmath>

namespace scuba {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SCUBA_CHECK(bound > 0);
  // Debiased modulo via rejection sampling on the top of the range.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  SCUBA_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  SCUBA_CHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);  // avoid log(0)
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

RngState Rng::SaveState() const {
  RngState state;
  for (size_t i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_gaussian = has_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::RestoreState(const RngState& state) {
  for (size_t i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

Rng Rng::Fork() {
  // Mix two fresh outputs into a child seed; advances this generator.
  uint64_t a = NextU64();
  uint64_t b = NextU64();
  uint64_t sm = a ^ Rotl(b, 31) ^ 0xd6e8feb86659fd93ULL;
  return Rng(SplitMix64(&sm));
}

}  // namespace scuba
