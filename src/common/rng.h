// Deterministic pseudo-random number generation.
//
// Every source of randomness in the repository (workload generation, route
// choice, property-test sweeps) flows through Rng so that a single seed
// reproduces an entire experiment bit-for-bit. The generator is xoshiro256**
// seeded via SplitMix64, which is fast, has a 2^256-1 period and passes BigCrush.

#ifndef SCUBA_COMMON_RNG_H_
#define SCUBA_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace scuba {

/// SplitMix64 step; used for seeding and as a cheap standalone mixer.
uint64_t SplitMix64(uint64_t* state);

/// Complete generator state: restoring it resumes the stream exactly where it
/// was saved (durability snapshots persist this so a recovered run continues
/// the same random sequence).
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_gaussian = false;
  double cached_gaussian = 0.0;

  friend bool operator==(const RngState&, const RngState&) = default;
};

/// Deterministic random number generator (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator. Identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x5C0BAULL);

  /// Next raw 64 random bits.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Precondition: lo <= hi.
  double NextDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Standard normal via Box-Muller (mean 0, stddev 1).
  double NextGaussian();

  /// Normal with the given mean / stddev.
  double NextGaussian(double mean, double stddev);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Picks a uniformly random element. Precondition: !v.empty().
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    SCUBA_CHECK(!v.empty());
    return v[static_cast<size_t>(NextBounded(v.size()))];
  }

  /// Forks an independent child generator; children with distinct fork indices
  /// produce decorrelated streams even from the same parent state.
  Rng Fork();

  /// Captures / reinstates the full generator state (see RngState).
  RngState SaveState() const;
  void RestoreState(const RngState& state);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace scuba

#endif  // SCUBA_COMMON_RNG_H_
