// Byte-level serialization primitives shared by the durability subsystem and
// the serving front-end wire protocol
// (docs/ARCHITECTURE.md §8).
//
// Everything durable — snapshots and WAL records — is built from the same
// little-endian, length-prefixed vocabulary defined here, protected by CRC32
// so torn writes and bit rot surface as kDataLoss instead of silently
// corrupting a restored engine. Doubles are persisted as their IEEE-754 bit
// patterns, which is what makes a restored engine *bit-identical* to the one
// that was checkpointed (the same guarantee the parallel executors give).

#ifndef SCUBA_COMMON_SERIALIZER_H_
#define SCUBA_COMMON_SERIALIZER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace scuba {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`.
uint32_t Crc32(std::string_view data);

/// FNV-1a 64-bit hash; used for the ScubaOptions fingerprint embedded in
/// snapshots (cheap, stable across platforms for a fixed byte stream).
uint64_t Fnv1a64(std::string_view data);

/// Appends fixed-width little-endian primitives to a byte buffer.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  /// IEEE-754 bit pattern — restores bit-exactly, NaN payloads included.
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  /// Length-prefixed byte string.
  void PutString(std::string_view s) {
    PutU64(s.size());
    buf_.append(s.data(), s.size());
  }
  /// Raw bytes, no length prefix (file headers, pre-framed payloads).
  void PutRawBytes(std::string_view s) { buf_.append(s.data(), s.size()); }

  const std::string& bytes() const { return buf_; }
  std::string Release() { return std::move(buf_); }

 private:
  void PutRaw(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }

  std::string buf_;
};

/// Reads the ByteWriter vocabulary back. Every getter returns kDataLoss on
/// underrun — a truncated payload is missing data by definition (the CRC
/// normally catches it first; the bounds checks make the reader safe on any
/// byte stream regardless).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetI64(int64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetBool(bool* v) {
    uint8_t byte = 0;
    SCUBA_RETURN_IF_ERROR(GetU8(&byte));
    *v = byte != 0;
    return Status::OK();
  }
  Status GetDouble(double* v) {
    uint64_t bits = 0;
    SCUBA_RETURN_IF_ERROR(GetU64(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }
  Status GetString(std::string* s) {
    uint64_t n = 0;
    SCUBA_RETURN_IF_ERROR(GetU64(&n));
    if (n > Remaining()) {
      return Status::DataLoss("string length " + std::to_string(n) +
                              " overruns the remaining " +
                              std::to_string(Remaining()) + " payload bytes");
    }
    s->assign(data_.data() + pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return Status::OK();
  }

  size_t Remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status GetRaw(void* p, size_t n) {
    if (n > Remaining()) {
      return Status::DataLoss("payload truncated: need " + std::to_string(n) +
                              " bytes, " + std::to_string(Remaining()) +
                              " remain");
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace scuba

#endif  // SCUBA_COMMON_SERIALIZER_H_
