#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace scuba {

void Histogram::Add(double value) {
  samples_.push_back(value);
  sum_ += value;
  sorted_valid_ = false;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sum_ += other.sum_;
  sorted_valid_ = false;
}

void Histogram::Clear() {
  samples_.clear();
  sorted_.clear();
  sum_ = 0.0;
  sorted_valid_ = false;
}

double Histogram::Mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Histogram::Min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::Max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::StdDev() const {
  if (samples_.size() < 2) return 0.0;
  double mean = Mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - mean) * (s - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: ceil(p/100 * N), 1-based.
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted_.size())));
  if (rank == 0) rank = 1;
  return sorted_[rank - 1];
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.6g min=%.6g p50=%.6g p99=%.6g max=%.6g",
                static_cast<long long>(count()), Mean(), Min(), Percentile(50),
                Percentile(99), Max());
  return buf;
}

}  // namespace scuba
