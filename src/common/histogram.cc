#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace scuba {

Status Histogram::ValidateBounds(const std::vector<double>& bounds) {
  if (bounds.empty()) {
    return Status::InvalidArgument("bucket bounds must be non-empty");
  }
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (!std::isfinite(bounds[i])) {
      return Status::InvalidArgument("bucket bounds must be finite");
    }
    if (i > 0 && bounds[i] <= bounds[i - 1]) {
      return Status::InvalidArgument(
          "bucket bounds must be strictly increasing");
    }
  }
  return Status::OK();
}

Result<Histogram> Histogram::WithBuckets(std::vector<double> upper_bounds) {
  SCUBA_RETURN_IF_ERROR(ValidateBounds(upper_bounds));
  Histogram h;
  h.bucketed_ = true;
  h.bucket_counts_.assign(upper_bounds.size() + 1, 0);
  h.bounds_ = std::move(upper_bounds);
  return h;
}

Result<Histogram> Histogram::FromBucketData(
    std::vector<double> upper_bounds, std::vector<uint64_t> bucket_counts,
    double sum) {
  SCUBA_RETURN_IF_ERROR(ValidateBounds(upper_bounds));
  if (bucket_counts.size() != upper_bounds.size() + 1) {
    return Status::InvalidArgument(
        "bucket_counts must have bounds + 1 entries (the +Inf overflow)");
  }
  Histogram h;
  h.bucketed_ = true;
  h.bounds_ = std::move(upper_bounds);
  h.bucket_counts_ = std::move(bucket_counts);
  for (uint64_t c : h.bucket_counts_) h.count_ += c;
  h.sum_ = sum;
  // Reconstructed shards carry no exact extrema; approximate from the
  // occupied bucket edges so Min/Max stay within the right bucket.
  if (h.count_ > 0) {
    for (size_t i = 0; i < h.bucket_counts_.size(); ++i) {
      if (h.bucket_counts_[i] == 0) continue;
      h.min_ = i == 0 ? 0.0 : h.bounds_[i - 1];
      break;
    }
    for (size_t i = h.bucket_counts_.size(); i-- > 0;) {
      if (h.bucket_counts_[i] == 0) continue;
      h.max_ = i < h.bounds_.size() ? h.bounds_[i] : h.bounds_.back();
      break;
    }
  }
  return h;
}

void Histogram::Add(double value) {
  if (bucketed_) {
    size_t idx = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    ++bucket_counts_[idx];
    if (count_ == 0) {
      min_ = max_ = value;
    } else {
      min_ = std::min(min_, value);
      max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    return;
  }
  samples_.push_back(value);
  sum_ += value;
  sorted_valid_ = false;
}

Status Histogram::Merge(const Histogram& other) {
  if (bucketed_ != other.bucketed_) {
    return Status::InvalidArgument(
        "cannot merge a sample-mode histogram with a bucketed one");
  }
  if (bucketed_) {
    if (bounds_ != other.bounds_) {
      return Status::InvalidArgument(
          "cannot merge histograms with mismatched bucket layouts");
    }
    for (size_t i = 0; i < bucket_counts_.size(); ++i) {
      bucket_counts_[i] += other.bucket_counts_[i];
    }
    if (other.count_ > 0) {
      if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
      } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
      }
    }
    count_ += other.count_;
    sum_ += other.sum_;
    return Status::OK();
  }
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sum_ += other.sum_;
  sorted_valid_ = false;
  return Status::OK();
}

void Histogram::Clear() {
  samples_.clear();
  sorted_.clear();
  sum_ = 0.0;
  sorted_valid_ = false;
  std::fill(bucket_counts_.begin(), bucket_counts_.end(), uint64_t{0});
  count_ = 0;
  min_ = 0.0;
  max_ = 0.0;
}

int64_t Histogram::count() const {
  return bucketed_ ? static_cast<int64_t>(count_)
                   : static_cast<int64_t>(samples_.size());
}

double Histogram::Mean() const {
  const int64_t n = count();
  return n == 0 ? 0.0 : sum_ / static_cast<double>(n);
}

double Histogram::Min() const {
  if (bucketed_) return min_;
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::Max() const {
  if (bucketed_) return max_;
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::StdDev() const {
  if (bucketed_) return 0.0;
  if (samples_.size() < 2) return 0.0;
  double mean = Mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - mean) * (s - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double Histogram::Percentile(double p) const {
  p = std::clamp(p, 0.0, 100.0);
  if (bucketed_) {
    if (count_ == 0) return 0.0;
    // Target rank, 1-based, nearest-rank like the sample path.
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    if (rank == 0) rank = 1;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < bucket_counts_.size(); ++i) {
      const uint64_t in_bucket = bucket_counts_[i];
      if (cumulative + in_bucket < rank) {
        cumulative += in_bucket;
        continue;
      }
      if (i >= bounds_.size()) return bounds_.back();  // +Inf overflow bucket
      const double lo = i == 0 ? std::min(min_, bounds_[0]) : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac = in_bucket == 0
                              ? 1.0
                              : static_cast<double>(rank - cumulative) /
                                    static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
    return max_;
  }
  if (samples_.empty()) return 0.0;
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  // Nearest-rank: ceil(p/100 * N), 1-based.
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted_.size())));
  if (rank == 0) rank = 1;
  return sorted_[rank - 1];
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.6g min=%.6g p50=%.6g p99=%.6g max=%.6g",
                static_cast<long long>(count()), Mean(), Min(), Percentile(50),
                Percentile(99), Max());
  return buf;
}

}  // namespace scuba
