// ThreadPool: a minimal fixed-size worker pool for data-parallel phases.
//
// Tasks are opaque std::function<void()> jobs drained FIFO by a fixed set of
// worker threads; Wait() blocks until every submitted task has finished, so
// one pool can serve many fork/join rounds without re-spawning threads (the
// join phase runs every Delta ticks — thread start-up cost would dominate).
//
// The pool makes no fairness or affinity promises. Callers that need
// per-worker state should give each *task* its own buffer slot instead of
// keying off thread ids: a worker may execute several tasks of one round.

#ifndef SCUBA_COMMON_THREAD_POOL_H_
#define SCUBA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace scuba {

class ThreadPool {
 public:
  /// Hardware concurrency with a floor of 1 (the C++ standard allows
  /// hardware_concurrency() to report 0 when unknown).
  static unsigned DefaultThreadCount();

  /// Spawns `threads` workers (0 behaves like DefaultThreadCount()).
  explicit ThreadPool(unsigned threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues one task. Tasks must not themselves call Submit/Wait on this
  /// pool (no nested parallelism; keeps the pool deadlock-free).
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;   // signalled on Submit / shutdown
  std::condition_variable all_done_;     // signalled when in_flight_ hits 0
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(0) .. fn(tasks - 1)` as one fork/join round. With tasks == 1 the
/// single task runs inline on the calling thread and `pool` may be null — the
/// serial fast path never pays for a pool. Task indices identify private
/// buffer slots, not threads: the pool may run several tasks on one worker.
///
/// Exception barrier: a throwing task no longer terminates the process. Every
/// task still runs to completion (a failure never leaves tasks queued on the
/// pool), each task's exception is caught at the task boundary, and the
/// failure of the LOWEST task index is surfaced as `Status::Internal` — the
/// same task set fails the same way at every thread count. When non-null,
/// `busy_seconds` accumulates (+=) the summed per-task busy seconds (the
/// wall/busy ratio is the realized parallel speedup); it is updated even on
/// failure.
Status RunTaskSet(ThreadPool* pool, uint32_t tasks,
                  const std::function<void(uint32_t)>& fn,
                  double* busy_seconds = nullptr);

}  // namespace scuba

#endif  // SCUBA_COMMON_THREAD_POOL_H_
