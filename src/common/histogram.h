// Histogram: streaming summary statistics (count/mean/min/max/stddev and
// approximate percentiles) used by the experiment harness to report per-phase
// timings the way the paper reports join times.

#ifndef SCUBA_COMMON_HISTOGRAM_H_
#define SCUBA_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace scuba {

/// Accumulates double-valued samples. Percentiles are exact (samples are
/// retained); this is an experiment-harness tool, not a hot-path structure.
class Histogram {
 public:
  void Add(double value);

  /// Merges all samples of `other` into this histogram.
  void Merge(const Histogram& other);

  void Clear();

  int64_t count() const { return static_cast<int64_t>(samples_.size()); }
  double sum() const { return sum_; }
  double Mean() const;
  double Min() const;
  double Max() const;
  /// Population standard deviation; 0 for fewer than 2 samples.
  double StdDev() const;
  /// Exact percentile via nearest-rank on sorted samples; p in [0,100].
  /// Returns 0 when empty.
  double Percentile(double p) const;

  /// One-line summary: "count=.. mean=.. min=.. p50=.. p99=.. max=..".
  std::string ToString() const;

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
  mutable std::vector<double> sorted_;   // cache for percentile queries
  mutable bool sorted_valid_ = false;
};

}  // namespace scuba

#endif  // SCUBA_COMMON_HISTOGRAM_H_
