// Histogram: streaming summary statistics (count/mean/min/max/stddev and
// percentiles) used by the experiment harness to report per-phase timings the
// way the paper reports join times, and by the observability registry
// (src/obs) to aggregate per-thread metric shards.
//
// Two modes, fixed at construction:
//  - *sample* (default constructor): every value is retained, percentiles are
//    exact via nearest-rank. The experiment-harness mode.
//  - *bucketed* (WithBuckets): fixed upper bounds plus an implicit +Inf
//    overflow bucket; O(buckets) memory regardless of sample count,
//    percentiles are linearly interpolated within the containing bucket. The
//    metrics-registry mode, where per-thread shards are rebuilt with
//    FromBucketData and combined with Merge.

#ifndef SCUBA_COMMON_HISTOGRAM_H_
#define SCUBA_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace scuba {

class Histogram {
 public:
  /// Sample mode: percentiles are exact (samples are retained).
  Histogram() = default;

  /// Bucketed mode. `upper_bounds` are the inclusive upper edges of the
  /// finite buckets, strictly increasing and finite; a +Inf overflow bucket
  /// is always appended. InvalidArgument when empty, non-finite, or not
  /// strictly increasing.
  static Result<Histogram> WithBuckets(std::vector<double> upper_bounds);

  /// Bucketed mode from pre-counted data (per-thread metric shards).
  /// `bucket_counts` must have upper_bounds.size() + 1 entries (the last is
  /// the +Inf overflow bucket); the bounds are validated as in WithBuckets.
  static Result<Histogram> FromBucketData(std::vector<double> upper_bounds,
                                          std::vector<uint64_t> bucket_counts,
                                          double sum);

  void Add(double value);

  /// Merges `other` into this histogram. Both sample-mode histograms merge by
  /// appending samples; both bucketed-mode histograms merge bucket-wise when
  /// their bounds are identical. Mixed modes or mismatched bucket layouts
  /// return kInvalidArgument and leave this histogram untouched.
  Status Merge(const Histogram& other);

  void Clear();

  bool bucketed() const { return bucketed_; }
  /// Bucketed mode: the finite upper bounds (empty in sample mode).
  const std::vector<double>& bucket_bounds() const { return bounds_; }
  /// Bucketed mode: per-bucket counts, bounds().size() + 1 entries (the last
  /// is the +Inf overflow bucket). Empty in sample mode.
  const std::vector<uint64_t>& bucket_counts() const { return bucket_counts_; }

  int64_t count() const;
  double sum() const { return sum_; }
  double Mean() const;
  double Min() const;
  double Max() const;
  /// Population standard deviation; 0 for fewer than 2 samples. Sample mode
  /// only (bucketed histograms do not retain enough to compute it; 0).
  double StdDev() const;
  /// p in [0,100] (clamped). Sample mode: exact nearest-rank. Bucketed mode:
  /// linear interpolation inside the containing bucket (overflow bucket
  /// reports its lower edge). Returns 0 when empty.
  double Percentile(double p) const;

  /// One-line summary: "count=.. mean=.. min=.. p50=.. p99=.. max=..".
  std::string ToString() const;

 private:
  static Status ValidateBounds(const std::vector<double>& bounds);

  // Sample mode.
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;   // cache for percentile queries
  mutable bool sorted_valid_ = false;

  // Bucketed mode.
  bool bucketed_ = false;
  std::vector<double> bounds_;
  std::vector<uint64_t> bucket_counts_;  // bounds_.size() + 1 (+Inf overflow)
  uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;

  double sum_ = 0.0;  // both modes
};

}  // namespace scuba

#endif  // SCUBA_COMMON_HISTOGRAM_H_
