// Core identifier and time types shared across SCUBA modules.
//
// The paper's motion model (§2) is discrete-time: location updates arrive each
// time unit and queries are evaluated every Δ time units. Timestamp is an
// integer tick; speeds are spatial-units per tick.

#ifndef SCUBA_COMMON_TYPES_H_
#define SCUBA_COMMON_TYPES_H_

#include <cstdint>
#include <functional>

namespace scuba {

/// Discrete simulation time, in ticks.
using Timestamp = int64_t;

/// Identifier of a moving object (o.oid in the paper).
using ObjectId = uint32_t;

/// Identifier of a continuous query (q.qid).
using QueryId = uint32_t;

/// Identifier of a moving cluster (m.cid).
using ClusterId = uint32_t;

/// Identifier of a road-network connection node.
using NodeId = uint32_t;

/// Identifier of a road segment (directed edge) in the road network.
using EdgeId = uint32_t;

inline constexpr ClusterId kInvalidClusterId = UINT32_MAX;
inline constexpr NodeId kInvalidNodeId = UINT32_MAX;
inline constexpr EdgeId kInvalidEdgeId = UINT32_MAX;

/// Kind of a moving entity; the paper clusters both objects and queries.
enum class EntityKind : uint8_t { kObject = 0, kQuery = 1 };

/// Uniquely names a moving entity of either kind (the ClusterHome key).
struct EntityRef {
  EntityKind kind = EntityKind::kObject;
  uint32_t id = 0;

  friend bool operator==(const EntityRef&, const EntityRef&) = default;
};

struct EntityRefHash {
  size_t operator()(const EntityRef& e) const {
    // Kind occupies one high bit; ids are 32-bit.
    return std::hash<uint64_t>()((static_cast<uint64_t>(e.kind) << 32) | e.id);
  }
};

}  // namespace scuba

#endif  // SCUBA_COMMON_TYPES_H_
