// Stopwatch: monotonic wall-clock timing for the experiment harness.

#ifndef SCUBA_COMMON_STOPWATCH_H_
#define SCUBA_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace scuba {

/// Measures elapsed monotonic time. Start() resets; Elapsed*() reads without
/// stopping, so one stopwatch can bracket several phases.
class Stopwatch {
 public:
  Stopwatch() { Start(); }

  void Start() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace scuba

#endif  // SCUBA_COMMON_STOPWATCH_H_
