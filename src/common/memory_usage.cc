#include "common/memory_usage.h"

#include <cstdio>

namespace scuba {

size_t StringMemoryUsage(const std::string& s) {
  // libstdc++ SSO buffer is 15 chars; longer strings heap-allocate capacity+1.
  if (s.capacity() <= 15) return 0;
  return s.capacity() + 1;
}

std::string FormatBytes(size_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", b / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

}  // namespace scuba
