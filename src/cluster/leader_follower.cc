#include "cluster/leader_follower.h"

#include <vector>

#include "common/check.h"

namespace scuba {

LeaderFollowerClusterer::LeaderFollowerClusterer(const ClustererOptions& options,
                                                 ClusterStore* store,
                                                 GridIndex* cluster_grid)
    : options_(options), store_(store), grid_(cluster_grid) {
  SCUBA_CHECK(store != nullptr && cluster_grid != nullptr);
  SCUBA_CHECK(options.theta_d >= 0.0 && options.theta_s >= 0.0);
}

Status SyncClusterGrid(GridIndex* grid, MovingCluster* cluster,
                       bool use_join_bounds, double padding) {
  Circle needed = use_join_bounds ? cluster->JoinBounds() : cluster->Bounds();
  if (grid->Contains(cluster->cid()) &&
      ContainsCircle(cluster->registered_bounds(), needed)) {
    return Status::OK();  // still covered by the previous registration
  }
  Circle padded{needed.center, needed.radius + padding};
  Status s = grid->Contains(cluster->cid())
                 ? grid->Update(cluster->cid(), padded)
                 : grid->Insert(cluster->cid(), padded);
  if (s.ok()) cluster->set_registered_bounds(padded);
  return s;
}

Status LeaderFollowerClusterer::SyncGrid(MovingCluster* cluster) {
  return SyncClusterGrid(grid_, cluster, options_.register_join_bounds,
                         options_.grid_sync_padding);
}

ClusterId LeaderFollowerClusterer::FindCompatibleCluster(Point position,
                                                         double speed,
                                                         NodeId dest) const {
  auto check = [&](ClusterId cid) {
    const MovingCluster* c = store_->GetCluster(cid);
    return c != nullptr &&
           c->SatisfiesJoinConditions(position, speed, dest, options_.theta_d,
                                      options_.theta_s);
  };

  if (!options_.probe_theta_d_disk) {
    // Paper step 1: probe the cell under the update.
    for (uint32_t cid : grid_->EntriesNear(position)) {
      if (check(cid)) return cid;
    }
    return kInvalidClusterId;
  }

  // Ablation variant: gather candidates from every cell within theta_d.
  std::vector<uint32_t> candidates;
  Rect probe{position.x - options_.theta_d, position.y - options_.theta_d,
             position.x + options_.theta_d, position.y + options_.theta_d};
  grid_->CollectInRect(probe, &candidates);
  for (uint32_t cid : candidates) {
    if (check(cid)) return cid;
  }
  return kInvalidClusterId;
}

Status LeaderFollowerClusterer::ProcessUpdate(EntityKind kind,
                                              const LocationUpdate* obj,
                                              const QueryUpdate* qry) {
  const Point position = (kind == EntityKind::kObject) ? obj->position
                                                       : qry->position;
  const double speed = (kind == EntityKind::kObject) ? obj->speed : qry->speed;
  const NodeId dest = (kind == EntityKind::kObject) ? obj->dest_node
                                                    : qry->dest_node;
  const uint32_t id = (kind == EntityKind::kObject) ? obj->oid : qry->qid;
  const EntityRef ref{kind, id};

  // Keep the paper's ObjectsTable / QueriesTable current.
  if (kind == EntityKind::kObject) {
    store_->UpsertObjectAttrs(obj->oid, obj->attrs);
  } else {
    store_->UpsertQueryAttrs(qry->qid, qry->attrs);
  }

  // Fast path: the entity already lives in a cluster; refresh it in place if
  // it still satisfies the admission conditions.
  ClusterId home = store_->HomeOf(ref);
  if (home != kInvalidClusterId) {
    MovingCluster* cluster = store_->GetCluster(home);
    SCUBA_CHECK_MSG(cluster != nullptr, "ClusterHome points at a missing cluster");
    if (cluster->SatisfiesJoinConditions(position, speed, dest,
                                         options_.theta_d, options_.theta_s)) {
      Status s = (kind == EntityKind::kObject)
                     ? cluster->UpdateObjectMember(*obj)
                     : cluster->UpdateQueryMember(*qry);
      SCUBA_RETURN_IF_ERROR(s);
      ++stats_.members_refreshed;
      if (nucleus_radius_ > 0.0 &&
          cluster->ShedMemberIfInNucleus(ref, nucleus_radius_)) {
        ++stats_.members_shed;
      }
      return SyncGrid(cluster);
    }
    // Conditions no longer hold (typically: passed a connection node and the
    // destination changed) — leave and re-cluster below.
    SCUBA_RETURN_IF_ERROR(cluster->RemoveMember(ref));
    SCUBA_RETURN_IF_ERROR(store_->ClearHome(ref));
    ++stats_.members_departed;
    if (cluster->size() == 0) {
      SCUBA_RETURN_IF_ERROR(grid_->Remove(home));
      SCUBA_RETURN_IF_ERROR(store_->RemoveCluster(home));
      ++stats_.clusters_dissolved_empty;
    } else {
      SCUBA_RETURN_IF_ERROR(SyncGrid(cluster));
    }
  }

  // Paper steps 1+3+4: probe the grid and join the first compatible cluster.
  ClusterId target = FindCompatibleCluster(position, speed, dest);
  if (target != kInvalidClusterId) {
    MovingCluster* cluster = store_->GetCluster(target);
    if (kind == EntityKind::kObject) {
      cluster->AbsorbObject(*obj);
    } else {
      cluster->AbsorbQuery(*qry);
    }
    SCUBA_RETURN_IF_ERROR(store_->SetHome(ref, target));
    ++stats_.members_absorbed;
    if (nucleus_radius_ > 0.0 &&
        cluster->ShedMemberIfInNucleus(ref, nucleus_radius_)) {
      ++stats_.members_shed;
    }
    return SyncGrid(cluster);
  }

  // Paper steps 2/5: no compatible cluster — start a new one here.
  ClusterId cid = store_->NextClusterId();
  MovingCluster fresh = (kind == EntityKind::kObject)
                            ? MovingCluster::FromObject(cid, *obj)
                            : MovingCluster::FromQuery(cid, *qry);
  SCUBA_RETURN_IF_ERROR(SyncGrid(&fresh));
  SCUBA_RETURN_IF_ERROR(store_->AddCluster(std::move(fresh)));
  ++stats_.clusters_created;
  return Status::OK();
}

Status LeaderFollowerClusterer::ProcessObjectUpdate(const LocationUpdate& u) {
  return ProcessUpdate(EntityKind::kObject, &u, nullptr);
}

Status LeaderFollowerClusterer::ProcessQueryUpdate(const QueryUpdate& u) {
  return ProcessUpdate(EntityKind::kQuery, nullptr, &u);
}

}  // namespace scuba
