#include "cluster/leader_follower.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"

namespace scuba {

LeaderFollowerClusterer::LeaderFollowerClusterer(const ClustererOptions& options,
                                                 ClusterStore* store,
                                                 GridIndex* cluster_grid)
    : options_(options), store_(store), grid_(cluster_grid) {
  SCUBA_CHECK(store != nullptr && cluster_grid != nullptr);
  SCUBA_CHECK(options.theta_d >= 0.0 && options.theta_s >= 0.0);
}

bool PlanClusterGridSync(const GridIndex& grid, MovingCluster* cluster,
                         bool use_join_bounds, double padding,
                         Circle* padded_out) {
  Circle needed = use_join_bounds ? cluster->JoinBounds() : cluster->Bounds();
  if (grid.Contains(cluster->cid()) &&
      ContainsCircle(cluster->registered_bounds(), needed)) {
    return false;  // still covered by the previous registration
  }
  Circle padded{needed.center, needed.radius + padding};
  cluster->set_registered_bounds(padded);
  *padded_out = padded;
  return true;
}

Status SyncClusterGrid(GridIndex* grid, MovingCluster* cluster,
                       bool use_join_bounds, double padding) {
  bool was_registered = grid->Contains(cluster->cid());
  Circle padded;
  if (!PlanClusterGridSync(*grid, cluster, use_join_bounds, padding, &padded)) {
    return Status::OK();
  }
  return was_registered ? grid->Update(cluster->cid(), padded)
                        : grid->Insert(cluster->cid(), padded);
}

Status LeaderFollowerClusterer::SyncGrid(MovingCluster* cluster) {
  return SyncClusterGrid(grid_, cluster, options_.register_join_bounds,
                         options_.grid_sync_padding);
}

ClusterId LeaderFollowerClusterer::FindCompatibleCluster(Point position,
                                                         double speed,
                                                         NodeId dest) const {
  auto check = [&](ClusterId cid) {
    const MovingCluster* c = store_->GetCluster(cid);
    return c != nullptr &&
           c->SatisfiesJoinConditions(position, speed, dest, options_.theta_d,
                                      options_.theta_s);
  };

  // The minimum compatible cid wins regardless of where candidates sit in a
  // cell's entry vector (see the header: this keeps clustering decisions
  // independent of grid-registration order).
  ClusterId best = kInvalidClusterId;
  if (!options_.probe_theta_d_disk) {
    // Paper step 1: probe the cell under the update.
    for (uint32_t cid : grid_->EntriesNear(position)) {
      if ((best == kInvalidClusterId || cid < best) && check(cid)) best = cid;
    }
    return best;
  }

  // Ablation variant: gather candidates from every cell within theta_d.
  std::vector<uint32_t> candidates;
  Rect probe{position.x - options_.theta_d, position.y - options_.theta_d,
             position.x + options_.theta_d, position.y + options_.theta_d};
  grid_->CollectInRect(probe, &candidates);
  for (uint32_t cid : candidates) {
    if ((best == kInvalidClusterId || cid < best) && check(cid)) best = cid;
  }
  return best;
}

Status LeaderFollowerClusterer::ProcessUpdate(EntityKind kind,
                                              const LocationUpdate* obj,
                                              const QueryUpdate* qry) {
  const Point position = (kind == EntityKind::kObject) ? obj->position
                                                       : qry->position;
  const double speed = (kind == EntityKind::kObject) ? obj->speed : qry->speed;
  const NodeId dest = (kind == EntityKind::kObject) ? obj->dest_node
                                                    : qry->dest_node;
  const uint32_t id = (kind == EntityKind::kObject) ? obj->oid : qry->qid;
  const EntityRef ref{kind, id};

  // Keep the paper's ObjectsTable / QueriesTable current.
  if (kind == EntityKind::kObject) {
    store_->UpsertObjectAttrs(obj->oid, obj->attrs);
  } else {
    store_->UpsertQueryAttrs(qry->qid, qry->attrs);
  }

  // Fast path: the entity already lives in a cluster; refresh it in place if
  // it still satisfies the admission conditions.
  ClusterId home = store_->HomeOf(ref);
  if (home != kInvalidClusterId) {
    MovingCluster* cluster = store_->GetCluster(home);
    SCUBA_CHECK_MSG(cluster != nullptr, "ClusterHome points at a missing cluster");
    if (cluster->SatisfiesJoinConditions(position, speed, dest,
                                         options_.theta_d, options_.theta_s)) {
      Status s = (kind == EntityKind::kObject)
                     ? cluster->UpdateObjectMember(*obj)
                     : cluster->UpdateQueryMember(*qry);
      SCUBA_RETURN_IF_ERROR(s);
      ++stats_.members_refreshed;
      if (nucleus_radius_ > 0.0 &&
          cluster->ShedMemberIfInNucleus(ref, nucleus_radius_)) {
        ++stats_.members_shed;
      }
      return SyncGrid(cluster);
    }
    // Conditions no longer hold (typically: passed a connection node and the
    // destination changed) — leave and re-cluster below.
    SCUBA_RETURN_IF_ERROR(cluster->RemoveMember(ref));
    SCUBA_RETURN_IF_ERROR(store_->ClearHome(ref));
    ++stats_.members_departed;
    if (cluster->size() == 0) {
      SCUBA_RETURN_IF_ERROR(grid_->Remove(home));
      SCUBA_RETURN_IF_ERROR(store_->RemoveCluster(home));
      ++stats_.clusters_dissolved_empty;
    } else {
      SCUBA_RETURN_IF_ERROR(SyncGrid(cluster));
    }
  }

  // Paper steps 1+3+4: probe the grid and join the first compatible cluster.
  ClusterId target = FindCompatibleCluster(position, speed, dest);
  if (target != kInvalidClusterId) {
    MovingCluster* cluster = store_->GetCluster(target);
    if (kind == EntityKind::kObject) {
      cluster->AbsorbObject(*obj);
    } else {
      cluster->AbsorbQuery(*qry);
    }
    SCUBA_RETURN_IF_ERROR(store_->SetHome(ref, target));
    ++stats_.members_absorbed;
    if (nucleus_radius_ > 0.0 &&
        cluster->ShedMemberIfInNucleus(ref, nucleus_radius_)) {
      ++stats_.members_shed;
    }
    return SyncGrid(cluster);
  }

  // Paper steps 2/5: no compatible cluster — start a new one here.
  ClusterId cid = store_->NextClusterId();
  MovingCluster fresh = (kind == EntityKind::kObject)
                            ? MovingCluster::FromObject(cid, *obj)
                            : MovingCluster::FromQuery(cid, *qry);
  SCUBA_RETURN_IF_ERROR(SyncGrid(&fresh));
  SCUBA_RETURN_IF_ERROR(store_->AddCluster(std::move(fresh)));
  ++stats_.clusters_created;
  return Status::OK();
}

Status LeaderFollowerClusterer::ProcessObjectUpdate(const LocationUpdate& u) {
  return ProcessUpdate(EntityKind::kObject, &u, nullptr);
}

Status LeaderFollowerClusterer::ProcessQueryUpdate(const QueryUpdate& u) {
  return ProcessUpdate(EntityKind::kQuery, nullptr, &u);
}

namespace {

/// One update of a batch, in serial delivery order (objects before queries).
struct BatchItem {
  EntityKind kind = EntityKind::kObject;
  const LocationUpdate* obj = nullptr;
  const QueryUpdate* qry = nullptr;
  EntityRef ref;
  Point position;
  ClusterId home = kInvalidClusterId;  ///< Pre-batch home (phase A output).
  bool residual = false;               ///< Replays the per-update path.
};

/// Refresh simulation for one home cluster (phase A work unit).
struct ClusterShard {
  ClusterId cid = kInvalidClusterId;
  std::vector<size_t> item_indices;      ///< Batch positions, ascending.
  std::optional<MovingCluster> sim;      ///< Private copy holding the result.
  std::vector<uint32_t> cells_union;     ///< Every cell occupied mid-batch.
  Circle final_registration;             ///< Last planned grid circle.
  bool resync = false;                   ///< Grid registration changed.
  bool passed = false;                   ///< Every refresh admitted cleanly.
  bool eligible = false;                 ///< passed && unobservable by residuals.
  uint64_t refreshed = 0;
  uint64_t shed = 0;
};

}  // namespace

Status LeaderFollowerClusterer::ProcessBatch(
    std::span<const LocationUpdate> objects,
    std::span<const QueryUpdate> queries, ThreadPool* pool, uint32_t tasks,
    double* worker_seconds, IngestPhaseTimings* timings) {
  if (worker_seconds != nullptr) *worker_seconds = 0.0;
  if (tasks <= 1 || pool == nullptr || objects.size() + queries.size() <= 1) {
    Stopwatch serial;
    for (const LocationUpdate& u : objects) {
      SCUBA_RETURN_IF_ERROR(ProcessObjectUpdate(u));
    }
    for (const QueryUpdate& u : queries) {
      SCUBA_RETURN_IF_ERROR(ProcessQueryUpdate(u));
    }
    const double elapsed = serial.ElapsedSeconds();
    if (worker_seconds != nullptr) *worker_seconds = elapsed;
    if (timings != nullptr) timings->apply_seconds += elapsed;
    return Status::OK();
  }
  Stopwatch phase_sw;

  std::vector<BatchItem> items;
  items.reserve(objects.size() + queries.size());
  for (const LocationUpdate& u : objects) {
    BatchItem it;
    it.kind = EntityKind::kObject;
    it.obj = &u;
    it.ref = EntityRef{EntityKind::kObject, u.oid};
    it.position = u.position;
    items.push_back(it);
  }
  for (const QueryUpdate& u : queries) {
    BatchItem it;
    it.kind = EntityKind::kQuery;
    it.qry = &u;
    it.ref = EntityRef{EntityKind::kQuery, u.qid};
    it.position = u.position;
    items.push_back(it);
  }

  // ---- Phase A1 (parallel, read-only): resolve each update's pre-batch home
  // cluster and the grid cells its re-cluster probe would read.
  std::vector<std::vector<uint32_t>> probe_cells(items.size());
  {
    std::atomic<size_t> cursor{0};
    constexpr size_t kChunk = 256;
    SCUBA_RETURN_IF_ERROR(RunTaskSet(pool, tasks, [&](uint32_t) {
      for (;;) {
        size_t begin = cursor.fetch_add(kChunk, std::memory_order_relaxed);
        if (begin >= items.size()) break;
        size_t end = std::min(items.size(), begin + kChunk);
        for (size_t i = begin; i < end; ++i) {
          BatchItem& it = items[i];
          it.home = store_->HomeOf(it.ref);
          if (!options_.probe_theta_d_disk) {
            probe_cells[i].push_back(grid_->CellIndexOf(it.position));
          } else {
            Rect probe{it.position.x - options_.theta_d,
                       it.position.y - options_.theta_d,
                       it.position.x + options_.theta_d,
                       it.position.y + options_.theta_d};
            grid_->CellsForRect(probe, &probe_cells[i]);
          }
        }
      }
    }, worker_seconds));
  }

  // Group refresh candidates by home cluster, preserving batch order inside
  // each group. Homeless updates go straight to the residual replay. Items of
  // one entity always share a group (they share the pre-batch home map), so
  // replays of the same entity keep their relative order.
  std::vector<ClusterShard> shards;
  std::unordered_map<ClusterId, size_t> shard_of;
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].home == kInvalidClusterId) {
      items[i].residual = true;
      continue;
    }
    auto [it, inserted] = shard_of.emplace(items[i].home, shards.size());
    if (inserted) {
      shards.emplace_back();
      shards.back().cid = items[i].home;
    }
    shards[it->second].item_indices.push_back(i);
  }
  std::sort(shards.begin(), shards.end(),
            [](const ClusterShard& a, const ClusterShard& b) {
              return a.cid < b.cid;
            });

  // ---- Phase A2 (parallel): simulate each home cluster's refresh sequence
  // on a private copy. Any failed admission test demotes the whole cluster to
  // the residual replay — its live state stays untouched.
  {
    std::atomic<size_t> cursor{0};
    SCUBA_RETURN_IF_ERROR(RunTaskSet(pool, tasks, [&](uint32_t) {
      for (;;) {
        size_t s = cursor.fetch_add(1, std::memory_order_relaxed);
        if (s >= shards.size()) break;
        ClusterShard& shard = shards[s];
        const MovingCluster* live = store_->GetCluster(shard.cid);
        SCUBA_CHECK_MSG(live != nullptr,
                        "ClusterHome points at a missing cluster");
        const std::vector<uint32_t>* cells0 = grid_->CellsOf(shard.cid);
        if (cells0 == nullptr) continue;  // unregistered: replay serially
        shard.cells_union = *cells0;
        shard.sim.emplace(*live);
        MovingCluster& sim = *shard.sim;
        bool ok = true;
        for (size_t idx : shard.item_indices) {
          const BatchItem& it = items[idx];
          const double speed = it.obj != nullptr ? it.obj->speed
                                                 : it.qry->speed;
          const NodeId dest = it.obj != nullptr ? it.obj->dest_node
                                                : it.qry->dest_node;
          if (!sim.SatisfiesJoinConditions(it.position, speed, dest,
                                           options_.theta_d,
                                           options_.theta_s)) {
            ok = false;  // serial execution would depart here
            break;
          }
          Status refresh = it.obj != nullptr ? sim.UpdateObjectMember(*it.obj)
                                             : sim.UpdateQueryMember(*it.qry);
          if (!refresh.ok()) {
            ok = false;
            break;
          }
          ++shard.refreshed;
          if (nucleus_radius_ > 0.0 &&
              sim.ShedMemberIfInNucleus(it.ref, nucleus_radius_)) {
            ++shard.shed;
          }
          Circle padded;
          if (PlanClusterGridSync(*grid_, &sim, options_.register_join_bounds,
                                  options_.grid_sync_padding, &padded)) {
            shard.resync = true;
            shard.final_registration = padded;
            grid_->CellsForCircle(padded, &shard.cells_union);
          }
        }
        shard.passed = ok;
        if (ok) {
          std::sort(shard.cells_union.begin(), shard.cells_union.end());
          shard.cells_union.erase(std::unique(shard.cells_union.begin(),
                                              shard.cells_union.end()),
                                  shard.cells_union.end());
        }
      }
    }, worker_seconds));
  }

  // ---- Eligibility (serial): a simulated cluster may publish only if no
  // cell it ever occupies during the batch is probed by a residual update —
  // then no residual replay can observe it (neither as a probe candidate nor
  // as an absorb target), so publishing before the replay is equivalent to
  // the serial interleaving. Demoted clusters create no new probe threats:
  // their refreshes pass admission in serial execution too and never probe.
  for (ClusterShard& shard : shards) {
    if (shard.passed) continue;
    for (size_t idx : shard.item_indices) items[idx].residual = true;
  }
  std::vector<char> threat(grid_->CellCount(), 0);
  for (size_t i = 0; i < items.size(); ++i) {
    if (!items[i].residual) continue;
    for (uint32_t cell : probe_cells[i]) threat[cell] = 1;
  }
  for (ClusterShard& shard : shards) {
    if (!shard.passed) continue;
    shard.eligible = true;
    for (uint32_t cell : shard.cells_union) {
      if (threat[cell] != 0) {
        shard.eligible = false;
        break;
      }
    }
    if (!shard.eligible) {
      for (size_t idx : shard.item_indices) items[idx].residual = true;
    }
  }

  if (timings != nullptr) {
    timings->classify_seconds += phase_sw.ElapsedSeconds();
    phase_sw.Start();
  }

  // ---- Phase B (serial). Attribute-table upserts first: nothing reads the
  // tables mid-batch, and per-entity last-writer order matches delivery
  // order. The residual replay below harmlessly re-upserts its subset.
  for (const BatchItem& it : items) {
    if (it.obj != nullptr) {
      store_->UpsertObjectAttrs(it.obj->oid, it.obj->attrs);
    } else {
      store_->UpsertQueryAttrs(it.qry->qid, it.qry->attrs);
    }
  }

  // Publish eligible clusters in ascending cid order (shards are sorted).
  for (ClusterShard& shard : shards) {
    if (!shard.eligible) continue;
    MovingCluster* live = store_->GetCluster(shard.cid);
    *live = std::move(*shard.sim);
    stats_.members_refreshed += shard.refreshed;
    stats_.members_shed += shard.shed;
    if (shard.resync) {
      SCUBA_RETURN_IF_ERROR(grid_->Update(shard.cid, shard.final_registration));
    }
  }

  // Replay everything else through the exact per-update path in batch order.
  // New-cluster ids are allocated only here, so the allocation sequence is
  // identical to serial execution.
  for (const BatchItem& it : items) {
    if (!it.residual) continue;
    SCUBA_RETURN_IF_ERROR(ProcessUpdate(it.kind, it.obj, it.qry));
  }
  if (timings != nullptr) timings->apply_seconds += phase_sw.ElapsedSeconds();
  return Status::OK();
}

}  // namespace scuba
