// K-means clustering: the paper's non-incremental baseline (§6.4).
//
// The paper compares SCUBA's incremental Leader–Follower clustering against
// offline K-means run over the full snapshot of location updates, with k
// estimated by a tracking counter over the number of unique destinations and
// 1..10 Lloyd iterations. This module reproduces that baseline and can
// populate a ClusterStore/ClusterGrid from the result so the identical SCUBA
// join phase runs on K-means clusters.

#ifndef SCUBA_CLUSTER_KMEANS_H_
#define SCUBA_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "cluster/cluster_store.h"
#include "common/status.h"
#include "gen/update.h"
#include "index/grid_index.h"

namespace scuba {

struct KMeansOptions {
  /// Lloyd iterations to run (>= 1).
  uint32_t iterations = 5;
  /// Number of clusters; 0 derives k from the number of unique destination
  /// nodes in the input (the paper's estimate).
  uint32_t k = 0;
};

struct KMeansResult {
  uint32_t k = 0;
  uint32_t iterations_run = 0;
  /// assignment[i] = cluster of input point i (objects first, then queries).
  std::vector<uint32_t> assignment;
  std::vector<Point> centroids;
  /// Sum of squared point-to-centroid distances (clustering quality).
  double inertia = 0.0;
};

/// Runs Lloyd's algorithm over the snapshot. Points are the update positions;
/// initial centroids are the first update seen for each distinct destination
/// node (deterministic). Fails on an empty snapshot or zero iterations.
Result<KMeansResult> KMeansCluster(
    const std::vector<LocationUpdate>& object_updates,
    const std::vector<QueryUpdate>& query_updates, const KMeansOptions& options);

/// Materializes the K-means output as MovingClusters in `store` + `grid`
/// (store/grid must be empty) so the SCUBA join phase can run unchanged on
/// non-incremental clusters.
Status PopulateFromKMeans(const std::vector<LocationUpdate>& object_updates,
                          const std::vector<QueryUpdate>& query_updates,
                          const KMeansResult& result, ClusterStore* store,
                          GridIndex* grid);

}  // namespace scuba

#endif  // SCUBA_CLUSTER_KMEANS_H_
