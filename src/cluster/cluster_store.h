// ClusterStore: SCUBA's in-memory tables (paper §4.1, Fig. 5).
//
// Bundles four of the paper's five data structures — ObjectsTable,
// QueriesTable, ClusterHome (entity -> cluster map) and ClusterStorage
// (cid -> MovingCluster) — behind one consistent API. The fifth structure,
// ClusterGrid, is a GridIndex owned by the engine/clusterer.
//
// Membership invariant (checked by ValidateConsistency): entity e has
// HomeOf(e) == cid  <=>  cluster cid contains a member with e's reference.

#ifndef SCUBA_CLUSTER_CLUSTER_STORE_H_
#define SCUBA_CLUSTER_CLUSTER_STORE_H_

#include <unordered_map>

#include "cluster/moving_cluster.h"
#include "common/status.h"
#include "common/types.h"

namespace scuba {

class ClusterStore {
 public:
  /// Allocates a fresh cluster id (monotonic, never reused).
  ClusterId NextClusterId() { return next_cid_++; }

  /// Registers a cluster and home entries for all its members. Fails
  /// (AlreadyExists) on a duplicate cid or if any member already has a home.
  Status AddCluster(MovingCluster cluster);

  /// Looks up a cluster; nullptr if absent.
  MovingCluster* GetCluster(ClusterId cid);
  const MovingCluster* GetCluster(ClusterId cid) const;

  /// Drops a cluster and clears its members' home entries. NotFound if absent.
  Status RemoveCluster(ClusterId cid);

  /// Current cluster of an entity, or kInvalidClusterId.
  ClusterId HomeOf(EntityRef ref) const;

  /// Points `ref`'s home at `cid` (cluster must exist). AlreadyExists if the
  /// entity already has a home — remove it first.
  Status SetHome(EntityRef ref, ClusterId cid);

  /// Clears an entity's home entry. NotFound if it had none.
  Status ClearHome(EntityRef ref);

  /// ObjectsTable / QueriesTable: descriptive attributes per entity.
  void UpsertObjectAttrs(ObjectId oid, uint64_t attrs) { objects_[oid] = attrs; }
  void UpsertQueryAttrs(QueryId qid, uint64_t attrs) { queries_[qid] = attrs; }
  Result<uint64_t> ObjectAttrs(ObjectId oid) const;
  Result<uint64_t> QueryAttrs(QueryId qid) const;
  size_t ObjectsTableSize() const { return objects_.size(); }
  size_t QueriesTableSize() const { return queries_.size(); }

  size_t ClusterCount() const { return clusters_.size(); }
  size_t HomeCount() const { return home_.size(); }

  const std::unordered_map<ClusterId, MovingCluster>& clusters() const {
    return clusters_;
  }
  std::unordered_map<ClusterId, MovingCluster>& mutable_clusters() {
    return clusters_;
  }

  /// All stored cluster ids, ascending. The stable enumeration every phase
  /// that shards or mutates the store iterates, so downstream effects never
  /// depend on hash-map iteration order.
  std::vector<ClusterId> SortedClusterIds() const;

  /// Removes everything.
  void Clear();

  /// Verifies the membership invariant; Internal status describing the first
  /// violation, OK otherwise. Test/debug aid.
  Status ValidateConsistency() const;

  /// Analytic heap bytes across all four tables.
  size_t EstimateMemoryUsage() const;

 private:
  friend struct PersistAccess;  ///< Snapshot serialization (src/persist).
  ClusterId next_cid_ = 0;
  std::unordered_map<ClusterId, MovingCluster> clusters_;
  std::unordered_map<EntityRef, ClusterId, EntityRefHash> home_;
  std::unordered_map<ObjectId, uint64_t> objects_;
  std::unordered_map<QueryId, uint64_t> queries_;
};

}  // namespace scuba

#endif  // SCUBA_CLUSTER_CLUSTER_STORE_H_
