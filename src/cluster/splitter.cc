#include "cluster/splitter.h"

#include <vector>

#include "common/check.h"

namespace scuba {

namespace {

struct MemberAt {
  const ClusterMember* member;
  Point position;
};

LocationUpdate ObjectUpdateFrom(const ClusterMember& m, Point position,
                                const MovingCluster& cluster) {
  LocationUpdate u;
  u.oid = m.id;
  u.position = position;
  u.time = m.update_time;
  u.speed = m.speed;
  u.dest_node = cluster.dest_node();
  u.dest_position = cluster.dest_position();
  u.attrs = m.attrs;
  return u;
}

QueryUpdate QueryUpdateFrom(const ClusterMember& m, Point position,
                            const MovingCluster& cluster) {
  QueryUpdate u;
  u.qid = m.id;
  u.position = position;
  u.time = m.update_time;
  u.speed = m.speed;
  u.dest_node = cluster.dest_node();
  u.dest_position = cluster.dest_position();
  u.range_width = m.range_width;
  u.range_height = m.range_height;
  u.attrs = m.attrs;
  u.required_attrs = m.required_attrs;
  return u;
}

/// Builds a new cluster with id `cid` from the given members of `source`.
MovingCluster BuildFrom(const std::vector<MemberAt>& members, ClusterId cid,
                        const MovingCluster& source) {
  SCUBA_CHECK(!members.empty());
  const MemberAt& first = members[0];
  MovingCluster cluster =
      first.member->kind == EntityKind::kObject
          ? MovingCluster::FromObject(
                cid, ObjectUpdateFrom(*first.member, first.position, source))
          : MovingCluster::FromQuery(
                cid, QueryUpdateFrom(*first.member, first.position, source));
  for (size_t i = 1; i < members.size(); ++i) {
    const MemberAt& ma = members[i];
    if (ma.member->kind == EntityKind::kObject) {
      cluster.AbsorbObject(ObjectUpdateFrom(*ma.member, ma.position, source));
    } else {
      cluster.AbsorbQuery(QueryUpdateFrom(*ma.member, ma.position, source));
    }
  }
  cluster.RecomputeTightBounds();
  return cluster;
}

}  // namespace

bool ShouldSplit(const MovingCluster& cluster, double max_radius) {
  return cluster.size() >= 2 && cluster.radius() > max_radius;
}

Result<SplitResult> SplitCluster(const MovingCluster& cluster,
                                 ClusterId left_cid, ClusterId right_cid) {
  if (cluster.size() < 2) {
    return Status::FailedPrecondition("cannot split a cluster of fewer than 2");
  }
  std::vector<MemberAt> members;
  members.reserve(cluster.size());
  for (const ClusterMember& m : cluster.members()) {
    members.push_back(MemberAt{&m, cluster.MemberPosition(m)});
  }

  // Seed with the two mutually farthest points (greedy 2-sweep).
  size_t a = 0;
  for (size_t i = 1; i < members.size(); ++i) {
    if (SquaredDistance(members[0].position, members[i].position) >
        SquaredDistance(members[0].position, members[a].position)) {
      a = i;
    }
  }
  size_t b = a == 0 ? 1 : 0;
  for (size_t i = 0; i < members.size(); ++i) {
    if (i == a) continue;
    if (SquaredDistance(members[a].position, members[i].position) >
        SquaredDistance(members[a].position, members[b].position)) {
      b = i;
    }
  }
  if (members[a].position == members[b].position) {
    return Status::FailedPrecondition("all members are co-located");
  }

  Point seed_left = members[a].position;
  Point seed_right = members[b].position;
  std::vector<bool> goes_left(members.size(), false);

  // Deterministic 2-means (few iterations converge on these sizes).
  for (int iter = 0; iter < 8; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < members.size(); ++i) {
      bool left = SquaredDistance(members[i].position, seed_left) <=
                  SquaredDistance(members[i].position, seed_right);
      if (left != goes_left[i]) {
        goes_left[i] = left;
        changed = true;
      }
    }
    Point sum_l{0, 0};
    Point sum_r{0, 0};
    size_t n_l = 0;
    size_t n_r = 0;
    for (size_t i = 0; i < members.size(); ++i) {
      if (goes_left[i]) {
        sum_l.x += members[i].position.x;
        sum_l.y += members[i].position.y;
        ++n_l;
      } else {
        sum_r.x += members[i].position.x;
        sum_r.y += members[i].position.y;
        ++n_r;
      }
    }
    if (n_l == 0 || n_r == 0) {
      // Degenerate assignment; force the seeds apart.
      goes_left.assign(members.size(), false);
      goes_left[a] = true;
      break;
    }
    seed_left = Point{sum_l.x / static_cast<double>(n_l),
                      sum_l.y / static_cast<double>(n_l)};
    seed_right = Point{sum_r.x / static_cast<double>(n_r),
                       sum_r.y / static_cast<double>(n_r)};
    if (!changed) break;
  }

  std::vector<MemberAt> left_members;
  std::vector<MemberAt> right_members;
  for (size_t i = 0; i < members.size(); ++i) {
    (goes_left[i] ? left_members : right_members).push_back(members[i]);
  }
  SCUBA_CHECK(!left_members.empty() && !right_members.empty());

  SplitResult result{BuildFrom(left_members, left_cid, cluster),
                     BuildFrom(right_members, right_cid, cluster)};
  return result;
}

}  // namespace scuba
