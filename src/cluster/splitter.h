// Cluster splitting: quality maintenance for deteriorating clusters.
//
// The paper (§3.1) dissolves a cluster when it reaches its destination and
// explicitly defers alternatives: "Alternate options are possible here (e.g.,
// splitting a moving cluster). We plan to explore this as part of our future
// work." This module implements that option: when a cluster's covering radius
// deteriorates past a threshold, its members are re-partitioned into two
// clusters by a deterministic 2-means pass, restoring compactness without
// waiting for the destination (tighter clusters = a sharper join-between
// filter; see the clustering quality discussion in §3.1).

#ifndef SCUBA_CLUSTER_SPLITTER_H_
#define SCUBA_CLUSTER_SPLITTER_H_

#include <utility>

#include "cluster/moving_cluster.h"
#include "common/status.h"

namespace scuba {

/// Outcome of splitting one cluster into two.
struct SplitResult {
  MovingCluster left;
  MovingCluster right;
};

/// True iff `cluster` is a splitting candidate: at least two members and a
/// covering radius above `max_radius`.
bool ShouldSplit(const MovingCluster& cluster, double max_radius);

/// Partitions `cluster`'s members into two new clusters (ids `left_cid` /
/// `right_cid`) via deterministic 2-means on reconstructed positions, seeded
/// with the two mutually farthest of the first members. Shed members
/// participate at their nucleus position and come out un-shed (their best
/// estimate becomes their position; the shedder re-sheds them next round).
/// Fails (FailedPrecondition) when the cluster has fewer than two members or
/// all members are co-located (nothing to split).
Result<SplitResult> SplitCluster(const MovingCluster& cluster,
                                 ClusterId left_cid, ClusterId right_cid);

}  // namespace scuba

#endif  // SCUBA_CLUSTER_SPLITTER_H_
