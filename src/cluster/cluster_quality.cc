#include "cluster/cluster_quality.h"

#include <algorithm>
#include <cstdio>

namespace scuba {

std::string ClusterQuality::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "clusters=%zu members=%zu singletons=%zu mixed=%zu "
                "avg_members=%.2f avg_radius=%.2f max_radius=%.2f msd=%.2f",
                cluster_count, member_count, singleton_count, mixed_count,
                avg_members, avg_radius, max_radius, mean_squared_distance);
  return buf;
}

ClusterQuality EvaluateClusterQuality(const ClusterStore& store) {
  ClusterQuality q;
  double radius_sum = 0.0;
  double sq_dist_sum = 0.0;
  for (const auto& [cid, cluster] : store.clusters()) {
    (void)cid;
    ++q.cluster_count;
    q.member_count += cluster.size();
    if (cluster.size() == 1) ++q.singleton_count;
    if (cluster.HasMixedKinds()) ++q.mixed_count;
    radius_sum += cluster.radius();
    q.max_radius = std::max(q.max_radius, cluster.radius());
    for (const ClusterMember& m : cluster.members()) {
      sq_dist_sum +=
          SquaredDistance(cluster.centroid(), cluster.MemberPosition(m));
    }
  }
  if (q.cluster_count > 0) {
    q.avg_members =
        static_cast<double>(q.member_count) / static_cast<double>(q.cluster_count);
    q.avg_radius = radius_sum / static_cast<double>(q.cluster_count);
  }
  if (q.member_count > 0) {
    q.mean_squared_distance = sq_dist_sum / static_cast<double>(q.member_count);
  }
  return q;
}

}  // namespace scuba
