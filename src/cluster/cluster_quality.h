// Cluster-quality metrics for the incremental-vs-offline comparison (§6.4):
// compactness (mean squared member-to-centroid distance), radii and
// population statistics over a ClusterStore.

#ifndef SCUBA_CLUSTER_CLUSTER_QUALITY_H_
#define SCUBA_CLUSTER_CLUSTER_QUALITY_H_

#include <cstddef>
#include <string>

#include "cluster/cluster_store.h"

namespace scuba {

struct ClusterQuality {
  size_t cluster_count = 0;
  size_t member_count = 0;
  size_t singleton_count = 0;   ///< Single-member clusters.
  size_t mixed_count = 0;       ///< Clusters holding both objects and queries.
  double avg_members = 0.0;
  double avg_radius = 0.0;
  double max_radius = 0.0;
  /// Mean squared member-to-centroid distance (k-means inertia / member):
  /// lower = more compact clustering.
  double mean_squared_distance = 0.0;

  std::string ToString() const;
};

/// Computes quality metrics over every cluster in `store`.
ClusterQuality EvaluateClusterQuality(const ClusterStore& store);

}  // namespace scuba

#endif  // SCUBA_CLUSTER_CLUSTER_QUALITY_H_
