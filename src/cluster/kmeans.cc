#include "cluster/kmeans.h"

#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace scuba {

namespace {

struct Snapshot {
  std::vector<Point> points;
  std::vector<NodeId> dests;
};

Snapshot Collect(const std::vector<LocationUpdate>& objs,
                 const std::vector<QueryUpdate>& qrys) {
  Snapshot s;
  s.points.reserve(objs.size() + qrys.size());
  s.dests.reserve(objs.size() + qrys.size());
  for (const LocationUpdate& u : objs) {
    s.points.push_back(u.position);
    s.dests.push_back(u.dest_node);
  }
  for (const QueryUpdate& u : qrys) {
    s.points.push_back(u.position);
    s.dests.push_back(u.dest_node);
  }
  return s;
}

}  // namespace

Result<KMeansResult> KMeansCluster(const std::vector<LocationUpdate>& objs,
                                   const std::vector<QueryUpdate>& qrys,
                                   const KMeansOptions& options) {
  if (objs.empty() && qrys.empty()) {
    return Status::InvalidArgument("k-means needs at least one update");
  }
  if (options.iterations == 0) {
    return Status::InvalidArgument("k-means needs at least one iteration");
  }

  Snapshot snap = Collect(objs, qrys);
  const size_t n = snap.points.size();

  // Seed: the paper estimates k by counting unique destinations; we seed one
  // centroid at the first point heading to each distinct destination.
  std::vector<Point> centroids;
  if (options.k == 0) {
    std::unordered_set<NodeId> seen;
    for (size_t i = 0; i < n; ++i) {
      if (seen.insert(snap.dests[i]).second) {
        centroids.push_back(snap.points[i]);
      }
    }
  } else {
    uint32_t k = options.k;
    if (static_cast<size_t>(k) > n) k = static_cast<uint32_t>(n);
    // Evenly spaced sample of the input as seeds (deterministic).
    for (uint32_t c = 0; c < k; ++c) {
      centroids.push_back(snap.points[(static_cast<size_t>(c) * n) / k]);
    }
  }
  const uint32_t k = static_cast<uint32_t>(centroids.size());
  SCUBA_CHECK(k >= 1);

  KMeansResult result;
  result.k = k;
  result.assignment.assign(n, 0);

  std::vector<Point> sums(k);
  std::vector<size_t> counts(k);
  for (uint32_t iter = 0; iter < options.iterations; ++iter) {
    // Assignment step.
    result.inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      uint32_t best_c = 0;
      for (uint32_t c = 0; c < k; ++c) {
        double d2 = SquaredDistance(snap.points[i], centroids[c]);
        if (d2 < best) {
          best = d2;
          best_c = c;
        }
      }
      result.assignment[i] = best_c;
      result.inertia += best;
    }
    result.iterations_run = iter + 1;

    // Update step (empty clusters keep their centroid).
    for (uint32_t c = 0; c < k; ++c) {
      sums[c] = Point{0.0, 0.0};
      counts[c] = 0;
    }
    for (size_t i = 0; i < n; ++i) {
      uint32_t c = result.assignment[i];
      sums[c].x += snap.points[i].x;
      sums[c].y += snap.points[i].y;
      counts[c]++;
    }
    for (uint32_t c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        centroids[c] = Point{sums[c].x / static_cast<double>(counts[c]),
                             sums[c].y / static_cast<double>(counts[c])};
      }
    }
  }
  result.centroids = std::move(centroids);
  return result;
}

Status PopulateFromKMeans(const std::vector<LocationUpdate>& objs,
                          const std::vector<QueryUpdate>& qrys,
                          const KMeansResult& result, ClusterStore* store,
                          GridIndex* grid) {
  if (store == nullptr || grid == nullptr) {
    return Status::InvalidArgument("store/grid must be non-null");
  }
  if (store->ClusterCount() != 0 || grid->size() != 0) {
    return Status::FailedPrecondition("store and grid must start empty");
  }
  if (result.assignment.size() != objs.size() + qrys.size()) {
    return Status::InvalidArgument("assignment size does not match snapshot");
  }

  // Build one MovingCluster per non-empty k-means cluster by absorbing its
  // members in input order.
  std::unordered_map<uint32_t, ClusterId> kmeans_to_cid;
  std::unordered_map<ClusterId, MovingCluster> building;
  for (size_t i = 0; i < result.assignment.size(); ++i) {
    uint32_t c = result.assignment[i];
    const bool is_object = i < objs.size();
    auto it = kmeans_to_cid.find(c);
    if (it == kmeans_to_cid.end()) {
      ClusterId cid = store->NextClusterId();
      kmeans_to_cid.emplace(c, cid);
      MovingCluster fresh =
          is_object ? MovingCluster::FromObject(cid, objs[i])
                    : MovingCluster::FromQuery(cid, qrys[i - objs.size()]);
      building.emplace(cid, std::move(fresh));
    } else {
      MovingCluster& cluster = building.at(it->second);
      if (is_object) {
        cluster.AbsorbObject(objs[i]);
      } else {
        cluster.AbsorbQuery(qrys[i - objs.size()]);
      }
    }
  }

  for (auto& [cid, cluster] : building) {
    cluster.RecomputeTightBounds();
    SCUBA_RETURN_IF_ERROR(grid->Insert(cid, cluster.Bounds()));
    SCUBA_RETURN_IF_ERROR(store->AddCluster(std::move(cluster)));
  }
  return Status::OK();
}

}  // namespace scuba
