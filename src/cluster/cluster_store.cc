#include "cluster/cluster_store.h"

#include <algorithm>
#include <string>

#include "common/memory_usage.h"

namespace scuba {

Status ClusterStore::AddCluster(MovingCluster cluster) {
  ClusterId cid = cluster.cid();
  if (clusters_.contains(cid)) {
    return Status::AlreadyExists("cluster " + std::to_string(cid) +
                                 " already stored");
  }
  for (const ClusterMember& m : cluster.members()) {
    if (home_.contains(m.Ref())) {
      return Status::AlreadyExists("member already belongs to another cluster");
    }
  }
  for (const ClusterMember& m : cluster.members()) {
    home_.emplace(m.Ref(), cid);
  }
  clusters_.emplace(cid, std::move(cluster));
  return Status::OK();
}

MovingCluster* ClusterStore::GetCluster(ClusterId cid) {
  auto it = clusters_.find(cid);
  return it == clusters_.end() ? nullptr : &it->second;
}

const MovingCluster* ClusterStore::GetCluster(ClusterId cid) const {
  auto it = clusters_.find(cid);
  return it == clusters_.end() ? nullptr : &it->second;
}

Status ClusterStore::RemoveCluster(ClusterId cid) {
  auto it = clusters_.find(cid);
  if (it == clusters_.end()) {
    return Status::NotFound("cluster " + std::to_string(cid) + " not stored");
  }
  for (const ClusterMember& m : it->second.members()) {
    home_.erase(m.Ref());
  }
  clusters_.erase(it);
  return Status::OK();
}

ClusterId ClusterStore::HomeOf(EntityRef ref) const {
  auto it = home_.find(ref);
  return it == home_.end() ? kInvalidClusterId : it->second;
}

Status ClusterStore::SetHome(EntityRef ref, ClusterId cid) {
  if (!clusters_.contains(cid)) {
    return Status::NotFound("cluster " + std::to_string(cid) + " not stored");
  }
  auto [it, inserted] = home_.emplace(ref, cid);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("entity already has a home cluster");
  }
  return Status::OK();
}

Status ClusterStore::ClearHome(EntityRef ref) {
  if (home_.erase(ref) == 0) {
    return Status::NotFound("entity has no home cluster");
  }
  return Status::OK();
}

Result<uint64_t> ClusterStore::ObjectAttrs(ObjectId oid) const {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(oid) +
                            " not in ObjectsTable");
  }
  return it->second;
}

Result<uint64_t> ClusterStore::QueryAttrs(QueryId qid) const {
  auto it = queries_.find(qid);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(qid) +
                            " not in QueriesTable");
  }
  return it->second;
}

std::vector<ClusterId> ClusterStore::SortedClusterIds() const {
  std::vector<ClusterId> cids;
  cids.reserve(clusters_.size());
  for (const auto& [cid, cluster] : clusters_) {
    (void)cluster;
    cids.push_back(cid);
  }
  std::sort(cids.begin(), cids.end());
  return cids;
}

void ClusterStore::Clear() {
  clusters_.clear();
  home_.clear();
  objects_.clear();
  queries_.clear();
}

Status ClusterStore::ValidateConsistency() const {
  size_t member_total = 0;
  for (const auto& [cid, cluster] : clusters_) {
    if (cluster.cid() != cid) {
      return Status::Internal("cluster stored under wrong id");
    }
    if (cluster.size() == 0) {
      return Status::Internal("empty cluster " + std::to_string(cid) +
                              " should have been dissolved");
    }
    member_total += cluster.size();
    for (const ClusterMember& m : cluster.members()) {
      auto it = home_.find(m.Ref());
      if (it == home_.end()) {
        return Status::Internal("member has no ClusterHome entry");
      }
      if (it->second != cid) {
        return Status::Internal("member's ClusterHome points elsewhere");
      }
    }
  }
  if (member_total != home_.size()) {
    return Status::Internal("ClusterHome has entries for non-members");
  }
  return Status::OK();
}

size_t ClusterStore::EstimateMemoryUsage() const {
  size_t bytes = UnorderedMapMemoryUsage(clusters_) +
                 UnorderedMapMemoryUsage(home_) +
                 UnorderedMapMemoryUsage(objects_) +
                 UnorderedMapMemoryUsage(queries_);
  for (const auto& [cid, cluster] : clusters_) {
    (void)cid;
    bytes += cluster.EstimateMemoryUsage();
  }
  return bytes;
}

}  // namespace scuba
