// LeaderFollowerClusterer: incremental moving-cluster formation (paper §3.2).
//
// Adapts Leader–Follower clustering to location-update streams: each arriving
// update either refreshes the entity inside its current cluster, is absorbed
// by a nearby compatible cluster found through the ClusterGrid, or starts a
// new single-member cluster. Admission uses the paper's three conditions:
// same destination connection node, distance to centroid <= theta_d and
// |speed - aveSpeed| <= theta_s.

#ifndef SCUBA_CLUSTER_LEADER_FOLLOWER_H_
#define SCUBA_CLUSTER_LEADER_FOLLOWER_H_

#include <cstdint>
#include <span>

#include "cluster/cluster_store.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "gen/update.h"
#include "index/grid_index.h"

namespace scuba {

struct ClustererOptions {
  /// Distance threshold Theta_D (spatial units): new members must lie within
  /// this distance of the cluster centroid.
  double theta_d = 100.0;
  /// Speed threshold Theta_S (units/tick): |speed - aveSpeed| bound.
  double theta_s = 10.0;
  /// When true, candidate clusters are gathered from every grid cell within
  /// theta_d of the update (ablation; the paper probes only the update's own
  /// cell, which can miss compatible clusters whose circle stops short of it).
  bool probe_theta_d_disk = false;
  /// When true (default), clusters are registered in the grid under their
  /// query-reach-inflated JoinBounds() so the join-between filter is lossless;
  /// false reproduces the paper's pure member-circle registration (ablation).
  bool register_join_bounds = true;
  /// Grid registrations are padded by this many spatial units and only redone
  /// when a cluster outgrows its padded registration. Padding trades a few
  /// extra candidate checks for far fewer grid updates on the ingest hot
  /// path. 0 re-registers on every bounds change (the paper's literal
  /// behaviour; ablation).
  double grid_sync_padding = 100.0;
};

/// Wall-time split of one ProcessBatch call, for the telemetry ingest span
/// (docs/ARCHITECTURE.md §9). The serial degenerate path reports everything
/// under apply (there is no separate classification phase to time).
struct IngestPhaseTimings {
  double classify_seconds = 0.0;  ///< Parallel read-only phases (A1 + A2).
  double apply_seconds = 0.0;     ///< Serial publish + residual replay.
};

/// Counters exposed for tests and the maintenance-cost experiment.
struct ClustererStats {
  uint64_t clusters_created = 0;
  uint64_t members_absorbed = 0;    ///< Joined an existing cluster.
  uint64_t members_refreshed = 0;   ///< Updated in place in their cluster.
  uint64_t members_departed = 0;    ///< Left a cluster (conditions failed).
  uint64_t clusters_dissolved_empty = 0;
  uint64_t members_shed = 0;        ///< Positions discarded on ingest.
};

/// Decides whether `cluster` needs (re-)registration in `grid` under its
/// (optionally query-reach inflated) bounds, padded by `padding`. Returns
/// false when the cluster's current bounds are still covered by its previous
/// padded registration — correctness is preserved because a superset
/// registration can only add probe candidates, never hide the cluster. When
/// true, updates the cluster's registered_bounds() and writes the padded
/// circle to register into `*padded_out`, but does NOT touch the grid: the
/// caller applies (or batches) the registration. Pure planning, so parallel
/// ingest/maintenance workers may call it concurrently against a read-only
/// grid and merge the registrations serially afterwards.
bool PlanClusterGridSync(const GridIndex& grid, MovingCluster* cluster,
                         bool use_join_bounds, double padding,
                         Circle* padded_out);

/// Plans via PlanClusterGridSync and immediately applies the registration to
/// `grid`. The serial ingest path's one-stop grid sync.
Status SyncClusterGrid(GridIndex* grid, MovingCluster* cluster,
                       bool use_join_bounds, double padding);

class LeaderFollowerClusterer {
 public:
  /// `store` and `cluster_grid` must outlive the clusterer. The grid must be
  /// dedicated to clusters (keys are ClusterIds).
  LeaderFollowerClusterer(const ClustererOptions& options, ClusterStore* store,
                          GridIndex* cluster_grid);

  /// Routes one object/query update through the §3.2 procedure. The grid and
  /// store stay synchronized with the cluster's resulting bounds.
  Status ProcessObjectUpdate(const LocationUpdate& update);
  Status ProcessQueryUpdate(const QueryUpdate& update);

  /// Processes a whole batch (all objects, then all queries — the stream
  /// pipeline's delivery order) with classification work spread over `tasks`
  /// tasks on `pool`. Bit-identical to calling ProcessObjectUpdate /
  /// ProcessQueryUpdate per update in that order, at any task count:
  ///
  ///  * Phase A (parallel, read-only): each update is resolved to its home
  ///    cluster and its grid probe cells; each home cluster's refresh
  ///    sequence is then simulated on a private copy in batch order.
  ///  * A cluster is *eligible* for the fast path only if every simulated
  ///    refresh passed the admission tests and no grid cell the cluster
  ///    occupies at any point of the batch is probed by a residual update
  ///    (so residual updates can never observe it mid-batch).
  ///  * Phase B (serial): eligible clusters publish their simulated state in
  ///    ascending cid order; every remaining update then replays the exact
  ///    per-update path in batch order, which also keeps new-cluster id
  ///    allocation identical to serial execution.
  ///
  /// tasks <= 1 (or pool == nullptr) degrades to the plain serial loop.
  /// `*worker_seconds` (optional) accumulates summed per-task busy time;
  /// `*timings` (optional) receives the classify/apply wall-time split.
  Status ProcessBatch(std::span<const LocationUpdate> objects,
                      std::span<const QueryUpdate> queries, ThreadPool* pool,
                      uint32_t tasks, double* worker_seconds,
                      IngestPhaseTimings* timings = nullptr);

  /// Current nucleus radius Theta_N for ingest-time load shedding; 0 disables.
  /// (Members landing within the nucleus have their positions discarded
  /// immediately, which is what makes shedding save join work.)
  void set_nucleus_radius(double r) { nucleus_radius_ = r; }
  double nucleus_radius() const { return nucleus_radius_; }

  const ClustererStats& stats() const { return stats_; }
  const ClustererOptions& options() const { return options_; }

 private:
  friend struct PersistAccess;  ///< Snapshot serialization (src/persist).
  /// Shared implementation; `kind` selects absorb/update member calls.
  Status ProcessUpdate(EntityKind kind, const LocationUpdate* obj,
                       const QueryUpdate* qry);

  /// Finds the lowest-cid compatible cluster near `position` (paper step
  /// 1/3). Picking the minimum cid — rather than the first compatible entry
  /// in grid-cell order — makes the choice independent of how registrations
  /// happen to be ordered inside a cell, which is what lets batched ingest
  /// apply grid updates in cid order instead of arrival order.
  ClusterId FindCompatibleCluster(Point position, double speed,
                                  NodeId dest) const;

  /// Re-registers a cluster's (possibly changed) bounds in the grid.
  Status SyncGrid(MovingCluster* cluster);

  ClustererOptions options_;
  ClusterStore* store_;
  GridIndex* grid_;
  double nucleus_radius_ = 0.0;
  ClustererStats stats_;
};

}  // namespace scuba

#endif  // SCUBA_CLUSTER_LEADER_FOLLOWER_H_
