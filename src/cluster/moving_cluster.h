// MovingCluster: a circular moving region abstracting co-travelling moving
// objects and queries (paper §3.1).
//
// State follows the paper's (m.cid, m.loc_t, m.n, m.oids, m.qids, m.aveSpeed,
// m.cnLoc, m.r, m.expTime) tuple. Member positions are stored relative to the
// cluster in polar form; a per-cluster *translation vector* accumulates the
// centroid relocations applied between periodic executions, so member
// absolutes are reconstructed only when a join-within needs them:
//
//     absolute(member) = FromPolar(member.rel, member.anchor + translation)
//
// where member.anchor was fixed when the member's position was last refreshed
// (anchor = centroid_at_refresh - translation_at_refresh). A member refreshed
// this tick reconstructs exactly; a stale member implicitly travels with the
// cluster — precisely the paper's approximation.
//
// Load shedding (§5): each cluster owns at most one *nucleus*, a disk of
// radius Theta_N anchored at the centroid, into which member positions are
// shed. A shed member's position degrades to "somewhere in the nucleus": it
// reconstructs at the nucleus center and carries the nucleus radius as its
// uncertainty. All shed members of a cluster share the nucleus, which is what
// lets the join evaluate one predicate per (query, nucleus) instead of one
// per shed member. The nucleus re-anchors to the centroid during post-join
// maintenance so it travels with the cluster.

#ifndef SCUBA_CLUSTER_MOVING_CLUSTER_H_
#define SCUBA_CLUSTER_MOVING_CLUSTER_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "gen/update.h"
#include "geometry/circle.h"
#include "geometry/polar.h"

namespace scuba {

struct PersistAccess;  // snapshot serialization back door (src/persist)

/// One object or query inside a moving cluster.
struct ClusterMember {
  EntityKind kind = EntityKind::kObject;
  uint32_t id = 0;
  PolarCoord rel;          ///< Position relative to `anchor` (zero when shed).
  Point anchor;            ///< Pole minus the translation at refresh time.
  double speed = 0.0;
  uint64_t attrs = kAttrNone;
  double range_width = 0.0;      ///< Queries only.
  double range_height = 0.0;     ///< Queries only.
  uint64_t required_attrs = 0;   ///< Queries only: attribute predicate.
  Timestamp update_time = 0;
  bool shed = false;          ///< True when the position was load-shed.
  double approx_radius = 0.0; ///< Nucleus radius approximating a shed member.

  EntityRef Ref() const { return EntityRef{kind, id}; }
};

/// Structure-of-arrays destination spans for ExportExactMembers. Each object
/// pointer must address at least the exact-object count and each query
/// pointer the exact-query count reported by CountExactMembers; the caller
/// (the join executor's slab arena) owns the storage. Query positions and
/// extents are written raw — the join layer derives range rectangles.
struct MemberExportSpans {
  double* obj_xs = nullptr;
  double* obj_ys = nullptr;
  uint32_t* obj_ids = nullptr;
  uint64_t* obj_attrs = nullptr;
  double* qry_xs = nullptr;
  double* qry_ys = nullptr;
  double* qry_widths = nullptr;
  double* qry_heights = nullptr;
  uint32_t* qry_ids = nullptr;
  uint64_t* qry_required = nullptr;
};

/// A moving cluster of objects and queries. Invariants:
///  * centroid() is the mean of the members' reconstructed positions;
///  * radius() >= distance(centroid, any member) — the radius may
///    overestimate (conservative for the join-between filter) until
///    RecomputeTightBounds() runs;
///  * every member shares the cluster's destination connection node.
class MovingCluster {
 public:
  /// Starts a single-member cluster from a first update (§3.2 steps 2/5:
  /// centroid at the entity, radius 0).
  static MovingCluster FromObject(ClusterId cid, const LocationUpdate& u);
  static MovingCluster FromQuery(ClusterId cid, const QueryUpdate& u);

  ClusterId cid() const { return cid_; }
  Point centroid() const { return centroid_; }
  double radius() const { return radius_; }
  Circle Bounds() const { return Circle{centroid_, radius_}; }

  /// Largest reach of any query member beyond its position: half-diagonal of
  /// its range rectangle, plus its nucleus radius when shed. Grows on absorb/
  /// update; tightened by RecomputeTightBounds.
  double query_reach() const { return query_reach_; }

  /// Bounds inflated by query_reach(): a disk guaranteed to cover every
  /// member position *and* every member query's monitored region. Using this
  /// in the join-between filter keeps the two-step join lossless even when a
  /// query rectangle pokes out of the member circle (the paper's pure-circle
  /// test can miss such matches; see DESIGN.md deviation 4).
  Circle JoinBounds() const { return Circle{centroid_, radius_ + query_reach_}; }
  double average_speed() const {
    return members_.empty() ? 0.0 : speed_sum_ / static_cast<double>(members_.size());
  }
  NodeId dest_node() const { return dest_node_; }
  Point dest_position() const { return dest_position_; }
  size_t size() const { return members_.size(); }
  size_t object_count() const { return object_count_; }
  size_t query_count() const { return query_count_; }
  bool HasMixedKinds() const { return object_count_ > 0 && query_count_ > 0; }
  const std::vector<ClusterMember>& members() const { return members_; }
  Vec2 translation() const { return translation_; }

  /// The three §3.2 step-3 admission tests: same destination node, distance to
  /// the centroid within theta_d, speed within theta_s of the average.
  bool SatisfiesJoinConditions(Point position, double speed, NodeId dest,
                               double theta_d, double theta_s) const;

  /// Absorbs a new member (§3.2 step 4): records its relative position,
  /// re-averages the centroid and speed, and grows the radius as needed.
  void AbsorbObject(const LocationUpdate& u);
  void AbsorbQuery(const QueryUpdate& u);

  /// Refreshes an existing member from a new update. NotFound if absent.
  Status UpdateObjectMember(const LocationUpdate& u);
  Status UpdateQueryMember(const QueryUpdate& u);

  /// Removes a member (it re-clusters elsewhere). NotFound if absent.
  Status RemoveMember(EntityRef ref);

  /// Reconstructed absolute position of a member.
  Point MemberPosition(const ClusterMember& m) const {
    return FromPolar(m.rel, m.anchor + translation_);
  }

  /// Looks up a member by reference; nullptr if absent.
  const ClusterMember* FindMember(EntityRef ref) const;

  /// Tallies the exact (non-shed) members by kind without reconstructing
  /// positions — the sizing pass for SoA export.
  void CountExactMembers(size_t* exact_objects, size_t* exact_queries) const;

  /// Writes every exact (non-shed) member into `out` as SoA columns, in
  /// members() order (objects and queries each keep their relative order),
  /// reconstructing absolute positions exactly as MemberPosition does.
  /// Returns {objects written, queries written} — the CountExactMembers
  /// tallies. Shed members are skipped; the join reads those through the
  /// nucleus.
  std::pair<size_t, size_t> ExportExactMembers(
      const MemberExportSpans& out) const;

  /// Cluster velocity: average speed towards the destination node.
  Vec2 Velocity() const;

  /// Moves the whole cluster by `delta` (post-join relocation along the
  /// velocity vector); members follow implicitly via the translation vector.
  void Translate(Vec2 delta);

  /// Ticks until the centroid reaches the destination at the average speed,
  /// i.e. the paper's m.expTime given `now` (paper §3.1).
  Timestamp ComputeExpiryTime(Timestamp now) const;

  /// Exact radius/centroid recomputation from member positions (post-join
  /// maintenance; undoes conservative radius growth and removal staleness).
  void RecomputeTightBounds();

  /// Sheds the positions of members within the nucleus (paper §5); the
  /// nucleus is created at the current centroid with `nucleus_radius` if the
  /// cluster has none yet. Returns the number of members shed.
  size_t ShedPositions(double nucleus_radius);

  /// Targeted single-member variant used on the ingest path: sheds `ref` iff
  /// it currently lies within the (possibly newly created) nucleus. Returns
  /// true when the member was shed.
  bool ShedMemberIfInNucleus(EntityRef ref, double nucleus_radius);

  /// Bookkeeping for lazy ClusterGrid registration: the (padded) circle this
  /// cluster is currently registered under. Owned by the grid-sync logic; a
  /// zero-radius circle at the origin means "never registered".
  const Circle& registered_bounds() const { return registered_bounds_; }
  void set_registered_bounds(const Circle& c) { registered_bounds_ = c; }

  bool has_nucleus() const { return has_nucleus_; }
  double nucleus_radius() const { return nucleus_radius_; }
  /// Current nucleus center (anchor + translation). Meaningful only when
  /// has_nucleus().
  Point NucleusCenter() const { return nucleus_anchor_ + translation_; }

  /// Verifies the member bookkeeping invariants: the id->index side map is a
  /// exact bijection onto members_, and object/query counts match the member
  /// tally. Internal status naming the first violation; OK otherwise. Audit
  /// aid (ScubaEngine::AuditInvariants).
  Status ValidateMemberIndex() const;

  /// Analytic heap bytes. Shed members do not pay for position state (the
  /// paper's memory saving); maintained members pay the full member record.
  size_t EstimateMemoryUsage() const;

 private:
  friend struct PersistAccess;  ///< Snapshot serialization (src/persist).
  MovingCluster(ClusterId cid, Point centroid, double speed, NodeId dest_node,
                Point dest_position);

  /// Shared absorb path; `m.rel`/`m.anchor` set from `position`.
  void AbsorbCommon(ClusterMember m, Point position);

  /// Index of `ref` in members_, or members_.size() if absent (O(1) via the
  /// member_index_ side map).
  size_t MemberIndexOf(EntityRef ref) const;

  /// Shared member-refresh path.
  Status UpdateCommon(EntityRef ref, Point position, double speed,
                      uint64_t attrs, Timestamp time, double range_w,
                      double range_h, uint64_t required_attrs);

  /// Re-derives centroid from sum_ and conservatively grows the radius to
  /// cover the centroid shift.
  void SetCentroid(Point c);

  /// query_reach contribution of one member.
  static double MemberReach(const ClusterMember& m);

  /// Creates the nucleus at the current centroid if absent; grows its radius
  /// if the shedder tightened eta.
  void EnsureNucleus(double nucleus_radius);

  /// Sheds one member (by iterator index) into the nucleus: adjusts the
  /// position sum, re-anchors it and marks it shed. The caller re-derives the
  /// centroid afterwards.
  void ShedMemberAt(size_t index, Point nucleus_center);

  ClusterId cid_ = kInvalidClusterId;
  Point centroid_;
  double radius_ = 0.0;
  double query_reach_ = 0.0;
  Vec2 translation_;          ///< Cumulative Translate() displacement.
  Point position_sum_;        ///< Sum of member reconstructed positions.
  double speed_sum_ = 0.0;
  NodeId dest_node_ = kInvalidNodeId;
  Point dest_position_;
  size_t object_count_ = 0;
  size_t query_count_ = 0;
  bool has_nucleus_ = false;
  Point nucleus_anchor_;        ///< Nucleus center minus translation.
  double nucleus_radius_ = 0.0;
  Circle registered_bounds_;    ///< See registered_bounds().
  std::vector<ClusterMember> members_;
  /// Member reference -> index in members_, maintained with swap-and-pop on
  /// removal, so the per-update hot path (refresh/depart lookups) is O(1)
  /// instead of a linear scan over the member vector.
  std::unordered_map<EntityRef, size_t, EntityRefHash> member_index_;
};

}  // namespace scuba

#endif  // SCUBA_CLUSTER_MOVING_CLUSTER_H_
