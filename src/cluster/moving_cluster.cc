#include "cluster/moving_cluster.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/memory_usage.h"

namespace scuba {

namespace {

/// Expiry horizon used when a cluster's average speed is ~0 (it would never
/// reach its destination; keep it alive until members move again).
constexpr Timestamp kFarFuture = 1'000'000'000;

}  // namespace

MovingCluster::MovingCluster(ClusterId cid, Point centroid, double speed,
                             NodeId dest_node, Point dest_position)
    : cid_(cid),
      centroid_(centroid),
      position_sum_(centroid),
      speed_sum_(speed),
      dest_node_(dest_node),
      dest_position_(dest_position) {}

MovingCluster MovingCluster::FromObject(ClusterId cid, const LocationUpdate& u) {
  MovingCluster c(cid, u.position, u.speed, u.dest_node, u.dest_position);
  ClusterMember m;
  m.kind = EntityKind::kObject;
  m.id = u.oid;
  m.rel = PolarCoord{0.0, 0.0};
  m.anchor = u.position;
  m.speed = u.speed;
  m.attrs = u.attrs;
  m.update_time = u.time;
  c.members_.push_back(m);
  c.member_index_.emplace(m.Ref(), 0);
  c.object_count_ = 1;
  return c;
}

MovingCluster MovingCluster::FromQuery(ClusterId cid, const QueryUpdate& u) {
  MovingCluster c(cid, u.position, u.speed, u.dest_node, u.dest_position);
  ClusterMember m;
  m.kind = EntityKind::kQuery;
  m.id = u.qid;
  m.rel = PolarCoord{0.0, 0.0};
  m.anchor = u.position;
  m.speed = u.speed;
  m.attrs = u.attrs;
  m.range_width = u.range_width;
  m.range_height = u.range_height;
  m.required_attrs = u.required_attrs;
  m.update_time = u.time;
  c.members_.push_back(m);
  c.member_index_.emplace(m.Ref(), 0);
  c.query_count_ = 1;
  c.query_reach_ = MemberReach(m);
  return c;
}

bool MovingCluster::SatisfiesJoinConditions(Point position, double speed,
                                            NodeId dest, double theta_d,
                                            double theta_s) const {
  if (dest != dest_node_) return false;
  if (SquaredDistance(position, centroid_) > theta_d * theta_d) return false;
  double dv = speed - average_speed();
  return dv >= -theta_s && dv <= theta_s;
}

double MovingCluster::MemberReach(const ClusterMember& m) {
  if (m.kind != EntityKind::kQuery) return 0.0;
  // A shed query's rectangle is approximated *at the nucleus center* with its
  // original extent (paper semantics: accuracy loss includes false negatives),
  // so shedding does not inflate the reach.
  return std::hypot(m.range_width / 2.0, m.range_height / 2.0);
}

void MovingCluster::SetCentroid(Point c) {
  // Existing members keep their anchors, so moving the centroid towards the
  // new mean can strand them slightly outside the stored radius; grow it by
  // the shift so the join-between filter stays conservative. Post-join
  // maintenance tightens it again (RecomputeTightBounds).
  radius_ += Distance(centroid_, c);
  centroid_ = c;
}

void MovingCluster::AbsorbCommon(ClusterMember m, Point position) {
  const double n_new = static_cast<double>(members_.size() + 1);
  position_sum_.x += position.x;
  position_sum_.y += position.y;
  Point new_centroid{position_sum_.x / n_new, position_sum_.y / n_new};

  // Anchor the member so reconstruction returns `position` exactly.
  m.anchor = new_centroid - translation_;
  m.rel = ToPolar(position, new_centroid);

  speed_sum_ += m.speed;
  if (m.kind == EntityKind::kObject) {
    ++object_count_;
  } else {
    ++query_count_;
  }
  member_index_.emplace(m.Ref(), members_.size());
  members_.push_back(m);
  query_reach_ = std::max(query_reach_, MemberReach(members_.back()));
  SetCentroid(new_centroid);
  radius_ = std::max(radius_, Distance(new_centroid, position));
}

void MovingCluster::AbsorbObject(const LocationUpdate& u) {
  ClusterMember m;
  m.kind = EntityKind::kObject;
  m.id = u.oid;
  m.speed = u.speed;
  m.attrs = u.attrs;
  m.update_time = u.time;
  AbsorbCommon(m, u.position);
}

void MovingCluster::AbsorbQuery(const QueryUpdate& u) {
  ClusterMember m;
  m.kind = EntityKind::kQuery;
  m.id = u.qid;
  m.speed = u.speed;
  m.attrs = u.attrs;
  m.range_width = u.range_width;
  m.range_height = u.range_height;
  m.required_attrs = u.required_attrs;
  m.update_time = u.time;
  AbsorbCommon(m, u.position);
}

size_t MovingCluster::MemberIndexOf(EntityRef ref) const {
  auto it = member_index_.find(ref);
  return it == member_index_.end() ? members_.size() : it->second;
}

Status MovingCluster::UpdateCommon(EntityRef ref, Point position, double speed,
                                   uint64_t attrs, Timestamp time,
                                   double range_w, double range_h,
                                   uint64_t required_attrs) {
  size_t index = MemberIndexOf(ref);
  if (index == members_.size()) {
    return Status::NotFound("entity is not a member of this cluster");
  }
  auto it = members_.begin() + static_cast<ptrdiff_t>(index);
  Point old_pos = MemberPosition(*it);
  position_sum_.x += position.x - old_pos.x;
  position_sum_.y += position.y - old_pos.y;
  const double n = static_cast<double>(members_.size());
  Point new_centroid{position_sum_.x / n, position_sum_.y / n};

  speed_sum_ += speed - it->speed;
  it->speed = speed;
  it->attrs = attrs;
  it->update_time = time;
  it->range_width = range_w;
  it->range_height = range_h;
  it->required_attrs = required_attrs;
  it->anchor = new_centroid - translation_;
  it->rel = ToPolar(position, new_centroid);
  it->shed = false;
  it->approx_radius = 0.0;
  query_reach_ = std::max(query_reach_, MemberReach(*it));

  SetCentroid(new_centroid);
  radius_ = std::max(radius_, Distance(new_centroid, position));
  return Status::OK();
}

Status MovingCluster::UpdateObjectMember(const LocationUpdate& u) {
  return UpdateCommon(EntityRef{EntityKind::kObject, u.oid}, u.position,
                      u.speed, u.attrs, u.time, 0.0, 0.0, 0);
}

Status MovingCluster::UpdateQueryMember(const QueryUpdate& u) {
  return UpdateCommon(EntityRef{EntityKind::kQuery, u.qid}, u.position, u.speed,
                      u.attrs, u.time, u.range_width, u.range_height,
                      u.required_attrs);
}

Status MovingCluster::RemoveMember(EntityRef ref) {
  size_t index = MemberIndexOf(ref);
  if (index == members_.size()) {
    return Status::NotFound("entity is not a member of this cluster");
  }
  auto it = members_.begin() + static_cast<ptrdiff_t>(index);
  Point pos = MemberPosition(*it);
  position_sum_.x -= pos.x;
  position_sum_.y -= pos.y;
  speed_sum_ -= it->speed;
  if (it->kind == EntityKind::kObject) {
    --object_count_;
  } else {
    --query_count_;
  }
  member_index_.erase(ref);
  *it = members_.back();
  members_.pop_back();
  if (index < members_.size()) {
    member_index_[it->Ref()] = index;  // the swapped-in tail member moved
  }
  if (!members_.empty()) {
    const double n = static_cast<double>(members_.size());
    SetCentroid(Point{position_sum_.x / n, position_sum_.y / n});
  }
  return Status::OK();
}

const ClusterMember* MovingCluster::FindMember(EntityRef ref) const {
  size_t index = MemberIndexOf(ref);
  return index == members_.size() ? nullptr : &members_[index];
}

void MovingCluster::CountExactMembers(size_t* exact_objects,
                                      size_t* exact_queries) const {
  size_t objects = 0;
  size_t queries = 0;
  for (const ClusterMember& m : members_) {
    if (m.shed) continue;
    (m.kind == EntityKind::kObject ? objects : queries) += 1;
  }
  *exact_objects = objects;
  *exact_queries = queries;
}

std::pair<size_t, size_t> MovingCluster::ExportExactMembers(
    const MemberExportSpans& out) const {
  size_t objects = 0;
  size_t queries = 0;
  for (const ClusterMember& m : members_) {
    if (m.shed) continue;
    const Point pos = FromPolar(m.rel, m.anchor + translation_);
    if (m.kind == EntityKind::kObject) {
      out.obj_xs[objects] = pos.x;
      out.obj_ys[objects] = pos.y;
      out.obj_ids[objects] = m.id;
      out.obj_attrs[objects] = m.attrs;
      ++objects;
    } else {
      out.qry_xs[queries] = pos.x;
      out.qry_ys[queries] = pos.y;
      out.qry_widths[queries] = m.range_width;
      out.qry_heights[queries] = m.range_height;
      out.qry_ids[queries] = m.id;
      out.qry_required[queries] = m.required_attrs;
      ++queries;
    }
  }
  return {objects, queries};
}

Vec2 MovingCluster::Velocity() const {
  Vec2 dir = (dest_position_ - centroid_).Normalized();
  return dir * average_speed();
}

Timestamp MovingCluster::ComputeExpiryTime(Timestamp now) const {
  double speed = average_speed();
  if (speed <= 1e-9) return now + kFarFuture;
  double ticks = Distance(centroid_, dest_position_) / speed;
  if (ticks >= static_cast<double>(kFarFuture)) return now + kFarFuture;
  return now + static_cast<Timestamp>(ticks) + 1;
}

void MovingCluster::Translate(Vec2 delta) {
  translation_ += delta;
  centroid_ += delta;
  position_sum_.x += delta.x * static_cast<double>(members_.size());
  position_sum_.y += delta.y * static_cast<double>(members_.size());
}

void MovingCluster::RecomputeTightBounds() {
  if (members_.empty()) {
    radius_ = 0.0;
    query_reach_ = 0.0;
    has_nucleus_ = false;
    nucleus_radius_ = 0.0;
    return;
  }
  // Exact members anchor themselves; shed members are defined to sit at the
  // nucleus, which we re-anchor to the new centroid so it travels with the
  // cluster. The centroid fixed point is then the mean of the exact members.
  Point exact_sum{0.0, 0.0};
  size_t exact_count = 0;
  for (const ClusterMember& m : members_) {
    if (m.shed) continue;
    Point p = MemberPosition(m);
    exact_sum.x += p.x;
    exact_sum.y += p.y;
    ++exact_count;
  }
  const size_t shed_count = members_.size() - exact_count;
  if (exact_count > 0) {
    centroid_ = Point{exact_sum.x / static_cast<double>(exact_count),
                      exact_sum.y / static_cast<double>(exact_count)};
  } else {
    // Every member is shed: the cluster collapses onto its nucleus center.
    centroid_ = NucleusCenter();
  }
  if (shed_count > 0) {
    nucleus_anchor_ = centroid_ - translation_;
    for (ClusterMember& m : members_) {
      if (m.shed) m.anchor = nucleus_anchor_;
    }
    has_nucleus_ = true;
  } else {
    has_nucleus_ = false;
    nucleus_radius_ = 0.0;
  }
  position_sum_ =
      Point{exact_sum.x + static_cast<double>(shed_count) * centroid_.x,
            exact_sum.y + static_cast<double>(shed_count) * centroid_.y};

  double max_d = 0.0;
  double reach = 0.0;
  for (const ClusterMember& m : members_) {
    // Radius covers the members' *reconstructed* positions. A shed member's
    // true position may lie up to Theta_N further out; covering that
    // uncertainty would only preserve approximation-induced false positives
    // at the cost of a much coarser join-between filter, so we accept the
    // (paper-sanctioned) extra false negatives instead.
    max_d = std::max(max_d, Distance(centroid_, MemberPosition(m)));
    reach = std::max(reach, MemberReach(m));
  }
  radius_ = max_d;
  query_reach_ = reach;
}

void MovingCluster::EnsureNucleus(double nucleus_radius) {
  if (!has_nucleus_) {
    has_nucleus_ = true;
    nucleus_anchor_ = centroid_ - translation_;
    nucleus_radius_ = nucleus_radius;
  } else {
    nucleus_radius_ = std::max(nucleus_radius_, nucleus_radius);
  }
}

void MovingCluster::ShedMemberAt(size_t index, Point nucleus_center) {
  ClusterMember& m = members_[index];
  Point pos = MemberPosition(m);
  position_sum_.x += nucleus_center.x - pos.x;
  position_sum_.y += nucleus_center.y - pos.y;
  m.rel = PolarCoord{0.0, 0.0};
  m.anchor = nucleus_anchor_;
  m.shed = true;
  m.approx_radius = nucleus_radius_;
}

size_t MovingCluster::ShedPositions(double nucleus_radius) {
  if (nucleus_radius <= 0.0 || members_.empty()) return 0;
  EnsureNucleus(nucleus_radius);
  const Point nc = NucleusCenter();
  const double r2 = nucleus_radius_ * nucleus_radius_;
  size_t shed_count = 0;
  for (size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].shed) continue;
    if (SquaredDistance(MemberPosition(members_[i]), nc) > r2) continue;
    ShedMemberAt(i, nc);
    ++shed_count;
  }
  if (shed_count > 0) {
    const double n = static_cast<double>(members_.size());
    SetCentroid(Point{position_sum_.x / n, position_sum_.y / n});
  }
  return shed_count;
}

bool MovingCluster::ShedMemberIfInNucleus(EntityRef ref, double nucleus_radius) {
  if (nucleus_radius <= 0.0) return false;
  size_t index = MemberIndexOf(ref);
  if (index == members_.size() || members_[index].shed) return false;
  EnsureNucleus(nucleus_radius);
  const Point nc = NucleusCenter();
  if (SquaredDistance(MemberPosition(members_[index]), nc) >
      nucleus_radius_ * nucleus_radius_) {
    return false;
  }
  ShedMemberAt(index, nc);
  const double n = static_cast<double>(members_.size());
  SetCentroid(Point{position_sum_.x / n, position_sum_.y / n});
  return true;
}

Status MovingCluster::ValidateMemberIndex() const {
  if (member_index_.size() != members_.size()) {
    return Status::Internal(
        "cluster " + std::to_string(cid_) + ": member index has " +
        std::to_string(member_index_.size()) + " entries for " +
        std::to_string(members_.size()) + " members");
  }
  size_t objects = 0;
  size_t queries = 0;
  for (size_t i = 0; i < members_.size(); ++i) {
    const ClusterMember& m = members_[i];
    (m.kind == EntityKind::kObject ? objects : queries) += 1;
    auto it = member_index_.find(m.Ref());
    if (it == member_index_.end() || it->second != i) {
      return Status::Internal(
          "cluster " + std::to_string(cid_) + ": member " +
          std::to_string(m.id) + " at slot " + std::to_string(i) +
          (it == member_index_.end() ? " missing from the index"
                                     : " indexed at slot " +
                                           std::to_string(it->second)));
    }
  }
  if (objects != object_count_ || queries != query_count_) {
    return Status::Internal(
        "cluster " + std::to_string(cid_) + ": counted " +
        std::to_string(objects) + "/" + std::to_string(queries) +
        " object/query members but records " + std::to_string(object_count_) +
        "/" + std::to_string(query_count_));
  }
  return Status::OK();
}

size_t MovingCluster::EstimateMemoryUsage() const {
  // A maintained member pays for its full record; a shed member's position
  // state (polar coordinate + anchor) is discarded (paper §5).
  constexpr size_t kPositionBytes = sizeof(PolarCoord) + sizeof(Point);
  size_t bytes = sizeof(MovingCluster) + UnorderedMapMemoryUsage(member_index_);
  for (const ClusterMember& m : members_) {
    bytes += sizeof(ClusterMember);
    if (m.shed) bytes -= kPositionBytes;
  }
  return bytes;
}

}  // namespace scuba
