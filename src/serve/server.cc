#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <utility>

namespace scuba::serve {
namespace {

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(std::string("fcntl O_NONBLOCK: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

/// How long a graceful stop waits for queued farewell frames to drain.
constexpr auto kDrainGrace = std::chrono::seconds(3);

}  // namespace

Result<std::unique_ptr<ScubaServer>> ScubaServer::Create(
    const ServeOptions& options, const ServerDeps& deps) {
  if (deps.engine == nullptr) {
    return Status::InvalidArgument("serve: deps.engine must be non-null");
  }
  int listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status err = Status::IoError(std::string("bind 127.0.0.1:") +
                                 std::to_string(options.port) + ": " +
                                 std::strerror(errno));
    close(listen_fd);
    return err;
  }
  if (listen(listen_fd, 64) < 0) {
    Status err = Status::IoError(std::string("listen: ") +
                                 std::strerror(errno));
    close(listen_fd);
    return err;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    Status err = Status::IoError(std::string("getsockname: ") +
                                 std::strerror(errno));
    close(listen_fd);
    return err;
  }
  uint16_t port = ntohs(addr.sin_port);
  int pipe_fds[2];
  if (pipe(pipe_fds) < 0) {
    Status err = Status::IoError(std::string("pipe: ") + std::strerror(errno));
    close(listen_fd);
    return err;
  }
  for (int fd : {listen_fd, pipe_fds[0], pipe_fds[1]}) {
    Status st = SetNonBlocking(fd);
    if (!st.ok()) {
      close(listen_fd);
      close(pipe_fds[0]);
      close(pipe_fds[1]);
      return st;
    }
  }
  return std::unique_ptr<ScubaServer>(new ScubaServer(
      options, deps, listen_fd, port, pipe_fds[0], pipe_fds[1]));
}

ScubaServer::ScubaServer(const ServeOptions& options, const ServerDeps& deps,
                         int listen_fd, uint16_t port, int pipe_r, int pipe_w)
    : options_(options),
      deps_(deps),
      owned_registry_(deps.registry == nullptr
                          ? std::make_unique<MetricsRegistry>()
                          : nullptr),
      registry_(deps.registry != nullptr ? deps.registry
                                         : owned_registry_.get()),
      sessions_(options, registry_),
      listen_fd_(listen_fd),
      port_(port),
      pipe_r_(pipe_r),
      pipe_w_(pipe_w),
      prev_time_(std::numeric_limits<Timestamp>::min()) {}

ScubaServer::~ScubaServer() {
  RequestStop();
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (pipe_r_ >= 0) close(pipe_r_);
  if (pipe_w_ >= 0) close(pipe_w_);
}

Status ScubaServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("serve: server already started");
  }
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void ScubaServer::RequestStop() {
  stop_requested_.store(true);
  if (pipe_w_ >= 0) {
    char byte = 1;
    [[maybe_unused]] ssize_t n = write(pipe_w_, &byte, 1);
  }
}

Status ScubaServer::Wait() {
  if (thread_.joinable()) thread_.join();
  return terminal_;
}

ServerStats ScubaServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void ScubaServer::Loop() {
  std::vector<pollfd> fds;
  std::chrono::steady_clock::time_point drain_deadline{};
  while (true) {
    if (stop_requested_.load() && !stopping_) {
      stopping_ = true;
    }
    if (!terminal_.ok()) break;
    if (stopping_) {
      if (drain_deadline == std::chrono::steady_clock::time_point{}) {
        drain_deadline = std::chrono::steady_clock::now() + kDrainGrace;
        // Tell every connected session the server is going away, then drain.
        for (auto& [fd, session] : sessions_.sessions()) {
          (void)fd;
          if (!session->doomed()) {
            SendError(session.get(),
                      Status::FailedPrecondition("server shutting down"),
                      /*fatal=*/true);
          }
        }
      }
      bool any_queued = false;
      for (auto& [fd, session] : sessions_.sessions()) {
        (void)fd;
        if (!session->queue().empty()) any_queued = true;
      }
      if (!any_queued || std::chrono::steady_clock::now() >= drain_deadline) {
        break;
      }
    }
    fds.clear();
    fds.push_back(pollfd{pipe_r_, POLLIN, 0});
    // Stop admitting new sessions once we are draining.
    fds.push_back(pollfd{stopping_ ? -1 : listen_fd_, POLLIN, 0});
    for (auto& [fd, session] : sessions_.sessions()) {
      short events = POLLIN;
      if (!session->queue().empty()) events |= POLLOUT;
      fds.push_back(pollfd{fd, events, 0});
    }
    int n = poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (n < 0) {
      if (errno == EINTR) continue;
      terminal_ = Status::IoError(std::string("poll: ") +
                                  std::strerror(errno));
      break;
    }
    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (read(pipe_r_, buf, sizeof(buf)) > 0) {
      }
    }
    if (fds[1].revents & POLLIN) AcceptPending();
    for (size_t i = 2; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      const short revents = fds[i].revents;
      if (revents == 0) continue;
      Session* session = sessions_.Find(fd);
      if (session == nullptr) continue;
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        // POLLHUP can still carry buffered bytes; the read path sees the EOF.
        ReadSession(session);
        session = sessions_.Find(fd);  // may have closed on EOF/terminal
      }
      if (session != nullptr && !session->queue().empty()) {
        WriteSession(session);
        session = sessions_.Find(fd);
      }
      if (session != nullptr && session->doomed() &&
          session->queue().empty()) {
        CloseSession(fd);
      }
      if (!terminal_.ok()) break;
    }
  }
  if (!terminal_.ok()) {
    // Serving aborted (engine/durability failure). One best-effort farewell so
    // clients see WHY instead of a bare hangup. WriteSession closes (erases) a
    // session whose client already hung up, so never iterate the map across
    // it: snapshot the fds, then re-find each one.
    std::vector<int> farewell_fds;
    farewell_fds.reserve(sessions_.sessions().size());
    for (const auto& [fd, session] : sessions_.sessions()) {
      (void)session;
      farewell_fds.push_back(fd);
    }
    for (int fd : farewell_fds) {
      Session* session = sessions_.Find(fd);
      if (session == nullptr) continue;
      if (!session->doomed()) {
        SendError(session, terminal_, /*fatal=*/true);
      }
      WriteSession(session);
    }
  }
  while (!sessions_.sessions().empty()) {
    CloseSession(sessions_.sessions().begin()->first);
  }
}

void ScubaServer::AcceptPending() {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failures are not terminal
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    if (options_.socket_send_buffer_bytes > 0) {
      const int sndbuf = static_cast<int>(options_.socket_send_buffer_bytes);
      setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
    }
    Result<Session*> session = sessions_.Accept(fd);
    if (!session.ok()) {
      // Refused (session cap / load shedding): one best-effort error frame,
      // then hang up. The socket is fresh, so a single write almost always
      // fits the kernel buffer.
      ErrorMsg err;
      err.code = static_cast<uint32_t>(session.status().code());
      err.message = session.status().message();
      err.fatal = true;
      Result<std::string> frame = EncodeFrame(EncodeError(err));
      if (frame.ok()) {
        [[maybe_unused]] ssize_t n =
            send(fd, frame->data(), frame->size(), MSG_NOSIGNAL);
      }
      close(fd);
      continue;
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.sessions_accepted;
  }
}

void ScubaServer::ReadSession(Session* session) {
  const int fd = session->fd();
  bool eof = false;
  char buf[64 * 1024];
  while (true) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      session->decoder().Append(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    eof = true;  // connection reset etc. — treat as gone
    break;
  }
  std::string payload;
  while (!session->doomed() && terminal_.ok() && !stopping_) {
    Result<bool> frame = session->decoder().Next(&payload);
    if (!frame.ok()) {
      SendError(session, frame.status(), /*fatal=*/true);
      break;
    }
    if (!*frame) break;
    HandleMessage(session, payload);
  }
  if (eof) {
    // Client hung up. Anything still queued is undeliverable.
    CloseSession(fd);
  }
}

void ScubaServer::HandleMessage(Session* session, std::string_view payload) {
  Result<MessageType> type = PeekType(payload);
  if (!type.ok()) {
    SendError(session, type.status(), /*fatal=*/true);
    return;
  }
  if (!session->ready() && *type != MessageType::kHello &&
      *type != MessageType::kBye) {
    SendError(session,
              Status::FailedPrecondition(
                  "handshake required: send hello before " +
                  std::string(MessageTypeName(*type))),
              /*fatal=*/true);
    return;
  }
  switch (*type) {
    case MessageType::kHello: {
      HelloMsg hello;
      Status st = DecodeHello(payload, &hello);
      if (!st.ok()) {
        SendError(session, st, /*fatal=*/true);
        return;
      }
      if (hello.version != kProtocolVersion) {
        SendError(session,
                  Status::FailedPrecondition(
                      "protocol version mismatch: client " +
                      std::to_string(hello.version) + ", server " +
                      std::to_string(kProtocolVersion)),
                  /*fatal=*/true);
        return;
      }
      session->set_ready(std::move(hello.client_name));
      HelloAckMsg ack;
      ack.server_name = options_.server_name;
      ack.session_id = session->id();
      sessions_.EnqueueMessage(session, MessageType::kHelloAck,
                               EncodeHelloAck(ack));
      return;
    }
    case MessageType::kRegister: {
      RegisterMsg msg;
      Status st = DecodeRegister(payload, &msg);
      if (!st.ok()) {
        SendError(session, st, /*fatal=*/true);
        return;
      }
      const QueryId qid = msg.query.qid;
      std::vector<QueryUpdate> queries{msg.query};
      std::vector<LocationUpdate> objects;
      // Registration is out-of-band with round pacing: screened with no batch
      // floor (several sessions may register at the same stamp), WAL-logged as
      // a non-evaluating batch, ingested, then subscribed. prev_time_ is
      // untouched, so a driver's batch clock is unaffected.
      if (deps_.screen != nullptr) {
        st = deps_.screen->ScreenBatch(kNoBatchTime, &objects, &queries);
        if (!st.ok()) {
          SendError(session, st, /*fatal=*/false);
          return;
        }
        if (queries.empty()) {
          SendError(session,
                    Status::InvalidArgument(
                        "query " + std::to_string(qid) +
                        " rejected by stream screening"),
                    /*fatal=*/false);
          return;
        }
      }
      if (deps_.durability != nullptr) {
        st = deps_.durability->LogBatch(msg.query.time, /*evaluate_after=*/
                                        false, objects, queries);
        if (!st.ok()) {
          terminal_ = st;
          return;
        }
      }
      st = deps_.engine->IngestBatch(objects, queries);
      if (!st.ok()) {
        terminal_ = st;
        return;
      }
      session->Subscribe(qid);
      return;
    }
    case MessageType::kCancel: {
      CancelMsg msg;
      Status st = DecodeCancel(payload, &msg);
      if (!st.ok()) {
        SendError(session, st, /*fatal=*/true);
        return;
      }
      // Cancel narrows this session's subscription; the engine keeps the
      // query (other sessions may be subscribed, and engine-side removal is
      // not part of the QueryProcessor contract).
      session->Unsubscribe(msg.qid);
      return;
    }
    case MessageType::kSubscribe: {
      SubscribeMsg msg;
      Status st = DecodeSubscribe(payload, &msg);
      if (!st.ok()) {
        SendError(session, st, /*fatal=*/true);
        return;
      }
      if (msg.all) session->SubscribeAll();
      for (QueryId qid : msg.qids) session->Subscribe(qid);
      // Ack with a snapshot of the session's cursor state. This makes
      // subscribing synchronous on the client (no race between a subscribe
      // frame and another session's batch closing a round) and hands a late
      // subscriber its fold base; round continuity is untouched because the
      // snapshot carries the cursor's round, not the global one.
      SnapshotMsg snap;
      snap.round = session->tracker().rounds();
      snap.time = session->tracker().time();
      snap.coalesced = false;
      const ResultSet& current = session->tracker().Current();
      snap.matches = current.matches();
      snap.degraded_shards = current.degraded_shards();
      sessions_.EnqueueMessage(session, MessageType::kSnapshot,
                               EncodeSnapshot(snap));
      return;
    }
    case MessageType::kUpdateBatch: {
      UpdateBatchMsg msg;
      Status st = DecodeUpdateBatch(payload, &msg);
      if (!st.ok()) {
        SendError(session, st, /*fatal=*/true);
        return;
      }
      st = HandleBatch(session, msg.time, msg.evaluate, &msg.objects,
                       &msg.queries);
      if (!st.ok()) terminal_ = st;
      return;
    }
    case MessageType::kTick: {
      TickMsg msg;
      Status st = DecodeTick(payload, &msg);
      if (!st.ok()) {
        SendError(session, st, /*fatal=*/true);
        return;
      }
      std::vector<LocationUpdate> objects;
      std::vector<QueryUpdate> queries;
      st = HandleBatch(session, msg.time, /*evaluate=*/true, &objects,
                       &queries);
      if (!st.ok()) terminal_ = st;
      return;
    }
    case MessageType::kBye:
      session->set_doomed();
      return;
    case MessageType::kShutdown:
      stopping_ = true;
      return;
    case MessageType::kHelloAck:
    case MessageType::kTickAck:
    case MessageType::kDelta:
    case MessageType::kSnapshot:
    case MessageType::kError:
      SendError(session,
                Status::InvalidArgument(
                    std::string(MessageTypeName(*type)) +
                    " is a server-to-client message"),
                /*fatal=*/true);
      return;
  }
  SendError(session,
            Status::Unimplemented("unhandled message type " +
                                  std::to_string(static_cast<int>(*type))),
            /*fatal=*/true);
}

Status ScubaServer::HandleBatch(Session* session, Timestamp time,
                                bool evaluate,
                                std::vector<LocationUpdate>* objects,
                                std::vector<QueryUpdate>* queries) {
  // Mirror of ReplayTrace's batch step (src/stream/pipeline.cc): the same
  // strictly-increasing time contract, the same screen → log → ingest →
  // evaluate order — this is what makes a served trace reproduce the offline
  // replay bit-for-bit.
  Timestamp batch_time = time;
  const bool resync =
      deps_.screen != nullptr &&
      deps_.screen->config().policy == BadUpdatePolicy::kRepair;
  if (batch_time <= prev_time_) {
    if (!resync) {
      // The batch never reached the WAL or the engine, so rejecting only it
      // (not the whole server, unlike an offline replay abort) keeps state
      // exactly aligned with a replay of the accepted prefix.
      SendError(session,
                Status::FailedPrecondition(
                    "batch time " + std::to_string(batch_time) +
                    " does not advance past " + std::to_string(prev_time_)),
                /*fatal=*/false);
      return Status::OK();
    }
    batch_time = prev_time_ + 1;
  }
  if (deps_.screen != nullptr) {
    Status st = deps_.screen->ScreenBatch(batch_time, objects, queries);
    if (!st.ok()) {
      // Strict screening: the tuple's tagged error goes to the sender and the
      // batch is rejected whole, before any durable or engine effect.
      SendError(session, st, /*fatal=*/false);
      return Status::OK();
    }
  }
  if (deps_.durability != nullptr) {
    SCUBA_RETURN_IF_ERROR(deps_.durability->LogBatch(batch_time, evaluate,
                                                     *objects, *queries));
  }
  SCUBA_RETURN_IF_ERROR(deps_.engine->IngestBatch(*objects, *queries));
  prev_time_ = batch_time;
  sessions_.metrics().batches_total.Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batches;
  }
  if (evaluate) return RunRound(session, batch_time);
  return Status::OK();
}

Status ScubaServer::RunRound(Session* driver, Timestamp now) {
  SCUBA_RETURN_IF_ERROR(deps_.engine->Evaluate(now, &results_));
  ++rounds_;
  // Push deltas first (the ResultSink analogue), then ack the driver: a
  // driver that is also subscribed sees its own delta before the tick-ack.
  sessions_.PushRound(rounds_, now, results_);
  TickAckMsg ack;
  ack.round = rounds_;
  ack.time = now;
  ack.matches = results_.size();
  ack.degraded = results_.degraded();
  sessions_.EnqueueMessage(driver, MessageType::kTickAck, EncodeTickAck(ack));
  if (deps_.durability != nullptr) {
    SCUBA_RETURN_IF_ERROR(deps_.durability->OnRoundComplete());
  }
  sessions_.ObservePressure(deps_.engine->EstimateMemoryUsage());
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.rounds;
  stats_.last_round_matches = results_.size();
  stats_.last_round_degraded = results_.degraded();
  stats_.deltas_pushed = sessions_.deltas_pushed();
  stats_.coalesces = sessions_.coalesces();
  stats_.disconnects = sessions_.disconnects();
  return Status::OK();
}

void ScubaServer::WriteSession(Session* session) {
  const int fd = session->fd();
  while (!session->queue().empty()) {
    const OutFrame& head = session->queue().front();
    const size_t offset = session->write_offset;
    ssize_t n = send(fd, head.bytes.data() + offset,
                     head.bytes.size() - offset, MSG_NOSIGNAL);
    if (n > 0) {
      sessions_.ConsumeWritten(session, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    CloseSession(fd);  // broken pipe / reset: the client is gone
    return;
  }
}

void ScubaServer::SendError(Session* session, const Status& error,
                            bool fatal) {
  ErrorMsg msg;
  msg.code = static_cast<uint32_t>(error.code());
  msg.message = error.message();
  msg.fatal = fatal;
  sessions_.EnqueueMessage(session, MessageType::kError, EncodeError(msg));
  if (fatal) session->set_doomed();
}

void ScubaServer::CloseSession(int fd) {
  sessions_.Close(fd);
  close(fd);
}

}  // namespace scuba::serve
