#include "serve/protocol.h"

#include <cstring>

namespace scuba::serve {
namespace {

void PutLocationUpdate(ByteWriter* w, const LocationUpdate& u) {
  w->PutU32(u.oid);
  w->PutDouble(u.position.x);
  w->PutDouble(u.position.y);
  w->PutI64(u.time);
  w->PutDouble(u.speed);
  w->PutU32(u.dest_node);
  w->PutDouble(u.dest_position.x);
  w->PutDouble(u.dest_position.y);
  w->PutU64(u.attrs);
}

Status GetLocationUpdate(ByteReader* r, LocationUpdate* u) {
  SCUBA_RETURN_IF_ERROR(r->GetU32(&u->oid));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->position.x));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->position.y));
  SCUBA_RETURN_IF_ERROR(r->GetI64(&u->time));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->speed));
  SCUBA_RETURN_IF_ERROR(r->GetU32(&u->dest_node));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->dest_position.x));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->dest_position.y));
  return r->GetU64(&u->attrs);
}

void PutQueryUpdate(ByteWriter* w, const QueryUpdate& u) {
  w->PutU32(u.qid);
  w->PutDouble(u.position.x);
  w->PutDouble(u.position.y);
  w->PutI64(u.time);
  w->PutDouble(u.speed);
  w->PutU32(u.dest_node);
  w->PutDouble(u.dest_position.x);
  w->PutDouble(u.dest_position.y);
  w->PutDouble(u.range_width);
  w->PutDouble(u.range_height);
  w->PutU64(u.attrs);
  w->PutU64(u.required_attrs);
}

Status GetQueryUpdate(ByteReader* r, QueryUpdate* u) {
  SCUBA_RETURN_IF_ERROR(r->GetU32(&u->qid));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->position.x));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->position.y));
  SCUBA_RETURN_IF_ERROR(r->GetI64(&u->time));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->speed));
  SCUBA_RETURN_IF_ERROR(r->GetU32(&u->dest_node));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->dest_position.x));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->dest_position.y));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->range_width));
  SCUBA_RETURN_IF_ERROR(r->GetDouble(&u->range_height));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&u->attrs));
  return r->GetU64(&u->required_attrs);
}

/// Per-element minimum encoded sizes, used to bound hostile count prefixes
/// before reserving (an element cannot encode smaller than this).
constexpr uint64_t kLocationUpdateBytes = 60;
constexpr uint64_t kQueryUpdateBytes = 84;
constexpr uint64_t kMatchBytes = 8;

Status CheckCount(uint64_t n, uint64_t element_bytes, size_t remaining,
                  const char* what) {
  // Divide, never multiply: a hostile 2^63-ish count must not overflow.
  if (n > remaining / element_bytes) {
    return Status::DataLoss(std::string(what) + " count " + std::to_string(n) +
                            " overruns the remaining payload");
  }
  return Status::OK();
}

void PutMatches(ByteWriter* w, const std::vector<Match>& v) {
  w->PutU64(v.size());
  for (const Match& m : v) {
    w->PutU32(m.qid);
    w->PutU32(m.oid);
  }
}

Status GetMatches(ByteReader* r, const char* what, std::vector<Match>* v) {
  uint64_t n = 0;
  SCUBA_RETURN_IF_ERROR(r->GetU64(&n));
  SCUBA_RETURN_IF_ERROR(CheckCount(n, kMatchBytes, r->Remaining(), what));
  v->clear();
  v->reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    Match m;
    SCUBA_RETURN_IF_ERROR(r->GetU32(&m.qid));
    SCUBA_RETURN_IF_ERROR(r->GetU32(&m.oid));
    if (!v->empty() && !(v->back() < m)) {
      return Status::Corruption(std::string(what) +
                                " vector is not ascending/duplicate-free");
    }
    v->push_back(m);
  }
  return Status::OK();
}

ByteWriter BeginPayload(MessageType type) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(type));
  return w;
}

/// Checks the type byte and hands back a reader positioned at the body.
Result<ByteReader> BeginDecode(std::string_view payload, MessageType want) {
  ByteReader r(payload);
  uint8_t type = 0;
  SCUBA_RETURN_IF_ERROR(r.GetU8(&type));
  if (type != static_cast<uint8_t>(want)) {
    return Status::InvalidArgument(
        std::string("payload is not a ") +
        std::string(MessageTypeName(want)) + " message (type byte " +
        std::to_string(type) + ")");
  }
  return r;
}

/// Trailing bytes after a complete body mean the encoder and decoder disagree
/// about the message layout — reject rather than silently ignore.
Status FinishDecode(const ByteReader& r) {
  if (!r.AtEnd()) {
    return Status::Corruption(std::to_string(r.Remaining()) +
                              " trailing bytes after message body");
  }
  return Status::OK();
}

}  // namespace

std::string_view MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kHello: return "hello";
    case MessageType::kHelloAck: return "hello-ack";
    case MessageType::kRegister: return "register";
    case MessageType::kCancel: return "cancel";
    case MessageType::kSubscribe: return "subscribe";
    case MessageType::kUpdateBatch: return "update-batch";
    case MessageType::kTick: return "tick";
    case MessageType::kTickAck: return "tick-ack";
    case MessageType::kDelta: return "delta";
    case MessageType::kSnapshot: return "snapshot";
    case MessageType::kError: return "error";
    case MessageType::kBye: return "bye";
    case MessageType::kShutdown: return "shutdown";
  }
  return "unknown";
}

Result<std::string> EncodeFrame(std::string_view payload) {
  // Checked before the u32 cast: an oversized payload would both truncate the
  // length prefix and (if sent) poison the receiving decoder, which treats a
  // too-large prefix as a sticky fatal error.
  if (payload.size() > kMaxFramePayload) {
    return Status::ResourceExhausted(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
        "-byte frame cap");
  }
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32(payload));
  w.PutRawBytes(payload);
  return w.Release();
}

void FrameDecoder::Append(std::string_view bytes) {
  if (!error_.ok()) return;  // poisoned: don't buffer unboundedly
  buf_.append(bytes.data(), bytes.size());
}

Result<bool> FrameDecoder::Next(std::string* payload) {
  if (!error_.ok()) return error_;
  if (buf_.size() < kFrameHeaderBytes) return false;
  uint32_t len = 0;
  uint32_t crc = 0;
  std::memcpy(&len, buf_.data(), sizeof(len));
  std::memcpy(&crc, buf_.data() + sizeof(len), sizeof(crc));
  if (len > kMaxFramePayload) {
    error_ = Status::ResourceExhausted(
        "frame length prefix " + std::to_string(len) + " exceeds the " +
        std::to_string(kMaxFramePayload) + "-byte frame cap");
    return error_;
  }
  if (buf_.size() < kFrameHeaderBytes + len) return false;
  std::string_view body(buf_.data() + kFrameHeaderBytes, len);
  if (Crc32(body) != crc) {
    error_ = Status::Corruption("frame CRC mismatch");
    return error_;
  }
  payload->assign(body);
  buf_.erase(0, kFrameHeaderBytes + len);
  return true;
}

Result<MessageType> PeekType(std::string_view payload) {
  if (payload.empty()) return Status::DataLoss("empty message payload");
  const uint8_t type = static_cast<uint8_t>(payload[0]);
  if (type < static_cast<uint8_t>(MessageType::kHello) ||
      type > static_cast<uint8_t>(MessageType::kShutdown)) {
    return Status::Unimplemented("unknown message type " +
                                 std::to_string(type));
  }
  return static_cast<MessageType>(type);
}

std::string EncodeHello(const HelloMsg& msg) {
  ByteWriter w = BeginPayload(MessageType::kHello);
  w.PutU32(msg.version);
  w.PutString(msg.client_name);
  return w.Release();
}

Status DecodeHello(std::string_view payload, HelloMsg* msg) {
  Result<ByteReader> r = BeginDecode(payload, MessageType::kHello);
  if (!r.ok()) return r.status();
  SCUBA_RETURN_IF_ERROR(r->GetU32(&msg->version));
  SCUBA_RETURN_IF_ERROR(r->GetString(&msg->client_name));
  return FinishDecode(*r);
}

std::string EncodeHelloAck(const HelloAckMsg& msg) {
  ByteWriter w = BeginPayload(MessageType::kHelloAck);
  w.PutU32(msg.version);
  w.PutString(msg.server_name);
  w.PutU32(msg.session_id);
  return w.Release();
}

Status DecodeHelloAck(std::string_view payload, HelloAckMsg* msg) {
  Result<ByteReader> r = BeginDecode(payload, MessageType::kHelloAck);
  if (!r.ok()) return r.status();
  SCUBA_RETURN_IF_ERROR(r->GetU32(&msg->version));
  SCUBA_RETURN_IF_ERROR(r->GetString(&msg->server_name));
  SCUBA_RETURN_IF_ERROR(r->GetU32(&msg->session_id));
  return FinishDecode(*r);
}

std::string EncodeRegister(const RegisterMsg& msg) {
  ByteWriter w = BeginPayload(MessageType::kRegister);
  PutQueryUpdate(&w, msg.query);
  return w.Release();
}

Status DecodeRegister(std::string_view payload, RegisterMsg* msg) {
  Result<ByteReader> r = BeginDecode(payload, MessageType::kRegister);
  if (!r.ok()) return r.status();
  SCUBA_RETURN_IF_ERROR(GetQueryUpdate(&*r, &msg->query));
  return FinishDecode(*r);
}

std::string EncodeCancel(const CancelMsg& msg) {
  ByteWriter w = BeginPayload(MessageType::kCancel);
  w.PutU32(msg.qid);
  return w.Release();
}

Status DecodeCancel(std::string_view payload, CancelMsg* msg) {
  Result<ByteReader> r = BeginDecode(payload, MessageType::kCancel);
  if (!r.ok()) return r.status();
  SCUBA_RETURN_IF_ERROR(r->GetU32(&msg->qid));
  return FinishDecode(*r);
}

std::string EncodeSubscribe(const SubscribeMsg& msg) {
  ByteWriter w = BeginPayload(MessageType::kSubscribe);
  w.PutBool(msg.all);
  w.PutU64(msg.qids.size());
  for (QueryId q : msg.qids) w.PutU32(q);
  return w.Release();
}

Status DecodeSubscribe(std::string_view payload, SubscribeMsg* msg) {
  Result<ByteReader> r = BeginDecode(payload, MessageType::kSubscribe);
  if (!r.ok()) return r.status();
  SCUBA_RETURN_IF_ERROR(r->GetBool(&msg->all));
  uint64_t n = 0;
  SCUBA_RETURN_IF_ERROR(r->GetU64(&n));
  SCUBA_RETURN_IF_ERROR(CheckCount(n, 4, r->Remaining(), "subscribe qid"));
  msg->qids.clear();
  msg->qids.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    QueryId q = 0;
    SCUBA_RETURN_IF_ERROR(r->GetU32(&q));
    msg->qids.push_back(q);
  }
  return FinishDecode(*r);
}

std::string EncodeUpdateBatch(const UpdateBatchMsg& msg) {
  ByteWriter w = BeginPayload(MessageType::kUpdateBatch);
  w.PutI64(msg.time);
  w.PutBool(msg.evaluate);
  w.PutU64(msg.objects.size());
  for (const LocationUpdate& u : msg.objects) PutLocationUpdate(&w, u);
  w.PutU64(msg.queries.size());
  for (const QueryUpdate& u : msg.queries) PutQueryUpdate(&w, u);
  return w.Release();
}

Status DecodeUpdateBatch(std::string_view payload, UpdateBatchMsg* msg) {
  Result<ByteReader> r = BeginDecode(payload, MessageType::kUpdateBatch);
  if (!r.ok()) return r.status();
  SCUBA_RETURN_IF_ERROR(r->GetI64(&msg->time));
  SCUBA_RETURN_IF_ERROR(r->GetBool(&msg->evaluate));
  uint64_t n = 0;
  SCUBA_RETURN_IF_ERROR(r->GetU64(&n));
  SCUBA_RETURN_IF_ERROR(
      CheckCount(n, kLocationUpdateBytes, r->Remaining(), "object update"));
  msg->objects.clear();
  msg->objects.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    LocationUpdate u;
    SCUBA_RETURN_IF_ERROR(GetLocationUpdate(&*r, &u));
    msg->objects.push_back(u);
  }
  SCUBA_RETURN_IF_ERROR(r->GetU64(&n));
  SCUBA_RETURN_IF_ERROR(
      CheckCount(n, kQueryUpdateBytes, r->Remaining(), "query update"));
  msg->queries.clear();
  msg->queries.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    QueryUpdate u;
    SCUBA_RETURN_IF_ERROR(GetQueryUpdate(&*r, &u));
    msg->queries.push_back(u);
  }
  return FinishDecode(*r);
}

std::string EncodeTick(const TickMsg& msg) {
  ByteWriter w = BeginPayload(MessageType::kTick);
  w.PutI64(msg.time);
  return w.Release();
}

Status DecodeTick(std::string_view payload, TickMsg* msg) {
  Result<ByteReader> r = BeginDecode(payload, MessageType::kTick);
  if (!r.ok()) return r.status();
  SCUBA_RETURN_IF_ERROR(r->GetI64(&msg->time));
  return FinishDecode(*r);
}

std::string EncodeTickAck(const TickAckMsg& msg) {
  ByteWriter w = BeginPayload(MessageType::kTickAck);
  w.PutU64(msg.round);
  w.PutI64(msg.time);
  w.PutU64(msg.matches);
  w.PutBool(msg.degraded);
  return w.Release();
}

Status DecodeTickAck(std::string_view payload, TickAckMsg* msg) {
  Result<ByteReader> r = BeginDecode(payload, MessageType::kTickAck);
  if (!r.ok()) return r.status();
  SCUBA_RETURN_IF_ERROR(r->GetU64(&msg->round));
  SCUBA_RETURN_IF_ERROR(r->GetI64(&msg->time));
  SCUBA_RETURN_IF_ERROR(r->GetU64(&msg->matches));
  SCUBA_RETURN_IF_ERROR(r->GetBool(&msg->degraded));
  return FinishDecode(*r);
}

std::string EncodeDelta(const ResultDelta& delta) {
  ByteWriter w = BeginPayload(MessageType::kDelta);
  delta.Save(&w);
  return w.Release();
}

Status DecodeDelta(std::string_view payload, ResultDelta* delta) {
  Result<ByteReader> r = BeginDecode(payload, MessageType::kDelta);
  if (!r.ok()) return r.status();
  SCUBA_RETURN_IF_ERROR(ResultDelta::Load(&*r, delta));
  return FinishDecode(*r);
}

std::string EncodeSnapshot(const SnapshotMsg& msg) {
  ByteWriter w = BeginPayload(MessageType::kSnapshot);
  w.PutU64(msg.round);
  w.PutI64(msg.time);
  w.PutBool(msg.coalesced);
  w.PutU64(msg.degraded_shards.size());
  for (uint32_t s : msg.degraded_shards) w.PutU32(s);
  PutMatches(&w, msg.matches);
  return w.Release();
}

Status DecodeSnapshot(std::string_view payload, SnapshotMsg* msg) {
  Result<ByteReader> r = BeginDecode(payload, MessageType::kSnapshot);
  if (!r.ok()) return r.status();
  SCUBA_RETURN_IF_ERROR(r->GetU64(&msg->round));
  SCUBA_RETURN_IF_ERROR(r->GetI64(&msg->time));
  SCUBA_RETURN_IF_ERROR(r->GetBool(&msg->coalesced));
  uint64_t shards = 0;
  SCUBA_RETURN_IF_ERROR(r->GetU64(&shards));
  SCUBA_RETURN_IF_ERROR(
      CheckCount(shards, 4, r->Remaining(), "degraded shard"));
  msg->degraded_shards.clear();
  msg->degraded_shards.reserve(static_cast<size_t>(shards));
  for (uint64_t i = 0; i < shards; ++i) {
    uint32_t s = 0;
    SCUBA_RETURN_IF_ERROR(r->GetU32(&s));
    msg->degraded_shards.push_back(s);
  }
  SCUBA_RETURN_IF_ERROR(GetMatches(&*r, "snapshot match", &msg->matches));
  return FinishDecode(*r);
}

std::string EncodeError(const ErrorMsg& msg) {
  ByteWriter w = BeginPayload(MessageType::kError);
  w.PutU32(msg.code);
  w.PutString(msg.message);
  w.PutBool(msg.fatal);
  return w.Release();
}

Status DecodeError(std::string_view payload, ErrorMsg* msg) {
  Result<ByteReader> r = BeginDecode(payload, MessageType::kError);
  if (!r.ok()) return r.status();
  SCUBA_RETURN_IF_ERROR(r->GetU32(&msg->code));
  SCUBA_RETURN_IF_ERROR(r->GetString(&msg->message));
  SCUBA_RETURN_IF_ERROR(r->GetBool(&msg->fatal));
  return FinishDecode(*r);
}

std::string EncodeBye() {
  return BeginPayload(MessageType::kBye).Release();
}

std::string EncodeShutdown() {
  return BeginPayload(MessageType::kShutdown).Release();
}

}  // namespace scuba::serve
