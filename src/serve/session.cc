#include "serve/session.h"

#include <utility>

namespace scuba::serve {
namespace {

/// Admission control rides the existing LoadShedder in adaptive mode: engine
/// memory + queued bytes against the serve budget. theta_d is irrelevant here
/// (we only read eta as a pressure signal), so pin it to 1.
LoadSheddingOptions AdmissionShedderOptions(const ServeOptions& options) {
  LoadSheddingOptions shed;
  if (options.memory_budget_bytes > 0) {
    shed.mode = LoadSheddingMode::kAdaptive;
    shed.memory_budget_bytes = options.memory_budget_bytes;
  }
  return shed;
}

}  // namespace

std::string_view SlowConsumerPolicyName(SlowConsumerPolicy policy) {
  switch (policy) {
    case SlowConsumerPolicy::kDisconnect: return "disconnect";
    case SlowConsumerPolicy::kCoalesce: return "coalesce";
  }
  return "unknown";
}

Result<SlowConsumerPolicy> ParseSlowConsumerPolicy(std::string_view name) {
  if (name == "disconnect") return SlowConsumerPolicy::kDisconnect;
  if (name == "coalesce") return SlowConsumerPolicy::kCoalesce;
  return Status::InvalidArgument("unknown slow-consumer policy: " +
                                 std::string(name) +
                                 " (disconnect|coalesce)");
}

ServeMetrics ServeMetrics::Register(MetricsRegistry* registry) {
  ServeMetrics m;
  if (registry == nullptr) return m;
  m.sessions_total = registry->RegisterCounter(
      "scuba_serve_sessions_total", "Sessions accepted since server start");
  m.rounds_total = registry->RegisterCounter(
      "scuba_serve_rounds_total", "Evaluation rounds pushed to subscribers");
  m.batches_total = registry->RegisterCounter(
      "scuba_serve_batches_total", "Update batches ingested from sessions");
  m.deltas_pushed_total = registry->RegisterCounter(
      "scuba_serve_deltas_pushed_total", "Delta frames enqueued to sessions");
  m.delta_bytes_total = registry->RegisterCounter(
      "scuba_serve_delta_bytes_total", "Framed bytes of enqueued delta frames");
  m.snapshots_pushed_total = registry->RegisterCounter(
      "scuba_serve_snapshots_pushed_total",
      "Snapshot frames enqueued (slow-consumer coalescing)");
  m.snapshot_bytes_total = registry->RegisterCounter(
      "scuba_serve_snapshot_bytes_total",
      "Framed bytes of enqueued snapshot frames");
  m.coalesces_total = registry->RegisterCounter(
      "scuba_serve_coalesces_total",
      "Times a slow consumer's queue was coalesced to a snapshot");
  m.disconnects_total = registry->RegisterCounter(
      "scuba_serve_disconnects_total",
      "Sessions dropped by the slow-consumer disconnect policy");
  m.errors_total = registry->RegisterCounter(
      "scuba_serve_errors_total", "Error frames sent to sessions");
  m.sessions_active =
      registry->RegisterGauge("scuba_serve_sessions_active",
                              "Currently connected sessions");
  m.queue_bytes = registry->RegisterGauge(
      "scuba_serve_queue_bytes", "Total outbound bytes queued across sessions");
  Result<HistogramMetric> latency = registry->RegisterHistogram(
      "scuba_serve_push_latency_ms",
      "Delta/snapshot push latency: enqueue to kernel-accepted write",
      {0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250});
  if (latency.ok()) m.push_latency_ms = *latency;
  return m;
}

ResultSet Session::FilterResults(const ResultSet& global) const {
  ResultSet filtered;
  if (subscribe_all_) {
    filtered = global;
    return filtered;
  }
  for (const Match& m : global.matches()) {
    if (subscriptions_.contains(m.qid)) filtered.Add(m.qid, m.oid);
  }
  // A subset of a normalized set taken in order stays normalized.
  for (uint32_t s : global.degraded_shards()) filtered.MarkDegraded(s);
  return filtered;
}

SessionManager::SessionManager(const ServeOptions& options,
                               MetricsRegistry* registry)
    : options_(options),
      metrics_(ServeMetrics::Register(registry)),
      shedder_(AdmissionShedderOptions(options), /*theta_d=*/1.0) {}

Result<Session*> SessionManager::Accept(int fd) {
  if (sessions_.size() >= options_.max_sessions) {
    return Status::ResourceExhausted(
        "session limit reached (" + std::to_string(options_.max_sessions) +
        ")");
  }
  if (shedding()) {
    return Status::ResourceExhausted(
        "server is load shedding (memory budget exceeded); retry later");
  }
  auto session = std::make_unique<Session>(next_session_id_++, fd);
  Session* raw = session.get();
  sessions_[fd] = std::move(session);
  metrics_.sessions_total.Increment();
  metrics_.sessions_active.Set(static_cast<double>(sessions_.size()));
  return raw;
}

Session* SessionManager::Find(int fd) {
  auto it = sessions_.find(fd);
  return it == sessions_.end() ? nullptr : it->second.get();
}

void SessionManager::Close(int fd) {
  auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  total_queued_bytes_ -= it->second->queued_bytes_;
  sessions_.erase(it);
  metrics_.sessions_active.Set(static_cast<double>(sessions_.size()));
  metrics_.queue_bytes.Set(static_cast<double>(total_queued_bytes_));
}

void SessionManager::EnqueueMessage(Session* session, MessageType type,
                                    std::string_view payload) {
  Result<std::string> frame = EncodeFrame(payload);
  if (!frame.ok()) {
    FailSession(session, frame.status());
    return;
  }
  EnqueueFrame(session, type, std::move(*frame));
}

void SessionManager::FailSession(Session* session, const Status& error) {
  // Drop everything pending (keeping a partially-written head frame so the
  // stream is not torn); the only frame worth sending after it is the
  // explanation.
  CoalesceQueue(session);
  session->set_doomed();
  ++disconnects_;
  metrics_.disconnects_total.Increment();
  ErrorMsg err;
  err.code = static_cast<uint32_t>(error.code());
  err.message = error.message();
  err.fatal = true;
  // Error payloads are a short status string — always within the frame cap.
  Result<std::string> frame = EncodeFrame(EncodeError(err));
  if (frame.ok()) EnqueueFrame(session, MessageType::kError, std::move(*frame));
}

void SessionManager::EnqueueFrame(Session* session, MessageType type,
                                  std::string frame) {
  const bool is_result =
      type == MessageType::kDelta || type == MessageType::kSnapshot;
  // A doomed session takes only its farewell error: results are undeliverable
  // and further control frames would grow the flush queue past the doom point.
  if (session->doomed() && type != MessageType::kError) return;
  if (!session->doomed() && !is_result &&
      session->queued_control_frames_ >= options_.max_queued_control_frames) {
    // A client that streams batches/ticks without ever reading accumulates
    // acks; coalescing frees only result frames, so the sole bound on control
    // frames is a disconnect.
    FailSession(session,
                Status::ResourceExhausted(
                    "slow consumer: " +
                    std::to_string(session->queued_control_frames_) +
                    " unread control frames queued"));
    return;
  }
  if (is_result &&
      session->queued_bytes_ + frame.size() > options_.max_queue_bytes) {
    if (options_.slow_consumer == SlowConsumerPolicy::kDisconnect) {
      FailSession(session,
                  Status::ResourceExhausted(
                      "slow consumer: outbound queue exceeded " +
                      std::to_string(options_.max_queue_bytes) + " bytes"));
      return;
    }
    // Coalesce: throw away queued result frames, then enqueue one snapshot of
    // the cursor head in their place. The snapshot itself is exempt from the
    // cap — it REPLACES the backlog and there is at most one in flight, so
    // memory stays bounded by max(queue cap, one full result set).
    CoalesceQueue(session);
    if (type == MessageType::kSnapshot) {
      // The triggering frame was already the coalesced snapshot (re-entry
      // from below); fall through and queue it.
    } else {
      ++session->coalesces;
      ++coalesces_;
      metrics_.coalesces_total.Increment();
      SnapshotMsg snap;
      snap.round = session->tracker_.rounds();
      snap.time = session->tracker_.time();
      snap.coalesced = true;
      snap.degraded_shards = session->tracker_.Current().degraded_shards();
      snap.matches = session->tracker_.Current().matches();
      Result<std::string> snap_frame = EncodeFrame(EncodeSnapshot(snap));
      if (!snap_frame.ok()) {
        // Even one full-set snapshot no longer fits a frame; nothing smaller
        // can stand in for the dropped backlog, so the session cannot be
        // caught up — disconnect it with the typed error.
        FailSession(session, snap_frame.status());
        return;
      }
      metrics_.snapshots_pushed_total.Increment();
      metrics_.snapshot_bytes_total.Increment(snap_frame->size());
      EnqueueFrame(session, MessageType::kSnapshot, std::move(*snap_frame));
      return;
    }
  }
  session->queued_bytes_ += frame.size();
  total_queued_bytes_ += frame.size();
  if (!is_result) ++session->queued_control_frames_;
  metrics_.queue_bytes.Set(static_cast<double>(total_queued_bytes_));
  if (type == MessageType::kError) metrics_.errors_total.Increment();
  session->queue_.push_back(
      OutFrame{type, std::move(frame), std::chrono::steady_clock::now()});
}

void SessionManager::CoalesceQueue(Session* session) {
  std::deque<OutFrame> kept;
  for (OutFrame& f : session->queue_) {
    const bool is_result = f.type == MessageType::kDelta ||
                           f.type == MessageType::kSnapshot;
    // Never drop the head frame if partially written — a torn frame would
    // poison the client's decoder.
    const bool head_in_flight =
        kept.empty() && &f == &session->queue_.front() &&
        session->write_offset > 0;
    if (is_result && !head_in_flight) {
      session->queued_bytes_ -= f.bytes.size();
      total_queued_bytes_ -= f.bytes.size();
    } else {
      kept.push_back(std::move(f));
    }
  }
  session->queue_ = std::move(kept);
  metrics_.queue_bytes.Set(static_cast<double>(total_queued_bytes_));
}

void SessionManager::PushRound(uint64_t round, Timestamp now,
                               const ResultSet& global) {
  // `round` is the server's global round counter; each session's delta is
  // stamped by its OWN cursor (a late subscriber starts at 1), so the global
  // round only drives metrics here.
  (void)round;
  metrics_.rounds_total.Increment();
  for (auto& [fd, session] : sessions_) {
    (void)fd;
    if (!session->ready() || session->doomed() || !session->WantsResults()) {
      continue;
    }
    ResultSet filtered = session->FilterResults(global);
    ResultDelta delta = session->tracker_.Observe(filtered, now);
    // One delta frame per round per session, even when empty: subscribers use
    // the round stamps to align with ticks and detect gaps.
    Result<std::string> frame = EncodeFrame(EncodeDelta(delta));
    if (!frame.ok()) {
      // A delta too large for one frame would poison the peer's decoder;
      // disconnect this session with the typed error instead (the cursor has
      // already advanced, but a doomed session never folds again).
      FailSession(session.get(), frame.status());
      continue;
    }
    ++session->deltas_pushed;
    ++deltas_pushed_;
    metrics_.deltas_pushed_total.Increment();
    metrics_.delta_bytes_total.Increment(frame->size());
    EnqueueFrame(session.get(), MessageType::kDelta, std::move(*frame));
  }
}

void SessionManager::ObservePressure(size_t engine_memory_bytes) {
  shedder_.ObserveMemoryUsage(engine_memory_bytes + total_queued_bytes_);
}

bool SessionManager::ConsumeWritten(Session* session, size_t n) {
  if (session->queue_.empty()) return false;
  OutFrame& head = session->queue_.front();
  session->write_offset += n;
  session->queued_bytes_ -= n;
  total_queued_bytes_ -= n;
  if (session->write_offset < head.bytes.size()) return false;
  const auto elapsed = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - head.enqueued_at);
  if (head.type == MessageType::kDelta ||
      head.type == MessageType::kSnapshot) {
    metrics_.push_latency_ms.Observe(elapsed.count());
  } else {
    --session->queued_control_frames_;
  }
  session->queue_.pop_front();
  session->write_offset = 0;
  metrics_.queue_bytes.Set(static_cast<double>(total_queued_bytes_));
  return true;
}

}  // namespace scuba::serve
