// ScubaClient: the in-repo client library for the serving front-end
// (docs/ARCHITECTURE.md §14). Used by the loopback e2e tests, the
// `scuba_cli serve-replay` driver and bench_serve.
//
// Blocking, single-threaded, one TCP connection. Two usage shapes:
//
//  *Driver*: Register/SendBatch/Tick push updates and pace rounds; calls that
//  close a round block until the server's kTickAck arrives (folding any
//  pushed deltas for this session on the way).
//
//  *Subscriber*: Subscribe/SubscribeAll then PumpRound()/PumpUntilRound()
//  block until the next result push arrives. Every kDelta folds into
//  `folded()` via ApplyDelta; a kSnapshot (slow-consumer coalescing) replaces
//  the fold base. Round continuity is enforced: a delta that skips a round
//  without an intervening coalesced snapshot is kDataLoss.

#ifndef SCUBA_SERVE_CLIENT_H_
#define SCUBA_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace scuba::serve {

class ScubaClient {
 public:
  struct Options {
    std::string name = "client";
    /// Receive timeout per blocking wait; 0 disables (wait forever).
    int recv_timeout_ms = 30'000;
    /// SO_RCVBUF, set before connecting; 0 keeps the kernel default.
    /// Shrinking it (with ServeOptions::socket_send_buffer_bytes) bounds
    /// kernel-side buffering so server-side slow-consumer policies engage.
    size_t recv_buffer_bytes = 0;
  };

  /// Connects to 127.0.0.1:port and completes the hello handshake.
  static Result<ScubaClient> Connect(uint16_t port, const Options& options);
  static Result<ScubaClient> Connect(uint16_t port) {
    return Connect(port, Options());
  }

  ScubaClient(ScubaClient&& other) noexcept;
  ScubaClient& operator=(ScubaClient&& other) noexcept;
  ScubaClient(const ScubaClient&) = delete;
  ScubaClient& operator=(const ScubaClient&) = delete;
  ~ScubaClient();

  uint32_t session_id() const { return session_id_; }
  const std::string& server_name() const { return server_name_; }

  /// Registers one continuous query (ingested server-side and auto-subscribed
  /// for this session). Fire-and-forget: errors surface on the next wait.
  Status Register(const QueryUpdate& query);
  Status Cancel(QueryId qid);
  /// Subscribing blocks until the server acks with a snapshot of this
  /// session's cursor state (the fold base) — after it returns, every
  /// subsequent round is guaranteed to push here, even when another session
  /// closes it immediately.
  Status SubscribeAll();
  Status Subscribe(const std::vector<QueryId>& qids);

  /// Sends one tick batch. When `batch.evaluate` is set this blocks until the
  /// round's kTickAck, folding any deltas pushed to this session on the way;
  /// otherwise it returns immediately with a zero ack.
  Result<TickAckMsg> SendBatch(const UpdateBatchMsg& batch);
  /// Evaluate-only heartbeat; always blocks for the ack.
  Result<TickAckMsg> Tick(Timestamp time);

  /// Blocks until the next result push (delta or snapshot) is folded.
  /// Returns the round it brought the fold up to.
  Result<uint64_t> PumpRound();
  /// Pumps until the fold reaches at least `round` (coalesced snapshots may
  /// jump past intermediate rounds).
  Status PumpUntilRound(uint64_t round);

  /// Clean disconnect / remote server stop (loopback tooling).
  Status Bye();
  Status Shutdown();

  /// The folded result view: base snapshot + every delta applied, i.e. this
  /// session's subscription slice of the server's last pushed round.
  const ResultSet& folded() const { return folded_; }
  uint64_t last_round() const { return last_round_; }
  Timestamp last_time() const { return last_time_; }

  uint64_t deltas_received() const { return deltas_received_; }
  uint64_t snapshots_received() const { return snapshots_received_; }
  uint64_t coalesced_snapshots() const { return coalesced_snapshots_; }
  uint64_t result_bytes_received() const { return result_bytes_received_; }
  uint64_t delta_matches_received() const { return delta_matches_received_; }

 private:
  ScubaClient() = default;

  Status SendFrame(std::string frame);
  /// Frames `payload` (send-side kMaxFramePayload check) and sends it.
  Status SendMessage(std::string_view payload);
  /// Sends a subscribe and blocks for its ack snapshot.
  Status SendSubscribe(const SubscribeMsg& msg);
  /// Blocks for the next complete frame payload.
  Status ReadFrame(std::string* payload);
  /// Handles one asynchronous server push (delta/snapshot/error). Sets
  /// `*handled_result` when it was a result frame.
  Status HandlePush(std::string_view payload, MessageType type,
                    bool* handled_result);
  Status FoldDelta(std::string_view payload);
  Status FoldSnapshot(std::string_view payload);

  int fd_ = -1;
  uint32_t session_id_ = 0;
  std::string server_name_;
  FrameDecoder decoder_;

  ResultSet folded_;
  uint64_t last_round_ = 0;
  Timestamp last_time_ = 0;

  uint64_t deltas_received_ = 0;
  uint64_t snapshots_received_ = 0;
  uint64_t coalesced_snapshots_ = 0;
  uint64_t result_bytes_received_ = 0;
  uint64_t delta_matches_received_ = 0;
};

}  // namespace scuba::serve

#endif  // SCUBA_SERVE_CLIENT_H_
