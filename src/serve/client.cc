#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace scuba::serve {
namespace {

/// A server-sent ErrorMsg reconstituted as a typed Status.
Status StatusFromError(const ErrorMsg& err) {
  return Status(static_cast<StatusCode>(err.code), err.message);
}

}  // namespace

Result<ScubaClient> ScubaClient::Connect(uint16_t port,
                                         const Options& options) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  if (options.recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options.recv_timeout_ms / 1000;
    tv.tv_usec = (options.recv_timeout_ms % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  if (options.recv_buffer_bytes > 0) {
    const int rcvbuf = static_cast<int>(options.recv_buffer_bytes);
    setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status err = Status::IoError(std::string("connect 127.0.0.1:") +
                                 std::to_string(port) + ": " +
                                 std::strerror(errno));
    close(fd);
    return err;
  }
  ScubaClient client;
  client.fd_ = fd;
  HelloMsg hello;
  hello.client_name = options.name;
  Status st = client.SendMessage(EncodeHello(hello));
  if (!st.ok()) return st;
  // The handshake reply must be the hello-ack — but the very first frame can
  // legally be an error (admission refused, version mismatch).
  std::string payload;
  st = client.ReadFrame(&payload);
  if (!st.ok()) return st;
  Result<MessageType> type = PeekType(payload);
  if (!type.ok()) return type.status();
  if (*type == MessageType::kError) {
    ErrorMsg err;
    SCUBA_RETURN_IF_ERROR(DecodeError(payload, &err));
    return StatusFromError(err);
  }
  if (*type != MessageType::kHelloAck) {
    return Status::FailedPrecondition(
        "handshake: expected hello-ack, got " +
        std::string(MessageTypeName(*type)));
  }
  HelloAckMsg ack;
  SCUBA_RETURN_IF_ERROR(DecodeHelloAck(payload, &ack));
  if (ack.version != kProtocolVersion) {
    return Status::FailedPrecondition(
        "protocol version mismatch: server " + std::to_string(ack.version) +
        ", client " + std::to_string(kProtocolVersion));
  }
  client.session_id_ = ack.session_id;
  client.server_name_ = ack.server_name;
  return client;
}

ScubaClient::ScubaClient(ScubaClient&& other) noexcept {
  *this = std::move(other);
}

ScubaClient& ScubaClient::operator=(ScubaClient&& other) noexcept {
  if (this == &other) return *this;
  if (fd_ >= 0) close(fd_);
  fd_ = std::exchange(other.fd_, -1);
  session_id_ = other.session_id_;
  server_name_ = std::move(other.server_name_);
  decoder_ = std::move(other.decoder_);
  folded_ = std::move(other.folded_);
  last_round_ = other.last_round_;
  last_time_ = other.last_time_;
  deltas_received_ = other.deltas_received_;
  snapshots_received_ = other.snapshots_received_;
  coalesced_snapshots_ = other.coalesced_snapshots_;
  result_bytes_received_ = other.result_bytes_received_;
  delta_matches_received_ = other.delta_matches_received_;
  return *this;
}

ScubaClient::~ScubaClient() {
  if (fd_ >= 0) close(fd_);
}

Status ScubaClient::SendMessage(std::string_view payload) {
  Result<std::string> frame = EncodeFrame(payload);
  SCUBA_RETURN_IF_ERROR(frame.status());
  return SendFrame(std::move(*frame));
}

Status ScubaClient::SendFrame(std::string frame) {
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t n = send(fd_, frame.data() + sent, frame.size() - sent,
                     MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ScubaClient::ReadFrame(std::string* payload) {
  while (true) {
    Result<bool> frame = decoder_.Next(payload);
    SCUBA_RETURN_IF_ERROR(frame.status());
    if (*frame) return Status::OK();
    char buf[64 * 1024];
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Append(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      return Status::IoError("server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IoError("timed out waiting for a server frame");
    }
    return Status::IoError(std::string("recv: ") + std::strerror(errno));
  }
}

Status ScubaClient::FoldDelta(std::string_view payload) {
  ResultDelta delta;
  SCUBA_RETURN_IF_ERROR(DecodeDelta(payload, &delta));
  // Deltas are a dense per-session sequence; a gap means a dropped frame and
  // an unusable fold (only a coalesced snapshot may jump rounds).
  if (delta.round != last_round_ + 1) {
    return Status::DataLoss("delta round " + std::to_string(delta.round) +
                            " does not follow folded round " +
                            std::to_string(last_round_));
  }
  folded_ = ApplyDelta(folded_, delta);
  last_round_ = delta.round;
  last_time_ = delta.time;
  ++deltas_received_;
  result_bytes_received_ += payload.size();
  delta_matches_received_ += delta.size();
  return Status::OK();
}

Status ScubaClient::FoldSnapshot(std::string_view payload) {
  SnapshotMsg snap;
  SCUBA_RETURN_IF_ERROR(DecodeSnapshot(payload, &snap));
  ResultSet next;
  for (const Match& m : snap.matches) next.Add(m.qid, m.oid);
  for (uint32_t s : snap.degraded_shards) next.MarkDegraded(s);
  folded_ = std::move(next);
  last_round_ = snap.round;
  last_time_ = snap.time;
  ++snapshots_received_;
  if (snap.coalesced) ++coalesced_snapshots_;
  result_bytes_received_ += payload.size();
  return Status::OK();
}

Status ScubaClient::HandlePush(std::string_view payload, MessageType type,
                               bool* handled_result) {
  *handled_result = false;
  switch (type) {
    case MessageType::kDelta:
      *handled_result = true;
      return FoldDelta(payload);
    case MessageType::kSnapshot:
      *handled_result = true;
      return FoldSnapshot(payload);
    case MessageType::kError: {
      ErrorMsg err;
      SCUBA_RETURN_IF_ERROR(DecodeError(payload, &err));
      return StatusFromError(err);
    }
    default:
      return Status::FailedPrecondition(
          "unexpected server message: " +
          std::string(MessageTypeName(type)));
  }
}

Status ScubaClient::Register(const QueryUpdate& query) {
  RegisterMsg msg;
  msg.query = query;
  return SendMessage(EncodeRegister(msg));
}

Status ScubaClient::Cancel(QueryId qid) {
  CancelMsg msg;
  msg.qid = qid;
  return SendMessage(EncodeCancel(msg));
}

Status ScubaClient::SubscribeAll() {
  SubscribeMsg msg;
  msg.all = true;
  return SendSubscribe(msg);
}

Status ScubaClient::Subscribe(const std::vector<QueryId>& qids) {
  SubscribeMsg msg;
  msg.qids = qids;
  return SendSubscribe(msg);
}

Status ScubaClient::SendSubscribe(const SubscribeMsg& msg) {
  SCUBA_RETURN_IF_ERROR(SendMessage(EncodeSubscribe(msg)));
  // Block for the subscribe-ack snapshot (the session's cursor state, our
  // fold base). Once it arrives the server has installed the subscription,
  // so no round closed by another session can slip past unobserved. Earlier
  // in-flight pushes fold on the way.
  std::string payload;
  while (true) {
    SCUBA_RETURN_IF_ERROR(ReadFrame(&payload));
    Result<MessageType> type = PeekType(payload);
    SCUBA_RETURN_IF_ERROR(type.status());
    bool handled = false;
    SCUBA_RETURN_IF_ERROR(HandlePush(payload, *type, &handled));
    if (*type == MessageType::kSnapshot) return Status::OK();
  }
}

Result<TickAckMsg> ScubaClient::SendBatch(const UpdateBatchMsg& batch) {
  SCUBA_RETURN_IF_ERROR(SendMessage(EncodeUpdateBatch(batch)));
  if (!batch.evaluate) return TickAckMsg{};
  // Block for the round's ack; our own delta (if subscribed) arrives first
  // and folds on the way.
  std::string payload;
  while (true) {
    SCUBA_RETURN_IF_ERROR(ReadFrame(&payload));
    Result<MessageType> type = PeekType(payload);
    SCUBA_RETURN_IF_ERROR(type.status());
    if (*type == MessageType::kTickAck) {
      TickAckMsg ack;
      SCUBA_RETURN_IF_ERROR(DecodeTickAck(payload, &ack));
      return ack;
    }
    bool handled = false;
    SCUBA_RETURN_IF_ERROR(HandlePush(payload, *type, &handled));
  }
}

Result<TickAckMsg> ScubaClient::Tick(Timestamp time) {
  UpdateBatchMsg batch;
  batch.time = time;
  batch.evaluate = true;
  return SendBatch(batch);
}

Result<uint64_t> ScubaClient::PumpRound() {
  std::string payload;
  while (true) {
    SCUBA_RETURN_IF_ERROR(ReadFrame(&payload));
    Result<MessageType> type = PeekType(payload);
    SCUBA_RETURN_IF_ERROR(type.status());
    bool handled = false;
    SCUBA_RETURN_IF_ERROR(HandlePush(payload, *type, &handled));
    if (handled) return last_round_;
  }
}

Status ScubaClient::PumpUntilRound(uint64_t round) {
  while (last_round_ < round) {
    SCUBA_RETURN_IF_ERROR(PumpRound().status());
  }
  return Status::OK();
}

Status ScubaClient::Bye() { return SendMessage(EncodeBye()); }

Status ScubaClient::Shutdown() { return SendMessage(EncodeShutdown()); }

}  // namespace scuba::serve
