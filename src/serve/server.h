// ScubaServer: the long-lived subscription serving front-end
// (docs/ARCHITECTURE.md §14).
//
// One event-loop thread multiplexes every client session over poll() on a
// loopback TCP listener, drives the engine through the QueryProcessor
// interface (single ScubaEngine or ShardedEngine — the server does not care),
// and pushes per-session result deltas after every evaluation round.
//
// Round semantics mirror ReplayTrace (src/stream/pipeline.cc) exactly —
// screen → WAL-log → ingest → evaluate → push → round-complete, with the
// same strictly-increasing batch-time contract (kRepair resyncs, otherwise
// the offending batch is rejected before it touches the WAL or the engine) —
// so a client replaying a trace through the server reproduces the offline
// per-round ResultSets and final EngineStateHash bit-for-bit, and
// --durable-dir recovery works unchanged.
//
// Clients own round pacing: a batch's `evaluate` flag (or a kTick) closes a
// round. Engine-level failures after a batch is WAL-logged are terminal (the
// server refuses to serve from suspect state, exactly as an offline replay
// aborts); per-client protocol violations only cost that client its session.

#ifndef SCUBA_SERVE_SERVER_H_
#define SCUBA_SERVE_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "core/query_processor.h"
#include "serve/session.h"
#include "stream/pipeline.h"
#include "stream/update_validator.h"

namespace scuba::serve {

/// Collaborators, all unowned and outliving the server. Only `engine` is
/// required.
struct ServerDeps {
  QueryProcessor* engine = nullptr;
  /// Screens inbound batches under drop/repair policies (null = strict:
  /// engine-level validation failures are terminal, as in offline replay).
  UpdateValidator* screen = nullptr;
  /// WAL/snapshot sink; batches become durable before they mutate the engine.
  DurabilitySink* durability = nullptr;
  /// Registry for the scuba_serve_* metrics; null = a server-owned registry
  /// (readable via registry()). Pass the engine telemetry registry to make
  /// serve metrics ride the JSONL round stream (schema v4).
  MetricsRegistry* registry = nullptr;
};

struct ServerStats {
  uint64_t rounds = 0;
  uint64_t batches = 0;
  uint64_t sessions_accepted = 0;
  uint64_t deltas_pushed = 0;
  uint64_t coalesces = 0;
  uint64_t disconnects = 0;
  uint64_t last_round_matches = 0;
  bool last_round_degraded = false;
};

class ScubaServer {
 public:
  /// Binds and listens on 127.0.0.1:options.port (0 = ephemeral; read the
  /// outcome from port()). The event loop starts with Start().
  static Result<std::unique_ptr<ScubaServer>> Create(
      const ServeOptions& options, const ServerDeps& deps);

  ~ScubaServer();
  ScubaServer(const ScubaServer&) = delete;
  ScubaServer& operator=(const ScubaServer&) = delete;

  uint16_t port() const { return port_; }

  /// Spawns the event-loop thread. kFailedPrecondition if already started.
  Status Start();

  /// Asks the loop to exit (thread-safe, idempotent). Queued frames get one
  /// best-effort flush. Wait() (or the destructor) joins.
  void RequestStop();

  /// Joins the event loop and returns its terminal status: OK after
  /// RequestStop() or a client kShutdown, the engine/durability error if
  /// serving aborted.
  Status Wait();

  ServerStats stats() const;

  /// The effective metrics registry (deps.registry or the server-owned one).
  const MetricsRegistry& registry() const { return *registry_; }

 private:
  ScubaServer(const ServeOptions& options, const ServerDeps& deps,
              int listen_fd, uint16_t port, int pipe_r, int pipe_w);

  void Loop();
  void AcceptPending();
  /// Reads from one session; decodes and handles every complete frame.
  void ReadSession(Session* session);
  void HandleMessage(Session* session, std::string_view payload);
  Status HandleBatch(Session* session, Timestamp time, bool evaluate,
                     std::vector<LocationUpdate>* objects,
                     std::vector<QueryUpdate>* queries);
  Status RunRound(Session* driver, Timestamp now);
  /// Flushes as much of the session's queue as the socket accepts.
  void WriteSession(Session* session);
  void SendError(Session* session, const Status& error, bool fatal);
  void CloseSession(int fd);

  ServeOptions options_;
  ServerDeps deps_;
  std::unique_ptr<MetricsRegistry> owned_registry_;
  MetricsRegistry* registry_ = nullptr;
  SessionManager sessions_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  int pipe_r_ = -1;  ///< Self-pipe: RequestStop wakes the poll loop.
  int pipe_w_ = -1;

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;
  bool stopping_ = false;  ///< Graceful: drain queues, then exit.
  Status terminal_ = Status::OK();

  // Round state (event-loop thread only).
  Timestamp prev_time_;
  ResultSet results_;
  uint64_t rounds_ = 0;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace scuba::serve

#endif  // SCUBA_SERVE_SERVER_H_
