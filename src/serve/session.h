// Session state for the serving front-end (docs/ARCHITECTURE.md §14).
//
// A Session is one connected subscriber: its handshake state, subscribed
// query set, per-session IncrementalResultTracker (the delta cursor), and a
// bounded outbound frame queue. The SessionManager owns every session and
// implements the policies that keep one misbehaving client from hurting the
// rest:
//
//  - *Bounded queues*: each session's outbound queue is capped at
//    max_queue_bytes. When a slow consumer falls behind, the configured
//    SlowConsumerPolicy fires: kDisconnect drops the session with a fatal
//    error frame; kCoalesce throws away its queued result frames and replaces
//    them with ONE full-set snapshot (the tracker's retained current set), so
//    memory stays bounded and the client can still catch up in one step.
//  - *Admission control*: a LoadShedder in adaptive mode watches engine
//    memory plus total queued bytes against serve_memory_budget; while it
//    sheds, new sessions are refused with kResourceExhausted.
//
// Everything here is plain state — no sockets — so the policies are unit
// testable; ScubaServer (server.h) wires sessions to file descriptors.

#ifndef SCUBA_SERVE_SESSION_H_
#define SCUBA_SERVE_SESSION_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/status.h"
#include "core/load_shedder.h"
#include "core/result_delta.h"
#include "obs/metrics.h"
#include "serve/protocol.h"

namespace scuba::serve {

enum class SlowConsumerPolicy : uint8_t {
  kDisconnect = 0,  ///< Drop the session that cannot keep up.
  kCoalesce = 1,    ///< Replace its queued result frames with one snapshot.
};

std::string_view SlowConsumerPolicyName(SlowConsumerPolicy policy);
Result<SlowConsumerPolicy> ParseSlowConsumerPolicy(std::string_view name);

struct ServeOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see
  /// ScubaServer::port()).
  uint16_t port = 0;
  /// Hard cap on concurrent sessions; further connects get kResourceExhausted.
  uint32_t max_sessions = 64;
  /// Per-session outbound queue cap in bytes; crossing it fires
  /// slow_consumer.
  size_t max_queue_bytes = 1u << 20;
  SlowConsumerPolicy slow_consumer = SlowConsumerPolicy::kCoalesce;
  /// Cap on queued control frames (hello-ack, tick-ack, error) per session.
  /// Control frames are small and exempt from max_queue_bytes, but a client
  /// that streams batches without ever reading accumulates acks without
  /// bound; coalescing cannot shrink them, so crossing this cap disconnects.
  size_t max_queued_control_frames = 1024;
  /// Adaptive admission budget (engine memory + queued bytes). 0 disables
  /// load-shedder-based admission control.
  size_t memory_budget_bytes = 0;
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default. Shrinking it
  /// moves backlog out of opaque kernel buffers into the server's accounted
  /// (and capped) per-session queue, making max_queue_bytes the real bound on
  /// a slow consumer's footprint.
  size_t socket_send_buffer_bytes = 0;
  std::string server_name = "scuba-serve";
};

/// One queued outbound frame (already length+CRC framed), tagged with its
/// message type so coalescing can drop result frames and keep control frames,
/// and with its enqueue time so the server can observe push latency.
struct OutFrame {
  MessageType type = MessageType::kError;
  std::string bytes;
  std::chrono::steady_clock::time_point enqueued_at;
};

/// Serve metric handles (telemetry schema v4). All registered against one
/// MetricsRegistry — the engine's when telemetry is on (so serve counters ride
/// the JSONL round stream), else the server's own.
struct ServeMetrics {
  Counter sessions_total;
  Counter rounds_total;
  Counter batches_total;
  Counter deltas_pushed_total;
  Counter delta_bytes_total;
  Counter snapshots_pushed_total;
  Counter snapshot_bytes_total;
  Counter coalesces_total;
  Counter disconnects_total;
  Counter errors_total;
  Gauge sessions_active;
  Gauge queue_bytes;
  HistogramMetric push_latency_ms;

  static ServeMetrics Register(MetricsRegistry* registry);
};

class Session {
 public:
  Session(uint32_t id, int fd) : id_(id), fd_(fd) {}

  uint32_t id() const { return id_; }
  int fd() const { return fd_; }

  /// Hello handshake completed; only ready sessions receive round pushes.
  bool ready() const { return ready_; }
  void set_ready(std::string name) {
    ready_ = true;
    name_ = std::move(name);
  }
  const std::string& name() const { return name_; }

  /// Marked for closure (fatal error / bye); the server flushes the queue
  /// best-effort and closes.
  bool doomed() const { return doomed_; }
  void set_doomed() { doomed_ = true; }

  void SubscribeAll() { subscribe_all_ = true; }
  void Subscribe(QueryId qid) { subscriptions_.insert(qid); }
  void Unsubscribe(QueryId qid) { subscriptions_.erase(qid); }
  bool subscribe_all() const { return subscribe_all_; }
  const std::set<QueryId>& subscriptions() const { return subscriptions_; }
  bool WantsResults() const {
    return subscribe_all_ || !subscriptions_.empty();
  }

  /// This session's view of a round: the global set filtered to its
  /// subscriptions (the global set itself when subscribed to all — no copy
  /// cost beyond the ResultSet copy). Degraded provenance is preserved.
  ResultSet FilterResults(const ResultSet& global) const;

  IncrementalResultTracker& tracker() { return tracker_; }
  FrameDecoder& decoder() { return decoder_; }

  std::deque<OutFrame>& queue() { return queue_; }
  size_t queued_bytes() const { return queued_bytes_; }
  size_t queued_control_frames() const { return queued_control_frames_; }
  /// Bytes of the head frame already handed to the kernel (partial write).
  size_t write_offset = 0;

  uint64_t deltas_pushed = 0;
  uint64_t coalesces = 0;

 private:
  friend class SessionManager;
  uint32_t id_;
  int fd_;
  bool ready_ = false;
  bool doomed_ = false;
  std::string name_;
  bool subscribe_all_ = false;
  std::set<QueryId> subscriptions_;
  IncrementalResultTracker tracker_;
  FrameDecoder decoder_;
  std::deque<OutFrame> queue_;
  size_t queued_bytes_ = 0;
  size_t queued_control_frames_ = 0;
};

class SessionManager {
 public:
  SessionManager(const ServeOptions& options, MetricsRegistry* registry);

  /// Admits a new connection: kResourceExhausted when at max_sessions or
  /// while the admission load shedder is shedding. The returned pointer is
  /// owned by the manager and valid until Close(fd).
  Result<Session*> Accept(int fd);
  Session* Find(int fd);
  void Close(int fd);

  /// Frames `payload` and appends it to `session`'s queue under the
  /// bounded-queue policy (see EnqueueFrame). A payload too large for one
  /// frame (kMaxFramePayload) can never reach the peer — its decoder would
  /// reject the length prefix and poison the stream — so the session is
  /// disconnected with a fatal typed error instead.
  void EnqueueMessage(Session* session, MessageType type,
                      std::string_view payload);

  /// Appends an already-framed message to `session`'s queue under the
  /// bounded-queue policy. Result frames (delta, snapshot) crossing
  /// max_queue_bytes fire the slow-consumer policy; control frames
  /// (hello-ack, tick-ack, error) are bounded by max_queued_control_frames
  /// and disconnect past it (coalescing cannot shrink them). A doomed
  /// session accepts only error frames (its farewell); everything else is
  /// dropped.
  void EnqueueFrame(Session* session, MessageType type, std::string frame);

  /// Pushes one evaluation round to every ready, subscribed session: filters
  /// the global set per session, advances its delta cursor, and enqueues one
  /// kDelta frame stamped (round, now). Sessions whose cursor was coalesced
  /// keep folding correctly because the snapshot reset their base.
  void PushRound(uint64_t round, Timestamp now, const ResultSet& global);

  /// Adaptive admission feedback; call once per round with the engine's
  /// estimated memory. Total queued bytes are added on top.
  void ObservePressure(size_t engine_memory_bytes);

  /// Dequeue accounting for the server's write path: `n` bytes of `session`'s
  /// head frame were written; pops the frame when complete and observes push
  /// latency. Returns true when the frame completed.
  bool ConsumeWritten(Session* session, size_t n);

  size_t total_queued_bytes() const { return total_queued_bytes_; }
  size_t session_count() const { return sessions_.size(); }
  uint64_t deltas_pushed() const { return deltas_pushed_; }
  uint64_t coalesces() const { return coalesces_; }
  uint64_t disconnects() const { return disconnects_; }
  const ServeOptions& options() const { return options_; }
  ServeMetrics& metrics() { return metrics_; }
  /// Deterministic iteration order (by fd) for the poll loop.
  std::map<int, std::unique_ptr<Session>>& sessions() { return sessions_; }
  bool shedding() const { return shedder_.eta() > 0.0; }

 private:
  void CoalesceQueue(Session* session);
  /// Disconnect degrade: drops the session's queued result frames (keeping a
  /// partially-written head), dooms it, and queues one fatal error frame
  /// explaining `error`. Counts as a disconnect.
  void FailSession(Session* session, const Status& error);

  ServeOptions options_;
  ServeMetrics metrics_;
  LoadShedder shedder_;
  std::map<int, std::unique_ptr<Session>> sessions_;
  uint32_t next_session_id_ = 1;
  size_t total_queued_bytes_ = 0;
  // Readable aggregates (metric handles are write-only).
  uint64_t deltas_pushed_ = 0;
  uint64_t coalesces_ = 0;
  uint64_t disconnects_ = 0;
};

}  // namespace scuba::serve

#endif  // SCUBA_SERVE_SESSION_H_
