// Wire protocol for the subscription serving front-end
// (docs/ARCHITECTURE.md §14).
//
// Two layers, both built from the common Serializer vocabulary:
//
//  *Frame layer* — every message travels as
//      u32 payload_len | u32 crc32(payload) | payload
//  (little-endian), the same length-prefix + CRC discipline the WAL uses for
//  its records. A frame whose CRC mismatches, whose length prefix exceeds
//  kMaxFramePayload, or whose payload is torn yields a typed error — never
//  undefined behavior — and poisons the stream (there is no resync; the
//  connection must be dropped).
//
//  *Message layer* — the payload is one type byte followed by the message
//  body. The protocol is versioned by kProtocolVersion, negotiated in
//  hello/hello-ack; a server refuses a client speaking a different version.
//
// Messages (client → server unless noted):
//   kHello / kHelloAck(s→c)  version handshake; ack carries the session id
//   kRegister                ingest one continuous query + subscribe to it
//   kCancel                  unsubscribe a query id
//   kSubscribe               widen the subscription set ({all} or query ids);
//                            acked with a kSnapshot of the session's cursor
//                            state, so subscribing is synchronous
//   kUpdateBatch             one tick batch {time, evaluate, objects, queries}
//   kTick                    evaluate-only heartbeat (empty batch)
//   kTickAck(s→c)            round summary for the session that drove it
//   kDelta(s→c)              per-session ResultDelta push (the results API)
//   kSnapshot(s→c)           full-set fallback (slow-consumer coalescing)
//   kError(s→c)              StatusCode + message; fatal errors close
//   kBye                     clean client disconnect
//   kShutdown                stop the server (loopback tooling/CI)

#ifndef SCUBA_SERVE_PROTOCOL_H_
#define SCUBA_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/serializer.h"
#include "common/status.h"
#include "core/result_delta.h"
#include "gen/update.h"

namespace scuba::serve {

/// Bumped on any incompatible frame/message change. v1: initial protocol.
inline constexpr uint32_t kProtocolVersion = 1;

/// Frame header: u32 payload length + u32 CRC32 of the payload.
inline constexpr size_t kFrameHeaderBytes = 2 * sizeof(uint32_t);

/// Upper bound on a single frame's payload. Large enough for a full-result
/// snapshot of millions of matches; small enough that a hostile length prefix
/// cannot drive an allocation bomb.
inline constexpr uint32_t kMaxFramePayload = 8u << 20;

enum class MessageType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kRegister = 3,
  kCancel = 4,
  kSubscribe = 5,
  kUpdateBatch = 6,
  kTick = 7,
  kTickAck = 8,
  kDelta = 9,
  kSnapshot = 10,
  kError = 11,
  kBye = 12,
  kShutdown = 13,
};

/// Stable lowercase name, "unknown" for unmapped values.
std::string_view MessageTypeName(MessageType type);

// ---------------------------------------------------------------------------
// Frame layer

/// Wraps `payload` in the length + CRC header. kResourceExhausted when the
/// payload exceeds kMaxFramePayload: the peer's FrameDecoder would reject the
/// length prefix and poison its stream, so such a frame must never be sent
/// (senders degrade — the server disconnects the session with a typed error).
Result<std::string> EncodeFrame(std::string_view payload);

/// Incremental frame reassembly over an arbitrary byte stream (reads from a
/// socket arrive torn at any boundary). Feed bytes in, pull frames out. Any
/// decode error (oversized length prefix, CRC mismatch) is sticky: the stream
/// cannot be resynchronized, so every later Next() repeats the error.
class FrameDecoder {
 public:
  void Append(std::string_view bytes);

  /// True + fills `payload` when a complete, CRC-verified frame is buffered;
  /// false when more bytes are needed. kCorruption on a CRC mismatch,
  /// kResourceExhausted on a length prefix beyond kMaxFramePayload.
  Result<bool> Next(std::string* payload);

  size_t buffered_bytes() const { return buf_.size(); }
  bool poisoned() const { return !error_.ok(); }

 private:
  std::string buf_;
  Status error_ = Status::OK();
};

// ---------------------------------------------------------------------------
// Message layer

struct HelloMsg {
  uint32_t version = kProtocolVersion;
  std::string client_name;
};

struct HelloAckMsg {
  uint32_t version = kProtocolVersion;
  std::string server_name;
  uint32_t session_id = 0;
};

struct RegisterMsg {
  QueryUpdate query;
};

struct CancelMsg {
  QueryId qid = 0;
};

struct SubscribeMsg {
  bool all = false;  ///< Subscribe to every query (monitoring consumers).
  std::vector<QueryId> qids;
};

struct UpdateBatchMsg {
  Timestamp time = 0;
  /// Evaluate after ingesting this batch (the client owns round pacing, so a
  /// replayed trace evaluates at exactly the offline ReplayTrace boundaries).
  bool evaluate = false;
  std::vector<LocationUpdate> objects;
  std::vector<QueryUpdate> queries;
};

struct TickMsg {
  Timestamp time = 0;
};

struct TickAckMsg {
  uint64_t round = 0;
  Timestamp time = 0;
  uint64_t matches = 0;  ///< Global result-set size this round.
  bool degraded = false;
};

/// kDelta's body is exactly ResultDelta::Save — no extra wrapper.

/// Full-set push: the subscribe ack (the session's cursor state, the
/// client's fold base) or a slow-consumer coalescing replacement.
struct SnapshotMsg {
  uint64_t round = 0;
  Timestamp time = 0;
  bool coalesced = false;  ///< True when replacing dropped delta frames.
  std::vector<uint32_t> degraded_shards;
  std::vector<Match> matches;  ///< Ascending, duplicate-free.
};

struct ErrorMsg {
  uint32_t code = 0;  ///< StatusCode numeric value.
  std::string message;
  bool fatal = false;  ///< Server closes the session after a fatal error.
};

// kBye / kShutdown have empty bodies.

/// The type byte of a decoded payload. kDataLoss on an empty payload,
/// kUnimplemented on a value outside the known range.
Result<MessageType> PeekType(std::string_view payload);

/// Each Encode* returns the message *payload* (type byte + body); wrap with
/// EncodeFrame before writing to a socket. Each Decode* verifies the type
/// byte, decodes the body, and rejects trailing bytes as kCorruption.
std::string EncodeHello(const HelloMsg& msg);
Status DecodeHello(std::string_view payload, HelloMsg* msg);
std::string EncodeHelloAck(const HelloAckMsg& msg);
Status DecodeHelloAck(std::string_view payload, HelloAckMsg* msg);
std::string EncodeRegister(const RegisterMsg& msg);
Status DecodeRegister(std::string_view payload, RegisterMsg* msg);
std::string EncodeCancel(const CancelMsg& msg);
Status DecodeCancel(std::string_view payload, CancelMsg* msg);
std::string EncodeSubscribe(const SubscribeMsg& msg);
Status DecodeSubscribe(std::string_view payload, SubscribeMsg* msg);
std::string EncodeUpdateBatch(const UpdateBatchMsg& msg);
Status DecodeUpdateBatch(std::string_view payload, UpdateBatchMsg* msg);
std::string EncodeTick(const TickMsg& msg);
Status DecodeTick(std::string_view payload, TickMsg* msg);
std::string EncodeTickAck(const TickAckMsg& msg);
Status DecodeTickAck(std::string_view payload, TickAckMsg* msg);
std::string EncodeDelta(const ResultDelta& delta);
Status DecodeDelta(std::string_view payload, ResultDelta* delta);
std::string EncodeSnapshot(const SnapshotMsg& msg);
Status DecodeSnapshot(std::string_view payload, SnapshotMsg* msg);
std::string EncodeError(const ErrorMsg& msg);
Status DecodeError(std::string_view payload, ErrorMsg* msg);
std::string EncodeBye();
std::string EncodeShutdown();

}  // namespace scuba::serve

#endif  // SCUBA_SERVE_PROTOCOL_H_
