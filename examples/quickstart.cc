// Quickstart: the SCUBA public API in ~60 lines.
//
// Builds a tiny road network, streams a handful of moving-object and
// moving-query updates into a ScubaEngine, evaluates once, and prints the
// matches. Run:  ./quickstart

#include <cstdio>

#include "core/scuba_engine.h"

using namespace scuba;  // Example code only; library code never does this.

int main() {
  // 1. Configure the engine: data space, clustering thresholds, period.
  ScubaOptions options;
  options.region = Rect{0, 0, 1000, 1000};
  options.theta_d = 100.0;  // members join a cluster within 100 units
  options.theta_s = 10.0;   // ... and within 10 units/tick of its speed
  options.delta = 2;        // evaluate every 2 ticks

  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(options);
  if (!engine.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  ScubaEngine& scuba = **engine;

  // 2. Stream location updates. Three cars and a monitoring query drive
  //    east on the same road (shared destination node 7) — they form one
  //    moving cluster. A fourth car heads elsewhere.
  auto car = [](ObjectId oid, double x, double y, NodeId dest) {
    LocationUpdate u;
    u.oid = oid;
    u.position = Point{x, y};
    u.time = 1;
    u.speed = 12.0;
    u.dest_node = dest;
    u.dest_position = Point{900, 500};
    return u;
  };
  QueryUpdate patrol;  // "which cars are within my 80x80 window?"
  patrol.qid = 1;
  patrol.position = Point{510, 500};
  patrol.time = 1;
  patrol.speed = 12.0;
  patrol.dest_node = 7;
  patrol.dest_position = Point{900, 500};
  patrol.range_width = 80.0;
  patrol.range_height = 80.0;

  (void)scuba.IngestObjectUpdate(car(101, 500, 500, 7));
  (void)scuba.IngestObjectUpdate(car(102, 530, 505, 7));
  (void)scuba.IngestObjectUpdate(car(103, 620, 500, 7));  // outside the window
  (void)scuba.IngestObjectUpdate(car(104, 100, 100, 3));  // different cluster
  (void)scuba.IngestQueryUpdate(patrol);

  std::printf("moving clusters formed: %zu\n", scuba.ClusterCount());

  // 3. Evaluate the continuous queries.
  ResultSet results;
  Status s = scuba.Evaluate(/*now=*/2, &results);
  if (!s.ok()) {
    std::fprintf(stderr, "evaluate failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("matches (%zu):\n", results.size());
  for (const Match& m : results.matches()) {
    std::printf("  query %u sees object %u\n", m.qid, m.oid);
  }

  // 4. Engine statistics.
  const EvalStats stats = scuba.StatsSnapshot().eval;
  std::printf("cluster pairs tested=%llu overlapping=%llu comparisons=%llu\n",
              static_cast<unsigned long long>(stats.cluster_pairs_tested),
              static_cast<unsigned long long>(stats.cluster_pairs_overlapping),
              static_cast<unsigned long long>(stats.comparisons));
  return 0;
}
