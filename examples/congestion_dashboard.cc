// Congestion dashboard: aggregate queries + incremental result deltas.
//
// Combines two SCUBA extensions: per-district vehicle counts answered from
// cluster summaries alone (paper §1: "clusters themselves serve as
// summaries"), and incremental match deltas between rounds (paper §8 future
// work). The dashboard prints, each evaluation round, the estimated vs exact
// vehicles per city quadrant and the churn (entering/leaving matches) of the
// continuous range queries.
//
// Run:  ./congestion_dashboard [ticks]

#include <cstdio>
#include <cstdlib>

#include "core/aggregate.h"
#include "core/result_delta.h"
#include "core/scuba_engine.h"
#include "eval/experiment.h"
#include "gen/workload_generator.h"
#include "network/grid_city.h"
#include "stream/pipeline.h"

using namespace scuba;  // Example code only.

int main(int argc, char** argv) {
  int ticks = argc > 1 ? std::atoi(argv[1]) : 16;

  RoadNetwork city = DefaultBenchmarkCity(42);
  WorkloadOptions workload;
  workload.num_objects = 4000;
  workload.num_queries = 800;
  workload.skew = 40;
  workload.seed = 42;
  workload.speed_jitter = 0.08;  // convoys slowly stretch -> splits trigger
  Result<ObjectSimulator> sim = GenerateWorkload(&city, workload);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    return 1;
  }
  ObjectSimulator simulator = std::move(sim).value();

  ScubaOptions options;
  options.region = DataRegion(city);
  options.enable_cluster_splitting = true;  // keep summaries tight
  options.split_radius_factor = 0.6;        // split past 60 units
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  // The four city quadrants as aggregate districts.
  const Rect& box = city.BoundingBox();
  Point mid = box.Center();
  const Rect districts[4] = {
      {box.min_x, box.min_y, mid.x, mid.y},  // SW
      {mid.x, box.min_y, box.max_x, mid.y},  // SE
      {box.min_x, mid.y, mid.x, box.max_y},  // NW
      {mid.x, mid.y, box.max_x, box.max_y},  // NE
  };
  const char* names[4] = {"SW", "SE", "NW", "NE"};

  Result<StreamPipeline> pipeline =
      StreamPipeline::Create(&simulator, engine->get(), options.delta);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }

  IncrementalResultTracker tracker;
  std::printf("%6s | %-37s | %-22s\n", "tick",
              "district vehicles (estimate/exact)", "match churn");
  Status run = pipeline->RunTicks(ticks, [&](Timestamp now, const ResultSet& r) {
    std::printf("%6lld |", static_cast<long long>(now));
    for (int d = 0; d < 4; ++d) {
      Result<double> est = EstimateObjectCount(
          (*engine)->store(), (*engine)->cluster_grid(), districts[d]);
      Result<size_t> exact = ExactObjectCount(
          (*engine)->store(), (*engine)->cluster_grid(), districts[d]);
      if (!est.ok() || !exact.ok()) {
        std::fprintf(stderr, "aggregate failed\n");
        return;
      }
      std::printf(" %s %4.0f/%-4zu", names[d], *est, *exact);
    }
    ResultDelta delta = tracker.Observe(r);
    std::printf(" | +%zu -%zu (total %zu)\n", delta.added.size(),
                delta.removed.size(), r.size());
  });
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.ToString().c_str());
    return 1;
  }

  std::printf("\nclusters: %zu (split %llu times to keep summaries tight)\n",
              (*engine)->ClusterCount(),
              static_cast<unsigned long long>(
                  (*engine)->StatsSnapshot().phase.clusters_split));
  return 0;
}
