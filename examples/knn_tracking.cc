// Nearest-neighbour tracking: the cluster-based kNN extension.
//
// The paper (§1) sketches how moving clusters answer kNN queries. This
// example simulates city traffic, then asks "which k vehicles are nearest to
// this incident?" at several points, comparing the cluster-grid-pruned search
// against a brute-force scan.
//
// Run:  ./knn_tracking [k]

#include <cstdio>
#include <cstdlib>

#include "core/knn.h"
#include "core/scuba_engine.h"
#include "eval/experiment.h"
#include "gen/workload_generator.h"
#include "network/grid_city.h"
#include "stream/pipeline.h"

using namespace scuba;  // Example code only.

int main(int argc, char** argv) {
  size_t k = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 5;

  RoadNetwork city = DefaultBenchmarkCity(7);
  WorkloadOptions workload;
  workload.num_objects = 3000;
  workload.num_queries = 100;
  workload.skew = 40;
  workload.seed = 7;
  Result<ObjectSimulator> sim = GenerateWorkload(&city, workload);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    return 1;
  }
  ObjectSimulator simulator = std::move(sim).value();

  ScubaOptions options;
  options.region = DataRegion(city);
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  // Warm the engine with a few ticks of traffic.
  Result<StreamPipeline> pipeline =
      StreamPipeline::Create(&simulator, engine->get(), options.delta);
  if (!pipeline.ok() || !pipeline->RunTicks(6).ok()) {
    std::fprintf(stderr, "pipeline failed\n");
    return 1;
  }
  std::printf("traffic state: %zu vehicles in %zu moving clusters\n\n",
              simulator.EntityCount(), (*engine)->ClusterCount());

  const Point incidents[] = {
      {2500, 2500}, {5000, 5000}, {7500, 2500}, {1000, 9000}};
  for (const Point& incident : incidents) {
    Result<std::vector<KnnNeighbor>> fast =
        ClusterKnn((*engine)->store(), (*engine)->cluster_grid(), incident, k);
    Result<std::vector<KnnNeighbor>> slow =
        BruteForceKnn((*engine)->store(), incident, k);
    if (!fast.ok() || !slow.ok()) {
      std::fprintf(stderr, "knn failed\n");
      return 1;
    }
    std::printf("incident at (%.0f, %.0f): %zu nearest vehicles\n", incident.x,
                incident.y, fast->size());
    for (size_t i = 0; i < fast->size(); ++i) {
      std::printf("  #%zu vehicle %u at distance %.1f\n", i + 1, (*fast)[i].oid,
                  (*fast)[i].distance);
    }
    bool agree = *fast == *slow;
    std::printf("  cluster-pruned search %s the brute-force oracle\n\n",
                agree ? "matches" : "DIVERGES FROM");
    if (!agree) return 1;
  }
  return 0;
}
