// Traffic monitoring: a city-scale continuous-query deployment.
//
// Simulates a synthetic city with thousands of vehicles (the paper's intro
// scenario: traffic jams naturally cluster), registers moving range queries
// (patrol cars monitoring their surroundings), wires everything through the
// stream pipeline, and reports per-round answers plus engine internals.
//
// Run:  ./traffic_monitoring [vehicles] [patrols] [ticks]

#include <cstdio>
#include <cstdlib>

#include "common/memory_usage.h"
#include "core/scuba_engine.h"
#include "eval/engine_stats.h"
#include "eval/experiment.h"
#include "gen/workload_generator.h"
#include "network/grid_city.h"
#include "stream/pipeline.h"

using namespace scuba;  // Example code only.

int main(int argc, char** argv) {
  uint32_t vehicles = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 4000;
  uint32_t patrols = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 1000;
  int ticks = argc > 3 ? std::atoi(argv[3]) : 20;

  // A 21x21-node city with arterials and highways (the Worcester stand-in).
  RoadNetwork city = DefaultBenchmarkCity();
  std::printf("city: %zu connection nodes, %zu road segments, area %s x %s\n",
              city.NodeCount(), city.EdgeCount(),
              std::to_string(static_cast<int>(city.BoundingBox().Width())).c_str(),
              std::to_string(static_cast<int>(city.BoundingBox().Height())).c_str());

  // Vehicles travel in convoys of ~50 (rush-hour clusterability); a quarter
  // of convoys carry monitoring queries.
  WorkloadOptions workload;
  workload.num_objects = vehicles;
  workload.num_queries = patrols;
  workload.skew = 50;
  workload.seed = 2026;
  Result<ObjectSimulator> sim = GenerateWorkload(&city, workload);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    return 1;
  }
  ObjectSimulator simulator = std::move(sim).value();

  ScubaOptions options;
  options.region = DataRegion(city);
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  Result<StreamPipeline> pipeline =
      StreamPipeline::Create(&simulator, engine->get(), options.delta);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%6s %10s %10s %12s %12s\n", "tick", "matches", "clusters",
              "join(ms)", "maint(ms)");
  Status run = pipeline->RunTicks(ticks, [&](Timestamp now, const ResultSet& r) {
    const EvalStats stats = (*engine)->StatsSnapshot().eval;
    std::printf("%6lld %10zu %10zu %12.3f %12.3f\n",
                static_cast<long long>(now), r.size(), (*engine)->ClusterCount(),
                stats.last_join_seconds * 1e3,
                stats.last_maintenance_seconds * 1e3);
  });
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.ToString().c_str());
    return 1;
  }

  const EngineSnapshotStats snapshot = (*engine)->StatsSnapshot();
  std::printf("\n%s\n", snapshot.Format("scuba").c_str());
  std::printf("join-between selectivity: %.1f%% of tested cluster pairs "
              "overlapped\n",
              100.0 * snapshot.JoinBetweenSelectivity());
  std::printf("engine memory: %s\n",
              FormatBytes((*engine)->EstimateMemoryUsage()).c_str());
  const ClustererStats& cs = snapshot.clusterer;
  std::printf("clustering: %llu created, %llu absorbed, %llu refreshed, "
              "%llu departures\n",
              static_cast<unsigned long long>(cs.clusters_created),
              static_cast<unsigned long long>(cs.members_absorbed),
              static_cast<unsigned long long>(cs.members_refreshed),
              static_cast<unsigned long long>(cs.members_departed));
  return 0;
}
