// Fleet geofencing under memory pressure: adaptive load shedding.
//
// A delivery fleet streams updates while dispatch queries monitor moving
// geofences. The engine runs under a deliberately tight memory budget, so the
// adaptive load shedder kicks in (paper §5): member positions collapse into
// cluster nuclei, memory stays bounded, answers degrade gracefully. A naive
// oracle engine runs alongside to quantify the accuracy actually paid.
//
// Run:  ./fleet_geofencing [budget_kb]

#include <cstdio>
#include <cstdlib>

#include "baseline/naive_join_engine.h"
#include "common/memory_usage.h"
#include "core/scuba_engine.h"
#include "eval/accuracy.h"
#include "eval/experiment.h"
#include "gen/trace.h"
#include "gen/workload_generator.h"
#include "network/grid_city.h"
#include "stream/pipeline.h"

using namespace scuba;  // Example code only.

int main(int argc, char** argv) {
  size_t budget_kb = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 700;

  RoadNetwork city = DefaultBenchmarkCity(99);
  WorkloadOptions workload;
  workload.num_objects = 3000;   // delivery vans
  workload.num_queries = 600;    // dispatch geofences
  workload.skew = 30;
  workload.seed = 99;
  Result<ObjectSimulator> sim = GenerateWorkload(&city, workload);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    return 1;
  }
  ObjectSimulator simulator = std::move(sim).value();
  Trace trace = RecordTrace(&simulator, /*ticks=*/24);

  ScubaOptions options;
  options.region = DataRegion(city);
  options.shedding.mode = LoadSheddingMode::kAdaptive;
  options.shedding.memory_budget_bytes = budget_kb * 1024;
  options.shedding.eta_step = 0.25;
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  // Oracle for accuracy accounting.
  NaiveJoinEngine oracle;
  std::vector<ResultSet> truth;
  (void)ReplayTrace(trace, &oracle, options.delta,
                    [&](Timestamp, const ResultSet& r) { truth.push_back(r); });

  std::printf("memory budget: %zu KB\n\n", budget_kb);
  std::printf("%6s %10s %10s %8s %14s %10s\n", "tick", "matches", "accuracy",
              "eta", "memory", "shed");
  size_t round = 0;
  AccuracyAccumulator acc;
  Status run = ReplayTrace(
      trace, engine->get(), options.delta,
      [&](Timestamp now, const ResultSet& r) {
        AccuracyReport rep = CompareResults(truth[round], r);
        acc.Add(rep);
        ++round;
        uint64_t shed = (*engine)->StatsSnapshot().clusterer.members_shed +
                        (*engine)->StatsSnapshot().phase.members_shed_maintenance;
        std::printf("%6lld %10zu %10.3f %8.2f %14s %10llu\n",
                    static_cast<long long>(now), r.size(), rep.Accuracy(),
                    (*engine)->shedder().eta(),
                    FormatBytes((*engine)->EstimateMemoryUsage()).c_str(),
                    static_cast<unsigned long long>(shed));
      });
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.ToString().c_str());
    return 1;
  }

  std::printf("\noverall: %s\n", acc.total().ToString().c_str());
  std::printf("shedder adjusted eta %llu times; final eta %.2f\n",
              static_cast<unsigned long long>((*engine)->shedder().adjustments()),
              (*engine)->shedder().eta());
  std::printf("tip: raise the budget (e.g. './fleet_geofencing 4000') and "
              "accuracy returns to 1.0\n");
  return 0;
}
