// UpdateValidator coverage: every RejectReason fires with its counter,
// StatusCode tag and dead-letter entry; the three policies (strict /
// quarantine / repair) behave per contract; batch screening preserves the
// relative order of admitted tuples.

#include "stream/update_validator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace scuba {
namespace {

LocationUpdate Obj(uint32_t oid, Timestamp time = 5) {
  LocationUpdate u;
  u.oid = oid;
  u.position = Point{100.0, 100.0};
  u.time = time;
  u.speed = 10.0;
  u.dest_node = 3;
  u.dest_position = Point{900.0, 900.0};
  return u;
}

QueryUpdate Qry(uint32_t qid, Timestamp time = 5) {
  QueryUpdate u;
  u.qid = qid;
  u.position = Point{200.0, 200.0};
  u.time = time;
  u.speed = 10.0;
  u.dest_node = 3;
  u.dest_position = Point{900.0, 900.0};
  u.range_width = 50.0;
  u.range_height = 50.0;
  return u;
}

ValidatorConfig Config(BadUpdatePolicy policy) {
  ValidatorConfig config;
  config.policy = policy;
  config.bounds = Rect{0.0, 0.0, 1000.0, 1000.0};
  config.check_bounds = true;
  config.node_count = 10;
  return config;
}

Status ScreenOne(UpdateValidator* v, LocationUpdate u,
                 Timestamp batch_time = 5) {
  std::vector<LocationUpdate> objects{u};
  std::vector<QueryUpdate> queries;
  return v->ScreenBatch(batch_time, &objects, &queries);
}

TEST(RejectReasonTest, NamesAndCodesAreDistinctive) {
  for (size_t i = 0; i < kRejectReasonCount; ++i) {
    const RejectReason r = static_cast<RejectReason>(i);
    EXPECT_NE(RejectReasonName(r), "unknown");
  }
  EXPECT_EQ(RejectReasonStatusCode(RejectReason::kOffMap),
            StatusCode::kOutOfRange);
  EXPECT_EQ(RejectReasonStatusCode(RejectReason::kDuplicateInBatch),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(RejectReasonStatusCode(RejectReason::kTimeRegression),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(RejectReasonStatusCode(RejectReason::kUnknownDestNode),
            StatusCode::kNotFound);
  EXPECT_EQ(RejectReasonStatusCode(RejectReason::kNonFinite),
            StatusCode::kInvalidArgument);
}

struct FaultCase {
  const char* name;
  RejectReason reason;
  StatusCode code;
  LocationUpdate tuple;
};

std::vector<FaultCase> ObjectFaultCases() {
  std::vector<FaultCase> cases;
  LocationUpdate u = Obj(1);
  u.position.x = std::numeric_limits<double>::quiet_NaN();
  cases.push_back({"nan-position", RejectReason::kNonFinite,
                   StatusCode::kInvalidArgument, u});
  u = Obj(1);
  u.speed = -4.0;
  cases.push_back(
      {"negative-speed", RejectReason::kBadSpeed, StatusCode::kInvalidArgument, u});
  u = Obj(1);
  u.time = -7;
  cases.push_back({"negative-time", RejectReason::kNegativeTime,
                   StatusCode::kInvalidArgument, u});
  u = Obj(1, /*time=*/2);  // behind the batch-time floor of 5
  cases.push_back({"stale-time", RejectReason::kTimeRegression,
                   StatusCode::kFailedPrecondition, u});
  u = Obj(1);
  u.dest_node = kInvalidNodeId;
  cases.push_back({"missing-dest", RejectReason::kUnknownDestNode,
                   StatusCode::kNotFound, u});
  u = Obj(1);
  u.dest_node = 99;  // >= node_count of 10
  cases.push_back({"out-of-network-dest", RejectReason::kUnknownDestNode,
                   StatusCode::kNotFound, u});
  u = Obj(1);
  u.position = Point{5000.0, 5000.0};
  cases.push_back(
      {"off-map", RejectReason::kOffMap, StatusCode::kOutOfRange, u});
  return cases;
}

TEST(UpdateValidatorTest, StrictFailsWithTaggedCodePerFaultClass) {
  for (const FaultCase& c : ObjectFaultCases()) {
    UpdateValidator v(Config(BadUpdatePolicy::kStrict));
    Status s = ScreenOne(&v, c.tuple);
    EXPECT_FALSE(s.ok()) << c.name;
    EXPECT_EQ(s.code(), c.code) << c.name;
    EXPECT_EQ(v.stats().Rejected(c.reason), 1u) << c.name;
    EXPECT_EQ(v.stats().TotalRejected(), 1u) << c.name;
    EXPECT_EQ(v.quarantine().total(), 1u) << c.name;
    ASSERT_EQ(v.quarantine().Snapshot().size(), 1u) << c.name;
    EXPECT_EQ(v.quarantine().Snapshot()[0].reason, c.reason) << c.name;
  }
}

TEST(UpdateValidatorTest, QuarantineDropsCountsAndSucceeds) {
  for (const FaultCase& c : ObjectFaultCases()) {
    UpdateValidator v(Config(BadUpdatePolicy::kQuarantine));
    std::vector<LocationUpdate> objects{Obj(7), c.tuple, Obj(8)};
    std::vector<QueryUpdate> queries;
    ASSERT_TRUE(v.ScreenBatch(5, &objects, &queries).ok()) << c.name;
    ASSERT_EQ(objects.size(), 2u) << c.name;
    EXPECT_EQ(objects[0].oid, 7u) << c.name;
    EXPECT_EQ(objects[1].oid, 8u) << c.name;
    EXPECT_EQ(v.stats().Rejected(c.reason), 1u) << c.name;
    EXPECT_EQ(v.stats().admitted, 2u) << c.name;
    EXPECT_EQ(v.stats().screened, 3u) << c.name;
  }
}

TEST(UpdateValidatorTest, DuplicateInBatchRejectsSecondOccurrence) {
  UpdateValidator v(Config(BadUpdatePolicy::kQuarantine));
  std::vector<LocationUpdate> objects{Obj(1), Obj(2), Obj(1)};
  std::vector<QueryUpdate> queries{Qry(1)};  // same id, different kind: fine
  ASSERT_TRUE(v.ScreenBatch(5, &objects, &queries).ok());
  EXPECT_EQ(objects.size(), 2u);
  EXPECT_EQ(queries.size(), 1u);
  EXPECT_EQ(v.stats().Rejected(RejectReason::kDuplicateInBatch), 1u);

  // A new batch resets the duplicate window; the same entity is admitted.
  std::vector<LocationUpdate> next{Obj(1, /*time=*/6)};
  std::vector<QueryUpdate> none;
  ASSERT_TRUE(v.ScreenBatch(6, &next, &none).ok());
  EXPECT_EQ(next.size(), 1u);
}

TEST(UpdateValidatorTest, PerEntityRegressionPersistsAcrossBatches) {
  ValidatorConfig config = Config(BadUpdatePolicy::kQuarantine);
  UpdateValidator v(config);
  ASSERT_TRUE(ScreenOne(&v, Obj(1, 9), /*batch_time=*/kNoBatchTime).ok());
  EXPECT_EQ(v.stats().admitted, 1u);
  // Later batch, earlier per-entity stamp: rejected even with no floor.
  Status s = ScreenOne(&v, Obj(1, 4), /*batch_time=*/kNoBatchTime);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(v.stats().Rejected(RejectReason::kTimeRegression), 1u);
  // A first-seen entity with an old stamp needs the batch floor to be caught.
  ASSERT_TRUE(ScreenOne(&v, Obj(2, 1), /*batch_time=*/kNoBatchTime).ok());
  EXPECT_EQ(v.stats().admitted, 2u);
  ASSERT_TRUE(ScreenOne(&v, Obj(3, 1), /*batch_time=*/8).ok());
  EXPECT_EQ(v.stats().Rejected(RejectReason::kTimeRegression), 2u);
}

TEST(UpdateValidatorTest, RepairClampsAndAdmits) {
  UpdateValidator v(Config(BadUpdatePolicy::kRepair));
  LocationUpdate bad_speed = Obj(1);
  bad_speed.speed = -3.0;
  LocationUpdate off_map = Obj(2);
  off_map.position = Point{5000.0, -20.0};
  LocationUpdate stale = Obj(3, /*time=*/1);
  LocationUpdate negative_time = Obj(4);
  negative_time.time = -9;
  std::vector<LocationUpdate> objects{bad_speed, off_map, stale, negative_time};
  std::vector<QueryUpdate> queries;
  ASSERT_TRUE(v.ScreenBatch(5, &objects, &queries).ok());
  ASSERT_EQ(objects.size(), 4u);
  EXPECT_EQ(objects[0].speed, 0.0);
  EXPECT_EQ(objects[1].position.x, 1000.0);
  EXPECT_EQ(objects[1].position.y, 0.0);
  EXPECT_EQ(objects[2].time, 5);
  EXPECT_EQ(objects[3].time, 5);
  EXPECT_EQ(v.stats().repaired, 4u);
  EXPECT_EQ(v.stats().admitted, 4u);
  EXPECT_EQ(v.stats().TotalRejected(), 0u);
}

TEST(UpdateValidatorTest, RepairNeverFabricatesRangesOrCoordinates) {
  UpdateValidator v(Config(BadUpdatePolicy::kRepair));
  QueryUpdate zero_range = Qry(1);
  zero_range.range_width = 0.0;
  QueryUpdate nan_pos = Qry(2);
  nan_pos.position.y = std::numeric_limits<double>::quiet_NaN();
  std::vector<LocationUpdate> objects;
  std::vector<QueryUpdate> queries{zero_range, nan_pos};
  ASSERT_TRUE(v.ScreenBatch(5, &objects, &queries).ok());
  EXPECT_TRUE(queries.empty());
  EXPECT_EQ(v.stats().Rejected(RejectReason::kBadRange), 1u);
  EXPECT_EQ(v.stats().Rejected(RejectReason::kNonFinite), 1u);
  EXPECT_EQ(v.stats().repaired, 0u);
}

TEST(UpdateValidatorTest, ZeroIdRejectedOnlyWhenConfigured) {
  ValidatorConfig config = Config(BadUpdatePolicy::kQuarantine);
  UpdateValidator lax(config);
  ASSERT_TRUE(ScreenOne(&lax, Obj(0)).ok());
  EXPECT_EQ(lax.stats().admitted, 1u);

  config.reject_zero_ids = true;
  UpdateValidator picky(config);
  ASSERT_TRUE(ScreenOne(&picky, Obj(0)).ok());
  EXPECT_EQ(picky.stats().Rejected(RejectReason::kZeroId), 1u);
}

TEST(UpdateValidatorTest, BoundsAndNodeChecksAreOptIn) {
  ValidatorConfig config;  // defaults: no bounds, node_count 0
  config.policy = BadUpdatePolicy::kQuarantine;
  UpdateValidator v(config);
  LocationUpdate far = Obj(1);
  far.position = Point{1e9, -1e9};
  LocationUpdate big_dest = Obj(2);
  big_dest.dest_node = 123456;
  std::vector<LocationUpdate> objects{far, big_dest};
  std::vector<QueryUpdate> queries;
  ASSERT_TRUE(v.ScreenBatch(5, &objects, &queries).ok());
  EXPECT_EQ(objects.size(), 2u);  // both admitted: checks disarmed
  // The kInvalidNodeId sentinel is rejected regardless.
  LocationUpdate no_dest = Obj(3);
  no_dest.dest_node = kInvalidNodeId;
  ASSERT_TRUE(ScreenOne(&v, no_dest).ok());
  EXPECT_EQ(v.stats().Rejected(RejectReason::kUnknownDestNode), 1u);
}

TEST(QuarantineLogTest, RingOverwritesOldestAndKeepsTotal) {
  QuarantineLog log(3);
  for (uint32_t i = 0; i < 5; ++i) {
    log.Push(QuarantinedUpdate{EntityKind::kObject, i, 0,
                               RejectReason::kNonFinite, ""});
  }
  EXPECT_EQ(log.total(), 5u);
  EXPECT_EQ(log.size(), 3u);
  std::vector<QuarantinedUpdate> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].id, 2u);  // oldest retained
  EXPECT_EQ(entries[1].id, 3u);
  EXPECT_EQ(entries[2].id, 4u);
  log.Clear();
  EXPECT_EQ(log.total(), 0u);
  EXPECT_EQ(log.size(), 0u);
}

TEST(UpdateValidatorTest, FormatStatsNamesNonzeroReasons) {
  UpdateValidator v(Config(BadUpdatePolicy::kQuarantine));
  LocationUpdate bad = Obj(1);
  bad.speed = -1.0;
  ASSERT_TRUE(ScreenOne(&v, bad).ok());
  const std::string text = v.FormatStats();
  EXPECT_NE(text.find("bad-speed=1"), std::string::npos) << text;
  EXPECT_EQ(text.find("off-map"), std::string::npos) << text;
}

TEST(UpdateValidatorTest, ResetForgetsHistory) {
  UpdateValidator v(Config(BadUpdatePolicy::kQuarantine));
  ASSERT_TRUE(ScreenOne(&v, Obj(1, 9)).ok());
  v.Reset();
  EXPECT_EQ(v.stats().screened, 0u);
  EXPECT_EQ(v.quarantine().total(), 0u);
  // Per-entity history gone: an older stamp no longer regresses.
  ASSERT_TRUE(ScreenOne(&v, Obj(1, 4), /*batch_time=*/kNoBatchTime).ok());
  EXPECT_EQ(v.stats().admitted, 1u);
}

TEST(UpdateValidatorTest, PolicyNamesRoundTrip) {
  for (BadUpdatePolicy p :
       {BadUpdatePolicy::kStrict, BadUpdatePolicy::kQuarantine,
        BadUpdatePolicy::kRepair}) {
    Result<BadUpdatePolicy> parsed =
        ParseBadUpdatePolicy(BadUpdatePolicyName(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_TRUE(ParseBadUpdatePolicy("lenient").status().IsInvalidArgument());
}

}  // namespace
}  // namespace scuba
