// Wire-protocol robustness for the serving front-end (src/serve/protocol.h).
//
// The decoding surface faces arbitrary bytes from a socket; the contract is
// typed errors, never undefined behavior: torn frames wait, CRC mismatches
// and trailing bytes are kCorruption, hostile length prefixes are
// kResourceExhausted, unknown message types are kUnimplemented, and every
// truncation of every message body is a clean decode failure. CI runs this
// binary under ASan, so "no UB" is enforced, not assumed.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"

namespace scuba::serve {
namespace {

UpdateBatchMsg SampleBatch() {
  UpdateBatchMsg msg;
  msg.time = 42;
  msg.evaluate = true;
  LocationUpdate obj;
  obj.oid = 7;
  obj.position = {12.5, -3.25};
  obj.time = 42;
  obj.speed = 1.5;
  obj.dest_node = 99;
  obj.dest_position = {100.0, 200.0};
  obj.attrs = 0b1010;
  msg.objects.push_back(obj);
  obj.oid = 8;
  obj.position = {-1.0, 0.0};
  msg.objects.push_back(obj);
  QueryUpdate qry;
  qry.qid = 3;
  qry.position = {5.0, 5.0};
  qry.time = 42;
  qry.speed = 0.25;
  qry.dest_node = 4;
  qry.dest_position = {6.0, 7.0};
  qry.range_width = 50.0;
  qry.range_height = 25.0;
  qry.attrs = 1;
  qry.required_attrs = 0b11;
  msg.queries.push_back(qry);
  return msg;
}

TEST(FrameTest, RoundTripsThroughDecoder) {
  const std::string payload = EncodeHello(HelloMsg{kProtocolVersion, "cli"});
  const std::string frame = *EncodeFrame(payload);
  EXPECT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  FrameDecoder decoder;
  decoder.Append(frame);
  std::string out;
  Result<bool> got = decoder.Next(&out);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(*got);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  got = decoder.Next(&out);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(*got);
}

TEST(FrameTest, TornDeliveryReassembles) {
  // Socket reads tear at arbitrary boundaries: feeding one byte at a time
  // must yield exactly the original frames, in order.
  std::string stream = *EncodeFrame(EncodeBye()) +
                       *EncodeFrame(EncodeTick(TickMsg{9})) +
                       *EncodeFrame(EncodeShutdown());
  FrameDecoder decoder;
  std::vector<std::string> frames;
  std::string out;
  for (char c : stream) {
    decoder.Append(std::string_view(&c, 1));
    while (true) {
      Result<bool> got = decoder.Next(&out);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      if (!*got) break;
      frames.push_back(out);
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(*PeekType(frames[0]), MessageType::kBye);
  EXPECT_EQ(*PeekType(frames[1]), MessageType::kTick);
  EXPECT_EQ(*PeekType(frames[2]), MessageType::kShutdown);
}

TEST(FrameTest, IncompleteFrameWaits) {
  const std::string frame = *EncodeFrame(EncodeBye());
  FrameDecoder decoder;
  decoder.Append(std::string_view(frame).substr(0, frame.size() - 1));
  std::string out;
  Result<bool> got = decoder.Next(&out);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(*got);
  EXPECT_FALSE(decoder.poisoned());
  EXPECT_GT(decoder.buffered_bytes(), 0u);
}

TEST(FrameTest, BadCrcIsStickyCorruption) {
  std::string frame = *EncodeFrame(EncodeTick(TickMsg{5}));
  frame.back() ^= 0x40;  // flip a payload bit
  FrameDecoder decoder;
  decoder.Append(frame);
  std::string out;
  Result<bool> got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
  EXPECT_TRUE(decoder.poisoned());
  // No resync: later appends are ignored and the error repeats.
  decoder.Append(*EncodeFrame(EncodeBye()));
  got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
}

TEST(FrameTest, OversizedLengthPrefixIsResourceExhausted) {
  // A hostile length prefix must be rejected from the header alone — no
  // allocation of the claimed size.
  const uint32_t huge = kMaxFramePayload + 1;
  std::string header(kFrameHeaderBytes, '\0');
  std::memcpy(header.data(), &huge, sizeof(huge));
  FrameDecoder decoder;
  decoder.Append(header);
  std::string out;
  Result<bool> got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FrameTest, EncodeFrameEnforcesTheCapOnTheSendSide) {
  // A frame the decoder would reject must be impossible to produce: an
  // oversized payload is refused at encode time with the same typed error,
  // instead of poisoning the peer's stream (or truncating the u32 prefix).
  std::string payload(kMaxFramePayload + 1, 'x');
  Result<std::string> frame = EncodeFrame(payload);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kResourceExhausted);

  // Exactly at the cap still encodes and round-trips.
  payload.resize(64);
  frame = EncodeFrame(payload);
  ASSERT_TRUE(frame.ok());
  FrameDecoder decoder;
  decoder.Append(*frame);
  std::string out;
  Result<bool> got = decoder.Next(&out);
  ASSERT_TRUE(got.ok() && *got);
  EXPECT_EQ(out, payload);
}

TEST(MessageTest, PeekTypeRejectsEmptyAndUnknown) {
  Result<MessageType> type = PeekType("");
  ASSERT_FALSE(type.ok());
  EXPECT_EQ(type.status().code(), StatusCode::kDataLoss);
  const char zero = 0;
  type = PeekType(std::string_view(&zero, 1));
  ASSERT_FALSE(type.ok());
  EXPECT_EQ(type.status().code(), StatusCode::kUnimplemented);
  const char big = 99;
  type = PeekType(std::string_view(&big, 1));
  ASSERT_FALSE(type.ok());
  EXPECT_EQ(type.status().code(), StatusCode::kUnimplemented);
}

TEST(MessageTest, WrongTypeByteIsInvalidArgument) {
  const std::string cancel = EncodeCancel(CancelMsg{12});
  HelloMsg hello;
  Status s = DecodeHello(cancel, &hello);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(MessageTest, TrailingBytesAreCorruption) {
  std::string payload = EncodeCancel(CancelMsg{12});
  payload.push_back('\0');
  CancelMsg msg;
  Status s = DecodeCancel(payload, &msg);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(MessageTest, AllMessagesRoundTrip) {
  {
    HelloMsg in{kProtocolVersion, "bench-client"};
    HelloMsg out;
    ASSERT_TRUE(DecodeHello(EncodeHello(in), &out).ok());
    EXPECT_EQ(out.version, in.version);
    EXPECT_EQ(out.client_name, in.client_name);
  }
  {
    HelloAckMsg in{kProtocolVersion, "srv", 17};
    HelloAckMsg out;
    ASSERT_TRUE(DecodeHelloAck(EncodeHelloAck(in), &out).ok());
    EXPECT_EQ(out.server_name, "srv");
    EXPECT_EQ(out.session_id, 17u);
  }
  {
    RegisterMsg in;
    in.query = SampleBatch().queries[0];
    RegisterMsg out;
    ASSERT_TRUE(DecodeRegister(EncodeRegister(in), &out).ok());
    EXPECT_EQ(out.query.qid, in.query.qid);
    EXPECT_EQ(out.query.range_width, in.query.range_width);
    EXPECT_EQ(out.query.required_attrs, in.query.required_attrs);
    EXPECT_EQ(out.query.dest_node, in.query.dest_node);
  }
  {
    CancelMsg out;
    ASSERT_TRUE(DecodeCancel(EncodeCancel(CancelMsg{8}), &out).ok());
    EXPECT_EQ(out.qid, 8u);
  }
  {
    SubscribeMsg in;
    in.all = false;
    in.qids = {3, 1, 9};
    SubscribeMsg out;
    ASSERT_TRUE(DecodeSubscribe(EncodeSubscribe(in), &out).ok());
    EXPECT_FALSE(out.all);
    EXPECT_EQ(out.qids, in.qids);
  }
  {
    UpdateBatchMsg in = SampleBatch();
    UpdateBatchMsg out;
    ASSERT_TRUE(DecodeUpdateBatch(EncodeUpdateBatch(in), &out).ok());
    EXPECT_EQ(out.time, in.time);
    EXPECT_TRUE(out.evaluate);
    ASSERT_EQ(out.objects.size(), 2u);
    EXPECT_EQ(out.objects[0].oid, 7u);
    EXPECT_EQ(out.objects[0].position.x, 12.5);
    EXPECT_EQ(out.objects[0].attrs, 0b1010u);
    ASSERT_EQ(out.queries.size(), 1u);
    EXPECT_EQ(out.queries[0].range_height, 25.0);
  }
  {
    TickAckMsg in{12, 34, 56, true};
    TickAckMsg out;
    ASSERT_TRUE(DecodeTickAck(EncodeTickAck(in), &out).ok());
    EXPECT_EQ(out.round, 12u);
    EXPECT_EQ(out.time, 34);
    EXPECT_EQ(out.matches, 56u);
    EXPECT_TRUE(out.degraded);
  }
  {
    ResultDelta in;
    in.round = 5;
    in.time = 10;
    in.added = {{1, 2}, {3, 4}};
    in.removed = {{2, 2}};
    in.degraded_shards = {1};
    ResultDelta out;
    ASSERT_TRUE(DecodeDelta(EncodeDelta(in), &out).ok());
    EXPECT_EQ(out, in);
  }
  {
    SnapshotMsg in;
    in.round = 9;
    in.time = 18;
    in.coalesced = true;
    in.degraded_shards = {2, 0};
    in.matches = {{1, 1}, {1, 2}, {4, 1}};
    SnapshotMsg out;
    ASSERT_TRUE(DecodeSnapshot(EncodeSnapshot(in), &out).ok());
    EXPECT_EQ(out.round, 9u);
    EXPECT_TRUE(out.coalesced);
    EXPECT_EQ(out.degraded_shards, in.degraded_shards);
    EXPECT_EQ(out.matches, in.matches);
  }
  {
    ErrorMsg in{7, "boom", true};
    ErrorMsg out;
    ASSERT_TRUE(DecodeError(EncodeError(in), &out).ok());
    EXPECT_EQ(out.code, 7u);
    EXPECT_EQ(out.message, "boom");
    EXPECT_TRUE(out.fatal);
  }
}

TEST(MessageTest, SnapshotRejectsUnorderedMatches) {
  SnapshotMsg in;
  in.matches = {{4, 1}, {1, 1}};  // descending: invalid on the wire
  SnapshotMsg out;
  Status s = DecodeSnapshot(EncodeSnapshot(in), &out);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(MessageTest, EveryTruncationFailsCleanly) {
  // Cutting any encoded message at any byte must yield a typed error —
  // the count-prefixed vector decoders must never read past the end or
  // allocate from an unchecked count.
  std::vector<std::string> payloads = {
      EncodeHello(HelloMsg{kProtocolVersion, "name"}),
      EncodeHelloAck(HelloAckMsg{kProtocolVersion, "srv", 1}),
      EncodeRegister(RegisterMsg{SampleBatch().queries[0]}),
      EncodeCancel(CancelMsg{1}),
      EncodeSubscribe(SubscribeMsg{false, {1, 2, 3}}),
      EncodeUpdateBatch(SampleBatch()),
      EncodeTick(TickMsg{1}),
      EncodeTickAck(TickAckMsg{1, 2, 3, false}),
      EncodeSnapshot(SnapshotMsg{1, 2, false, {0}, {{1, 1}}}),
      EncodeError(ErrorMsg{1, "m", false}),
  };
  {
    ResultDelta d;
    d.round = 1;
    d.added = {{1, 1}};
    payloads.push_back(EncodeDelta(d));
  }
  for (const std::string& payload : payloads) {
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      const std::string_view torn(payload.data(), cut);
      Result<MessageType> type = PeekType(payload);
      ASSERT_TRUE(type.ok());
      Status s;
      switch (*type) {
        case MessageType::kHello: {
          HelloMsg m;
          s = DecodeHello(torn, &m);
          break;
        }
        case MessageType::kHelloAck: {
          HelloAckMsg m;
          s = DecodeHelloAck(torn, &m);
          break;
        }
        case MessageType::kRegister: {
          RegisterMsg m;
          s = DecodeRegister(torn, &m);
          break;
        }
        case MessageType::kCancel: {
          CancelMsg m;
          s = DecodeCancel(torn, &m);
          break;
        }
        case MessageType::kSubscribe: {
          SubscribeMsg m;
          s = DecodeSubscribe(torn, &m);
          break;
        }
        case MessageType::kUpdateBatch: {
          UpdateBatchMsg m;
          s = DecodeUpdateBatch(torn, &m);
          break;
        }
        case MessageType::kTick: {
          TickMsg m;
          s = DecodeTick(torn, &m);
          break;
        }
        case MessageType::kTickAck: {
          TickAckMsg m;
          s = DecodeTickAck(torn, &m);
          break;
        }
        case MessageType::kDelta: {
          ResultDelta m;
          s = DecodeDelta(torn, &m);
          break;
        }
        case MessageType::kSnapshot: {
          SnapshotMsg m;
          s = DecodeSnapshot(torn, &m);
          break;
        }
        case MessageType::kError: {
          ErrorMsg m;
          s = DecodeError(torn, &m);
          break;
        }
        default:
          continue;
      }
      EXPECT_FALSE(s.ok()) << MessageTypeName(*type) << " cut at " << cut;
    }
  }
}

TEST(FuzzTest, RandomBytesNeverMisbehave) {
  // Raw garbage into the frame decoder: every outcome is a typed status.
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(seed);
    FrameDecoder decoder;
    std::string out;
    for (int iter = 0; iter < 200 && !decoder.poisoned(); ++iter) {
      std::string junk(rng.NextBounded(64) + 1, '\0');
      for (char& c : junk) c = static_cast<char>(rng.NextBounded(256));
      decoder.Append(junk);
      while (true) {
        Result<bool> got = decoder.Next(&out);
        if (!got.ok()) {
          EXPECT_TRUE(got.status().code() == StatusCode::kCorruption ||
                      got.status().code() == StatusCode::kResourceExhausted)
              << got.status().ToString();
          break;
        }
        if (!*got) break;
      }
    }
  }
}

TEST(FuzzTest, RandomPayloadsDecodeToTypedErrors) {
  // Correctly framed random payloads (valid CRC, hostile body): the message
  // layer must hand back typed errors for every type byte.
  for (uint64_t seed : {11u, 12u, 13u}) {
    Rng rng(seed);
    for (int iter = 0; iter < 300; ++iter) {
      std::string payload(rng.NextBounded(96) + 1, '\0');
      for (char& c : payload) c = static_cast<char>(rng.NextBounded(256));
      FrameDecoder decoder;
      decoder.Append(*EncodeFrame(payload));
      std::string out;
      Result<bool> got = decoder.Next(&out);
      ASSERT_TRUE(got.ok());
      ASSERT_TRUE(*got);
      Result<MessageType> type = PeekType(out);
      if (!type.ok()) continue;
      // Exercise the matching decoder; the status may be OK for a luckily
      // well-formed body — the property under test is "no UB, typed errors".
      switch (*type) {
        case MessageType::kUpdateBatch: {
          UpdateBatchMsg m;
          (void)DecodeUpdateBatch(out, &m);
          break;
        }
        case MessageType::kSnapshot: {
          SnapshotMsg m;
          (void)DecodeSnapshot(out, &m);
          break;
        }
        case MessageType::kDelta: {
          ResultDelta m;
          (void)DecodeDelta(out, &m);
          break;
        }
        case MessageType::kSubscribe: {
          SubscribeMsg m;
          (void)DecodeSubscribe(out, &m);
          break;
        }
        case MessageType::kRegister: {
          RegisterMsg m;
          (void)DecodeRegister(out, &m);
          break;
        }
        case MessageType::kError: {
          ErrorMsg m;
          (void)DecodeError(out, &m);
          break;
        }
        default: {
          HelloMsg m;
          (void)DecodeHello(out, &m);
          break;
        }
      }
    }
  }
}

}  // namespace
}  // namespace scuba::serve
