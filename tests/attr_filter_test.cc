// Attribute-filtered queries end to end: the paper's ObjectsTable/QueriesTable
// carry descriptive attributes ("child", "red car"); queries may require
// matched objects to carry specific tags. Every engine must honour the
// predicate, including through clustering, shedding and splitting.

#include <gtest/gtest.h>

#include "baseline/grid_join_engine.h"
#include "baseline/naive_join_engine.h"
#include "baseline/query_index_engine.h"
#include "core/scuba_engine.h"
#include "eval/experiment.h"
#include "stream/pipeline.h"

namespace scuba {
namespace {

LocationUpdate Obj(ObjectId oid, Point p, uint64_t attrs) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.time = 1;
  u.speed = 10.0;
  u.dest_node = 1;
  u.dest_position = Point{9000, 9000};
  u.attrs = attrs;
  return u;
}

QueryUpdate Qry(QueryId qid, Point p, uint64_t required) {
  QueryUpdate u;
  u.qid = qid;
  u.position = p;
  u.time = 1;
  u.speed = 10.0;
  u.dest_node = 1;
  u.dest_position = Point{9000, 9000};
  u.range_width = 200;
  u.range_height = 200;
  u.required_attrs = required;
  return u;
}

TEST(AttrFilterTest, AttrsMatchSemantics) {
  QueryUpdate q = Qry(1, {0, 0}, kAttrTruck | kAttrEmergency);
  EXPECT_TRUE(q.AttrsMatch(kAttrTruck | kAttrEmergency));
  EXPECT_TRUE(q.AttrsMatch(kAttrTruck | kAttrEmergency | kAttrRedCar));
  EXPECT_FALSE(q.AttrsMatch(kAttrTruck));  // partial
  EXPECT_FALSE(q.AttrsMatch(kAttrNone));
  QueryUpdate unfiltered = Qry(1, {0, 0}, kAttrNone);
  EXPECT_TRUE(unfiltered.AttrsMatch(kAttrNone));
  EXPECT_TRUE(unfiltered.AttrsMatch(kAttrBus));
}

/// Runs the mixed scenario through one engine and checks the filtered answer.
template <typename Engine>
void CheckScenario(Engine* engine) {
  // All entities co-located and co-travelling; query 1 wants trucks, query 2
  // is unfiltered.
  ASSERT_TRUE(engine->IngestObjectUpdate(Obj(1, {100, 100}, kAttrTruck)).ok());
  ASSERT_TRUE(
      engine->IngestObjectUpdate(Obj(2, {110, 100}, kAttrRedCar)).ok());
  ASSERT_TRUE(engine->IngestObjectUpdate(Obj(3, {120, 100}, kAttrNone)).ok());
  ASSERT_TRUE(engine->IngestQueryUpdate(Qry(1, {110, 100}, kAttrTruck)).ok());
  ASSERT_TRUE(engine->IngestQueryUpdate(Qry(2, {110, 100}, kAttrNone)).ok());
  ResultSet r;
  ASSERT_TRUE(engine->Evaluate(2, &r).ok());
  EXPECT_TRUE(r.Contains(1, 1));
  EXPECT_FALSE(r.Contains(1, 2));
  EXPECT_FALSE(r.Contains(1, 3));
  EXPECT_TRUE(r.Contains(2, 1));
  EXPECT_TRUE(r.Contains(2, 2));
  EXPECT_TRUE(r.Contains(2, 3));
  EXPECT_EQ(r.size(), 4u);
}

TEST(AttrFilterTest, ScubaHonoursFilters) {
  Result<std::unique_ptr<ScubaEngine>> e = ScubaEngine::Create({});
  ASSERT_TRUE(e.ok());
  CheckScenario(e->get());
}

TEST(AttrFilterTest, GridJoinHonoursFilters) {
  Result<std::unique_ptr<GridJoinEngine>> e = GridJoinEngine::Create({});
  ASSERT_TRUE(e.ok());
  CheckScenario(e->get());
}

TEST(AttrFilterTest, NaiveHonoursFilters) {
  NaiveJoinEngine e;
  CheckScenario(&e);
}

TEST(AttrFilterTest, QueryIndexHonoursFilters) {
  QueryIndexEngine e;
  CheckScenario(&e);
}

TEST(AttrFilterTest, ShedNucleusStillFilters) {
  // With full shedding, a filtered query matching the nucleus must only
  // report tagged objects from the group.
  ScubaOptions opt;
  opt.shedding.mode = LoadSheddingMode::kFixed;
  opt.shedding.eta = 1.0;
  Result<std::unique_ptr<ScubaEngine>> e = ScubaEngine::Create(opt);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE((*e)->IngestObjectUpdate(Obj(1, {100, 100}, kAttrTruck)).ok());
  ASSERT_TRUE((*e)->IngestObjectUpdate(Obj(2, {105, 100}, kAttrRedCar)).ok());
  ASSERT_TRUE((*e)->IngestQueryUpdate(Qry(1, {102, 100}, kAttrTruck)).ok());
  ResultSet r;
  ASSERT_TRUE((*e)->Evaluate(2, &r).ok());
  EXPECT_TRUE(r.Contains(1, 1));
  EXPECT_FALSE(r.Contains(1, 2));
}

TEST(AttrFilterTest, TraceRoundTripsPredicate) {
  QueryUpdate q = Qry(7, {50, 50}, kAttrBus);
  TickBatch batch;
  batch.time = 1;
  batch.query_updates.push_back(q);
  Trace t;
  t.Append(batch);
  Result<Trace> back = Trace::Parse(t.Serialize());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->batch(0).query_updates.size(), 1u);
  EXPECT_EQ(back->batch(0).query_updates[0].required_attrs, kAttrBus);
}

TEST(AttrFilterTest, ParsesLegacyTraceWithoutPredicate) {
  std::string legacy =
      "scuba-trace 1\n"
      "tick 1\n"
      "q 7 50 50 1 10 1 100 100 40 40 0\n";  // no trailing required_attrs
  Result<Trace> t = Trace::Parse(legacy);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->batch(0).query_updates[0].required_attrs, kAttrNone);
}

TEST(AttrFilterTest, WorkloadGeneratorEmitsFilters) {
  RoadNetwork city = DefaultBenchmarkCity(5);
  WorkloadOptions opt;
  opt.num_objects = 50;
  opt.num_queries = 200;
  opt.query_filter_probability = 0.5;
  opt.seed = 5;
  Result<ObjectSimulator> sim = GenerateWorkload(&city, opt);
  ASSERT_TRUE(sim.ok());
  size_t filtered = 0;
  for (const SimEntity& e : sim->entities()) {
    if (e.kind == EntityKind::kQuery && e.required_attrs != kAttrNone) {
      ++filtered;
    }
  }
  EXPECT_GT(filtered, 60u);
  EXPECT_LT(filtered, 140u);

  // Filters must survive emission into updates.
  ObjectSimulator s = std::move(sim).value();
  s.Step();
  std::vector<LocationUpdate> objs;
  std::vector<QueryUpdate> qrys;
  s.EmitUpdates(1.0, &objs, &qrys);
  size_t emitted_filtered = 0;
  for (const QueryUpdate& q : qrys) {
    if (q.required_attrs != kAttrNone) ++emitted_filtered;
  }
  EXPECT_EQ(emitted_filtered, filtered);
}

TEST(AttrFilterTest, GeneratorValidatesProbability) {
  RoadNetwork city = DefaultBenchmarkCity(5);
  WorkloadOptions opt;
  opt.query_filter_probability = -0.1;
  EXPECT_TRUE(GenerateWorkload(&city, opt).status().IsInvalidArgument());
}

// End-to-end equivalence with filters on: SCUBA must match the oracle exactly
// on a filtered workload.
TEST(AttrFilterTest, FilteredWorkloadStaysOracleExact) {
  ExperimentConfig config;
  config.city.rows = 11;
  config.city.cols = 11;
  config.workload.num_objects = 150;
  config.workload.num_queries = 150;
  config.workload.skew = 10;
  config.workload.attr_probability = 0.3;
  config.workload.query_filter_probability = 0.5;
  config.workload.seed = 77;
  config.ticks = 8;
  Result<ExperimentData> data = BuildExperimentData(config);
  ASSERT_TRUE(data.ok());

  ScubaOptions sopt;
  sopt.region = data->region;
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(sopt);
  ASSERT_TRUE(engine.ok());
  NaiveJoinEngine naive;
  std::vector<ResultSet> a;
  std::vector<ResultSet> b;
  ASSERT_TRUE(ReplayTrace(data->trace, engine->get(), 2,
                          [&](Timestamp, const ResultSet& r) {
                            a.push_back(r);
                          })
                  .ok());
  ASSERT_TRUE(ReplayTrace(data->trace, &naive, 2,
                          [&](Timestamp, const ResultSet& r) {
                            b.push_back(r);
                          })
                  .ok());
  ASSERT_EQ(a.size(), b.size());
  size_t total = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "round " << i;
    total += b[i].size();
  }
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace scuba
